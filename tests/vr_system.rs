//! Integration tests of the VR case study: the Fig. 9/Fig. 10/Table I
//! analyses against the paper's numbers, and the functional pipeline end
//! to end.

use incam::core::link::Link;
use incam::fpga::design::FpgaDesign;
use incam::vr::analysis::{fig9, VrModel};
use incam::vr::blocks::run_functional_pipeline;
use incam::vr::frame::synthetic_capture;
use incam::vr::rig::CameraRig;
use incam_rng::SeedableRng;

#[test]
fn fig10_reproduces_paper_bars() {
    let model = VrModel::paper_default();
    let rows = model.fig10(&Link::ethernet_25g());
    let expected = [
        ("S~", 15.8),
        ("SB1~", 15.8),
        ("SB1B2~", 3.95),
        ("SB1B2B3C~", 0.09),
        ("SB1B2B3G~", 5.27),
        ("SB1B2B3F~", 5.27),
        ("SB1B2B3CB4C~", 0.09),
        ("SB1B2B3GB4G~", 11.2),
        ("SB1B2B3FB4F~", 31.6),
    ];
    assert_eq!(rows.len(), expected.len());
    for (row, (label, fps)) in rows.iter().zip(expected) {
        assert_eq!(row.label, label);
        let tolerance = (fps * 0.05f64).max(0.01);
        assert!(
            (row.total.fps() - fps).abs() < tolerance,
            "{label}: got {}, paper {fps}",
            row.total.fps()
        );
    }
}

#[test]
fn only_the_full_fpga_pipeline_meets_30fps() {
    let model = VrModel::paper_default();
    let rows = model.fig10(&Link::ethernet_25g());
    let winners: Vec<&str> = rows
        .iter()
        .filter(|r| r.real_time())
        .map(|r| r.label.as_str())
        .collect();
    assert_eq!(winners, vec!["SB1B2B3FB4F~"]);
}

#[test]
fn fig9_shape_matches_paper() {
    let model = VrModel::paper_default();
    let rows = fig9(&model);
    // compute shares ~ 5/20/70/5
    assert!((rows[1].compute_share - 0.05).abs() < 0.02);
    assert!((rows[2].compute_share - 0.20).abs() < 0.03);
    assert!((rows[3].compute_share - 0.70).abs() < 0.03);
    assert!((rows[4].compute_share - 0.05).abs() < 0.02);
    // data peaks at B2 and the only sub-sensor size is B4's output
    let sensor = rows[0].output.bytes();
    assert!(rows[2].output.bytes() > 3.9 * sensor);
    assert!(rows[4].output.bytes() < 0.51 * sensor);
}

#[test]
fn rig_aggregate_rate_is_over_30_gbps() {
    let rate = CameraRig::paper_rig().aggregate_rate();
    assert!(rate.gbps() > 30.0, "got {}", rate.gbps());
}

#[test]
fn table1_designs_match_paper() {
    let eval = FpgaDesign::paper_evaluation();
    assert_eq!(eval.units(), 11);
    let u = eval.utilization();
    assert!((u.dsp_pct - 94.09).abs() < 0.5);
    assert!((u.logic_pct - 45.91).abs() < 1.0);

    let target = FpgaDesign::paper_target();
    assert_eq!(target.units(), 682);
    assert!((target.utilization().dsp_pct - 99.98).abs() < 0.1);
}

#[test]
fn functional_pipeline_produces_plausible_panorama() {
    let rig = CameraRig::scaled(6, 80, 60);
    let mut rng = incam_rng::rngs::StdRng::seed_from_u64(99);
    let capture = synthetic_capture(&rig, 6, &mut rng);
    let pano = run_functional_pipeline(&capture);
    // six segments with 10px overlap
    assert_eq!(pano.left.height(), 60);
    assert_eq!(pano.left.dims(), pano.right.dims());
    // intensities remain plausible and the eyes differ (parallax)
    let (lo, hi) = pano.left.min_max();
    assert!(lo >= -0.05 && hi <= 1.05);
    let diff: f32 = pano
        .left
        .pixels()
        .iter()
        .zip(pano.right.pixels())
        .map(|(a, b)| (a - b).abs())
        .sum::<f32>()
        / pano.left.len() as f32;
    assert!(diff > 1e-4, "eyes identical");
}

#[test]
fn fast_links_remove_in_camera_incentive() {
    let model = VrModel::paper_default();
    assert!(model.sensor_upload_fps(&Link::ethernet_25g()).fps() < 30.0);
    assert!(model.sensor_upload_fps(&Link::ethernet_400g()).fps() > 300.0);
}
