//! Integration tests of the face-authentication case study: the full
//! pipeline on the synthetic security workload, energy ordering across
//! configurations, harvested-power feasibility, and the accelerator
//! design-space claims.

use incam::core::units::{Fps, Joules, Watts};
use incam::nn::topology::Topology;
use incam::snnap::config::SnnapConfig;
use incam::snnap::sweep::{bitwidth_sweep, geometry_sweep, optimal_geometry};
use incam::wispcam::pipeline::FaPipelineConfig;
use incam::wispcam::platform::WispCamPlatform;
use incam::wispcam::workload::{TrainEffort, Workload};

fn workload() -> Workload {
    Workload::generate(2024, 150, TrainEffort::Quick)
}

#[test]
fn progressive_filtering_cuts_energy() {
    let w = workload();
    let mut nn_only = w.pipeline(FaPipelineConfig::full_accelerated().with_blocks(false, false));
    let mut filtered = w.pipeline(FaPipelineConfig::full_accelerated());
    let s_nn = nn_only.run(&w.frames);
    let s_filtered = filtered.run(&w.frames);
    assert!(
        s_filtered.total_energy.joules() < 0.5 * s_nn.total_energy.joules(),
        "filtered {} vs nn-only {}",
        s_filtered.total_energy.human(),
        s_nn.total_energy.human()
    );
    assert!(s_filtered.windows_scored * 10 < s_nn.windows_scored);
}

#[test]
fn full_pipeline_runs_sub_milliwatt_on_harvested_power() {
    let w = workload();
    let mut pipeline = w.pipeline(FaPipelineConfig::full_accelerated());
    let summary = pipeline.run(&w.frames);
    let power = summary.average_power(Fps::new(1.0));
    assert!(power < Watts::from_milli(1.0), "power {}", power.human());

    let mut platform = WispCamPlatform::wispcam_default();
    assert!(platform.sustainable_fps(summary.energy_per_frame()).fps() > 1.0);
    let report = platform.simulate(100, Fps::new(1.0), summary.energy_per_frame());
    assert_eq!(report.brownouts, 0, "should run continuously at 1 FPS");
}

#[test]
fn enrolled_walkthroughs_are_detected() {
    let w = workload();
    let mut pipeline = w.pipeline(FaPipelineConfig::full_accelerated());
    let summary = pipeline.run(&w.frames);
    if summary.enrolled_events > 0 {
        assert!(
            summary.event_miss_rate() < 0.5,
            "missed {}/{} events",
            summary.enrolled_events - summary.enrolled_events_detected,
            summary.enrolled_events
        );
    }
}

#[test]
fn motion_detection_gates_most_idle_frames() {
    let w = workload();
    let mut pipeline = w.pipeline(FaPipelineConfig::full_accelerated());
    let summary = pipeline.run(&w.frames);
    // most of the stream is idle; the motion block must gate a majority
    // of frames away from the detector
    assert!(summary.frames_gated_by_motion * 2 > summary.frames);
    assert_eq!(
        summary.frames_scanned + summary.frames_gated_by_motion,
        summary.frames
    );
}

#[test]
fn accelerator_design_space_claims_hold_together() {
    // the three SIII-A claims, checked through the public sweeps
    let topo = Topology::paper_default();
    let base = SnnapConfig::paper_default();

    let geometry = geometry_sweep(&topo, &base, &[1, 2, 4, 8, 16, 32]);
    assert_eq!(optimal_geometry(&geometry), 8);

    let bits = bitwidth_sweep(&topo, &base, &[16, 8, 4]);
    let row8 = bits.iter().find(|r| r.data_bits == 8).expect("8-bit row");
    let reduction = 1.0 - row8.power_vs_16bit;
    assert!(
        (0.35..0.48).contains(&reduction),
        "16->8 bit saves {reduction}"
    );

    // the selected design point stays sub-mW
    let row_at_8pe = geometry.iter().find(|r| r.num_pes == 8).expect("8-PE row");
    assert!(row_at_8pe.power < Watts::from_milli(1.0));
    assert!(row_at_8pe.energy < Joules::from_micro(1.0));
}

#[test]
fn verdict_uplink_is_orders_cheaper_than_raw_frames() {
    let w = workload();
    let mut raw_cfg = FaPipelineConfig::full_accelerated();
    raw_cfg.transmit = incam::wispcam::pipeline::TransmitPolicy::RawFrame;
    let mut raw = w.pipeline(raw_cfg);
    let mut verdict = w.pipeline(FaPipelineConfig::full_accelerated());
    let s_raw = raw.run(&w.frames);
    let s_verdict = verdict.run(&w.frames);
    let radio = |s: &incam::wispcam::pipeline::RunSummary| {
        s.energy
            .items()
            .iter()
            .find(|i| i.name == "radio")
            .expect("radio item")
            .energy
            .joules()
    };
    assert!(radio(&s_raw) > 1000.0 * radio(&s_verdict));
}

#[test]
fn bursty_trace_simulation_matches_reality_better_than_the_average() {
    // the per-frame trace has cheap gated frames and expensive event
    // frames; feeding the real trace to the capacitor model must not
    // brown out on the default platform, and total consumed energy must
    // equal the pipeline's accounting
    let w = workload();
    let mut pipeline = w.pipeline(FaPipelineConfig::full_accelerated());
    let (summary, outcomes) = pipeline.run_trace(&w.frames);
    assert_eq!(outcomes.len(), summary.frames);
    let trace_total: f64 = outcomes.iter().map(|o| o.energy.joules()).sum();
    // per-frame energies sum to the run's compute+radio total minus
    // nothing: the breakdown accounts the same joules
    assert!(
        (trace_total - summary.total_energy.joules()).abs() < summary.total_energy.joules() * 1e-9,
        "trace {} vs summary {}",
        trace_total,
        summary.total_energy.joules()
    );

    let energies: Vec<incam::core::units::Joules> = outcomes.iter().map(|o| o.energy).collect();
    let mut platform = WispCamPlatform::wispcam_default();
    let report = platform.simulate_trace(&energies, Fps::new(1.0));
    assert_eq!(report.brownouts, 0, "default budget handles the bursts");

    // event frames must be costlier than gated idle frames
    let event_max = outcomes
        .iter()
        .filter(|o| o.windows_scored > 0)
        .map(|o| o.energy.joules())
        .fold(0.0f64, f64::max);
    let idle_min = outcomes
        .iter()
        .filter(|o| !o.motion)
        .map(|o| o.energy.joules())
        .fold(f64::INFINITY, f64::min);
    if event_max > 0.0 && idle_min.is_finite() {
        // the common sensor+radio floor dominates both, so compare the
        // compute burst above the idle floor
        assert!(
            event_max > idle_min + 1e-7,
            "bursty: {event_max} vs {idle_min}"
        );
    }
}
