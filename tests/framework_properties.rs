//! Property-based tests on the cross-crate invariants of the framework:
//! cost algebra, integral images, quantization, and the bilateral grid.

use incam::bilateral::grid::{BilateralGrid, GridParams};
use incam::core::block::{Backend, BlockSpec, DataTransform};
use incam::core::explore::{pareto_frontier, Binding, BlockSpace, PipelineSpace};
use incam::core::link::Link;
use incam::core::offload::{analyze_cuts, best_cut};
use incam::core::pipeline::{Pipeline, Source, Stage};
use incam::core::units::{Bytes, BytesPerSec, Fps, Joules};
use incam::imaging::image::{GrayImage, Image};
use incam::imaging::integral::IntegralImage;
use incam::nn::quant::QFormat;
use incam_rng::prelude::*;

fn arbitrary_pipeline() -> impl Strategy<Value = Pipeline> {
    let stage = (0.1f64..8.0, 1.0f64..500.0).prop_map(|(scale, fps)| {
        Stage::new(
            BlockSpec::core("b", DataTransform::Scale(scale)),
            Backend::Cpu,
            Fps::new(fps),
        )
    });
    (
        1.0f64..1e8,
        1.0f64..200.0,
        prop::collection::vec(stage, 0..5),
    )
        .prop_map(|(bytes, cap, stages)| {
            let mut p = Pipeline::new(Source::new("s", Bytes::new(bytes), Fps::new(cap)));
            for s in stages {
                p.push(s);
            }
            p
        })
}

fn arbitrary_space() -> impl Strategy<Value = PipelineSpace> {
    let binding = (1.0f64..500.0, 0.0f64..10.0).prop_map(|(fps, uj)| {
        Binding::new(Backend::Cpu, Fps::new(fps)).with_energy_per_frame(Joules::from_micro(uj))
    });
    let block =
        (0.1f64..8.0, prop::collection::vec(binding, 1..4)).prop_map(|(scale, bindings)| {
            BlockSpace::new(BlockSpec::core("b", DataTransform::Scale(scale)), bindings)
        });
    (
        1.0f64..1e8,
        1.0f64..200.0,
        prop::collection::vec(block, 0..4),
    )
        .prop_map(|(bytes, cap, blocks)| {
            let mut space = PipelineSpace::new(Source::new("s", Bytes::new(bytes), Fps::new(cap)));
            for b in blocks {
                space.push(b);
            }
            space
        })
}

proptest! {
    /// Enumeration yields exactly the advertised cardinalities: the
    /// product of per-block binding counts times cut positions for the
    /// full space, and the prefix-product sum for the distinct view.
    #[test]
    fn enumeration_cardinality_matches_product(space in arbitrary_space()) {
        let product: u128 = space
            .blocks()
            .iter()
            .map(|b| b.bindings().len() as u128)
            .product();
        let expected = product * (space.len() as u128 + 1);
        prop_assert_eq!(space.cardinality(), expected);
        prop_assert_eq!(space.configurations().count() as u128, expected);
        prop_assert_eq!(
            space.distinct_configurations().count() as u128,
            space.distinct_cardinality()
        );
    }

    /// No configuration the Pareto frontier returns is dominated on all
    /// three objectives (total FPS, in-camera energy, upload bytes) by
    /// any explored configuration.
    #[test]
    fn pareto_frontier_is_nondominated(
        space in arbitrary_space(),
        gbps in 0.01f64..100.0,
    ) {
        let link = Link::new("l", BytesPerSec::from_gbps(gbps), 0.9);
        let all: Vec<_> = space.explore(&link).collect();
        let frontier = pareto_frontier(all.clone());
        prop_assert!(!frontier.is_empty());
        for kept in &frontier {
            for candidate in &all {
                prop_assert!(!candidate.dominates(kept));
            }
        }
    }

    /// Pipelined throughput never increases as more stages are included.
    #[test]
    fn compute_fps_monotone_nonincreasing(p in arbitrary_pipeline()) {
        for k in 1..=p.len() {
            prop_assert!(
                p.compute_fps_through(k).fps() <= p.compute_fps_through(k - 1).fps() + 1e-12
            );
        }
    }

    /// The best cut's total equals the max over all cuts and every cut's
    /// total is min(compute, comm).
    #[test]
    fn best_cut_is_argmax(p in arbitrary_pipeline(), gbps in 0.01f64..100.0) {
        let link = Link::new("l", BytesPerSec::from_gbps(gbps), 0.9);
        let cuts = analyze_cuts(&p, &link);
        let best = best_cut(&p, &link);
        for cut in &cuts {
            prop_assert!(cut.total().fps() <= best.total().fps() + 1e-9);
            let expected = cut.compute.fps().min(cut.communication.fps());
            prop_assert!((cut.total().fps() - expected).abs() < 1e-9);
        }
    }

    /// Link upload rate is inverse in payload size and linear in rate.
    #[test]
    fn link_scaling(gbps in 0.01f64..400.0, bytes in 1.0f64..1e9) {
        let link = Link::new("l", BytesPerSec::from_gbps(gbps), 0.8);
        let one = link.upload_fps(Bytes::new(bytes)).fps();
        let double_payload = link.upload_fps(Bytes::new(2.0 * bytes)).fps();
        prop_assert!((one / double_payload - 2.0).abs() < 1e-6);
    }

    /// Integral-image rectangle sums match naive summation.
    #[test]
    fn integral_matches_naive(
        seed in 0u64..1000,
        w in 2usize..24,
        h in 2usize..24,
    ) {
        let img = Image::from_fn(w, h, |x, y| {
            (((x * 31 + y * 17 + seed as usize * 7) % 101) as f32) / 101.0
        });
        let ii = IntegralImage::new(&img);
        let (rw, rh) = (w / 2 + 1, h / 2 + 1);
        let (x, y) = (w - rw, h - rh);
        let mut naive = 0.0f64;
        for yy in y..y + rh {
            for xx in x..x + rw {
                naive += img.get(xx, yy) as f64;
            }
        }
        prop_assert!((ii.rect_sum(x, y, rw, rh) - naive).abs() < 1e-6);
    }

    /// Quantization round-trip error is bounded by half an LSB in range.
    #[test]
    fn quantize_round_trip_bound(
        bits in 3u32..16,
        frac in 0u32..8,
        value in -100.0f32..100.0,
    ) {
        prop_assume!(frac < bits);
        let q = QFormat::new(bits, frac);
        if value.abs() < q.max_value() {
            prop_assert!(q.round_trip_error(value) <= q.resolution() / 2.0 + 1e-6);
        }
        // saturation never exceeds the representable range
        let code = q.quantize(value);
        prop_assert!(code <= q.max_code() && code >= q.min_code());
    }

    /// Bilateral-grid splatting partitions unity and blurring preserves
    /// total mass.
    #[test]
    fn grid_mass_conservation(
        seed in 0u64..500,
        w in 8usize..40,
        h in 8usize..40,
        sigma in 2.0f32..12.0,
    ) {
        let guide = Image::from_fn(w, h, |x, y| {
            (((x * 13 + y * 29 + seed as usize) % 37) as f32) / 37.0
        });
        let mut grid = BilateralGrid::new(w, h, GridParams::new(sigma, 0.15));
        grid.splat(&guide, &guide, None);
        let pixels = (w * h) as f64;
        prop_assert!((grid.total_weight() - pixels).abs() < pixels * 1e-4);
        grid.blur(2);
        prop_assert!((grid.total_weight() - pixels).abs() < pixels * 1e-3);
    }

    /// Constant images slice back to their constant under any grid.
    #[test]
    fn grid_constant_fixed_point(
        value in 0.0f32..1.0,
        sigma in 2.0f32..16.0,
    ) {
        let guide = GrayImage::new(24, 24, 0.5);
        let values = GrayImage::new(24, 24, value);
        let mut grid = BilateralGrid::new(24, 24, GridParams::new(sigma, 0.2));
        grid.splat(&guide, &values, None);
        grid.blur(1);
        let out = grid.slice(&guide);
        for &p in out.pixels() {
            prop_assert!((p - value).abs() < 1e-3);
        }
    }
}
