//! The streaming bilateral-filter compute unit (paper Fig. 8).
//!
//! Each compute unit is a pipelined datapath of single-precision
//! floating-point adders/multipliers (BSSA "requires at least 32-bit
//! floating-point precision to produce high-quality depth maps") built
//! from DSP slices — 18 per unit in the paper's design. A unit sustains
//! one grid-vertex blur operation per cycle once its pipeline is full.

use crate::resources::Resources;
use incam_core::units::{Fps, Hertz};

/// Resource and throughput specification of one compute unit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ComputeUnitSpec {
    /// Fabric resources per unit.
    pub resources: Resources,
    /// Grid-vertex blur operations sustained per cycle.
    pub ops_per_cycle: f64,
}

impl ComputeUnitSpec {
    /// The paper's unit: 18 DSPs (plus the LUT/BRAM share backed out of
    /// Table I's utilization figures; see `EXPERIMENTS.md`), one vertex
    /// per cycle.
    pub fn paper_default() -> Self {
        Self {
            resources: Resources::new(1_692.0, 0.691, 18),
            ops_per_cycle: 1.0,
        }
    }
}

/// Shared per-design infrastructure (DMA engine, HDMI in/out cores,
/// Ethernet core, AXI interconnect — Fig. 8's non-CU blocks).
pub fn infrastructure_default() -> Resources {
    Resources::new(5_812.0, 1.78, 9)
}

/// Aggregate throughput of `units` compute units at `clock`, processing a
/// workload of `ops_per_frame` vertex operations per frame, derated by
/// `efficiency` for DMA/memory stalls.
///
/// # Panics
///
/// Panics if `ops_per_frame` is zero or `efficiency` is not in `(0, 1]`.
///
/// # Examples
///
/// ```
/// use incam_core::units::Hertz;
/// use incam_fpga::compute_unit::{throughput, ComputeUnitSpec};
///
/// let spec = ComputeUnitSpec::paper_default();
/// let fps = throughput(&spec, 682, Hertz::from_mhz(125.0), 2.2e9, 0.815);
/// assert!(fps.fps() > 30.0); // the projection target is real-time
/// ```
pub fn throughput(
    spec: &ComputeUnitSpec,
    units: usize,
    clock: Hertz,
    ops_per_frame: f64,
    efficiency: f64,
) -> Fps {
    assert!(ops_per_frame > 0.0, "workload must be nonzero");
    assert!(
        efficiency > 0.0 && efficiency <= 1.0,
        "efficiency must be in (0, 1]"
    );
    let ops_per_sec = spec.ops_per_cycle * units as f64 * clock.hertz() * efficiency;
    Fps::new(ops_per_sec / ops_per_frame)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throughput_linear_in_units() {
        let spec = ComputeUnitSpec::paper_default();
        let clock = Hertz::from_mhz(125.0);
        let one = throughput(&spec, 1, clock, 1e9, 1.0);
        let ten = throughput(&spec, 10, clock, 1e9, 1.0);
        assert!((ten.fps() / one.fps() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn efficiency_derates() {
        let spec = ComputeUnitSpec::paper_default();
        let clock = Hertz::from_mhz(125.0);
        let full = throughput(&spec, 4, clock, 1e9, 1.0);
        let half = throughput(&spec, 4, clock, 1e9, 0.5);
        assert!((full.fps() / half.fps() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn paper_unit_uses_18_dsps() {
        assert_eq!(ComputeUnitSpec::paper_default().resources.dsps, 18);
    }

    #[test]
    #[should_panic(expected = "efficiency")]
    fn super_unity_efficiency_rejected() {
        let _ = throughput(
            &ComputeUnitSpec::paper_default(),
            1,
            Hertz::from_mhz(125.0),
            1e9,
            1.5,
        );
    }
}
