//! # incam-fpga — FPGA platform and resource model
//!
//! The paper's VR accelerator (Fig. 8) maps BSSA's grid blurs onto
//! streaming compute units of 18 DSP slices each on a Xilinx Zynq-7020,
//! and projects a 16-FPGA Virtex UltraScale+ system for real-time
//! 16-camera operation (Table I). This crate models the device catalog
//! ([`device`]), resource vectors ([`resources`]), the compute-unit
//! design ([`compute_unit`]), placed designs with utilization
//! ([`design`]), and regenerates Table I ([`report`]).
//!
//! # Examples
//!
//! ```
//! use incam_fpga::design::FpgaDesign;
//!
//! let eval = FpgaDesign::paper_evaluation();
//! assert_eq!(eval.units(), 11);           // fits beside the DMA/HDMI cores
//! let target = FpgaDesign::paper_target();
//! assert_eq!(target.units(), 682);        // the paper's projection
//! println!("{}", target.utilization());   // DSP ~99.98%
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod compute_unit;
pub mod design;
pub mod device;
pub mod report;
pub mod resources;

pub use compute_unit::ComputeUnitSpec;
pub use design::{max_units_ignoring_infrastructure, FpgaDesign};
pub use device::FpgaDevice;
pub use report::{table1, PlatformRow};
pub use resources::{Resources, Utilization};
