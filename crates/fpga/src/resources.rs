//! FPGA resource vectors: logic (LUTs), block RAM and DSP slices.

use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Mul};

/// A bundle of FPGA fabric resources.
///
/// BRAM is counted in BRAM36-equivalents (fractional values represent
/// BRAM18 halves or distributed-RAM usage folded in).
///
/// # Examples
///
/// ```
/// use incam_fpga::resources::Resources;
///
/// let cu = Resources::new(1692.0, 0.691, 18);
/// let four = cu * 4.0;
/// assert_eq!(four.dsps, 72);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Resources {
    /// Look-up tables.
    pub luts: f64,
    /// BRAM36-equivalent blocks.
    pub bram36: f64,
    /// DSP slices.
    pub dsps: u64,
}

impl Resources {
    /// Creates a resource bundle.
    ///
    /// # Panics
    ///
    /// Panics if LUT or BRAM counts are negative.
    pub fn new(luts: f64, bram36: f64, dsps: u64) -> Self {
        assert!(
            luts >= 0.0 && bram36 >= 0.0,
            "resources must be non-negative"
        );
        Self { luts, bram36, dsps }
    }

    /// The zero bundle.
    pub const ZERO: Resources = Resources {
        luts: 0.0,
        bram36: 0.0,
        dsps: 0,
    };

    /// Component-wise `self <= other`.
    pub fn fits_within(&self, other: &Resources) -> bool {
        self.luts <= other.luts && self.bram36 <= other.bram36 && self.dsps <= other.dsps
    }
}

impl Add for Resources {
    type Output = Resources;
    fn add(self, rhs: Resources) -> Resources {
        Resources {
            luts: self.luts + rhs.luts,
            bram36: self.bram36 + rhs.bram36,
            dsps: self.dsps + rhs.dsps,
        }
    }
}

impl AddAssign for Resources {
    fn add_assign(&mut self, rhs: Resources) {
        *self = *self + rhs;
    }
}

impl Mul<f64> for Resources {
    type Output = Resources;
    fn mul(self, rhs: f64) -> Resources {
        Resources {
            luts: self.luts * rhs,
            bram36: self.bram36 * rhs,
            dsps: (self.dsps as f64 * rhs).round() as u64,
        }
    }
}

impl Sum for Resources {
    fn sum<I: Iterator<Item = Resources>>(iter: I) -> Resources {
        iter.fold(Resources::ZERO, |acc, r| acc + r)
    }
}

impl fmt::Display for Resources {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:.0} LUTs, {:.1} BRAM36, {} DSPs",
            self.luts, self.bram36, self.dsps
        )
    }
}

/// Percent utilization of `used` against `available` for each resource
/// class.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Utilization {
    /// Logic utilization in percent.
    pub logic_pct: f64,
    /// BRAM utilization in percent.
    pub ram_pct: f64,
    /// DSP utilization in percent.
    pub dsp_pct: f64,
}

impl Utilization {
    /// Computes utilization percentages.
    ///
    /// # Panics
    ///
    /// Panics if any `available` component is zero.
    pub fn of(used: &Resources, available: &Resources) -> Self {
        assert!(
            available.luts > 0.0 && available.bram36 > 0.0 && available.dsps > 0,
            "device must have nonzero resources"
        );
        Self {
            logic_pct: 100.0 * used.luts / available.luts,
            ram_pct: 100.0 * used.bram36 / available.bram36,
            dsp_pct: 100.0 * used.dsps as f64 / available.dsps as f64,
        }
    }

    /// Whether everything is at or under 100 %.
    pub fn feasible(&self) -> bool {
        self.logic_pct <= 100.0 && self.ram_pct <= 100.0 && self.dsp_pct <= 100.0
    }
}

impl fmt::Display for Utilization {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "logic {:.2}%, RAM {:.2}%, DSP {:.2}%",
            self.logic_pct, self.ram_pct, self.dsp_pct
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let a = Resources::new(100.0, 1.0, 10);
        let b = Resources::new(50.0, 0.5, 5);
        let sum = a + b;
        assert_eq!(sum.dsps, 15);
        assert_eq!((a * 2.0).luts, 200.0);
        let total: Resources = vec![a, b, b].into_iter().sum();
        assert_eq!(total.dsps, 20);
    }

    #[test]
    fn fits_and_utilization() {
        let used = Resources::new(500.0, 2.0, 50);
        let device = Resources::new(1000.0, 10.0, 100);
        assert!(used.fits_within(&device));
        let u = Utilization::of(&used, &device);
        assert_eq!(u.logic_pct, 50.0);
        assert_eq!(u.ram_pct, 20.0);
        assert_eq!(u.dsp_pct, 50.0);
        assert!(u.feasible());
        let over = Resources::new(2000.0, 1.0, 10);
        assert!(!Utilization::of(&over, &device).feasible());
    }

    #[test]
    fn display_formats() {
        let r = Resources::new(1692.0, 0.7, 18);
        assert!(r.to_string().contains("18 DSPs"));
    }
}
