//! A placed design: infrastructure plus as many compute units as the
//! device can hold.

use crate::compute_unit::{infrastructure_default, ComputeUnitSpec};
use crate::device::FpgaDevice;
use crate::resources::{Resources, Utilization};
use incam_core::units::{Fps, Hertz};

/// A concrete FPGA design: a device populated with compute units and the
/// shared infrastructure.
#[derive(Debug, Clone, PartialEq)]
pub struct FpgaDesign {
    device: FpgaDevice,
    unit_spec: ComputeUnitSpec,
    infrastructure: Resources,
    units: usize,
}

impl FpgaDesign {
    /// Creates a design with an explicit unit count.
    ///
    /// # Panics
    ///
    /// Panics if the design does not fit the device.
    pub fn new(
        device: FpgaDevice,
        unit_spec: ComputeUnitSpec,
        infrastructure: Resources,
        units: usize,
    ) -> Self {
        let design = Self {
            device,
            unit_spec,
            infrastructure,
            units,
        };
        assert!(
            design.used().fits_within(design.device.resources()),
            "design does not fit {}: needs {}, has {}",
            design.device.name(),
            design.used(),
            design.device.resources()
        );
        design
    }

    /// Fills the device with the maximum number of compute units that fit
    /// next to the infrastructure.
    pub fn max_units(device: FpgaDevice, unit_spec: ComputeUnitSpec) -> Self {
        let infrastructure = infrastructure_default();
        let units = max_units_with(&device, &unit_spec, &infrastructure);
        Self::new(device, unit_spec, infrastructure, units)
    }

    /// The evaluation design of the paper: the Zynq-7020 filled with
    /// compute units (11 fit beside the infrastructure; the paper quotes
    /// "up to 12" from the raw 220/18 DSP budget).
    pub fn paper_evaluation() -> Self {
        Self::max_units(FpgaDevice::zynq_7020(), ComputeUnitSpec::paper_default())
    }

    /// The projection target: a Virtex UltraScale+ filled to 682 units.
    pub fn paper_target() -> Self {
        Self::max_units(
            FpgaDevice::virtex_ultrascale_plus(),
            ComputeUnitSpec::paper_default(),
        )
    }

    /// The device this design is placed on.
    pub fn device(&self) -> &FpgaDevice {
        &self.device
    }

    /// Number of compute units placed.
    pub fn units(&self) -> usize {
        self.units
    }

    /// Total fabric resources consumed.
    pub fn used(&self) -> Resources {
        self.infrastructure + self.unit_spec.resources * self.units as f64
    }

    /// Utilization against the device.
    pub fn utilization(&self) -> Utilization {
        Utilization::of(&self.used(), self.device.resources())
    }

    /// Design clock.
    pub fn clock(&self) -> Hertz {
        self.device.clock()
    }

    /// Design throughput on a workload of `ops_per_frame` vertex
    /// operations, derated by `efficiency`.
    pub fn throughput(&self, ops_per_frame: f64, efficiency: f64) -> Fps {
        crate::compute_unit::throughput(
            &self.unit_spec,
            self.units,
            self.device.clock(),
            ops_per_frame,
            efficiency,
        )
    }
}

/// Maximum number of compute units that fit beside `infrastructure`.
pub fn max_units_with(
    device: &FpgaDevice,
    spec: &ComputeUnitSpec,
    infrastructure: &Resources,
) -> usize {
    let avail = device.resources();
    let by_dsp = (avail.dsps.saturating_sub(infrastructure.dsps)) / spec.resources.dsps.max(1);
    let by_lut = ((avail.luts - infrastructure.luts) / spec.resources.luts).floor() as u64;
    let by_bram = ((avail.bram36 - infrastructure.bram36) / spec.resources.bram36).floor() as u64;
    by_dsp.min(by_lut).min(by_bram) as usize
}

/// The paper's headline unit-count arithmetic: device DSPs divided by
/// DSPs per unit, ignoring infrastructure ("so we can scale up to 12
/// parallel compute units on the ZC702" / "682 compute units" on the
/// UltraScale+).
pub fn max_units_ignoring_infrastructure(device: &FpgaDevice, spec: &ComputeUnitSpec) -> usize {
    (device.resources().dsps / spec.resources.dsps.max(1)) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_evaluation_counts() {
        let design = FpgaDesign::paper_evaluation();
        assert_eq!(design.units(), 11);
        // the text's "up to 12" figure comes from ignoring infrastructure
        assert_eq!(
            max_units_ignoring_infrastructure(
                &FpgaDevice::zynq_7020(),
                &ComputeUnitSpec::paper_default()
            ),
            12
        );
    }

    #[test]
    fn paper_target_reaches_682_units() {
        let design = FpgaDesign::paper_target();
        assert_eq!(design.units(), 682);
    }

    #[test]
    fn table1_utilization_matches_paper() {
        let eval = FpgaDesign::paper_evaluation().utilization();
        assert!((eval.logic_pct - 45.91).abs() < 1.0, "logic {eval}");
        assert!((eval.ram_pct - 6.70).abs() < 1.0, "ram {eval}");
        assert!((eval.dsp_pct - 94.09).abs() < 0.5, "dsp {eval}");

        let target = FpgaDesign::paper_target().utilization();
        assert!((target.logic_pct - 67.10).abs() < 1.0, "logic {target}");
        assert!((target.ram_pct - 17.60).abs() < 1.0, "ram {target}");
        assert!((target.dsp_pct - 99.98).abs() < 0.1, "dsp {target}");
    }

    #[test]
    fn designs_always_feasible() {
        for design in [FpgaDesign::paper_evaluation(), FpgaDesign::paper_target()] {
            assert!(design.utilization().feasible());
        }
    }

    #[test]
    fn more_units_more_throughput() {
        let target = FpgaDesign::paper_target();
        let eval = FpgaDesign::paper_evaluation();
        let ops = 2.2e9;
        assert!(target.throughput(ops, 0.8).fps() > 30.0 * eval.throughput(ops, 0.8).fps());
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn oversubscribed_design_rejected() {
        let _ = FpgaDesign::new(
            FpgaDevice::zynq_7020(),
            ComputeUnitSpec::paper_default(),
            crate::compute_unit::infrastructure_default(),
            100,
        );
    }
}
