//! The FPGA device catalog: the evaluation part (Zynq-7020, as on the
//! ZC702 board) and the projection target (a top-of-the-line Virtex
//! UltraScale+, whose 12 288 DSP slices are what make the paper's
//! "682 compute units" arithmetic work out: 682 × 18 + 9 ≈ 99.98 %).

use crate::resources::Resources;
use incam_core::units::Hertz;

/// An FPGA device with its fabric resources and the design clock used in
/// the paper (125 MHz for both parts).
#[derive(Debug, Clone, PartialEq)]
pub struct FpgaDevice {
    name: String,
    resources: Resources,
    clock: Hertz,
}

impl FpgaDevice {
    /// Creates a device.
    pub fn new(name: impl Into<String>, resources: Resources, clock: Hertz) -> Self {
        Self {
            name: name.into(),
            resources,
            clock,
        }
    }

    /// The Zynq-7020 SoC's programmable logic (ZC702 board): 53 200 LUTs,
    /// 140 BRAM36, 220 DSP48E1.
    pub fn zynq_7020() -> Self {
        Self::new(
            "Zynq-7000 (XC7Z020)",
            Resources::new(53_200.0, 140.0, 220),
            Hertz::from_mhz(125.0),
        )
    }

    /// A top-of-the-line Virtex UltraScale+ (VU13P-class): 1 728 000
    /// LUTs, 2 688 BRAM36, 12 288 DSP slices.
    pub fn virtex_ultrascale_plus() -> Self {
        Self::new(
            "Virtex UltraScale+ (VU13P)",
            Resources::new(1_728_000.0, 2_688.0, 12_288),
            Hertz::from_mhz(125.0),
        )
    }

    /// Device name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Available fabric resources.
    pub fn resources(&self) -> &Resources {
        &self.resources
    }

    /// Design clock frequency.
    pub fn clock(&self) -> Hertz {
        self.clock
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_parts() {
        let z = FpgaDevice::zynq_7020();
        assert_eq!(z.resources().dsps, 220);
        assert_eq!(z.clock().mhz(), 125.0);
        let v = FpgaDevice::virtex_ultrascale_plus();
        assert_eq!(v.resources().dsps, 12_288);
        // the paper's "682 compute units" arithmetic
        assert_eq!(v.resources().dsps / 18, 682);
    }
}
