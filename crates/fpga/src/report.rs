//! Table I regeneration: the FPGA-platform requirements table.

use crate::design::FpgaDesign;

/// One column of Table I.
#[derive(Debug, Clone, PartialEq)]
pub struct PlatformRow {
    /// Column label (`Evaluation` / `Target`).
    pub column: &'static str,
    /// FPGA part name.
    pub fpga_model: String,
    /// FPGAs in the system.
    pub fpga_count: usize,
    /// Cameras served.
    pub cameras: usize,
    /// Per-FPGA logic utilization, percent.
    pub logic_pct: f64,
    /// Per-FPGA BRAM utilization, percent.
    pub ram_pct: f64,
    /// Per-FPGA DSP utilization, percent.
    pub dsp_pct: f64,
    /// Clock in MHz.
    pub clock_mhz: f64,
    /// Compute units per FPGA.
    pub compute_units: usize,
}

/// Builds both Table I columns from the paper's designs.
///
/// # Examples
///
/// ```
/// use incam_fpga::report::table1;
///
/// let rows = table1();
/// assert_eq!(rows.len(), 2);
/// assert_eq!(rows[0].cameras, 2);
/// assert_eq!(rows[1].cameras, 16);
/// ```
pub fn table1() -> Vec<PlatformRow> {
    let eval = FpgaDesign::paper_evaluation();
    let target = FpgaDesign::paper_target();
    vec![
        platform_row("Evaluation", &eval, 1, 2),
        platform_row("Target", &target, 16, 16),
    ]
}

fn platform_row(
    column: &'static str,
    design: &FpgaDesign,
    fpga_count: usize,
    cameras: usize,
) -> PlatformRow {
    let u = design.utilization();
    PlatformRow {
        column,
        fpga_model: design.device().name().to_string(),
        fpga_count,
        cameras,
        logic_pct: u.logic_pct,
        ram_pct: u.ram_pct,
        dsp_pct: u.dsp_pct,
        clock_mhz: design.clock().mhz(),
        compute_units: design.units(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_match_paper_structure() {
        let rows = table1();
        assert_eq!(rows[0].fpga_count, 1);
        assert_eq!(rows[1].fpga_count, 16);
        assert_eq!(rows[0].clock_mhz, 125.0);
        assert_eq!(rows[1].clock_mhz, 125.0);
        assert!(rows[0].fpga_model.contains("Zynq"));
        assert!(rows[1].fpga_model.contains("UltraScale+"));
        // DSP utilization dominates both columns
        for row in &rows {
            assert!(row.dsp_pct > row.logic_pct);
            assert!(row.dsp_pct > row.ram_pct);
        }
    }
}
