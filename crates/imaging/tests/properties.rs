//! Property-based tests of the imaging substrate.

use incam_imaging::convolve::{
    box_blur, convolve_h, convolve_h_reference, convolve_separable, convolve_separable_reference,
    convolve_v, convolve_v_reference, gaussian_blur, gaussian_kernel,
};
use incam_imaging::image::{GrayImage, Image};
use incam_imaging::integral::IntegralImage;
use incam_imaging::quality::{mse, psnr, ssim, SsimConfig};
use incam_imaging::resample::{downscale_by, resize_bilinear};
use incam_rng::prelude::*;

fn arbitrary_image() -> impl Strategy<Value = GrayImage> {
    (4usize..32, 4usize..32, 0u64..10_000).prop_map(|(w, h, seed)| {
        Image::from_fn(w, h, move |x, y| {
            (((x * 31 + y * 17 + seed as usize * 13) % 97) as f32) / 97.0
        })
    })
}

proptest! {
    /// Cropping then reading equals reading with offset.
    #[test]
    fn crop_is_a_view(img in arbitrary_image()) {
        let (w, h) = img.dims();
        let (cw, ch) = (w / 2 + 1, h / 2 + 1);
        let (x0, y0) = (w - cw, h - ch);
        let crop = img.crop(x0, y0, cw, ch);
        for y in 0..ch {
            for x in 0..cw {
                prop_assert_eq!(crop.get(x, y), img.get(x0 + x, y0 + y));
            }
        }
    }

    /// Normalization is idempotent up to float tolerance.
    #[test]
    fn normalization_idempotent(img in arbitrary_image()) {
        let once = img.normalized();
        let twice = once.normalized();
        for (a, b) in once.pixels().iter().zip(twice.pixels()) {
            prop_assert!((a - b).abs() < 1e-3);
        }
    }

    /// Integral-image total equals the pixel sum, and any rectangle's sum
    /// is bounded by the total for non-negative images.
    #[test]
    fn integral_total_and_bounds(img in arbitrary_image()) {
        let (w, h) = img.dims();
        let ii = IntegralImage::new(&img);
        let total = ii.rect_sum(0, 0, w, h);
        let naive: f64 = img.pixels().iter().map(|&p| p as f64).sum();
        prop_assert!((total - naive).abs() < 1e-4);
        let sub = ii.rect_sum(w / 4, h / 4, w / 2, h / 2);
        prop_assert!(sub <= total + 1e-9);
        prop_assert!(sub >= -1e-9);
    }

    /// Blur preserves the mean of periodic-ish content within tolerance
    /// and never exceeds the input range.
    #[test]
    fn blur_range_preservation(img in arbitrary_image()) {
        let out = box_blur(&img, 3);
        let (lo, hi) = img.min_max();
        let (olo, ohi) = out.min_max();
        prop_assert!(olo >= lo - 1e-5 && ohi <= hi + 1e-5);
    }

    /// Convolution is linear: conv(a·x) = a·conv(x).
    #[test]
    fn convolution_linearity(img in arbitrary_image(), scale in 0.1f32..3.0) {
        let kernel = [0.25f32, 0.5, 0.25];
        let direct = convolve_h(&img.map(|p| p * scale), &kernel);
        let scaled = convolve_h(&img, &kernel).map(|p| p * scale);
        for (a, b) in direct.pixels().iter().zip(scaled.pixels()) {
            prop_assert!((a - b).abs() < 1e-4);
        }
    }

    /// Gaussian blur with larger sigma reduces variance at least as much.
    #[test]
    fn blur_monotone_in_sigma(img in arbitrary_image()) {
        let light = gaussian_blur(&img, 0.6).variance();
        let heavy = gaussian_blur(&img, 2.5).variance();
        prop_assert!(heavy <= light + 1e-6);
    }

    /// Identity resize is exact; downscale preserves the mean.
    #[test]
    fn resample_invariants(img in arbitrary_image()) {
        let (w, h) = img.dims();
        let same = resize_bilinear(&img, w, h);
        for (a, b) in same.pixels().iter().zip(img.pixels()) {
            prop_assert!((a - b).abs() < 1e-5);
        }
        if w >= 8 && h >= 8 {
            let half = downscale_by(&img, 2);
            // exact mean preservation when dims are even; cropped
            // remainder rows otherwise shift it slightly
            if w % 2 == 0 && h % 2 == 0 {
                prop_assert!((half.mean() - img.mean()).abs() < 1e-4);
            }
        }
    }

    /// The separable fast path equals the naive dense 2-D convolution
    /// with the same replicate border — the factorization identity the
    /// parallel convolution relies on.
    #[test]
    fn separable_equals_naive_2d(img in arbitrary_image(), sigma in 0.5f32..2.0) {
        let kernel = gaussian_kernel(sigma);
        let fast = convolve_separable(&img, &kernel);
        let r = (kernel.len() / 2) as isize;
        let (w, h) = img.dims();
        let naive = Image::from_fn(w, h, |x, y| {
            let mut acc = 0.0f64;
            for (j, &kv) in kernel.iter().enumerate() {
                for (i, &kh) in kernel.iter().enumerate() {
                    let sx = x as isize + i as isize - r;
                    let sy = y as isize + j as isize - r;
                    acc += kv as f64 * kh as f64 * img.get_clamped(sx, sy) as f64;
                }
            }
            acc as f32
        });
        for (a, b) in fast.pixels().iter().zip(naive.pixels()) {
            prop_assert!((a - b).abs() < 1e-4, "separable {} vs naive {}", a, b);
        }
    }

    /// The parallel row primitive is byte-identical across pool sizes,
    /// including odd-sized inputs that don't divide evenly among workers.
    #[test]
    fn par_map_rows_thread_count_invariant(
        rows in 1usize..33,
        row_len in 1usize..17,
        seed in 0u64..1000,
    ) {
        let fill = move |y: usize, row: &mut [f32]| {
            for (x, slot) in row.iter_mut().enumerate() {
                *slot = ((y * 31 + x * 17 + seed as usize) % 101) as f32 / 101.0;
            }
        };
        let run = |threads: usize| {
            incam_parallel::set_thread_override(Some(threads));
            let out = incam_parallel::par_map_rows(rows, row_len, fill);
            incam_parallel::set_thread_override(None);
            out
        };
        let reference = run(1);
        for threads in [2usize, 3, 8] {
            prop_assert_eq!(&run(threads), &reference, "threads={}", threads);
        }
    }

    /// The interior-fast-path convolutions are bit-exact against the
    /// original clamped per-pixel formulation, across random sizes
    /// (including 1×N / N×1 degenerate shapes and widths smaller than the
    /// kernel radius) and random odd kernels.
    #[test]
    fn convolve_fast_paths_bitwise_equal_reference(
        w in 1usize..40,
        h in 1usize..40,
        radius in 0usize..7,
        seed in 0u64..10_000,
    ) {
        let img = Image::from_fn(w, h, move |x, y| {
            (((x * 31 + y * 17 + seed as usize * 13) % 97) as f32) / 97.0 - 0.3
        });
        let kernel: Vec<f32> = (0..2 * radius + 1)
            .map(|i| ((i * 7 + seed as usize) % 11) as f32 / 11.0 - 0.2)
            .collect();
        let pairs = [
            (convolve_h(&img, &kernel), convolve_h_reference(&img, &kernel)),
            (convolve_v(&img, &kernel), convolve_v_reference(&img, &kernel)),
            (
                convolve_separable(&img, &kernel),
                convolve_separable_reference(&img, &kernel),
            ),
        ];
        for (fast, reference) in &pairs {
            for (a, b) in fast.pixels().iter().zip(reference.pixels()) {
                prop_assert_eq!(a.to_bits(), b.to_bits(), "{} vs {}", a, b);
            }
        }
    }

    /// The single-pass integral-image construction is bit-exact against
    /// the original two-pass bounds-checked formulation, at both pool
    /// dispatch paths (threads 1 and 4) and on degenerate shapes.
    #[test]
    fn integral_fast_path_bitwise_equal_reference(
        w in 1usize..48,
        h in 1usize..48,
        seed in 0u64..10_000,
    ) {
        let img = Image::from_fn(w, h, move |x, y| {
            (((x * 13 + y * 29 + seed as usize * 7) % 83) as f32) / 83.0
        });
        for threads in [1usize, 4] {
            incam_parallel::set_thread_override(Some(threads));
            let pairs = [
                (IntegralImage::new(&img), IntegralImage::new_reference(&img)),
                (IntegralImage::squared(&img), IntegralImage::squared_reference(&img)),
            ];
            incam_parallel::set_thread_override(None);
            for (fast, reference) in &pairs {
                for (a, b) in fast.table().iter().zip(reference.table()) {
                    prop_assert_eq!(a.to_bits(), b.to_bits(), "threads={}", threads);
                }
            }
        }
    }

    /// Quality metrics: identity scores perfectly; MSE is symmetric;
    /// SSIM is bounded.
    #[test]
    fn quality_metric_axioms(a in arbitrary_image(), seed in 0u64..1000) {
        prop_assert_eq!(mse(&a, &a), 0.0);
        prop_assert!(psnr(&a, &a).is_infinite());
        let (w, h) = a.dims();
        let b = Image::from_fn(w, h, |x, y| {
            (((x * 7 + y * 23 + seed as usize) % 89) as f32) / 89.0
        });
        prop_assert!((mse(&a, &b) - mse(&b, &a)).abs() < 1e-12);
        let s = ssim(&a, &b, &SsimConfig::default());
        prop_assert!((-1.0..=1.0 + 1e-9).contains(&s));
    }
}
