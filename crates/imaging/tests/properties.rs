//! Property-based tests of the imaging substrate.

use incam_imaging::convolve::{box_blur, convolve_h, gaussian_blur};
use incam_imaging::image::{GrayImage, Image};
use incam_imaging::integral::IntegralImage;
use incam_imaging::quality::{mse, psnr, ssim, SsimConfig};
use incam_imaging::resample::{downscale_by, resize_bilinear};
use incam_rng::prelude::*;

fn arbitrary_image() -> impl Strategy<Value = GrayImage> {
    (4usize..32, 4usize..32, 0u64..10_000).prop_map(|(w, h, seed)| {
        Image::from_fn(w, h, move |x, y| {
            (((x * 31 + y * 17 + seed as usize * 13) % 97) as f32) / 97.0
        })
    })
}

proptest! {
    /// Cropping then reading equals reading with offset.
    #[test]
    fn crop_is_a_view(img in arbitrary_image()) {
        let (w, h) = img.dims();
        let (cw, ch) = (w / 2 + 1, h / 2 + 1);
        let (x0, y0) = (w - cw, h - ch);
        let crop = img.crop(x0, y0, cw, ch);
        for y in 0..ch {
            for x in 0..cw {
                prop_assert_eq!(crop.get(x, y), img.get(x0 + x, y0 + y));
            }
        }
    }

    /// Normalization is idempotent up to float tolerance.
    #[test]
    fn normalization_idempotent(img in arbitrary_image()) {
        let once = img.normalized();
        let twice = once.normalized();
        for (a, b) in once.pixels().iter().zip(twice.pixels()) {
            prop_assert!((a - b).abs() < 1e-3);
        }
    }

    /// Integral-image total equals the pixel sum, and any rectangle's sum
    /// is bounded by the total for non-negative images.
    #[test]
    fn integral_total_and_bounds(img in arbitrary_image()) {
        let (w, h) = img.dims();
        let ii = IntegralImage::new(&img);
        let total = ii.rect_sum(0, 0, w, h);
        let naive: f64 = img.pixels().iter().map(|&p| p as f64).sum();
        prop_assert!((total - naive).abs() < 1e-4);
        let sub = ii.rect_sum(w / 4, h / 4, w / 2, h / 2);
        prop_assert!(sub <= total + 1e-9);
        prop_assert!(sub >= -1e-9);
    }

    /// Blur preserves the mean of periodic-ish content within tolerance
    /// and never exceeds the input range.
    #[test]
    fn blur_range_preservation(img in arbitrary_image()) {
        let out = box_blur(&img, 3);
        let (lo, hi) = img.min_max();
        let (olo, ohi) = out.min_max();
        prop_assert!(olo >= lo - 1e-5 && ohi <= hi + 1e-5);
    }

    /// Convolution is linear: conv(a·x) = a·conv(x).
    #[test]
    fn convolution_linearity(img in arbitrary_image(), scale in 0.1f32..3.0) {
        let kernel = [0.25f32, 0.5, 0.25];
        let direct = convolve_h(&img.map(|p| p * scale), &kernel);
        let scaled = convolve_h(&img, &kernel).map(|p| p * scale);
        for (a, b) in direct.pixels().iter().zip(scaled.pixels()) {
            prop_assert!((a - b).abs() < 1e-4);
        }
    }

    /// Gaussian blur with larger sigma reduces variance at least as much.
    #[test]
    fn blur_monotone_in_sigma(img in arbitrary_image()) {
        let light = gaussian_blur(&img, 0.6).variance();
        let heavy = gaussian_blur(&img, 2.5).variance();
        prop_assert!(heavy <= light + 1e-6);
    }

    /// Identity resize is exact; downscale preserves the mean.
    #[test]
    fn resample_invariants(img in arbitrary_image()) {
        let (w, h) = img.dims();
        let same = resize_bilinear(&img, w, h);
        for (a, b) in same.pixels().iter().zip(img.pixels()) {
            prop_assert!((a - b).abs() < 1e-5);
        }
        if w >= 8 && h >= 8 {
            let half = downscale_by(&img, 2);
            // exact mean preservation when dims are even; cropped
            // remainder rows otherwise shift it slightly
            if w % 2 == 0 && h % 2 == 0 {
                prop_assert!((half.mean() - img.mean()).abs() < 1e-4);
            }
        }
    }

    /// Quality metrics: identity scores perfectly; MSE is symmetric;
    /// SSIM is bounded.
    #[test]
    fn quality_metric_axioms(a in arbitrary_image(), seed in 0u64..1000) {
        prop_assert_eq!(mse(&a, &a), 0.0);
        prop_assert!(psnr(&a, &a).is_infinite());
        let (w, h) = a.dims();
        let b = Image::from_fn(w, h, |x, y| {
            (((x * 7 + y * 23 + seed as usize) % 89) as f32) / 89.0
        });
        prop_assert!((mse(&a, &b) - mse(&b, &a)).abs() < 1e-12);
        let s = ssim(&a, &b, &SsimConfig::default());
        prop_assert!((-1.0..=1.0 + 1e-9).contains(&s));
    }
}
