//! Frame-differencing motion detection.
//!
//! The paper's face-authentication pipeline uses motion detection as its
//! first *optional* block: it runs on every frame but costs almost nothing,
//! and when the scene is static it prevents the expensive face-detection
//! and NN-authentication blocks from running at all. That progressive
//! filtering is the headline energy optimization of the low-power case
//! study.

use crate::image::GrayImage;

/// A simple frame-differencing motion detector with a reference frame.
///
/// A pixel is *changed* if its absolute difference from the reference
/// exceeds `pixel_threshold`; the frame contains *motion* if the fraction
/// of changed pixels exceeds `area_threshold`. The reference is updated to
/// each observed frame (previous-frame differencing), matching the
/// streaming, constant-memory implementation an in-sensor ASIC would use.
///
/// # Examples
///
/// ```
/// use incam_imaging::image::GrayImage;
/// use incam_imaging::motion::MotionDetector;
///
/// let mut md = MotionDetector::new(0.1, 0.02);
/// let dark = GrayImage::new(8, 8, 0.2);
/// let bright = GrayImage::new(8, 8, 0.8);
/// assert!(!md.observe(&dark));  // first frame: no reference yet
/// assert!(!md.observe(&dark));  // unchanged scene
/// assert!(md.observe(&bright)); // scene changed
/// ```
#[derive(Debug, Clone)]
pub struct MotionDetector {
    pixel_threshold: f32,
    area_threshold: f32,
    reference: Option<GrayImage>,
}

impl MotionDetector {
    /// Creates a detector.
    ///
    /// # Panics
    ///
    /// Panics if either threshold is outside `[0, 1]`.
    pub fn new(pixel_threshold: f32, area_threshold: f32) -> Self {
        assert!(
            (0.0..=1.0).contains(&pixel_threshold),
            "pixel threshold must be in [0, 1]"
        );
        assert!(
            (0.0..=1.0).contains(&area_threshold),
            "area threshold must be in [0, 1]"
        );
        Self {
            pixel_threshold,
            area_threshold,
            reference: None,
        }
    }

    /// Per-pixel change threshold.
    pub fn pixel_threshold(&self) -> f32 {
        self.pixel_threshold
    }

    /// Changed-area fraction required to report motion.
    pub fn area_threshold(&self) -> f32 {
        self.area_threshold
    }

    /// Observes a frame, returning `true` if motion is detected relative to
    /// the previous frame. The first frame never reports motion.
    ///
    /// # Panics
    ///
    /// Panics if the frame's dimensions differ from the reference's.
    pub fn observe(&mut self, frame: &GrayImage) -> bool {
        let motion = match &self.reference {
            None => false,
            Some(reference) => self.changed_fraction(reference, frame) > self.area_threshold,
        };
        self.reference = Some(frame.clone());
        motion
    }

    /// Fraction of pixels whose change exceeds the pixel threshold.
    fn changed_fraction(&self, reference: &GrayImage, frame: &GrayImage) -> f32 {
        assert_eq!(
            reference.dims(),
            frame.dims(),
            "frame dimensions changed mid-stream"
        );
        let changed = reference
            .pixels()
            .iter()
            .zip(frame.pixels())
            .filter(|(a, b)| (**a - **b).abs() > self.pixel_threshold)
            .count();
        changed as f32 / frame.len() as f32
    }

    /// Resets the detector, forgetting the reference frame.
    pub fn reset(&mut self) {
        self.reference = None;
    }

    /// Number of fundamental operations per frame (one subtract/compare per
    /// pixel plus the area accumulation) — used by the energy model.
    pub fn ops_per_frame(width: usize, height: usize) -> u64 {
        (width * height) as u64 * 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::image::Image;

    #[test]
    fn static_scene_no_motion() {
        let mut md = MotionDetector::new(0.05, 0.01);
        let frame = Image::from_fn(16, 16, |x, y| ((x + y) % 7) as f32 / 7.0);
        assert!(!md.observe(&frame));
        for _ in 0..5 {
            assert!(!md.observe(&frame));
        }
    }

    #[test]
    fn localized_change_respects_area_threshold() {
        let mut md = MotionDetector::new(0.1, 0.05);
        let quiet = GrayImage::new(10, 10, 0.5);
        md.observe(&quiet);
        // 4 of 100 pixels change: below the 5% area threshold
        let mut small = quiet.clone();
        for i in 0..4 {
            small.set(i, 0, 1.0);
        }
        assert!(!md.observe(&small));
        // 10 more pixels change relative to `small`
        let mut big = small.clone();
        for i in 0..10 {
            big.set(i, 5, 1.0);
        }
        assert!(md.observe(&big));
    }

    #[test]
    fn reference_updates_each_frame() {
        let mut md = MotionDetector::new(0.1, 0.01);
        let a = GrayImage::new(8, 8, 0.1);
        let b = GrayImage::new(8, 8, 0.9);
        md.observe(&a);
        assert!(md.observe(&b)); // a -> b is motion
        assert!(!md.observe(&b)); // b -> b is not
    }

    #[test]
    fn reset_forgets_reference() {
        let mut md = MotionDetector::new(0.1, 0.01);
        let a = GrayImage::new(4, 4, 0.0);
        let b = GrayImage::new(4, 4, 1.0);
        md.observe(&a);
        md.reset();
        assert!(!md.observe(&b)); // first frame after reset
    }

    #[test]
    fn ops_scale_with_pixels() {
        assert_eq!(MotionDetector::ops_per_frame(10, 10), 200);
    }

    #[test]
    #[should_panic(expected = "dimensions")]
    fn dimension_change_panics() {
        let mut md = MotionDetector::new(0.1, 0.01);
        md.observe(&GrayImage::zeros(4, 4));
        md.observe(&GrayImage::zeros(5, 5));
    }
}
