//! A minimal, dense, row-major image container.
//!
//! [`Image<T>`] is the pixel substrate shared by every vision component in
//! the workspace: integral images, Haar features, bilateral grids, quality
//! metrics and the synthetic workload generators all operate on it. It is a
//! deliberately simple `Vec`-backed buffer with bounds-checked accessors and
//! a handful of bulk operations; per-algorithm logic lives in the algorithm
//! modules.

use core::fmt;

/// A dense, row-major 2-D image with pixels of type `T`.
///
/// Most of the workspace uses `Image<f32>` with intensities in `[0, 1]`
/// (the [`GrayImage`] alias); raw sensor models use `Image<u8>`/`Image<u16>`.
///
/// # Examples
///
/// ```
/// use incam_imaging::image::Image;
///
/// let mut img = Image::new(4, 3, 0.0f32);
/// img.set(2, 1, 0.5);
/// assert_eq!(img.get(2, 1), 0.5);
/// assert_eq!(img.width(), 4);
/// assert_eq!(img.len(), 12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Image<T> {
    width: usize,
    height: usize,
    data: Vec<T>,
}

/// Grayscale floating-point image with intensities nominally in `[0, 1]`.
pub type GrayImage = Image<f32>;

impl<T: Copy> Image<T> {
    /// Creates an image filled with `fill`.
    ///
    /// # Panics
    ///
    /// Panics if `width * height` overflows or either dimension is zero.
    pub fn new(width: usize, height: usize, fill: T) -> Self {
        assert!(width > 0 && height > 0, "image dimensions must be nonzero");
        let len = width
            .checked_mul(height)
            .expect("image dimensions overflow"); // incam-lint: allow(fallible-unwrap) — dimension overflow is a construction bug worth aborting on
        Self {
            width,
            height,
            data: vec![fill; len],
        }
    }

    /// Creates an image by evaluating `f(x, y)` at every pixel.
    ///
    /// # Examples
    ///
    /// ```
    /// use incam_imaging::image::Image;
    /// let ramp = Image::from_fn(3, 2, |x, y| (x + y) as f32);
    /// assert_eq!(ramp.get(2, 1), 3.0);
    /// ```
    pub fn from_fn(width: usize, height: usize, mut f: impl FnMut(usize, usize) -> T) -> Self {
        assert!(width > 0 && height > 0, "image dimensions must be nonzero");
        let mut data = Vec::with_capacity(width * height);
        for y in 0..height {
            for x in 0..width {
                data.push(f(x, y));
            }
        }
        Self {
            width,
            height,
            data,
        }
    }

    /// Like [`Image::from_fn`], but rows are evaluated in parallel on the
    /// [`incam_parallel`] pool. Byte-identical to `from_fn` at any thread
    /// count (each pixel is a pure function of its coordinates); the pool
    /// falls back to sequential evaluation at one thread.
    ///
    /// # Examples
    ///
    /// ```
    /// use incam_imaging::image::Image;
    /// let a = Image::from_fn(33, 17, |x, y| (x * 31 + y) as f32);
    /// let b = Image::from_fn_par(33, 17, |x, y| (x * 31 + y) as f32);
    /// assert_eq!(a, b);
    /// ```
    pub fn from_fn_par(width: usize, height: usize, f: impl Fn(usize, usize) -> T + Sync) -> Self
    where
        T: Send + Default,
    {
        assert!(width > 0 && height > 0, "image dimensions must be nonzero");
        let data = incam_parallel::par_map_rows(height, width, |y, row| {
            for (x, slot) in row.iter_mut().enumerate() {
                *slot = f(x, y);
            }
        });
        Self {
            width,
            height,
            data,
        }
    }

    /// Wraps an existing row-major pixel buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != width * height`.
    pub fn from_vec(width: usize, height: usize, data: Vec<T>) -> Self {
        assert_eq!(
            data.len(),
            width * height,
            "buffer length {} does not match {}x{}",
            data.len(),
            width,
            height
        );
        Self {
            width,
            height,
            data,
        }
    }

    /// Image width in pixels.
    #[inline]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Image height in pixels.
    #[inline]
    pub fn height(&self) -> usize {
        self.height
    }

    /// `(width, height)`.
    #[inline]
    pub fn dims(&self) -> (usize, usize) {
        (self.width, self.height)
    }

    /// Total number of pixels.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Always `false`: images have nonzero dimensions by construction.
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Reads the pixel at `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if `(x, y)` is out of bounds.
    #[inline]
    pub fn get(&self, x: usize, y: usize) -> T {
        assert!(x < self.width && y < self.height, "pixel out of bounds");
        self.data[y * self.width + x]
    }

    /// Reads the pixel at `(x, y)`, or `None` if out of bounds.
    #[inline]
    pub fn try_get(&self, x: usize, y: usize) -> Option<T> {
        (x < self.width && y < self.height).then(|| self.data[y * self.width + x])
    }

    /// Reads the pixel at `(x, y)` with coordinates clamped into bounds —
    /// the standard replicate border policy used by the filters here.
    #[inline]
    pub fn get_clamped(&self, x: isize, y: isize) -> T {
        let cx = x.clamp(0, self.width as isize - 1) as usize;
        let cy = y.clamp(0, self.height as isize - 1) as usize;
        self.data[cy * self.width + cx]
    }

    /// Writes the pixel at `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if `(x, y)` is out of bounds.
    #[inline]
    pub fn set(&mut self, x: usize, y: usize, value: T) {
        assert!(x < self.width && y < self.height, "pixel out of bounds");
        self.data[y * self.width + x] = value;
    }

    /// The raw row-major pixel buffer.
    #[inline]
    pub fn pixels(&self) -> &[T] {
        &self.data
    }

    /// Mutable access to the raw row-major pixel buffer.
    #[inline]
    pub fn pixels_mut(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// One row of pixels.
    ///
    /// # Panics
    ///
    /// Panics if `y` is out of bounds.
    #[inline]
    pub fn row(&self, y: usize) -> &[T] {
        assert!(y < self.height, "row out of bounds");
        &self.data[y * self.width..(y + 1) * self.width]
    }

    /// Applies `f` to every pixel, producing a new image.
    pub fn map<U: Copy>(&self, mut f: impl FnMut(T) -> U) -> Image<U> {
        Image {
            width: self.width,
            height: self.height,
            data: self.data.iter().map(|&p| f(p)).collect(),
        }
    }

    /// Extracts a `w × h` sub-image with top-left corner `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if the window does not fit within the image.
    pub fn crop(&self, x: usize, y: usize, w: usize, h: usize) -> Image<T> {
        assert!(
            x + w <= self.width && y + h <= self.height,
            "crop {}x{}+{}+{} exceeds {}x{}",
            w,
            h,
            x,
            y,
            self.width,
            self.height
        );
        Image::from_fn(w, h, |cx, cy| self.get(x + cx, y + cy))
    }

    /// Overwrites all pixels with `value`.
    pub fn fill(&mut self, value: T) {
        self.data.fill(value);
    }
}

impl GrayImage {
    /// Creates a black (all-zero) grayscale image.
    pub fn zeros(width: usize, height: usize) -> Self {
        Self::new(width, height, 0.0)
    }

    /// Mean intensity.
    pub fn mean(&self) -> f32 {
        let sum: f64 = self.data.iter().map(|&p| p as f64).sum();
        (sum / self.data.len() as f64) as f32
    }

    /// Population variance of intensity.
    pub fn variance(&self) -> f32 {
        let mean = self.mean() as f64;
        let var: f64 = self
            .data
            .iter()
            .map(|&p| {
                let d = p as f64 - mean;
                d * d
            })
            .sum::<f64>()
            / self.data.len() as f64;
        var as f32
    }

    /// Minimum and maximum intensity.
    pub fn min_max(&self) -> (f32, f32) {
        self.data
            .iter()
            .fold((f32::INFINITY, f32::NEG_INFINITY), |(lo, hi), &p| {
                (lo.min(p), hi.max(p))
            })
    }

    /// Clamps every pixel into `[0, 1]`.
    pub fn clamp01(&mut self) {
        for p in &mut self.data {
            *p = p.clamp(0.0, 1.0);
        }
    }

    /// Normalizes the image to zero mean and unit variance. Constant images
    /// map to all zeros.
    pub fn normalized(&self) -> GrayImage {
        let mean = self.mean();
        let sd = self.variance().sqrt();
        if sd <= f32::EPSILON {
            return GrayImage::zeros(self.width, self.height);
        }
        self.map(|p| (p - mean) / sd)
    }

    /// Quantizes to 8-bit pixels (clamping into `[0, 1]` first).
    pub fn to_u8(&self) -> Image<u8> {
        self.map(|p| (p.clamp(0.0, 1.0) * 255.0).round() as u8)
    }

    /// Flattens the image to a row-major `f32` feature vector (used as NN
    /// input).
    pub fn to_vec_f32(&self) -> Vec<f32> {
        self.data.clone()
    }
}

impl Image<u8> {
    /// Converts an 8-bit image to floating point in `[0, 1]`.
    pub fn to_gray(&self) -> GrayImage {
        self.map(|p| p as f32 / 255.0)
    }
}

impl<T> fmt::Display for Image<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Image({}x{})", self.width, self.height)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let mut img = Image::new(3, 2, 1u8);
        assert_eq!(img.dims(), (3, 2));
        assert_eq!(img.len(), 6);
        img.set(0, 1, 7);
        assert_eq!(img.get(0, 1), 7);
        assert_eq!(img.try_get(3, 0), None);
        assert_eq!(img.try_get(2, 1), Some(1));
    }

    #[test]
    fn from_fn_row_major() {
        let img = Image::from_fn(3, 2, |x, y| (10 * y + x) as u8);
        assert_eq!(img.pixels(), &[0, 1, 2, 10, 11, 12]);
        assert_eq!(img.row(1), &[10, 11, 12]);
    }

    #[test]
    fn clamped_border_access() {
        let img = Image::from_fn(2, 2, |x, y| (y * 2 + x) as f32);
        assert_eq!(img.get_clamped(-5, -5), 0.0);
        assert_eq!(img.get_clamped(10, 10), 3.0);
        assert_eq!(img.get_clamped(1, 0), 1.0);
    }

    #[test]
    fn crop_extracts_window() {
        let img = Image::from_fn(4, 4, |x, y| (y * 4 + x) as f32);
        let c = img.crop(1, 2, 2, 2);
        assert_eq!(c.pixels(), &[9.0, 10.0, 13.0, 14.0]);
    }

    #[test]
    #[should_panic(expected = "crop")]
    fn crop_out_of_bounds_panics() {
        let img = GrayImage::zeros(4, 4);
        let _ = img.crop(3, 3, 2, 2);
    }

    #[test]
    fn statistics() {
        let img = Image::from_vec(2, 2, vec![0.0f32, 1.0, 0.0, 1.0]);
        assert!((img.mean() - 0.5).abs() < 1e-6);
        assert!((img.variance() - 0.25).abs() < 1e-6);
        assert_eq!(img.min_max(), (0.0, 1.0));
    }

    #[test]
    fn normalization_zero_mean_unit_var() {
        let img = Image::from_vec(2, 2, vec![0.0f32, 2.0, 0.0, 2.0]);
        let n = img.normalized();
        assert!(n.mean().abs() < 1e-6);
        assert!((n.variance() - 1.0).abs() < 1e-5);
        // constant image normalizes to zeros rather than NaN
        let flat = GrayImage::new(2, 2, 0.7);
        assert_eq!(flat.normalized().pixels(), &[0.0; 4]);
    }

    #[test]
    fn u8_round_trip() {
        let img = Image::from_vec(2, 1, vec![0.25f32, 1.5]);
        let q = img.to_u8();
        assert_eq!(q.pixels(), &[64, 255]);
        let back = q.to_gray();
        assert!((back.get(0, 0) - 0.251).abs() < 0.01);
    }

    #[test]
    fn map_changes_type() {
        let img = Image::new(2, 2, 2u8);
        let doubled: Image<u16> = img.map(|p| p as u16 * 2);
        assert_eq!(doubled.get(1, 1), 4);
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_dimension_rejected() {
        let _ = Image::new(0, 5, 0u8);
    }
}
