//! Drawing primitives used by the synthetic workload generators.
//!
//! All operations draw into an existing [`GrayImage`] with clipping, so
//! generators can place shapes partially off-frame (people walking into
//! the scene, faces near borders).

use crate::image::GrayImage;

/// Fills an axis-aligned rectangle (clipped to the image).
pub fn fill_rect(img: &mut GrayImage, x: isize, y: isize, w: usize, h: usize, value: f32) {
    let (iw, ih) = img.dims();
    let x0 = x.max(0) as usize;
    let y0 = y.max(0) as usize;
    let x1 = ((x + w as isize).max(0) as usize).min(iw);
    let y1 = ((y + h as isize).max(0) as usize).min(ih);
    for yy in y0..y1 {
        for xx in x0..x1 {
            img.set(xx, yy, value);
        }
    }
}

/// Fills an ellipse centered at `(cx, cy)` with radii `(rx, ry)` (clipped).
///
/// # Examples
///
/// ```
/// use incam_imaging::draw::fill_ellipse;
/// use incam_imaging::image::GrayImage;
///
/// let mut img = GrayImage::zeros(16, 16);
/// fill_ellipse(&mut img, 8.0, 8.0, 4.0, 6.0, 1.0);
/// assert_eq!(img.get(8, 8), 1.0);  // center is filled
/// assert_eq!(img.get(0, 0), 0.0);  // corner is not
/// ```
pub fn fill_ellipse(img: &mut GrayImage, cx: f32, cy: f32, rx: f32, ry: f32, value: f32) {
    if rx <= 0.0 || ry <= 0.0 {
        return;
    }
    let (iw, ih) = img.dims();
    let x0 = ((cx - rx).floor().max(0.0)) as usize;
    let y0 = ((cy - ry).floor().max(0.0)) as usize;
    let x1 = (((cx + rx).ceil() as usize) + 1).min(iw);
    let y1 = (((cy + ry).ceil() as usize) + 1).min(ih);
    for yy in y0..y1 {
        for xx in x0..x1 {
            let dx = (xx as f32 - cx) / rx;
            let dy = (yy as f32 - cy) / ry;
            if dx * dx + dy * dy <= 1.0 {
                img.set(xx, yy, value);
            }
        }
    }
}

/// Blends an ellipse: `p ← (1-alpha)·p + alpha·value` inside the ellipse.
pub fn blend_ellipse(
    img: &mut GrayImage,
    cx: f32,
    cy: f32,
    rx: f32,
    ry: f32,
    value: f32,
    alpha: f32,
) {
    if rx <= 0.0 || ry <= 0.0 {
        return;
    }
    let (iw, ih) = img.dims();
    let x0 = ((cx - rx).floor().max(0.0)) as usize;
    let y0 = ((cy - ry).floor().max(0.0)) as usize;
    let x1 = (((cx + rx).ceil() as usize) + 1).min(iw);
    let y1 = (((cy + ry).ceil() as usize) + 1).min(ih);
    for yy in y0..y1 {
        for xx in x0..x1 {
            let dx = (xx as f32 - cx) / rx;
            let dy = (yy as f32 - cy) / ry;
            if dx * dx + dy * dy <= 1.0 {
                let p = img.get(xx, yy);
                img.set(xx, yy, p * (1.0 - alpha) + value * alpha);
            }
        }
    }
}

/// Fills the whole image with a vertical linear gradient from `top` to
/// `bottom`.
pub fn vertical_gradient(img: &mut GrayImage, top: f32, bottom: f32) {
    let h = img.height();
    for y in 0..h {
        let t = if h > 1 {
            y as f32 / (h - 1) as f32
        } else {
            0.0
        };
        let v = top + (bottom - top) * t;
        for x in 0..img.width() {
            img.set(x, y, v);
        }
    }
}

/// Composites `src` onto `dst` with its top-left at `(x, y)` (clipped),
/// replacing destination pixels.
pub fn blit(dst: &mut GrayImage, src: &GrayImage, x: isize, y: isize) {
    let (dw, dh) = dst.dims();
    for sy in 0..src.height() {
        let ty = y + sy as isize;
        if ty < 0 || ty >= dh as isize {
            continue;
        }
        for sx in 0..src.width() {
            let tx = x + sx as isize;
            if tx < 0 || tx >= dw as isize {
                continue;
            }
            dst.set(tx as usize, ty as usize, src.get(sx, sy));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rect_clips_at_borders() {
        let mut img = GrayImage::zeros(4, 4);
        fill_rect(&mut img, -2, -2, 4, 4, 1.0);
        assert_eq!(img.get(0, 0), 1.0);
        assert_eq!(img.get(1, 1), 1.0);
        assert_eq!(img.get(2, 2), 0.0);
    }

    #[test]
    fn ellipse_inside_outside() {
        let mut img = GrayImage::zeros(20, 20);
        fill_ellipse(&mut img, 10.0, 10.0, 5.0, 3.0, 0.8);
        assert_eq!(img.get(10, 10), 0.8);
        assert_eq!(img.get(14, 10), 0.8); // on x radius
        assert_eq!(img.get(10, 14), 0.0); // beyond y radius
    }

    #[test]
    fn blend_mixes_values() {
        let mut img = GrayImage::new(8, 8, 0.0);
        blend_ellipse(&mut img, 4.0, 4.0, 3.0, 3.0, 1.0, 0.5);
        assert!((img.get(4, 4) - 0.5).abs() < 1e-6);
    }

    #[test]
    fn gradient_endpoints() {
        let mut img = GrayImage::zeros(3, 5);
        vertical_gradient(&mut img, 0.2, 0.8);
        assert!((img.get(1, 0) - 0.2).abs() < 1e-6);
        assert!((img.get(1, 4) - 0.8).abs() < 1e-6);
    }

    #[test]
    fn blit_clips() {
        let mut dst = GrayImage::zeros(4, 4);
        let src = GrayImage::new(3, 3, 1.0);
        blit(&mut dst, &src, 2, 2);
        assert_eq!(dst.get(3, 3), 1.0);
        assert_eq!(dst.get(1, 1), 0.0);
    }

    #[test]
    fn degenerate_ellipse_is_noop() {
        let mut img = GrayImage::zeros(4, 4);
        fill_ellipse(&mut img, 2.0, 2.0, 0.0, 3.0, 1.0);
        assert_eq!(img.pixels().iter().sum::<f32>(), 0.0);
    }
}
