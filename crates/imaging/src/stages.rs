//! The raw imaging pipeline as configuration-space blocks.
//!
//! Buckler et al. (*Reconfiguring the Imaging Pipeline for Computer
//! Vision*, PAPERS.md) observe that the classic ISP — demosaic, denoise,
//! tone-map — is engineered for human viewing, and that vision
//! algorithms tolerate far cheaper approximations of every stage. This
//! module expresses that observation in [`incam_core::explore`] terms:
//! each ISP stage becomes an optional [`BlockSpace`] whose bindings span
//! the quality-vs-cost range, so the *search engine* discovers what
//! Buckler et al. measured — the high-quality bindings are dominated on
//! every cost axis (throughput, energy, output size) and prune out of
//! the Pareto set before the product is ever formed. Accuracy is
//! deliberately not a search axis; the dominated bindings carry the
//! quality the search proves it never needs to pay for.
//!
//! The final reduction stage is a NeuriCam-style key-frame dual stream
//! (PAPERS.md): ship every `K`-th frame at full resolution plus every
//! frame subsampled by `s` per axis, and let the *cloud* reconstruct
//! full-rate video — so the camera pays `1/K + 1/s²` of the bytes and
//! none of the reconstruction compute (it lands past the cut, where the
//! paper's model bills compute as free and only communication is paid).
//!
//! Costs are derived, not asserted: each binding's throughput and
//! energy follow from a per-frame operation count (grounded in the
//! arithmetic of this crate's own kernels — [`crate::color::demosaic_bilinear`],
//! [`crate::convolve`], [`crate::resample`]) and a per-backend
//! (ops/s, energy/op) point, the same linear costing the WISPCam MCU
//! model uses.

use incam_core::block::{Backend, BlockSpec, DataTransform};
use incam_core::explore::{Binding, BlockSpace, PipelineSpace};
use incam_core::pipeline::Source;
use incam_core::units::{Bytes, Fps, Joules};

/// Sensor width of the widened space's raw source (pixels).
pub const RAW_WIDTH: f64 = 1920.0;

/// Sensor height of the widened space's raw source (pixels).
pub const RAW_HEIGHT: f64 = 1080.0;

/// Pixels per raw frame.
pub const RAW_PIXELS: f64 = RAW_WIDTH * RAW_HEIGHT;

/// Bytes per raw frame: an 8-bit Bayer mosaic, one byte per pixel
/// (see [`crate::color::bayer_mosaic`]).
pub const RAW_FRAME_BYTES: f64 = RAW_PIXELS;

/// Nominal sensor frame rate.
pub const RAW_FPS: f64 = 30.0;

/// Sensor capture energy per raw frame: ~400 pJ/pixel, a mainstream
/// CMOS rolling-shutter figure.
pub const CAPTURE_ENERGY_PER_PIXEL_J: f64 = 400e-12;

/// One compute backend as a linear cost point: how fast it retires
/// image operations and what each costs. Energy and time are both
/// linear in operation count — the same closed-form costing the
/// WISPCam MCU model uses, applied across the substrate range.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BackendPoint {
    /// The explorer backend this point prices.
    pub backend: Backend,
    /// Sustained image operations per second.
    pub ops_per_sec: f64,
    /// Energy per operation (J).
    pub energy_per_op: Joules,
}

/// Fixed-function ISP silicon: pixel-pipelined, sub-pJ per operation.
pub const ASIC: BackendPoint = BackendPoint {
    backend: Backend::Asic,
    ops_per_sec: 1.8e9,
    energy_per_op: Joules::new(0.06e-12),
};

/// Embedded application CPU: flexible, ~250× the ASIC's energy/op.
pub const CPU: BackendPoint = BackendPoint {
    backend: Backend::Cpu,
    ops_per_sec: 120e6,
    energy_per_op: Joules::new(15e-12),
};

/// Microcontroller: the sub-mW fallback, slowest and hungriest per op.
pub const MCU: BackendPoint = BackendPoint {
    backend: Backend::Mcu,
    ops_per_sec: 12e6,
    energy_per_op: Joules::new(300e-12),
};

/// Integrated GPU: massive throughput at a 50× ASIC energy/op premium.
pub const GPU: BackendPoint = BackendPoint {
    backend: Backend::Gpu,
    ops_per_sec: 60e9,
    energy_per_op: Joules::new(3e-12),
};

impl BackendPoint {
    /// Prices `ops_per_frame` operations on this backend as an explorer
    /// [`Binding`]: throughput = ops/s ÷ ops/frame, energy = ops ×
    /// energy/op.
    pub fn binding(&self, ops_per_frame: f64) -> Binding {
        Binding::new(self.backend, Fps::new(self.ops_per_sec / ops_per_frame))
            .with_energy_per_frame(Joules::new(self.energy_per_op.joules() * ops_per_frame))
    }
}

/// The demosaic stage: Bayer mosaic in, RGB out (3 bytes per raw byte;
/// [`crate::color::demosaic_bilinear`] is the reference arithmetic at
/// ~7 ops/pixel — two-to-four neighbor averages per missing channel).
///
/// Four bindings spanning Buckler et al.'s quality range, ordered
/// cheapest-viewing-quality first so the earlier-sibling dominance rule
/// sees them in presentation order:
///
/// 0. ASIC bilinear — the live full-resolution point;
/// 1. ASIC edge-aware (gradient-corrected, ~24 ops/px) — *better*
///    demosaic quality, but dominated by binding 0 on every cost axis;
/// 2. CPU bilinear — dominated (same output, slower, hungrier);
/// 3. ASIC 2×-subsampled bilinear — half the pixels, half the output
///    bytes (`Scale(1.5)` instead of `Scale(3.0)`): the Buckler-style
///    "vision doesn't need full resolution" point, live because nothing
///    earlier beats its output size.
pub fn demosaic_block() -> BlockSpace {
    let full = 7.0 * RAW_PIXELS;
    let edge_aware = 24.0 * RAW_PIXELS;
    let subsampled = 3.5 * RAW_PIXELS;
    BlockSpace::new(
        BlockSpec::optional("DM", DataTransform::Scale(3.0)),
        vec![
            ASIC.binding(full),
            ASIC.binding(edge_aware),
            CPU.binding(full),
            ASIC.binding(subsampled)
                .with_output(DataTransform::Scale(1.5)),
        ],
    )
}

/// The denoise stage (size-preserving). Reference arithmetic:
/// [`crate::convolve`] separable Gaussian at ~11 ops/px; the bilateral
/// filter's range weights push it to ~30 ops/px; a 3×3 median sort
/// network lands at ~25 ops/px.
///
/// 0. ASIC bilateral — live: the quality point nothing earlier beats;
/// 1. ASIC Gaussian — live: cheaper and faster, worse edges;
/// 2. CPU Gaussian — dominated by binding 0;
/// 3. ASIC median — dominated by binding 1 (slower *and* hungrier than
///    the Gaussian at identical output size).
pub fn denoise_block() -> BlockSpace {
    BlockSpace::new(
        BlockSpec::optional("DN", DataTransform::Identity),
        vec![
            ASIC.binding(30.0 * RAW_PIXELS),
            ASIC.binding(11.0 * RAW_PIXELS),
            CPU.binding(11.0 * RAW_PIXELS),
            ASIC.binding(25.0 * RAW_PIXELS),
        ],
    )
}

/// The tone-map stage: global curve plus luma extraction, RGB down to
/// one 8-bit channel (`Scale(1/3)`), ~4 ops/px (LUT lookup + weighted
/// luma sum, as in [`crate::color::rgb_to_gray`]).
///
/// 0. ASIC global — the sole live binding;
/// 1. ASIC local (CLAHE-class, ~18 ops/px) — better viewing contrast,
///    dominated on cost;
/// 2. MCU global — dominated.
pub fn tone_map_block() -> BlockSpace {
    BlockSpace::new(
        BlockSpec::optional("TM", DataTransform::Scale(1.0 / 3.0)),
        vec![
            ASIC.binding(4.0 * RAW_PIXELS),
            ASIC.binding(18.0 * RAW_PIXELS),
            MCU.binding(4.0 * RAW_PIXELS),
        ],
    )
}

/// Output-byte ratio of a key-frame dual stream: one full-resolution
/// key frame every `k` frames plus every frame subsampled by `s` per
/// axis (`1/k + 1/s²` of the input bytes). Reconstruction of full-rate
/// video from the two streams happens past the cut, on the cloud side,
/// where the model bills compute as free.
pub fn dual_stream_ratio(k: f64, s: f64) -> f64 {
    1.0 / k + 1.0 / (s * s)
}

/// The NeuriCam-style key-frame dual-stream stage. Per-frame work is
/// subsample + key-frame delta packing (reference arithmetic:
/// [`crate::resample::downscale_by`] plus the delta pass, 6–8 ops/px
/// rising with the subsample depth's extra addressing).
///
/// 0. ASIC K=2, s=2 — ships 75% of the bytes;
/// 1. ASIC K=4, s=4 — 31.25%;
/// 2. ASIC K=8, s=8 — ~14.1%;
/// 3. MCU K=4, s=4 — dominated by binding 1.
///
/// Bindings 0–2 are all live: energy rises as shipped bytes fall, so
/// none dominates another — they are exactly the new Pareto points the
/// widened space contributes.
pub fn dual_stream_block() -> BlockSpace {
    let ratio = |k: f64, s: f64| DataTransform::Scale(dual_stream_ratio(k, s));
    BlockSpace::new(
        BlockSpec::optional("KF", ratio(2.0, 2.0)),
        vec![
            ASIC.binding(6.0 * RAW_PIXELS),
            ASIC.binding(7.0 * RAW_PIXELS).with_output(ratio(4.0, 4.0)),
            ASIC.binding(8.0 * RAW_PIXELS).with_output(ratio(8.0, 8.0)),
            MCU.binding(7.0 * RAW_PIXELS).with_output(ratio(4.0, 4.0)),
        ],
    )
}

/// The feature-extraction stage: dense descriptors at ~10% of the input
/// bytes, ~20 ops/px (pyramid + oriented gradients).
///
/// 0. ASIC — live;
/// 1. GPU — live: ~33× the throughput at ~50× the energy, the classic
///    speed-vs-power corner neither dominates.
pub fn feature_block() -> BlockSpace {
    BlockSpace::new(
        BlockSpec::core("FE", DataTransform::Scale(0.1)),
        vec![
            ASIC.binding(20.0 * RAW_PIXELS),
            GPU.binding(20.0 * RAW_PIXELS),
        ],
    )
}

/// The verdict stage: a fixed 4-byte score ends the data stream
/// (~2 M ops of classifier arithmetic on the descriptors, independent
/// of frame size).
///
/// 0. ASIC — live;
/// 1. MCU — dominated.
pub fn verdict_block() -> BlockSpace {
    const VERDICT_OPS: f64 = 2e6;
    BlockSpace::new(
        BlockSpec::core("VD", DataTransform::Fixed(Bytes::new(4.0))),
        vec![ASIC.binding(VERDICT_OPS), MCU.binding(VERDICT_OPS)],
    )
}

/// The widened raw-imaging configuration space: a 1080p Bayer source
/// through demosaic / denoise / tone-map / dual-stream / feature /
/// verdict, 1413 distinct configurations before pruning.
///
/// The stage costs are fixed per binding at the nominal full-resolution
/// frame — a deliberate simplification (a stage downstream of the
/// subsampled demosaic really touches fewer pixels), conservative in
/// the search's favor: pruning never sees costs *lower* than reality.
pub fn raw_pipeline_space(capture_rate: Fps) -> PipelineSpace {
    PipelineSpace::new(
        Source::new("RAW", Bytes::new(RAW_FRAME_BYTES), capture_rate)
            .with_capture_energy(Joules::new(CAPTURE_ENERGY_PER_PIXEL_J * RAW_PIXELS)),
    )
    .with_block(demosaic_block())
    .with_block(denoise_block())
    .with_block(tone_map_block())
    .with_block(dual_stream_block())
    .with_block(feature_block())
    .with_block(verdict_block())
}

/// [`raw_pipeline_space`] at the sensor's nominal 30 fps.
pub fn widened_space() -> PipelineSpace {
    raw_pipeline_space(Fps::new(RAW_FPS))
}

#[cfg(test)]
mod tests {
    use super::*;
    use incam_core::explore::SearchPlan;
    use incam_core::link::Link;
    use incam_core::units::BytesPerSec;

    fn wifi() -> Link {
        Link::new("wifi", BytesPerSec::from_bits_per_sec(5e6), 1.0)
    }

    #[test]
    fn widened_space_has_the_advertised_shape() {
        let space = widened_space();
        assert_eq!(space.len(), 6);
        // 4*4*3*4*2*2 binding products x 7 cuts
        assert_eq!(space.cardinality(), 768 * 7);
        // cut-major: 1 + 4 + 16 + 48 + 192 + 384 + 768
        assert_eq!(space.distinct_cardinality(), 1413);
    }

    #[test]
    fn dominated_quality_tiers_prune_out() {
        let space = widened_space();
        let plan = SearchPlan::new(&space);
        assert!(plan.is_regular());
        // live bindings per block: the quality tiers (edge-aware
        // demosaic, median denoise, local tone-map, every CPU/MCU
        // software fallback) are dominated and gone
        let live: Vec<usize> = (0..space.len())
            .map(|b| plan.live_bindings(b).len())
            .collect();
        assert_eq!(live, vec![2, 2, 1, 3, 2, 1]);
        // index 0 always survives
        for b in 0..space.len() {
            assert_eq!(plan.live_bindings(b)[0], 0);
        }
    }

    #[test]
    fn pruned_search_cuts_node_count_at_least_tenfold() {
        let space = widened_space();
        let plan = SearchPlan::new(&space);
        let stats = plan.stats();
        assert_eq!(stats.exhaustive, 1413);
        assert!(stats.evaluated <= 71, "evaluated {}", stats.evaluated);
        assert!(
            stats.reduction() >= 10.0,
            "reduction {:.1}x",
            stats.reduction()
        );
    }

    #[test]
    fn pruned_winner_matches_exhaustive() {
        let space = widened_space();
        let plan = SearchPlan::new(&space);
        for rate in [64e3, 5e6, 100e6, 25e9] {
            let link = Link::new("l", BytesPerSec::from_bits_per_sec(rate), 1.0);
            assert_eq!(plan.best(&link), space.best(&link), "at {rate} b/s");
        }
    }

    #[test]
    fn dual_stream_contributes_new_pareto_points() {
        let space = widened_space();
        let plan = SearchPlan::new(&space);
        let frontier = plan.pareto_frontier(&wifi());
        assert!(!frontier.is_empty());
        // at least one Pareto point runs the dual stream in camera
        // (binding index > 0 or the K2s2 default at a cut past block 3)
        assert!(
            frontier
                .iter()
                .any(|a| a.config.cut() >= 4 && a.config.bindings()[3] > 0),
            "no dual-stream Pareto point on the wifi link"
        );
    }

    #[test]
    fn dual_stream_ratio_is_the_keyframe_sum() {
        assert!((dual_stream_ratio(2.0, 2.0) - 0.75).abs() < 1e-12);
        assert!((dual_stream_ratio(4.0, 4.0) - 0.3125).abs() < 1e-12);
        assert!((dual_stream_ratio(8.0, 8.0) - 0.140625).abs() < 1e-12);
    }
}
