//! Separable convolution and the small set of kernels the workspace needs
//! (box, Gaussian). Borders use pixel replication.
//!
//! Both 1-D passes evaluate output rows on the [`incam_parallel`] pool;
//! each output pixel is a pure function of its coordinates, so results
//! are byte-identical at any thread count.
//!
//! ## Kernel microarchitecture
//!
//! Each row is split into a replicate-border **prologue/epilogue** (taps
//! clamp into the image) and an **interior fast path** that runs over raw
//! contiguous row slices with no clamping and no per-pixel bounds checks,
//! so the inner loops autovectorize. The per-pixel floating-point
//! accumulation order is exactly that of the clamped per-pixel
//! formulation (kept as [`convolve_h_reference`]/[`convolve_v_reference`]
//! for tests and benches), so outputs are byte-identical to it.
//! [`convolve_separable`] additionally fuses the H and V passes through a
//! rolling ring of H-filtered rows instead of materializing a full
//! intermediate image per pass.

use crate::image::GrayImage;

/// Convolves one source row into `dst` with replicate borders: clamped
/// prologue/epilogue around an interior fast path over contiguous
/// `kernel.len()`-wide windows. Bit-equal to the clamped per-pixel
/// formulation (same taps, same accumulation order).
fn convolve_row(src: &[f32], kernel: &[f32], dst: &mut [f32]) {
    let w = src.len();
    let k = kernel.len();
    let r = k / 2;
    let clamped = |x: usize| {
        let mut acc = 0.0f32;
        for (i, &kv) in kernel.iter().enumerate() {
            let sx = (x + i) as isize - r as isize;
            acc += kv * src[sx.clamp(0, w as isize - 1) as usize];
        }
        acc
    };
    if w < k {
        for (x, out) in dst.iter_mut().enumerate() {
            *out = clamped(x);
        }
        return;
    }
    for (x, out) in dst[..r].iter_mut().enumerate() {
        *out = clamped(x);
    }
    for (out, win) in dst[r..w - r].iter_mut().zip(src.windows(k)) {
        let mut acc = 0.0f32;
        for (&kv, &sv) in kernel.iter().zip(win) {
            acc += kv * sv;
        }
        *out = acc;
    }
    for (x, out) in dst[w - r..].iter_mut().enumerate() {
        *out = clamped(w - r + x);
    }
}

/// Accumulates the vertical taps of output row `y` into `dst` (which must
/// start zeroed): one contiguous multiply-add sweep per tap row, clamped
/// in `y` only. Per pixel this performs `acc = 0; acc += k[i]·row_i[x]`
/// in tap order — the exact op sequence of the clamped formulation.
fn convolve_col_into(img: &GrayImage, kernel: &[f32], y: usize, dst: &mut [f32]) {
    let h = img.height() as isize;
    let r = (kernel.len() / 2) as isize;
    for (i, &kv) in kernel.iter().enumerate() {
        let sy = (y as isize + i as isize - r).clamp(0, h - 1) as usize;
        for (out, &sv) in dst.iter_mut().zip(img.row(sy)) {
            *out += kv * sv;
        }
    }
}

/// Convolves `img` with a horizontal 1-D `kernel` (replicate border).
///
/// # Panics
///
/// Panics if the kernel is empty or of even length.
pub fn convolve_h(img: &GrayImage, kernel: &[f32]) -> GrayImage {
    check_kernel(kernel);
    let (w, h) = img.dims();
    let data = incam_parallel::par_map_rows(h, w, |y, dst| convolve_row(img.row(y), kernel, dst));
    GrayImage::from_vec(w, h, data)
}

/// Convolves `img` with a vertical 1-D `kernel` (replicate border).
///
/// # Panics
///
/// Panics if the kernel is empty or of even length.
pub fn convolve_v(img: &GrayImage, kernel: &[f32]) -> GrayImage {
    check_kernel(kernel);
    let (w, h) = img.dims();
    let data = incam_parallel::par_map_rows(h, w, |y, dst| convolve_col_into(img, kernel, y, dst));
    GrayImage::from_vec(w, h, data)
}

/// Separable convolution: horizontal then vertical pass with the same
/// 1-D kernel.
///
/// The two passes are fused: workers stream over their band of output
/// rows keeping a rolling ring of the `kernel.len()` H-filtered rows the
/// V-pass needs, so no full intermediate image is materialized (the ring
/// stays cache-resident; band boundaries recompute at most one ring of
/// halo rows). Byte-identical to
/// `convolve_v(&convolve_h(img, kernel), kernel)` at any thread count.
pub fn convolve_separable(img: &GrayImage, kernel: &[f32]) -> GrayImage {
    check_kernel(kernel);
    let (w, h) = img.dims();
    let k = kernel.len();
    let r = k / 2;
    let mut out = vec![0.0f32; w * h];
    incam_parallel::par_bands_mut(&mut out, h, |rows, band| {
        // Ring slot `j % k` holds the H-convolved row `j`; the window of
        // live rows for output row y is [y-r, y+r] clamped, which spans
        // at most k real rows.
        let mut ring = vec![0.0f32; k * w];
        let lo = rows.start.saturating_sub(r);
        let mut top = (rows.start + r).min(h - 1);
        for j in lo..=top {
            convolve_row(img.row(j), kernel, &mut ring[(j % k) * w..(j % k + 1) * w]);
        }
        for (i, dst) in band.chunks_mut(w).enumerate() {
            let y = rows.start + i;
            let need = (y + r).min(h - 1);
            while top < need {
                top += 1;
                convolve_row(
                    img.row(top),
                    kernel,
                    &mut ring[(top % k) * w..(top % k + 1) * w],
                );
            }
            for (t, &kv) in kernel.iter().enumerate() {
                let sy = (y + t) as isize - r as isize;
                let sy = sy.clamp(0, h as isize - 1) as usize % k;
                for (out, &sv) in dst.iter_mut().zip(&ring[sy * w..(sy + 1) * w]) {
                    *out += kv * sv;
                }
            }
        }
    });
    GrayImage::from_vec(w, h, out)
}

/// The original clamped per-pixel horizontal convolution, kept as the
/// correctness oracle for the interior-fast-path rework (proptests pin
/// [`convolve_h`] bit-equal to it) and as the "before" side of the
/// kernel microbenchmarks.
pub fn convolve_h_reference(img: &GrayImage, kernel: &[f32]) -> GrayImage {
    check_kernel(kernel);
    let r = (kernel.len() / 2) as isize;
    GrayImage::from_fn_par(img.width(), img.height(), |x, y| {
        let mut acc = 0.0f32;
        for (i, &k) in kernel.iter().enumerate() {
            let sx = x as isize + i as isize - r;
            acc += k * img.get_clamped(sx, y as isize);
        }
        acc
    })
}

/// The original clamped per-pixel vertical convolution — oracle and
/// bench baseline for [`convolve_v`]; see [`convolve_h_reference`].
pub fn convolve_v_reference(img: &GrayImage, kernel: &[f32]) -> GrayImage {
    check_kernel(kernel);
    let r = (kernel.len() / 2) as isize;
    GrayImage::from_fn_par(img.width(), img.height(), |x, y| {
        let mut acc = 0.0f32;
        for (i, &k) in kernel.iter().enumerate() {
            let sy = y as isize + i as isize - r;
            acc += k * img.get_clamped(x as isize, sy);
        }
        acc
    })
}

/// The unfused two-pass separable convolution — oracle and bench
/// baseline for the fused [`convolve_separable`].
pub fn convolve_separable_reference(img: &GrayImage, kernel: &[f32]) -> GrayImage {
    convolve_v_reference(&convolve_h_reference(img, kernel), kernel)
}

fn check_kernel(kernel: &[f32]) {
    assert!(!kernel.is_empty(), "kernel must be non-empty");
    assert!(
        kernel.len() % 2 == 1,
        "kernel length must be odd, got {}",
        kernel.len()
    );
}

/// A normalized box kernel of the given (odd) length.
///
/// # Examples
///
/// ```
/// use incam_imaging::convolve::box_kernel;
/// let k = box_kernel(3);
/// assert_eq!(k, vec![1.0 / 3.0; 3]);
/// ```
pub fn box_kernel(len: usize) -> Vec<f32> {
    assert!(len % 2 == 1 && len > 0, "box kernel length must be odd");
    vec![1.0 / len as f32; len]
}

/// A normalized Gaussian kernel with standard deviation `sigma`, truncated
/// at `±3σ`.
///
/// # Panics
///
/// Panics if `sigma` is not positive.
pub fn gaussian_kernel(sigma: f32) -> Vec<f32> {
    assert!(sigma > 0.0, "sigma must be positive");
    let r = (3.0 * sigma).ceil() as isize;
    let mut k: Vec<f32> = (-r..=r)
        .map(|i| (-0.5 * (i as f32 / sigma).powi(2)).exp())
        .collect();
    let sum: f32 = k.iter().sum();
    for v in &mut k {
        *v /= sum;
    }
    k
}

/// Gaussian blur with standard deviation `sigma` (separable).
///
/// # Examples
///
/// ```
/// use incam_imaging::convolve::gaussian_blur;
/// use incam_imaging::image::Image;
///
/// let mut img = Image::new(9, 9, 0.0f32);
/// img.set(4, 4, 1.0);
/// let blurred = gaussian_blur(&img, 1.0);
/// // energy spreads but the center stays the peak
/// assert!(blurred.get(4, 4) < 1.0);
/// assert!(blurred.get(4, 4) > blurred.get(0, 0));
/// ```
pub fn gaussian_blur(img: &GrayImage, sigma: f32) -> GrayImage {
    convolve_separable(img, &gaussian_kernel(sigma))
}

/// Moving-average (box) blur of the given odd window length — the
/// non-edge-aware smoother contrasted with the bilateral filter in the
/// paper's Fig. 6.
pub fn box_blur(img: &GrayImage, len: usize) -> GrayImage {
    convolve_separable(img, &box_kernel(len))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::image::Image;

    #[test]
    fn box_blur_preserves_constant_image() {
        let img = GrayImage::new(6, 6, 0.4);
        let out = box_blur(&img, 3);
        for &p in out.pixels() {
            assert!((p - 0.4).abs() < 1e-6);
        }
    }

    #[test]
    fn gaussian_kernel_normalized_and_symmetric() {
        let k = gaussian_kernel(1.5);
        let sum: f32 = k.iter().sum();
        assert!((sum - 1.0).abs() < 1e-6);
        assert_eq!(k.len() % 2, 1);
        let n = k.len();
        for i in 0..n / 2 {
            assert!((k[i] - k[n - 1 - i]).abs() < 1e-7);
        }
    }

    #[test]
    fn blur_preserves_total_mass_interior() {
        // away from borders, blurring conserves the sum
        let mut img = GrayImage::zeros(15, 15);
        img.set(7, 7, 1.0);
        let out = gaussian_blur(&img, 1.0);
        let total: f32 = out.pixels().iter().sum();
        assert!((total - 1.0).abs() < 1e-4);
    }

    #[test]
    fn horizontal_and_vertical_are_directional() {
        let mut img = GrayImage::zeros(7, 7);
        img.set(3, 3, 1.0);
        let h = convolve_h(&img, &box_kernel(3));
        assert!(h.get(2, 3) > 0.0 && h.get(3, 2) == 0.0);
        let v = convolve_v(&img, &box_kernel(3));
        assert!(v.get(3, 2) > 0.0 && v.get(2, 3) == 0.0);
    }

    #[test]
    fn box_blur_smooths_edge() {
        let img = Image::from_fn(10, 1, |x, _| if x < 5 { 0.0 } else { 1.0 });
        let out = box_blur(&img, 3);
        // edge pixel becomes intermediate
        assert!(out.get(4, 0) > 0.0 && out.get(4, 0) < 1.0);
    }

    #[test]
    #[should_panic(expected = "odd")]
    fn even_kernel_rejected() {
        let _ = convolve_h(&GrayImage::zeros(3, 3), &[0.5, 0.5]);
    }
}
