//! Separable convolution and the small set of kernels the workspace needs
//! (box, Gaussian). Borders use pixel replication.
//!
//! Both 1-D passes evaluate output rows on the [`incam_parallel`] pool;
//! each output pixel is a pure function of its coordinates, so results
//! are byte-identical at any thread count.

use crate::image::GrayImage;

/// Convolves `img` with a horizontal 1-D `kernel` (replicate border).
///
/// # Panics
///
/// Panics if the kernel is empty or of even length.
pub fn convolve_h(img: &GrayImage, kernel: &[f32]) -> GrayImage {
    check_kernel(kernel);
    let r = (kernel.len() / 2) as isize;
    GrayImage::from_fn_par(img.width(), img.height(), |x, y| {
        let mut acc = 0.0f32;
        for (i, &k) in kernel.iter().enumerate() {
            let sx = x as isize + i as isize - r;
            acc += k * img.get_clamped(sx, y as isize);
        }
        acc
    })
}

/// Convolves `img` with a vertical 1-D `kernel` (replicate border).
///
/// # Panics
///
/// Panics if the kernel is empty or of even length.
pub fn convolve_v(img: &GrayImage, kernel: &[f32]) -> GrayImage {
    check_kernel(kernel);
    let r = (kernel.len() / 2) as isize;
    GrayImage::from_fn_par(img.width(), img.height(), |x, y| {
        let mut acc = 0.0f32;
        for (i, &k) in kernel.iter().enumerate() {
            let sy = y as isize + i as isize - r;
            acc += k * img.get_clamped(x as isize, sy);
        }
        acc
    })
}

/// Separable convolution: horizontal then vertical pass with the same
/// 1-D kernel.
pub fn convolve_separable(img: &GrayImage, kernel: &[f32]) -> GrayImage {
    convolve_v(&convolve_h(img, kernel), kernel)
}

fn check_kernel(kernel: &[f32]) {
    assert!(!kernel.is_empty(), "kernel must be non-empty");
    assert!(
        kernel.len() % 2 == 1,
        "kernel length must be odd, got {}",
        kernel.len()
    );
}

/// A normalized box kernel of the given (odd) length.
///
/// # Examples
///
/// ```
/// use incam_imaging::convolve::box_kernel;
/// let k = box_kernel(3);
/// assert_eq!(k, vec![1.0 / 3.0; 3]);
/// ```
pub fn box_kernel(len: usize) -> Vec<f32> {
    assert!(len % 2 == 1 && len > 0, "box kernel length must be odd");
    vec![1.0 / len as f32; len]
}

/// A normalized Gaussian kernel with standard deviation `sigma`, truncated
/// at `±3σ`.
///
/// # Panics
///
/// Panics if `sigma` is not positive.
pub fn gaussian_kernel(sigma: f32) -> Vec<f32> {
    assert!(sigma > 0.0, "sigma must be positive");
    let r = (3.0 * sigma).ceil() as isize;
    let mut k: Vec<f32> = (-r..=r)
        .map(|i| (-0.5 * (i as f32 / sigma).powi(2)).exp())
        .collect();
    let sum: f32 = k.iter().sum();
    for v in &mut k {
        *v /= sum;
    }
    k
}

/// Gaussian blur with standard deviation `sigma` (separable).
///
/// # Examples
///
/// ```
/// use incam_imaging::convolve::gaussian_blur;
/// use incam_imaging::image::Image;
///
/// let mut img = Image::new(9, 9, 0.0f32);
/// img.set(4, 4, 1.0);
/// let blurred = gaussian_blur(&img, 1.0);
/// // energy spreads but the center stays the peak
/// assert!(blurred.get(4, 4) < 1.0);
/// assert!(blurred.get(4, 4) > blurred.get(0, 0));
/// ```
pub fn gaussian_blur(img: &GrayImage, sigma: f32) -> GrayImage {
    convolve_separable(img, &gaussian_kernel(sigma))
}

/// Moving-average (box) blur of the given odd window length — the
/// non-edge-aware smoother contrasted with the bilateral filter in the
/// paper's Fig. 6.
pub fn box_blur(img: &GrayImage, len: usize) -> GrayImage {
    convolve_separable(img, &box_kernel(len))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::image::Image;

    #[test]
    fn box_blur_preserves_constant_image() {
        let img = GrayImage::new(6, 6, 0.4);
        let out = box_blur(&img, 3);
        for &p in out.pixels() {
            assert!((p - 0.4).abs() < 1e-6);
        }
    }

    #[test]
    fn gaussian_kernel_normalized_and_symmetric() {
        let k = gaussian_kernel(1.5);
        let sum: f32 = k.iter().sum();
        assert!((sum - 1.0).abs() < 1e-6);
        assert_eq!(k.len() % 2, 1);
        let n = k.len();
        for i in 0..n / 2 {
            assert!((k[i] - k[n - 1 - i]).abs() < 1e-7);
        }
    }

    #[test]
    fn blur_preserves_total_mass_interior() {
        // away from borders, blurring conserves the sum
        let mut img = GrayImage::zeros(15, 15);
        img.set(7, 7, 1.0);
        let out = gaussian_blur(&img, 1.0);
        let total: f32 = out.pixels().iter().sum();
        assert!((total - 1.0).abs() < 1e-4);
    }

    #[test]
    fn horizontal_and_vertical_are_directional() {
        let mut img = GrayImage::zeros(7, 7);
        img.set(3, 3, 1.0);
        let h = convolve_h(&img, &box_kernel(3));
        assert!(h.get(2, 3) > 0.0 && h.get(3, 2) == 0.0);
        let v = convolve_v(&img, &box_kernel(3));
        assert!(v.get(3, 2) > 0.0 && v.get(2, 3) == 0.0);
    }

    #[test]
    fn box_blur_smooths_edge() {
        let img = Image::from_fn(10, 1, |x, _| if x < 5 { 0.0 } else { 1.0 });
        let out = box_blur(&img, 3);
        // edge pixel becomes intermediate
        assert!(out.get(4, 0) > 0.0 && out.get(4, 0) < 1.0);
    }

    #[test]
    #[should_panic(expected = "odd")]
    fn even_kernel_rejected() {
        let _ = convolve_h(&GrayImage::zeros(3, 3), &[0.5, 0.5]);
    }
}
