//! # incam-imaging — image substrate for the camera-systems workspace
//!
//! Dense image containers, integral images, filtering/resampling kernels,
//! full-reference quality metrics (SSIM / MS-SSIM), motion detection, and
//! the synthetic workload generators that substitute for the paper's
//! proprietary datasets (LFW, collected security video, the 16-camera VR
//! rig captures). See `DESIGN.md` at the workspace root for the
//! substitution rationale.
//!
//! # Examples
//!
//! ```
//! use incam_imaging::image::Image;
//! use incam_imaging::integral::IntegralImage;
//! use incam_imaging::quality::{ms_ssim, MsSsimConfig};
//!
//! let img = Image::from_fn(64, 64, |x, y| ((x + y) % 9) as f32 / 9.0);
//! let ii = IntegralImage::new(&img);
//! assert!(ii.rect_sum(0, 0, 64, 64) > 0.0);
//! assert!((ms_ssim(&img, &img, &MsSsimConfig::default()) - 1.0).abs() < 1e-6);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;
pub mod color;
pub mod convolve;
pub mod draw;
pub mod faces;
pub mod image;
pub mod integral;
pub mod motion;
pub mod noise;
pub mod quality;
pub mod resample;
pub mod scenes;
pub mod stages;

pub use image::{GrayImage, Image};
pub use integral::IntegralImage;
pub use motion::MotionDetector;
