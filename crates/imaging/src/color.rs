//! Color and raw-sensor (Bayer) pixel formats.
//!
//! The VR rig's cameras emit raw Bayer mosaics (the data volume that sets
//! the paper's 32 Gb/s aggregate rate). The pre-processing block (B1)
//! demosaics and converts for downstream alignment; implementing the
//! mosaic/demosaic pair here gives B1 a real kernel to execute and lets
//! tests verify the round-trip.

use crate::image::{GrayImage, Image};

/// The Bayer color-filter-array layout (which color each sensor pixel
/// samples), for a 2×2 repeating RGGB tile.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BayerChannel {
    /// Red-filtered photosite.
    Red,
    /// Green-filtered photosite.
    Green,
    /// Blue-filtered photosite.
    Blue,
}

/// Channel sampled at `(x, y)` under an RGGB mosaic.
///
/// # Examples
///
/// ```
/// use incam_imaging::color::{bayer_channel_at, BayerChannel};
/// assert_eq!(bayer_channel_at(0, 0), BayerChannel::Red);
/// assert_eq!(bayer_channel_at(1, 0), BayerChannel::Green);
/// assert_eq!(bayer_channel_at(0, 1), BayerChannel::Green);
/// assert_eq!(bayer_channel_at(1, 1), BayerChannel::Blue);
/// ```
pub fn bayer_channel_at(x: usize, y: usize) -> BayerChannel {
    match (x % 2, y % 2) {
        (0, 0) => BayerChannel::Red,
        (1, 1) => BayerChannel::Blue,
        _ => BayerChannel::Green,
    }
}

/// An RGB image with `f32` channels in `[0, 1]`.
pub type RgbImage = Image<[f32; 3]>;

/// Converts RGB to luminance with the Rec. 601 weights.
pub fn rgb_to_gray(rgb: &RgbImage) -> GrayImage {
    rgb.map(|[r, g, b]| 0.299 * r + 0.587 * g + 0.114 * b)
}

/// Simulates a raw capture: samples one channel per pixel under the RGGB
/// mosaic.
pub fn bayer_mosaic(rgb: &RgbImage) -> GrayImage {
    GrayImage::from_fn(rgb.width(), rgb.height(), |x, y| {
        let [r, g, b] = rgb.get(x, y);
        match bayer_channel_at(x, y) {
            BayerChannel::Red => r,
            BayerChannel::Green => g,
            BayerChannel::Blue => b,
        }
    })
}

/// Bilinear demosaic of an RGGB mosaic back to RGB — the kernel of the VR
/// pipeline's pre-processing block.
pub fn demosaic_bilinear(raw: &GrayImage) -> RgbImage {
    let (w, h) = raw.dims();
    // Average the neighbors of `(x, y)` whose mosaic channel is `ch`.
    let avg = |x: usize, y: usize, ch: BayerChannel, offsets: &[(isize, isize)]| -> f32 {
        let mut sum = 0.0;
        let mut count = 0.0;
        for &(dx, dy) in offsets {
            let nx = x as isize + dx;
            let ny = y as isize + dy;
            if nx >= 0
                && ny >= 0
                && (nx as usize) < w
                && (ny as usize) < h
                && bayer_channel_at(nx as usize, ny as usize) == ch
            {
                sum += raw.get(nx as usize, ny as usize);
                count += 1.0;
            }
        }
        if count > 0.0 {
            sum / count
        } else {
            raw.get(x, y)
        }
    };
    const CROSS: [(isize, isize); 4] = [(-1, 0), (1, 0), (0, -1), (0, 1)];
    const DIAG: [(isize, isize); 4] = [(-1, -1), (1, -1), (-1, 1), (1, 1)];
    const AXIS_H: [(isize, isize); 2] = [(-1, 0), (1, 0)];
    const AXIS_V: [(isize, isize); 2] = [(0, -1), (0, 1)];

    Image::from_fn(w, h, |x, y| {
        let here = raw.get(x, y);
        match bayer_channel_at(x, y) {
            BayerChannel::Red => {
                let g = avg(x, y, BayerChannel::Green, &CROSS);
                let b = avg(x, y, BayerChannel::Blue, &DIAG);
                [here, g, b]
            }
            BayerChannel::Blue => {
                let g = avg(x, y, BayerChannel::Green, &CROSS);
                let r = avg(x, y, BayerChannel::Red, &DIAG);
                [r, g, here]
            }
            BayerChannel::Green => {
                // red is on this row for RGGB green at (1,0) rows, else column
                let r = if y % 2 == 0 {
                    avg(x, y, BayerChannel::Red, &AXIS_H)
                } else {
                    avg(x, y, BayerChannel::Red, &AXIS_V)
                };
                let b = if y % 2 == 0 {
                    avg(x, y, BayerChannel::Blue, &AXIS_V)
                } else {
                    avg(x, y, BayerChannel::Blue, &AXIS_H)
                };
                [r, here, b]
            }
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gray_conversion_weights() {
        let rgb = RgbImage::new(2, 2, [1.0, 0.0, 0.0]);
        let g = rgb_to_gray(&rgb);
        assert!((g.get(0, 0) - 0.299).abs() < 1e-6);
    }

    #[test]
    fn mosaic_samples_correct_channel() {
        let rgb = RgbImage::from_fn(4, 4, |_, _| [0.9, 0.5, 0.1]);
        let raw = bayer_mosaic(&rgb);
        assert!((raw.get(0, 0) - 0.9).abs() < 1e-6); // R
        assert!((raw.get(1, 0) - 0.5).abs() < 1e-6); // G
        assert!((raw.get(1, 1) - 0.1).abs() < 1e-6); // B
    }

    #[test]
    fn demosaic_recovers_constant_image() {
        let rgb = RgbImage::new(8, 8, [0.6, 0.4, 0.2]);
        let raw = bayer_mosaic(&rgb);
        let back = demosaic_bilinear(&raw);
        for y in 1..7 {
            for x in 1..7 {
                let [r, g, b] = back.get(x, y);
                assert!((r - 0.6).abs() < 1e-5, "r at {x},{y}");
                assert!((g - 0.4).abs() < 1e-5, "g at {x},{y}");
                assert!((b - 0.2).abs() < 1e-5, "b at {x},{y}");
            }
        }
    }

    #[test]
    fn demosaic_approximates_smooth_gradient() {
        let rgb = RgbImage::from_fn(16, 16, |x, y| {
            let t = (x + y) as f32 / 30.0;
            [t, 1.0 - t, 0.5]
        });
        let back = demosaic_bilinear(&bayer_mosaic(&rgb));
        let mut max_err = 0.0f32;
        for y in 2..14 {
            for x in 2..14 {
                let a = rgb.get(x, y);
                let b = back.get(x, y);
                for c in 0..3 {
                    max_err = max_err.max((a[c] - b[c]).abs());
                }
            }
        }
        assert!(max_err < 0.08, "max interior error {max_err}");
    }

    #[test]
    fn bayer_tile_repeats() {
        assert_eq!(bayer_channel_at(2, 0), BayerChannel::Red);
        assert_eq!(bayer_channel_at(3, 3), BayerChannel::Blue);
        assert_eq!(bayer_channel_at(5, 2), BayerChannel::Green);
    }
}
