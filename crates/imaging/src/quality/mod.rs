//! Full-reference image-quality metrics.
//!
//! The VR case study scores depth-map quality with MS-SSIM (Wang,
//! Simoncelli & Bovik, Asilomar 2003 — the paper's reference 38); MSE and
//! PSNR are provided for completeness and for tests.

mod msssim;
mod ssim;

pub use msssim::{ms_ssim, MsSsimConfig};
pub use ssim::{ssim, SsimConfig};

use crate::image::GrayImage;

/// Mean squared error between two images of identical dimensions.
///
/// # Panics
///
/// Panics if the dimensions differ.
///
/// # Examples
///
/// ```
/// use incam_imaging::image::GrayImage;
/// use incam_imaging::quality::mse;
///
/// let a = GrayImage::new(4, 4, 0.5);
/// let b = GrayImage::new(4, 4, 0.75);
/// assert!((mse(&a, &b) - 0.0625).abs() < 1e-9);
/// ```
pub fn mse(a: &GrayImage, b: &GrayImage) -> f64 {
    assert_eq!(a.dims(), b.dims(), "image dimensions must match");
    let sum: f64 = a
        .pixels()
        .iter()
        .zip(b.pixels())
        .map(|(&x, &y)| {
            let d = x as f64 - y as f64;
            d * d
        })
        .sum();
    sum / a.len() as f64
}

/// Peak signal-to-noise ratio in dB, assuming a unit dynamic range.
/// Identical images yield `f64::INFINITY`.
pub fn psnr(a: &GrayImage, b: &GrayImage) -> f64 {
    let err = mse(a, b);
    if err == 0.0 {
        f64::INFINITY
    } else {
        -10.0 * err.log10()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::image::Image;

    #[test]
    fn mse_zero_for_identical() {
        let img = Image::from_fn(5, 5, |x, y| (x * y) as f32 / 25.0);
        assert_eq!(mse(&img, &img), 0.0);
        assert_eq!(psnr(&img, &img), f64::INFINITY);
    }

    #[test]
    fn psnr_drops_with_error() {
        let a = GrayImage::new(8, 8, 0.5);
        let slightly = GrayImage::new(8, 8, 0.51);
        let very = GrayImage::new(8, 8, 0.8);
        assert!(psnr(&a, &slightly) > psnr(&a, &very));
    }

    #[test]
    #[should_panic(expected = "dimensions")]
    fn mismatched_dims_panic() {
        let _ = mse(&GrayImage::zeros(2, 2), &GrayImage::zeros(3, 3));
    }
}
