//! Single-scale structural similarity (SSIM), Wang et al. 2004.
//!
//! Local means/variances/covariance are computed with a Gaussian window
//! (σ = 1.5, the reference implementation's choice) via the separable
//! convolutions in [`crate::convolve`].

use crate::convolve::{convolve_separable, gaussian_kernel};
use crate::image::GrayImage;

/// SSIM parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SsimConfig {
    /// Gaussian window standard deviation (reference: 1.5).
    pub window_sigma: f32,
    /// Dynamic range of the images (1.0 for `[0, 1]` images).
    pub dynamic_range: f64,
    /// Luminance stabilizer constant `K1` (reference: 0.01).
    pub k1: f64,
    /// Contrast stabilizer constant `K2` (reference: 0.03).
    pub k2: f64,
}

impl Default for SsimConfig {
    fn default() -> Self {
        Self {
            window_sigma: 1.5,
            dynamic_range: 1.0,
            k1: 0.01,
            k2: 0.03,
        }
    }
}

/// Per-scale SSIM components: the full index plus the contrast-structure
/// product needed by MS-SSIM.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct SsimComponents {
    pub(crate) mean_ssim: f64,
    pub(crate) mean_cs: f64,
}

pub(crate) fn ssim_components(a: &GrayImage, b: &GrayImage, cfg: &SsimConfig) -> SsimComponents {
    assert_eq!(a.dims(), b.dims(), "image dimensions must match");
    let kernel = gaussian_kernel(cfg.window_sigma);
    let mu_a = convolve_separable(a, &kernel);
    let mu_b = convolve_separable(b, &kernel);
    let aa = mul(a, a);
    let bb = mul(b, b);
    let ab = mul(a, b);
    let s_aa = convolve_separable(&aa, &kernel);
    let s_bb = convolve_separable(&bb, &kernel);
    let s_ab = convolve_separable(&ab, &kernel);

    let c1 = (cfg.k1 * cfg.dynamic_range).powi(2);
    let c2 = (cfg.k2 * cfg.dynamic_range).powi(2);

    let mut ssim_sum = 0.0f64;
    let mut cs_sum = 0.0f64;
    let n = a.len() as f64;
    for i in 0..a.len() {
        let ma = mu_a.pixels()[i] as f64;
        let mb = mu_b.pixels()[i] as f64;
        let va = (s_aa.pixels()[i] as f64 - ma * ma).max(0.0);
        let vb = (s_bb.pixels()[i] as f64 - mb * mb).max(0.0);
        let cov = s_ab.pixels()[i] as f64 - ma * mb;
        let luminance = (2.0 * ma * mb + c1) / (ma * ma + mb * mb + c1);
        let cs = (2.0 * cov + c2) / (va + vb + c2);
        ssim_sum += luminance * cs;
        cs_sum += cs;
    }
    SsimComponents {
        mean_ssim: ssim_sum / n,
        mean_cs: cs_sum / n,
    }
}

fn mul(a: &GrayImage, b: &GrayImage) -> GrayImage {
    GrayImage::from_fn_par(a.width(), a.height(), |x, y| a.get(x, y) * b.get(x, y))
}

/// Computes the mean SSIM index between two images.
///
/// Returns a value in `[-1, 1]`; 1.0 means identical.
///
/// # Panics
///
/// Panics if the image dimensions differ.
///
/// # Examples
///
/// ```
/// use incam_imaging::image::Image;
/// use incam_imaging::quality::{ssim, SsimConfig};
///
/// let img = Image::from_fn(32, 32, |x, y| ((x ^ y) & 7) as f32 / 7.0);
/// let score = ssim(&img, &img, &SsimConfig::default());
/// assert!((score - 1.0).abs() < 1e-9);
/// ```
pub fn ssim(a: &GrayImage, b: &GrayImage, cfg: &SsimConfig) -> f64 {
    ssim_components(a, b, cfg).mean_ssim
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::image::Image;
    use crate::noise::add_gaussian_noise;
    use incam_rng::rngs::StdRng;
    use incam_rng::SeedableRng;

    fn textured(w: usize, h: usize) -> GrayImage {
        Image::from_fn(w, h, |x, y| {
            (0.5 + 0.3 * ((x as f32 * 0.7).sin() * (y as f32 * 0.5).cos())).clamp(0.0, 1.0)
        })
    }

    #[test]
    fn identical_images_score_one() {
        let img = textured(24, 24);
        assert!((ssim(&img, &img, &SsimConfig::default()) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn ssim_decreases_with_noise() {
        let mut rng = StdRng::seed_from_u64(3);
        let img = textured(32, 32);
        let light = add_gaussian_noise(&img, 0.02, &mut rng);
        let heavy = add_gaussian_noise(&img, 0.2, &mut rng);
        let cfg = SsimConfig::default();
        let s_light = ssim(&img, &light, &cfg);
        let s_heavy = ssim(&img, &heavy, &cfg);
        assert!(s_light > s_heavy, "{s_light} vs {s_heavy}");
        assert!(s_light > 0.8);
        assert!(s_heavy < 0.8);
    }

    #[test]
    fn bounded_by_one() {
        let a = textured(16, 16);
        let b = GrayImage::new(16, 16, 0.9);
        let s = ssim(&a, &b, &SsimConfig::default());
        assert!((-1.0..=1.0).contains(&s));
    }

    #[test]
    fn cs_component_ignores_luminance_shift() {
        // adding a constant offset changes luminance but not structure
        let a = textured(32, 32);
        let b = a.map(|p| (p + 0.1).clamp(0.0, 1.0));
        let comps = ssim_components(&a, &b, &SsimConfig::default());
        assert!(comps.mean_cs > comps.mean_ssim - 1e-9);
        assert!(comps.mean_cs > 0.9);
    }
}
