//! Multi-scale structural similarity (MS-SSIM), Wang-Simoncelli-Bovik 2003
//! — the paper's depth-map quality metric (reference [38], Fig. 7).
//!
//! The metric evaluates the contrast-structure term at five dyadic scales
//! (downsampling by 2 between scales) and the luminance term at the
//! coarsest, combining them with the exponents from the original paper.

use super::ssim::{ssim_components, SsimConfig};
use crate::image::GrayImage;
use crate::resample::downscale_by;

/// The reference five-scale exponent weights.
pub const REFERENCE_WEIGHTS: [f64; 5] = [0.0448, 0.2856, 0.3001, 0.2363, 0.1333];

/// MS-SSIM parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct MsSsimConfig {
    /// Single-scale SSIM parameters applied at each level.
    pub ssim: SsimConfig,
    /// Per-scale exponent weights; the number of entries sets the number of
    /// scales. If the images become smaller than the filter window before
    /// all scales are consumed, the remaining scales are dropped and the
    /// weights renormalized.
    pub weights: Vec<f64>,
}

impl Default for MsSsimConfig {
    fn default() -> Self {
        Self {
            ssim: SsimConfig::default(),
            weights: REFERENCE_WEIGHTS.to_vec(),
        }
    }
}

/// Computes the MS-SSIM index between two images.
///
/// Returns a value in `[0, 1]` for typical natural-image inputs; 1.0 means
/// identical. Negative contrast-structure responses are clamped to a small
/// positive floor before exponentiation, following common practice.
///
/// # Panics
///
/// Panics if the image dimensions differ, the weight list is empty, or the
/// images are too small for even a single scale (min dimension < 8).
///
/// # Examples
///
/// ```
/// use incam_imaging::image::Image;
/// use incam_imaging::quality::{ms_ssim, MsSsimConfig};
///
/// let img = Image::from_fn(64, 64, |x, y| ((x * 3 + y * 7) % 11) as f32 / 11.0);
/// let score = ms_ssim(&img, &img, &MsSsimConfig::default());
/// assert!((score - 1.0).abs() < 1e-6);
/// ```
pub fn ms_ssim(a: &GrayImage, b: &GrayImage, cfg: &MsSsimConfig) -> f64 {
    assert_eq!(a.dims(), b.dims(), "image dimensions must match");
    assert!(!cfg.weights.is_empty(), "weights must be non-empty");
    assert!(
        a.width().min(a.height()) >= 8,
        "images too small for MS-SSIM"
    );

    let mut cur_a = a.clone();
    let mut cur_b = b.clone();
    let mut used_weights = Vec::new();
    let mut cs_values = Vec::new();
    let mut final_ssim = 1.0f64;

    for (level, &weight) in cfg.weights.iter().enumerate() {
        let comps = ssim_components(&cur_a, &cur_b, &cfg.ssim);
        let last_level =
            level == cfg.weights.len() - 1 || cur_a.width() / 2 < 8 || cur_a.height() / 2 < 8;
        used_weights.push(weight);
        if last_level {
            final_ssim = comps.mean_ssim;
            break;
        }
        cs_values.push(comps.mean_cs);
        cur_a = downscale_by(&cur_a, 2);
        cur_b = downscale_by(&cur_b, 2);
    }

    // Renormalize weights if we stopped early.
    let weight_sum: f64 = used_weights.iter().sum();
    let norm: Vec<f64> = used_weights.iter().map(|w| w / weight_sum).collect();

    const FLOOR: f64 = 1e-6;
    let mut score = final_ssim.max(FLOOR).powf(norm[norm.len() - 1]);
    for (cs, w) in cs_values.iter().zip(&norm) {
        score *= cs.max(FLOOR).powf(*w);
    }
    score
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::image::Image;
    use crate::noise::add_gaussian_noise;
    use incam_rng::rngs::StdRng;
    use incam_rng::SeedableRng;

    fn textured(w: usize, h: usize) -> GrayImage {
        Image::from_fn(w, h, |x, y| {
            (0.5 + 0.25 * ((x as f32 * 0.31).sin() + (y as f32 * 0.17).cos())).clamp(0.0, 1.0)
        })
    }

    #[test]
    fn identical_scores_one() {
        let img = textured(128, 96);
        let s = ms_ssim(&img, &img, &MsSsimConfig::default());
        assert!((s - 1.0).abs() < 1e-6, "got {s}");
    }

    #[test]
    fn monotone_in_noise() {
        let mut rng = StdRng::seed_from_u64(11);
        let img = textured(128, 128);
        let cfg = MsSsimConfig::default();
        let mut prev = 1.0;
        for sigma in [0.01f32, 0.05, 0.15, 0.3] {
            let noisy = add_gaussian_noise(&img, sigma, &mut rng);
            let s = ms_ssim(&img, &noisy, &cfg);
            assert!(s < prev + 1e-6, "sigma {sigma}: {s} !< {prev}");
            prev = s;
        }
        assert!(prev < 0.9);
    }

    #[test]
    fn small_images_drop_scales_gracefully() {
        // 16x16 only supports two scales (16 -> 8); must not panic
        let img = textured(16, 16);
        let s = ms_ssim(&img, &img, &MsSsimConfig::default());
        assert!((s - 1.0).abs() < 1e-6);
    }

    #[test]
    fn in_unit_interval_for_natural_inputs() {
        let mut rng = StdRng::seed_from_u64(5);
        let a = textured(64, 64);
        let b = add_gaussian_noise(&GrayImage::new(64, 64, 0.5), 0.2, &mut rng);
        let s = ms_ssim(&a, &b, &MsSsimConfig::default());
        assert!((0.0..=1.0).contains(&s), "got {s}");
    }

    #[test]
    #[should_panic(expected = "too small")]
    fn tiny_images_rejected() {
        let img = GrayImage::zeros(4, 4);
        let _ = ms_ssim(&img, &img, &MsSsimConfig::default());
    }
}
