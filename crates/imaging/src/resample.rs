//! Image resampling: bilinear resize and integer downscale.
//!
//! Used by the multi-scale Viola-Jones scan (the scanning window is scaled
//! and passed over the scene multiple times), by the MS-SSIM pyramid, and
//! by the synthetic workload generators.

use crate::image::GrayImage;

/// Resizes `img` to `new_w × new_h` with bilinear interpolation.
///
/// # Panics
///
/// Panics if either target dimension is zero.
///
/// # Examples
///
/// ```
/// use incam_imaging::image::Image;
/// use incam_imaging::resample::resize_bilinear;
///
/// let img = Image::from_fn(4, 4, |x, _| x as f32 / 3.0);
/// let small = resize_bilinear(&img, 2, 2);
/// assert_eq!(small.dims(), (2, 2));
/// // horizontal ramp survives resizing
/// assert!(small.get(1, 0) > small.get(0, 0));
/// ```
pub fn resize_bilinear(img: &GrayImage, new_w: usize, new_h: usize) -> GrayImage {
    assert!(new_w > 0 && new_h > 0, "target dimensions must be nonzero");
    let (w, h) = img.dims();
    let sx = w as f32 / new_w as f32;
    let sy = h as f32 / new_h as f32;
    GrayImage::from_fn(new_w, new_h, |x, y| {
        // sample at the center of the destination pixel
        let fx = ((x as f32 + 0.5) * sx - 0.5).clamp(0.0, (w - 1) as f32);
        let fy = ((y as f32 + 0.5) * sy - 0.5).clamp(0.0, (h - 1) as f32);
        let x0 = fx.floor() as usize;
        let y0 = fy.floor() as usize;
        let x1 = (x0 + 1).min(w - 1);
        let y1 = (y0 + 1).min(h - 1);
        let tx = fx - x0 as f32;
        let ty = fy - y0 as f32;
        let top = img.get(x0, y0) * (1.0 - tx) + img.get(x1, y0) * tx;
        let bot = img.get(x0, y1) * (1.0 - tx) + img.get(x1, y1) * tx;
        top * (1.0 - ty) + bot * ty
    })
}

/// Downscales by an integer `factor` by averaging `factor × factor` blocks
/// (a clean low-pass + decimate, used between MS-SSIM scales).
///
/// Trailing rows/columns that do not fill a complete block are dropped.
///
/// # Panics
///
/// Panics if `factor` is zero or the image is smaller than one block.
pub fn downscale_by(img: &GrayImage, factor: usize) -> GrayImage {
    assert!(factor > 0, "downscale factor must be nonzero");
    let (w, h) = img.dims();
    let nw = w / factor;
    let nh = h / factor;
    assert!(
        nw > 0 && nh > 0,
        "image {w}x{h} too small for factor {factor}"
    );
    let norm = 1.0 / (factor * factor) as f32;
    GrayImage::from_fn(nw, nh, |x, y| {
        let mut sum = 0.0f32;
        for dy in 0..factor {
            for dx in 0..factor {
                sum += img.get(x * factor + dx, y * factor + dy);
            }
        }
        sum * norm
    })
}

/// Scales an image by `1 / scale` in both dimensions (bilinear), as used
/// by the image-pyramid form of the Viola-Jones multi-scale scan.
///
/// # Panics
///
/// Panics if `scale < 1.0` or the result would vanish.
pub fn pyramid_level(img: &GrayImage, scale: f32) -> GrayImage {
    assert!(scale >= 1.0, "pyramid scale must be >= 1.0, got {scale}");
    let nw = ((img.width() as f32 / scale).round() as usize).max(1);
    let nh = ((img.height() as f32 / scale).round() as usize).max(1);
    resize_bilinear(img, nw, nh)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::image::Image;

    #[test]
    fn identity_resize_preserves_pixels() {
        let img = Image::from_fn(5, 4, |x, y| (x * 7 + y * 3) as f32 / 40.0);
        let same = resize_bilinear(&img, 5, 4);
        for y in 0..4 {
            for x in 0..5 {
                assert!((same.get(x, y) - img.get(x, y)).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn downscale_averages_blocks() {
        let img = Image::from_vec(4, 2, vec![0.0, 1.0, 0.5, 0.5, 1.0, 0.0, 0.5, 0.5]);
        let half = downscale_by(&img, 2);
        assert_eq!(half.dims(), (2, 1));
        assert!((half.get(0, 0) - 0.5).abs() < 1e-6);
        assert!((half.get(1, 0) - 0.5).abs() < 1e-6);
    }

    #[test]
    fn downscale_preserves_mean() {
        let img = Image::from_fn(8, 8, |x, y| ((x * y) % 5) as f32 / 5.0);
        let half = downscale_by(&img, 2);
        assert!((half.mean() - img.mean()).abs() < 1e-5);
    }

    #[test]
    fn pyramid_shrinks_by_scale() {
        let img = GrayImage::zeros(100, 60);
        let level = pyramid_level(&img, 1.25);
        assert_eq!(level.dims(), (80, 48));
    }

    #[test]
    fn upscale_is_smooth_ramp() {
        let img = Image::from_vec(2, 1, vec![0.0f32, 1.0]);
        let big = resize_bilinear(&img, 8, 1);
        // values are monotone nondecreasing along the ramp
        for x in 1..8 {
            assert!(big.get(x, 0) >= big.get(x - 1, 0) - 1e-6);
        }
    }

    #[test]
    #[should_panic(expected = "factor")]
    fn zero_factor_panics() {
        let _ = downscale_by(&GrayImage::zeros(4, 4), 0);
    }
}
