//! Sensor-noise models for the synthetic workload generators.
//!
//! Real camera evaluations (LFW photographs, collected security video)
//! contain sensor noise and illumination variation; the synthetic
//! substitutes reproduce those nuisance factors here so classification
//! difficulty is controllable and realistic in structure.

use crate::image::GrayImage;
use incam_rng::Rng;

/// Adds zero-mean Gaussian noise with standard deviation `sigma` and clamps
/// the result to `[0, 1]`.
///
/// # Examples
///
/// ```
/// use incam_imaging::image::GrayImage;
/// use incam_imaging::noise::add_gaussian_noise;
/// use incam_rng::SeedableRng;
///
/// let mut rng = incam_rng::rngs::StdRng::seed_from_u64(7);
/// let img = GrayImage::new(16, 16, 0.5);
/// let noisy = add_gaussian_noise(&img, 0.05, &mut rng);
/// assert!(noisy.variance() > 0.0);
/// assert!((noisy.mean() - 0.5).abs() < 0.05);
/// ```
pub fn add_gaussian_noise(img: &GrayImage, sigma: f32, rng: &mut impl Rng) -> GrayImage {
    let mut out = img.clone();
    for p in out.pixels_mut() {
        *p = (*p + sigma * gaussian_sample(rng)).clamp(0.0, 1.0);
    }
    out
}

/// Applies a global illumination change: `p ← gain·p + offset`, clamped to
/// `[0, 1]`. Models exposure/lighting variation between captures.
pub fn adjust_exposure(img: &GrayImage, gain: f32, offset: f32) -> GrayImage {
    let mut out = img.map(|p| (p * gain + offset).clamp(0.0, 1.0));
    out.clamp01();
    out
}

/// Adds salt-and-pepper noise: each pixel independently becomes 0 or 1 with
/// probability `rate / 2` each.
///
/// # Panics
///
/// Panics if `rate` is not in `[0, 1]`.
pub fn add_salt_pepper(img: &GrayImage, rate: f32, rng: &mut impl Rng) -> GrayImage {
    assert!((0.0..=1.0).contains(&rate), "rate must be in [0, 1]");
    let mut out = img.clone();
    for p in out.pixels_mut() {
        let r: f32 = rng.gen();
        if r < rate / 2.0 {
            *p = 0.0;
        } else if r < rate {
            *p = 1.0;
        }
    }
    out
}

/// Draws a standard-normal sample via Box-Muller (avoids a dependency on
/// `rand_distr`).
pub fn gaussian_sample(rng: &mut impl Rng) -> f32 {
    let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
    let u2: f32 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (core::f32::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use incam_rng::rngs::StdRng;
    use incam_rng::SeedableRng;

    #[test]
    fn gaussian_sample_statistics() {
        let mut rng = StdRng::seed_from_u64(42);
        let n = 20_000;
        let samples: Vec<f32> = (0..n).map(|_| gaussian_sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f32>() / n as f32;
        let var = samples.iter().map(|s| (s - mean).powi(2)).sum::<f32>() / n as f32;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn noise_stays_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        let img = GrayImage::new(8, 8, 0.95);
        let noisy = add_gaussian_noise(&img, 0.3, &mut rng);
        let (lo, hi) = noisy.min_max();
        assert!(lo >= 0.0 && hi <= 1.0);
    }

    #[test]
    fn zero_sigma_is_identity() {
        let mut rng = StdRng::seed_from_u64(1);
        let img = GrayImage::new(4, 4, 0.3);
        let same = add_gaussian_noise(&img, 0.0, &mut rng);
        assert_eq!(same.pixels(), img.pixels());
    }

    #[test]
    fn exposure_gain_and_offset() {
        let img = GrayImage::new(2, 2, 0.4);
        let brighter = adjust_exposure(&img, 1.5, 0.1);
        assert!((brighter.get(0, 0) - 0.7).abs() < 1e-6);
        let clipped = adjust_exposure(&img, 10.0, 0.0);
        assert_eq!(clipped.get(0, 0), 1.0);
    }

    #[test]
    fn salt_pepper_rate() {
        let mut rng = StdRng::seed_from_u64(9);
        let img = GrayImage::new(100, 100, 0.5);
        let sp = add_salt_pepper(&img, 0.2, &mut rng);
        let extremes = sp
            .pixels()
            .iter()
            .filter(|&&p| p == 0.0 || p == 1.0)
            .count();
        let frac = extremes as f32 / 10_000.0;
        assert!((frac - 0.2).abs() < 0.03, "frac {frac}");
    }
}
