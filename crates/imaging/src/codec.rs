//! Image codecs for the *compression-as-an-optional-block* extension.
//!
//! The paper (§II) notes that "compression can be treated as an optional
//! block in in-camera processing pipelines" — with the tradeoff that
//! lossy compression early in the pipeline can degrade downstream
//! quality — but does not evaluate it. This module supplies the two
//! codecs that extension study needs:
//!
//! * a **lossless** predictive coder (left-neighbor delta + run-length +
//!   variable-length byte packing) whose measured ratio on sensor-like
//!   content feeds the communication model exactly;
//! * a **lossy** 8×8 DCT transform coder with a JPEG-style quality knob,
//!   so the rate/quality tradeoff of compressing *before* processing can
//!   be measured with the same MS-SSIM metric the depth study uses.

use crate::image::{GrayImage, Image};
use core::f32::consts::PI;
use core::fmt;

/// Error decoding a compressed stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeError {
    /// The stream does not start with the expected magic byte.
    BadMagic,
    /// The header is truncated or carries impossible dimensions.
    BadHeader,
    /// The stream ended before the pixel data did.
    Truncated,
    /// Bytes remain after the final pixel.
    TrailingData,
    /// A field holds an out-of-range value (e.g. a zero run length or an
    /// invalid quality).
    Corrupt,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let msg = match self {
            DecodeError::BadMagic => "stream does not start with the codec magic",
            DecodeError::BadHeader => "stream header is truncated or invalid",
            DecodeError::Truncated => "stream ended before the pixel data did",
            DecodeError::TrailingData => "stream has trailing bytes after the pixel data",
            DecodeError::Corrupt => "stream field holds an out-of-range value",
        };
        f.write_str(msg)
    }
}

impl std::error::Error for DecodeError {}

// ---------------------------------------------------------------------------
// Lossless: delta + RLE
// ---------------------------------------------------------------------------

/// Losslessly compresses an 8-bit image.
///
/// Each row is delta-coded against the left neighbour (first column
/// against the pixel above); runs of a repeated delta are run-length
/// encoded with the escape sequence `0x80, delta, run_len`. The escape
/// byte 0x80 (delta −128, the rarest value on natural content) is itself
/// always escaped; every other delta — including the very common zero —
/// costs one literal byte. A 9-byte header carries dimensions.
///
/// # Examples
///
/// ```
/// use incam_imaging::codec::{compress_lossless, decompress_lossless};
/// use incam_imaging::image::Image;
///
/// let img = Image::from_fn(64, 48, |x, y| ((x / 7 + y / 5) % 13 * 19) as u8);
/// let bytes = compress_lossless(&img);
/// let back = decompress_lossless(&bytes).expect("valid stream");
/// assert_eq!(back.pixels(), img.pixels());
/// assert!(bytes.len() < 64 * 48); // piecewise-constant content compresses
/// ```
pub fn compress_lossless(img: &Image<u8>) -> Vec<u8> {
    let (w, h) = img.dims();
    let mut out = Vec::with_capacity(img.len() / 2 + 9);
    out.push(b'L');
    out.extend_from_slice(&(w as u32).to_le_bytes());
    out.extend_from_slice(&(h as u32).to_le_bytes());

    // collect the delta stream, then run-length encode it
    let mut deltas = Vec::with_capacity(img.len());
    for y in 0..h {
        for x in 0..w {
            let predicted = if x > 0 {
                img.get(x - 1, y)
            } else if y > 0 {
                img.get(x, y - 1)
            } else {
                128
            };
            deltas.push(img.get(x, y).wrapping_sub(predicted)); // incam-lint: allow(unchecked-arith) — modular pixel delta; decode inverts it with wrapping_add
        }
    }

    const ESC: u8 = 0x80;
    let mut i = 0;
    while i < deltas.len() {
        let delta = deltas[i];
        let mut run = 1usize;
        while i + run < deltas.len() && deltas[i + run] == delta && run < 255 {
            run += 1;
        }
        // the escape byte must always be escaped; other deltas only when
        // the run amortizes the 3-byte sequence
        if delta == ESC || run >= 4 {
            out.push(ESC);
            out.push(delta);
            out.push(run as u8); // incam-lint: allow(lossy-cast) — run is capped at 255 by the loop condition
        } else {
            for _ in 0..run {
                out.push(delta);
            }
        }
        i += run;
    }
    out
}

/// Decompresses a [`compress_lossless`] stream.
///
/// # Errors
///
/// Returns a [`DecodeError`] describing the first malformation found
/// (wrong magic, truncated stream, zero run lengths, or trailing bytes).
pub fn decompress_lossless(bytes: &[u8]) -> Result<Image<u8>, DecodeError> {
    if bytes.is_empty() || bytes[0] != b'L' {
        return Err(DecodeError::BadMagic);
    }
    if bytes.len() < 9 {
        return Err(DecodeError::BadHeader);
    }
    let w = u32::from_le_bytes(bytes[1..5].try_into().expect("4 bytes")) as usize; // incam-lint: allow(fallible-unwrap) — slice length is fixed by the header guard above
    let h = u32::from_le_bytes(bytes[5..9].try_into().expect("4 bytes")) as usize;
    if w == 0 || h == 0 {
        return Err(DecodeError::BadHeader);
    }
    let mut pixels = Vec::with_capacity(w * h);
    let mut i = 9;
    while pixels.len() < w * h {
        let byte = *bytes.get(i).ok_or(DecodeError::Truncated)?;
        i += 1;
        if byte == 0x80 {
            let delta = *bytes.get(i).ok_or(DecodeError::Truncated)?;
            let run = *bytes.get(i + 1).ok_or(DecodeError::Truncated)? as usize;
            i += 2;
            if run == 0 {
                return Err(DecodeError::Corrupt);
            }
            for _ in 0..run {
                if pixels.len() >= w * h {
                    return Err(DecodeError::Corrupt);
                }
                push_predicted(&mut pixels, w, delta);
            }
        } else {
            push_predicted(&mut pixels, w, byte);
        }
    }
    if i != bytes.len() {
        return Err(DecodeError::TrailingData);
    }
    Ok(Image::from_vec(w, h, pixels))
}

fn push_predicted(pixels: &mut Vec<u8>, w: usize, delta: u8) {
    let n = pixels.len();
    let predicted = if !n.is_multiple_of(w) {
        pixels[n - 1]
    } else if n >= w {
        pixels[n - w]
    } else {
        128
    };
    pixels.push(predicted.wrapping_add(delta)); // incam-lint: allow(unchecked-arith) — inverse of the encoder's wrapping_sub delta
}

/// Compression ratio (`original / compressed`) of the lossless coder on
/// an image.
pub fn lossless_ratio(img: &Image<u8>) -> f64 {
    img.len() as f64 / compress_lossless(img).len() as f64
}

// ---------------------------------------------------------------------------
// Lossy: 8x8 DCT transform coding
// ---------------------------------------------------------------------------

/// A JPEG-style lossy grayscale codec: 8×8 block DCT, quality-scaled
/// quantization, zig-zag + RLE entropy stage (reusing the lossless
/// backend on the coefficient stream).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DctCodec {
    quality: u8,
}

/// The JPEG luminance base quantization table.
const BASE_QUANT: [u16; 64] = [
    16, 11, 10, 16, 24, 40, 51, 61, //
    12, 12, 14, 19, 26, 58, 60, 55, //
    14, 13, 16, 24, 40, 57, 69, 56, //
    14, 17, 22, 29, 51, 87, 80, 62, //
    18, 22, 37, 56, 68, 109, 103, 77, //
    24, 35, 55, 64, 81, 104, 113, 92, //
    49, 64, 78, 87, 103, 121, 120, 101, //
    72, 92, 95, 98, 112, 100, 103, 99,
];

impl DctCodec {
    /// Creates a codec with JPEG-style `quality` in `1..=100`.
    ///
    /// # Panics
    ///
    /// Panics if `quality` is outside `1..=100`.
    pub fn new(quality: u8) -> Self {
        assert!((1..=100).contains(&quality), "quality must be in 1..=100");
        Self { quality }
    }

    /// The quality setting.
    pub fn quality(&self) -> u8 {
        self.quality
    }

    fn quant_table(&self) -> [f32; 64] {
        // the standard JPEG quality-to-scale mapping
        let scale = if self.quality < 50 {
            5000.0 / self.quality as f32
        } else {
            200.0 - 2.0 * self.quality as f32
        };
        let mut table = [1.0f32; 64];
        for (t, &base) in table.iter_mut().zip(&BASE_QUANT) {
            *t = ((base as f32 * scale + 50.0) / 100.0)
                .clamp(1.0, 255.0)
                .floor();
        }
        table
    }

    /// Encodes a `[0, 1]` grayscale image, returning the byte stream.
    /// Dimensions are padded up to multiples of 8 internally.
    pub fn encode(&self, img: &GrayImage) -> Vec<u8> {
        let (w, h) = img.dims();
        let bw = w.div_ceil(8);
        let bh = h.div_ceil(8);
        let quant = self.quant_table();
        // coefficient plane stored as bytes (i8 zig-zag clamped), then
        // handed to the lossless backend for the entropy stage
        // DC coefficients span ±1024 at quant 1 and get a 16-bit side
        // channel; AC coefficients fit the i8 plane
        let mut coeff = Image::new(bw * 8, bh * 8, 0u8);
        let mut dc_values: Vec<i16> = Vec::with_capacity(bw * bh);
        for by in 0..bh {
            for bx in 0..bw {
                let mut block = [0.0f32; 64];
                for v in 0..8 {
                    for u in 0..8 {
                        let px = img.get_clamped((bx * 8 + u) as isize, (by * 8 + v) as isize);
                        block[v * 8 + u] = px * 255.0 - 128.0;
                    }
                }
                let freq = dct2d(&block);
                dc_values.push((freq[0] / quant[0]).round().clamp(-32767.0, 32767.0) as i16);
                coeff.set(bx * 8, by * 8, 128);
                for i in 1..64 {
                    let q = (freq[i] / quant[i]).round().clamp(-127.0, 127.0) as i8;
                    coeff.set(
                        bx * 8 + (i % 8),
                        by * 8 + (i / 8),
                        (q as u8).wrapping_add(128), // incam-lint: allow(unchecked-arith) — +128 bias shift into u8 range; the wrap is the codec's modular identity
                    );
                }
            }
        }
        let mut out = Vec::new();
        out.push(b'D');
        out.push(self.quality);
        out.extend_from_slice(&(w as u32).to_le_bytes());
        out.extend_from_slice(&(h as u32).to_le_bytes());
        for dc in &dc_values {
            out.extend_from_slice(&dc.to_le_bytes());
        }
        out.extend_from_slice(&compress_lossless(&coeff));
        out
    }

    /// Decodes a stream produced by [`DctCodec::encode`].
    ///
    /// # Errors
    ///
    /// Returns a [`DecodeError`] for malformed input.
    pub fn decode(bytes: &[u8]) -> Result<GrayImage, DecodeError> {
        if bytes.is_empty() || bytes[0] != b'D' {
            return Err(DecodeError::BadMagic);
        }
        if bytes.len() < 10 {
            return Err(DecodeError::BadHeader);
        }
        let quality = bytes[1];
        if !(1..=100).contains(&quality) {
            return Err(DecodeError::Corrupt);
        }
        let codec = DctCodec::new(quality);
        let w = u32::from_le_bytes(bytes[2..6].try_into().expect("4 bytes")) as usize; // incam-lint: allow(fallible-unwrap) — slice length is fixed by the header guard above
        let h = u32::from_le_bytes(bytes[6..10].try_into().expect("4 bytes")) as usize;
        if w == 0 || h == 0 {
            return Err(DecodeError::BadHeader);
        }
        let (bw, bh) = (w.div_ceil(8), h.div_ceil(8));
        let dc_bytes = 2 * bw * bh;
        if bytes.len() < 10 + dc_bytes {
            return Err(DecodeError::Truncated);
        }
        let dc_values: Vec<i16> = bytes[10..10 + dc_bytes]
            .chunks_exact(2)
            .map(|c| i16::from_le_bytes([c[0], c[1]]))
            .collect();
        let coeff = decompress_lossless(&bytes[10 + dc_bytes..])?;
        let (cw, ch) = coeff.dims();
        if cw != bw * 8 || ch != bh * 8 {
            return Err(DecodeError::Corrupt);
        }
        let quant = codec.quant_table();
        let mut out = GrayImage::zeros(w, h);
        for by in 0..ch / 8 {
            for bx in 0..cw / 8 {
                let mut freq = [0.0f32; 64];
                freq[0] = dc_values[by * bw + bx] as f32 * quant[0];
                for i in 1..64 {
                    let q = coeff
                        .get(bx * 8 + (i % 8), by * 8 + (i / 8))
                        // incam-lint: allow(unchecked-arith) — inverse of the encoder's +128 bias shift
                        .wrapping_sub(128) as i8; // incam-lint: allow(lossy-cast) — quantized coefficients are biased into 0..=255 by encode
                    freq[i] = q as f32 * quant[i];
                }
                let block = idct2d(&freq);
                for v in 0..8 {
                    for u in 0..8 {
                        let (x, y) = (bx * 8 + u, by * 8 + v);
                        if x < w && y < h {
                            out.set(x, y, ((block[v * 8 + u] + 128.0) / 255.0).clamp(0.0, 1.0));
                        }
                    }
                }
            }
        }
        Ok(out)
    }

    /// Round trip: encode then decode (infallible for valid images).
    pub fn transcode(&self, img: &GrayImage) -> (GrayImage, usize) {
        let bytes = self.encode(img);
        let len = bytes.len();
        (
            Self::decode(&bytes).expect("self-produced stream is valid"), // incam-lint: allow(fallible-unwrap) — round-trips a stream this encoder just produced
            len,
        )
    }

    /// Compression ratio against the 8-bit raw size.
    pub fn ratio(&self, img: &GrayImage) -> f64 {
        img.len() as f64 / self.encode(img).len() as f64
    }
}

fn dct_basis(u: usize, x: usize) -> f32 {
    ((2.0 * x as f32 + 1.0) * u as f32 * PI / 16.0).cos()
}

fn dct2d(block: &[f32; 64]) -> [f32; 64] {
    let mut out = [0.0f32; 64];
    for v in 0..8 {
        for u in 0..8 {
            let mut acc = 0.0;
            for y in 0..8 {
                for x in 0..8 {
                    acc += block[y * 8 + x] * dct_basis(u, x) * dct_basis(v, y);
                }
            }
            let cu = if u == 0 { 1.0 / 2f32.sqrt() } else { 1.0 };
            let cv = if v == 0 { 1.0 / 2f32.sqrt() } else { 1.0 };
            out[v * 8 + u] = 0.25 * cu * cv * acc;
        }
    }
    out
}

fn idct2d(freq: &[f32; 64]) -> [f32; 64] {
    let mut out = [0.0f32; 64];
    for y in 0..8 {
        for x in 0..8 {
            let mut acc = 0.0;
            for v in 0..8 {
                for u in 0..8 {
                    let cu = if u == 0 { 1.0 / 2f32.sqrt() } else { 1.0 };
                    let cv = if v == 0 { 1.0 / 2f32.sqrt() } else { 1.0 };
                    acc += cu * cv * freq[v * 8 + u] * dct_basis(u, x) * dct_basis(v, y);
                }
            }
            out[y * 8 + x] = 0.25 * acc;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::noise::add_gaussian_noise;
    use crate::quality::psnr;
    use incam_rng::rngs::StdRng;
    use incam_rng::SeedableRng;

    fn textured(w: usize, h: usize) -> GrayImage {
        Image::from_fn(w, h, |x, y| {
            (0.5 + 0.3 * ((x as f32 * 0.2).sin() * (y as f32 * 0.13).cos())).clamp(0.0, 1.0)
        })
    }

    #[test]
    fn lossless_round_trips_exactly() {
        let mut rng = StdRng::seed_from_u64(55);
        for img in [
            Image::new(17, 9, 0u8),
            Image::from_fn(32, 32, |x, y| ((x * y) % 256) as u8),
            add_gaussian_noise(&textured(24, 24), 0.2, &mut rng).to_u8(),
        ] {
            let back = decompress_lossless(&compress_lossless(&img)).expect("valid");
            assert_eq!(back.pixels(), img.pixels());
        }
    }

    #[test]
    fn lossless_compresses_smooth_content() {
        let flat = Image::new(64, 64, 100u8);
        assert!(lossless_ratio(&flat) > 50.0);
        let smooth = Image::from_fn(64, 64, |x, _| (x * 2) as u8);
        assert!(lossless_ratio(&smooth) > 1.5);
    }

    #[test]
    fn lossless_rejects_malformed_streams() {
        assert_eq!(decompress_lossless(&[]), Err(DecodeError::BadMagic));
        assert_eq!(decompress_lossless(b"Xjunk"), Err(DecodeError::BadMagic));
        let mut truncated = compress_lossless(&Image::new(8, 8, 7u8));
        truncated.pop();
        assert_eq!(decompress_lossless(&truncated), Err(DecodeError::Truncated));
        let mut trailing = compress_lossless(&Image::new(8, 8, 7u8));
        trailing.push(0x42);
        assert_eq!(
            decompress_lossless(&trailing),
            Err(DecodeError::TrailingData)
        );
    }

    #[test]
    fn dct_quality_monotone() {
        let img = textured(64, 48);
        let (lo_img, lo_len) = DctCodec::new(10).transcode(&img);
        let (hi_img, hi_len) = DctCodec::new(90).transcode(&img);
        assert!(hi_len > lo_len, "higher quality should spend more bytes");
        assert!(
            psnr(&img, &hi_img) > psnr(&img, &lo_img),
            "higher quality should reconstruct better"
        );
        assert!(psnr(&img, &hi_img) > 30.0);
    }

    #[test]
    fn dct_compresses_textured_content() {
        let img = textured(64, 64);
        let ratio = DctCodec::new(50).ratio(&img);
        assert!(ratio > 2.0, "ratio {ratio}");
    }

    #[test]
    fn dct_handles_non_multiple_of_eight() {
        let img = textured(37, 21);
        let (back, _) = DctCodec::new(80).transcode(&img);
        assert_eq!(back.dims(), (37, 21));
        assert!(psnr(&img, &back) > 25.0);
    }

    #[test]
    fn dct_round_trip_is_near_lossless_at_q100() {
        let img = textured(32, 32);
        let (back, _) = DctCodec::new(100).transcode(&img);
        assert!(psnr(&img, &back) > 35.0);
    }

    #[test]
    fn dct_rejects_malformed() {
        assert_eq!(DctCodec::decode(&[]).unwrap_err(), DecodeError::BadMagic);
        assert!(DctCodec::decode(b"Dxxxxxxxxxxx").is_err());
    }

    #[test]
    #[should_panic(expected = "quality")]
    fn zero_quality_rejected() {
        let _ = DctCodec::new(0);
    }
}
