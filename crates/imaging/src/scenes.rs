//! Scene-level synthetic workloads: security-camera frame streams for the
//! face-authentication case study and textured stereo pairs for the
//! bilateral-space stereo (VR) case study.

use crate::draw::{blit, fill_ellipse, fill_rect, vertical_gradient};
use crate::faces::{render_face, Identity, Nuisance};
use crate::image::GrayImage;
use crate::noise::add_gaussian_noise;
use incam_rng::Rng;

/// Ground truth for one security-camera frame.
#[derive(Debug, Clone, PartialEq)]
pub struct FrameTruth {
    /// Whether any person (and thus a face) is visible.
    pub person_present: bool,
    /// Index of the visible person in the scene's cast, if any.
    pub identity: Option<usize>,
    /// Face bounding box `(x, y, side)` in pixels, if a face is visible.
    pub face_box: Option<(usize, usize, usize)>,
}

/// A labeled frame: the image plus its ground truth.
#[derive(Debug, Clone)]
pub struct LabeledFrame {
    /// The rendered frame.
    pub image: GrayImage,
    /// Ground-truth annotations.
    pub truth: FrameTruth,
}

/// Configuration of the synthetic security-camera stream.
///
/// The paper evaluates the WISPCam pipeline on real video it collected; we
/// substitute a scripted stream with the same statistics that matter:
/// mostly-static frames, occasional walk-throughs by enrolled or unknown
/// people, frontal faces under mild (security-mount) conditions.
#[derive(Debug, Clone, PartialEq)]
pub struct SecuritySceneConfig {
    /// Frame width in pixels.
    pub width: usize,
    /// Frame height in pixels.
    pub height: usize,
    /// Number of distinct people who may appear.
    pub cast_size: usize,
    /// Probability that a new event (walk-through) starts on an idle frame.
    pub event_rate: f64,
    /// Duration of a walk-through in frames.
    pub event_len: usize,
    /// Probability a walk-through is by person 0 (the enrolled user).
    pub enrolled_prob: f64,
    /// Nuisance severity for rendered faces (security mounts are mild:
    /// ~0.3; unconstrained capture: ~1.0).
    pub nuisance: f32,
    /// Sensor noise per frame.
    pub sensor_noise: f32,
}

impl Default for SecuritySceneConfig {
    fn default() -> Self {
        Self {
            width: 160,
            height: 120,
            cast_size: 5,
            event_rate: 0.03,
            event_len: 10,
            enrolled_prob: 0.4,
            nuisance: 0.3,
            sensor_noise: 0.01,
        }
    }
}

/// Generator of a continuous security-camera frame stream.
#[derive(Debug, Clone)]
pub struct SecurityScene<R: Rng> {
    config: SecuritySceneConfig,
    cast: Vec<Identity>,
    background: GrayImage,
    /// frames remaining in the current event and the person involved
    event: Option<(usize, usize)>,
    rng: R,
}

impl<R: Rng> SecurityScene<R> {
    /// Creates a scene with a fixed background and a sampled cast.
    ///
    /// # Panics
    ///
    /// Panics if `cast_size` is zero or the frame is smaller than 64×48.
    pub fn new(config: SecuritySceneConfig, mut rng: R) -> Self {
        assert!(config.cast_size > 0, "cast must be non-empty");
        assert!(
            config.width >= 64 && config.height >= 48,
            "frame too small for a walk-through scene"
        );
        let cast = (0..config.cast_size)
            .map(|_| Identity::sample(&mut rng))
            .collect();
        let mut background = GrayImage::zeros(config.width, config.height);
        vertical_gradient(&mut background, 0.55, 0.35);
        // fixed furniture
        let w = config.width as isize;
        let h = config.height as isize;
        fill_rect(
            &mut background,
            w / 10,
            h / 2,
            config.width / 5,
            config.height / 2,
            0.25,
        );
        fill_rect(
            &mut background,
            w * 7 / 10,
            h * 3 / 5,
            config.width / 6,
            config.height * 2 / 5,
            0.2,
        );
        fill_rect(&mut background, 0, h - 6, config.width, 6, 0.15);
        Self {
            config,
            cast,
            background,
            event: None,
            rng,
        }
    }

    /// The enrolled user's identity (person 0).
    pub fn enrolled(&self) -> &Identity {
        &self.cast[0]
    }

    /// The full cast of identities.
    pub fn cast(&self) -> &[Identity] {
        &self.cast
    }

    /// Renders the next frame of the stream.
    pub fn next_frame(&mut self) -> LabeledFrame {
        // advance or start events
        let event = match self.event.take() {
            Some((remaining, person)) if remaining > 1 => {
                self.event = Some((remaining - 1, person));
                Some((remaining - 1, person))
            }
            Some(_) => None, // event ended
            None => {
                if self.rng.gen_bool(self.config.event_rate) {
                    let person = if self.rng.gen_bool(self.config.enrolled_prob) {
                        0
                    } else {
                        self.rng.gen_range(1..self.config.cast_size.max(2)) % self.config.cast_size
                    };
                    self.event = Some((self.config.event_len, person));
                    Some((self.config.event_len, person))
                } else {
                    None
                }
            }
        };

        let mut frame = self.background.clone();
        let truth = if let Some((remaining, person)) = event {
            // person walks left-to-right across the frame over the event
            let progress = 1.0 - remaining as f32 / self.config.event_len as f32;
            let body_w = self.config.width / 8;
            let body_h = self.config.height / 2;
            let x =
                (progress * (self.config.width as f32 + body_w as f32)) as isize - body_w as isize;
            let body_y = (self.config.height / 3) as isize;
            fill_rect(&mut frame, x, body_y, body_w, body_h, 0.45);
            // head with face
            let face_side = (self.config.height / 5).max(16);
            let nz = Nuisance::sample(&mut self.rng, self.config.nuisance);
            let face = render_face(&self.cast[person], &nz, face_side, &mut self.rng);
            let fx = x + (body_w as isize - face_side as isize) / 2;
            let fy = body_y - face_side as isize;
            blit(&mut frame, &face, fx, fy);
            let visible =
                fx >= 0 && fy >= 0 && fx + (face_side as isize) <= self.config.width as isize;
            FrameTruth {
                person_present: true,
                identity: Some(person),
                face_box: visible.then_some((fx as usize, fy.max(0) as usize, face_side)),
            }
        } else {
            FrameTruth {
                person_present: false,
                identity: None,
                face_box: None,
            }
        };

        let image = add_gaussian_noise(&frame, self.config.sensor_noise, &mut self.rng);
        LabeledFrame { image, truth }
    }

    /// Renders `n` consecutive frames.
    pub fn frames(&mut self, n: usize) -> Vec<LabeledFrame> {
        (0..n).map(|_| self.next_frame()).collect()
    }
}

/// A synthetic stereo scene with known ground-truth disparity, used by the
/// bilateral-space stereo experiments (Fig. 7).
#[derive(Debug, Clone)]
pub struct StereoScene {
    /// Left camera image.
    pub left: GrayImage,
    /// Right camera image (left warped by the disparity field).
    pub right: GrayImage,
    /// Ground-truth disparity in pixels (positive shifts).
    pub disparity: GrayImage,
    /// Maximum disparity present.
    pub max_disparity: usize,
}

/// Generates a textured, layered stereo scene.
///
/// The scene consists of a textured background plane plus several
/// foreground layers (ellipses and rectangles) at increasing disparities —
/// the piecewise-smooth depth structure that bilateral-space stereo is
/// designed for (depth edges coincide with intensity edges).
///
/// # Panics
///
/// Panics if dimensions are below 32×32 or `max_disparity` is zero or
/// ≥ width/4.
///
/// # Examples
///
/// ```
/// use incam_imaging::scenes::stereo_scene;
/// use incam_rng::SeedableRng;
///
/// let mut rng = incam_rng::rngs::StdRng::seed_from_u64(5);
/// let scene = stereo_scene(64, 48, 6, 3, &mut rng);
/// assert_eq!(scene.left.dims(), (64, 48));
/// assert_eq!(scene.max_disparity, 6);
/// ```
pub fn stereo_scene(
    width: usize,
    height: usize,
    max_disparity: usize,
    layers: usize,
    rng: &mut impl Rng,
) -> StereoScene {
    stereo_scene_sloped(width, height, max_disparity, layers, 0.0, rng)
}

/// [`stereo_scene`] with an additional *ground-plane ramp*: a smooth
/// vertical disparity gradient of up to `slope_fraction · max_disparity`
/// across the background, as produced by a floor receding from the
/// camera. Sloped surfaces are what make coarse bilateral grids lose
/// accuracy even away from depth edges (the paper's Fig. 7 degradation).
///
/// # Panics
///
/// As [`stereo_scene`]; additionally `slope_fraction` must be in `[0, 1]`.
pub fn stereo_scene_sloped(
    width: usize,
    height: usize,
    max_disparity: usize,
    layers: usize,
    slope_fraction: f32,
    rng: &mut impl Rng,
) -> StereoScene {
    assert!(
        (0.0..=1.0).contains(&slope_fraction),
        "slope_fraction must be in [0, 1]"
    );
    // sloped scenes also carry small, low-contrast detail objects: the
    // fine depth structure that only fine bilateral grids can preserve
    let detail_objects = if slope_fraction > 0.0 { 2 * layers } else { 0 };
    assert!(width >= 32 && height >= 32, "scene too small");
    assert!(
        max_disparity > 0 && max_disparity < width / 4,
        "max_disparity out of range"
    );

    // textured background: sum of random sinusoids + noise, distinct tone
    let phases: Vec<(f32, f32, f32, f32)> = (0..6)
        .map(|_| {
            (
                rng.gen_range(0.05..0.5),
                rng.gen_range(0.05..0.5),
                rng.gen_range(0.0..core::f32::consts::TAU),
                rng.gen_range(0.05..0.18),
            )
        })
        .collect();
    let mut texture = GrayImage::from_fn(width, height, |x, y| {
        let mut v = 0.5;
        for &(fx, fy, ph, amp) in &phases {
            v += amp * (fx * x as f32 + fy * y as f32 + ph).sin();
        }
        v.clamp(0.0, 1.0)
    });
    texture = add_gaussian_noise(&texture, 0.02, rng);

    // disparity field: background ground-plane ramp (bottom of the frame
    // is nearest), then layered foreground shapes
    let ramp = slope_fraction * max_disparity as f32;
    let mut disparity =
        GrayImage::from_fn(width, height, |_, y| ramp * y as f32 / (height - 1) as f32);
    let mut tone = GrayImage::zeros(width, height); // per-layer tone offset
    for layer in 0..layers {
        let d = ((layer + 1) as f32 / layers as f32 * max_disparity as f32).round();
        let cx = rng.gen_range(0.2..0.8) * width as f32;
        let cy = rng.gen_range(0.2..0.8) * height as f32;
        let rx = rng.gen_range(0.08..0.22) * width as f32;
        let ry = rng.gen_range(0.08..0.22) * height as f32;
        fill_ellipse(&mut disparity, cx, cy, rx, ry, d);
        // give each layer a distinct albedo shift so depth edges are
        // intensity edges (the bilateral-space assumption)
        fill_ellipse(&mut tone, cx, cy, rx, ry, rng.gen_range(-0.25..0.25));
    }
    // small low-contrast detail objects at intermediate depths
    for _ in 0..detail_objects {
        let d = rng.gen_range(0.3..0.9) * max_disparity as f32;
        let cx = rng.gen_range(0.1..0.9) * width as f32;
        let cy = rng.gen_range(0.1..0.9) * height as f32;
        let r = rng.gen_range(0.015..0.04) * width as f32;
        fill_ellipse(&mut disparity, cx, cy, r, r, d.round());
        fill_ellipse(
            &mut tone,
            cx,
            cy,
            r,
            r,
            rng.gen_range(0.06..0.12) * if rng.gen_bool(0.5) { 1.0 } else { -1.0 },
        );
    }

    let left = GrayImage::from_fn(width, height, |x, y| {
        (texture.get(x, y) + tone.get(x, y)).clamp(0.0, 1.0)
    });

    // right view: sample left at x + d (objects shift left in the right eye)
    let right = GrayImage::from_fn(width, height, |x, y| {
        let d = disparity.get(x, y).round();
        left.get_clamped(x as isize + d as isize, y as isize)
    });

    StereoScene {
        left,
        right,
        disparity,
        max_disparity,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use incam_rng::rngs::StdRng;
    use incam_rng::SeedableRng;

    #[test]
    fn idle_frames_dominate_at_low_event_rate() {
        let cfg = SecuritySceneConfig {
            event_rate: 0.02,
            ..Default::default()
        };
        let mut scene = SecurityScene::new(cfg, StdRng::seed_from_u64(1));
        let frames = scene.frames(300);
        let present = frames.iter().filter(|f| f.truth.person_present).count();
        assert!(present > 0, "some events should occur");
        assert!(present < 150, "events should be the minority: {present}");
    }

    #[test]
    fn events_run_for_configured_length() {
        let cfg = SecuritySceneConfig {
            event_rate: 1.0, // event starts immediately
            event_len: 5,
            ..Default::default()
        };
        let mut scene = SecurityScene::new(cfg, StdRng::seed_from_u64(2));
        let frames = scene.frames(7);
        let presence: Vec<bool> = frames.iter().map(|f| f.truth.person_present).collect();
        // 5 event frames, then a gap frame, then a new event begins
        assert_eq!(&presence[..6], &[true, true, true, true, true, false]);
    }

    #[test]
    fn enrolled_person_appears_with_configured_probability() {
        let cfg = SecuritySceneConfig {
            event_rate: 0.5,
            event_len: 1,
            enrolled_prob: 1.0,
            ..Default::default()
        };
        let mut scene = SecurityScene::new(cfg, StdRng::seed_from_u64(3));
        for f in scene.frames(100) {
            if f.truth.person_present {
                assert_eq!(f.truth.identity, Some(0));
            }
        }
    }

    #[test]
    fn frames_differ_only_when_person_moves() {
        let cfg = SecuritySceneConfig {
            event_rate: 0.0,
            sensor_noise: 0.0,
            ..Default::default()
        };
        let mut scene = SecurityScene::new(cfg, StdRng::seed_from_u64(4));
        let a = scene.next_frame();
        let b = scene.next_frame();
        assert_eq!(a.image.pixels(), b.image.pixels());
    }

    #[test]
    fn stereo_pair_consistent_with_disparity() {
        let mut rng = StdRng::seed_from_u64(9);
        let s = stereo_scene(96, 64, 8, 3, &mut rng);
        // check the warp identity at interior pixels with constant disparity
        let mut checked = 0;
        for y in 8..56 {
            for x in 8..80 {
                let d = s.disparity.get(x, y) as usize;
                if x + d < 88 {
                    let l = s.left.get(x + d, y);
                    let r = s.right.get(x, y);
                    if (l - r).abs() < 1e-6 {
                        checked += 1;
                    }
                }
            }
        }
        // the warp holds exactly wherever disparity is locally constant
        assert!(checked > 2000, "only {checked} consistent pixels");
    }

    #[test]
    fn disparity_range_respected() {
        let mut rng = StdRng::seed_from_u64(10);
        let s = stereo_scene(64, 64, 5, 4, &mut rng);
        let (lo, hi) = s.disparity.min_max();
        assert!(lo >= 0.0);
        assert!(hi <= 5.0 + 1e-6);
        assert!(hi >= 4.0, "top layer should reach near max disparity");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn huge_disparity_rejected() {
        let mut rng = StdRng::seed_from_u64(1);
        let _ = stereo_scene(64, 64, 32, 2, &mut rng);
    }
}
