//! Parametric synthetic face generator — the workspace's substitute for
//! the LFW dataset and the authors' collected video.
//!
//! The low-power case study's experiments measure *relative* quantities: a
//! 400-8-1 NN's accuracy across precisions, the benefit of filtering
//! blocks, the Viola-Jones parameter sweeps. Those need a face/non-face
//! classification task whose difficulty is controllable and whose nuisance
//! structure (lighting, pose jitter, sensor noise, identity variation)
//! resembles real captures — not photographic realism. Faces here are
//! structured renderings: an elliptical head with eyes/brows/nose/mouth
//! whose geometry and contrast are *identity parameters*, plus per-sample
//! nuisance. The classic Haar cues (eyes darker than cheeks, nose bridge
//! brighter than the eye line) emerge from the geometry, which is what the
//! Viola-Jones cascade keys on.

use crate::draw::{blend_ellipse, fill_ellipse};
use crate::image::GrayImage;
use crate::noise::{add_gaussian_noise, gaussian_sample};
use incam_rng::Rng;

/// Identity parameters for one synthetic person. Sampled once per person;
/// all captures of that person share them.
#[derive(Debug, Clone, PartialEq)]
pub struct Identity {
    /// Head width as a fraction of the patch (0.55–0.85).
    pub face_width: f32,
    /// Head height as a fraction of the patch (0.75–0.98).
    pub face_height: f32,
    /// Vertical eye-line position as a fraction of head height (0.32–0.46).
    pub eye_y: f32,
    /// Horizontal eye spacing as a fraction of head width (0.40–0.62).
    pub eye_spacing: f32,
    /// Eye radius as a fraction of head width (0.07–0.13).
    pub eye_size: f32,
    /// Eye intensity (dark, 0.02–0.25).
    pub eye_tone: f32,
    /// Brow intensity (0.1–0.4).
    pub brow_tone: f32,
    /// Mouth vertical position as a fraction of head height (0.68–0.80).
    pub mouth_y: f32,
    /// Mouth width as a fraction of head width (0.30–0.55).
    pub mouth_width: f32,
    /// Mouth intensity (0.05–0.35).
    pub mouth_tone: f32,
    /// Skin intensity (0.55–0.85).
    pub skin_tone: f32,
    /// Nose ridge brightness boost over skin (0.02–0.14).
    pub nose_boost: f32,
}

impl Identity {
    /// Samples a random identity.
    pub fn sample(rng: &mut impl Rng) -> Self {
        Self {
            face_width: rng.gen_range(0.55..0.85),
            face_height: rng.gen_range(0.75..0.98),
            eye_y: rng.gen_range(0.32..0.46),
            eye_spacing: rng.gen_range(0.40..0.62),
            eye_size: rng.gen_range(0.07..0.13),
            eye_tone: rng.gen_range(0.02..0.25),
            brow_tone: rng.gen_range(0.1..0.4),
            mouth_y: rng.gen_range(0.68..0.80),
            mouth_width: rng.gen_range(0.30..0.55),
            mouth_tone: rng.gen_range(0.05..0.35),
            skin_tone: rng.gen_range(0.55..0.85),
            nose_boost: rng.gen_range(0.02..0.14),
        }
    }
}

/// Per-capture nuisance conditions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Nuisance {
    /// Illumination gain applied to the rendered patch.
    pub gain: f32,
    /// Illumination offset.
    pub offset: f32,
    /// Horizontal translation jitter in pixels.
    pub shift_x: f32,
    /// Vertical translation jitter in pixels.
    pub shift_y: f32,
    /// Overall scale jitter (1.0 = nominal).
    pub scale: f32,
    /// Sensor-noise standard deviation.
    pub noise_sigma: f32,
}

impl Nuisance {
    /// No nuisance: nominal studio conditions.
    pub fn none() -> Self {
        Self {
            gain: 1.0,
            offset: 0.0,
            shift_x: 0.0,
            shift_y: 0.0,
            scale: 1.0,
            noise_sigma: 0.0,
        }
    }

    /// Samples nuisance at a given `severity` in `[0, 1]`. Severity 0 is
    /// [`Nuisance::none`]; severity 1 approximates unconstrained captures
    /// (LFW-like lighting and pose variation).
    pub fn sample(rng: &mut impl Rng, severity: f32) -> Self {
        let s = severity.clamp(0.0, 1.0);
        Self {
            gain: 1.0 + 0.55 * s * gaussian_sample(rng),
            offset: 0.18 * s * gaussian_sample(rng),
            shift_x: 2.4 * s * gaussian_sample(rng),
            shift_y: 2.4 * s * gaussian_sample(rng),
            scale: 1.0 + 0.16 * s * gaussian_sample(rng),
            noise_sigma: 0.05 * s,
        }
    }
}

/// Renders a `size × size` grayscale face patch for `identity` under
/// `nuisance`.
///
/// # Panics
///
/// Panics if `size < 8`.
///
/// # Examples
///
/// ```
/// use incam_imaging::faces::{render_face, Identity, Nuisance};
/// use incam_rng::SeedableRng;
///
/// let mut rng = incam_rng::rngs::StdRng::seed_from_u64(1);
/// let id = Identity::sample(&mut rng);
/// let face = render_face(&id, &Nuisance::none(), 20, &mut rng);
/// assert_eq!(face.dims(), (20, 20));
/// ```
pub fn render_face(
    identity: &Identity,
    nuisance: &Nuisance,
    size: usize,
    rng: &mut impl Rng,
) -> GrayImage {
    assert!(size >= 8, "face patch must be at least 8x8");
    let s = size as f32;
    let scale = nuisance.scale.clamp(0.6, 1.5);
    let cx = s / 2.0 + nuisance.shift_x;
    let cy = s / 2.0 + nuisance.shift_y;
    let hw = identity.face_width * s / 2.0 * scale; // head half-width
    let hh = identity.face_height * s / 2.0 * scale; // head half-height

    // background: dim clutter so the head silhouette has an edge
    let mut img = GrayImage::new(size, size, 0.30);
    // head
    fill_ellipse(&mut img, cx, cy, hw, hh, identity.skin_tone);
    // nose ridge: a bright vertical strip between the eyes and mouth
    let nose_top = cy - hh + 2.0 * hh * identity.eye_y;
    let nose_bot = cy - hh + 2.0 * hh * (identity.mouth_y - 0.08);
    blend_ellipse(
        &mut img,
        cx,
        (nose_top + nose_bot) / 2.0,
        hw * 0.10,
        (nose_bot - nose_top) / 2.0,
        (identity.skin_tone + identity.nose_boost).min(1.0),
        0.9,
    );
    // eyes and brows
    let eye_y = cy - hh + 2.0 * hh * identity.eye_y;
    let eye_dx = identity.eye_spacing * hw;
    let eye_r = identity.eye_size * 2.0 * hw;
    for side in [-1.0f32, 1.0] {
        let ex = cx + side * eye_dx;
        fill_ellipse(&mut img, ex, eye_y, eye_r, eye_r * 0.7, identity.eye_tone);
        fill_ellipse(
            &mut img,
            ex,
            eye_y - eye_r * 1.6,
            eye_r * 1.2,
            eye_r * 0.33,
            identity.brow_tone,
        );
    }
    // mouth
    let mouth_y = cy - hh + 2.0 * hh * identity.mouth_y;
    fill_ellipse(
        &mut img,
        cx,
        mouth_y,
        identity.mouth_width * hw,
        eye_r * 0.45,
        identity.mouth_tone,
    );

    // illumination, then sensor noise
    let mut lit = img.map(|p| (p * nuisance.gain + nuisance.offset).clamp(0.0, 1.0));
    if nuisance.noise_sigma > 0.0 {
        lit = add_gaussian_noise(&lit, nuisance.noise_sigma, rng);
    }
    lit
}

/// Renders a `size × size` patch that is *not* a face, for detector and
/// authenticator negatives. Draws from several texture families so
/// negatives are not trivially separable.
pub fn render_non_face(size: usize, rng: &mut impl Rng) -> GrayImage {
    assert!(size >= 8, "patch must be at least 8x8");
    match rng.gen_range(0..5u8) {
        // smooth noise field
        0 => {
            let base = GrayImage::new(size, size, rng.gen_range(0.2..0.8));
            add_gaussian_noise(&base, 0.15, rng)
        }
        // linear gradient at a random orientation
        1 => {
            let a: f32 = rng.gen_range(0.0..core::f32::consts::TAU);
            let (dx, dy) = (a.cos(), a.sin());
            let lo = rng.gen_range(0.0..0.4);
            let hi = rng.gen_range(0.6..1.0);
            GrayImage::from_fn(size, size, |x, y| {
                let t = (dx * x as f32 + dy * y as f32) / size as f32;
                (lo + (hi - lo) * (t * 0.5 + 0.5)).clamp(0.0, 1.0)
            })
        }
        // stripes (fences, blinds, radiators)
        2 => {
            let period = rng.gen_range(2..(size / 2).max(3));
            let phase = rng.gen_range(0..period);
            let a = rng.gen_range(0.1..0.4);
            let b = rng.gen_range(0.6..0.95);
            let vertical = rng.gen_bool(0.5);
            GrayImage::from_fn(size, size, |x, y| {
                let c = if vertical { x } else { y };
                if (c + phase) % period < period / 2 {
                    a
                } else {
                    b
                }
            })
        }
        // random blobs (foliage, clutter)
        3 => {
            let mut img = GrayImage::new(size, size, rng.gen_range(0.3..0.7));
            for _ in 0..rng.gen_range(2..7) {
                let cx = rng.gen_range(0.0..size as f32);
                let cy = rng.gen_range(0.0..size as f32);
                let r = rng.gen_range(1.0..size as f32 / 2.5);
                fill_ellipse(&mut img, cx, cy, r, r, rng.gen_range(0.0..1.0));
            }
            add_gaussian_noise(&img, 0.03, rng)
        }
        // "almost-face": head-like blob without the eye/mouth structure —
        // forces classifiers to use internal structure, not the silhouette
        _ => {
            let mut img = GrayImage::new(size, size, 0.30);
            let s = size as f32;
            fill_ellipse(
                &mut img,
                s / 2.0,
                s / 2.0,
                rng.gen_range(0.25..0.45) * s,
                rng.gen_range(0.35..0.49) * s,
                rng.gen_range(0.5..0.9),
            );
            add_gaussian_noise(&img, 0.05, rng)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use incam_rng::rngs::StdRng;
    use incam_rng::SeedableRng;

    #[test]
    fn faces_have_haar_structure() {
        // The eye line should be darker than the cheek band just below it
        // for the vast majority of identities — the first Haar cue.
        let mut rng = StdRng::seed_from_u64(17);
        let mut haar_positive = 0;
        let n = 50;
        for _ in 0..n {
            let id = Identity::sample(&mut rng);
            let face = render_face(&id, &Nuisance::none(), 24, &mut rng);
            let eye_row = (24.0 * (0.5 - id.face_height / 2.0 + id.face_height * id.eye_y))
                .round()
                .clamp(2.0, 21.0) as usize;
            let band = |y0: usize| -> f32 {
                let mut s = 0.0;
                for y in y0..(y0 + 2).min(24) {
                    for x in 6..18 {
                        s += face.get(x, y);
                    }
                }
                s
            };
            if band(eye_row.saturating_sub(1)) < band((eye_row + 3).min(21)) {
                haar_positive += 1;
            }
        }
        assert!(haar_positive > n * 7 / 10, "only {haar_positive}/{n}");
    }

    #[test]
    fn same_identity_similar_different_identities_differ() {
        let mut rng = StdRng::seed_from_u64(3);
        let a = Identity::sample(&mut rng);
        let b = Identity::sample(&mut rng);
        let fa1 = render_face(&a, &Nuisance::none(), 20, &mut rng);
        let fa2 = render_face(&a, &Nuisance::none(), 20, &mut rng);
        let fb = render_face(&b, &Nuisance::none(), 20, &mut rng);
        let d_same: f32 = fa1
            .pixels()
            .iter()
            .zip(fa2.pixels())
            .map(|(x, y)| (x - y).abs())
            .sum();
        let d_diff: f32 = fa1
            .pixels()
            .iter()
            .zip(fb.pixels())
            .map(|(x, y)| (x - y).abs())
            .sum();
        assert!(d_same < 1e-6); // no nuisance => deterministic rendering
        assert!(d_diff > 1.0);
    }

    #[test]
    fn nuisance_severity_scales_variation() {
        let mut rng = StdRng::seed_from_u64(8);
        let id = Identity::sample(&mut rng);
        let clean = render_face(&id, &Nuisance::none(), 20, &mut rng);
        let mut dist_at = |sev: f32| -> f32 {
            let mut total = 0.0;
            for _ in 0..10 {
                let nz = Nuisance::sample(&mut rng, sev);
                let f = render_face(&id, &nz, 20, &mut rng);
                total += clean
                    .pixels()
                    .iter()
                    .zip(f.pixels())
                    .map(|(a, b)| (a - b).abs())
                    .sum::<f32>();
            }
            total
        };
        let low = dist_at(0.1);
        let high = dist_at(0.9);
        assert!(high > low * 1.5, "low {low} high {high}");
    }

    #[test]
    fn non_faces_are_diverse() {
        let mut rng = StdRng::seed_from_u64(4);
        let patches: Vec<GrayImage> = (0..20).map(|_| render_non_face(20, &mut rng)).collect();
        // not all identical
        let first = &patches[0];
        assert!(patches.iter().any(|p| p.pixels() != first.pixels()));
        for p in &patches {
            let (lo, hi) = p.min_max();
            assert!((0.0..=1.0).contains(&lo) && (0.0..=1.0).contains(&hi));
        }
    }

    #[test]
    #[should_panic(expected = "at least")]
    fn tiny_patch_rejected() {
        let mut rng = StdRng::seed_from_u64(1);
        let id = Identity::sample(&mut rng);
        let _ = render_face(&id, &Nuisance::none(), 4, &mut rng);
    }
}
