//! Summed-area tables (integral images).
//!
//! The Viola-Jones detector evaluates thousands of rectangular Haar
//! features per window; the integral image makes any axis-aligned
//! rectangle sum an O(1) four-corner lookup, which is also exactly the
//! structure the paper's in-camera face-detection accelerator exploits.
//!
//! Both a plain and a *squared* integral image are provided; the pair
//! yields per-window mean and variance for the variance normalization that
//! Viola-Jones applies to every candidate window.

use crate::image::GrayImage;
#[cfg(test)]
use crate::image::Image;

/// A summed-area table over a grayscale image.
///
/// Internally stores an `(w+1) × (h+1)` table of `f64` prefix sums so
/// rectangle queries need no edge-case branches.
///
/// # Examples
///
/// ```
/// use incam_imaging::image::Image;
/// use incam_imaging::integral::IntegralImage;
///
/// let img = Image::from_fn(4, 4, |_, _| 1.0f32);
/// let ii = IntegralImage::new(&img);
/// assert_eq!(ii.rect_sum(1, 1, 2, 2), 4.0);
/// assert_eq!(ii.rect_sum(0, 0, 4, 4), 16.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct IntegralImage {
    width: usize,
    height: usize,
    /// (width+1) x (height+1) prefix sums, row-major.
    table: Vec<f64>,
}

impl IntegralImage {
    /// Builds the integral image of `img`.
    pub fn new(img: &GrayImage) -> Self {
        Self::from_mapped(img, |p| p as f64)
    }

    /// Builds the integral image of the *squared* intensities of `img`,
    /// used together with [`IntegralImage::new`] for window variance.
    pub fn squared(img: &GrayImage) -> Self {
        Self::from_mapped(img, |p| (p as f64) * (p as f64))
    }

    fn from_mapped(img: &GrayImage, f: impl Fn(f32) -> f64 + Sync) -> Self {
        let (w, h) = img.dims();
        let tw = w + 1;
        let mut table = vec![0.0f64; tw * (h + 1)];
        if incam_parallel::num_threads() == 1 || incam_parallel::in_parallel_region() {
            // Fused single pass over flat row slices: one sweep carrying
            // the row prefix sum and adding the previous table row.
            // Bit-equal to the two-pass construction below: each table
            // entry pairs the same two values (row carry + previous row)
            // and IEEE-754 addition is commutative; the carry can never
            // be -0.0 (it starts at +0.0 and additions of mapped pixels
            // preserve that), so adding the all-zero row 0 is exact.
            for y in 1..=h {
                let (head, tail) = table.split_at_mut(y * tw);
                let prev = &head[(y - 1) * tw..];
                let cur = &mut tail[..tw];
                let mut carry = 0.0f64;
                for ((slot, &up), &p) in cur[1..].iter_mut().zip(&prev[1..]).zip(img.row(y - 1)) {
                    carry += f(p);
                    *slot = up + carry;
                }
            }
        } else {
            // Pass 1 (parallel rows): table row y+1 holds the running
            // prefix sums of image row y, computed over flat row slices.
            // Rows are independent, so the pool computes them
            // byte-identically at any thread count.
            let (_, rows) = table.split_at_mut(tw);
            incam_parallel::par_chunks(rows, tw, |y, row| {
                let mut row_sum = 0.0f64;
                for (slot, &p) in row[1..].iter_mut().zip(img.row(y)) {
                    row_sum += f(p);
                    *slot = row_sum;
                }
            });
            // Pass 2 (sequential): vertical accumulation over flat
            // slices, pairing the same two values as the fused pass.
            for y in 2..=h {
                let (head, tail) = table.split_at_mut(y * tw);
                let prev = &head[(y - 1) * tw..];
                let cur = &mut tail[..tw];
                for (slot, &up) in cur[1..].iter_mut().zip(&prev[1..]) {
                    *slot += up;
                }
            }
        }
        Self {
            width: w,
            height: h,
            table,
        }
    }

    /// The original bounds-checked per-pixel two-pass construction —
    /// correctness oracle (proptests pin [`IntegralImage::new`] bit-equal
    /// to it) and the "before" side of the kernel microbenchmarks.
    pub fn new_reference(img: &GrayImage) -> Self {
        Self::from_mapped_reference(img, |p| p as f64)
    }

    /// Reference construction of the squared table; see
    /// [`IntegralImage::new_reference`].
    pub fn squared_reference(img: &GrayImage) -> Self {
        Self::from_mapped_reference(img, |p| (p as f64) * (p as f64))
    }

    fn from_mapped_reference(img: &GrayImage, f: impl Fn(f32) -> f64 + Sync) -> Self {
        let (w, h) = img.dims();
        let tw = w + 1;
        let mut table = vec![0.0f64; tw * (h + 1)];
        let (_, rows) = table.split_at_mut(tw);
        incam_parallel::par_chunks(rows, tw, |y, row| {
            let mut row_sum = 0.0f64;
            for x in 0..w {
                row_sum += f(img.get(x, y));
                row[x + 1] = row_sum;
            }
        });
        for y in 2..=h {
            let (head, tail) = table.split_at_mut(y * tw);
            let prev = &head[(y - 1) * tw..];
            let cur = &mut tail[..tw];
            for x in 1..=w {
                cur[x] += prev[x];
            }
        }
        Self {
            width: w,
            height: h,
            table,
        }
    }

    /// The raw `(width+1) × (height+1)` prefix-sum table, row-major —
    /// lets scanners (e.g. the Viola-Jones compiled cascade) read window
    /// sums through precomputed flat corner offsets instead of per-query
    /// coordinate math. Entry `(x, y)` lives at `y * table_width() + x`.
    #[inline]
    pub fn table(&self) -> &[f64] {
        &self.table
    }

    /// Row stride of [`IntegralImage::table`] (`width + 1`).
    #[inline]
    pub fn table_width(&self) -> usize {
        self.width + 1
    }

    /// Source image width.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Source image height.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Sum of pixels in the `w × h` rectangle with top-left `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if the rectangle extends outside the image.
    #[inline]
    pub fn rect_sum(&self, x: usize, y: usize, w: usize, h: usize) -> f64 {
        assert!(
            x + w <= self.width && y + h <= self.height,
            "rect {}x{}+{}+{} exceeds {}x{}",
            w,
            h,
            x,
            y,
            self.width,
            self.height
        );
        let tw = self.width + 1;
        let a = self.table[y * tw + x];
        let b = self.table[y * tw + (x + w)];
        let c = self.table[(y + h) * tw + x];
        let d = self.table[(y + h) * tw + (x + w)];
        d - b - c + a
    }

    /// Mean intensity of a rectangle.
    pub fn rect_mean(&self, x: usize, y: usize, w: usize, h: usize) -> f64 {
        self.rect_sum(x, y, w, h) / (w * h) as f64
    }
}

/// Per-window mean and standard deviation computed from a plain/squared
/// integral-image pair — the normalization statistics Viola-Jones applies
/// to every scanned window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WindowStats {
    /// Mean intensity of the window.
    pub mean: f64,
    /// Standard deviation of the window (clamped to a small positive
    /// minimum so flat windows do not divide by zero).
    pub stddev: f64,
}

/// Computes [`WindowStats`] for the given window.
///
/// # Examples
///
/// ```
/// use incam_imaging::image::Image;
/// use incam_imaging::integral::{window_stats, IntegralImage};
///
/// let img = Image::from_fn(4, 1, |x, _| x as f32); // 0 1 2 3
/// let ii = IntegralImage::new(&img);
/// let sq = IntegralImage::squared(&img);
/// let stats = window_stats(&ii, &sq, 0, 0, 4, 1);
/// assert!((stats.mean - 1.5).abs() < 1e-9);
/// assert!((stats.stddev - 1.118).abs() < 1e-3);
/// ```
pub fn window_stats(
    ii: &IntegralImage,
    sq: &IntegralImage,
    x: usize,
    y: usize,
    w: usize,
    h: usize,
) -> WindowStats {
    let n = (w * h) as f64;
    let mean = ii.rect_sum(x, y, w, h) / n;
    let var = (sq.rect_sum(x, y, w, h) / n - mean * mean).max(0.0);
    WindowStats {
        mean,
        stddev: var.sqrt().max(1e-6),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_sum(img: &GrayImage, x: usize, y: usize, w: usize, h: usize) -> f64 {
        let mut s = 0.0;
        for yy in y..y + h {
            for xx in x..x + w {
                s += img.get(xx, yy) as f64;
            }
        }
        s
    }

    #[test]
    fn matches_naive_sums() {
        let img = Image::from_fn(7, 5, |x, y| ((x * 31 + y * 17) % 13) as f32 / 13.0);
        let ii = IntegralImage::new(&img);
        for (x, y, w, h) in [(0, 0, 7, 5), (1, 1, 3, 2), (6, 4, 1, 1), (0, 2, 7, 1)] {
            let expected = naive_sum(&img, x, y, w, h);
            assert!(
                (ii.rect_sum(x, y, w, h) - expected).abs() < 1e-9,
                "rect {x},{y},{w},{h}"
            );
        }
    }

    #[test]
    fn squared_integral() {
        let img = Image::from_vec(2, 1, vec![2.0f32, 3.0]);
        let sq = IntegralImage::squared(&img);
        assert!((sq.rect_sum(0, 0, 2, 1) - 13.0).abs() < 1e-9);
    }

    #[test]
    fn window_stats_flat_window() {
        let img = GrayImage::new(4, 4, 0.5);
        let ii = IntegralImage::new(&img);
        let sq = IntegralImage::squared(&img);
        let stats = window_stats(&ii, &sq, 0, 0, 4, 4);
        assert!((stats.mean - 0.5).abs() < 1e-9);
        assert!(stats.stddev > 0.0 && stats.stddev < 1e-5);
    }

    #[test]
    #[should_panic(expected = "rect")]
    fn out_of_bounds_rect_panics() {
        let ii = IntegralImage::new(&GrayImage::zeros(4, 4));
        let _ = ii.rect_sum(2, 2, 4, 4);
    }

    #[test]
    fn empty_rect_is_zero() {
        let ii = IntegralImage::new(&GrayImage::new(3, 3, 1.0));
        assert_eq!(ii.rect_sum(1, 1, 0, 0), 0.0);
    }
}
