//! Cycle-by-cycle functional simulation of the Fig. 3 datapath.
//!
//! Where [`crate::sched`] *counts* cycles analytically, this module
//! *executes* them: a vertically micro-coded sequencer steps a bank of
//! processing elements through weight-stationary multiply-accumulate,
//! one broadcast input per cycle; completed accumulators drain through
//! the accumulator FIFO into the shared sigmoid LUT unit; activations
//! land in the output FIFO for the next layer. Two strong checks fall
//! out:
//!
//! * **bit-exactness** — the simulated PEs use the same integer
//!   arithmetic as [`incam_nn::quant::QuantizedMlp`], so every output
//!   must match the functional model exactly;
//! * **cycle-exactness** — the simulated cycle counter must agree with
//!   [`crate::sched::Schedule`]'s analytical total, validating the
//!   energy model's cycle basis.

use crate::config::SnnapConfig;
use crate::sched::Schedule;
use incam_nn::quant::{QFormat, QuantizedMlp};

/// One processing element's architectural state.
#[derive(Debug, Clone)]
struct ProcessingElement {
    /// The weight-SRAM row for the neuron currently mapped to this PE.
    weights: Vec<i64>,
    /// The running accumulator (the Fig. 3 26-bit register, held wider
    /// here with the width checked instead of silently wrapping).
    accumulator: i64,
    /// Whether a neuron is mapped this pass.
    active: bool,
}

/// Event counters gathered while cycling the datapath.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DatapathStats {
    /// Total cycles stepped.
    pub cycles: u64,
    /// Multiply-accumulate operations executed (one per active PE per
    /// broadcast cycle).
    pub macs: u64,
    /// Weight-SRAM reads (one per MAC — weight-stationary rows are read
    /// as the input streams by).
    pub sram_reads: u64,
    /// Input-bus broadcast transfers.
    pub bus_broadcasts: u64,
    /// Sigmoid-unit lookups.
    pub sigmoid_lookups: u64,
    /// Widest accumulator magnitude observed, in bits.
    pub peak_accumulator_bits: u32,
}

/// The cycle-accurate datapath simulator.
#[derive(Debug, Clone)]
pub struct DatapathSim {
    config: SnnapConfig,
}

impl DatapathSim {
    /// Creates a simulator for the given accelerator configuration.
    pub fn new(config: SnnapConfig) -> Self {
        config.validate();
        Self { config }
    }

    /// Executes one inference cycle by cycle.
    ///
    /// Returns the output activations and the event counters.
    ///
    /// # Panics
    ///
    /// Panics if `input` does not match the network's input width.
    pub fn run(&self, net: &QuantizedMlp, input: &[f32]) -> (Vec<f32>, DatapathStats) {
        assert_eq!(input.len(), net.topology().inputs(), "input width mismatch");
        let p = self.config.num_pes;
        let act_format = net.activation_format();
        let mut stats = DatapathStats::default();

        // input FIFO holds the quantized activations entering the layer
        let mut layer_input: Vec<i64> = input.iter().map(|&x| act_format.quantize(x)).collect();
        let mut layer_output_real: Vec<f32> = Vec::new();

        for layer in net.layers() {
            // --- sequencer dispatch: micro-code setup for this layer ----
            stats.cycles += self.config.layer_setup;

            let acc_frac = layer.weight_format().frac_bits() + act_format.frac_bits();
            let acc_lsb = (2.0f64).powi(-(acc_frac as i32));
            let mut outputs_q: Vec<i64> = Vec::with_capacity(layer.outputs());
            layer_output_real = Vec::with_capacity(layer.outputs());

            // --- neuron passes: p neurons mapped per pass ---------------
            let mut next_neuron = 0usize;
            while next_neuron < layer.outputs() {
                let active = (layer.outputs() - next_neuron).min(p);
                // map neurons onto PEs: preload bias into the accumulator
                let mut pes: Vec<ProcessingElement> = (0..p)
                    .map(|lane| {
                        if lane < active {
                            let neuron = next_neuron + lane;
                            ProcessingElement {
                                weights: (0..layer.inputs())
                                    .map(|i| layer.weight(neuron, i))
                                    .collect(),
                                accumulator: layer.bias(neuron),
                                active: true,
                            }
                        } else {
                            ProcessingElement {
                                weights: Vec::new(),
                                accumulator: 0,
                                active: false,
                            }
                        }
                    })
                    .collect();

                // broadcast phase: one input element per cycle on the bus
                for (t, &x) in layer_input.iter().enumerate() {
                    stats.cycles += 1;
                    stats.bus_broadcasts += 1;
                    for pe in pes.iter_mut().filter(|pe| pe.active) {
                        let w = pe.weights[t];
                        pe.accumulator += w * x;
                        stats.macs += 1;
                        stats.sram_reads += 1;
                        let bits = 64 - pe.accumulator.unsigned_abs().leading_zeros();
                        stats.peak_accumulator_bits = stats.peak_accumulator_bits.max(bits);
                    }
                }

                // drain phase: accumulators stream through the sigmoid
                // unit (the analytical model's per-pass overhead)
                stats.cycles += self.config.pass_overhead;
                for pe in pes.iter().filter(|pe| pe.active) {
                    let z = (pe.accumulator as f64 * acc_lsb) as f32;
                    let a = net.sigmoid().eval(z);
                    stats.sigmoid_lookups += 1;
                    layer_output_real.push(a);
                    outputs_q.push(act_format.quantize(a));
                }
                next_neuron += active;
            }
            layer_input = outputs_q;
        }

        (layer_output_real, stats)
    }

    /// Runs an inference and asserts both correctness contracts: the
    /// outputs match the functional quantized model bit for bit, and the
    /// cycle count matches the analytical schedule.
    ///
    /// Returns the verified stats.
    ///
    /// # Panics
    ///
    /// Panics if either contract is violated.
    pub fn run_verified(&self, net: &QuantizedMlp, input: &[f32]) -> DatapathStats {
        let (outputs, stats) = self.run(net, input);
        let reference = net.forward(input);
        assert_eq!(
            outputs, reference,
            "datapath output diverged from the functional model"
        );
        let schedule = Schedule::build(net.topology(), &self.config);
        assert_eq!(
            stats.cycles,
            schedule.total_cycles(),
            "datapath cycle count diverged from the analytical schedule"
        );
        assert_eq!(stats.macs, schedule.total_macs());
        assert_eq!(stats.sigmoid_lookups, schedule.total_activations());
        stats
    }

    /// The accumulator width the PE register file needs for this network
    /// and activation format (Fig. 3 provisions 26 bits).
    pub fn required_accumulator_bits(net: &QuantizedMlp, probes: &[Vec<f32>]) -> u32 {
        let sim = DatapathSim::new(SnnapConfig::paper_default());
        probes
            .iter()
            .map(|input| sim.run(net, input).1.peak_accumulator_bits)
            .max()
            .unwrap_or(0)
    }

    /// Per-activation sigmoid format used when re-quantizing between
    /// layers.
    pub fn activation_format(net: &QuantizedMlp) -> QFormat {
        net.activation_format()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use incam_nn::mlp::Mlp;
    use incam_nn::sigmoid::Sigmoid;
    use incam_nn::topology::Topology;
    use incam_rng::rngs::StdRng;
    use incam_rng::{Rng, SeedableRng};

    fn quantized_net(topology: Vec<usize>, seed: u64) -> QuantizedMlp {
        let mut rng = StdRng::seed_from_u64(seed);
        let net = Mlp::random(Topology::new(topology), &mut rng);
        QuantizedMlp::from_mlp(&net, 8, Sigmoid::lut256())
    }

    #[test]
    fn bit_and_cycle_exact_on_paper_network() {
        let net = quantized_net(vec![400, 8, 1], 91);
        let sim = DatapathSim::new(SnnapConfig::paper_default());
        let mut rng = StdRng::seed_from_u64(92);
        for _ in 0..5 {
            let input: Vec<f32> = (0..400).map(|_| rng.gen_range(0.0..1.0)).collect();
            let stats = sim.run_verified(&net, &input);
            assert_eq!(stats.cycles, 440);
            assert_eq!(stats.macs, 3208);
            assert_eq!(stats.sigmoid_lookups, 9);
        }
    }

    #[test]
    fn exact_across_geometries_and_topologies() {
        let mut rng = StdRng::seed_from_u64(93);
        for topology in [vec![30, 7, 3], vec![16, 16, 16, 2], vec![5, 1]] {
            let net = quantized_net(topology, rng.gen());
            for pes in [1usize, 3, 8, 32] {
                let sim = DatapathSim::new(SnnapConfig::paper_default().with_pes(pes));
                let input: Vec<f32> = (0..net.topology().inputs())
                    .map(|_| rng.gen_range(0.0..1.0))
                    .collect();
                let _ = sim.run_verified(&net, &input);
            }
        }
    }

    #[test]
    fn bus_broadcasts_count_passes_times_inputs() {
        // 10 neurons on 4 PEs = 3 passes; each pass re-streams the input
        let net = quantized_net(vec![12, 10, 2], 94);
        let sim = DatapathSim::new(SnnapConfig::paper_default().with_pes(4));
        let (_, stats) = sim.run(&net, &[0.5; 12]);
        // layer 1: 3 passes x 12 inputs; layer 2: 1 pass x 10 inputs
        assert_eq!(stats.bus_broadcasts, 3 * 12 + 10);
        // SRAM reads equal MACs (weight-stationary streaming)
        assert_eq!(stats.sram_reads, stats.macs);
    }

    #[test]
    fn accumulator_fits_the_26_bit_register() {
        let net = quantized_net(vec![400, 8, 1], 95);
        let mut rng = StdRng::seed_from_u64(96);
        let probes: Vec<Vec<f32>> = (0..10)
            .map(|_| (0..400).map(|_| rng.gen_range(0.0..1.0)).collect())
            .collect();
        let bits = DatapathSim::required_accumulator_bits(&net, &probes);
        assert!(bits > 0 && bits <= 26, "needs {bits} bits");
    }

    #[test]
    #[should_panic(expected = "input width")]
    fn wrong_input_width_panics() {
        let net = quantized_net(vec![8, 2], 97);
        let sim = DatapathSim::new(SnnapConfig::paper_default());
        let _ = sim.run(&net, &[0.0; 4]);
    }
}
