//! Accelerator configuration: the knobs the paper's §III-A design-space
//! exploration turns.

use incam_core::units::Hertz;

/// Configuration of the SNNAP-style neural processing unit.
///
/// The paper fixes frequency and voltage (30 MHz, 0.9 V) and sweeps the
/// number of processing elements and the datapath width; the sigmoid LUT
/// resolution is a third, cheaper knob.
///
/// # Examples
///
/// ```
/// use incam_snnap::config::SnnapConfig;
///
/// let cfg = SnnapConfig::paper_default();
/// assert_eq!(cfg.num_pes, 8);
/// assert_eq!(cfg.data_bits, 8);
/// assert_eq!(cfg.clock.mhz(), 30.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SnnapConfig {
    /// Number of processing elements in the processing unit.
    pub num_pes: usize,
    /// Datapath width in bits (weights and activations).
    pub data_bits: u32,
    /// Sigmoid LUT entry count.
    pub sigmoid_entries: usize,
    /// Clock frequency.
    pub clock: Hertz,
    /// Supply voltage in volts.
    pub voltage: f64,
    /// Pipeline fill/drain overhead cycles per neuron pass.
    pub pass_overhead: u64,
    /// Micro-coded sequencer setup cycles per layer.
    pub layer_setup: u64,
}

impl SnnapConfig {
    /// The paper's selected design point: 8 PEs, 8-bit datapath, 256-entry
    /// sigmoid LUT, 30 MHz at 0.9 V.
    pub fn paper_default() -> Self {
        Self {
            num_pes: 8,
            data_bits: 8,
            sigmoid_entries: 256,
            clock: Hertz::from_mhz(30.0),
            voltage: 0.9,
            pass_overhead: 8,
            layer_setup: 8,
        }
    }

    /// Returns a copy with a different PE count (geometry sweep).
    #[must_use]
    pub fn with_pes(mut self, num_pes: usize) -> Self {
        self.num_pes = num_pes;
        self
    }

    /// Returns a copy with a different datapath width (precision sweep).
    #[must_use]
    pub fn with_bits(mut self, data_bits: u32) -> Self {
        self.data_bits = data_bits;
        self
    }

    /// Validates the configuration.
    ///
    /// # Panics
    ///
    /// Panics if any field is out of range.
    pub fn validate(&self) {
        assert!(self.num_pes >= 1, "need at least one PE");
        assert!(
            (2..=32).contains(&self.data_bits),
            "data_bits must be in 2..=32"
        );
        assert!(self.sigmoid_entries >= 2, "sigmoid LUT needs >= 2 entries");
        assert!(self.clock.hertz() > 0.0, "clock must be positive");
        assert!(
            (0.4..=1.5).contains(&self.voltage),
            "voltage out of the model's calibrated range"
        );
    }
}

impl Default for SnnapConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_methods() {
        let cfg = SnnapConfig::paper_default().with_pes(16).with_bits(16);
        assert_eq!(cfg.num_pes, 16);
        assert_eq!(cfg.data_bits, 16);
        cfg.validate();
    }

    #[test]
    #[should_panic(expected = "at least one PE")]
    fn zero_pes_invalid() {
        SnnapConfig::paper_default().with_pes(0).validate();
    }

    #[test]
    #[should_panic(expected = "data_bits")]
    fn absurd_bits_invalid() {
        SnnapConfig::paper_default().with_bits(64).validate();
    }
}
