//! Cycle-level schedule of an MLP inference on the systolic processing
//! unit.
//!
//! Neurons of each layer are distributed round-robin over the PEs; each PE
//! evaluates one neuron at a time, consuming one broadcast input per cycle
//! (weight-stationary). A layer with `n_out` neurons on `P` PEs therefore
//! takes `ceil(n_out / P)` *passes* of `n_in + overhead` cycles each. The
//! schedule records how many PE-cycles were spent idle — the quantity
//! behind the paper's "too many PEs results in underutilized resources".

use crate::config::SnnapConfig;
use incam_nn::topology::Topology;

/// Schedule of one layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LayerSchedule {
    /// Layer fan-in.
    pub n_in: u64,
    /// Layer neuron count.
    pub n_out: u64,
    /// Number of neuron passes (`ceil(n_out / P)`).
    pub passes: u64,
    /// Cycles spent in this layer (including per-layer setup).
    pub cycles: u64,
    /// Multiply-accumulate operations executed.
    pub macs: u64,
    /// PE-cycles during which a PE held no work.
    pub idle_pe_cycles: u64,
    /// Sigmoid evaluations.
    pub activations: u64,
}

/// Schedule of a full inference.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schedule {
    /// Per-layer schedules, input-side first.
    pub layers: Vec<LayerSchedule>,
    /// PE count the schedule was built for.
    pub num_pes: u64,
}

impl Schedule {
    /// Builds the schedule of `topology` on the configured PU.
    ///
    /// # Examples
    ///
    /// ```
    /// use incam_nn::topology::Topology;
    /// use incam_snnap::config::SnnapConfig;
    /// use incam_snnap::sched::Schedule;
    ///
    /// let s = Schedule::build(&Topology::paper_default(), &SnnapConfig::paper_default());
    /// // 8 hidden neurons on 8 PEs: a single pass over 400 inputs
    /// assert_eq!(s.layers[0].passes, 1);
    /// assert_eq!(s.total_macs(), 3208);
    /// ```
    pub fn build(topology: &Topology, config: &SnnapConfig) -> Self {
        config.validate();
        let p = config.num_pes as u64;
        let layers = topology
            .layers()
            .windows(2)
            .map(|w| {
                let n_in = w[0] as u64;
                let n_out = w[1] as u64;
                let passes = n_out.div_ceil(p);
                let pass_cycles = n_in + config.pass_overhead;
                let cycles = passes * pass_cycles + config.layer_setup;
                // idle PEs: each pass runs `min(p, remaining)` active PEs
                let mut idle = 0u64;
                let mut remaining = n_out;
                for _ in 0..passes {
                    let active = remaining.min(p);
                    idle += (p - active) * pass_cycles;
                    remaining -= active;
                }
                // setup cycles idle all PEs
                idle += config.layer_setup * p;
                LayerSchedule {
                    n_in,
                    n_out,
                    passes,
                    cycles,
                    macs: n_in * n_out,
                    idle_pe_cycles: idle,
                    activations: n_out,
                }
            })
            .collect();
        Self { layers, num_pes: p }
    }

    /// Total cycles per inference.
    pub fn total_cycles(&self) -> u64 {
        self.layers.iter().map(|l| l.cycles).sum()
    }

    /// Total MACs per inference (independent of geometry).
    pub fn total_macs(&self) -> u64 {
        self.layers.iter().map(|l| l.macs).sum()
    }

    /// Total idle PE-cycles per inference.
    pub fn total_idle_pe_cycles(&self) -> u64 {
        self.layers.iter().map(|l| l.idle_pe_cycles).sum()
    }

    /// Total sigmoid evaluations per inference.
    pub fn total_activations(&self) -> u64 {
        self.layers.iter().map(|l| l.activations).sum()
    }

    /// Fraction of PE-cycles doing useful MACs.
    pub fn utilization(&self) -> f64 {
        let total_pe_cycles = self.total_cycles() * self.num_pes;
        if total_pe_cycles == 0 {
            return 0.0;
        }
        self.total_macs() as f64 / total_pe_cycles as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_schedule(pes: usize) -> Schedule {
        Schedule::build(
            &Topology::paper_default(),
            &SnnapConfig::paper_default().with_pes(pes),
        )
    }

    #[test]
    fn cycles_shrink_with_more_pes_until_saturation() {
        let c1 = paper_schedule(1).total_cycles();
        let c4 = paper_schedule(4).total_cycles();
        let c8 = paper_schedule(8).total_cycles();
        let c16 = paper_schedule(16).total_cycles();
        assert!(c1 > c4 && c4 > c8);
        // 8 hidden neurons: beyond 8 PEs no further speedup
        assert_eq!(c8, c16);
    }

    #[test]
    fn macs_independent_of_geometry() {
        assert_eq!(paper_schedule(1).total_macs(), 3208);
        assert_eq!(paper_schedule(32).total_macs(), 3208);
    }

    #[test]
    fn exact_cycle_count_paper_point() {
        // layer1: 1 pass x (400 + 8) + 8 setup = 416
        // layer2: 1 pass x (8 + 8) + 8 setup = 24
        let s = paper_schedule(8);
        assert_eq!(s.layers[0].cycles, 416);
        assert_eq!(s.layers[1].cycles, 24);
        assert_eq!(s.total_cycles(), 440);
    }

    #[test]
    fn idle_cycles_grow_with_overprovisioning() {
        let i8 = paper_schedule(8).total_idle_pe_cycles();
        let i16 = paper_schedule(16).total_idle_pe_cycles();
        let i32 = paper_schedule(32).total_idle_pe_cycles();
        assert!(i16 > i8);
        assert!(i32 > i16);
    }

    #[test]
    fn utilization_peaks_near_matched_geometry() {
        let u4 = paper_schedule(4).utilization();
        let u8 = paper_schedule(8).utilization();
        let u16 = paper_schedule(16).utilization();
        assert!(u8 > u16, "u8 {u8} u16 {u16}");
        // 4 PEs needs two passes but keeps PEs busy: similar utilization
        assert!((u4 - u8).abs() < 0.1);
    }

    #[test]
    fn multi_layer_topologies_schedule() {
        let t = Topology::new(vec![100, 30, 30, 2]);
        let s = Schedule::build(&t, &SnnapConfig::paper_default());
        assert_eq!(s.layers.len(), 3);
        assert_eq!(s.total_activations(), 62);
        assert_eq!(s.total_macs(), 3000 + 900 + 60);
    }
}
