//! The full accelerator simulator: functional fixed-point execution plus
//! schedule-derived timing and energy.
//!
//! [`SnnapAccelerator`] is what the WISPCam platform model instantiates as
//! its face-authentication core block: it carries a quantized network (the
//! *functional* model, bit-accurate to the PE datapath), and every
//! inference is costed with the cycle schedule and energy model.

use crate::config::SnnapConfig;
use crate::energy::{evaluate, EnergyModel, InferenceEnergy};
use crate::sched::Schedule;
use incam_core::units::{Fps, Joules, Seconds};
use incam_nn::mlp::Mlp;
use incam_nn::quant::QuantizedMlp;
use incam_nn::sigmoid::Sigmoid;
use incam_nn::topology::Topology;

/// A configured accelerator loaded with a quantized network.
#[derive(Debug, Clone)]
pub struct SnnapAccelerator {
    config: SnnapConfig,
    model: EnergyModel,
    qnet: QuantizedMlp,
    schedule: Schedule,
    energy: InferenceEnergy,
}

impl SnnapAccelerator {
    /// Quantizes `net` for the configured datapath and precomputes the
    /// inference schedule and energy.
    ///
    /// # Examples
    ///
    /// ```
    /// use incam_nn::mlp::Mlp;
    /// use incam_nn::topology::Topology;
    /// use incam_snnap::config::SnnapConfig;
    /// use incam_snnap::sim::SnnapAccelerator;
    /// use incam_rng::SeedableRng;
    ///
    /// let mut rng = incam_rng::rngs::StdRng::seed_from_u64(1);
    /// let net = Mlp::random(Topology::new(vec![16, 4, 1]), &mut rng);
    /// let acc = SnnapAccelerator::new(&net, SnnapConfig::paper_default());
    /// let (score, cost) = acc.infer(&[0.5; 16]);
    /// assert!((0.0..=1.0).contains(&score));
    /// assert!(cost.joules() > 0.0);
    /// ```
    pub fn new(net: &Mlp, config: SnnapConfig) -> Self {
        config.validate();
        let sigmoid = Sigmoid::lut(config.sigmoid_entries);
        let qnet = QuantizedMlp::from_mlp(net, config.data_bits, sigmoid);
        let schedule = Schedule::build(net.topology(), &config);
        let energy = evaluate(&schedule, &config, &EnergyModel::default());
        Self {
            config,
            model: EnergyModel::default(),
            qnet,
            schedule,
            energy,
        }
    }

    /// Replaces the energy model (for calibration studies).
    #[must_use]
    pub fn with_energy_model(mut self, model: EnergyModel) -> Self {
        self.energy = evaluate(&self.schedule, &self.config, &model);
        self.model = model;
        self
    }

    /// The accelerator configuration.
    pub fn config(&self) -> &SnnapConfig {
        &self.config
    }

    /// The loaded quantized network.
    pub fn network(&self) -> &QuantizedMlp {
        &self.qnet
    }

    /// The network topology.
    pub fn topology(&self) -> &Topology {
        self.qnet.topology()
    }

    /// The precomputed inference schedule.
    pub fn schedule(&self) -> &Schedule {
        &self.schedule
    }

    /// Itemized per-inference energy.
    pub fn inference_energy(&self) -> InferenceEnergy {
        self.energy
    }

    /// Per-inference energy total.
    pub fn energy_per_inference(&self) -> Joules {
        self.energy.total()
    }

    /// Per-inference latency.
    pub fn latency(&self) -> Seconds {
        self.energy.latency
    }

    /// Peak inference throughput (back-to-back inferences).
    pub fn throughput(&self) -> Fps {
        Fps::from_period(self.latency())
    }

    /// Runs one inference, returning the first output and its energy cost.
    ///
    /// # Panics
    ///
    /// Panics if `input` does not match the topology's input width.
    pub fn infer(&self, input: &[f32]) -> (f32, Joules) {
        let out = self.qnet.forward(input);
        (out[0], self.energy.total())
    }

    /// Runs one inference returning all outputs.
    pub fn infer_all(&self, input: &[f32]) -> (Vec<f32>, Joules) {
        (self.qnet.forward(input), self.energy.total())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use incam_rng::rngs::StdRng;
    use incam_rng::SeedableRng;

    fn accelerator(pes: usize, bits: u32) -> SnnapAccelerator {
        let mut rng = StdRng::seed_from_u64(5);
        let net = Mlp::random(Topology::paper_default(), &mut rng);
        SnnapAccelerator::new(
            &net,
            SnnapConfig::paper_default().with_pes(pes).with_bits(bits),
        )
    }

    #[test]
    fn functional_output_close_to_float_reference() {
        let mut rng = StdRng::seed_from_u64(5);
        let net = Mlp::random(Topology::paper_default(), &mut rng);
        let acc = SnnapAccelerator::new(&net, SnnapConfig::paper_default());
        let input = vec![0.5f32; 400];
        let (hw, _) = acc.infer(&input);
        let sw = net.forward(&input, &Sigmoid::Exact)[0];
        assert!((hw - sw).abs() < 0.05, "hw {hw} sw {sw}");
    }

    #[test]
    fn throughput_exceeds_camera_frame_rate() {
        // WISPCam captures at 1 FPS; the accelerator is orders faster
        let acc = accelerator(8, 8);
        assert!(acc.throughput().fps() > 10_000.0);
    }

    #[test]
    fn energy_consistent_between_infer_and_accessor() {
        let acc = accelerator(8, 8);
        let (_, e) = acc.infer(&[0.1; 400]);
        assert_eq!(e, acc.energy_per_inference());
    }

    #[test]
    fn geometry_changes_latency_not_function() {
        let acc1 = accelerator(1, 8);
        let acc8 = accelerator(8, 8);
        let input = vec![0.3f32; 400];
        let (o1, _) = acc1.infer(&input);
        let (o8, _) = acc8.infer(&input);
        assert_eq!(o1, o8, "geometry must not change results");
        assert!(acc1.latency() > acc8.latency());
    }

    #[test]
    fn bits_change_function_slightly() {
        let acc16 = accelerator(8, 16);
        let acc4 = accelerator(8, 4);
        let input = vec![0.7f32; 400];
        let (o16, _) = acc16.infer(&input);
        let (o4, _) = acc4.infer(&input);
        // different precision: outputs differ but stay in range
        assert!((0.0..=1.0).contains(&o16));
        assert!((0.0..=1.0).contains(&o4));
    }
}
