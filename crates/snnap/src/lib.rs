//! # incam-snnap — SNNAP-style systolic NN accelerator simulator
//!
//! A cycle-level schedule and energy model of the paper's low-power neural
//! processing unit (Fig. 3): a single processing unit with a configurable
//! number of 8-bit processing elements, per-PE weight SRAM, a shared
//! LUT-based sigmoid unit, and a vertically micro-coded sequencer, fixed
//! at 30 MHz / 0.9 V.
//!
//! The three §III-A design studies map to:
//! * geometry (energy-optimal 8 PEs) — [`sweep::geometry_sweep`],
//! * datapath width (16→8 bits ≈ 41 % power reduction) —
//!   [`sweep::bitwidth_sweep`],
//! * topology cost (input window 5×5…20×20) — [`sweep::topology_sweep`].
//!
//! Functional behaviour is bit-accurate via [`incam_nn::quant::QuantizedMlp`];
//! see [`sim::SnnapAccelerator`].
//!
//! # Examples
//!
//! ```
//! use incam_nn::topology::Topology;
//! use incam_snnap::config::SnnapConfig;
//! use incam_snnap::sweep::{geometry_sweep, optimal_geometry};
//!
//! let rows = geometry_sweep(&Topology::paper_default(),
//!                           &SnnapConfig::paper_default(), &[2, 4, 8, 16]);
//! assert_eq!(optimal_geometry(&rows), 8);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod datapath;
pub mod energy;
pub mod sched;
pub mod sim;
pub mod sweep;

pub use config::SnnapConfig;
pub use datapath::{DatapathSim, DatapathStats};
pub use energy::{evaluate, EnergyModel, InferenceEnergy};
pub use sched::Schedule;
pub use sim::SnnapAccelerator;
