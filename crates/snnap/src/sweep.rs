//! Design-space sweeps: the §III-A studies as reusable functions.
//!
//! Each sweep returns plain rows so the reproduction harness and the
//! Criterion benches can render them as the paper's tables.

use crate::config::SnnapConfig;
use crate::energy::{evaluate, EnergyModel};
use crate::sched::Schedule;
use incam_core::units::{Fps, Joules, Seconds, Watts};
use incam_nn::topology::Topology;

/// One row of the PE-geometry sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GeometryRow {
    /// PE count.
    pub num_pes: usize,
    /// Cycles per inference.
    pub cycles: u64,
    /// Inference latency.
    pub latency: Seconds,
    /// Peak inference throughput.
    pub throughput: Fps,
    /// Energy per inference.
    pub energy: Joules,
    /// Average power while inferring.
    pub power: Watts,
    /// PE utilization (useful MACs / PE-cycles).
    pub utilization: f64,
}

/// Sweeps the PE count for a fixed topology and datapath width.
///
/// # Examples
///
/// ```
/// use incam_nn::topology::Topology;
/// use incam_snnap::config::SnnapConfig;
/// use incam_snnap::sweep::{geometry_sweep, optimal_geometry};
///
/// let rows = geometry_sweep(&Topology::paper_default(),
///                           &SnnapConfig::paper_default(),
///                           &[1, 2, 4, 8, 16, 32]);
/// // the paper finds the energy optimum at 8 PEs
/// assert_eq!(optimal_geometry(&rows), 8);
/// ```
pub fn geometry_sweep(
    topology: &Topology,
    base: &SnnapConfig,
    pe_counts: &[usize],
) -> Vec<GeometryRow> {
    let model = EnergyModel::default();
    pe_counts
        .iter()
        .map(|&p| {
            let cfg = base.clone().with_pes(p);
            let sched = Schedule::build(topology, &cfg);
            let e = evaluate(&sched, &cfg, &model);
            GeometryRow {
                num_pes: p,
                cycles: sched.total_cycles(),
                latency: e.latency,
                throughput: Fps::from_period(e.latency),
                energy: e.total(),
                power: e.average_power(),
                utilization: sched.utilization(),
            }
        })
        .collect()
}

/// The PE count with minimum energy per inference.
///
/// # Panics
///
/// Panics if `rows` is empty.
pub fn optimal_geometry(rows: &[GeometryRow]) -> usize {
    rows.iter()
        .min_by(|a, b| a.energy.joules().total_cmp(&b.energy.joules()))
        .expect("sweep must be non-empty") // incam-lint: allow(fallible-unwrap) — sweep grids are validated non-empty
        .num_pes
}

/// One row of the datapath-width sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BitwidthRow {
    /// Datapath width in bits.
    pub data_bits: u32,
    /// Energy per inference.
    pub energy: Joules,
    /// Average power while inferring.
    pub power: Watts,
    /// Power relative to the 16-bit configuration.
    pub power_vs_16bit: f64,
}

/// Sweeps the datapath width for a fixed topology and geometry.
///
/// # Examples
///
/// ```
/// use incam_nn::topology::Topology;
/// use incam_snnap::config::SnnapConfig;
/// use incam_snnap::sweep::bitwidth_sweep;
///
/// let rows = bitwidth_sweep(&Topology::paper_default(),
///                           &SnnapConfig::paper_default(), &[16, 8, 4]);
/// let row8 = rows.iter().find(|r| r.data_bits == 8).unwrap();
/// // paper: 16-bit -> 8-bit gives ~41% power reduction
/// assert!((1.0 - row8.power_vs_16bit) > 0.35);
/// ```
pub fn bitwidth_sweep(
    topology: &Topology,
    base: &SnnapConfig,
    bit_widths: &[u32],
) -> Vec<BitwidthRow> {
    let model = EnergyModel::default();
    let eval_bits = |bits: u32| {
        let cfg = base.clone().with_bits(bits);
        let sched = Schedule::build(topology, &cfg);
        evaluate(&sched, &cfg, &model)
    };
    let p16 = eval_bits(16).average_power();
    bit_widths
        .iter()
        .map(|&bits| {
            let e = eval_bits(bits);
            BitwidthRow {
                data_bits: bits,
                energy: e.total(),
                power: e.average_power(),
                power_vs_16bit: e.average_power().watts() / p16.watts(),
            }
        })
        .collect()
}

/// One row of the topology sweep: energy cost of a candidate network.
#[derive(Debug, Clone, PartialEq)]
pub struct TopologyRow {
    /// The candidate topology.
    pub topology: Topology,
    /// MACs per inference.
    pub macs: u64,
    /// Energy per inference on the base configuration.
    pub energy: Joules,
    /// Inference latency.
    pub latency: Seconds,
}

/// Costs each candidate topology on the same accelerator configuration
/// (accuracy is measured separately by training each candidate — see the
/// `nn-topology` experiment in the bench crate).
pub fn topology_sweep(candidates: &[Topology], base: &SnnapConfig) -> Vec<TopologyRow> {
    let model = EnergyModel::default();
    candidates
        .iter()
        .map(|t| {
            let sched = Schedule::build(t, base);
            let e = evaluate(&sched, base, &model);
            TopologyRow {
                topology: t.clone(),
                macs: sched.total_macs(),
                energy: e.total(),
                latency: e.latency,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry_sweep_shapes() {
        let rows = geometry_sweep(
            &Topology::paper_default(),
            &SnnapConfig::paper_default(),
            &[1, 2, 4, 8, 16, 32],
        );
        assert_eq!(rows.len(), 6);
        // throughput is monotone nondecreasing in PEs
        for w in rows.windows(2) {
            assert!(w[1].throughput.fps() >= w[0].throughput.fps() - 1e-9);
        }
        assert_eq!(optimal_geometry(&rows), 8);
    }

    #[test]
    fn bitwidth_rows_ordered_by_power() {
        let rows = bitwidth_sweep(
            &Topology::paper_default(),
            &SnnapConfig::paper_default(),
            &[16, 8, 4],
        );
        assert!(rows[0].power > rows[1].power);
        assert!(rows[1].power > rows[2].power);
        assert!((rows[0].power_vs_16bit - 1.0).abs() < 1e-9);
    }

    #[test]
    fn larger_input_windows_cost_more_energy() {
        // the §III-A input-size study: 5x5 -> 20x20 inputs
        let candidates: Vec<Topology> = [5usize, 10, 15, 20]
            .iter()
            .map(|&s| Topology::new(vec![s * s, 8, 1]))
            .collect();
        let rows = topology_sweep(&candidates, &SnnapConfig::paper_default());
        for w in rows.windows(2) {
            assert!(w[1].energy > w[0].energy);
        }
        // 20x20 vs 5x5: an order of magnitude more MACs
        assert!(rows[3].macs as f64 / rows[0].macs as f64 > 10.0);
    }
}
