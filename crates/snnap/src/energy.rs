//! Per-operation energy model of the accelerator, calibrated to the
//! paper's §III-A results.
//!
//! The paper's numbers come from post-synthesis physical simulation at
//! TSMC 28 nm, 0.9 V, 30 MHz — hardware we cannot run. The substitution
//! (see `DESIGN.md`) is a per-op energy model: an inference's energy is
//!
//! ```text
//! E = macs·(e_mac + e_sram)           // datapath + weight fetch
//!   + idle_pe_cycles·e_idle           // clocked-but-idle PEs
//!   + cycles·e_ctrl                   // sequencer, bus, clock root
//!   + activations·e_sig               // sigmoid LUT lookups
//!   + t·P_leak(pes)                   // leakage
//! ```
//!
//! with bit-width scaling exponents chosen so the model reproduces the
//! paper's observed behaviours: ≈41 % power reduction going from a 16-bit
//! to an 8-bit datapath at 8 PEs, an energy-optimal geometry at 8 PEs for
//! the 400-8-1 network, and sub-mW total power at the selected design
//! point. Voltage enters quadratically for dynamic terms (`CV²f`) and
//! linearly for leakage.

use crate::config::SnnapConfig;
use crate::sched::Schedule;
use incam_core::units::{Joules, Seconds, Watts};

/// Calibrated per-operation energy constants (at 8-bit, 0.9 V).
#[derive(Debug, Clone, PartialEq)]
pub struct EnergyModel {
    /// Energy of one 8-bit multiply-accumulate, in picojoules.
    pub mac_pj_8bit: f64,
    /// Energy of one 8-bit weight-SRAM read, in picojoules.
    pub sram_pj_8bit: f64,
    /// Energy of one clocked-but-idle PE cycle, in picojoules.
    pub idle_pj: f64,
    /// Sequencer/bus/clock-root energy per cycle, in picojoules.
    pub ctrl_pj: f64,
    /// Energy per sigmoid LUT lookup, in picojoules.
    pub sigmoid_pj: f64,
    /// Leakage power per PE at 8-bit, in microwatts.
    pub leak_per_pe_uw: f64,
    /// Geometry-independent leakage, in microwatts.
    pub leak_base_uw: f64,
    /// Bit-width exponent of the MAC energy (multiplier dominated).
    pub mac_bit_exp: f64,
    /// Bit-width exponent of the SRAM read energy (word width).
    pub sram_bit_exp: f64,
    /// Bit-width exponent of per-PE leakage (datapath area).
    pub leak_bit_exp: f64,
    /// Reference voltage the constants are calibrated at.
    pub v_ref: f64,
}

impl Default for EnergyModel {
    fn default() -> Self {
        Self {
            mac_pj_8bit: 0.30,
            sram_pj_8bit: 0.40,
            idle_pj: 0.10,
            ctrl_pj: 3.0,
            sigmoid_pj: 2.0,
            leak_per_pe_uw: 6.0,
            leak_base_uw: 20.0,
            mac_bit_exp: 1.5,
            sram_bit_exp: 1.0,
            leak_bit_exp: 0.5,
            v_ref: 0.9,
        }
    }
}

impl EnergyModel {
    fn bit_scale(bits: u32, exp: f64) -> f64 {
        (bits as f64 / 8.0).powf(exp)
    }

    fn dynamic_v_scale(&self, voltage: f64) -> f64 {
        (voltage / self.v_ref).powi(2)
    }

    fn leak_v_scale(&self, voltage: f64) -> f64 {
        voltage / self.v_ref
    }

    /// MAC energy at the given datapath width and voltage.
    pub fn mac_energy(&self, bits: u32, voltage: f64) -> Joules {
        Joules::from_pico(
            self.mac_pj_8bit
                * Self::bit_scale(bits, self.mac_bit_exp)
                * self.dynamic_v_scale(voltage),
        )
    }

    /// Weight-SRAM read energy.
    pub fn sram_energy(&self, bits: u32, voltage: f64) -> Joules {
        Joules::from_pico(
            self.sram_pj_8bit
                * Self::bit_scale(bits, self.sram_bit_exp)
                * self.dynamic_v_scale(voltage),
        )
    }

    /// Idle-PE cycle energy.
    pub fn idle_energy(&self, voltage: f64) -> Joules {
        Joules::from_pico(self.idle_pj * self.dynamic_v_scale(voltage))
    }

    /// Control (sequencer/bus/clock) energy per cycle.
    pub fn ctrl_energy(&self, voltage: f64) -> Joules {
        Joules::from_pico(self.ctrl_pj * self.dynamic_v_scale(voltage))
    }

    /// Sigmoid LUT lookup energy.
    pub fn sigmoid_energy(&self, voltage: f64) -> Joules {
        Joules::from_pico(self.sigmoid_pj * self.dynamic_v_scale(voltage))
    }

    /// Total leakage power of the PU.
    pub fn leakage_power(&self, num_pes: usize, bits: u32, voltage: f64) -> Watts {
        let per_pe =
            self.leak_per_pe_uw * Self::bit_scale(bits, self.leak_bit_exp) * num_pes as f64;
        Watts::from_micro((per_pe + self.leak_base_uw) * self.leak_v_scale(voltage))
    }
}

/// Itemized energy of one inference.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InferenceEnergy {
    /// Datapath MAC energy.
    pub mac: Joules,
    /// Weight-memory read energy.
    pub sram: Joules,
    /// Idle-PE clocking energy.
    pub idle: Joules,
    /// Sequencer/bus/clock energy.
    pub ctrl: Joules,
    /// Sigmoid unit energy.
    pub sigmoid: Joules,
    /// Leakage over the inference's duration.
    pub leakage: Joules,
    /// Inference latency.
    pub latency: Seconds,
}

impl InferenceEnergy {
    /// Total energy per inference.
    pub fn total(&self) -> Joules {
        self.mac + self.sram + self.idle + self.ctrl + self.sigmoid + self.leakage
    }

    /// Average power while an inference is running.
    pub fn average_power(&self) -> Watts {
        self.total() / self.latency
    }
}

/// Evaluates the energy of a scheduled inference under `config`.
///
/// # Examples
///
/// ```
/// use incam_nn::topology::Topology;
/// use incam_snnap::config::SnnapConfig;
/// use incam_snnap::energy::{evaluate, EnergyModel};
/// use incam_snnap::sched::Schedule;
///
/// let cfg = SnnapConfig::paper_default();
/// let sched = Schedule::build(&Topology::paper_default(), &cfg);
/// let e = evaluate(&sched, &cfg, &EnergyModel::default());
/// // the paper's design point runs in the sub-mW regime
/// assert!(e.average_power().milliwatts() < 1.0);
/// ```
pub fn evaluate(schedule: &Schedule, config: &SnnapConfig, model: &EnergyModel) -> InferenceEnergy {
    config.validate();
    let macs = schedule.total_macs() as f64;
    let cycles = schedule.total_cycles() as f64;
    let idle = schedule.total_idle_pe_cycles() as f64;
    let acts = schedule.total_activations() as f64;
    let latency = Seconds::new(cycles / config.clock.hertz());
    let v = config.voltage;
    InferenceEnergy {
        mac: model.mac_energy(config.data_bits, v) * macs,
        sram: model.sram_energy(config.data_bits, v) * macs,
        idle: model.idle_energy(v) * idle,
        ctrl: model.ctrl_energy(v) * cycles,
        sigmoid: model.sigmoid_energy(v) * acts,
        leakage: model.leakage_power(config.num_pes, config.data_bits, v) * latency,
        latency,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use incam_nn::topology::Topology;

    fn paper_energy(pes: usize, bits: u32) -> InferenceEnergy {
        let cfg = SnnapConfig::paper_default().with_pes(pes).with_bits(bits);
        let sched = Schedule::build(&Topology::paper_default(), &cfg);
        evaluate(&sched, &cfg, &EnergyModel::default())
    }

    #[test]
    fn paper_point_is_sub_milliwatt() {
        let e = paper_energy(8, 8);
        let p = e.average_power();
        assert!(
            p.milliwatts() < 1.0 && p.microwatts() > 50.0,
            "power {}",
            p.human()
        );
    }

    #[test]
    fn sixteen_to_eight_bits_cuts_power_about_41_percent() {
        let e8 = paper_energy(8, 8);
        let e16 = paper_energy(8, 16);
        // same cycle count, so power ratio == energy ratio
        let reduction = 1.0 - e8.total() / e16.total();
        assert!(
            (0.35..0.48).contains(&reduction),
            "power reduction {reduction}"
        );
    }

    #[test]
    fn energy_is_u_shaped_in_pe_count_with_min_at_8() {
        let sweep: Vec<f64> = [1usize, 2, 4, 8, 16, 32]
            .iter()
            .map(|&p| paper_energy(p, 8).total().joules())
            .collect();
        let min_idx = sweep
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.total_cmp(b.1))
            .unwrap()
            .0;
        assert_eq!(min_idx, 3, "sweep {sweep:?}"); // 8 PEs
        assert!(sweep[0] > sweep[3] * 1.5, "1 PE should be clearly worse");
        assert!(sweep[5] > sweep[3], "32 PEs should be worse than 8");
    }

    #[test]
    fn four_bit_datapath_cheaper_than_eight() {
        let e4 = paper_energy(8, 4);
        let e8 = paper_energy(8, 8);
        assert!(e4.total() < e8.total());
    }

    #[test]
    fn voltage_scaling_quadratic_for_dynamic_terms() {
        let m = EnergyModel::default();
        let lo = m.mac_energy(8, 0.45);
        let hi = m.mac_energy(8, 0.9);
        assert!((hi.joules() / lo.joules() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn breakdown_sums_to_total() {
        let e = paper_energy(8, 8);
        let sum = e.mac + e.sram + e.idle + e.ctrl + e.sigmoid + e.leakage;
        assert!((sum.joules() - e.total().joules()).abs() < 1e-18);
    }

    #[test]
    fn latency_matches_cycle_count() {
        let e = paper_energy(8, 8);
        // 440 cycles at 30 MHz
        assert!((e.latency.micros() - 440.0 / 30.0).abs() < 1e-6);
    }
}
