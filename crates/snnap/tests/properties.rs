//! Property-based tests of the accelerator schedule and energy model.

use incam_core::units::Watts;
use incam_nn::topology::Topology;
use incam_rng::prelude::*;
use incam_snnap::config::SnnapConfig;
use incam_snnap::energy::{evaluate, EnergyModel};
use incam_snnap::sched::Schedule;

fn arbitrary_topology() -> impl Strategy<Value = Topology> {
    prop::collection::vec(1usize..64, 2..5).prop_map(Topology::new)
}

proptest! {
    /// MAC count is invariant under geometry; cycles are antitone in PEs;
    /// PE-cycles (cycles × P) are monotone in PEs (parallelism never
    /// reduces total occupancy).
    #[test]
    fn schedule_geometry_axioms(topology in arbitrary_topology(), pes in 1usize..64) {
        let base = SnnapConfig::paper_default();
        let s1 = Schedule::build(&topology, &base.clone().with_pes(pes));
        let s2 = Schedule::build(&topology, &base.clone().with_pes(pes * 2));
        prop_assert_eq!(s1.total_macs(), s2.total_macs());
        prop_assert_eq!(s1.total_macs(), topology.macs_per_inference() as u64);
        prop_assert!(s2.total_cycles() <= s1.total_cycles());
        prop_assert!(
            s2.total_cycles() * (2 * pes as u64) >= s1.total_cycles() * pes as u64
        );
        // work conservation: busy + idle PE-cycles == cycles × P
        for s in [&s1, &s2] {
            let busy: u64 = s.total_macs();
            let occupancy = s.total_cycles() * s.num_pes;
            prop_assert!(busy + s.total_idle_pe_cycles() <= occupancy);
        }
        prop_assert!(s1.utilization() <= 1.0 + 1e-12);
    }

    /// Activations equal the non-input neuron count.
    #[test]
    fn activations_match_topology(topology in arbitrary_topology()) {
        let s = Schedule::build(&topology, &SnnapConfig::paper_default());
        prop_assert_eq!(
            s.total_activations(),
            topology.activations_per_inference() as u64
        );
    }

    /// Energy is monotone in datapath width at fixed geometry, and power
    /// stays strictly positive and finite.
    #[test]
    fn energy_monotone_in_bits(topology in arbitrary_topology(), pes in 1usize..32) {
        let model = EnergyModel::default();
        let eval_at = |bits: u32| {
            let cfg = SnnapConfig::paper_default().with_pes(pes).with_bits(bits);
            let sched = Schedule::build(&topology, &cfg);
            evaluate(&sched, &cfg, &model)
        };
        let e4 = eval_at(4);
        let e8 = eval_at(8);
        let e16 = eval_at(16);
        prop_assert!(e4.total().joules() <= e8.total().joules());
        prop_assert!(e8.total().joules() <= e16.total().joules());
        for e in [e4, e8, e16] {
            let p = e.average_power();
            prop_assert!(p > Watts::ZERO && p.watts().is_finite());
            // breakdown consistency
            let sum = e.mac + e.sram + e.idle + e.ctrl + e.sigmoid + e.leakage;
            prop_assert!((sum.joules() - e.total().joules()).abs() < 1e-18);
        }
    }

    /// Dynamic terms scale quadratically with voltage.
    #[test]
    fn voltage_scaling(v in 0.45f64..1.4) {
        let m = EnergyModel::default();
        let base = m.mac_energy(8, 0.9).joules();
        let scaled = m.mac_energy(8, v).joules();
        let expected = base * (v / 0.9).powi(2);
        prop_assert!((scaled - expected).abs() < expected * 1e-9);
    }

    /// Leakage grows with PE count and never goes negative.
    #[test]
    fn leakage_monotone_in_pes(pes in 1usize..128, bits in 2u32..32) {
        let m = EnergyModel::default();
        let small = m.leakage_power(pes, bits, 0.9);
        let large = m.leakage_power(pes + 1, bits, 0.9);
        prop_assert!(large.watts() > small.watts());
        prop_assert!(small.watts() > 0.0);
    }
}
