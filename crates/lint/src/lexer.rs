//! A minimal, total Rust lexer.
//!
//! Partitions input into coarse tokens — comments, string-like literals,
//! identifiers, numbers, punctuation, whitespace — with 1-based
//! line/column positions. Totality is the design constraint: the lexer
//! must never panic and must cover every byte of any input (unterminated
//! literals, stray quotes, invalid syntax included), because it runs over
//! unvetted fixture files and, via the fuzz property in
//! `tests/lexer_prop.rs`, over random byte soup.
//!
//! The token classes are deliberately coarse. Rules only need to know
//! three things about a source position: is it a comment (pragmas live
//! there, code patterns must not match there), is it a string-like
//! literal (rule names quoted in messages must not match), or is it code
//! (identifier/punctuation sequences the rules search for).

/// Coarse lexical class of a token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// A run of whitespace.
    Whitespace,
    /// `// ...` to end of line, doc comments (`///`, `//!`) included.
    LineComment,
    /// `/* ... */`, nested, possibly unterminated at EOF.
    BlockComment,
    /// Any string-like literal: `"…"`, `r#"…"#`, `b"…"`, `c"…"`, `'x'`.
    Str,
    /// An identifier or keyword, including raw identifiers (`r#match`).
    Ident,
    /// A lifetime such as `'a`.
    Lifetime,
    /// A numeric literal (integer or float, any base, with suffix).
    Number,
    /// A single punctuation character.
    Punct,
}

/// One token: a half-open byte span of the source plus the 1-based
/// line/column of its first character (columns count `char`s).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Token {
    /// Lexical class.
    pub kind: TokenKind,
    /// Byte offset of the first character.
    pub start: usize,
    /// Byte offset one past the last character.
    pub end: usize,
    /// 1-based line of the first character.
    pub line: u32,
    /// 1-based column (in characters) of the first character.
    pub col: u32,
}

impl Token {
    /// The token's text within `src` (the source it was lexed from).
    pub fn text<'s>(&self, src: &'s str) -> &'s str {
        &src[self.start..self.end]
    }
}

struct Cursor<'s> {
    src: &'s str,
    pos: usize,
    line: u32,
    col: u32,
}

impl Cursor<'_> {
    fn rest(&self) -> &str {
        &self.src[self.pos..]
    }

    fn peek(&self) -> Option<char> {
        self.rest().chars().next()
    }

    fn peek_at(&self, n: usize) -> Option<char> {
        self.rest().chars().nth(n)
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += c.len_utf8();
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn eat_while(&mut self, f: impl Fn(char) -> bool) {
        while matches!(self.peek(), Some(c) if f(c)) {
            self.bump();
        }
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Lexes `src` into a token stream that exactly partitions it: token
/// spans are adjacent, start at byte 0, and end at `src.len()`. Never
/// panics, for any input.
pub fn lex(src: &str) -> Vec<Token> {
    let mut cur = Cursor {
        src,
        pos: 0,
        line: 1,
        col: 1,
    };
    let mut tokens = Vec::new();
    while let Some(c) = cur.peek() {
        let (start, line, col) = (cur.pos, cur.line, cur.col);
        let kind = if c == '/' && cur.peek_at(1) == Some('/') {
            cur.bump();
            cur.bump();
            cur.eat_while(|c| c != '\n');
            TokenKind::LineComment
        } else if c == '/' && cur.peek_at(1) == Some('*') {
            eat_block_comment(&mut cur);
            TokenKind::BlockComment
        } else if c == '"' {
            eat_string(&mut cur);
            TokenKind::Str
        } else if c == '\'' {
            char_or_lifetime(&mut cur)
        } else if is_ident_start(c) {
            ident_or_prefixed_literal(&mut cur)
        } else if c.is_ascii_digit() {
            eat_number(&mut cur);
            TokenKind::Number
        } else if c.is_whitespace() {
            cur.eat_while(char::is_whitespace);
            TokenKind::Whitespace
        } else {
            cur.bump();
            TokenKind::Punct
        };
        debug_assert!(cur.pos > start, "lexer must always make progress");
        tokens.push(Token {
            kind,
            start,
            end: cur.pos,
            line,
            col,
        });
    }
    tokens
}

/// `/* ... */` with nesting; an unterminated comment runs to EOF.
fn eat_block_comment(cur: &mut Cursor) {
    cur.bump();
    cur.bump();
    let mut depth = 1u32;
    loop {
        if cur.peek() == Some('*') && cur.peek_at(1) == Some('/') {
            cur.bump();
            cur.bump();
            depth -= 1;
            if depth == 0 {
                return;
            }
        } else if cur.peek() == Some('/') && cur.peek_at(1) == Some('*') {
            cur.bump();
            cur.bump();
            depth += 1;
        } else if cur.bump().is_none() {
            return;
        }
    }
}

/// `"..."` with backslash escapes; unterminated runs to EOF.
fn eat_string(cur: &mut Cursor) {
    cur.bump();
    while let Some(c) = cur.bump() {
        match c {
            '\\' => {
                cur.bump();
            }
            '"' => return,
            _ => {}
        }
    }
}

/// `r"..."` / `r#"..."#` with `hashes` closing hashes required;
/// unterminated runs to EOF. The cursor sits on the opening quote.
fn eat_raw_string(cur: &mut Cursor, hashes: usize) {
    cur.bump();
    while let Some(c) = cur.bump() {
        if c == '"' {
            let mut n = 0;
            while n < hashes && cur.peek() == Some('#') {
                cur.bump();
                n += 1;
            }
            if n == hashes {
                return;
            }
        }
    }
}

/// Disambiguates `'a'` (char literal) from `'a` (lifetime) from `'\n'`
/// (escaped char literal). The cursor sits on the opening quote.
fn char_or_lifetime(cur: &mut Cursor) -> TokenKind {
    cur.bump();
    match cur.peek() {
        Some('\\') => {
            // Escaped char literal; escapes like '\u{1F600}' span several
            // characters, so consume to the closing quote (or EOF).
            cur.bump();
            cur.bump();
            while let Some(c) = cur.bump() {
                if c == '\'' {
                    break;
                }
            }
            TokenKind::Str
        }
        Some(c) if is_ident_continue(c) => {
            if cur.peek_at(1) == Some('\'') {
                cur.bump();
                cur.bump();
                TokenKind::Str
            } else {
                cur.eat_while(is_ident_continue);
                TokenKind::Lifetime
            }
        }
        Some(_) => {
            // 'x' for non-identifier x, e.g. '(' — or a stray quote.
            cur.bump();
            if cur.peek() == Some('\'') {
                cur.bump();
            }
            TokenKind::Str
        }
        None => TokenKind::Str,
    }
}

/// An identifier, unless it is one of the literal prefixes (`r`, `b`,
/// `br`, `c`, `cr`) immediately followed by a (raw) string — or `r#`
/// introducing a raw identifier.
fn ident_or_prefixed_literal(cur: &mut Cursor) -> TokenKind {
    let start = cur.pos;
    cur.eat_while(is_ident_continue);
    let ident = &cur.src[start..cur.pos];
    let raw_capable = matches!(ident, "r" | "br" | "cr");
    let str_capable = matches!(ident, "b" | "c" | "br" | "cr");
    match cur.peek() {
        Some('"') if raw_capable || str_capable => {
            if raw_capable {
                eat_raw_string(cur, 0);
            } else {
                eat_string(cur);
            }
            TokenKind::Str
        }
        Some('\'') if ident == "b" => char_or_lifetime(cur),
        Some('#') if raw_capable => {
            let mut hashes = 0;
            while cur.peek_at(hashes) == Some('#') {
                hashes += 1;
            }
            if cur.peek_at(hashes) == Some('"') {
                for _ in 0..hashes {
                    cur.bump();
                }
                eat_raw_string(cur, hashes);
                TokenKind::Str
            } else if ident == "r" && matches!(cur.peek_at(1), Some(c) if is_ident_start(c)) {
                // Raw identifier: r#match
                cur.bump();
                cur.eat_while(is_ident_continue);
                TokenKind::Ident
            } else {
                TokenKind::Ident
            }
        }
        _ => TokenKind::Ident,
    }
}

/// A numeric literal: digits, `_` separators, base prefixes and type
/// suffixes (all ident-continue characters), plus a decimal point when
/// followed by a digit — so `1..2` lexes as number, punct, punct, number.
fn eat_number(cur: &mut Cursor) {
    cur.eat_while(is_ident_continue);
    if cur.peek() == Some('.') && matches!(cur.peek_at(1), Some(c) if c.is_ascii_digit()) {
        cur.bump();
        cur.eat_while(is_ident_continue);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, &str)> {
        lex(src).iter().map(|t| (t.kind, t.text(src))).collect()
    }

    #[test]
    fn partitions_simple_source() {
        let src = "fn main() {}\n";
        let toks = lex(src);
        assert_eq!(toks.first().map(|t| t.start), Some(0));
        assert_eq!(toks.last().map(|t| t.end), Some(src.len()));
        for w in toks.windows(2) {
            assert_eq!(w[0].end, w[1].start);
        }
    }

    #[test]
    fn comments_and_strings_are_opaque() {
        let src = "// std::thread\nlet s = \"Instant::now\"; /* HashMap */";
        let idents: Vec<_> = lex(src)
            .into_iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text(src).to_string())
            .collect();
        assert_eq!(idents, ["let", "s"]);
    }

    #[test]
    fn raw_strings_with_hashes() {
        let src = r####"let x = r##"quote " and "# inside"## + 1;"####;
        let strs: Vec<_> = kinds(src)
            .into_iter()
            .filter(|(k, _)| *k == TokenKind::Str)
            .collect();
        assert_eq!(strs.len(), 1);
        assert!(strs[0].1.starts_with("r##\""));
        assert!(strs[0].1.ends_with("\"##"));
    }

    #[test]
    fn raw_identifier_is_ident() {
        let src = "let r#match = 1;";
        assert!(kinds(src).contains(&(TokenKind::Ident, "r#match")));
    }

    #[test]
    fn lifetimes_are_not_strings() {
        let src = "fn f<'a>(x: &'a str) -> char { 'x' }";
        let v = kinds(src);
        assert!(v.contains(&(TokenKind::Lifetime, "'a")));
        assert!(v.contains(&(TokenKind::Str, "'x'")));
    }

    #[test]
    fn escaped_char_literals() {
        let src = r"let nl = '\n'; let u = '\u{41}';";
        let strs: Vec<_> = kinds(src)
            .into_iter()
            .filter(|(k, _)| *k == TokenKind::Str)
            .map(|(_, s)| s)
            .collect();
        assert_eq!(strs, [r"'\n'", r"'\u{41}'"]);
    }

    #[test]
    fn nested_block_comments() {
        let src = "/* outer /* inner */ still */ fn";
        let v = kinds(src);
        assert_eq!(v[0].0, TokenKind::BlockComment);
        assert_eq!(v[0].1, "/* outer /* inner */ still */");
    }

    #[test]
    fn unterminated_literals_reach_eof() {
        for src in ["\"never closed", "r#\"still open", "/* forever", "'"] {
            let toks = lex(src);
            assert_eq!(toks.last().map(|t| t.end), Some(src.len()), "{src:?}");
        }
    }

    #[test]
    fn line_col_tracking() {
        let src = "ab\ncd ef\n  gh";
        let pos: Vec<_> = lex(src)
            .into_iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| (t.line, t.col))
            .collect();
        assert_eq!(pos, [(1, 1), (2, 1), (2, 4), (3, 3)]);
    }

    #[test]
    fn ranges_do_not_swallow_dots() {
        let src = "for i in 0..10 { let x = 1.5; }";
        let nums: Vec<_> = kinds(src)
            .into_iter()
            .filter(|(k, _)| *k == TokenKind::Number)
            .map(|(_, s)| s)
            .collect();
        assert_eq!(nums, ["0", "10", "1.5"]);
    }
}
