//! The determinism & hermeticity rules over lexed Rust sources.
//!
//! Every rule works on the token stream from [`crate::lexer`], so code
//! inside comments and string literals never matches, and every
//! diagnostic carries the exact line/column of the offending token.
//! Detection is lexical by design: the rules name *hazards* (a wall-clock
//! symbol, an unordered container, a raw thread spawn) that a reviewer
//! then either removes or justifies with a pragma — they are not a type
//! checker, and a determined author can evade them; CI review is the
//! backstop for that.

use crate::lexer::{self, Token, TokenKind};
use crate::pragma::{self, Pragma};
use crate::Diagnostic;

/// `Instant`/`SystemTime` — wall-clock reads outside the bench harness.
pub const WALL_CLOCK: &str = "wall-clock";
/// `HashMap`/`HashSet` in non-test code — unstable iteration order.
pub const UNORDERED_ITERATION: &str = "unordered-iteration";
/// `std::thread` outside the deterministic worker pool.
pub const RAW_THREAD: &str = "raw-thread";
/// `std::env` outside the allowlisted `INCAM_*` configuration sites.
pub const ENV_READ: &str = "env-read";
/// Non-`path` dependencies in a `Cargo.toml`.
pub const REGISTRY_DEP: &str = "registry-dep";
/// Crate roots missing `#![forbid(unsafe_code)]` / a `missing_docs` lint.
pub const CRATE_HYGIENE: &str = "crate-hygiene";
/// `.unwrap()`/`.expect(...)` in the fail-closed verify service.
pub const FALLIBLE_UNWRAP: &str = "fallible-unwrap";
/// Meta-rule: malformed pragmas, unknown rule ids, missing reasons.
pub const PRAGMA: &str = "pragma";

/// Rules a pragma may suppress ([`PRAGMA`] itself is not suppressible).
pub const ALLOWABLE_RULES: [&str; 7] = [
    WALL_CLOCK,
    UNORDERED_ITERATION,
    RAW_THREAD,
    ENV_READ,
    REGISTRY_DEP,
    CRATE_HYGIENE,
    FALLIBLE_UNWRAP,
];

/// The one file allowed to read real time: the bench harness itself.
const WALL_CLOCK_ALLOWED: &[&str] = &["crates/rng/src/bench.rs"];

/// The one crate allowed to spawn OS threads: the deterministic pool.
const RAW_THREAD_ALLOWED: &[&str] = &["crates/parallel/src/lib.rs"];

/// Allowlisted `std::env` sites: the `INCAM_*` knobs documented in
/// README ("Hermetic builds" / "Parallel execution") plus the repro
/// binary's CLI argument parsing.
const ENV_READ_ALLOWED: &[&str] = &[
    "crates/rng/src/bench.rs",       // INCAM_BENCH_DIR, INCAM_BENCH_SAMPLES
    "crates/rng/src/prop.rs",        // INCAM_PROPTEST_SEED, INCAM_PROPTEST_CASES
    "crates/parallel/src/lib.rs",    // INCAM_THREADS
    "crates/bench/src/bin/repro.rs", // std::env::args CLI parsing
];

/// Runs every Rust-source rule over `src`, applying pragma suppression.
///
/// `relpath` is the workspace-relative path with `/` separators; the
/// allowlists and the test/bench-directory exemptions key off it, and it
/// prefixes every diagnostic.
pub fn check_rust_source(relpath: &str, src: &str) -> Vec<Diagnostic> {
    let tokens = lexer::lex(src);
    let mut diags = Vec::new();
    let pragmas = collect_pragmas(relpath, src, &tokens, &mut diags);
    let sig: Vec<&Token> = tokens
        .iter()
        .filter(|t| {
            !matches!(
                t.kind,
                TokenKind::Whitespace | TokenKind::LineComment | TokenKind::BlockComment
            )
        })
        .collect();

    let diag = |rule: &'static str, tok: &Token, message: String| Diagnostic {
        path: relpath.to_string(),
        line: tok.line,
        col: tok.col,
        rule,
        message,
    };

    if !WALL_CLOCK_ALLOWED.contains(&relpath) {
        for tok in idents(&sig, src, &["Instant", "SystemTime"]) {
            diags.push(diag(
                WALL_CLOCK,
                tok,
                format!(
                    "`{}` is a wall-clock read; model time through the deterministic cost \
                     framework (only the bench harness measures real time)",
                    tok.text(src)
                ),
            ));
        }
    }

    if !in_test_tree(relpath) {
        let test_spans = cfg_test_line_spans(&sig, src);
        for tok in idents(&sig, src, &["HashMap", "HashSet"]) {
            if test_spans
                .iter()
                .any(|(a, b)| (*a..=*b).contains(&tok.line))
            {
                continue;
            }
            diags.push(diag(
                UNORDERED_ITERATION,
                tok,
                format!(
                    "`{}` iterates in arbitrary order; use Vec or BTreeMap/BTreeSet so \
                     report-visible state is byte-stable",
                    tok.text(src)
                ),
            ));
        }
    }

    if !RAW_THREAD_ALLOWED.contains(&relpath) {
        for tok in path_pattern(&sig, src, "std", "thread") {
            diags.push(diag(
                RAW_THREAD,
                tok,
                "`std::thread` outside incam-parallel; spawn work through the deterministic \
                 worker pool (incam_parallel::par_*)"
                    .to_string(),
            ));
        }
    }

    if !ENV_READ_ALLOWED.contains(&relpath) {
        for tok in path_pattern(&sig, src, "std", "env") {
            diags.push(diag(
                ENV_READ,
                tok,
                "`std::env` outside the allowlisted INCAM_* sites; thread configuration \
                 through explicit parameters"
                    .to_string(),
            ));
        }
    }

    // The verify service is fail-closed by contract: a panic in the
    // serving path would take down admission for every camera behind it,
    // so recoverable errors must flow to `Fallback`, never `.unwrap()`.
    if relpath.starts_with("crates/auth/") && !in_test_tree(relpath) {
        let test_spans = cfg_test_line_spans(&sig, src);
        for tok in method_calls(&sig, src, &["unwrap", "expect"]) {
            if test_spans
                .iter()
                .any(|(a, b)| (*a..=*b).contains(&tok.line))
            {
                continue;
            }
            diags.push(diag(
                FALLIBLE_UNWRAP,
                tok,
                format!(
                    "`.{}(` can panic in the fail-closed verify path; propagate the error \
                     so the service degrades to `Fallback` instead of crashing",
                    tok.text(src)
                ),
            ));
        }
    }

    if relpath.ends_with("src/lib.rs") {
        check_crate_hygiene(relpath, src, &sig, &mut diags);
    }

    suppress(diags, &pragmas)
}

/// True for sources under a `tests/` or `benches/` directory, where the
/// unordered-iteration rule does not apply (test scaffolding never
/// reaches a report).
fn in_test_tree(relpath: &str) -> bool {
    relpath.split('/').any(|c| c == "tests" || c == "benches")
}

/// Extracts pragmas from plain `//` comments (doc comments excluded);
/// malformed ones become [`PRAGMA`] diagnostics.
fn collect_pragmas(
    relpath: &str,
    src: &str,
    tokens: &[Token],
    diags: &mut Vec<Diagnostic>,
) -> Vec<Pragma> {
    let mut pragmas = Vec::new();
    for tok in tokens {
        if tok.kind != TokenKind::LineComment {
            continue;
        }
        let text = tok.text(src);
        if text.starts_with("///") || text.starts_with("//!") {
            continue;
        }
        match pragma::parse_pragma(&text[2..]) {
            Ok(None) => {}
            Ok(Some(rule)) => pragmas.push(Pragma {
                line: tok.line,
                rule,
            }),
            Err(e) => diags.push(Diagnostic {
                path: relpath.to_string(),
                line: tok.line,
                col: tok.col,
                rule: PRAGMA,
                message: e.message(),
            }),
        }
    }
    pragmas
}

/// Drops diagnostics whose rule is allowed by a pragma on the same line
/// or the line directly above, then sorts for deterministic output.
pub fn suppress(diags: Vec<Diagnostic>, pragmas: &[Pragma]) -> Vec<Diagnostic> {
    let mut out: Vec<Diagnostic> = diags
        .into_iter()
        .filter(|d| {
            !pragmas
                .iter()
                .any(|p| p.rule == d.rule && (d.line == p.line || d.line == p.line + 1))
        })
        .collect();
    out.sort_by(|a, b| {
        (&a.path, a.line, a.col, a.rule, &a.message)
            .cmp(&(&b.path, b.line, b.col, b.rule, &b.message))
    });
    out
}

/// Significant tokens that are identifiers with text in `names`.
fn idents<'t>(sig: &[&'t Token], src: &str, names: &[&str]) -> Vec<&'t Token> {
    sig.iter()
        .filter(|t| t.kind == TokenKind::Ident && names.contains(&t.text(src)))
        .copied()
        .collect()
}

/// Occurrences of the two-segment path `first::second` in significant
/// tokens, returned at the position of `first`.
fn path_pattern<'t>(sig: &[&'t Token], src: &str, first: &str, second: &str) -> Vec<&'t Token> {
    let mut out = Vec::new();
    for w in sig.windows(4) {
        if w[0].kind == TokenKind::Ident
            && w[0].text(src) == first
            && is_punct(w[1], src, ':')
            && is_punct(w[2], src, ':')
            && w[3].kind == TokenKind::Ident
            && w[3].text(src) == second
        {
            out.push(w[0]);
        }
    }
    out
}

/// Method-call sites `.name(` where `name` is in `names`, returned at
/// the position of the method identifier. Idents are whole tokens, so
/// `.unwrap_or(` never matches `unwrap`.
fn method_calls<'t>(sig: &[&'t Token], src: &str, names: &[&str]) -> Vec<&'t Token> {
    let mut out = Vec::new();
    for w in sig.windows(3) {
        if is_punct(w[0], src, '.')
            && w[1].kind == TokenKind::Ident
            && names.contains(&w[1].text(src))
            && is_punct(w[2], src, '(')
        {
            out.push(w[1]);
        }
    }
    out
}

fn is_punct(tok: &Token, src: &str, c: char) -> bool {
    tok.kind == TokenKind::Punct && tok.text(src).starts_with(c)
}

fn is_ident(tok: &Token, src: &str, name: &str) -> bool {
    tok.kind == TokenKind::Ident && tok.text(src) == name
}

/// Inclusive line ranges of `#[cfg(test)]`-gated items (the attribute
/// line through the closing brace of the item body). Items gated but
/// braceless (`mod tests;`) contribute no range.
fn cfg_test_line_spans(sig: &[&Token], src: &str) -> Vec<(u32, u32)> {
    let mut spans = Vec::new();
    let mut i = 0;
    while i + 4 < sig.len() {
        let is_cfg_attr = is_punct(sig[i], src, '#')
            && is_punct(sig[i + 1], src, '[')
            && is_ident(sig[i + 2], src, "cfg")
            && is_punct(sig[i + 3], src, '(');
        if !is_cfg_attr {
            i += 1;
            continue;
        }
        // Scan the balanced (...) group looking for a `test` token.
        let mut j = i + 4;
        let mut depth = 1u32;
        let mut saw_test = false;
        while j < sig.len() && depth > 0 {
            if is_punct(sig[j], src, '(') {
                depth += 1;
            } else if is_punct(sig[j], src, ')') {
                depth -= 1;
            } else if is_ident(sig[j], src, "test") {
                saw_test = true;
            }
            j += 1;
        }
        // Expect the closing `]`, then the gated item's body brace.
        if !saw_test || j >= sig.len() || !is_punct(sig[j], src, ']') {
            i = j;
            continue;
        }
        let mut k = j + 1;
        while k < sig.len() && !is_punct(sig[k], src, '{') && !is_punct(sig[k], src, ';') {
            k += 1;
        }
        if k >= sig.len() || is_punct(sig[k], src, ';') {
            i = k;
            continue;
        }
        let open = k;
        let mut braces = 1u32;
        k += 1;
        while k < sig.len() && braces > 0 {
            if is_punct(sig[k], src, '{') {
                braces += 1;
            } else if is_punct(sig[k], src, '}') {
                braces -= 1;
            }
            k += 1;
        }
        let close_line = sig[(k.max(open + 1) - 1).min(sig.len() - 1)].line;
        spans.push((sig[i].line, close_line));
        i = k;
    }
    spans
}

/// `src/lib.rs` roots must carry `#![forbid(unsafe_code)]` and a
/// `missing_docs` lint (`warn`, `deny`, or `forbid`).
fn check_crate_hygiene(relpath: &str, src: &str, sig: &[&Token], diags: &mut Vec<Diagnostic>) {
    let has_attr = |lint: &str, levels: &[&str]| {
        sig.windows(8).any(|w| {
            is_punct(w[0], src, '#')
                && is_punct(w[1], src, '!')
                && is_punct(w[2], src, '[')
                && w[3].kind == TokenKind::Ident
                && levels.contains(&w[3].text(src))
                && is_punct(w[4], src, '(')
                && is_ident(w[5], src, lint)
                && is_punct(w[6], src, ')')
                && is_punct(w[7], src, ']')
        })
    };
    let mut missing = Vec::new();
    if !has_attr("unsafe_code", &["forbid"]) {
        missing.push("crate root missing `#![forbid(unsafe_code)]`".to_string());
    }
    if !has_attr("missing_docs", &["warn", "deny", "forbid"]) {
        missing.push(
            "crate root missing a `missing_docs` lint (add `#![warn(missing_docs)]`)".to_string(),
        );
    }
    for message in missing {
        diags.push(Diagnostic {
            path: relpath.to_string(),
            line: 1,
            col: 1,
            rule: CRATE_HYGIENE,
            message,
        });
    }
}
