//! The cross-artifact coherence checker.
//!
//! The experiment registry spans five artifacts that only convention
//! kept aligned: the `ALL` list in `crates/bench/src/bin/repro.rs`
//! (what can run), the `repro_diff` gates in `ci.sh` (what CI proves
//! deterministic), `EXPERIMENTS.md` (what is documented), `results/`
//! (what outputs are committed), and the `BENCH_*.json` baselines (what
//! bench targets produced them). This pass parses all five and emits a
//! `coherence` diagnostic for every edge that is missing:
//!
//! - an experiment in `ALL` with no `repro_diff` gate in ci.sh,
//!   no mention in EXPERIMENTS.md, or no `results/<name>.txt`;
//! - a `repro_diff` gate naming an experiment `ALL` doesn't know;
//! - a `results/BENCH_<t>.json` with no `crates/bench/benches/<t>.rs`;
//! - a `mod` declaration that resolves to no file, or a library source
//!   no declaration reaches (via [`crate::workspace::ModuleMap`]).
//!
//! Coherence findings are not pragma-suppressible: the fix is always to
//! repair the artifact drift they name. The pass degrades gracefully —
//! a root without `repro.rs` (fixture trees, other projects) skips the
//! experiment checks entirely.

use crate::lexer::{self, TokenKind};
use crate::rules::COHERENCE;
use crate::workspace::ModuleMap;
use crate::Diagnostic;
use std::fs;
use std::path::Path;

/// Runs every cross-artifact check rooted at `root`.
pub fn check(root: &Path, modmap: &ModuleMap) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    check_module_map(modmap, &mut diags);
    check_experiments(root, &mut diags);
    check_bench_baselines(root, &mut diags);
    diags
}

fn diag(path: &str, line: u32, message: String) -> Diagnostic {
    Diagnostic {
        path: path.to_string(),
        line,
        col: 1,
        rule: COHERENCE,
        message,
    }
}

fn check_module_map(modmap: &ModuleMap, diags: &mut Vec<Diagnostic>) {
    for d in modmap.unresolved() {
        diags.push(diag(
            &d.decl_file,
            d.line,
            format!(
                "`mod {};` resolves to neither {}/{}.rs nor {}/{}/mod.rs",
                d.name, d.dir, d.name, d.dir, d.name
            ),
        ));
    }
    for orphan in modmap.orphans() {
        diags.push(diag(
            orphan,
            1,
            format!(
                "library source `{orphan}` is not declared by any `mod` statement; it is \
                     silently excluded from the build"
            ),
        ));
    }
}

/// The experiment registry: repro's `ALL` vs ci.sh vs EXPERIMENTS.md vs
/// `results/`.
fn check_experiments(root: &Path, diags: &mut Vec<Diagnostic>) {
    const REPRO: &str = "crates/bench/src/bin/repro.rs";
    let Ok(repro_src) = fs::read_to_string(root.join(REPRO)) else {
        return; // Not a repo with the experiment registry; nothing to check.
    };
    let experiments = parse_all_list(&repro_src);
    if experiments.is_empty() {
        diags.push(diag(
            REPRO,
            1,
            "could not find the `ALL` experiment list (expected `const ALL: &[&str] = …`)"
                .to_string(),
        ));
        return;
    }

    let ci = fs::read_to_string(root.join("ci.sh")).unwrap_or_default();
    let gated = parse_ci_gates(&ci);
    let docs = fs::read_to_string(root.join("EXPERIMENTS.md")).unwrap_or_default();

    for name in &experiments {
        if !gated.contains(name) {
            diags.push(diag(
                "ci.sh",
                1,
                format!(
                    "experiment `{name}` has no CI determinism gate (expected a `repro_diff \
                     {name}` invocation in ci.sh)"
                ),
            ));
        }
        if !docs.contains(&format!("`{name}`")) && !docs.contains(&format!("--experiment {name}")) {
            diags.push(diag(
                "EXPERIMENTS.md",
                1,
                format!(
                    "experiment `{name}` is not documented in EXPERIMENTS.md (mention \
                     `{name}` or `--experiment {name}`)"
                ),
            ));
        }
        if !root.join("results").join(format!("{name}.txt")).is_file() {
            diags.push(diag(
                REPRO,
                1,
                format!(
                    "experiment `{name}` has no committed results (expected \
                     results/{name}.txt; run `repro --experiment {name} --seed 2017 \
                     --output results`)"
                ),
            ));
        }
    }
    for name in &gated {
        if !experiments.contains(name) {
            diags.push(diag(
                "ci.sh",
                1,
                format!("ci.sh gates unknown experiment `{name}` (not in repro's ALL list)"),
            ));
        }
    }
}

/// Every `results/BENCH_<t>.json` must come from a bench target
/// `crates/bench/benches/<t>.rs`, and its `"target"` field must agree.
fn check_bench_baselines(root: &Path, diags: &mut Vec<Diagnostic>) {
    let results = root.join("results");
    let Ok(entries) = fs::read_dir(&results) else {
        return;
    };
    let mut names: Vec<String> = entries
        .filter_map(|e| e.ok())
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .filter(|n| n.starts_with("BENCH_") && n.ends_with(".json"))
        .collect();
    names.sort();
    for fname in names {
        let stem = fname
            .trim_start_matches("BENCH_")
            .trim_end_matches(".json")
            .to_string();
        let relpath = format!("results/{fname}");
        if !root
            .join("crates/bench/benches")
            .join(format!("{stem}.rs"))
            .is_file()
        {
            diags.push(diag(
                &relpath,
                1,
                format!(
                    "baseline `{fname}` has no bench target (expected \
                     crates/bench/benches/{stem}.rs)"
                ),
            ));
        }
        if let Ok(body) = fs::read_to_string(results.join(&fname)) {
            if let Some(target) = json_target_field(&body) {
                if target != stem {
                    diags.push(diag(
                        &relpath,
                        1,
                        format!(
                            "baseline `{fname}` declares target `{target}` but its filename \
                             implies `{stem}`"
                        ),
                    ));
                }
            }
        }
    }
}

/// Extracts the string items of `const ALL: &[&str] = &[ … ];` from the
/// repro binary, by token scan: find the `ALL` identifier, then collect
/// every string literal until the closing `]` of its initializer.
fn parse_all_list(src: &str) -> Vec<String> {
    let tokens = lexer::lex(src);
    let sig: Vec<_> = tokens
        .iter()
        .filter(|t| {
            !matches!(
                t.kind,
                TokenKind::Whitespace | TokenKind::LineComment | TokenKind::BlockComment
            )
        })
        .collect();
    let mut out = Vec::new();
    let Some(pos) = sig
        .iter()
        .position(|t| t.kind == TokenKind::Ident && t.text(src) == "ALL")
    else {
        return out;
    };
    // Skip the type annotation: the list starts after the `=`.
    let Some(eq) = sig[pos..]
        .iter()
        .position(|t| t.kind == TokenKind::Punct && t.text(src).starts_with('='))
    else {
        return out;
    };
    let mut depth = 0i64;
    for t in &sig[pos + eq..] {
        match t.kind {
            TokenKind::Punct if t.text(src).starts_with('[') => depth += 1,
            TokenKind::Punct if t.text(src).starts_with(']') => {
                depth -= 1;
                if depth <= 0 {
                    break;
                }
            }
            TokenKind::Str if depth > 0 => {
                let text = t.text(src);
                out.push(text.trim_matches('"').to_string());
            }
            _ => {}
        }
    }
    out
}

/// Experiments ci.sh gates with `repro_diff`: direct `repro_diff <name>`
/// invocations plus `for <var> in a b c; do … repro_diff "$<var>" …`
/// loops (the loop's word list counts when its body calls repro_diff on
/// the loop variable).
fn parse_ci_gates(ci: &str) -> Vec<String> {
    let mut gated = Vec::new();
    let lines: Vec<&str> = ci.lines().collect();
    let mut i = 0;
    while i < lines.len() {
        let line = lines[i].trim();
        if let Some(rest) = line.strip_prefix("for ") {
            // `for exp in a b c; do`
            if let Some((var, list)) = rest.split_once(" in ") {
                let var = var.trim();
                let words: Vec<String> = list
                    .trim_end_matches("; do")
                    .trim_end_matches(';')
                    .split_whitespace()
                    .map(|w| w.trim_matches('"').to_string())
                    .collect();
                // Scan the loop body for `repro_diff "$var"`.
                let mut j = i + 1;
                let mut uses_var = false;
                while j < lines.len() && !lines[j].trim().starts_with("done") {
                    let body = lines[j].trim();
                    if body.starts_with("repro_diff")
                        && (body.contains(&format!("\"${var}\""))
                            || body.contains(&format!("${var}")))
                    {
                        uses_var = true;
                    }
                    j += 1;
                }
                if uses_var {
                    gated.extend(words);
                }
                i = j;
                continue;
            }
        }
        if let Some(rest) = line.strip_prefix("repro_diff ") {
            if let Some(name) = rest.split_whitespace().next() {
                if !name.starts_with('$') && !name.starts_with('"') {
                    gated.push(name.trim_matches('"').to_string());
                }
            }
        }
        i += 1;
    }
    gated.sort();
    gated.dedup();
    gated
}

/// The `"target"` field of a BENCH json document, if present.
fn json_target_field(body: &str) -> Option<String> {
    let ix = body.find("\"target\"")?;
    let rest = &body[ix + "\"target\"".len()..];
    let rest = rest.trim_start().strip_prefix(':')?.trim_start();
    let rest = rest.strip_prefix('"')?;
    let end = rest.find('"')?;
    Some(rest[..end].to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_list_is_extracted() {
        let src = "const ALL: &[&str] = &[\n    \"fig4c\",\n    \"fleet\",\n];\n";
        assert_eq!(parse_all_list(src), ["fig4c", "fleet"]);
    }

    #[test]
    fn ci_gates_cover_direct_and_loop_forms() {
        let ci = "repro_diff harvest\nfor exp in fa-pipeline fig6 chaos; do\n    \
                  repro_diff \"$exp\" --quick\ndone\nrepro_diff fleet --quick\n";
        assert_eq!(
            parse_ci_gates(ci),
            ["chaos", "fa-pipeline", "fig6", "fleet", "harvest"]
        );
    }

    #[test]
    fn hyphenated_experiment_names_survive_both_parsers() {
        // `explore-scale` (PR 10) is the first registered experiment
        // whose name contains a hyphen in both the registry and a
        // direct-form ci gate; pin that neither parser splits it.
        let src = "const ALL: &[&str] = &[\n    \"verify\",\n    \"explore-scale\",\n];\n";
        assert_eq!(parse_all_list(src), ["verify", "explore-scale"]);
        let ci = "repro_diff verify --quick\nrepro_diff explore-scale --quick\n";
        assert_eq!(parse_ci_gates(ci), ["explore-scale", "verify"]);
    }

    #[test]
    fn target_field_is_read() {
        assert_eq!(
            json_target_field("{\n  \"harness\": \"x\",\n  \"target\": \"kernels\",\n}"),
            Some("kernels".to_string())
        );
    }
}
