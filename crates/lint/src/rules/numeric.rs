//! Numeric-safety rules.
//!
//! The hot-kernel crates (`imaging`, `bilateral`, `viola`, `nn`) carry
//! the paper's accuracy claims: a silent truncation or wrap in an
//! accumulator changes reported energy/accuracy numbers without failing
//! any test until a golden transcript moves. Two rules make those
//! hazards explicit there, and a third widens the fail-closed unwrap
//! rule from `crates/auth` to every non-test library source.
//!
//! - **lossy-cast** — `as u8`/`i8`/`u16`/`i16` narrowing casts with no
//!   visible guard. A `.clamp(`/`.min(`/`%` within the preceding few
//!   tokens counts as a guard (the idiomatic `x.clamp(0.0, 255.0) as
//!   u8` stays silent); anything else either gets an explicit clamp or
//!   a pragma explaining why the range is known.
//! - **unchecked-arith** — `.wrapping_*(`, `.get_unchecked*(`,
//!   `.unwrap_unchecked(`: wraps and check-bypasses in kernels are
//!   occasionally intentional (the delta codec's bias shifts) but must
//!   say so.
//! - **fallible-unwrap** — `.unwrap()`/`.expect(` anywhere in non-test
//!   library code. The serving path is fail-closed by contract
//!   (PR 8): a panic sheds every camera behind the service, so
//!   recoverable errors must flow to callers. Binaries
//!   (`src/main.rs`, `src/bin/`), examples, tests, benches and
//!   `cfg(test)` regions are exempt.

use super::{FALLIBLE_UNWRAP, LOSSY_CAST, UNCHECKED_ARITH};
use crate::lexer::TokenKind;
use crate::visit::FileCtx;
use crate::Diagnostic;

/// Crates whose inner loops feed the paper's accuracy/energy numbers.
const HOT_KERNEL_CRATES: &[&str] = &[
    "crates/imaging/",
    "crates/bilateral/",
    "crates/viola/",
    "crates/nn/",
];

/// Narrow integer targets that drop bits from any wider source.
const NARROW_TYPES: &[&str] = &["u8", "i8", "u16", "i16"];

/// Methods that bypass overflow or bounds checks.
const UNCHECKED_METHODS: &[&str] = &[
    "wrapping_add",
    "wrapping_sub",
    "wrapping_mul",
    "wrapping_neg",
    "wrapping_shl",
    "wrapping_shr",
    "get_unchecked",
    "get_unchecked_mut",
    "unwrap_unchecked",
];

/// How many significant tokens before `as` are searched for a guard
/// (wide enough for `(p.clamp(0.0, 1.0) * 255.0).round() as u8`).
const GUARD_WINDOW: usize = 16;

/// Runs the numeric-safety rules over one file.
pub fn check(ctx: &FileCtx<'_>, diags: &mut Vec<Diagnostic>) {
    let hot = HOT_KERNEL_CRATES.iter().any(|c| ctx.relpath.starts_with(c));
    if hot && !ctx.in_test_tree() {
        check_lossy_casts(ctx, diags);
        check_unchecked(ctx, diags);
    }
    check_unwraps(ctx, diags);
}

fn check_lossy_casts(ctx: &FileCtx<'_>, diags: &mut Vec<Diagnostic>) {
    for w in 0..ctx.sig.len().saturating_sub(1) {
        let as_ix = ctx.sig[w];
        if !ctx.is_ident(as_ix, "as") {
            continue;
        }
        let ty_ix = ctx.sig[w + 1];
        if ctx.tokens[ty_ix].kind != TokenKind::Ident || !NARROW_TYPES.contains(&ctx.text(ty_ix)) {
            continue;
        }
        let tok = &ctx.tokens[as_ix];
        if ctx.in_cfg_test(tok.line) {
            continue;
        }
        // A visible guard upstream of the cast silences the rule.
        let lo = w.saturating_sub(GUARD_WINDOW);
        let guarded = (lo..w).any(|k| {
            let ix = ctx.sig[k];
            ctx.is_ident(ix, "clamp") || ctx.is_ident(ix, "min") || ctx.is_punct(ix, '%')
        });
        if guarded {
            continue;
        }
        diags.push(ctx.diag(
            LOSSY_CAST,
            tok,
            format!(
                "`as {}` silently truncates in a hot kernel; clamp or mask the value \
                 explicitly before narrowing, or justify the range with a pragma",
                ctx.text(ty_ix)
            ),
        ));
    }
}

fn check_unchecked(ctx: &FileCtx<'_>, diags: &mut Vec<Diagnostic>) {
    for tok in ctx.method_calls(UNCHECKED_METHODS) {
        if ctx.in_cfg_test(tok.line) {
            continue;
        }
        diags.push(ctx.diag(
            UNCHECKED_ARITH,
            tok,
            format!(
                "`.{}(` bypasses overflow/bounds checks in a hot kernel; use widening or \
                 checked arithmetic, or justify the wrap with a pragma",
                tok.text(ctx.src)
            ),
        ));
    }
}

/// True for paths the widened fallible-unwrap rule covers: library
/// sources (`src/` trees) excluding binaries, examples and test trees.
fn is_library_code(relpath: &str) -> bool {
    let in_src = relpath.starts_with("src/") || relpath.contains("/src/");
    let is_bin = relpath.ends_with("src/main.rs") || relpath.contains("/src/bin/");
    let exempt_tree = relpath
        .split('/')
        .any(|c| c == "tests" || c == "benches" || c == "examples");
    in_src && !is_bin && !exempt_tree
}

fn check_unwraps(ctx: &FileCtx<'_>, diags: &mut Vec<Diagnostic>) {
    if !is_library_code(ctx.relpath) {
        return;
    }
    for tok in ctx.method_calls(&["unwrap", "expect"]) {
        if ctx.in_cfg_test(tok.line) {
            continue;
        }
        diags.push(ctx.diag(
            FALLIBLE_UNWRAP,
            tok,
            format!(
                "`.{}(` can panic in non-test library code; propagate the error to the \
                 caller, or state the invariant that makes it unreachable in a pragma",
                tok.text(ctx.src)
            ),
        ));
    }
}
