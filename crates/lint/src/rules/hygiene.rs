//! The crate-hygiene rule: every `src/lib.rs` root must carry
//! `#![forbid(unsafe_code)]` and a `missing_docs` lint.

use super::CRATE_HYGIENE;
use crate::lexer::TokenKind;
use crate::visit::FileCtx;
use crate::Diagnostic;

/// Flags `src/lib.rs` roots missing the mandatory lint attributes
/// (`warn`, `deny`, or `forbid` all satisfy `missing_docs`).
pub fn check(ctx: &FileCtx<'_>, diags: &mut Vec<Diagnostic>) {
    if !ctx.relpath.ends_with("src/lib.rs") {
        return;
    }
    let has_attr = |lint: &str, levels: &[&str]| {
        ctx.sig.windows(8).any(|w| {
            ctx.is_punct(w[0], '#')
                && ctx.is_punct(w[1], '!')
                && ctx.is_punct(w[2], '[')
                && ctx.tokens[w[3]].kind == TokenKind::Ident
                && levels.contains(&ctx.text(w[3]))
                && ctx.is_punct(w[4], '(')
                && ctx.is_ident(w[5], lint)
                && ctx.is_punct(w[6], ')')
                && ctx.is_punct(w[7], ']')
        })
    };
    let mut missing = Vec::new();
    if !has_attr("unsafe_code", &["forbid"]) {
        missing.push("crate root missing `#![forbid(unsafe_code)]`".to_string());
    }
    if !has_attr("missing_docs", &["warn", "deny", "forbid"]) {
        missing.push(
            "crate root missing a `missing_docs` lint (add `#![warn(missing_docs)]`)".to_string(),
        );
    }
    for message in missing {
        diags.push(Diagnostic {
            path: ctx.relpath.to_string(),
            line: 1,
            col: 1,
            rule: CRATE_HYGIENE,
            message,
        });
    }
}
