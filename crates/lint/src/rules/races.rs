//! The determinism race detector.
//!
//! `incam-parallel` keeps outputs byte-identical at any thread count by
//! construction: workers compute into disjoint, pre-placed slots and
//! the pool combines them in a fixed order. That contract only holds if
//! the closures handed to `par_map`/`par_map_rows`/`par_chunks`/
//! `par_reduce`/`par_bands_mut*` are pure per-item functions — the
//! borrow checker stops most shared-mutation attempts, but interior
//! mutability (`Mutex`, `RefCell`, atomics) and `unsafe`-free cell
//! types slip through it, and those are exactly the races that
//! reintroduce schedule-dependent output.
//!
//! Two rules walk every closure whose call target is one of the pool
//! entry points:
//!
//! - **par-capture-mut** — the closure mutates a binding it *captured*
//!   (anything not bound by its own parameters, `let`s, or `for`
//!   patterns): plain assignment, mutating method calls
//!   (`push`/`insert`/`lock`/`fetch_add`/…), or taking `&mut` to it.
//! - **par-float-accum** — compound `+=`/`-=`/`*=` accumulation into a
//!   captured binding: even when synchronized, the combination order
//!   depends on the schedule, which is non-associative for floats.
//!   `par_reduce` and `par_bands_mut2` are the approved shapes.
//!
//! The capture analysis is lexical and over-approximate in the safe
//! direction: nested-closure parameters and all `let`/`for` bindings in
//! the body count as locals, so a flagged name is genuinely captured;
//! reads of captures are always fine.

use super::{PAR_CAPTURE_MUT, PAR_FLOAT_ACCUM};
use crate::lexer::TokenKind;
use crate::parser::Closure;
use crate::visit::FileCtx;
use crate::Diagnostic;

/// The deterministic pool's entry points taking per-item closures.
pub const PAR_FNS: &[&str] = &[
    "par_map",
    "par_map_rows",
    "par_chunks",
    "par_reduce",
    "par_bands_mut",
    "par_bands_mut2",
];

/// Method names that mutate their receiver (or its interior).
const MUT_METHODS: &[&str] = &[
    "push",
    "push_str",
    "pop",
    "insert",
    "insert_str",
    "remove",
    "extend",
    "extend_from_slice",
    "append",
    "clear",
    "truncate",
    "resize",
    "fill",
    "swap",
    "sort",
    "sort_by",
    "sort_by_key",
    "sort_unstable",
    "sort_unstable_by",
    "retain",
    "drain",
    "dedup",
    "rotate_left",
    "rotate_right",
    "lock",
    "borrow_mut",
    "get_mut",
    "iter_mut",
    "fetch_add",
    "fetch_sub",
    "fetch_and",
    "fetch_or",
    "fetch_xor",
    "store",
    "set",
    "replace",
    "take",
    "write",
];

/// Primitive and keyword names that appear after `&mut` in *type*
/// position; never capture targets.
const TYPE_NAMES: &[&str] = &[
    "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128", "isize", "f32",
    "f64", "bool", "char", "str", "dyn", "impl",
];

/// Runs the race detector over every parallel closure in the file.
pub fn check(ctx: &FileCtx<'_>, diags: &mut Vec<Diagnostic>) {
    if ctx.in_test_tree() {
        return;
    }
    ctx.each_closure(|_item, closure| {
        let Some(callee) = &closure.callee else {
            return;
        };
        if !PAR_FNS.contains(&callee.as_str()) {
            return;
        }
        if ctx.in_cfg_test(closure.line) {
            return;
        }
        analyze(ctx, callee, closure, diags);
    });
}

/// True when `name` is bound by the closure itself (parameter, `let`,
/// `for` pattern, or a nested closure's parameter).
fn is_bound(closure: &Closure, name: &str) -> bool {
    closure.params.iter().any(|p| p == name) || closure.locals.iter().any(|l| l == name)
}

fn analyze(ctx: &FileCtx<'_>, callee: &str, closure: &Closure, diags: &mut Vec<Diagnostic>) {
    // Significant tokens of the closure body.
    let bsig: Vec<usize> = (closure.body.0..closure.body.1.min(ctx.tokens.len()))
        .filter(|&i| {
            !matches!(
                ctx.tokens[i].kind,
                TokenKind::Whitespace | TokenKind::LineComment | TokenKind::BlockComment
            )
        })
        .collect();

    let adjacent = |a: usize, b: usize| ctx.tokens[a].end == ctx.tokens[b].start;

    for j in 0..bsig.len() {
        let t = bsig[j];
        if ctx.is_punct(t, '=') {
            // Disambiguate `=` from `==`, `=>`, `<=`, `>=`, `!=`, `..=`.
            if j + 1 < bsig.len() {
                let n = bsig[j + 1];
                if (ctx.is_punct(n, '=') || ctx.is_punct(n, '>')) && adjacent(t, n) {
                    continue;
                }
            }
            if j == 0 {
                continue;
            }
            let p = bsig[j - 1];
            let pc = if ctx.tokens[p].kind == TokenKind::Punct {
                ctx.text(p).chars().next().unwrap_or(' ')
            } else {
                ' '
            };
            if matches!(pc, '=' | '<' | '>' | '!' | '.') && adjacent(p, t) {
                continue;
            }
            let compound = "+-*/%&|^".contains(pc) && adjacent(p, t);
            let place_end = if compound {
                if j < 2 {
                    continue;
                }
                j - 2
            } else {
                j - 1
            };
            let Some(base) = place_base(ctx, &bsig, place_end) else {
                continue;
            };
            // `let y: f32 = …` — a type ascription, not a mutation.
            if !compound && base > 0 && ctx.is_punct(bsig[base - 1], ':') {
                continue;
            }
            let name = ctx.text(bsig[base]);
            if is_bound(closure, name) {
                continue;
            }
            let tok = &ctx.tokens[bsig[base]];
            if compound && matches!(pc, '+' | '-' | '*') {
                diags.push(ctx.diag(
                    PAR_FLOAT_ACCUM,
                    tok,
                    format!(
                        "order-sensitive `{pc}=` accumulation into captured `{name}` inside a \
                         `{callee}` closure; use `par_reduce` or the banded helpers \
                         (`par_bands_mut2`) so combination order is fixed"
                    ),
                ));
            } else {
                diags.push(ctx.diag(PAR_CAPTURE_MUT, tok, mutation_message(callee, name)));
            }
        } else if ctx.tokens[t].kind == TokenKind::Ident
            && j >= 2
            && ctx.is_punct(bsig[j - 1], '.')
            && j + 1 < bsig.len()
            && ctx.is_punct(bsig[j + 1], '(')
            && MUT_METHODS.contains(&ctx.text(t))
        {
            // `captured.push(…)` and friends: resolve the receiver.
            let Some(base) = place_base(ctx, &bsig, j - 2) else {
                continue;
            };
            let name = ctx.text(bsig[base]);
            if is_bound(closure, name) {
                continue;
            }
            let tok = &ctx.tokens[bsig[base]];
            diags.push(ctx.diag(PAR_CAPTURE_MUT, tok, mutation_message(callee, name)));
        } else if ctx.is_punct(t, '&')
            && j + 2 < bsig.len()
            && ctx.is_ident(bsig[j + 1], "mut")
            && ctx.tokens[bsig[j + 2]].kind == TokenKind::Ident
        {
            // `&mut captured` handed onward. Type positions (`&mut [T]`,
            // `&mut f32`, `&mut Writer`) are excluded by the primitive /
            // uppercase-initial screen: captured bindings are lowercase.
            let name = ctx.text(bsig[j + 2]);
            if is_bound(closure, name)
                || TYPE_NAMES.contains(&name)
                || name.chars().next().is_some_and(|c| c.is_uppercase())
            {
                continue;
            }
            let tok = &ctx.tokens[bsig[j + 2]];
            diags.push(ctx.diag(PAR_CAPTURE_MUT, tok, mutation_message(callee, name)));
        }
    }
}

fn mutation_message(callee: &str, name: &str) -> String {
    format!(
        "closure passed to `{callee}` mutates captured `{name}`; per-item work must be \
         pure — return the value and let the deterministic pool combine results"
    )
}

/// Resolves the base identifier of a place expression whose last token
/// sits at `bsig[end]`: walks `a.b`, `a.0`, and `a[i]` chains back to
/// `a`. Returns `None` when the chain bottoms out in anything but a
/// plain identifier (a call result, a parenthesized expression, …).
fn place_base(ctx: &FileCtx<'_>, bsig: &[usize], end: usize) -> Option<usize> {
    let mut k = end;
    loop {
        let t = *bsig.get(k)?;
        if ctx.is_punct(t, ']') {
            // Walk back to the matching `[`, then the token before it.
            let mut depth = 0i64;
            loop {
                let tt = bsig[k];
                if ctx.is_punct(tt, ']') {
                    depth += 1;
                } else if ctx.is_punct(tt, '[') {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                if k == 0 {
                    return None;
                }
                k -= 1;
            }
            if k == 0 {
                return None;
            }
            k -= 1;
        } else if matches!(ctx.tokens[t].kind, TokenKind::Ident | TokenKind::Number) {
            if k > 0 && ctx.is_punct(bsig[k - 1], '.') {
                if k < 2 {
                    return None;
                }
                k -= 2;
            } else if ctx.tokens[t].kind == TokenKind::Ident {
                // Path segments (`Mod::CONST = …` can't happen; `::`
                // before the ident means this is not a local capture).
                if k > 0 && ctx.is_punct(bsig[k - 1], ':') {
                    return None;
                }
                return Some(k);
            } else {
                return None;
            }
        } else {
            return None;
        }
    }
}
