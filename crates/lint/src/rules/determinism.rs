//! The v1 determinism/hermeticity symbol rules, ported onto the
//! visitor context: wall-clock reads, unordered containers, raw
//! threads, ambient environment reads. Each is an allowlist rule — a
//! handful of named files own the hazard, everywhere else it is a
//! finding.

use super::{ENV_READ, RAW_THREAD, UNORDERED_ITERATION, WALL_CLOCK};
use crate::visit::FileCtx;
use crate::Diagnostic;

/// The one file allowed to read real time: the bench harness itself.
const WALL_CLOCK_ALLOWED: &[&str] = &["crates/rng/src/bench.rs"];

/// The one crate allowed to spawn OS threads: the deterministic pool.
const RAW_THREAD_ALLOWED: &[&str] = &["crates/parallel/src/lib.rs"];

/// Allowlisted `std::env` sites: the `INCAM_*` knobs documented in
/// README ("Hermetic builds" / "Parallel execution") plus the repro
/// binary's CLI argument parsing.
const ENV_READ_ALLOWED: &[&str] = &[
    "crates/rng/src/bench.rs",       // INCAM_BENCH_DIR, INCAM_BENCH_SAMPLES
    "crates/rng/src/prop.rs",        // INCAM_PROPTEST_SEED, INCAM_PROPTEST_CASES
    "crates/parallel/src/lib.rs",    // INCAM_THREADS
    "crates/bench/src/bin/repro.rs", // std::env::args CLI parsing
];

/// Runs the four symbol rules over one file.
pub fn check(ctx: &FileCtx<'_>, diags: &mut Vec<Diagnostic>) {
    if !WALL_CLOCK_ALLOWED.contains(&ctx.relpath) {
        for tok in ctx.idents(&["Instant", "SystemTime"]) {
            diags.push(ctx.diag(
                WALL_CLOCK,
                tok,
                format!(
                    "`{}` is a wall-clock read; model time through the deterministic cost \
                     framework (only the bench harness measures real time)",
                    tok.text(ctx.src)
                ),
            ));
        }
    }

    if !ctx.in_test_tree() {
        for tok in ctx.idents(&["HashMap", "HashSet"]) {
            if ctx.in_cfg_test(tok.line) {
                continue;
            }
            diags.push(ctx.diag(
                UNORDERED_ITERATION,
                tok,
                format!(
                    "`{}` iterates in arbitrary order; use Vec or BTreeMap/BTreeSet so \
                     report-visible state is byte-stable",
                    tok.text(ctx.src)
                ),
            ));
        }
    }

    if !RAW_THREAD_ALLOWED.contains(&ctx.relpath) {
        for tok in ctx.path_pattern("std", "thread") {
            diags.push(
                ctx.diag(
                    RAW_THREAD,
                    tok,
                    "`std::thread` outside incam-parallel; spawn work through the deterministic \
                 worker pool (incam_parallel::par_*)"
                        .to_string(),
                ),
            );
        }
    }

    if !ENV_READ_ALLOWED.contains(&ctx.relpath) {
        for tok in ctx.path_pattern("std", "env") {
            diags.push(
                ctx.diag(
                    ENV_READ,
                    tok,
                    "`std::env` outside the allowlisted INCAM_* sites; thread configuration \
                 through explicit parameters"
                        .to_string(),
                ),
            );
        }
    }
}
