//! The determinism, hermeticity, race and numeric-safety rules.
//!
//! v2 of the engine: every Rust source is lexed *and parsed* (see
//! [`crate::parser`]) into a [`FileCtx`], and the
//! rules are small visitor passes over that context — token-pattern
//! scans for the symbol rules, closure walks for the race detector,
//! parsed `cfg(test)` regions instead of the v1 brace heuristic. The
//! rules name *hazards* (a wall-clock symbol, an unordered container, a
//! mutated capture in a parallel closure) that a reviewer then either
//! removes or justifies with a reasoned pragma — they are not a type
//! checker, and a determined author can evade them; CI review is the
//! backstop for that.
//!
//! Rule families:
//! - [`determinism`] — wall-clock, unordered-iteration, raw-thread,
//!   env-read (the v1 allowlist rules).
//! - [`races`] — par-capture-mut and par-float-accum, the determinism
//!   race detector over closures passed to `incam_parallel::par_*`.
//! - [`numeric`] — lossy-cast and unchecked-arith in the hot-kernel
//!   crates, plus fallible-unwrap over all non-test library code.
//! - [`hygiene`] — crate-root lint attributes.
//!
//! `registry-dep` stays in [`crate::manifest`] (it reads TOML, not
//! Rust) and the cross-artifact checks live in [`crate::coherence`].

pub mod determinism;
pub mod hygiene;
pub mod numeric;
pub mod races;

use crate::lexer::TokenKind;
use crate::pragma::{self, Pragma};
use crate::visit::FileCtx;
use crate::{AuditEntry, Diagnostic};

/// `Instant`/`SystemTime` — wall-clock reads outside the bench harness.
pub const WALL_CLOCK: &str = "wall-clock";
/// `HashMap`/`HashSet` in non-test code — unstable iteration order.
pub const UNORDERED_ITERATION: &str = "unordered-iteration";
/// `std::thread` outside the deterministic worker pool.
pub const RAW_THREAD: &str = "raw-thread";
/// `std::env` outside the allowlisted `INCAM_*` configuration sites.
pub const ENV_READ: &str = "env-read";
/// Non-`path` dependencies in a `Cargo.toml`.
pub const REGISTRY_DEP: &str = "registry-dep";
/// Crate roots missing `#![forbid(unsafe_code)]` / a `missing_docs` lint.
pub const CRATE_HYGIENE: &str = "crate-hygiene";
/// `.unwrap()`/`.expect(...)` in non-test library code.
pub const FALLIBLE_UNWRAP: &str = "fallible-unwrap";
/// Mutation of captured state inside an `incam_parallel` closure.
pub const PAR_CAPTURE_MUT: &str = "par-capture-mut";
/// Order-sensitive compound accumulation into a captured binding
/// inside an `incam_parallel` closure.
pub const PAR_FLOAT_ACCUM: &str = "par-float-accum";
/// Narrowing `as` casts without an explicit clamp in hot-kernel crates.
pub const LOSSY_CAST: &str = "lossy-cast";
/// Wrapping/unchecked arithmetic in hot-kernel crates.
pub const UNCHECKED_ARITH: &str = "unchecked-arith";
/// Experiment/CI/docs/results drift (see [`crate::coherence`]).
pub const COHERENCE: &str = "coherence";
/// Meta-rule: malformed pragmas, unknown rule ids, missing reasons.
pub const PRAGMA: &str = "pragma";

/// Rules a pragma may suppress ([`PRAGMA`] and [`COHERENCE`] are not
/// suppressible: the former is the meta-rule, the latter is repaired by
/// fixing the artifact drift it names, not by waiving it).
pub const ALLOWABLE_RULES: [&str; 11] = [
    WALL_CLOCK,
    UNORDERED_ITERATION,
    RAW_THREAD,
    ENV_READ,
    REGISTRY_DEP,
    CRATE_HYGIENE,
    FALLIBLE_UNWRAP,
    PAR_CAPTURE_MUT,
    PAR_FLOAT_ACCUM,
    LOSSY_CAST,
    UNCHECKED_ARITH,
];

/// Runs every Rust-source rule over `src`, applying pragma suppression.
///
/// `relpath` is the workspace-relative path with `/` separators; the
/// allowlists and the test/bench-directory exemptions key off it, and it
/// prefixes every diagnostic.
pub fn check_rust_source(relpath: &str, src: &str) -> Vec<Diagnostic> {
    check_rust_source_full(relpath, src).0
}

/// Like [`check_rust_source`], also returning the audit trail of valid
/// suppression pragmas (for `--audit`).
pub fn check_rust_source_full(relpath: &str, src: &str) -> (Vec<Diagnostic>, Vec<AuditEntry>) {
    let ctx = FileCtx::new(relpath, src);
    check_file(&ctx)
}

/// Runs every Rust-source rule over an already-built [`FileCtx`] (the
/// workspace walk builds the context once and reuses its parse for the
/// module map).
pub fn check_file(ctx: &FileCtx<'_>) -> (Vec<Diagnostic>, Vec<AuditEntry>) {
    let relpath = ctx.relpath;
    let mut diags = Vec::new();
    let pragmas = collect_pragmas(ctx, &mut diags);

    determinism::check(ctx, &mut diags);
    races::check(ctx, &mut diags);
    numeric::check(ctx, &mut diags);
    hygiene::check(ctx, &mut diags);

    let audit = pragmas
        .iter()
        .map(|p| AuditEntry {
            path: relpath.to_string(),
            line: p.line,
            rule: p.rule,
            reason: p.reason.clone(),
        })
        .collect();
    (suppress(diags, &pragmas), audit)
}

/// Extracts pragmas from plain `//` comments (doc comments excluded);
/// malformed ones become [`PRAGMA`] diagnostics.
fn collect_pragmas(ctx: &FileCtx<'_>, diags: &mut Vec<Diagnostic>) -> Vec<Pragma> {
    let mut pragmas = Vec::new();
    for tok in &ctx.tokens {
        if tok.kind != TokenKind::LineComment {
            continue;
        }
        let text = tok.text(ctx.src);
        if text.starts_with("///") || text.starts_with("//!") {
            continue;
        }
        match pragma::parse_pragma(&text[2..]) {
            Ok(None) => {}
            Ok(Some((rule, reason))) => pragmas.push(Pragma {
                line: tok.line,
                rule,
                reason,
            }),
            Err(e) => diags.push(Diagnostic {
                path: ctx.relpath.to_string(),
                line: tok.line,
                col: tok.col,
                rule: PRAGMA,
                message: e.message(),
            }),
        }
    }
    pragmas
}

/// Drops diagnostics whose rule is allowed by a pragma on the same line
/// or the line directly above, then sorts and deduplicates for
/// deterministic output.
pub fn suppress(diags: Vec<Diagnostic>, pragmas: &[Pragma]) -> Vec<Diagnostic> {
    let mut out: Vec<Diagnostic> = diags
        .into_iter()
        .filter(|d| {
            !pragmas
                .iter()
                .any(|p| p.rule == d.rule && (d.line == p.line || d.line == p.line + 1))
        })
        .collect();
    out.sort_by(|a, b| {
        (&a.path, a.line, a.col, a.rule, &a.message)
            .cmp(&(&b.path, b.line, b.col, b.rule, &b.message))
    });
    out.dedup();
    out
}

/// The v1 `cfg(test)` brace-matching heuristic, kept as the oracle the
/// parser-based extraction is compared against in `tests/parser_prop.rs`.
///
/// Inclusive line ranges of `#[cfg(test)]`-gated items (the attribute
/// line through the closing brace of the item body). Items gated but
/// braceless (`mod tests;`) contribute no range.
pub fn brace_cfg_test_line_spans(src: &str) -> Vec<(u32, u32)> {
    let tokens = crate::lexer::lex(src);
    let sig: Vec<&crate::lexer::Token> = tokens
        .iter()
        .filter(|t| {
            !matches!(
                t.kind,
                TokenKind::Whitespace | TokenKind::LineComment | TokenKind::BlockComment
            )
        })
        .collect();
    let is_punct =
        |t: &crate::lexer::Token, c: char| t.kind == TokenKind::Punct && t.text(src).starts_with(c);
    let is_ident =
        |t: &crate::lexer::Token, name: &str| t.kind == TokenKind::Ident && t.text(src) == name;
    let mut spans = Vec::new();
    let mut i = 0;
    while i + 4 < sig.len() {
        let is_cfg_attr = is_punct(sig[i], '#')
            && is_punct(sig[i + 1], '[')
            && is_ident(sig[i + 2], "cfg")
            && is_punct(sig[i + 3], '(');
        if !is_cfg_attr {
            i += 1;
            continue;
        }
        // Scan the balanced (...) group looking for a `test` token.
        let mut j = i + 4;
        let mut depth = 1u32;
        let mut saw_test = false;
        while j < sig.len() && depth > 0 {
            if is_punct(sig[j], '(') {
                depth += 1;
            } else if is_punct(sig[j], ')') {
                depth -= 1;
            } else if is_ident(sig[j], "test") {
                saw_test = true;
            }
            j += 1;
        }
        // Expect the closing `]`, then the gated item's body brace.
        if !saw_test || j >= sig.len() || !is_punct(sig[j], ']') {
            i = j;
            continue;
        }
        let mut k = j + 1;
        while k < sig.len() && !is_punct(sig[k], '{') && !is_punct(sig[k], ';') {
            k += 1;
        }
        if k >= sig.len() || is_punct(sig[k], ';') {
            i = k;
            continue;
        }
        let open = k;
        let mut braces = 1u32;
        k += 1;
        while k < sig.len() && braces > 0 {
            if is_punct(sig[k], '{') {
                braces += 1;
            } else if is_punct(sig[k], '}') {
                braces -= 1;
            }
            k += 1;
        }
        let close_line = sig[(k.max(open + 1) - 1).min(sig.len() - 1)].line;
        spans.push((sig[i].line, close_line));
        i = k;
    }
    spans
}
