//! Machine-readable output: `--format json` and the `--audit` report.
//!
//! The JSON document is hand-rendered (this crate has zero
//! dependencies) against a fixed shape, and `crates/bench` validates it
//! in `tests/lintjson.rs` with the same `benchjson` parser that gates
//! the bench baselines — so the schema is enforced from the consumer
//! side, exactly like `BENCH_*.json`:
//!
//! ```json
//! {
//!   "schema": "incam-lint/1",
//!   "files_scanned": 187,
//!   "clean": true,
//!   "diagnostics": [
//!     {"path": "…", "line": 1, "col": 1, "rule": "…", "message": "…"}
//!   ],
//!   "allow_pragmas": [
//!     {"path": "…", "line": 1, "rule": "…", "reason": "…"}
//!   ]
//! }
//! ```
//!
//! The audit report is a plain-text listing of every suppression in the
//! tree (`path:line: allow(rule) — reason`), byte-compared in CI
//! against `results/lint-audit.txt` so a new pragma cannot land without
//! the diff showing up in review.

use crate::Report;
use std::fmt::Write as _;

/// Escapes `s` for a JSON string literal.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders a whole-workspace report as the `incam-lint/1` JSON document.
pub fn render_report(report: &Report) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"schema\": \"incam-lint/1\",");
    let _ = writeln!(out, "  \"files_scanned\": {},", report.files_scanned);
    let _ = writeln!(
        out,
        "  \"clean\": {},",
        if report.diagnostics.is_empty() {
            "true"
        } else {
            "false"
        }
    );
    out.push_str("  \"diagnostics\": [");
    for (i, d) in report.diagnostics.iter().enumerate() {
        let sep = if i + 1 < report.diagnostics.len() {
            ","
        } else {
            ""
        };
        let _ = write!(
            out,
            "\n    {{\"path\": \"{}\", \"line\": {}, \"col\": {}, \"rule\": \"{}\", \
             \"message\": \"{}\"}}{sep}",
            esc(&d.path),
            d.line,
            d.col,
            d.rule,
            esc(&d.message)
        );
    }
    if report.diagnostics.is_empty() {
        out.push_str("],\n");
    } else {
        out.push_str("\n  ],\n");
    }
    out.push_str("  \"allow_pragmas\": [");
    for (i, a) in report.audit.iter().enumerate() {
        let sep = if i + 1 < report.audit.len() { "," } else { "" };
        let _ = write!(
            out,
            "\n    {{\"path\": \"{}\", \"line\": {}, \"rule\": \"{}\", \"reason\": \"{}\"}}{sep}",
            esc(&a.path),
            a.line,
            a.rule,
            esc(&a.reason)
        );
    }
    if report.audit.is_empty() {
        out.push_str("]\n");
    } else {
        out.push_str("\n  ]\n");
    }
    out.push_str("}\n");
    out
}

/// Renders the plain-text suppression audit: one line per allow pragma,
/// sorted by (path, line), plus a trailing count.
pub fn render_audit(report: &Report) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "incam-lint suppression audit — {} allow pragma(s) in {} files scanned",
        report.audit.len(),
        report.files_scanned
    );
    for a in &report.audit {
        let _ = writeln!(
            out,
            "{}:{}: allow({}) — {}",
            a.path, a.line, a.rule, a.reason
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AuditEntry, Diagnostic, Report};

    fn sample() -> Report {
        Report {
            diagnostics: vec![Diagnostic {
                path: "crates/x/src/lib.rs".to_string(),
                line: 3,
                col: 7,
                rule: "wall-clock",
                message: "a \"quoted\" hazard".to_string(),
            }],
            audit: vec![AuditEntry {
                path: "crates/y/src/lib.rs".to_string(),
                line: 9,
                rule: "env-read",
                reason: "CLI parsing".to_string(),
            }],
            files_scanned: 2,
        }
    }

    #[test]
    fn json_escapes_and_counts() {
        let doc = render_report(&sample());
        assert!(doc.contains("\"schema\": \"incam-lint/1\""));
        assert!(doc.contains("\"files_scanned\": 2"));
        assert!(doc.contains("\"clean\": false"));
        assert!(doc.contains("a \\\"quoted\\\" hazard"));
        assert!(doc.contains("\"reason\": \"CLI parsing\""));
    }

    #[test]
    fn empty_report_renders_empty_arrays() {
        let report = Report {
            diagnostics: Vec::new(),
            audit: Vec::new(),
            files_scanned: 0,
        };
        let doc = render_report(&report);
        assert!(doc.contains("\"diagnostics\": [],"));
        assert!(doc.contains("\"allow_pragmas\": []"));
        assert!(doc.contains("\"clean\": true"));
    }

    #[test]
    fn audit_lists_every_pragma() {
        let text = render_audit(&sample());
        assert!(text.starts_with("incam-lint suppression audit — 1 allow pragma(s)"));
        assert!(text.contains("crates/y/src/lib.rs:9: allow(env-read) — CLI parsing"));
    }
}
