//! The per-line escape hatch: `incam-lint: allow(<rule>) — <reason>`.
//!
//! A pragma lives in a plain comment (`//` in Rust, `#` in TOML) and
//! suppresses one rule on the pragma's own line and on the line directly
//! below it — covering both trailing-comment style and comment-above
//! style. The reason is mandatory: an allow without a written
//! justification is itself a violation (rule id `pragma`), so every
//! suppression in the tree documents why the hazard is acceptable.
//!
//! Doc comments (`///`, `//!`) are never parsed for pragmas, so
//! documentation may quote the syntax freely.

use crate::rules;

/// A parsed, valid pragma: `rule` is suppressed on `line` and `line + 1`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Pragma {
    /// 1-based line the pragma comment starts on.
    pub line: u32,
    /// The rule id inside `allow(...)`.
    pub rule: &'static str,
    /// The mandatory written justification after the dash.
    pub reason: String,
}

/// Why a comment that mentions `incam-lint:` failed to parse as a pragma.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PragmaError {
    /// No `allow(<rule>)` clause after the `incam-lint:` marker.
    Malformed,
    /// The rule id is not one incam-lint knows.
    UnknownRule(String),
    /// No `— <reason>` (or `-- <reason>`) after the allow clause.
    MissingReason,
}

impl PragmaError {
    /// The diagnostic message for this error.
    pub fn message(&self) -> String {
        match self {
            PragmaError::Malformed | PragmaError::MissingReason => format!(
                "pragma must be `incam-lint: allow(<rule>) — <reason>` with a non-empty reason \
                 (rules: {})",
                rules::ALLOWABLE_RULES.join(", ")
            ),
            PragmaError::UnknownRule(r) => format!(
                "unknown rule `{r}` in pragma (rules: {})",
                rules::ALLOWABLE_RULES.join(", ")
            ),
        }
    }
}

/// Parses the body of one comment (text after the `//` or `#` marker).
///
/// Returns `Ok(None)` when the comment is not a pragma at all,
/// `Ok(Some((rule, reason)))` for a valid pragma, and an error when the
/// comment clearly intends to be a pragma but is malformed, names an
/// unknown rule, or omits the mandatory reason.
pub fn parse_pragma(body: &str) -> Result<Option<(&'static str, String)>, PragmaError> {
    let Some(ix) = body.find("incam-lint:") else {
        return Ok(None);
    };
    let rest = body[ix + "incam-lint:".len()..].trim_start();
    let Some(rest) = rest.strip_prefix("allow(") else {
        return Err(PragmaError::Malformed);
    };
    let Some(close) = rest.find(')') else {
        return Err(PragmaError::Malformed);
    };
    let rule = rest[..close].trim();
    let Some(rule) = rules::ALLOWABLE_RULES.iter().find(|r| **r == rule) else {
        return Err(PragmaError::UnknownRule(rule.to_string()));
    };
    let after = rest[close + 1..].trim_start();
    let reason = after
        .strip_prefix('—')
        .or_else(|| after.strip_prefix("--"))
        .map(str::trim);
    match reason {
        Some(r) if !r.is_empty() => Ok(Some((rule, r.to_string()))),
        _ => Err(PragmaError::MissingReason),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordinary_comments_are_not_pragmas() {
        assert_eq!(parse_pragma(" just a note about timing"), Ok(None));
    }

    #[test]
    fn valid_pragma_em_dash() {
        assert_eq!(
            parse_pragma(" incam-lint: allow(wall-clock) — bench harness measures real time"),
            Ok(Some((
                "wall-clock",
                "bench harness measures real time".to_string()
            )))
        );
    }

    #[test]
    fn valid_pragma_double_dash() {
        assert_eq!(
            parse_pragma(" incam-lint: allow(env-read) -- CLI arg parsing"),
            Ok(Some(("env-read", "CLI arg parsing".to_string())))
        );
    }

    #[test]
    fn reason_is_mandatory() {
        assert_eq!(
            parse_pragma(" incam-lint: allow(wall-clock)"),
            Err(PragmaError::MissingReason)
        );
        assert_eq!(
            parse_pragma(" incam-lint: allow(wall-clock) — "),
            Err(PragmaError::MissingReason)
        );
    }

    #[test]
    fn unknown_rule_is_reported() {
        assert_eq!(
            parse_pragma(" incam-lint: allow(no-such-rule) — whatever"),
            Err(PragmaError::UnknownRule("no-such-rule".to_string()))
        );
    }

    #[test]
    fn malformed_pragma_is_reported() {
        assert_eq!(
            parse_pragma(" incam-lint: disable everything"),
            Err(PragmaError::Malformed)
        );
    }
}
