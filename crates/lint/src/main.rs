//! CLI for the determinism & hermeticity pass.
//!
//! ```text
//! cargo run -p incam-lint [root]                # human-readable findings
//! cargo run -p incam-lint -- --format json      # incam-lint/1 JSON document
//! cargo run -p incam-lint -- --audit            # suppression-pragma report
//! ```
//!
//! `root` defaults to this repository. Exit status: 0 clean, 1
//! violations, 2 usage/I-O error — so ci.sh can gate on it directly.
//! `--audit` always exits 0 on success; CI byte-compares its output
//! against `results/lint-audit.txt` so suppression drift shows up in
//! review.

use std::path::{Path, PathBuf};

fn main() {
    let mut root: Option<PathBuf> = None;
    let mut format_json = false;
    let mut audit = false;
    // incam-lint: allow(env-read) — CLI argument parsing, not ambient configuration
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--format" => match args.next().as_deref() {
                Some("json") => format_json = true,
                Some("text") => format_json = false,
                other => {
                    eprintln!(
                        "incam-lint: --format expects `json` or `text`, got {:?}",
                        other.unwrap_or("nothing")
                    );
                    std::process::exit(2);
                }
            },
            "--audit" => audit = true,
            "--help" | "-h" => {
                println!("usage: incam-lint [root] [--format json|text] [--audit]");
                return;
            }
            other if root.is_none() && !other.starts_with('-') => {
                root = Some(PathBuf::from(other));
            }
            other => {
                eprintln!("incam-lint: unknown argument `{other}` (try --help)");
                std::process::exit(2);
            }
        }
    }
    let root = root.unwrap_or_else(|| Path::new(env!("CARGO_MANIFEST_DIR")).join("..").join(".."));
    match incam_lint::lint_workspace(&root) {
        Ok(report) => {
            if audit {
                print!("{}", incam_lint::json::render_audit(&report));
                return;
            }
            if format_json {
                print!("{}", incam_lint::json::render_report(&report));
                if !report.diagnostics.is_empty() {
                    std::process::exit(1);
                }
                return;
            }
            for diag in &report.diagnostics {
                println!("{diag}");
            }
            if report.diagnostics.is_empty() {
                println!(
                    "incam-lint: clean ({} files scanned under {})",
                    report.files_scanned,
                    root.display()
                );
            } else {
                eprintln!(
                    "incam-lint: {} violation(s) in {} files scanned",
                    report.diagnostics.len(),
                    report.files_scanned
                );
                std::process::exit(1);
            }
        }
        Err(err) => {
            eprintln!("incam-lint: error walking {}: {err}", root.display());
            std::process::exit(2);
        }
    }
}
