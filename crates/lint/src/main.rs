//! CLI for the determinism & hermeticity pass.
//!
//! `cargo run -p incam-lint [root]` lints the workspace rooted at `root`
//! (default: this repository), printing one `file:line:col: [rule-id]
//! message` line per finding. Exit status: 0 clean, 1 violations, 2 I/O
//! error — so ci.sh can gate on it directly.

use std::path::{Path, PathBuf};

fn main() {
    // incam-lint: allow(env-read) — CLI argument parsing, not ambient configuration
    let root = std::env::args()
        .nth(1)
        .map(PathBuf::from)
        .unwrap_or_else(|| Path::new(env!("CARGO_MANIFEST_DIR")).join("..").join(".."));
    match incam_lint::lint_workspace(&root) {
        Ok(report) => {
            for diag in &report.diagnostics {
                println!("{diag}");
            }
            if report.diagnostics.is_empty() {
                println!(
                    "incam-lint: clean ({} files scanned under {})",
                    report.files_scanned,
                    root.display()
                );
            } else {
                eprintln!(
                    "incam-lint: {} violation(s) in {} files scanned",
                    report.diagnostics.len(),
                    report.files_scanned
                );
                std::process::exit(1);
            }
        }
        Err(err) => {
            eprintln!("incam-lint: error walking {}: {err}", root.display());
            std::process::exit(2);
        }
    }
}
