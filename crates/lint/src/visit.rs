//! The per-file analysis context rules run against.
//!
//! v1 rules each re-derived what they needed from the raw token stream.
//! [`FileCtx`] builds everything once per file — the token array, the
//! significant-token index, the parsed [`crate::parser::File`], and the
//! parsed `cfg(test)` line spans — and exposes the small query surface
//! the rule modules share: token-pattern scans, test-scope lookups, and
//! a closure walker that respects `cfg(test)` gating.

use crate::lexer::{self, Token, TokenKind};
use crate::parser::{self, Closure, Item};
use crate::Diagnostic;

/// Everything a rule needs to know about one Rust source file.
pub struct FileCtx<'s> {
    /// Workspace-relative path with `/` separators.
    pub relpath: &'s str,
    /// The file's source text.
    pub src: &'s str,
    /// All tokens, in order (the parser's indices point into this).
    pub tokens: Vec<Token>,
    /// Indices of significant (non-trivia) tokens.
    pub sig: Vec<usize>,
    /// The parsed item tree.
    pub file: parser::File,
    /// Inclusive 1-based line ranges of `cfg(test)`/`#[test]` items.
    pub test_spans: Vec<(u32, u32)>,
}

impl<'s> FileCtx<'s> {
    /// Lexes and parses `src` once, ready for every rule.
    pub fn new(relpath: &'s str, src: &'s str) -> Self {
        let tokens = lexer::lex(src);
        let file = parser::parse(src, &tokens);
        let test_spans = file.cfg_test_line_spans(&tokens);
        let sig = (0..tokens.len())
            .filter(|&i| {
                !matches!(
                    tokens[i].kind,
                    TokenKind::Whitespace | TokenKind::LineComment | TokenKind::BlockComment
                )
            })
            .collect();
        FileCtx {
            relpath,
            src,
            tokens,
            sig,
            file,
            test_spans,
        }
    }

    /// True for sources under a `tests/` or `benches/` directory, where
    /// determinism rules do not apply (scaffolding never reaches a
    /// report).
    pub fn in_test_tree(&self) -> bool {
        self.relpath
            .split('/')
            .any(|c| c == "tests" || c == "benches")
    }

    /// True when `line` falls inside a parsed `cfg(test)` region.
    pub fn in_cfg_test(&self, line: u32) -> bool {
        self.test_spans
            .iter()
            .any(|(a, b)| (*a..=*b).contains(&line))
    }

    /// The text of token `ix`.
    pub fn text(&self, ix: usize) -> &'s str {
        self.tokens[ix].text(self.src)
    }

    /// True when token `ix` is punctuation starting with `c`.
    pub fn is_punct(&self, ix: usize, c: char) -> bool {
        self.tokens[ix].kind == TokenKind::Punct && self.text(ix).starts_with(c)
    }

    /// True when token `ix` is the identifier `name`.
    pub fn is_ident(&self, ix: usize, name: &str) -> bool {
        self.tokens[ix].kind == TokenKind::Ident && self.text(ix) == name
    }

    /// A diagnostic at token `tok` in this file.
    pub fn diag(&self, rule: &'static str, tok: &Token, message: String) -> Diagnostic {
        Diagnostic {
            path: self.relpath.to_string(),
            line: tok.line,
            col: tok.col,
            rule,
            message,
        }
    }

    /// Significant tokens that are identifiers with text in `names`.
    pub fn idents(&self, names: &[&str]) -> Vec<&Token> {
        self.sig
            .iter()
            .map(|&i| &self.tokens[i])
            .filter(|t| t.kind == TokenKind::Ident && names.contains(&t.text(self.src)))
            .collect()
    }

    /// Occurrences of the two-segment path `first::second` in
    /// significant tokens, returned at the position of `first`.
    pub fn path_pattern(&self, first: &str, second: &str) -> Vec<&Token> {
        let mut out = Vec::new();
        for w in self.sig.windows(4) {
            if self.is_ident(w[0], first)
                && self.is_punct(w[1], ':')
                && self.is_punct(w[2], ':')
                && self.is_ident(w[3], second)
            {
                out.push(&self.tokens[w[0]]);
            }
        }
        out
    }

    /// Method-call sites `.name(` where `name` is in `names`, returned
    /// at the position of the method identifier. Idents are whole
    /// tokens, so `.unwrap_or(` never matches `unwrap`.
    pub fn method_calls(&self, names: &[&str]) -> Vec<&Token> {
        let mut out = Vec::new();
        for w in self.sig.windows(3) {
            if self.is_punct(w[0], '.')
                && self.tokens[w[1]].kind == TokenKind::Ident
                && names.contains(&self.text(w[1]))
                && self.is_punct(w[2], '(')
            {
                out.push(&self.tokens[w[1]]);
            }
        }
        out
    }

    /// Visits every closure in every non-`cfg(test)` item, recursively.
    pub fn each_closure(&self, mut f: impl FnMut(&Item, &Closure)) {
        fn walk(items: &[Item], f: &mut impl FnMut(&Item, &Closure)) {
            for item in items {
                if item.cfg_test {
                    continue;
                }
                for closure in &item.closures {
                    f(item, closure);
                }
                walk(&item.children, f);
            }
        }
        walk(&self.file.items, &mut f);
    }
}
