//! # incam-lint — determinism & hermeticity static analysis
//!
//! The workspace's load-bearing invariant — byte-identical reports
//! across seeds and thread counts, offline zero-registry builds — is
//! enforced at runtime by the ci.sh diff gates (threads 1 vs 4,
//! double-run smoke). This crate enforces it at the *source* level: a
//! total Rust lexer ([`lexer`]) feeds a lightweight recursive-descent
//! parser ([`parser`]) whose item tree a visitor-based rule engine
//! ([`visit`], [`rules`], [`manifest`]) walks for every workspace `.rs`
//! file and `Cargo.toml`, reporting hazards before they ever reach a
//! runtime diff. A cross-artifact pass ([`coherence`]) then checks that
//! the experiment registry, CI gates, docs and committed results agree
//! with each other.
//!
//! The rules:
//!
//! | rule | hazard |
//! |------|--------|
//! | `wall-clock` | `Instant`/`SystemTime` outside the bench harness |
//! | `unordered-iteration` | `HashMap`/`HashSet` in non-test code |
//! | `raw-thread` | `std::thread` outside incam-parallel |
//! | `env-read` | `std::env` outside the allowlisted `INCAM_*` sites |
//! | `registry-dep` | non-`path` dependencies in any `Cargo.toml` |
//! | `crate-hygiene` | crate roots missing `#![forbid(unsafe_code)]` or a `missing_docs` lint |
//! | `fallible-unwrap` | `.unwrap()`/`.expect(` in non-test library code |
//! | `par-capture-mut` | mutation of captured state in an `incam_parallel` closure |
//! | `par-float-accum` | order-sensitive `+=` into a capture in an `incam_parallel` closure |
//! | `lossy-cast` | unguarded narrowing `as` casts in hot-kernel crates |
//! | `unchecked-arith` | wrapping/unchecked ops in hot-kernel crates |
//! | `coherence` | experiment/CI/docs/results/module-map drift |
//! | `pragma` | malformed / reasonless suppression pragmas |
//!
//! Suppression is per line, and the reason is mandatory (see [`pragma`]):
//!
//! ```text
//! let t = Instant::now(); // incam-lint: allow(wall-clock) — measuring the harness itself
//! ```
//!
//! Diagnostics print as `file:line:col: [rule-id] message`, sorted by
//! (path, line, col, rule, message) and deduplicated; the CLI
//! (`cargo run -p incam-lint`) exits nonzero when any are emitted, which
//! is how ci.sh consumes it. `--format json` renders the report as a
//! schema-checked JSON document ([`json`]) and `--audit` lists every
//! suppression pragma in the tree with its rule, location and reason.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod coherence;
pub mod json;
pub mod lexer;
pub mod manifest;
pub mod parser;
pub mod pragma;
pub mod rules;
pub mod visit;
pub mod workspace;

use std::fmt;
use std::fs;
use std::io;
use std::path::Path;

pub use manifest::check_manifest;
pub use rules::check_rust_source;

/// One finding: `path:line:col: [rule] message`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Workspace-relative path with `/` separators.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column (in characters).
    pub col: u32,
    /// Rule id, e.g. `wall-clock`.
    pub rule: &'static str,
    /// Human-readable explanation of the hazard.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}:{}: [{}] {}",
            self.path, self.line, self.col, self.rule, self.message
        )
    }
}

/// One valid suppression pragma, for the `--audit` report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AuditEntry {
    /// Workspace-relative path of the file carrying the pragma.
    pub path: String,
    /// 1-based line the pragma comment starts on.
    pub line: u32,
    /// The suppressed rule id.
    pub rule: &'static str,
    /// The written justification.
    pub reason: String,
}

/// Result of a whole-workspace pass.
#[derive(Debug)]
pub struct Report {
    /// All findings, sorted by (path, line, col, rule, message),
    /// deduplicated.
    pub diagnostics: Vec<Diagnostic>,
    /// Every valid allow pragma in the tree, sorted by (path, line).
    pub audit: Vec<AuditEntry>,
    /// How many files were scanned (`.rs` + `Cargo.toml`).
    pub files_scanned: usize,
}

/// Lints every `.rs` and `Cargo.toml` under `root`, skipping `target/`,
/// dot-directories, and this crate's own bad-source fixtures, then runs
/// the cross-artifact coherence pass over the same tree.
///
/// File order and diagnostic order are deterministic (sorted), so the
/// output is byte-stable across platforms and runs.
pub fn lint_workspace(root: &Path) -> io::Result<Report> {
    let files = workspace::collect_files(root)?;
    let files_scanned = files.len();
    let mut diagnostics = Vec::new();
    let mut audit = Vec::new();
    let mut modmap = workspace::ModuleMap::default();
    for path in files {
        let rel = workspace::relpath(root, &path);
        let bytes = fs::read(&path)?;
        let src = String::from_utf8_lossy(&bytes);
        if rel.ends_with("Cargo.toml") {
            let (d, a) = manifest::check_manifest_full(&rel, &src);
            diagnostics.extend(d);
            audit.extend(a);
        } else {
            let ctx = visit::FileCtx::new(&rel, &src);
            let (d, a) = rules::check_file(&ctx);
            diagnostics.extend(d);
            audit.extend(a);
            modmap.record(&rel, &ctx.file);
        }
    }
    diagnostics.extend(coherence::check(root, &modmap));
    diagnostics.sort_by(|a, b| {
        (&a.path, a.line, a.col, a.rule, &a.message)
            .cmp(&(&b.path, b.line, b.col, b.rule, &b.message))
    });
    diagnostics.dedup();
    audit.sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
    Ok(Report {
        diagnostics,
        audit,
        files_scanned,
    })
}
