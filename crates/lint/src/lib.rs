//! # incam-lint — determinism & hermeticity static analysis
//!
//! The workspace's load-bearing invariant — byte-identical reports
//! across seeds and thread counts, offline zero-registry builds — is
//! enforced at runtime by the ci.sh diff gates (threads 1 vs 4,
//! double-run smoke). This crate enforces it at the *source* level: a
//! lightweight Rust lexer ([`lexer`]) feeds a rule engine ([`rules`],
//! [`manifest`]) that walks every workspace `.rs` file and `Cargo.toml`
//! and reports hazards before they ever reach a runtime diff.
//!
//! The rules:
//!
//! | rule | hazard |
//! |------|--------|
//! | `wall-clock` | `Instant`/`SystemTime` outside the bench harness |
//! | `unordered-iteration` | `HashMap`/`HashSet` in non-test code |
//! | `raw-thread` | `std::thread` outside incam-parallel |
//! | `env-read` | `std::env` outside the allowlisted `INCAM_*` sites |
//! | `registry-dep` | non-`path` dependencies in any `Cargo.toml` |
//! | `crate-hygiene` | crate roots missing `#![forbid(unsafe_code)]` or a `missing_docs` lint |
//! | `pragma` | malformed / reasonless suppression pragmas |
//!
//! Suppression is per line, and the reason is mandatory (see [`pragma`]):
//!
//! ```text
//! let t = Instant::now(); // incam-lint: allow(wall-clock) — measuring the harness itself
//! ```
//!
//! Diagnostics print as `file:line:col: [rule-id] message`, and the CLI
//! (`cargo run -p incam-lint`) exits nonzero when any are emitted, which
//! is how ci.sh consumes it.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod lexer;
pub mod manifest;
pub mod pragma;
pub mod rules;

use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

pub use manifest::check_manifest;
pub use rules::check_rust_source;

/// One finding: `path:line:col: [rule] message`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Workspace-relative path with `/` separators.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column (in characters).
    pub col: u32,
    /// Rule id, e.g. `wall-clock`.
    pub rule: &'static str,
    /// Human-readable explanation of the hazard.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}:{}: [{}] {}",
            self.path, self.line, self.col, self.rule, self.message
        )
    }
}

/// Result of a whole-workspace pass.
#[derive(Debug)]
pub struct Report {
    /// All findings, sorted by (path, line, col, rule).
    pub diagnostics: Vec<Diagnostic>,
    /// How many files were scanned (`.rs` + `Cargo.toml`).
    pub files_scanned: usize,
}

/// Lints every `.rs` and `Cargo.toml` under `root`, skipping `target/`,
/// dot-directories, and this crate's own bad-source fixtures.
///
/// File order and diagnostic order are deterministic (sorted), so the
/// output is byte-stable across platforms and runs.
pub fn lint_workspace(root: &Path) -> io::Result<Report> {
    let files = collect_files(root)?;
    let files_scanned = files.len();
    let mut diagnostics = Vec::new();
    for path in files {
        let rel = relpath(root, &path);
        let bytes = fs::read(&path)?;
        let src = String::from_utf8_lossy(&bytes);
        if rel.ends_with("Cargo.toml") {
            diagnostics.extend(check_manifest(&rel, &src));
        } else {
            diagnostics.extend(check_rust_source(&rel, &src));
        }
    }
    diagnostics
        .sort_by(|a, b| (&a.path, a.line, a.col, a.rule).cmp(&(&b.path, b.line, b.col, b.rule)));
    Ok(Report {
        diagnostics,
        files_scanned,
    })
}

/// Directories never descended into: build output, VCS/CI metadata
/// (dot-dirs), and the lint crate's intentionally-bad fixtures.
fn skip_dir(rel: &str, name: &str) -> bool {
    name.starts_with('.') || name == "target" || rel == "crates/lint/tests/fixtures"
}

fn relpath(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

/// Collects lintable files depth-first with sorted directory entries;
/// the final list is fully sorted for deterministic diagnostics.
fn collect_files(root: &Path) -> io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let mut entries: Vec<_> = fs::read_dir(&dir)?.collect::<Result<_, _>>()?;
        entries.sort_by_key(|e| e.file_name());
        for entry in entries {
            let path = entry.path();
            let name = entry.file_name().to_string_lossy().into_owned();
            let file_type = entry.file_type()?;
            if file_type.is_dir() {
                if !skip_dir(&relpath(root, &path), &name) {
                    stack.push(path);
                }
            } else if file_type.is_file() && (name == "Cargo.toml" || name.ends_with(".rs")) {
                out.push(path);
            }
        }
    }
    out.sort();
    Ok(out)
}
