//! Workspace discovery: which files get linted, and the module map.
//!
//! The walk is deterministic (sorted directory entries, fully sorted
//! final list) so diagnostics are byte-stable across platforms. The
//! [`ModuleMap`] records every `mod name;` declaration seen while the
//! per-file rules run, then answers the two structural questions the
//! coherence pass asks: does every declaration resolve to a file, and
//! is every library source reachable from some declaration (no orphan
//! modules silently excluded from the build)?

use crate::parser::{File, Item, ItemKind};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Directories never descended into: build output, VCS/CI metadata
/// (dot-dirs), and the lint crate's intentionally-bad fixtures.
fn skip_dir(rel: &str, name: &str) -> bool {
    name.starts_with('.') || name == "target" || rel == "crates/lint/tests/fixtures"
}

/// The workspace-relative path of `path` with `/` separators.
pub fn relpath(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

/// Collects lintable files (`.rs` + `Cargo.toml`) depth-first with
/// sorted directory entries; the final list is fully sorted.
pub fn collect_files(root: &Path) -> io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let mut entries: Vec<_> = fs::read_dir(&dir)?.collect::<Result<_, _>>()?;
        entries.sort_by_key(|e| e.file_name());
        for entry in entries {
            let path = entry.path();
            let name = entry.file_name().to_string_lossy().into_owned();
            let file_type = entry.file_type()?;
            if file_type.is_dir() {
                if !skip_dir(&relpath(root, &path), &name) {
                    stack.push(path);
                }
            } else if file_type.is_file() && (name == "Cargo.toml" || name.ends_with(".rs")) {
                out.push(path);
            }
        }
    }
    out.sort();
    Ok(out)
}

/// One `mod name;` declaration: the directory whose children it can
/// declare, and the source file/line it appeared at.
#[derive(Debug, Clone)]
pub struct ModDecl {
    /// Directory (workspace-relative) the declared module lives in.
    pub dir: String,
    /// The declared module name.
    pub name: String,
    /// File the declaration appeared in.
    pub decl_file: String,
    /// 1-based line of the declaration.
    pub line: u32,
    /// True when a `#[path = …]` attribute overrides file resolution
    /// (such declarations are exempt from resolution checks).
    pub has_path_attr: bool,
}

/// All `mod name;` declarations seen across the workspace.
#[derive(Debug, Default)]
pub struct ModuleMap {
    /// Every declaration, in scan order (scan order is sorted-by-path).
    pub decls: Vec<ModDecl>,
    /// Every scanned `.rs` file, workspace-relative.
    pub rust_files: Vec<String>,
}

impl ModuleMap {
    /// Records the `mod name;` declarations of one parsed file.
    ///
    /// A declaration in `…/lib.rs`, `…/main.rs`, or `…/mod.rs` declares
    /// children of that directory; one in `…/x.rs` declares children of
    /// `…/x/`. Declarations inside inline `mod … { }` bodies follow the
    /// same nesting.
    pub fn record(&mut self, rel: &str, file: &File) {
        if rel.ends_with(".rs") {
            self.rust_files.push(rel.to_string());
        }
        let base_dir = owning_dir(rel);
        self.record_items(rel, &base_dir, &file.items);
    }

    fn record_items(&mut self, rel: &str, dir: &str, items: &[Item]) {
        for item in items {
            match item.kind {
                ItemKind::ModDecl => {
                    if let Some(name) = &item.name {
                        self.decls.push(ModDecl {
                            dir: dir.to_string(),
                            name: name.clone(),
                            decl_file: rel.to_string(),
                            line: item.line,
                            has_path_attr: item.attrs.iter().any(|a| a.path == "path"),
                        });
                    }
                }
                ItemKind::Mod => {
                    if let Some(name) = &item.name {
                        let nested = if dir.is_empty() {
                            name.clone()
                        } else {
                            format!("{dir}/{name}")
                        };
                        self.record_items(rel, &nested, &item.children);
                    }
                }
                _ => {}
            }
        }
    }

    /// Declarations (without `#[path]`) that resolve to neither
    /// `dir/name.rs` nor `dir/name/mod.rs` among the scanned files.
    pub fn unresolved(&self) -> Vec<&ModDecl> {
        self.decls
            .iter()
            .filter(|d| !d.has_path_attr)
            .filter(|d| {
                let as_file = format!("{}/{}.rs", d.dir, d.name);
                let as_dir = format!("{}/{}/mod.rs", d.dir, d.name);
                !self.rust_files.contains(&as_file) && !self.rust_files.contains(&as_dir)
            })
            .collect()
    }

    /// Library sources no `mod` declaration reaches: `src/` files that
    /// are not crate roots, binaries, build scripts, or test scaffolding
    /// and that no recorded declaration names. These compile out of the
    /// build silently — exactly the drift the coherence pass exists to
    /// catch.
    pub fn orphans(&self) -> Vec<&String> {
        self.rust_files
            .iter()
            .filter(|f| {
                let in_src = f.starts_with("src/") || f.contains("/src/");
                let root_like = f.ends_with("/lib.rs")
                    || f.ends_with("/main.rs")
                    || f == &"src/lib.rs"
                    || f == &"src/main.rs"
                    || f.ends_with("build.rs")
                    || f.contains("/src/bin/")
                    || f.split('/')
                        .any(|c| c == "tests" || c == "benches" || c == "examples");
                in_src && !root_like
            })
            .filter(|f| {
                let (dir, name) = match f.rsplit_once('/') {
                    Some((d, n)) => (d, n.trim_end_matches(".rs")),
                    None => ("", f.trim_end_matches(".rs")),
                };
                // `x/mod.rs` is declared as module `x` of `x`'s parent.
                let (dir, name) = if name == "mod" {
                    match dir.rsplit_once('/') {
                        Some((parent, dirname)) => (parent, dirname),
                        None => ("", dir),
                    }
                } else {
                    (dir, name)
                };
                !self
                    .decls
                    .iter()
                    .any(|d| d.name == name && (d.dir == dir || d.has_path_attr))
            })
            .collect()
    }
}

/// The directory whose child modules a file's `mod` declarations name.
fn owning_dir(rel: &str) -> String {
    let (dir, base) = match rel.rsplit_once('/') {
        Some((d, b)) => (d.to_string(), b),
        None => (String::new(), rel),
    };
    if base == "lib.rs" || base == "main.rs" || base == "mod.rs" || base == "build.rs" {
        dir
    } else {
        // `…/x.rs` declares children under `…/x/`.
        let stem = base.trim_end_matches(".rs");
        if dir.is_empty() {
            stem.to_string()
        } else {
            format!("{dir}/{stem}")
        }
    }
}
