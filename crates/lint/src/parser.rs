//! A lightweight, total recursive-descent parser over the lexer.
//!
//! incam-lint v1 was purely lexical: rules scanned flat token streams
//! and `#[cfg(test)]` scoping was a brace-matching heuristic. This
//! module turns the token stream into a small tree — items with their
//! attributes, `mod`/`impl`/`trait` bodies, function bodies with the
//! closures they contain (including an approximate capture analysis) —
//! so rules can ask structural questions: *is this token inside test
//! code?*, *is this closure an argument to `par_map`?*, *does this
//! closure mutate state it captured?*
//!
//! Like the lexer, the parser is **total**: it never panics and it
//! consumes every token of any input. Unrecognized constructs become
//! [`ItemKind::Verbatim`] items (consumed to the next `;` or balanced
//! `{…}`), so random byte soup parses into *something* and the span
//! invariant below still holds. The tree is deliberately shallow — it
//! is not a Rust grammar, it is exactly the structure the rules need.
//!
//! **Span invariant** (pinned by `tests/parser_prop.rs`): the byte
//! spans of a [`File`]'s top-level items are adjacent, start at byte 0,
//! and end at `src.len()` — leading trivia and attributes attach to the
//! item they precede, trailing trivia to the last item. An input with
//! no items at all (all comments/whitespace) yields an empty item list
//! and `File::span` covering the whole input.

use crate::lexer::{Token, TokenKind};

/// A half-open byte range of the source.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// Byte offset of the first byte.
    pub start: usize,
    /// Byte offset one past the last byte.
    pub end: usize,
}

/// One parsed attribute, `#[path(args…)]` or `#![path(args…)]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Attr {
    /// `true` for inner attributes (`#![…]`).
    pub inner: bool,
    /// The attribute's leading path segment (`cfg`, `derive`, `test`…).
    pub path: String,
    /// Texts of the significant tokens inside the delimiter, flattened.
    pub args: Vec<String>,
    /// 1-based line of the `#` token.
    pub line: u32,
}

impl Attr {
    /// True for `#[cfg(…)]` attributes whose argument list mentions a
    /// bare `test` — same notion the v1 brace-matcher used, so
    /// `cfg(test)`, `cfg(any(test, doc))` etc. all count.
    pub fn is_cfg_test(&self) -> bool {
        self.path == "cfg" && self.args.iter().any(|a| a == "test")
    }
}

/// What kind of item a node is. Coarse by design.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ItemKind {
    /// `fn` (free, impl, or trait method) — `body` holds its closures.
    Fn,
    /// `mod name { … }` — children are the module's items.
    Mod,
    /// `mod name;` — declaration only.
    ModDecl,
    /// `impl … { … }` — children are the associated items.
    Impl,
    /// `trait … { … }` — children are the trait items.
    Trait,
    /// `struct` / `enum` / `union` definition.
    TypeDef,
    /// `use …;`
    Use,
    /// `const` / `static` item.
    Const,
    /// `type X = …;`
    TypeAlias,
    /// `macro_rules! … { … }` or `macro …`.
    MacroDef,
    /// A top-level `name! { … }` / `name!(…);` macro invocation.
    MacroCall,
    /// `extern crate …;` or an `extern { … }` block.
    Extern,
    /// Anything else — consumed to a `;` or balanced `{…}`.
    Verbatim,
}

/// A closure expression found inside a function body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Closure {
    /// The function or method name this closure is a direct argument
    /// to (`par_map`, `map`, …) — `None` when not a call argument.
    pub callee: Option<String>,
    /// `true` for `move |…|` closures.
    pub is_move: bool,
    /// Identifiers bound by the parameter list (destructuring included).
    pub params: Vec<String>,
    /// Identifiers bound by `let` / `for` patterns inside the body,
    /// plus the params of *nested* closures (flattened scope — an
    /// over-approximation that errs toward fewer false captures).
    pub locals: Vec<String>,
    /// Token index range (into the file's token array) of the body.
    pub body: (usize, usize),
    /// 1-based line/column of the opening `|`.
    pub line: u32,
    /// Column of the opening `|`.
    pub col: u32,
}

/// One parsed item.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Item {
    /// Coarse kind.
    pub kind: ItemKind,
    /// The item's name, when it has one.
    pub name: Option<String>,
    /// Outer attributes.
    pub attrs: Vec<Attr>,
    /// `true` when an attribute gates this item behind `cfg(test)` or
    /// marks it `#[test]`.
    pub cfg_test: bool,
    /// Byte span (leading trivia + attrs through last token; adjusted
    /// post-parse so sibling spans partition the parent).
    pub span: Span,
    /// Token index range `[start, end)` into the file's token array.
    pub tokens: (usize, usize),
    /// 1-based line of the first significant token.
    pub line: u32,
    /// Nested items (for `Mod`, `Impl`, `Trait`, `Extern` blocks).
    pub children: Vec<Item>,
    /// Closures found in this item's own body (for `Fn`, and for
    /// `Const`/`Static` initializers).
    pub closures: Vec<Closure>,
}

/// A parsed file: top-level items plus the token array they index.
#[derive(Debug, Clone)]
pub struct File {
    /// Top-level items, in source order.
    pub items: Vec<Item>,
    /// Inner attributes of the file (`#![…]`).
    pub inner_attrs: Vec<Attr>,
    /// The whole file's byte span (`0..src.len()`).
    pub span: Span,
}

impl File {
    /// Inclusive 1-based line ranges of every `cfg(test)`-gated or
    /// `#[test]`-marked item, recursively — the parsed replacement for
    /// v1's brace-matching heuristic.
    pub fn cfg_test_line_spans(&self, tokens: &[Token]) -> Vec<(u32, u32)> {
        let mut spans = Vec::new();
        collect_test_spans(&self.items, tokens, false, &mut spans);
        spans
    }
}

fn collect_test_spans(
    items: &[Item],
    tokens: &[Token],
    parent_test: bool,
    out: &mut Vec<(u32, u32)>,
) {
    for item in items {
        let gated = parent_test || item.cfg_test;
        if item.cfg_test && !parent_test {
            let (a, b) = item.tokens;
            let first = item
                .attrs
                .iter()
                .filter(|at| at.is_cfg_test() || at.path == "test")
                .map(|at| at.line)
                .min()
                .unwrap_or(item.line);
            let last = if b > a && b <= tokens.len() {
                tokens[b - 1].line
            } else {
                item.line
            };
            out.push((first, last));
        }
        if !gated {
            collect_test_spans(&item.children, tokens, gated, out);
        }
    }
}

/// Parses a token stream (from [`crate::lexer::lex`]) into a [`File`].
/// Never panics; consumes every token.
pub fn parse(src: &str, tokens: &[Token]) -> File {
    let mut p = Parser {
        src,
        tokens,
        pos: 0,
    };
    let mut inner_attrs = Vec::new();
    let items = p.parse_items(true, &mut inner_attrs);
    let mut file = File {
        items,
        inner_attrs,
        span: Span {
            start: 0,
            end: src.len(),
        },
    };
    seal_spans(&mut file.items, 0, src.len());
    file
}

/// Rewrites sibling spans so they are adjacent and cover `[lo, hi)`:
/// each item starts where its predecessor ended (absorbing leading
/// trivia) and the last item absorbs trailing trivia.
fn seal_spans(items: &mut [Item], lo: usize, hi: usize) {
    let n = items.len();
    let mut cursor = lo;
    for (i, item) in items.iter_mut().enumerate() {
        item.span.start = cursor;
        item.span.end = if i + 1 == n {
            hi
        } else {
            // Keep the parsed end, but never regress before the start.
            item.span.end.clamp(cursor, hi)
        };
        cursor = item.span.end;
    }
}

struct Parser<'s> {
    src: &'s str,
    tokens: &'s [Token],
    pos: usize,
}

fn significant(kind: TokenKind) -> bool {
    !matches!(
        kind,
        TokenKind::Whitespace | TokenKind::LineComment | TokenKind::BlockComment
    )
}

impl<'s> Parser<'s> {
    fn peek_sig(&self) -> Option<usize> {
        self.tokens[self.pos..]
            .iter()
            .position(|t| significant(t.kind))
            .map(|off| self.pos + off)
    }

    fn sig_after(&self, ix: usize) -> Option<usize> {
        self.tokens[ix + 1..]
            .iter()
            .position(|t| significant(t.kind))
            .map(|off| ix + 1 + off)
    }

    fn text(&self, ix: usize) -> &'s str {
        self.tokens[ix].text(self.src)
    }

    fn is_punct(&self, ix: usize, c: char) -> bool {
        self.tokens[ix].kind == TokenKind::Punct && self.text(ix).starts_with(c)
    }

    fn is_ident(&self, ix: usize, name: &str) -> bool {
        self.tokens[ix].kind == TokenKind::Ident && self.text(ix) == name
    }

    /// Advances past token `ix`.
    fn bump_to(&mut self, ix: usize) {
        self.pos = ix + 1;
    }

    /// Consumes a balanced bracket group starting at the opener `ix`;
    /// returns the index one past the matching closer (or EOF).
    fn skip_balanced(&self, open_ix: usize) -> usize {
        let (open, close) = match self.text(open_ix).chars().next() {
            Some('(') => ('(', ')'),
            Some('[') => ('[', ']'),
            Some('{') => ('{', '}'),
            _ => return open_ix + 1,
        };
        let mut depth = 0i64;
        let mut ix = open_ix;
        while ix < self.tokens.len() {
            if self.tokens[ix].kind == TokenKind::Punct {
                let c = self.text(ix).chars().next().unwrap_or(' ');
                if c == open {
                    depth += 1;
                } else if c == close {
                    depth -= 1;
                    if depth == 0 {
                        return ix + 1;
                    }
                }
            }
            ix += 1;
        }
        ix
    }

    /// Parses items until EOF (`top` true) or a closing `}`.
    /// Returns with `self.pos` past the closing brace when not top.
    fn parse_items(&mut self, top: bool, inner_attrs: &mut Vec<Attr>) -> Vec<Item> {
        let mut items = Vec::new();
        loop {
            let span_start = self.pos_byte();
            let mut attrs = Vec::new();
            // Collect attributes (inner ones go to the parent).
            loop {
                let Some(ix) = self.peek_sig() else {
                    // Trailing attrs with no item: absorb as Verbatim.
                    if !attrs.is_empty() {
                        items.push(self.verbatim_item(attrs, span_start, self.tokens.len()));
                    }
                    return items;
                };
                if self.is_punct(ix, '#') {
                    let (attr, next) = self.parse_attr(ix);
                    self.pos = next;
                    match attr {
                        Some(a) if a.inner => inner_attrs.push(a),
                        Some(a) => attrs.push(a),
                        None => {}
                    }
                } else {
                    break;
                }
            }
            let Some(ix) = self.peek_sig() else {
                if !attrs.is_empty() {
                    items.push(self.verbatim_item(attrs, span_start, self.tokens.len()));
                }
                return items;
            };
            if !top && self.is_punct(ix, '}') {
                self.bump_to(ix);
                if !attrs.is_empty() {
                    items.push(self.verbatim_item(attrs, span_start, self.tokens[ix].start));
                }
                return items;
            }
            let item = self.parse_item(attrs, span_start, ix);
            items.push(item);
            if self.pos >= self.tokens.len() && top {
                return items;
            }
        }
    }

    fn pos_byte(&self) -> usize {
        self.tokens
            .get(self.pos)
            .map(|t| t.start)
            .unwrap_or(self.src.len())
    }

    fn verbatim_item(&self, attrs: Vec<Attr>, span_start: usize, span_end: usize) -> Item {
        let cfg_test = attrs.iter().any(|a| a.is_cfg_test() || a.path == "test");
        Item {
            kind: ItemKind::Verbatim,
            name: None,
            attrs,
            cfg_test,
            span: Span {
                start: span_start,
                end: span_end,
            },
            tokens: (self.pos, self.pos),
            line: self.tokens.get(self.pos).map(|t| t.line).unwrap_or(1),
            children: Vec::new(),
            closures: Vec::new(),
        }
    }

    /// Parses `#[…]` / `#![…]` starting at the `#` token `ix`.
    /// Returns the attribute (if well-formed enough) and the index to
    /// resume at.
    fn parse_attr(&self, ix: usize) -> (Option<Attr>, usize) {
        let line = self.tokens[ix].line;
        let Some(mut j) = self.sig_after(ix) else {
            return (None, ix + 1);
        };
        let inner = if self.is_punct(j, '!') {
            match self.sig_after(j) {
                Some(k) => {
                    j = k;
                    true
                }
                None => return (None, j + 1),
            }
        } else {
            false
        };
        if !self.is_punct(j, '[') {
            // A stray `#` (or `#!` shebang soup): treat as not-an-attr.
            return (None, ix + 1);
        }
        let end = self.skip_balanced(j);
        // First significant token inside the brackets is the path head.
        let mut path = String::new();
        let mut args = Vec::new();
        let mut k = j + 1;
        while k < end.saturating_sub(1) {
            if significant(self.tokens[k].kind) {
                let text = self.text(k);
                if path.is_empty() {
                    path = text.to_string();
                } else {
                    args.push(text.to_string());
                }
            }
            k += 1;
        }
        (
            Some(Attr {
                inner,
                path,
                args,
                line,
            }),
            end,
        )
    }

    /// Parses one item whose first significant token is at `ix`.
    fn parse_item(&mut self, attrs: Vec<Attr>, span_start: usize, mut ix: usize) -> Item {
        let start_tok = ix;
        let line = self.tokens[ix].line;
        // Skip visibility and modifier keywords.
        loop {
            if self.is_ident(ix, "pub") {
                let Some(next) = self.sig_after(ix) else {
                    return self.finish_flat(
                        attrs,
                        span_start,
                        start_tok,
                        line,
                        ItemKind::Verbatim,
                    );
                };
                ix = if self.is_punct(next, '(') {
                    let after = self.skip_balanced(next);
                    match self.tokens[after..]
                        .iter()
                        .position(|t| significant(t.kind))
                    {
                        Some(off) => after + off,
                        None => {
                            self.pos = self.tokens.len();
                            return self.item_at(
                                attrs,
                                span_start,
                                start_tok,
                                line,
                                ItemKind::Verbatim,
                                None,
                            );
                        }
                    }
                } else {
                    next
                };
            } else if ["default", "async", "unsafe"]
                .iter()
                .any(|k| self.is_ident(ix, k))
            {
                match self.sig_after(ix) {
                    Some(next) => ix = next,
                    None => {
                        self.pos = self.tokens.len();
                        return self.item_at(
                            attrs,
                            span_start,
                            start_tok,
                            line,
                            ItemKind::Verbatim,
                            None,
                        );
                    }
                }
            } else if self.is_ident(ix, "extern")
                && self
                    .sig_after(ix)
                    .is_some_and(|n| self.tokens[n].kind == TokenKind::Str)
            {
                // `extern "C" fn` — skip the ABI string.
                let n = self.sig_after(ix).unwrap_or(ix);
                match self.sig_after(n) {
                    Some(next) => ix = next,
                    None => {
                        self.pos = self.tokens.len();
                        return self.item_at(
                            attrs,
                            span_start,
                            start_tok,
                            line,
                            ItemKind::Verbatim,
                            None,
                        );
                    }
                }
            } else if self.is_ident(ix, "const")
                && self.sig_after(ix).is_some_and(|n| self.is_ident(n, "fn"))
            {
                // `const fn` — the `const` is a modifier, not an item.
                ix = self.sig_after(ix).unwrap_or(ix);
            } else {
                break;
            }
        }

        let kw = if self.tokens[ix].kind == TokenKind::Ident {
            self.text(ix)
        } else {
            ""
        };
        match kw {
            "fn" => self.parse_fn(attrs, span_start, start_tok, line, ix),
            "mod" => self.parse_mod(attrs, span_start, start_tok, line, ix),
            "impl" | "trait" => {
                let kind = if kw == "impl" {
                    ItemKind::Impl
                } else {
                    ItemKind::Trait
                };
                self.parse_braced_container(attrs, span_start, start_tok, line, ix, kind)
            }
            "struct" | "enum" | "union" => {
                self.parse_typedef(attrs, span_start, start_tok, line, ix)
            }
            "use" => self.consume_to_semi(attrs, span_start, start_tok, line, ix, ItemKind::Use),
            "const" | "static" => self.parse_const(attrs, span_start, start_tok, line, ix),
            "type" => {
                self.consume_to_semi(attrs, span_start, start_tok, line, ix, ItemKind::TypeAlias)
            }
            "macro_rules" | "macro" => self.parse_macro_def(attrs, span_start, start_tok, line, ix),
            "extern" => {
                // `extern crate …;` or `extern { … }`.
                if let Some(n) = self.sig_after(ix) {
                    if self.is_punct(n, '{') {
                        return self.parse_braced_container(
                            attrs,
                            span_start,
                            start_tok,
                            line,
                            ix,
                            ItemKind::Extern,
                        );
                    }
                }
                self.consume_to_semi(attrs, span_start, start_tok, line, ix, ItemKind::Extern)
            }
            _ => {
                // `name! { … }` macro call, or unknown: consume to `;`
                // or a balanced brace group.
                let is_macro = self.tokens[ix].kind == TokenKind::Ident
                    && self.sig_after(ix).is_some_and(|n| self.is_punct(n, '!'));
                let kind = if is_macro {
                    ItemKind::MacroCall
                } else {
                    ItemKind::Verbatim
                };
                self.consume_to_semi_or_brace(attrs, span_start, start_tok, line, ix, kind)
            }
        }
    }

    fn item_at(
        &self,
        attrs: Vec<Attr>,
        span_start: usize,
        start_tok: usize,
        line: u32,
        kind: ItemKind,
        name: Option<String>,
    ) -> Item {
        let cfg_test = attrs.iter().any(|a| a.is_cfg_test() || a.path == "test");
        Item {
            kind,
            name,
            attrs,
            cfg_test,
            span: Span {
                start: span_start,
                end: self
                    .tokens
                    .get(self.pos.saturating_sub(1))
                    .map(|t| t.end)
                    .unwrap_or(self.src.len()),
            },
            tokens: (start_tok, self.pos),
            line,
            children: Vec::new(),
            closures: Vec::new(),
        }
    }

    fn finish_flat(
        &mut self,
        attrs: Vec<Attr>,
        span_start: usize,
        start_tok: usize,
        line: u32,
        kind: ItemKind,
    ) -> Item {
        self.pos = self.tokens.len();
        self.item_at(attrs, span_start, start_tok, line, kind, None)
    }

    fn name_after(&self, kw_ix: usize) -> Option<String> {
        let n = self.sig_after(kw_ix)?;
        if self.tokens[n].kind == TokenKind::Ident {
            Some(self.text(n).to_string())
        } else {
            None
        }
    }

    /// Consumes from `ix` to the first `;` at bracket depth 0.
    fn consume_to_semi(
        &mut self,
        attrs: Vec<Attr>,
        span_start: usize,
        start_tok: usize,
        line: u32,
        ix: usize,
        kind: ItemKind,
    ) -> Item {
        let name = self.name_after(ix);
        let mut j = ix;
        let mut depth = 0i64;
        while j < self.tokens.len() {
            if self.tokens[j].kind == TokenKind::Punct {
                match self.text(j).chars().next().unwrap_or(' ') {
                    '(' | '[' | '{' => depth += 1,
                    ')' | ']' | '}' => depth -= 1,
                    ';' if depth <= 0 => {
                        self.pos = j + 1;
                        return self.item_at(attrs, span_start, start_tok, line, kind, name);
                    }
                    _ => {}
                }
            }
            j += 1;
        }
        self.pos = j;
        self.item_at(attrs, span_start, start_tok, line, kind, name)
    }

    /// Consumes to `;` at depth 0 or past one balanced `{…}` group.
    fn consume_to_semi_or_brace(
        &mut self,
        attrs: Vec<Attr>,
        span_start: usize,
        start_tok: usize,
        line: u32,
        ix: usize,
        kind: ItemKind,
    ) -> Item {
        let name = if self.tokens[ix].kind == TokenKind::Ident {
            Some(self.text(ix).to_string())
        } else {
            None
        };
        let mut j = ix;
        while j < self.tokens.len() {
            if self.is_punct(j, ';') {
                self.pos = j + 1;
                return self.item_at(attrs, span_start, start_tok, line, kind, name);
            }
            if self.is_punct(j, '{') {
                self.pos = self.skip_balanced(j);
                return self.item_at(attrs, span_start, start_tok, line, kind, name);
            }
            if self.is_punct(j, '(') || self.is_punct(j, '[') {
                let after = self.skip_balanced(j);
                // Macro call with (…) or […] delimiter: a `;` should follow.
                j = after;
                continue;
            }
            j += 1;
        }
        self.pos = j;
        self.item_at(attrs, span_start, start_tok, line, kind, name)
    }

    fn parse_mod(
        &mut self,
        attrs: Vec<Attr>,
        span_start: usize,
        start_tok: usize,
        line: u32,
        kw_ix: usize,
    ) -> Item {
        let name = self.name_after(kw_ix);
        // Find `{` or `;` after the name.
        let mut j = kw_ix + 1;
        while j < self.tokens.len() {
            if self.is_punct(j, '{') {
                self.pos = j + 1;
                let mut inner = Vec::new();
                let children = self.parse_items(false, &mut inner);
                let mut item =
                    self.item_at(attrs, span_start, start_tok, line, ItemKind::Mod, name);
                item.children = children;
                seal_child_spans(&mut item, self.src, self.tokens, j, self.pos);
                return item;
            }
            if self.is_punct(j, ';') {
                self.pos = j + 1;
                return self.item_at(attrs, span_start, start_tok, line, ItemKind::ModDecl, name);
            }
            j += 1;
        }
        self.finish_flat(attrs, span_start, start_tok, line, ItemKind::ModDecl)
    }

    fn parse_braced_container(
        &mut self,
        attrs: Vec<Attr>,
        span_start: usize,
        start_tok: usize,
        line: u32,
        kw_ix: usize,
        kind: ItemKind,
    ) -> Item {
        let name = self.name_after(kw_ix);
        let mut j = kw_ix + 1;
        let mut angle = 0i64;
        while j < self.tokens.len() {
            if self.tokens[j].kind == TokenKind::Punct {
                match self.text(j).chars().next().unwrap_or(' ') {
                    '<' => angle += 1,
                    '>' => angle -= 1,
                    '{' if angle <= 0 => {
                        self.pos = j + 1;
                        let mut inner = Vec::new();
                        let children = self.parse_items(false, &mut inner);
                        let mut item = self.item_at(attrs, span_start, start_tok, line, kind, name);
                        item.children = children;
                        seal_child_spans(&mut item, self.src, self.tokens, j, self.pos);
                        return item;
                    }
                    ';' if angle <= 0 => {
                        self.pos = j + 1;
                        return self.item_at(attrs, span_start, start_tok, line, kind, name);
                    }
                    _ => {}
                }
            }
            j += 1;
        }
        self.finish_flat(attrs, span_start, start_tok, line, kind)
    }

    fn parse_typedef(
        &mut self,
        attrs: Vec<Attr>,
        span_start: usize,
        start_tok: usize,
        line: u32,
        kw_ix: usize,
    ) -> Item {
        let name = self.name_after(kw_ix);
        // struct Name; | struct Name(…); | struct Name { … } | enum { … }
        let mut j = kw_ix + 1;
        let mut angle = 0i64;
        while j < self.tokens.len() {
            if self.tokens[j].kind == TokenKind::Punct {
                match self.text(j).chars().next().unwrap_or(' ') {
                    '<' => angle += 1,
                    '>' => angle -= 1,
                    ';' if angle <= 0 => {
                        self.pos = j + 1;
                        return self.item_at(
                            attrs,
                            span_start,
                            start_tok,
                            line,
                            ItemKind::TypeDef,
                            name,
                        );
                    }
                    '{' if angle <= 0 => {
                        self.pos = self.skip_balanced(j);
                        // Tuple structs: `struct X(u8);` — the `(` case
                        // falls through to `;`.
                        return self.item_at(
                            attrs,
                            span_start,
                            start_tok,
                            line,
                            ItemKind::TypeDef,
                            name,
                        );
                    }
                    _ => {}
                }
            }
            j += 1;
        }
        self.finish_flat(attrs, span_start, start_tok, line, ItemKind::TypeDef)
    }

    fn parse_const(
        &mut self,
        attrs: Vec<Attr>,
        span_start: usize,
        start_tok: usize,
        line: u32,
        kw_ix: usize,
    ) -> Item {
        let name = self.name_after(kw_ix);
        // Consume to `;` at depth 0, scanning the initializer for
        // closures (const fn-pointers tables etc. are rare but cheap).
        let mut j = kw_ix;
        let mut depth = 0i64;
        let init_start = kw_ix;
        while j < self.tokens.len() {
            if self.tokens[j].kind == TokenKind::Punct {
                match self.text(j).chars().next().unwrap_or(' ') {
                    '(' | '[' | '{' => depth += 1,
                    ')' | ']' | '}' => depth -= 1,
                    ';' if depth <= 0 => {
                        self.pos = j + 1;
                        let mut item =
                            self.item_at(attrs, span_start, start_tok, line, ItemKind::Const, name);
                        item.closures = scan_closures(self.src, self.tokens, init_start, j);
                        return item;
                    }
                    _ => {}
                }
            }
            j += 1;
        }
        self.finish_flat(attrs, span_start, start_tok, line, ItemKind::Const)
    }

    fn parse_macro_def(
        &mut self,
        attrs: Vec<Attr>,
        span_start: usize,
        start_tok: usize,
        line: u32,
        kw_ix: usize,
    ) -> Item {
        // macro_rules! name { … }
        let mut j = kw_ix + 1;
        let mut name = None;
        while j < self.tokens.len() {
            if self.tokens[j].kind == TokenKind::Ident && name.is_none() {
                name = Some(self.text(j).to_string());
            }
            if self.is_punct(j, '{') || self.is_punct(j, '(') || self.is_punct(j, '[') {
                self.pos = self.skip_balanced(j);
                // A paren/bracket-delimited macro_rules needs a `;`.
                if !self.is_punct(j, '{') {
                    if let Some(n) = self.peek_sig() {
                        if self.is_punct(n, ';') {
                            self.bump_to(n);
                        }
                    }
                }
                return self.item_at(attrs, span_start, start_tok, line, ItemKind::MacroDef, name);
            }
            if self.is_punct(j, ';') {
                self.pos = j + 1;
                return self.item_at(attrs, span_start, start_tok, line, ItemKind::MacroDef, name);
            }
            j += 1;
        }
        self.finish_flat(attrs, span_start, start_tok, line, ItemKind::MacroDef)
    }

    fn parse_fn(
        &mut self,
        attrs: Vec<Attr>,
        span_start: usize,
        start_tok: usize,
        line: u32,
        kw_ix: usize,
    ) -> Item {
        let name = self.name_after(kw_ix);
        // Scan to the body `{` at angle/paren depth 0, or a `;`
        // (trait method declaration).
        let mut j = kw_ix + 1;
        let mut angle = 0i64;
        while j < self.tokens.len() {
            if self.tokens[j].kind == TokenKind::Punct {
                let c = self.text(j).chars().next().unwrap_or(' ');
                match c {
                    '<' => angle += 1,
                    '>' => {
                        // `->` must not decrement.
                        let arrow = j > 0
                            && self.is_punct(j - 1, '-')
                            && self.tokens[j - 1].end == self.tokens[j].start;
                        if !arrow {
                            angle -= 1;
                        }
                    }
                    '(' | '[' => j = self.skip_balanced(j) - 1,
                    ';' if angle <= 0 => {
                        self.pos = j + 1;
                        return self.item_at(
                            attrs,
                            span_start,
                            start_tok,
                            line,
                            ItemKind::Fn,
                            name,
                        );
                    }
                    '{' if angle <= 0 => {
                        let body_end = self.skip_balanced(j);
                        self.pos = body_end;
                        let mut item =
                            self.item_at(attrs, span_start, start_tok, line, ItemKind::Fn, name);
                        item.closures =
                            scan_closures(self.src, self.tokens, j + 1, body_end.saturating_sub(1));
                        return item;
                    }
                    _ => {}
                }
            }
            j += 1;
        }
        self.finish_flat(attrs, span_start, start_tok, line, ItemKind::Fn)
    }
}

/// Gives a container's children spans that partition the byte range
/// between its opening brace and closing brace.
fn seal_child_spans(item: &mut Item, src: &str, tokens: &[Token], open_ix: usize, end_pos: usize) {
    let lo = tokens.get(open_ix).map(|t| t.end).unwrap_or(src.len());
    let hi = tokens
        .get(end_pos.saturating_sub(1))
        .map(|t| t.start)
        .unwrap_or(src.len());
    if lo <= hi {
        seal_spans(&mut item.children, lo, hi);
    }
}

// ---------------------------------------------------------------------
// Closure scanning
// ---------------------------------------------------------------------

/// Tokens that can end an expression operand; a `|` after one of these
/// is the binary or-operator, not a closure opener.
fn ends_operand(tok: &Token, src: &str) -> bool {
    match tok.kind {
        TokenKind::Ident => {
            // Keywords that *precede* expressions keep closure-position.
            !matches!(
                tok.text(src),
                "return" | "move" | "in" | "if" | "while" | "match" | "else" | "break" | "yield"
            )
        }
        TokenKind::Number | TokenKind::Str | TokenKind::Lifetime => true,
        TokenKind::Punct => matches!(tok.text(src).chars().next(), Some(')' | ']' | '}' | '?')),
        _ => false,
    }
}

/// Scans the token range `[lo, hi)` of a function body for closures,
/// recording each closure's callee, params, flattened locals and body
/// range. Nested closures are reported separately (and their params
/// fold into the enclosing closure's locals).
pub fn scan_closures(src: &str, tokens: &[Token], lo: usize, hi: usize) -> Vec<Closure> {
    let hi = hi.min(tokens.len());
    let sig: Vec<usize> = (lo..hi).filter(|&i| significant(tokens[i].kind)).collect();
    let mut out = Vec::new();
    scan_closures_sig(src, tokens, &sig, &mut out);
    out.sort_by_key(|c| (c.line, c.col));
    out
}

/// Call-stack entry: one open delimiter, with the callee name when the
/// delimiter is a call's argument list.
struct Frame {
    close: char,
    callee: Option<String>,
}

fn scan_closures_sig(src: &str, tokens: &[Token], sig: &[usize], out: &mut Vec<Closure>) {
    let mut stack: Vec<Frame> = Vec::new();
    let mut i = 0;
    while i < sig.len() {
        let ix = sig[i];
        let tok = &tokens[ix];
        if tok.kind == TokenKind::Punct {
            let c = tok.text(src).chars().next().unwrap_or(' ');
            match c {
                '(' | '[' | '{' => {
                    let callee = if c == '(' && i > 0 {
                        let prev = &tokens[sig[i - 1]];
                        if prev.kind == TokenKind::Ident {
                            Some(prev.text(src).to_string())
                        } else {
                            None
                        }
                    } else {
                        None
                    };
                    stack.push(Frame {
                        close: match c {
                            '(' => ')',
                            '[' => ']',
                            _ => '}',
                        },
                        callee,
                    });
                }
                ')' | ']' | '}' => {
                    while let Some(top) = stack.pop() {
                        if top.close == c {
                            break;
                        }
                    }
                }
                '|' => {
                    let prev_ends_operand = i > 0 && ends_operand(&tokens[sig[i - 1]], src);
                    let is_move = i > 0 && tokens[sig[i - 1]].text(src) == "move";
                    // `||` as logical-or: two adjacent `|` after an operand.
                    if !prev_ends_operand || is_move {
                        let callee = stack.iter().rev().find_map(|f| f.callee.clone());
                        if let Some((closure, next_i)) =
                            parse_closure(src, tokens, sig, i, callee, is_move)
                        {
                            // Recurse into the body for nested closures.
                            let body_sig: Vec<usize> = sig[..next_i]
                                .iter()
                                .copied()
                                .filter(|&j| j >= closure.body.0 && j < closure.body.1)
                                .collect();
                            out.push(closure);
                            scan_closures_sig(src, tokens, &body_sig, out);
                            i = next_i;
                            continue;
                        }
                    }
                }
                _ => {}
            }
        }
        i += 1;
    }
}

/// Parses a closure whose opening `|` sits at `sig[i]`. Returns the
/// closure and the `sig` index one past its body.
fn parse_closure(
    src: &str,
    tokens: &[Token],
    sig: &[usize],
    i: usize,
    callee: Option<String>,
    is_move: bool,
) -> Option<(Closure, usize)> {
    let open = &tokens[sig[i]];
    // `||` empty params: adjacent second `|`.
    let mut j = i + 1;
    let mut params = Vec::new();
    let empty = j < sig.len()
        && tokens[sig[j]].kind == TokenKind::Punct
        && tokens[sig[j]].text(src).starts_with('|')
        && tokens[sig[j]].start == open.end;
    if empty {
        j += 1;
    } else {
        // Scan params to the closing `|` at bracket depth 0.
        let mut depth = 0i64;
        let mut expect_pattern = true;
        loop {
            if j >= sig.len() {
                return None;
            }
            let tok = &tokens[sig[j]];
            if tok.kind == TokenKind::Punct {
                match tok.text(src).chars().next().unwrap_or(' ') {
                    '(' | '[' | '<' => depth += 1,
                    ')' | ']' | '>' => depth -= 1,
                    '|' if depth <= 0 => {
                        j += 1;
                        break;
                    }
                    ':' if depth <= 0 => expect_pattern = false,
                    ',' if depth <= 0 => expect_pattern = true,
                    _ => {}
                }
            } else if tok.kind == TokenKind::Ident && expect_pattern {
                let text = tok.text(src);
                if !matches!(text, "mut" | "ref" | "_") {
                    params.push(text.to_string());
                }
            }
            // Bail out if the "params" run implausibly long — a stray
            // `|` in soup, not a closure.
            if j - i > 512 {
                return None;
            }
            j += 1;
        }
    }
    // Body: block or expression.
    if j >= sig.len() {
        // `|x|` at EOF — degenerate but total: empty body.
        let body = (sig[i] + 1, sig[i] + 1);
        return Some((
            Closure {
                callee,
                is_move,
                params,
                locals: Vec::new(),
                body,
                line: open.line,
                col: open.col,
            },
            j,
        ));
    }
    let body_start_tok = sig[j];
    let body_end_tok;
    let next_i;
    if tokens[body_start_tok].kind == TokenKind::Punct
        && tokens[body_start_tok].text(src).starts_with('{')
    {
        // Balanced block.
        let mut depth = 0i64;
        let mut k = j;
        loop {
            if k >= sig.len() {
                body_end_tok = tokens.len();
                next_i = k;
                break;
            }
            let tok = &tokens[sig[k]];
            if tok.kind == TokenKind::Punct {
                match tok.text(src).chars().next().unwrap_or(' ') {
                    '{' => depth += 1,
                    '}' => {
                        depth -= 1;
                        if depth == 0 {
                            body_end_tok = sig[k] + 1;
                            next_i = k + 1;
                            break;
                        }
                    }
                    _ => {}
                }
            }
            k += 1;
        }
    } else {
        // Expression body: to `,` / `)` / `]` / `}` / `;` at depth 0.
        let mut depth = 0i64;
        let mut k = j;
        loop {
            if k >= sig.len() {
                body_end_tok = tokens.len();
                next_i = k;
                break;
            }
            let tok = &tokens[sig[k]];
            if tok.kind == TokenKind::Punct {
                let c = tok.text(src).chars().next().unwrap_or(' ');
                match c {
                    '(' | '[' | '{' => depth += 1,
                    ')' | ']' | '}' if depth > 0 => depth -= 1,
                    ')' | ']' | '}' | ',' | ';' => {
                        body_end_tok = sig[k];
                        next_i = k;
                        break;
                    }
                    _ => {}
                }
            }
            k += 1;
        }
    }
    let body = (body_start_tok, body_end_tok);
    let locals = collect_locals(src, tokens, body);
    Some((
        Closure {
            callee,
            is_move,
            params,
            locals,
            body,
            line: open.line,
            col: open.col,
        },
        next_i,
    ))
}

/// Identifiers bound inside a body range: `let` patterns, `for`
/// patterns, and the params of nested closures (flattened).
fn collect_locals(src: &str, tokens: &[Token], body: (usize, usize)) -> Vec<String> {
    let mut locals = Vec::new();
    let sig: Vec<usize> = (body.0..body.1.min(tokens.len()))
        .filter(|&i| significant(tokens[i].kind))
        .collect();
    let mut i = 0;
    while i < sig.len() {
        let tok = &tokens[sig[i]];
        if tok.kind == TokenKind::Ident {
            match tok.text(src) {
                "let" | "for" => {
                    // Bind idents until `=` / `in` / `;` at depth 0.
                    let mut depth = 0i64;
                    let mut j = i + 1;
                    let mut in_type = false;
                    while j < sig.len() {
                        let t = &tokens[sig[j]];
                        if t.kind == TokenKind::Punct {
                            match t.text(src).chars().next().unwrap_or(' ') {
                                '(' | '[' | '<' => depth += 1,
                                ')' | ']' | '>' => depth -= 1,
                                '=' if depth <= 0 => break,
                                ';' if depth <= 0 => break,
                                ':' if depth <= 0 => in_type = true,
                                _ => {}
                            }
                        } else if t.kind == TokenKind::Ident {
                            let text = t.text(src);
                            if text == "in" && depth <= 0 {
                                break;
                            }
                            if !in_type && !matches!(text, "mut" | "ref" | "_") {
                                locals.push(text.to_string());
                            }
                        }
                        j += 1;
                    }
                    i = j;
                    continue;
                }
                _ => {}
            }
        } else if tok.kind == TokenKind::Punct && tok.text(src).starts_with('|') {
            // Nested closure params: idents to the closing `|` (crude
            // but local-only; a false local only *reduces* captures).
            let prev_op = i > 0 && ends_operand(&tokens[sig[i - 1]], src);
            if !prev_op {
                let mut j = i + 1;
                let mut depth = 0i64;
                while j < sig.len() && j - i <= 64 {
                    let t = &tokens[sig[j]];
                    if t.kind == TokenKind::Punct {
                        match t.text(src).chars().next().unwrap_or(' ') {
                            '(' | '[' | '<' => depth += 1,
                            ')' | ']' | '>' => depth -= 1,
                            '|' if depth <= 0 => break,
                            _ => {}
                        }
                    } else if t.kind == TokenKind::Ident {
                        let text = t.text(src);
                        if !matches!(text, "mut" | "ref" | "_") {
                            locals.push(text.to_string());
                        }
                    }
                    j += 1;
                }
                i = j;
            }
        }
        i += 1;
    }
    locals
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse_src(src: &str) -> (File, Vec<Token>) {
        let tokens = lex(src);
        (parse(src, &tokens), tokens)
    }

    #[test]
    fn items_partition_the_file() {
        let src = "//! doc\nuse std::fmt;\n\nfn a() {}\n\nmod b { fn c() {} }\n// trailing\n";
        let (file, _) = parse_src(src);
        assert_eq!(file.items.len(), 3);
        assert_eq!(file.items[0].span.start, 0);
        for w in file.items.windows(2) {
            assert_eq!(w[0].span.end, w[1].span.start);
        }
        assert_eq!(file.items.last().unwrap().span.end, src.len());
    }

    #[test]
    fn kinds_and_names() {
        let src = "pub fn f() {}\nstruct S;\nenum E { A }\nimpl S { fn m(&self) {} }\n\
                   use x::y;\nconst K: u8 = 1;\nmod m;\ntrait T { fn d(&self); }\n";
        let (file, _) = parse_src(src);
        let kinds: Vec<_> = file.items.iter().map(|i| i.kind).collect();
        assert_eq!(
            kinds,
            [
                ItemKind::Fn,
                ItemKind::TypeDef,
                ItemKind::TypeDef,
                ItemKind::Impl,
                ItemKind::Use,
                ItemKind::Const,
                ItemKind::ModDecl,
                ItemKind::Trait,
            ]
        );
        assert_eq!(file.items[0].name.as_deref(), Some("f"));
        assert_eq!(file.items[3].children.len(), 1);
        assert_eq!(file.items[3].children[0].name.as_deref(), Some("m"));
        assert_eq!(file.items[7].children.len(), 1);
    }

    #[test]
    fn cfg_test_is_parsed_structure() {
        let src = "fn live() {}\n\n#[cfg(test)]\nmod tests {\n    use super::*;\n\
                   \n    #[test]\n    fn t() {}\n}\n";
        let (file, tokens) = parse_src(src);
        assert!(!file.items[0].cfg_test);
        assert!(file.items[1].cfg_test);
        let spans = file.cfg_test_line_spans(&tokens);
        assert_eq!(spans, [(3, 9)]);
    }

    #[test]
    fn closures_capture_callee_and_params() {
        let src = "fn f(n: usize) -> Vec<f32> {\n    incam_parallel::par_map(n, |i| data[i])\n}\n";
        let (file, _) = parse_src(src);
        let cl = &file.items[0].closures;
        assert_eq!(cl.len(), 1);
        assert_eq!(cl[0].callee.as_deref(), Some("par_map"));
        assert_eq!(cl[0].params, ["i"]);
    }

    #[test]
    fn nested_closures_are_separate() {
        let src = "fn f() { outer(|a| inner(|b| a + b)) }";
        let (file, _) = parse_src(src);
        let cl = &file.items[0].closures;
        assert_eq!(cl.len(), 2);
        assert_eq!(cl[0].callee.as_deref(), Some("outer"));
        assert_eq!(cl[1].callee.as_deref(), Some("inner"));
        // The outer closure's flattened locals include the nested params.
        assert!(cl[0].locals.contains(&"b".to_string()));
    }

    #[test]
    fn or_operator_is_not_a_closure() {
        let src = "fn f(a: bool, b: bool) -> bool { a || b }";
        let (file, _) = parse_src(src);
        assert!(file.items[0].closures.is_empty());
    }

    #[test]
    fn let_bindings_become_locals() {
        let src = "fn f() { g(|x| { let y = x + 1; for z in 0..y { h(z); } y }) }";
        let (file, _) = parse_src(src);
        let cl = &file.items[0].closures[0];
        assert!(cl.locals.contains(&"y".to_string()));
        assert!(cl.locals.contains(&"z".to_string()));
    }

    #[test]
    fn survives_soup() {
        // A quick inline sanity check; the real fuzzing lives in
        // tests/parser_prop.rs.
        for src in ["{{{", "fn fn fn", "#[", "|||", "pub pub", "impl<T", "}}}"] {
            let tokens = lex(src);
            let file = parse(src, &tokens);
            if !file.items.is_empty() {
                assert_eq!(file.items[0].span.start, 0);
                assert_eq!(file.items.last().unwrap().span.end, src.len());
            }
        }
    }
}
