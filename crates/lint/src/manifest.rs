//! The `registry-dep` rule over `Cargo.toml` manifests.
//!
//! Hermetic builds are a hard invariant of this workspace: every cargo
//! invocation runs `--offline`, and even an *optional* registry
//! dependency enters lock resolution and breaks it (see
//! `crates/core/Cargo.toml` for the scar tissue). This pass turns that
//! implicit contract into an explicit gate: every entry of a
//! `[dependencies]`-like section must be a `path = …` dependency or a
//! `workspace = true` reference to one.
//!
//! The scanner is deliberately line-oriented — the workspace's manifests
//! are flat and hand-written, and a full TOML parser would be a
//! dependency of its own. Multi-line inline tables are out of scope;
//! `[dependencies.name]` table sections are handled.

use crate::pragma::{self, Pragma};
use crate::rules::{self, suppress};
use crate::{AuditEntry, Diagnostic};

/// What the scanner is inside of, line by line.
enum Section {
    /// Anything that is not a dependency section.
    Other,
    /// `[dependencies]` / `[dev-dependencies]` / `[build-dependencies]`,
    /// optionally prefixed (`[workspace.dependencies]`,
    /// `[target.….dependencies]`).
    Deps,
    /// A `[dependencies.<name>]` table; violation decided at its end.
    DepTable {
        name: String,
        line: u32,
        has_path: bool,
    },
}

/// Runs the `registry-dep` rule (plus pragma parsing for `#` comments)
/// over one manifest.
pub fn check_manifest(relpath: &str, src: &str) -> Vec<Diagnostic> {
    check_manifest_full(relpath, src).0
}

/// Like [`check_manifest`], also returning the audit trail of valid
/// suppression pragmas (for `--audit`).
pub fn check_manifest_full(relpath: &str, src: &str) -> (Vec<Diagnostic>, Vec<AuditEntry>) {
    let mut diags = Vec::new();
    let mut pragmas = Vec::new();
    let mut section = Section::Other;

    for (i, raw) in src.lines().enumerate() {
        let lineno = i as u32 + 1;
        let (code, comment) = split_comment(raw);
        if let Some(body) = comment {
            match pragma::parse_pragma(body) {
                Ok(None) => {}
                Ok(Some((rule, reason))) => pragmas.push(Pragma {
                    line: lineno,
                    rule,
                    reason,
                }),
                Err(e) => diags.push(Diagnostic {
                    path: relpath.to_string(),
                    line: lineno,
                    col: col_of(raw, raw.len() - body.len() - 1),
                    rule: rules::PRAGMA,
                    message: e.message(),
                }),
            }
        }
        let trimmed = code.trim();
        if trimmed.is_empty() {
            continue;
        }

        if trimmed.starts_with('[') {
            flush_table(relpath, &mut section, &mut diags);
            let name = trimmed.trim_start_matches('[').trim_end_matches(']').trim();
            section = classify_section(name);
            if let Section::DepTable { line, .. } = &mut section {
                *line = lineno;
            }
            continue;
        }

        match &mut section {
            Section::Other => {}
            Section::Deps => {
                let Some(eq) = trimmed.find('=') else {
                    continue;
                };
                let key = trimmed[..eq].trim();
                let value = trimmed[eq + 1..].trim();
                let ok = key.ends_with(".workspace")
                    || value.contains("workspace = true")
                    || value.contains("path =")
                    || value.contains("path=");
                if !ok {
                    let name = key.split('.').next().unwrap_or(key);
                    diags.push(registry_diag(
                        relpath,
                        lineno,
                        col_of(raw, raw.len() - raw.trim_start().len()),
                        name,
                    ));
                }
            }
            Section::DepTable { has_path, .. } => {
                let is_path_key = trimmed
                    .strip_prefix("path")
                    .is_some_and(|r| r.trim_start().starts_with('='));
                let is_workspace_true = trimmed
                    .strip_prefix("workspace")
                    .and_then(|r| r.trim_start().strip_prefix('='))
                    .is_some_and(|r| r.trim() == "true");
                if is_path_key || is_workspace_true {
                    *has_path = true;
                }
            }
        }
    }
    flush_table(relpath, &mut section, &mut diags);
    let audit = pragmas
        .iter()
        .map(|p| AuditEntry {
            path: relpath.to_string(),
            line: p.line,
            rule: p.rule,
            reason: p.reason.clone(),
        })
        .collect();
    (suppress(diags, &pragmas), audit)
}

fn registry_diag(relpath: &str, line: u32, col: u32, name: &str) -> Diagnostic {
    Diagnostic {
        path: relpath.to_string(),
        line,
        col,
        rule: rules::REGISTRY_DEP,
        message: format!(
            "dependency `{name}` must use `path = …` or `workspace = true`; registry/git \
             sources break the hermetic offline build"
        ),
    }
}

/// Closes a pending `[dependencies.<name>]` table, flagging it if no
/// `path`/`workspace` key was seen.
fn flush_table(relpath: &str, section: &mut Section, diags: &mut Vec<Diagnostic>) {
    if let Section::DepTable {
        name,
        line,
        has_path: false,
    } = section
    {
        diags.push(registry_diag(relpath, *line, 1, name));
    }
    *section = Section::Other;
}

/// Classifies a `[section]` header by its dotted path: a last segment of
/// `dependencies`/`dev-dependencies`/`build-dependencies` is a flat dep
/// section; those as second-to-last segment make a per-dep table.
fn classify_section(name: &str) -> Section {
    // DepTable.line is a placeholder here; the caller stamps the header
    // line number in.
    let segments: Vec<&str> = name.split('.').collect();
    let is_dep = |s: &str| {
        matches!(
            s,
            "dependencies" | "dev-dependencies" | "build-dependencies"
        )
    };
    match segments.as_slice() {
        [.., last] if is_dep(last) => Section::Deps,
        [.., parent, last] if is_dep(parent) => Section::DepTable {
            name: (*last).trim_matches('"').to_string(),
            line: 0,
            has_path: false,
        },
        _ => Section::Other,
    }
}

/// Splits a TOML line at the first `#` outside quoted strings. Returns
/// the code part and, when present, the comment body after `#`.
fn split_comment(line: &str) -> (&str, Option<&str>) {
    let mut in_double = false;
    let mut in_single = false;
    let mut escaped = false;
    for (ix, c) in line.char_indices() {
        if escaped {
            escaped = false;
            continue;
        }
        match c {
            '\\' if in_double => escaped = true,
            '"' if !in_single => in_double = !in_double,
            '\'' if !in_double => in_single = !in_single,
            '#' if !in_double && !in_single => {
                return (&line[..ix], Some(&line[ix + 1..]));
            }
            _ => {}
        }
    }
    (line, None)
}

/// 1-based character column of byte offset `byte` in `line`.
fn col_of(line: &str, byte: usize) -> u32 {
    line[..byte.min(line.len())].chars().count() as u32 + 1
}
