//! Fuzz properties for the lexer: on *arbitrary* input — raw byte soup
//! and Rust-flavored soup biased toward the tricky state machines
//! (quotes, hashes, comment markers) — the lexer never panics, exactly
//! partitions the input, and reports positions consistent with a naive
//! line/column recount.

use incam_lint::lexer::lex;
use incam_lint::{check_manifest, check_rust_source};
use incam_rng::prelude::*;

/// Characters chosen to exercise string/comment/raw-string transitions
/// far more often than uniform bytes would.
const SOUP: &[char] = &[
    '"', '\'', '/', '*', '#', '\\', '\n', 'r', 'b', 'c', '_', 'x', '0', '9', '.', ':', '{', '}',
    '(', ')', '[', ']', ' ', '!', 'é', '∀',
];

fn soup(indices: &[u8]) -> String {
    indices
        .iter()
        .map(|&b| SOUP[b as usize % SOUP.len()])
        .collect()
}

fn assert_partitions(src: &str) {
    let tokens = lex(src);
    let mut pos = 0;
    for t in &tokens {
        assert_eq!(t.start, pos, "gap or overlap at byte {pos} in {src:?}");
        assert!(t.end > t.start, "empty token at byte {pos} in {src:?}");
        pos = t.end;
    }
    assert_eq!(pos, src.len(), "lexer did not reach EOF of {src:?}");
}

fn assert_line_col(src: &str) {
    for t in lex(src) {
        let prefix = &src[..t.start];
        let line = 1 + prefix.matches('\n').count() as u32;
        let col = 1 + prefix.chars().rev().take_while(|&c| c != '\n').count() as u32;
        assert_eq!(
            (t.line, t.col),
            (line, col),
            "position drift at byte {} of {src:?}",
            t.start
        );
    }
}

proptest! {
    #[test]
    fn lexer_partitions_arbitrary_bytes(bytes in prop::collection::vec(0u8..=255, 1..512)) {
        // Lossy conversion mirrors what the workspace walker does with
        // unreadable files; the lexer contract is over the &str it gets.
        let src = String::from_utf8_lossy(&bytes).into_owned();
        assert_partitions(&src);
    }

    #[test]
    fn lexer_partitions_rust_soup(indices in prop::collection::vec(0u8..=255, 1..512)) {
        assert_partitions(&soup(&indices));
    }

    #[test]
    fn lexer_line_col_accounting_on_bytes(bytes in prop::collection::vec(0u8..=255, 1..512)) {
        let src = String::from_utf8_lossy(&bytes).into_owned();
        assert_line_col(&src);
    }

    #[test]
    fn lexer_line_col_accounting_on_rust_soup(indices in prop::collection::vec(0u8..=255, 1..512)) {
        assert_line_col(&soup(&indices));
    }

    #[test]
    fn rule_engine_never_panics_on_soup(indices in prop::collection::vec(0u8..=255, 1..512)) {
        let src = soup(&indices);
        // Both dispatch targets of the workspace walker, on a path that
        // also enables the crate-hygiene rule.
        let _ = check_rust_source("crates/soup/src/lib.rs", &src);
        let _ = check_manifest("crates/soup/Cargo.toml", &src);
    }
}
