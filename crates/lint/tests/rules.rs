//! Fixture-based tests: each rule fires on its bad-source fixture with
//! the exact `file:line:col: [rule-id]` diagnostic, pragmas suppress and
//! demand reasons, and — the point of the whole exercise — the live
//! workspace is clean.

use incam_lint::{check_manifest, check_rust_source, lint_workspace};
use std::path::Path;

fn fixture(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

fn rust_diags(relpath: &str, fixture_name: &str) -> Vec<String> {
    check_rust_source(relpath, &fixture(fixture_name))
        .iter()
        .map(|d| d.to_string())
        .collect()
}

#[test]
fn wall_clock_fires_outside_the_bench_harness() {
    let msg = "`Instant` is a wall-clock read; model time through the deterministic cost \
               framework (only the bench harness measures real time)";
    assert_eq!(
        rust_diags("crates/demo/src/timing.rs", "wall_clock.rs"),
        [
            format!("crates/demo/src/timing.rs:1:16: [wall-clock] {msg}"),
            format!("crates/demo/src/timing.rs:4:17: [wall-clock] {msg}"),
        ]
    );
}

#[test]
fn wall_clock_allows_the_bench_harness() {
    assert!(rust_diags("crates/rng/src/bench.rs", "wall_clock.rs").is_empty());
}

#[test]
fn unordered_iteration_fires_in_non_test_code_only() {
    let msg = "`HashMap` iterates in arbitrary order; use Vec or BTreeMap/BTreeSet so \
               report-visible state is byte-stable";
    // The HashSet inside the fixture's #[cfg(test)] module must not fire.
    assert_eq!(
        rust_diags("crates/demo/src/histo.rs", "unordered_iteration.rs"),
        [
            format!("crates/demo/src/histo.rs:1:23: [unordered-iteration] {msg}"),
            format!("crates/demo/src/histo.rs:4:17: [unordered-iteration] {msg}"),
        ]
    );
}

#[test]
fn unordered_iteration_exempts_test_directories() {
    assert!(rust_diags("crates/demo/tests/histo.rs", "unordered_iteration.rs").is_empty());
    assert!(rust_diags("crates/demo/benches/histo.rs", "unordered_iteration.rs").is_empty());
}

#[test]
fn raw_thread_fires_outside_incam_parallel() {
    assert_eq!(
        rust_diags("crates/demo/src/pool.rs", "raw_thread.rs"),
        [
            "crates/demo/src/pool.rs:2:18: [raw-thread] `std::thread` outside incam-parallel; \
          spawn work through the deterministic worker pool (incam_parallel::par_*)"
        ]
    );
}

#[test]
fn raw_thread_allows_the_worker_pool() {
    // crate-hygiene still applies to that path; only raw-thread is waived.
    assert!(rust_diags("crates/parallel/src/lib.rs", "raw_thread.rs")
        .iter()
        .all(|d| !d.contains("[raw-thread]")));
}

#[test]
fn env_read_fires_outside_allowlisted_sites() {
    assert_eq!(
        rust_diags("crates/demo/src/config.rs", "env_read.rs"),
        [
            "crates/demo/src/config.rs:2:11: [env-read] `std::env` outside the allowlisted \
          INCAM_* sites; thread configuration through explicit parameters"
        ]
    );
}

#[test]
fn env_read_allows_incam_knob_sites() {
    // crate-hygiene still applies to lib.rs paths; only env-read is waived.
    assert!(rust_diags("crates/parallel/src/lib.rs", "env_read.rs")
        .iter()
        .all(|d| !d.contains("[env-read]")));
    assert!(rust_diags("crates/rng/src/prop.rs", "env_read.rs").is_empty());
}

#[test]
fn crate_hygiene_fires_on_bare_lib_roots() {
    assert_eq!(
        rust_diags("crates/demo/src/lib.rs", "crate_hygiene/src/lib.rs"),
        [
            "crates/demo/src/lib.rs:1:1: [crate-hygiene] crate root missing \
             `#![forbid(unsafe_code)]`",
            "crates/demo/src/lib.rs:1:1: [crate-hygiene] crate root missing a `missing_docs` \
             lint (add `#![warn(missing_docs)]`)",
        ]
    );
}

#[test]
fn crate_hygiene_ignores_non_lib_files() {
    assert!(rust_diags("crates/demo/src/util.rs", "crate_hygiene/src/lib.rs").is_empty());
}

#[test]
fn crate_hygiene_accepts_attributed_roots() {
    let src = "//! Docs.\n\n#![forbid(unsafe_code)]\n#![warn(missing_docs)]\n\npub fn f() {}\n";
    assert!(check_rust_source("crates/demo/src/lib.rs", src).is_empty());
}

#[test]
fn registry_dep_fires_on_non_path_sources() {
    let msg = "must use `path = …` or `workspace = true`; registry/git sources break the \
               hermetic offline build";
    let diags: Vec<String> = check_manifest(
        "crates/demo/Cargo.toml",
        &fixture("registry_dep/Cargo.toml"),
    )
    .iter()
    .map(|d| d.to_string())
    .collect();
    assert_eq!(
        diags,
        [
            format!("crates/demo/Cargo.toml:7:1: [registry-dep] dependency `serde` {msg}"),
            format!("crates/demo/Cargo.toml:8:1: [registry-dep] dependency `rand` {msg}"),
            format!("crates/demo/Cargo.toml:10:1: [registry-dep] dependency `libc` {msg}"),
            format!("crates/demo/Cargo.toml:15:1: [registry-dep] dependency `criterion` {msg}"),
        ]
    );
}

#[test]
fn registry_dep_accepts_this_workspace_style() {
    let src = "[package]\nname = \"x\"\n\n[dependencies]\nincam-core.workspace = true\n\
               incam-rng = { path = \"../rng\" }\n\n[dependencies.incam-nn]\npath = \"../nn\"\n";
    assert!(check_manifest("Cargo.toml", src).is_empty());
}

#[test]
fn valid_pragmas_suppress_with_reasons() {
    assert!(rust_diags("crates/demo/src/cache.rs", "pragma_ok.rs").is_empty());
}

#[test]
fn pragmas_without_reasons_are_violations_and_do_not_suppress() {
    let unordered = "[unordered-iteration] `HashSet` iterates in arbitrary order; use Vec or \
                     BTreeMap/BTreeSet so report-visible state is byte-stable";
    let rules = "rules: wall-clock, unordered-iteration, raw-thread, env-read, registry-dep, \
                 crate-hygiene, fallible-unwrap";
    assert_eq!(
        rust_diags("crates/demo/src/bad.rs", "pragma_bad.rs"),
        [
            format!("crates/demo/src/bad.rs:2:31: {unordered}"),
            format!(
                "crates/demo/src/bad.rs:2:54: [pragma] pragma must be `incam-lint: \
                 allow(<rule>) — <reason>` with a non-empty reason ({rules})"
            ),
            format!("crates/demo/src/bad.rs:7:31: {unordered}"),
            format!(
                "crates/demo/src/bad.rs:7:54: [pragma] unknown rule `no-such-rule` in \
                     pragma ({rules})"
            ),
        ]
    );
}

#[test]
fn hazards_inside_comments_and_strings_do_not_fire() {
    let src = "// Instant::now() and std::thread are discussed here\n\
               const DOC: &str = \"HashMap, SystemTime, std::env\";\n\
               /* std::thread::spawn */\n";
    assert!(check_rust_source("crates/demo/src/doc.rs", src).is_empty());
}

/// The committed tree must be lint-clean: the same invariant
/// `cargo run -p incam-lint` gates in ci.sh, checked here so plain
/// `cargo test` catches violations too.
#[test]
fn live_workspace_is_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let report = lint_workspace(&root).expect("walk workspace");
    assert!(
        report.diagnostics.is_empty(),
        "workspace has lint violations:\n{}",
        report
            .diagnostics
            .iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
    assert!(
        report.files_scanned > 100,
        "suspiciously few files scanned: {}",
        report.files_scanned
    );
}

#[test]
fn fallible_unwrap_fires_under_crates_auth() {
    let msg = |m: &str| {
        format!(
            "`.{m}(` can panic in the fail-closed verify path; propagate the error \
             so the service degrades to `Fallback` instead of crashing"
        )
    };
    // .unwrap_or( never matches, the pragma'd unwrap is waived, and the
    // #[cfg(test)] module is exempt — only the two real panic sites fire.
    assert_eq!(
        rust_diags("crates/auth/src/service.rs", "fallible_unwrap.rs"),
        [
            format!(
                "crates/auth/src/service.rs:2:15: [fallible-unwrap] {}",
                msg("unwrap")
            ),
            format!(
                "crates/auth/src/service.rs:3:15: [fallible-unwrap] {}",
                msg("expect")
            ),
        ]
    );
}

#[test]
fn fallible_unwrap_scopes_to_auth_non_test_code() {
    // other crates may unwrap (their panics don't shed verify traffic)
    assert!(rust_diags("crates/demo/src/service.rs", "fallible_unwrap.rs").is_empty());
    // and auth's own test tree is scaffolding, not the serving path
    assert!(rust_diags("crates/auth/tests/fail_closed.rs", "fallible_unwrap.rs").is_empty());
}
