//! Fixture-based tests: each rule fires on its bad-source fixture with
//! the exact `file:line:col: [rule-id]` diagnostic, pragmas suppress and
//! demand reasons, and — the point of the whole exercise — the live
//! workspace is clean.

use incam_lint::{check_manifest, check_rust_source, lint_workspace};
use std::path::Path;

fn fixture(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

fn rust_diags(relpath: &str, fixture_name: &str) -> Vec<String> {
    check_rust_source(relpath, &fixture(fixture_name))
        .iter()
        .map(|d| d.to_string())
        .collect()
}

#[test]
fn wall_clock_fires_outside_the_bench_harness() {
    let msg = "`Instant` is a wall-clock read; model time through the deterministic cost \
               framework (only the bench harness measures real time)";
    assert_eq!(
        rust_diags("crates/demo/src/timing.rs", "wall_clock.rs"),
        [
            format!("crates/demo/src/timing.rs:1:16: [wall-clock] {msg}"),
            format!("crates/demo/src/timing.rs:4:17: [wall-clock] {msg}"),
        ]
    );
}

#[test]
fn wall_clock_allows_the_bench_harness() {
    assert!(rust_diags("crates/rng/src/bench.rs", "wall_clock.rs").is_empty());
}

#[test]
fn unordered_iteration_fires_in_non_test_code_only() {
    let msg = "`HashMap` iterates in arbitrary order; use Vec or BTreeMap/BTreeSet so \
               report-visible state is byte-stable";
    // The HashSet inside the fixture's #[cfg(test)] module must not fire.
    assert_eq!(
        rust_diags("crates/demo/src/histo.rs", "unordered_iteration.rs"),
        [
            format!("crates/demo/src/histo.rs:1:23: [unordered-iteration] {msg}"),
            format!("crates/demo/src/histo.rs:4:17: [unordered-iteration] {msg}"),
        ]
    );
}

#[test]
fn unordered_iteration_exempts_test_directories() {
    assert!(rust_diags("crates/demo/tests/histo.rs", "unordered_iteration.rs").is_empty());
    assert!(rust_diags("crates/demo/benches/histo.rs", "unordered_iteration.rs").is_empty());
}

#[test]
fn raw_thread_fires_outside_incam_parallel() {
    assert_eq!(
        rust_diags("crates/demo/src/pool.rs", "raw_thread.rs"),
        [
            "crates/demo/src/pool.rs:2:18: [raw-thread] `std::thread` outside incam-parallel; \
          spawn work through the deterministic worker pool (incam_parallel::par_*)"
        ]
    );
}

#[test]
fn raw_thread_allows_the_worker_pool() {
    // crate-hygiene still applies to that path; only raw-thread is waived.
    assert!(rust_diags("crates/parallel/src/lib.rs", "raw_thread.rs")
        .iter()
        .all(|d| !d.contains("[raw-thread]")));
}

#[test]
fn env_read_fires_outside_allowlisted_sites() {
    assert_eq!(
        rust_diags("crates/demo/src/config.rs", "env_read.rs"),
        [
            "crates/demo/src/config.rs:2:11: [env-read] `std::env` outside the allowlisted \
          INCAM_* sites; thread configuration through explicit parameters"
        ]
    );
}

#[test]
fn env_read_allows_incam_knob_sites() {
    // crate-hygiene still applies to lib.rs paths; only env-read is waived.
    assert!(rust_diags("crates/parallel/src/lib.rs", "env_read.rs")
        .iter()
        .all(|d| !d.contains("[env-read]")));
    assert!(rust_diags("crates/rng/src/prop.rs", "env_read.rs").is_empty());
}

#[test]
fn crate_hygiene_fires_on_bare_lib_roots() {
    assert_eq!(
        rust_diags("crates/demo/src/lib.rs", "crate_hygiene/src/lib.rs"),
        [
            "crates/demo/src/lib.rs:1:1: [crate-hygiene] crate root missing \
             `#![forbid(unsafe_code)]`",
            "crates/demo/src/lib.rs:1:1: [crate-hygiene] crate root missing a `missing_docs` \
             lint (add `#![warn(missing_docs)]`)",
        ]
    );
}

#[test]
fn crate_hygiene_ignores_non_lib_files() {
    assert!(rust_diags("crates/demo/src/util.rs", "crate_hygiene/src/lib.rs").is_empty());
}

#[test]
fn crate_hygiene_accepts_attributed_roots() {
    let src = "//! Docs.\n\n#![forbid(unsafe_code)]\n#![warn(missing_docs)]\n\npub fn f() {}\n";
    assert!(check_rust_source("crates/demo/src/lib.rs", src).is_empty());
}

#[test]
fn registry_dep_fires_on_non_path_sources() {
    let msg = "must use `path = …` or `workspace = true`; registry/git sources break the \
               hermetic offline build";
    let diags: Vec<String> = check_manifest(
        "crates/demo/Cargo.toml",
        &fixture("registry_dep/Cargo.toml"),
    )
    .iter()
    .map(|d| d.to_string())
    .collect();
    assert_eq!(
        diags,
        [
            format!("crates/demo/Cargo.toml:7:1: [registry-dep] dependency `serde` {msg}"),
            format!("crates/demo/Cargo.toml:8:1: [registry-dep] dependency `rand` {msg}"),
            format!("crates/demo/Cargo.toml:10:1: [registry-dep] dependency `libc` {msg}"),
            format!("crates/demo/Cargo.toml:15:1: [registry-dep] dependency `criterion` {msg}"),
        ]
    );
}

#[test]
fn registry_dep_accepts_this_workspace_style() {
    let src = "[package]\nname = \"x\"\n\n[dependencies]\nincam-core.workspace = true\n\
               incam-rng = { path = \"../rng\" }\n\n[dependencies.incam-nn]\npath = \"../nn\"\n";
    assert!(check_manifest("Cargo.toml", src).is_empty());
}

#[test]
fn valid_pragmas_suppress_with_reasons() {
    assert!(rust_diags("crates/demo/src/cache.rs", "pragma_ok.rs").is_empty());
}

#[test]
fn pragmas_without_reasons_are_violations_and_do_not_suppress() {
    let unordered = "[unordered-iteration] `HashSet` iterates in arbitrary order; use Vec or \
                     BTreeMap/BTreeSet so report-visible state is byte-stable";
    let rules = "rules: wall-clock, unordered-iteration, raw-thread, env-read, registry-dep, \
                 crate-hygiene, fallible-unwrap, par-capture-mut, par-float-accum, lossy-cast, \
                 unchecked-arith";
    assert_eq!(
        rust_diags("crates/demo/src/bad.rs", "pragma_bad.rs"),
        [
            format!("crates/demo/src/bad.rs:2:31: {unordered}"),
            format!(
                "crates/demo/src/bad.rs:2:54: [pragma] pragma must be `incam-lint: \
                 allow(<rule>) — <reason>` with a non-empty reason ({rules})"
            ),
            format!("crates/demo/src/bad.rs:7:31: {unordered}"),
            format!(
                "crates/demo/src/bad.rs:7:54: [pragma] unknown rule `no-such-rule` in \
                     pragma ({rules})"
            ),
        ]
    );
}

#[test]
fn hazards_inside_comments_and_strings_do_not_fire() {
    let src = "// Instant::now() and std::thread are discussed here\n\
               const DOC: &str = \"HashMap, SystemTime, std::env\";\n\
               /* std::thread::spawn */\n";
    assert!(check_rust_source("crates/demo/src/doc.rs", src).is_empty());
}

/// The committed tree must be lint-clean: the same invariant
/// `cargo run -p incam-lint` gates in ci.sh, checked here so plain
/// `cargo test` catches violations too.
#[test]
fn live_workspace_is_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let report = lint_workspace(&root).expect("walk workspace");
    assert!(
        report.diagnostics.is_empty(),
        "workspace has lint violations:\n{}",
        report
            .diagnostics
            .iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
    assert!(
        report.files_scanned > 100,
        "suspiciously few files scanned: {}",
        report.files_scanned
    );
}

#[test]
fn fallible_unwrap_fires_in_library_code() {
    let msg = |m: &str| {
        format!(
            "`.{m}(` can panic in non-test library code; propagate the error to the \
             caller, or state the invariant that makes it unreachable in a pragma"
        )
    };
    // .unwrap_or( never matches, the pragma'd unwrap is waived, and the
    // #[cfg(test)] module is exempt — only the two real panic sites fire.
    // Since v2 the rule covers every library source, not just crates/auth.
    for relpath in ["crates/auth/src/service.rs", "crates/demo/src/service.rs"] {
        assert_eq!(
            rust_diags(relpath, "fallible_unwrap.rs"),
            [
                format!("{relpath}:2:15: [fallible-unwrap] {}", msg("unwrap")),
                format!("{relpath}:3:15: [fallible-unwrap] {}", msg("expect")),
            ]
        );
    }
}

#[test]
fn fallible_unwrap_exempts_binaries_and_test_trees() {
    // binaries may unwrap: a CLI panic is a legible failure, not a shed
    assert!(rust_diags("crates/demo/src/main.rs", "fallible_unwrap.rs").is_empty());
    assert!(rust_diags("crates/demo/src/bin/tool.rs", "fallible_unwrap.rs").is_empty());
    // and test trees are scaffolding, not the serving path
    assert!(rust_diags("crates/auth/tests/fail_closed.rs", "fallible_unwrap.rs").is_empty());
    assert!(rust_diags("crates/demo/benches/speed.rs", "fallible_unwrap.rs").is_empty());
}

#[test]
fn par_capture_mut_fires_on_mutated_captures() {
    // `hits` is declared outside the closure passed to `par_map`, so the
    // `.push(` is a capture mutation; `*f * 2.0` (a read) is fine.
    assert_eq!(
        rust_diags("crates/demo/src/kernels.rs", "par_capture_mut.rs"),
        [
            "crates/demo/src/kernels.rs:6:9: [par-capture-mut] closure passed to `par_map` \
             mutates captured `hits`; per-item work must be pure — return the value and let \
             the deterministic pool combine results"
        ]
    );
}

#[test]
fn par_float_accum_fires_on_compound_accumulation() {
    // `total += s` inside the `par_map_rows` closure accumulates in
    // schedule order; the `let s: f32 = …` type ascription must not be
    // mistaken for an assignment.
    assert_eq!(
        rust_diags("crates/demo/src/kernels.rs", "par_float_accum.rs"),
        [
            "crates/demo/src/kernels.rs:7:9: [par-float-accum] order-sensitive `+=` \
             accumulation into captured `total` inside a `par_map_rows` closure; use \
             `par_reduce` or the banded helpers (`par_bands_mut2`) so combination order is \
             fixed"
        ]
    );
}

#[test]
fn race_rules_exempt_test_trees() {
    assert!(rust_diags("crates/demo/tests/kernels.rs", "par_capture_mut.rs").is_empty());
    assert!(rust_diags("crates/demo/benches/kernels.rs", "par_float_accum.rs").is_empty());
}

#[test]
fn lossy_cast_fires_on_unguarded_narrowing_in_hot_crates() {
    // The unguarded cast fires; the clamp-guarded one on line 6 is the
    // approved idiom and stays silent.
    assert_eq!(
        rust_diags("crates/imaging/src/quant.rs", "lossy_cast.rs"),
        [
            "crates/imaging/src/quant.rs:2:17: [lossy-cast] `as u8` silently truncates in a \
             hot kernel; clamp or mask the value explicitly before narrowing, or justify the \
             range with a pragma"
        ]
    );
    // Outside the hot-kernel crates the cast is not a paper-accuracy
    // hazard and the rule does not apply.
    assert!(rust_diags("crates/demo/src/quant.rs", "lossy_cast.rs").is_empty());
}

#[test]
fn unchecked_arith_fires_in_hot_crates_only() {
    assert_eq!(
        rust_diags("crates/imaging/src/wrap.rs", "unchecked_arith.rs"),
        [
            "crates/imaging/src/wrap.rs:2:7: [unchecked-arith] `.wrapping_add(` bypasses \
             overflow/bounds checks in a hot kernel; use widening or checked arithmetic, or \
             justify the wrap with a pragma"
        ]
    );
    assert!(rust_diags("crates/demo/src/wrap.rs", "unchecked_arith.rs").is_empty());
    assert!(rust_diags("crates/imaging/tests/wrap.rs", "unchecked_arith.rs").is_empty());
}

#[test]
fn diagnostics_are_ordered_and_deduplicated() {
    // Two rules interleave across four sites; the output must come back
    // sorted by (path, line, col, rule, message) regardless of which
    // rule pass emitted what first, with no duplicates.
    let unordered = "[unordered-iteration] `HashMap` iterates in arbitrary order; use Vec or \
                     BTreeMap/BTreeSet so report-visible state is byte-stable";
    let wall = "[wall-clock] `Instant` is a wall-clock read; model time through the \
                deterministic cost framework (only the bench harness measures real time)";
    let diags = rust_diags("crates/demo/src/metrics.rs", "multi_finding.rs");
    assert_eq!(
        diags,
        [
            format!("crates/demo/src/metrics.rs:1:23: {unordered}"),
            format!("crates/demo/src/metrics.rs:2:16: {wall}"),
            format!("crates/demo/src/metrics.rs:4:21: {unordered}"),
            format!("crates/demo/src/metrics.rs:5:13: {wall}"),
        ]
    );
    let mut resorted = diags.clone();
    resorted.sort();
    resorted.dedup();
    assert_eq!(
        diags, resorted,
        "engine output must already be sorted + deduped"
    );
}

/// The coherence pass over a planted fixture tree: `beta` is registered
/// but never gated, documented, or archived, and ci.sh gates a `ghost`
/// experiment the registry doesn't know.
#[test]
fn coherence_flags_registry_drift() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/coherence_tree");
    let report = lint_workspace(&root).expect("walk fixture tree");
    let diags: Vec<String> = report.diagnostics.iter().map(|d| d.to_string()).collect();
    assert_eq!(
        diags,
        [
            "EXPERIMENTS.md:1:1: [coherence] experiment `beta` is not documented in \
             EXPERIMENTS.md (mention `beta` or `--experiment beta`)"
                .to_string(),
            "ci.sh:1:1: [coherence] ci.sh gates unknown experiment `ghost` (not in repro's \
             ALL list)"
                .to_string(),
            "ci.sh:1:1: [coherence] experiment `beta` has no CI determinism gate (expected a \
             `repro_diff beta` invocation in ci.sh)"
                .to_string(),
            "crates/bench/src/bin/repro.rs:1:1: [coherence] experiment `beta` has no \
             committed results (expected results/beta.txt; run `repro --experiment beta \
             --seed 2017 --output results`)"
                .to_string(),
        ]
    );
}
