use incam_parallel::par_map_rows;

pub fn energy(rows: &[Vec<f32>], out: &mut [f32]) -> f32 {
    let mut total = 0.0f32;
    par_map_rows(rows, out, |row| {
        let s: f32 = row.iter().sum();
        total += s;
        s
    });
    total
}
