use std::collections::HashMap;

fn histogram(xs: &[u32]) -> Vec<(u32, u32)> {
    let mut h = HashMap::new();
    for &x in xs {
        *h.entry(x).or_insert(0u32) += 1;
    }
    let mut out: Vec<_> = h.into_iter().collect();
    out.sort_unstable();
    out
}

#[cfg(test)]
mod tests {
    use std::collections::HashSet;

    #[test]
    fn hash_collections_are_fine_in_tests() {
        let s: HashSet<u32> = [1, 2, 3].into_iter().collect();
        assert_eq!(s.len(), 3);
    }
}
