fn count() -> usize {
    let s = std::collections::HashSet::from([1u32]); // incam-lint: allow(unordered-iteration)
    s.len()
}

fn other() -> usize {
    let s = std::collections::HashSet::from([2u32]); // incam-lint: allow(no-such-rule) — typo'd id
    s.len()
}
