fn spawn_worker() {
    let handle = std::thread::spawn(|| 42);
    let _ = handle.join();
}
