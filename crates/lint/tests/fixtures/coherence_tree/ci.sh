#!/usr/bin/env bash
repro_diff alpha
repro_diff ghost
