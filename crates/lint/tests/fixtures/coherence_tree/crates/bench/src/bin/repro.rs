const ALL: &[&str] = &["alpha", "beta"];

fn main() {
    println!("{}", ALL.len());
}
