use incam_parallel::par_map;

pub fn detect(frames: &[f32]) -> Vec<f32> {
    let mut hits = Vec::new();
    par_map(frames, |f| {
        hits.push(*f);
        *f * 2.0
    })
}
