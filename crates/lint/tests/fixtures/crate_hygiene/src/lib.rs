//! A crate root missing both hygiene attributes.

pub fn answer() -> u32 {
    42
}
