pub fn wrap(a: u8, b: u8) -> u8 {
    a.wrapping_add(b)
}
