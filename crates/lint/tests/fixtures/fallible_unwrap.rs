fn risky(v: Option<u32>, r: Result<u32, ()>) -> u32 {
    let a = v.unwrap();
    let b = r.expect("boom");
    // `.unwrap_or(` is a whole different ident and must not match
    let c = v.unwrap_or(0);
    let d = v.unwrap_or(1); // incam-lint: allow(fallible-unwrap) — fixture: not a panic site
    a + b + c + d
}

fn waived(v: Option<u32>) -> u32 {
    // incam-lint: allow(fallible-unwrap) — fixture: invariant holds by construction
    v.unwrap()
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_is_fine_in_tests() {
        assert_eq!(Some(1u32).unwrap(), 1);
    }
}
