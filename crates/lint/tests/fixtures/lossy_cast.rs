pub fn quantize(v: f32) -> u8 {
    (v * 255.0) as u8
}

pub fn quantize_guarded(v: f32) -> u8 {
    (v.clamp(0.0, 1.0) * 255.0).round() as u8
}
