// incam-lint: allow(unordered-iteration) — fixture: the map is never iterated
use std::collections::HashMap;

fn singleton() -> usize {
    let mut h = HashMap::new(); // incam-lint: allow(unordered-iteration) — len() only
    h.insert(1u32, 1u32);
    h.len()
}
