use std::collections::HashMap;
use std::time::Instant;

pub fn snapshot(m: &HashMap<u32, u32>) -> u128 {
    let t = Instant::now();
    let _ = m.len();
    t.elapsed().as_nanos()
}
