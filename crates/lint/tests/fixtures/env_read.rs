fn thread_count() -> usize {
    match std::env::var("THREADS") {
        Ok(v) => v.parse().unwrap_or(1),
        Err(_) => 1,
    }
}
