//! Fuzz and agreement properties for the parser: on arbitrary input —
//! raw byte soup and Rust-flavored token soup biased toward item
//! keywords, attributes and closure pipes — parsing never panics and
//! the item spans exactly partition the file; and on every committed
//! fixture, the parsed `cfg(test)` extraction agrees with the v1
//! brace-matching heuristic it replaced.

use incam_lint::lexer::lex;
use incam_lint::parser::{self, File, Item};
use incam_lint::rules::brace_cfg_test_line_spans;
use incam_rng::prelude::*;
use std::path::{Path, PathBuf};

/// Characters that exercise the lexer's tricky state machines.
const CHAR_SOUP: &[char] = &[
    '"', '\'', '/', '*', '#', '\\', '\n', 'r', 'b', 'c', '_', 'x', '0', '9', '.', ':', '{', '}',
    '(', ')', '[', ']', ' ', '!', 'é', '∀',
];

/// Fragments that exercise the parser's item machinery and the closure
/// scanner far more often than character soup would: item keywords,
/// attribute shells, pipes in both closure and binary-or position,
/// unbalanced braces.
const RUST_SOUP: &[&str] = &[
    "fn", "mod", "impl", "struct", "enum", "trait", "use", "pub", "unsafe", "#", "#!", "[", "]",
    "(", ")", "{", "}", "cfg", "test", "derive", "|", "||", "move", "=", "==", "=>", "<=", "..=",
    "let", "for", "in", "if", "else", "match", "return", ";", ",", ":", "::", "x", "y", "f32",
    "\"s\"", "'a", "0.5", "128", "+=", "-=", "*=", "&", "mut", "as", "u8", "// c\n", "/* b */",
    "\n", ".", "par_map",
];

fn char_soup(indices: &[u8]) -> String {
    indices
        .iter()
        .map(|&b| CHAR_SOUP[b as usize % CHAR_SOUP.len()])
        .collect()
}

fn rust_soup(indices: &[u8]) -> String {
    indices
        .iter()
        .map(|&b| RUST_SOUP[b as usize % RUST_SOUP.len()])
        .collect::<Vec<_>>()
        .join(" ")
}

/// Sibling spans are adjacent, children stay inside their parent.
fn assert_sibling_invariants(items: &[Item], parent: Option<(usize, usize)>) {
    for w in items.windows(2) {
        assert_eq!(
            w[0].span.end, w[1].span.start,
            "gap or overlap between sibling items"
        );
    }
    if let Some((lo, hi)) = parent {
        for item in items {
            assert!(
                item.span.start >= lo && item.span.end <= hi,
                "child span {:?} escapes parent ({lo}, {hi})",
                item.span
            );
        }
    }
    for item in items {
        assert_sibling_invariants(&item.children, Some((item.span.start, item.span.end)));
    }
}

/// Parses `src` and checks the structural invariants the rule engine
/// relies on: never panics (totality), and top-level item spans exactly
/// partition `[0, src.len())`.
fn assert_parses_totally(src: &str) -> File {
    let tokens = lex(src);
    let file = parser::parse(src, &tokens);
    if !file.items.is_empty() {
        assert_eq!(file.items[0].span.start, 0, "first item must start at 0");
        assert_eq!(
            file.items.last().map(|i| i.span.end),
            Some(src.len()),
            "last item must end at EOF"
        );
    }
    assert_sibling_invariants(&file.items, None);
    file
}

proptest! {
    #[test]
    fn parser_is_total_on_arbitrary_bytes(bytes in prop::collection::vec(0u8..=255, 1..512)) {
        let src = String::from_utf8_lossy(&bytes).into_owned();
        assert_parses_totally(&src);
    }

    #[test]
    fn parser_is_total_on_char_soup(indices in prop::collection::vec(0u8..=255, 1..512)) {
        assert_parses_totally(&char_soup(&indices));
    }

    #[test]
    fn parser_is_total_on_rust_soup(indices in prop::collection::vec(0u8..=255, 1..256)) {
        assert_parses_totally(&rust_soup(&indices));
    }

    #[test]
    fn closure_scan_is_total_on_rust_soup(indices in prop::collection::vec(0u8..=255, 1..256)) {
        let src = rust_soup(&indices);
        let tokens = lex(&src);
        let _ = parser::scan_closures(&src, &tokens, 0, tokens.len());
    }
}

/// Every committed `.rs` fixture, recursively.
fn fixture_sources() -> Vec<(PathBuf, String)> {
    fn walk(dir: &Path, out: &mut Vec<(PathBuf, String)>) {
        let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)
            .expect("fixtures dir")
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .collect();
        entries.sort();
        for path in entries {
            if path.is_dir() {
                walk(&path, out);
            } else if path.extension().is_some_and(|e| e == "rs") {
                let src = std::fs::read_to_string(&path).expect("read fixture");
                out.push((path, src));
            }
        }
    }
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures");
    let mut out = Vec::new();
    walk(&root, &mut out);
    out
}

/// The parsed `cfg(test)` extraction must agree with the v1
/// brace-matching heuristic on every committed fixture (the corpus the
/// old engine's behavior was pinned on).
#[test]
fn cfg_test_extraction_agrees_with_the_brace_matcher_on_fixtures() {
    let sources = fixture_sources();
    assert!(sources.len() >= 10, "fixture corpus went missing");
    for (path, src) in &sources {
        let tokens = lex(src);
        let file = parser::parse(src, &tokens);
        assert_eq!(
            file.cfg_test_line_spans(&tokens),
            brace_cfg_test_line_spans(src),
            "cfg(test) span disagreement in {}",
            path.display()
        );
    }
}

/// Same agreement on this crate's own sources — real code with nested
/// modules, attributes and closures.
#[test]
fn cfg_test_extraction_agrees_with_the_brace_matcher_on_own_sources() {
    let src_dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("src");
    let mut checked = 0;
    let mut stack = vec![src_dir];
    while let Some(dir) = stack.pop() {
        let mut entries: Vec<PathBuf> = std::fs::read_dir(&dir)
            .expect("src dir")
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .collect();
        entries.sort();
        for path in entries {
            if path.is_dir() {
                stack.push(path);
            } else if path.extension().is_some_and(|e| e == "rs") {
                let src = std::fs::read_to_string(&path).expect("read source");
                let tokens = lex(&src);
                let file = parser::parse(&src, &tokens);
                assert_eq!(
                    file.cfg_test_line_spans(&tokens),
                    brace_cfg_test_line_spans(&src),
                    "cfg(test) span disagreement in {}",
                    path.display()
                );
                checked += 1;
            }
        }
    }
    assert!(checked >= 10, "expected to cover the whole lint crate");
}
