//! # incam-core — the in-camera processing-pipeline framework
//!
//! This crate implements the analytical framework of *“Exploring
//! Computation-Communication Tradeoffs in Camera Systems”* (IISWC 2017):
//! camera applications decompose into pipelines of processing **blocks**
//! (Fig. 1), each of which may run in-camera on some backend (ASIC, FPGA,
//! GPU, CPU) or be **offloaded** to the cloud over a communication link.
//!
//! The total cost of the system combines per-block **computation** costs
//! with the **communication** cost of offloading at a chosen cut point.
//! Two objectives matter in the paper's two case studies:
//!
//! * throughput (frames/sec), composed as the *minimum* over pipeline
//!   stages — see [`pipeline::Pipeline::compute_fps_through`] and
//!   [`offload::analyze_cuts`];
//! * energy (joules/frame), composed *additively* — see
//!   [`energy::EnergyBreakdown`].
//!
//! # Quick start
//!
//! ```
//! use incam_core::block::{Backend, BlockSpec, DataTransform};
//! use incam_core::link::Link;
//! use incam_core::offload::{analyze_cuts, best_cut};
//! use incam_core::pipeline::{Pipeline, Source, Stage};
//! use incam_core::units::{Bytes, Fps};
//!
//! // A toy pipeline: the sensor's data is expanded by alignment, reduced
//! // by depth estimation, and heavily reduced by stitching.
//! let pipeline = Pipeline::new(Source::new("sensor", Bytes::from_mib(127.0), Fps::new(100.0)))
//!     .then(Stage::new(BlockSpec::core("B2", DataTransform::Scale(4.0)),
//!                      Backend::Cpu, Fps::new(174.0)))
//!     .then(Stage::new(BlockSpec::core("B3", DataTransform::Scale(0.75)),
//!                      Backend::Fpga, Fps::new(31.6)))
//!     .then(Stage::new(BlockSpec::core("B4", DataTransform::Scale(1.0 / 6.0)),
//!                      Backend::Fpga, Fps::new(140.0)));
//!
//! let best = best_cut(&pipeline, &Link::ethernet_25g());
//! assert_eq!(best.cut, 3); // process everything in-camera
//! for cut in analyze_cuts(&pipeline, &Link::ethernet_25g()) {
//!     println!("{}: {:.1} FPS", cut.label, cut.total().fps());
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod block;
pub mod energy;
pub mod explore;
pub mod fleet;
pub mod link;
pub mod offload;
pub mod pipeline;
pub mod report;
pub mod runtime;
pub mod units;

pub use block::{Backend, BlockKind, BlockSpec, DataTransform};
pub use energy::EnergyBreakdown;
pub use explore::{
    pareto_frontier, Binding, BlockSpace, ConfigAnalysis, Configuration, PipelineSpace,
};
pub use fleet::{CameraProfile, FleetReport};
pub use link::{Link, LinkError};
pub use offload::{analyze_cut, analyze_cuts, best_cut, Constraint, CutAnalysis};
pub use pipeline::{Pipeline, Source, Stage};
pub use runtime::{
    ComputeCondition, DegradationReport, FaultOracle, IdealOracle, LinkCondition, RetryPolicy,
    Runtime,
};
pub use units::{Bytes, BytesPerSec, Fps, Hertz, Joules, Seconds, Watts};
