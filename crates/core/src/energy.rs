//! Energy accounting for power-constrained camera pipelines.
//!
//! The face-authentication case study minimizes *energy* rather than
//! maximizing throughput: the WISPCam runs from harvested RF energy, so the
//! relevant question is whether the per-frame energy of the chosen pipeline
//! configuration fits inside the harvested power budget at the target frame
//! rate. [`EnergyBreakdown`] itemizes where each joule goes and converts
//! per-frame energy to average power.

use crate::units::{Fps, Joules, Watts};
use core::fmt;

/// A named per-frame energy contribution.
#[derive(Debug, Clone, PartialEq)]
pub struct EnergyItem {
    /// Component name (e.g. `"sensor"`, `"NN accelerator"`, `"radio"`).
    pub name: String,
    /// Energy charged per processed frame. For blocks that run on only a
    /// fraction of frames (downstream of a filter), this is already the
    /// *expected* per-frame energy.
    pub energy: Joules,
}

/// Itemized per-frame energy of a pipeline configuration.
///
/// # Examples
///
/// ```
/// use incam_core::energy::EnergyBreakdown;
/// use incam_core::units::{Fps, Joules, Watts};
///
/// let mut bd = EnergyBreakdown::new("MD+FD+NN");
/// bd.add("sensor", Joules::from_micro(20.0));
/// bd.add("motion detection", Joules::from_micro(1.5));
/// bd.add("NN accelerator", Joules::from_micro(4.0));
/// assert!((bd.total().micros() - 25.5).abs() < 1e-9);
/// // at 1 FPS the average power equals the per-frame energy per second
/// let p = bd.average_power(Fps::new(1.0));
/// assert!(p < Watts::from_milli(1.0)); // sub-mW operation
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct EnergyBreakdown {
    label: String,
    items: Vec<EnergyItem>,
}

impl EnergyBreakdown {
    /// Creates an empty breakdown for the named configuration.
    pub fn new(label: impl Into<String>) -> Self {
        Self {
            label: label.into(),
            items: Vec::new(),
        }
    }

    /// The configuration label.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Adds a named contribution.
    pub fn add(&mut self, name: impl Into<String>, energy: Joules) {
        self.items.push(EnergyItem {
            name: name.into(),
            energy,
        });
    }

    /// The itemized contributions, in insertion order.
    pub fn items(&self) -> &[EnergyItem] {
        &self.items
    }

    /// Total per-frame energy.
    pub fn total(&self) -> Joules {
        self.items.iter().map(|i| i.energy).sum()
    }

    /// Average power when frames are processed at `rate`.
    pub fn average_power(&self, rate: Fps) -> Watts {
        self.total() * rate
    }

    /// Maximum sustainable frame rate under a harvested power budget.
    ///
    /// # Examples
    ///
    /// ```
    /// # use incam_core::energy::EnergyBreakdown;
    /// # use incam_core::units::{Joules, Watts};
    /// let mut bd = EnergyBreakdown::new("cfg");
    /// bd.add("all", Joules::from_micro(100.0));
    /// let fps = bd.max_rate(Watts::from_micro(200.0));
    /// assert!((fps.fps() - 2.0).abs() < 1e-9);
    /// ```
    pub fn max_rate(&self, budget: Watts) -> Fps {
        Fps::new(budget.watts() / self.total().joules())
    }

    /// Whether the configuration fits a power budget at a target rate.
    pub fn fits(&self, budget: Watts, rate: Fps) -> bool {
        self.average_power(rate) <= budget
    }
}

impl fmt::Display for EnergyBreakdown {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}:", self.label)?;
        for item in &self.items {
            writeln!(f, "  {:<24} {}", item.name, item.energy.human())?;
        }
        write!(f, "  {:<24} {}", "total", self.total().human())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> EnergyBreakdown {
        let mut bd = EnergyBreakdown::new("test");
        bd.add("a", Joules::from_micro(10.0));
        bd.add("b", Joules::from_micro(30.0));
        bd
    }

    #[test]
    fn totals_and_power() {
        let bd = sample();
        assert!((bd.total().micros() - 40.0).abs() < 1e-12);
        let p = bd.average_power(Fps::new(2.0));
        assert!((p.microwatts() - 80.0).abs() < 1e-9);
    }

    #[test]
    fn max_rate_inverse_of_power() {
        let bd = sample();
        let budget = Watts::from_micro(120.0);
        let fps = bd.max_rate(budget);
        assert!((fps.fps() - 3.0).abs() < 1e-9);
        assert!(bd.fits(budget, Fps::new(3.0)));
        assert!(!bd.fits(budget, Fps::new(3.01)));
    }

    #[test]
    fn display_lists_items() {
        let s = sample().to_string();
        assert!(s.contains("a"));
        assert!(s.contains("total"));
        assert!(s.contains("uJ"));
    }

    #[test]
    fn empty_breakdown_is_zero() {
        let bd = EnergyBreakdown::new("empty");
        assert_eq!(bd.total(), Joules::ZERO);
        assert!(bd.items().is_empty());
    }
}
