//! Configuration-space exploration: enumerate every way of binding and
//! cutting a pipeline, and rank the results on the paper's objectives.
//!
//! The paper's Fig. 10 is not a single pipeline — it is a *search over
//! nine configurations*: each block may run on one of several candidate
//! backends, and the pipeline may hand off to the cloud at any cut
//! point. This module makes that search a first-class object:
//!
//! * a [`Binding`] is one candidate way to execute a block (backend +
//!   sustained throughput + per-frame energy + an optional output-size
//!   override for bindings that emit coarser data);
//! * a [`BlockSpace`] is a block together with its candidate bindings;
//! * a [`PipelineSpace`] is a source plus an ordered sequence of block
//!   spaces — the whole configuration space;
//! * a [`Configuration`] is one point in that space: a binding choice
//!   per block plus an offload cut;
//! * [`PipelineSpace::configurations`] enumerates the space lazily
//!   (compose with `Iterator::filter` for predicate pruning), and
//!   [`pareto_frontier`] keeps the configurations that are not dominated
//!   on the three paper objectives — total FPS, in-camera energy per
//!   frame, and uploaded bytes per frame.
//!
//! Two enumeration granularities exist because bindings of blocks *after*
//! the cut never execute in camera: the full product
//! ([`PipelineSpace::cardinality`] points) and the *distinct* space
//! ([`PipelineSpace::distinct_configurations`]), which keeps one
//! canonical representative per observable configuration. The paper's
//! nine Fig. 10 configurations are exactly the distinct space of the VR
//! pipeline with the depth block's three backends coupled to stitching.
//!
//! On top of the enumeration sits the layered search engine, for spaces
//! where the distinct product is combinatorially large:
//!
//! * a [`SearchPlan`] prunes the space before and during enumeration —
//!   per-block dominance pre-pruning drops bindings an earlier
//!   same-block sibling weakly dominates on (throughput, energy,
//!   output size), and prefix bounds kill whole subtrees during the
//!   cut-major descent — then memoizes the surviving [`Frontier`]
//!   (keyed by an FNV-1a [`space_digest`]) so repeated
//!   [`SearchPlan::best`] / [`SearchPlan::pareto_frontier`] calls on an
//!   unchanged space re-rank a small frontier instead of re-enumerating;
//! * an [`IncrementalSearch`] owns a committed [`Frontier`] and
//!   re-ranks it under a *new link only*: the link enters the objective
//!   solely through the upload term, so the link-independent
//!   three-objective frontier is a superset of every new link's optimum
//!   ([`PipelineSpace::best_cut_held`] is a thin wrapper over it).
//!
//! All pruning is behavior-preserving: winners and Pareto frontiers are
//! bit-identical to the exhaustive methods. The dominance argument is
//! spelled out on [`SearchPlan`] and in `DESIGN.md`
//! ("Configuration-space exploration"); `tests/search_equivalence.rs`
//! holds the equivalence oracle (pruned == exhaustive on random spaces).
//!
//! # Examples
//!
//! ```
//! use incam_core::block::{Backend, BlockSpec, DataTransform};
//! use incam_core::explore::{Binding, BlockSpace, PipelineSpace};
//! use incam_core::link::Link;
//! use incam_core::pipeline::Source;
//! use incam_core::units::{Bytes, BytesPerSec, Fps};
//!
//! // One block, two candidate backends: a slow CPU and a fast ASIC.
//! let space = PipelineSpace::new(Source::new("s", Bytes::new(1000.0), Fps::new(100.0)))
//!     .with_block(BlockSpace::new(
//!         BlockSpec::core("reduce", DataTransform::Scale(0.25)),
//!         vec![
//!             Binding::new(Backend::Cpu, Fps::new(5.0)),
//!             Binding::new(Backend::Asic, Fps::new(200.0)),
//!         ],
//!     ));
//! assert_eq!(space.cardinality(), 4); // 2 bindings x 2 cuts
//!
//! let link = Link::new("l", BytesPerSec::new(10_000.0), 1.0);
//! let best = space.best(&link).unwrap();
//! assert_eq!(best.config.cut(), 1); // reduce in camera...
//! assert_eq!(best.backends(&space), vec![Backend::Asic]); // ...on the ASIC
//! ```

use crate::block::{Backend, BlockKind, BlockSpec, DataTransform};
use crate::link::Link;
use crate::offload::{analyze_cut, Constraint};
use crate::pipeline::{Pipeline, Source, Stage};
use crate::units::{Bytes, Fps, Joules};
use std::cell::{OnceCell, RefCell};

/// One candidate way to execute a block: a backend with concrete costs.
#[derive(Debug, Clone, PartialEq)]
pub struct Binding {
    backend: Backend,
    throughput: Fps,
    energy_per_frame: Joules,
    output: Option<DataTransform>,
}

impl Binding {
    /// A binding of the block to `backend` at the given sustained
    /// throughput, with zero per-frame energy and the block's own data
    /// transform.
    pub fn new(backend: Backend, throughput: Fps) -> Self {
        Self {
            backend,
            throughput,
            energy_per_frame: Joules::ZERO,
            output: None,
        }
    }

    /// Sets the per-frame processing energy of this binding.
    #[must_use]
    pub fn with_energy_per_frame(mut self, energy: Joules) -> Self {
        self.energy_per_frame = energy;
        self
    }

    /// Overrides the block's output-size transform for this binding —
    /// e.g. a coarse-grid depth solver that emits a quarter-size
    /// disparity map.
    #[must_use]
    pub fn with_output(mut self, output: DataTransform) -> Self {
        self.output = Some(output);
        self
    }

    /// The backend this binding executes on.
    pub fn backend(&self) -> Backend {
        self.backend
    }

    /// Sustained throughput of this binding.
    pub fn throughput(&self) -> Fps {
        self.throughput
    }

    /// Per-frame processing energy of this binding.
    pub fn energy_per_frame(&self) -> Joules {
        self.energy_per_frame
    }

    /// The output-size override, if any.
    pub fn output(&self) -> Option<DataTransform> {
        self.output
    }
}

/// A block together with its candidate bindings.
#[derive(Debug, Clone, PartialEq)]
pub struct BlockSpace {
    spec: BlockSpec,
    bindings: Vec<Binding>,
}

impl BlockSpace {
    /// Creates a block space.
    ///
    /// # Panics
    ///
    /// Panics if `bindings` is empty — a block with no way to execute it
    /// is not explorable.
    pub fn new(spec: BlockSpec, bindings: Vec<Binding>) -> Self {
        assert!(
            !bindings.is_empty(),
            "block {:?} needs at least one candidate binding",
            spec.name()
        );
        Self { spec, bindings }
    }

    /// The underlying block description.
    pub fn spec(&self) -> &BlockSpec {
        &self.spec
    }

    /// The candidate bindings, in declaration order.
    pub fn bindings(&self) -> &[Binding] {
        &self.bindings
    }

    /// Materializes the stage for binding `choice`.
    ///
    /// # Panics
    ///
    /// Panics if `choice` is out of range.
    pub fn stage(&self, choice: usize) -> Stage {
        let binding = &self.bindings[choice];
        let spec = match binding.output {
            Some(transform) => BlockSpec::new(self.spec.name(), self.spec.kind(), transform),
            None => self.spec.clone(),
        };
        Stage::new(spec, binding.backend, binding.throughput)
            .with_energy_per_frame(binding.energy_per_frame)
    }
}

/// One point in a configuration space: a binding choice per block plus an
/// offload cut.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Configuration {
    bindings: Vec<usize>,
    cut: usize,
}

impl Configuration {
    /// Creates a configuration from explicit binding indices and a cut.
    pub fn new(bindings: Vec<usize>, cut: usize) -> Self {
        Self { bindings, cut }
    }

    /// Binding index per block, in pipeline order.
    pub fn bindings(&self) -> &[usize] {
        &self.bindings
    }

    /// Number of blocks executed in camera before offload.
    pub fn cut(&self) -> usize {
        self.cut
    }

    /// `true` when every binding choice past the cut is the default
    /// (index 0). Bindings past the cut never execute, so the canonical
    /// representatives enumerate the *distinct* configuration space.
    pub fn is_canonical(&self) -> bool {
        self.bindings.iter().skip(self.cut).all(|&b| b == 0)
    }
}

/// Cost analysis of one configuration over one link: the Fig. 10 row for
/// that configuration, extended with the energy objective.
#[derive(Debug, Clone, PartialEq)]
pub struct ConfigAnalysis {
    /// The analyzed configuration.
    pub config: Configuration,
    /// Human-readable label of the in-camera prefix, e.g. `S+B3(F)`.
    pub label: String,
    /// Pipelined in-camera compute throughput.
    pub compute: Fps,
    /// Uplink throughput for the cut's output data.
    pub communication: Fps,
    /// Data uploaded per frame at the cut.
    pub upload: Bytes,
    /// In-camera energy per frame through the cut (including capture).
    pub energy: Joules,
}

impl ConfigAnalysis {
    /// Sustained end-to-end frame rate: the binding constraint of
    /// compute and communication.
    pub fn total(&self) -> Fps {
        self.compute.min(self.communication)
    }

    /// Whether both computation and communication meet a target rate.
    pub fn meets(&self, target: Fps) -> bool {
        self.total() >= target
    }

    /// Which of the two rate costs binds.
    pub fn constraint(&self) -> Constraint {
        if self.compute <= self.communication {
            Constraint::Computation
        } else {
            Constraint::Communication
        }
    }

    /// The backend of each in-camera block (up to the cut), resolved
    /// against the space that produced this analysis.
    pub fn backends(&self, space: &PipelineSpace) -> Vec<Backend> {
        self.config
            .bindings
            .iter()
            .zip(space.blocks())
            .take(self.config.cut)
            .map(|(&b, block)| block.bindings()[b].backend())
            .collect()
    }

    /// `true` if `self` is at least as good as `other` on all three
    /// objectives (total FPS up, energy down, upload down) and strictly
    /// better on at least one.
    pub fn dominates(&self, other: &Self) -> bool {
        let fps = (self.total().fps(), other.total().fps());
        let energy = (self.energy.joules(), other.energy.joules());
        let upload = (self.upload.bytes(), other.upload.bytes());
        let no_worse = fps.0 >= fps.1 && energy.0 <= energy.1 && upload.0 <= upload.1;
        let better = fps.0 > fps.1 || energy.0 < energy.1 || upload.0 < upload.1;
        no_worse && better
    }
}

/// A source plus an ordered sequence of block spaces: the full
/// configuration space a camera system can be built from.
#[derive(Debug, Clone, PartialEq)]
pub struct PipelineSpace {
    source: Source,
    blocks: Vec<BlockSpace>,
}

impl PipelineSpace {
    /// Creates a space with only a source.
    pub fn new(source: Source) -> Self {
        Self {
            source,
            blocks: Vec::new(),
        }
    }

    /// Appends a block space, consuming and returning the space
    /// (builder style).
    #[must_use]
    pub fn with_block(mut self, block: BlockSpace) -> Self {
        self.blocks.push(block);
        self
    }

    /// Appends a block space in place.
    pub fn push(&mut self, block: BlockSpace) {
        self.blocks.push(block);
    }

    /// The space's source.
    pub fn source(&self) -> &Source {
        &self.source
    }

    /// The block spaces, in pipeline order.
    pub fn blocks(&self) -> &[BlockSpace] {
        &self.blocks
    }

    /// Number of blocks.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// `true` if the space has no blocks beyond the source.
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// Size of the full configuration space: the product of per-block
    /// binding counts times the number of cut positions (`len + 1`).
    /// Saturates at `u128::MAX` instead of silently wrapping on spaces
    /// wide enough to overflow (a 128-bit overflow needs ~43 ten-binding
    /// blocks — the widened raw-imaging spaces make the guard cheap
    /// insurance, not a theoretical nicety).
    pub fn cardinality(&self) -> u128 {
        self.blocks
            .iter()
            .fold(1u128, |acc, b| {
                acc.saturating_mul(b.bindings().len() as u128)
            })
            .saturating_mul(self.blocks.len() as u128 + 1)
    }

    /// Size of the *distinct* configuration space: for each cut, only
    /// bindings of blocks before the cut are observable, so the count is
    /// the sum over cuts of the prefix binding products. Saturates at
    /// `u128::MAX` like [`PipelineSpace::cardinality`].
    pub fn distinct_cardinality(&self) -> u128 {
        let mut total = 1u128; // cut 0: the raw-sensor configuration
        let mut prefix = 1u128;
        for block in &self.blocks {
            prefix = prefix.saturating_mul(block.bindings().len() as u128);
            total = total.saturating_add(prefix);
        }
        total
    }

    /// Lazily enumerates every configuration in the full space, cut-major
    /// (all binding vectors at cut 0, then cut 1, …); within a cut the
    /// binding vector increments odometer-style with the *last* block
    /// fastest. Compose with [`Iterator::filter`] for predicate pruning.
    pub fn configurations(&self) -> Configurations<'_> {
        Configurations {
            space: self,
            next: Some(Configuration::new(vec![0; self.blocks.len()], 0)),
        }
    }

    /// Enumerates only the canonical representative of each distinct
    /// configuration (see [`Configuration::is_canonical`]), in the same
    /// cut-major order.
    pub fn distinct_configurations(&self) -> impl Iterator<Item = Configuration> + '_ {
        self.configurations().filter(Configuration::is_canonical)
    }

    /// Materializes the concrete [`Pipeline`] of a configuration (all
    /// blocks bound, including those past the cut).
    ///
    /// # Panics
    ///
    /// Panics if the configuration's shape does not match the space.
    pub fn realize(&self, config: &Configuration) -> Pipeline {
        assert_eq!(
            config.bindings.len(),
            self.blocks.len(),
            "configuration has {} binding choices for a {}-block space",
            config.bindings.len(),
            self.blocks.len()
        );
        assert!(
            config.cut <= self.blocks.len(),
            "cut {} out of range for a {}-block space",
            config.cut,
            self.blocks.len()
        );
        let mut pipeline = Pipeline::new(self.source.clone());
        for (block, &choice) in self.blocks.iter().zip(&config.bindings) {
            pipeline.push(block.stage(choice));
        }
        pipeline
    }

    /// Analyzes one configuration over a link.
    ///
    /// # Panics
    ///
    /// Panics if the configuration's shape does not match the space.
    pub fn evaluate(&self, config: &Configuration, link: &Link) -> ConfigAnalysis {
        let pipeline = self.realize(config);
        let cut = analyze_cut(&pipeline, link, config.cut);
        ConfigAnalysis {
            config: config.clone(),
            label: cut.label,
            compute: cut.compute,
            communication: cut.communication,
            upload: cut.upload_size,
            energy: pipeline.energy_per_frame_through(config.cut),
        }
    }

    /// Evaluates every *distinct* configuration over a link, in
    /// enumeration order.
    pub fn explore<'a>(&'a self, link: &'a Link) -> impl Iterator<Item = ConfigAnalysis> + 'a {
        self.distinct_configurations()
            .map(move |c| self.evaluate(&c, link))
    }

    /// Evaluates the distinct configurations that satisfy `keep` — the
    /// pruned search the per-app paper sets are views of (e.g. "the
    /// stitching backend must match the depth backend").
    pub fn explore_where<'a, F>(
        &'a self,
        link: &'a Link,
        mut keep: F,
    ) -> impl Iterator<Item = ConfigAnalysis> + 'a
    where
        F: FnMut(&Configuration) -> bool + 'a,
    {
        self.distinct_configurations()
            .filter(move |c| keep(c))
            .map(move |c| self.evaluate(&c, link))
    }

    /// The configuration with the highest end-to-end frame rate over
    /// `link`. Ties resolve to the earliest configuration in enumeration
    /// order — the earliest cut, then the lowest binding indices — i.e.
    /// the least in-camera work. Returns `None` only for a space that
    /// somehow enumerates nothing (never: cut 0 always exists).
    ///
    /// The tie-break is *first-seen wins*: a later configuration
    /// displaces the incumbent only when its total is strictly greater.
    /// This exact rule is load-bearing — [`SearchPlan`] and
    /// [`IncrementalSearch`] must reproduce it under pruning, and
    /// `tests/search_equivalence.rs` proptests that they do on random
    /// spaces.
    pub fn best(&self, link: &Link) -> Option<ConfigAnalysis> {
        self.best_where(link, |_| true)
    }

    /// Like [`PipelineSpace::best`], restricted to configurations
    /// satisfying `keep` — same first-seen tie-break: of equal-total
    /// survivors the earliest enumerated wins.
    pub fn best_where<F>(&self, link: &Link, keep: F) -> Option<ConfigAnalysis>
    where
        F: FnMut(&Configuration) -> bool,
    {
        let mut best: Option<ConfigAnalysis> = None;
        for analysis in self.explore_where(link, keep) {
            let better = match &best {
                Some(b) => analysis.total().fps() > b.total().fps(),
                None => true,
            };
            if better {
                best = Some(analysis);
            }
        }
        best
    }

    /// The Pareto frontier of the distinct space over `link`: every
    /// configuration not dominated on (total FPS, in-camera energy,
    /// upload bytes) by another distinct configuration.
    pub fn pareto_frontier(&self, link: &Link) -> Vec<ConfigAnalysis> {
        pareto_frontier(self.explore(link).collect())
    }

    /// Online cut re-selection: re-evaluates every cut of a *committed*
    /// configuration over `link` and returns the analysis with the
    /// highest end-to-end frame rate. The binding choice per block is
    /// held at `committed` (the hardware is already built; only the
    /// offload point can move at runtime), and each candidate is
    /// canonicalized — bindings past the cut reset to 0 — so the result
    /// matches the distinct enumeration exactly. Ties resolve to the
    /// earliest cut: the least in-camera work.
    ///
    /// This is the single re-search entry point shared by
    /// `vr::degrade`'s adaptive-cut policy and the fleet simulator's
    /// per-camera re-selection; callers typically pass
    /// [`Link::degraded`] with the *observed* goodput. It is a thin
    /// wrapper over [`IncrementalSearch::over_held_cuts`] — callers that
    /// re-search the same committed bindings under a *sequence* of links
    /// should build the `IncrementalSearch` once and re-rank it per
    /// link instead of paying the chain evaluation every time.
    ///
    /// # Panics
    ///
    /// Panics if `committed` does not have one binding index per block,
    /// or any index is out of range for its block.
    pub fn best_cut_held(&self, link: &Link, committed: &[usize]) -> ConfigAnalysis {
        IncrementalSearch::over_held_cuts(self, committed)
            .best_analysis(self, link)
            .expect("cut 0 is always evaluated") // incam-lint: allow(fallible-unwrap) — the held chain contains cut 0, so a winner exists
    }
}

/// Lazy cut-major enumeration of a [`PipelineSpace`] (see
/// [`PipelineSpace::configurations`]).
#[derive(Debug, Clone)]
pub struct Configurations<'a> {
    space: &'a PipelineSpace,
    next: Option<Configuration>,
}

impl Iterator for Configurations<'_> {
    type Item = Configuration;

    fn next(&mut self) -> Option<Configuration> {
        let current = self.next.take()?;
        // advance the odometer: last block fastest, then the cut
        let mut succ = current.clone();
        let mut advanced = false;
        for i in (0..succ.bindings.len()).rev() {
            if succ.bindings[i] + 1 < self.space.blocks[i].bindings().len() {
                succ.bindings[i] += 1;
                succ.bindings[i + 1..].fill(0);
                advanced = true;
                break;
            }
        }
        if !advanced {
            succ.bindings.fill(0);
            succ.cut += 1;
            advanced = succ.cut <= self.space.blocks.len();
        }
        self.next = advanced.then_some(succ);
        Some(current)
    }
}

/// Input size above which [`pareto_frontier`] switches from the
/// quadratic pairwise scan to the `O(n log n)` sort-then-sweep path.
/// Below it the scan's lack of allocation and sorting wins; above it
/// the sweep does (the crossover is flat, so the constant is not
/// tuned finely). Non-finite inputs always take the quadratic path:
/// the sweep's total order on floats must agree with the partial-order
/// comparisons the scan makes, which `NaN` breaks.
pub const PARETO_SWEEP_THRESHOLD: usize = 64;

/// Filters `analyses` down to the Pareto frontier over the three paper
/// objectives: total FPS (maximize), in-camera energy per frame
/// (minimize), and uploaded bytes per frame (minimize). Input order is
/// preserved; of mutually equal configurations the earliest survives.
///
/// Two implementations compute the same set: a quadratic pairwise scan
/// for small or non-finite inputs, and a sort-then-sweep above
/// [`PARETO_SWEEP_THRESHOLD`] — `tests/search_equivalence.rs` proptests
/// their agreement.
pub fn pareto_frontier(analyses: Vec<ConfigAnalysis>) -> Vec<ConfigAnalysis> {
    let finite = |a: &ConfigAnalysis| {
        a.total().fps().is_finite() && a.energy.joules().is_finite() && a.upload.bytes().is_finite()
    };
    if analyses.len() > PARETO_SWEEP_THRESHOLD && analyses.iter().all(finite) {
        pareto_sweep(analyses)
    } else {
        pareto_quadratic(analyses)
    }
}

/// The reference implementation: pairwise dominance against the kept
/// set, dropping candidates a kept point dominates or exactly ties, and
/// retiring kept points the candidate dominates.
fn pareto_quadratic(analyses: Vec<ConfigAnalysis>) -> Vec<ConfigAnalysis> {
    let mut frontier: Vec<ConfigAnalysis> = Vec::new();
    for candidate in analyses {
        if frontier.iter().any(|kept| {
            kept.dominates(&candidate)
                || (kept.total() == candidate.total()
                    && kept.energy == candidate.energy
                    && kept.upload == candidate.upload)
        }) {
            continue;
        }
        frontier.retain(|kept| !candidate.dominates(kept));
        frontier.push(candidate);
    }
    frontier
}

/// Sort-then-sweep frontier for all-finite inputs. Candidates are
/// visited best-first (total FPS descending, then energy, upload, and
/// input position ascending), so every strict dominator of a point —
/// and the earliest member of an exact-tie group — precedes it. A
/// staircase of kept `(energy, upload)` pairs (energies strictly
/// ascending, uploads strictly descending) then answers "does a prior
/// kept point weakly dominate this one?" with a binary search: the kept
/// point at the greatest energy at most the candidate's holds the
/// minimum kept upload in that range.
fn pareto_sweep(analyses: Vec<ConfigAnalysis>) -> Vec<ConfigAnalysis> {
    let mut order: Vec<usize> = (0..analyses.len()).collect();
    order.sort_unstable_by(|&i, &j| {
        let (a, b) = (&analyses[i], &analyses[j]);
        b.total()
            .fps()
            .total_cmp(&a.total().fps())
            .then(a.energy.joules().total_cmp(&b.energy.joules()))
            .then(a.upload.bytes().total_cmp(&b.upload.bytes()))
            .then(i.cmp(&j))
    });
    let mut stairs: Vec<(f64, f64)> = Vec::new();
    let mut keep = vec![false; analyses.len()];
    for &i in &order {
        let (energy, upload) = (analyses[i].energy.joules(), analyses[i].upload.bytes());
        let pos = stairs.partition_point(|&(e, _)| e <= energy);
        if pos > 0 && stairs[pos - 1].1 <= upload {
            continue; // a prior (total-no-worse) kept point weakly dominates
        }
        keep[i] = true;
        // Insert, retiring kept pairs the new point weakly dominates —
        // a contiguous run: pairs at energy >= ours with upload >= ours.
        let ins = stairs.partition_point(|&(e, _)| e < energy);
        let mut end = ins;
        while end < stairs.len() && stairs[end].1 >= upload {
            end += 1;
        }
        stairs.splice(ins..end, [(energy, upload)]);
    }
    let mut frontier = Vec::new();
    for (i, analysis) in analyses.into_iter().enumerate() {
        if keep[i] {
            frontier.push(analysis);
        }
    }
    frontier
}

// ---------------------------------------------------------------------------
// The layered search engine: digests, SearchPlan, Frontier,
// IncrementalSearch.
// ---------------------------------------------------------------------------

/// 64-bit FNV-1a, the digest the engine keys memoized frontiers by.
/// Hand-rolled because the workspace is dependency-free and the digest
/// only needs to be stable and cheap, not cryptographic.
#[derive(Debug, Clone, Copy)]
struct Fnv64(u64);

impl Fnv64 {
    fn new() -> Self {
        Self(0xcbf2_9ce4_8422_2325)
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
        }
    }

    fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    fn write_f64(&mut self, v: f64) {
        self.write_u64(v.to_bits());
    }

    fn write_str(&mut self, s: &str) {
        self.write_u64(s.len() as u64);
        self.write(s.as_bytes());
    }

    fn finish(self) -> u64 {
        self.0
    }
}

fn digest_transform(h: &mut Fnv64, transform: DataTransform) {
    match transform {
        DataTransform::Identity => h.write(&[0]),
        DataTransform::Scale(factor) => {
            h.write(&[1]);
            h.write_f64(factor);
        }
        DataTransform::Fixed(size) => {
            h.write(&[2]);
            h.write_f64(size.bytes());
        }
    }
}

/// A stable FNV-1a digest of everything the search engine reads out of
/// a space: source costs, block specs, and per-binding costs, in order.
/// A [`Frontier`] carries the digest of the space it was computed from,
/// and [`IncrementalSearch::best_analysis`] checks it before resolving
/// configurations against a space.
pub fn space_digest(space: &PipelineSpace) -> u64 {
    let mut h = Fnv64::new();
    let source = space.source();
    h.write_str(source.name());
    h.write_f64(source.frame_size().bytes());
    h.write_f64(source.max_fps().fps());
    h.write_f64(source.capture_energy().joules());
    h.write_u64(space.len() as u64);
    for block in space.blocks() {
        h.write_str(block.spec().name());
        h.write(&[u8::from(block.spec().kind() == BlockKind::Optional)]);
        digest_transform(&mut h, block.spec().transform());
        h.write_u64(block.bindings().len() as u64);
        for binding in block.bindings() {
            h.write_str(&binding.backend().letter().to_string());
            h.write_f64(binding.throughput().fps());
            h.write_f64(binding.energy_per_frame().joules());
            match binding.output() {
                None => h.write(&[0]),
                Some(transform) => {
                    h.write(&[1]);
                    digest_transform(&mut h, transform);
                }
            }
        }
    }
    h.finish()
}

/// A stable FNV-1a digest of a link's cost-relevant fields, used to key
/// [`SearchPlan`]'s per-link result caches (cache hits additionally
/// verify full [`Link`] equality, so a digest collision costs a miss,
/// never a wrong answer).
pub fn link_digest(link: &Link) -> u64 {
    let mut h = Fnv64::new();
    h.write_str(link.name());
    h.write_f64(link.raw_rate().per_sec());
    h.write_f64(link.efficiency());
    h.write_f64(link.energy_per_bit().joules());
    h.finish()
}

/// Node-count accounting for one pruned frontier construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SearchStats {
    /// Distinct configurations exhaustive enumeration would evaluate
    /// ([`PipelineSpace::distinct_cardinality`], saturating at
    /// `u64::MAX`).
    pub exhaustive: u64,
    /// Configurations the pruned descent actually evaluated (leaves
    /// reached).
    pub evaluated: u64,
    /// Bindings removed by per-block dominance pre-pruning (counted
    /// once per block, not per configuration they would have appeared
    /// in).
    pub bindings_pruned: u64,
    /// Subtrees discarded whole by prefix-bound pruning during the
    /// descent.
    pub subtrees_pruned: u64,
}

impl SearchStats {
    /// Exhaustive-to-evaluated node ratio — the headline reduction
    /// `repro --experiment explore-scale` reports.
    pub fn reduction(&self) -> f64 {
        self.exhaustive as f64 / (self.evaluated as f64).max(1.0)
    }
}

/// One surviving point of a [`Frontier`]: a distinct configuration with
/// its three link-independent objectives, computed with exactly the
/// same floating-point operations (and operation order) as
/// [`PipelineSpace::evaluate`], so re-ranking under a link reproduces
/// the exhaustive search bit-for-bit.
#[derive(Debug, Clone, PartialEq)]
pub struct FrontierPoint {
    /// The canonical configuration this point stands for.
    pub config: Configuration,
    /// Pipelined in-camera compute throughput
    /// ([`ConfigAnalysis::compute`]).
    pub compute: Fps,
    /// In-camera energy per frame through the cut
    /// ([`ConfigAnalysis::energy`]).
    pub energy: Joules,
    /// Bytes uploaded per frame at the cut ([`ConfigAnalysis::upload`]).
    pub upload: Bytes,
}

impl FrontierPoint {
    /// End-to-end frame rate of this point over `link`: compute bound
    /// by the link's upload rate, exactly as [`ConfigAnalysis::total`].
    pub fn total(&self, link: &Link) -> Fps {
        self.compute.min(link.upload_fps(self.upload))
    }

    /// Weak dominance against raw objective values: at least as fast to
    /// compute, at most as much energy, at most as large an upload key.
    fn covers(&self, compute: f64, energy: f64, upload_key: f64) -> bool {
        self.compute.fps() >= compute
            && self.energy.joules() <= energy
            && upload_key_of(self.upload) <= upload_key
    }
}

/// The upload objective under the ordering every link agrees on:
/// positive finite sizes order by byte count (fewer bytes never upload
/// slower over any link), while degenerate sizes (zero, negative,
/// non-finite) saturate [`Link::upload_fps`] to zero FPS and are
/// therefore *worst* — encoded as `+inf` so dominance tests stay sound
/// on them.
fn upload_key_of(upload: Bytes) -> f64 {
    let bytes = upload.bytes();
    if bytes > 0.0 && bytes.is_finite() {
        bytes
    } else {
        f64::INFINITY
    }
}

/// The memoized result of one pruned enumeration: every distinct
/// configuration *not* weakly dominated, on the three link-independent
/// objectives (compute FPS up, in-camera energy down, upload down), by
/// an earlier-enumerated configuration — kept in enumeration order.
///
/// A link enters the search objective only through the upload term
/// (`total = compute.min(link.upload_fps(upload))`, monotone
/// non-increasing in the upload ordering), so for *every* link the
/// frontier contains the exhaustive search's first-seen winner, and
/// scanning it in order with the same strictly-greater-displaces rule
/// reproduces that winner exactly. This is what makes link-only
/// re-search ([`IncrementalSearch`]) sound.
#[derive(Debug, Clone, PartialEq)]
pub struct Frontier {
    space_digest: u64,
    points: Vec<FrontierPoint>,
    stats: SearchStats,
}

impl Frontier {
    /// The surviving points, in enumeration order.
    pub fn points(&self) -> &[FrontierPoint] {
        &self.points
    }

    /// Digest of the space this frontier was computed from (see
    /// [`space_digest`]).
    pub fn space_digest(&self) -> u64 {
        self.space_digest
    }

    /// Node-count accounting of the construction.
    pub fn stats(&self) -> SearchStats {
        self.stats
    }

    /// Number of surviving points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// `true` when no point survived — never for a frontier built from
    /// a real space, whose cut-0 configuration has no earlier point to
    /// dominate it.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The point with the highest end-to-end rate over `link`, by the
    /// exhaustive tie-break: first-seen wins, later points displace
    /// only when strictly greater.
    fn best_point(&self, link: &Link) -> Option<&FrontierPoint> {
        let mut best: Option<(&FrontierPoint, f64)> = None;
        for point in &self.points {
            let total = point.total(link).fps();
            let better = match best {
                Some((_, incumbent)) => total > incumbent,
                None => true,
            };
            if better {
                best = Some((point, total));
            }
        }
        best.map(|(point, _)| point)
    }
}

/// Entries a [`SearchPlan`] keeps per per-link result cache; eviction
/// is oldest-first, so a rotating set of links larger than this
/// degrades to recomputation, never to a wrong answer.
const LINK_CACHE_CAP: usize = 32;

/// Branch-and-bound search over a [`PipelineSpace`].
///
/// Construction pre-prunes each block's bindings by dominance; the
/// first call that needs the [`Frontier`] runs a cut-major descent over
/// the surviving product with prefix-bound subtree pruning and
/// memoizes the result (tagged with the FNV [`space_digest`]), so
/// repeated [`SearchPlan::best`] / [`SearchPlan::pareto_frontier`]
/// calls on an unchanged space re-rank the (small) frontier instead of
/// re-enumerating. Per-link results are additionally cached under
/// [`link_digest`].
///
/// # Why pruning preserves behavior
///
/// All pruning is behavior-preserving: `best` and `pareto_frontier`
/// return results bit-identical to the exhaustive [`PipelineSpace`]
/// methods. Three arguments carry this (spelled out in `DESIGN.md`,
/// proptested in `tests/search_equivalence.rs`):
///
/// 1. *Per-block dominance.* If an earlier same-block sibling is at
///    least as fast, at most as energy-hungry, and emits at most as
///    much data for every input size (comparable transforms only),
///    substituting it into any configuration that uses the dominated
///    binding yields an earlier-enumerated configuration at least as
///    good on all three objectives under every link — so the dominated
///    binding appears in no Pareto frontier and displaces no first-seen
///    winner. It can be dropped before the product is ever formed.
/// 2. *Earliest-witness frontier.* A configuration weakly dominated on
///    (compute, energy, upload key) by an earlier-enumerated one can
///    never be the first strict maximum of
///    `total = min(compute, upload_fps)` for any link, because
///    `upload_fps` is monotone non-increasing in the upload key.
/// 3. *Prefix bounds.* In a regular space (positive finite sizes and
///    transforms) compute, energy, and upload through a cut are
///    monotone in each binding choice, so an optimistic bound for a
///    subtree that is still covered by an already-kept (earlier) point
///    proves every leaf of that subtree dominated.
///
/// Spaces that are not *regular* — non-positive or non-finite frame
/// sizes, scale factors, or fixed outputs — disable pre-pruning,
/// subtree bounds, and the frontier-based Pareto path (degenerate
/// uploads saturate to zero FPS, breaking the monotonicity those rules
/// lean on); winner search stays pruned and exact via the upload-key
/// ordering, and `pareto_frontier` falls back to the exhaustive path.
#[derive(Debug, Clone)]
pub struct SearchPlan<'a> {
    space: &'a PipelineSpace,
    digest: u64,
    regular: bool,
    live: Vec<Vec<usize>>,
    bindings_pruned: u64,
    frontier: OnceCell<Frontier>,
    best_cache: RefCell<Vec<(u64, Link, Option<ConfigAnalysis>)>>,
    pareto_cache: RefCell<Vec<(u64, Link, Vec<ConfigAnalysis>)>>,
}

impl<'a> SearchPlan<'a> {
    /// Builds a plan over `space`, running per-block dominance
    /// pre-pruning up front. The frontier itself is computed lazily on
    /// first use and memoized.
    pub fn new(space: &'a PipelineSpace) -> Self {
        let regular = space_is_regular(space);
        let mut live = Vec::with_capacity(space.len());
        let mut bindings_pruned = 0u64;
        for block in space.blocks() {
            let bindings = block.bindings();
            let mut keep: Vec<usize> = Vec::with_capacity(bindings.len());
            for (j, candidate) in bindings.iter().enumerate() {
                let dominated = regular
                    && keep
                        .iter()
                        .any(|&i| binding_dominates(block, &bindings[i], candidate));
                if dominated {
                    bindings_pruned += 1;
                } else {
                    keep.push(j);
                }
            }
            live.push(keep);
        }
        Self {
            space,
            digest: space_digest(space),
            regular,
            live,
            bindings_pruned,
            frontier: OnceCell::new(),
            best_cache: RefCell::new(Vec::new()),
            pareto_cache: RefCell::new(Vec::new()),
        }
    }

    /// The space this plan searches.
    pub fn space(&self) -> &'a PipelineSpace {
        self.space
    }

    /// FNV-1a digest of the space (see [`space_digest`]); the memoized
    /// frontier carries the same digest.
    pub fn digest(&self) -> u64 {
        self.digest
    }

    /// `true` when the space admits the monotone pruning rules (see the
    /// type docs); pruning is disabled wholesale otherwise.
    pub fn is_regular(&self) -> bool {
        self.regular
    }

    /// The binding indices of `block` that survived dominance
    /// pre-pruning, ascending. Index 0 always survives (it has no
    /// earlier sibling), so canonical representatives stay enumerable.
    pub fn live_bindings(&self, block: usize) -> &[usize] {
        &self.live[block]
    }

    /// The memoized link-independent frontier, built on first call.
    pub fn frontier(&self) -> &Frontier {
        self.frontier.get_or_init(|| self.build_frontier())
    }

    /// Node-count accounting of the (possibly memoized) frontier build.
    pub fn stats(&self) -> SearchStats {
        self.frontier().stats
    }

    /// The exhaustive distinct enumeration over `link`, bypassing all
    /// pruning — the oracle path, and the one view-layer consumers
    /// (figure tables that print every configuration, dominated or not)
    /// route through.
    pub fn explore(&self, link: &'a Link) -> impl Iterator<Item = ConfigAnalysis> + 'a {
        self.space.explore(link)
    }

    /// The exhaustive distinct enumeration of configurations, bypassing
    /// all pruning — for view layers whose *contract* is the full set
    /// (e.g. the VR paper set, whose shape space carries placeholder
    /// costs under which sibling bindings are cost-identical and would
    /// otherwise be pruned down to one representative).
    pub fn distinct_configurations(&self) -> impl Iterator<Item = Configuration> + 'a {
        self.space.distinct_configurations()
    }

    /// The exhaustive-equivalent best configuration over `link`, from
    /// the pruned frontier (memoized per link).
    pub fn best(&self, link: &Link) -> Option<ConfigAnalysis> {
        let key = link_digest(link);
        if let Some((_, _, hit)) = self
            .best_cache
            .borrow()
            .iter()
            .find(|(k, l, _)| *k == key && l == link)
        {
            return hit.clone();
        }
        let result = self
            .frontier()
            .best_point(link)
            .map(|point| self.space.evaluate(&point.config, link));
        let mut cache = self.best_cache.borrow_mut();
        if cache.len() >= LINK_CACHE_CAP {
            cache.remove(0);
        }
        cache.push((key, link.clone(), result.clone()));
        result
    }

    /// The exhaustive-equivalent Pareto frontier over `link` (memoized
    /// per link). Regular spaces re-rank the pruned frontier; others
    /// fall back to [`PipelineSpace::pareto_frontier`].
    pub fn pareto_frontier(&self, link: &Link) -> Vec<ConfigAnalysis> {
        let key = link_digest(link);
        if let Some((_, _, hit)) = self
            .pareto_cache
            .borrow()
            .iter()
            .find(|(k, l, _)| *k == key && l == link)
        {
            return hit.clone();
        }
        let result = if self.regular {
            pareto_frontier(
                self.frontier()
                    .points()
                    .iter()
                    .map(|point| self.space.evaluate(&point.config, link))
                    .collect(),
            )
        } else {
            self.space.pareto_frontier(link)
        };
        let mut cache = self.pareto_cache.borrow_mut();
        if cache.len() >= LINK_CACHE_CAP {
            cache.remove(0);
        }
        cache.push((key, link.clone(), result.clone()));
        result
    }

    fn build_frontier(&self) -> Frontier {
        let n = self.space.len();
        let source = self.space.source();
        // Per-block live-binding cost tables (original index, effective
        // throughput / energy / transform), plus per-block optimistic
        // bounds for the prefix-bound test.
        let mut costs: Vec<Vec<(usize, Fps, Joules, DataTransform)>> = Vec::with_capacity(n);
        for (block, live) in self.space.blocks().iter().zip(&self.live) {
            costs.push(
                live.iter()
                    .map(|&j| {
                        let binding = &block.bindings()[j];
                        let transform = binding.output().unwrap_or(block.spec().transform());
                        (
                            j,
                            binding.throughput(),
                            binding.energy_per_frame(),
                            transform,
                        )
                    })
                    .collect(),
            );
        }
        let max_tput: Vec<Fps> = costs
            .iter()
            .map(|c| {
                c.iter()
                    .map(|&(_, t, _, _)| t)
                    .fold(Fps::new(f64::NEG_INFINITY), Fps::max)
            })
            .collect();
        let min_energy: Vec<Joules> = costs
            .iter()
            .map(|c| {
                c.iter()
                    .map(|&(_, _, e, _)| e)
                    .fold(Joules::new(f64::INFINITY), Joules::min)
            })
            .collect();
        let mut builder = FrontierBuilder {
            costs: &costs,
            max_tput: &max_tput,
            min_energy: &min_energy,
            regular: self.regular,
            points: Vec::new(),
            bindings: vec![0usize; n],
            stats: SearchStats {
                exhaustive: saturating_u64(self.space.distinct_cardinality()),
                evaluated: 0,
                bindings_pruned: self.bindings_pruned,
                subtrees_pruned: 0,
            },
        };
        for cut in 0..=n {
            builder.descend(
                cut,
                0,
                source.max_fps(),
                source.capture_energy(),
                source.frame_size(),
            );
        }
        Frontier {
            space_digest: self.digest,
            points: builder.points,
            stats: builder.stats,
        }
    }
}

/// Working state of one cut-major frontier descent.
struct FrontierBuilder<'b> {
    costs: &'b [Vec<(usize, Fps, Joules, DataTransform)>],
    max_tput: &'b [Fps],
    min_energy: &'b [Joules],
    regular: bool,
    points: Vec<FrontierPoint>,
    bindings: Vec<usize>,
    stats: SearchStats,
}

impl FrontierBuilder<'_> {
    /// DFS over binding choices for blocks `depth..cut`, visiting
    /// leaves in exact enumeration order and carrying the prefix
    /// objectives with the same fold operations (and order) as
    /// `Pipeline::compute_fps_through` / `energy_per_frame_through` /
    /// `data_after` — leaf objectives are bit-identical to
    /// [`PipelineSpace::evaluate`].
    fn descend(&mut self, cut: usize, depth: usize, fps: Fps, energy: Joules, size: Bytes) {
        if depth == cut {
            self.stats.evaluated += 1;
            let key = upload_key_of(size);
            let dominated = self
                .points
                .iter()
                .any(|p| p.covers(fps.fps(), energy.joules(), key));
            if !dominated {
                self.points.push(FrontierPoint {
                    config: Configuration::new(self.bindings.clone(), cut),
                    compute: fps,
                    energy,
                    upload: size,
                });
            }
            return;
        }
        if self.regular
            && !self.points.is_empty()
            && self.subtree_covered(cut, depth, fps, energy, size)
        {
            self.stats.subtrees_pruned += 1;
            return;
        }
        let costs = self.costs;
        for &(j, throughput, frame_energy, transform) in &costs[depth] {
            self.bindings[depth] = j;
            self.descend(
                cut,
                depth + 1,
                fps.min(throughput),
                energy + frame_energy,
                transform.apply(size),
            );
        }
        self.bindings[depth] = 0;
    }

    /// `true` when an already-kept (hence earlier-enumerated) point
    /// weakly dominates the most optimistic completion of this prefix:
    /// compute bounded above by each remaining block's best live
    /// throughput, energy bounded below by each block's cheapest live
    /// binding (folded in block order — f64 addition is monotone in
    /// each argument, so the fold is a true lower bound), and upload
    /// bounded below by propagating each block's smallest live
    /// transform.
    fn subtree_covered(
        &self,
        cut: usize,
        depth: usize,
        fps: Fps,
        energy: Joules,
        size: Bytes,
    ) -> bool {
        let mut ub_compute = fps;
        let mut lb_energy = energy;
        let mut lb_size = size;
        for k in depth..cut {
            ub_compute = ub_compute.min(self.max_tput[k]);
            lb_energy += self.min_energy[k];
            lb_size = self.costs[k]
                .iter()
                .map(|&(_, _, _, t)| t.apply(lb_size))
                .fold(Bytes::new(f64::INFINITY), Bytes::min);
        }
        // Any actual completion uploads at least lb_size bytes; a
        // non-positive propagated bound collapses to key 0.0, which is
        // below every real key and stays sound.
        let lb_bytes = lb_size.bytes();
        let lb_key = if lb_bytes > 0.0 && lb_bytes.is_finite() {
            lb_bytes
        } else {
            0.0
        };
        self.points
            .iter()
            .any(|p| p.covers(ub_compute.fps(), lb_energy.joules(), lb_key))
    }
}

/// `true` when same-block binding `a` weakly dominates `b`: at least
/// as fast, at most as much energy, and an effective output transform
/// emitting at most as much data for every input size.
fn binding_dominates(block: &BlockSpace, a: &Binding, b: &Binding) -> bool {
    let effective = |x: &Binding| x.output().unwrap_or(block.spec().transform());
    a.throughput().fps() >= b.throughput().fps()
        && a.energy_per_frame().joules() <= b.energy_per_frame().joules()
        && transform_le(effective(a), effective(b))
}

/// Pointwise `a(x) <= b(x)` for all sizes `x >= 0`, decided
/// conservatively: scales (with `Identity` read as `Scale(1.0)`)
/// compare by factor, fixed outputs by size, and cross-kind pairs are
/// incomparable — a scale beats a fixed output on small inputs and
/// loses on large ones — so the answer is `false`.
fn transform_le(a: DataTransform, b: DataTransform) -> bool {
    match (a, b) {
        (DataTransform::Fixed(x), DataTransform::Fixed(y)) => x.bytes() <= y.bytes(),
        (DataTransform::Fixed(_), _) | (_, DataTransform::Fixed(_)) => false,
        (a, b) => scale_factor(a) <= scale_factor(b),
    }
}

fn scale_factor(transform: DataTransform) -> f64 {
    match transform {
        DataTransform::Scale(factor) => factor,
        DataTransform::Identity => 1.0,
        // Unreachable from transform_le; NaN makes any comparison that
        // does get here answer "incomparable".
        DataTransform::Fixed(_) => f64::NAN,
    }
}

/// A space is *regular* when every size the search manipulates stays
/// positive and finite: the source frame and every effective transform
/// (positive finite scales or fixed outputs). Regularity is what makes
/// compute/energy/upload monotone under [`SearchPlan`]'s pruning rules.
fn space_is_regular(space: &PipelineSpace) -> bool {
    let positive = |v: f64| v > 0.0 && v.is_finite();
    let transform_ok = |t: DataTransform| match t {
        DataTransform::Identity => true,
        DataTransform::Scale(factor) => positive(factor),
        DataTransform::Fixed(size) => positive(size.bytes()),
    };
    positive(space.source().frame_size().bytes())
        && space.blocks().iter().all(|block| {
            block
                .bindings()
                .iter()
                .all(|b| transform_ok(b.output().unwrap_or(block.spec().transform())))
        })
}

fn saturating_u64(v: u128) -> u64 {
    u64::try_from(v).unwrap_or(u64::MAX)
}

/// Link-only re-search over a committed [`Frontier`].
///
/// Owns its data — configurations plus their precomputed
/// link-independent objectives — so long-lived controllers (the fleet
/// simulator's per-profile tables, `vr::degrade`'s adaptive-cut
/// policy) can re-rank on every goodput shift without re-enumerating
/// the space or holding a borrow of it. Since a link affects only the
/// upload term, re-ranking the frontier under a new link returns
/// exactly the configuration a from-scratch search would (bit-equal;
/// proptested in `tests/search_equivalence.rs`).
#[derive(Debug, Clone, PartialEq)]
pub struct IncrementalSearch {
    frontier: Frontier,
}

impl IncrementalSearch {
    /// Commits the pruned frontier of the whole distinct space.
    pub fn over_space(space: &PipelineSpace) -> Self {
        Self {
            frontier: SearchPlan::new(space).frontier().clone(),
        }
    }

    /// Commits an existing frontier (e.g. cloned out of a long-lived
    /// [`SearchPlan`]).
    pub fn from_frontier(frontier: Frontier) -> Self {
        Self { frontier }
    }

    /// Commits the *held-cut chain* of a committed binding vector: the
    /// `len + 1` canonical cut configurations with bindings held at
    /// `committed`, witness-filtered in cut order. This is the frontier
    /// online cut re-selection re-ranks (see
    /// [`PipelineSpace::best_cut_held`]).
    ///
    /// # Panics
    ///
    /// Panics if `committed` does not have one binding index per block,
    /// or any index is out of range for its block.
    pub fn over_held_cuts(space: &PipelineSpace, committed: &[usize]) -> Self {
        assert_eq!(
            committed.len(),
            space.len(),
            "committed has {} binding choices for a {}-block space",
            committed.len(),
            space.len()
        );
        // One realization serves every cut: the `*_through(cut)` /
        // `data_after(cut)` accessors read only stages before the cut,
        // so each chain point's objectives are bit-identical to
        // evaluating its canonicalized configuration from scratch.
        let pipeline = space.realize(&Configuration::new(committed.to_vec(), space.len()));
        let chain = space.len() as u64 + 1;
        let mut points: Vec<FrontierPoint> = Vec::with_capacity(space.len() + 1);
        for cut in 0..=space.len() {
            let compute = pipeline.compute_fps_through(cut);
            let energy = pipeline.energy_per_frame_through(cut);
            let upload = pipeline.data_after(cut);
            let key = upload_key_of(upload);
            if points
                .iter()
                .any(|p| p.covers(compute.fps(), energy.joules(), key))
            {
                continue;
            }
            let mut bindings = committed.to_vec();
            bindings[cut..].fill(0);
            points.push(FrontierPoint {
                config: Configuration::new(bindings, cut),
                compute,
                energy,
                upload,
            });
        }
        Self {
            frontier: Frontier {
                space_digest: space_digest(space),
                points,
                stats: SearchStats {
                    exhaustive: chain,
                    evaluated: chain,
                    bindings_pruned: 0,
                    subtrees_pruned: 0,
                },
            },
        }
    }

    /// The committed frontier.
    pub fn frontier(&self) -> &Frontier {
        &self.frontier
    }

    /// Re-ranks the committed frontier under `link`: the point with the
    /// highest end-to-end rate, first-seen tie-break — the same winner
    /// a from-scratch search over the committed set returns.
    pub fn best(&self, link: &Link) -> Option<&FrontierPoint> {
        self.frontier.best_point(link)
    }

    /// The winner's full [`ConfigAnalysis`], resolved against the space
    /// the frontier was committed from.
    ///
    /// # Panics
    ///
    /// Panics if `space` is not the space this frontier was committed
    /// from (checked via [`space_digest`]).
    pub fn best_analysis(&self, space: &PipelineSpace, link: &Link) -> Option<ConfigAnalysis> {
        assert_eq!(
            space_digest(space),
            self.frontier.space_digest,
            "IncrementalSearch frontier was committed from a different space"
        );
        self.best(link)
            .map(|point| space.evaluate(&point.config, link))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::units::BytesPerSec;

    /// Sensor at 100 FPS / 1000 B; B1 identity on CPU or a 2x-coarser
    /// ASIC; B2 reduces 4x on CPU or GPU.
    fn sample_space() -> PipelineSpace {
        PipelineSpace::new(Source::new("s", Bytes::new(1000.0), Fps::new(100.0)))
            .with_block(BlockSpace::new(
                BlockSpec::core("b1", DataTransform::Identity),
                vec![
                    Binding::new(Backend::Cpu, Fps::new(50.0))
                        .with_energy_per_frame(Joules::from_micro(4.0)),
                    Binding::new(Backend::Asic, Fps::new(400.0))
                        .with_energy_per_frame(Joules::from_micro(1.0))
                        .with_output(DataTransform::Scale(0.5)),
                ],
            ))
            .with_block(BlockSpace::new(
                BlockSpec::core("b2", DataTransform::Scale(0.25)),
                vec![
                    Binding::new(Backend::Cpu, Fps::new(20.0))
                        .with_energy_per_frame(Joules::from_micro(8.0)),
                    Binding::new(Backend::Gpu, Fps::new(120.0))
                        .with_energy_per_frame(Joules::from_micro(16.0)),
                ],
            ))
    }

    fn link() -> Link {
        // raw sensor frame uploads at 10 FPS
        Link::new("l", BytesPerSec::new(10_000.0), 1.0)
    }

    #[test]
    fn cardinalities() {
        let space = sample_space();
        assert_eq!(space.cardinality(), 2 * 2 * 3);
        // cut 0: 1, cut 1: 2, cut 2: 4
        assert_eq!(space.distinct_cardinality(), 7);
        assert_eq!(space.configurations().count(), 12);
        assert_eq!(space.distinct_configurations().count(), 7);
        let empty = PipelineSpace::new(Source::new("s", Bytes::new(1.0), Fps::new(1.0)));
        assert_eq!(empty.cardinality(), 1);
        assert_eq!(empty.distinct_cardinality(), 1);
        assert_eq!(empty.configurations().count(), 1);
    }

    #[test]
    fn enumeration_is_cut_major_and_odometer_ordered() {
        let space = sample_space();
        let configs: Vec<Configuration> = space.configurations().collect();
        assert_eq!(configs[0], Configuration::new(vec![0, 0], 0));
        assert_eq!(configs[1], Configuration::new(vec![0, 1], 0));
        assert_eq!(configs[2], Configuration::new(vec![1, 0], 0));
        assert_eq!(configs[3], Configuration::new(vec![1, 1], 0));
        assert_eq!(configs[4], Configuration::new(vec![0, 0], 1));
        assert_eq!(configs[11], Configuration::new(vec![1, 1], 2));
        // cuts never decrease
        for pair in configs.windows(2) {
            assert!(pair[0].cut() <= pair[1].cut());
        }
    }

    #[test]
    fn realize_applies_bindings_and_overrides() {
        let space = sample_space();
        let p = space.realize(&Configuration::new(vec![1, 0], 2));
        assert_eq!(p.stages()[0].backend(), Backend::Asic);
        // the ASIC binding's output override halves the data
        assert_eq!(p.data_after(1), Bytes::new(500.0));
        assert_eq!(p.data_after(2), Bytes::new(125.0));
        let q = space.realize(&Configuration::new(vec![0, 0], 2));
        assert_eq!(q.data_after(1), Bytes::new(1000.0));
    }

    #[test]
    fn evaluate_matches_hand_computation() {
        let space = sample_space();
        let a = space.evaluate(&Configuration::new(vec![0, 1], 2), &link());
        // compute: min(100 sensor, 50 b1-cpu, 120 b2-gpu)
        assert_eq!(a.compute, Fps::new(50.0));
        // upload: 1000 * 1.0 * 0.25 = 250 B -> 40 FPS
        assert!((a.communication.fps() - 40.0).abs() < 1e-9);
        assert_eq!(a.total(), Fps::new(40.0));
        // energy: 4 uJ (b1 cpu) + 16 uJ (b2 gpu)
        assert!((a.energy.micros() - 20.0).abs() < 1e-12);
        assert_eq!(a.constraint(), Constraint::Communication);
        assert_eq!(a.backends(&space), vec![Backend::Cpu, Backend::Gpu]);
    }

    #[test]
    fn best_resolves_ties_to_earliest() {
        // two bindings with identical costs: cut 1 ties with itself
        // across binding choices, and the identity block makes cut 0 and
        // cut 1 upload the same bytes
        let space = PipelineSpace::new(Source::new("s", Bytes::new(1000.0), Fps::new(100.0)))
            .with_block(BlockSpace::new(
                BlockSpec::core("b", DataTransform::Identity),
                vec![
                    Binding::new(Backend::Cpu, Fps::new(200.0)),
                    Binding::new(Backend::Gpu, Fps::new(200.0)),
                ],
            ));
        let best = space.best(&link()).unwrap();
        // cut 0 and cut 1 both total 10 FPS; the earliest (cut 0) wins
        assert_eq!(best.config.cut(), 0);
        assert_eq!(best.config.bindings(), &[0]);
    }

    #[test]
    fn explore_where_prunes() {
        let space = sample_space();
        let all: Vec<_> = space.explore(&link()).collect();
        assert_eq!(all.len(), 7);
        let gpu_only: Vec<_> = space
            .explore_where(&link(), |c| c.cut() < 2 || c.bindings()[1] == 1)
            .collect();
        assert_eq!(gpu_only.len(), 5);
    }

    #[test]
    fn pareto_frontier_is_nondominated_and_complete() {
        let space = sample_space();
        let frontier = space.pareto_frontier(&link());
        assert!(!frontier.is_empty());
        for (i, a) in frontier.iter().enumerate() {
            for (j, b) in frontier.iter().enumerate() {
                if i != j {
                    assert!(!a.dominates(b), "{} dominates {}", a.label, b.label);
                }
            }
        }
        // every non-frontier configuration is dominated by (or equal to)
        // some frontier member
        for analysis in space.explore(&link()) {
            let on_frontier = frontier.iter().any(|f| f.config == analysis.config);
            if !on_frontier {
                assert!(
                    frontier.iter().any(|f| f.dominates(&analysis)
                        || (f.total() == analysis.total()
                            && f.energy == analysis.energy
                            && f.upload == analysis.upload)),
                    "{} unaccounted for",
                    analysis.label
                );
            }
        }
    }

    #[test]
    fn dominance_requires_strict_improvement() {
        let space = sample_space();
        let a = space.evaluate(&Configuration::new(vec![0, 0], 0), &link());
        assert!(!a.dominates(&a.clone()));
    }

    #[test]
    fn best_cut_held_matches_filtered_best() {
        let space = sample_space();
        let link = link();
        // hold both blocks at binding 1 (ASIC b1, GPU b2): best_cut_held
        // must agree with the equivalent best_where over the distinct
        // space (bindings in camera pinned to the committed indices)
        let held = space.best_cut_held(&link, &[1, 1]);
        let filtered = space
            .best_where(&link, |c| {
                c.bindings().iter().take(c.cut()).all(|&b| b == 1)
            })
            .unwrap();
        assert_eq!(held.config, filtered.config);
        assert_eq!(held.label, filtered.label);
        assert_eq!(held.compute, filtered.compute);
    }

    #[test]
    fn best_cut_held_canonicalizes_and_breaks_ties_early() {
        // identical bindings at every cut: all cuts tie on an identity
        // block, so the earliest cut must win and the result must be
        // canonical (bindings past the cut reset to 0)
        let space = PipelineSpace::new(Source::new("s", Bytes::new(1000.0), Fps::new(100.0)))
            .with_block(BlockSpace::new(
                BlockSpec::core("b", DataTransform::Identity),
                vec![
                    Binding::new(Backend::Cpu, Fps::new(200.0)),
                    Binding::new(Backend::Gpu, Fps::new(200.0)),
                ],
            ));
        let held = space.best_cut_held(&link(), &[1]);
        assert_eq!(held.config.cut(), 0);
        assert_eq!(held.config.bindings(), &[0], "canonical past the cut");
        assert!(held.config.is_canonical());
    }

    #[test]
    fn best_cut_held_moves_cut_with_link_quality() {
        let space = sample_space();
        // on the nominal link the reducing b2 makes a deep cut pay; on a
        // heavily degraded link the comparison shifts, but the chosen
        // analysis is always the max-total one among the held cuts
        for goodput in [1.0, 0.25, 0.01] {
            let degraded = link().degraded(goodput);
            let held = space.best_cut_held(&degraded, &[0, 0]);
            for cut in 0..=2usize {
                let mut bindings = vec![0, 0];
                bindings[cut..].fill(0);
                let candidate = space.evaluate(&Configuration::new(bindings, cut), &degraded);
                assert!(held.total().fps() >= candidate.total().fps());
            }
        }
    }

    #[test]
    #[should_panic(expected = "committed has")]
    fn best_cut_held_shape_mismatch_panics() {
        let space = sample_space();
        let _ = space.best_cut_held(&link(), &[0]);
    }

    #[test]
    #[should_panic(expected = "binding choices")]
    fn shape_mismatch_panics() {
        let space = sample_space();
        let _ = space.realize(&Configuration::new(vec![0], 1));
    }

    #[test]
    #[should_panic(expected = "at least one candidate binding")]
    fn empty_bindings_panic() {
        let _ = BlockSpace::new(BlockSpec::core("b", DataTransform::Identity), vec![]);
    }
}
