//! Configuration-space exploration: enumerate every way of binding and
//! cutting a pipeline, and rank the results on the paper's objectives.
//!
//! The paper's Fig. 10 is not a single pipeline — it is a *search over
//! nine configurations*: each block may run on one of several candidate
//! backends, and the pipeline may hand off to the cloud at any cut
//! point. This module makes that search a first-class object:
//!
//! * a [`Binding`] is one candidate way to execute a block (backend +
//!   sustained throughput + per-frame energy + an optional output-size
//!   override for bindings that emit coarser data);
//! * a [`BlockSpace`] is a block together with its candidate bindings;
//! * a [`PipelineSpace`] is a source plus an ordered sequence of block
//!   spaces — the whole configuration space;
//! * a [`Configuration`] is one point in that space: a binding choice
//!   per block plus an offload cut;
//! * [`PipelineSpace::configurations`] enumerates the space lazily
//!   (compose with `Iterator::filter` for predicate pruning), and
//!   [`pareto_frontier`] keeps the configurations that are not dominated
//!   on the three paper objectives — total FPS, in-camera energy per
//!   frame, and uploaded bytes per frame.
//!
//! Two enumeration granularities exist because bindings of blocks *after*
//! the cut never execute in camera: the full product
//! ([`PipelineSpace::cardinality`] points) and the *distinct* space
//! ([`PipelineSpace::distinct_configurations`]), which keeps one
//! canonical representative per observable configuration. The paper's
//! nine Fig. 10 configurations are exactly the distinct space of the VR
//! pipeline with the depth block's three backends coupled to stitching.
//!
//! # Examples
//!
//! ```
//! use incam_core::block::{Backend, BlockSpec, DataTransform};
//! use incam_core::explore::{Binding, BlockSpace, PipelineSpace};
//! use incam_core::link::Link;
//! use incam_core::pipeline::Source;
//! use incam_core::units::{Bytes, BytesPerSec, Fps};
//!
//! // One block, two candidate backends: a slow CPU and a fast ASIC.
//! let space = PipelineSpace::new(Source::new("s", Bytes::new(1000.0), Fps::new(100.0)))
//!     .with_block(BlockSpace::new(
//!         BlockSpec::core("reduce", DataTransform::Scale(0.25)),
//!         vec![
//!             Binding::new(Backend::Cpu, Fps::new(5.0)),
//!             Binding::new(Backend::Asic, Fps::new(200.0)),
//!         ],
//!     ));
//! assert_eq!(space.cardinality(), 4); // 2 bindings x 2 cuts
//!
//! let link = Link::new("l", BytesPerSec::new(10_000.0), 1.0);
//! let best = space.best(&link).unwrap();
//! assert_eq!(best.config.cut(), 1); // reduce in camera...
//! assert_eq!(best.backends(&space), vec![Backend::Asic]); // ...on the ASIC
//! ```

use crate::block::{Backend, BlockSpec, DataTransform};
use crate::link::Link;
use crate::offload::{analyze_cut, Constraint};
use crate::pipeline::{Pipeline, Source, Stage};
use crate::units::{Bytes, Fps, Joules};

/// One candidate way to execute a block: a backend with concrete costs.
#[derive(Debug, Clone, PartialEq)]
pub struct Binding {
    backend: Backend,
    throughput: Fps,
    energy_per_frame: Joules,
    output: Option<DataTransform>,
}

impl Binding {
    /// A binding of the block to `backend` at the given sustained
    /// throughput, with zero per-frame energy and the block's own data
    /// transform.
    pub fn new(backend: Backend, throughput: Fps) -> Self {
        Self {
            backend,
            throughput,
            energy_per_frame: Joules::ZERO,
            output: None,
        }
    }

    /// Sets the per-frame processing energy of this binding.
    #[must_use]
    pub fn with_energy_per_frame(mut self, energy: Joules) -> Self {
        self.energy_per_frame = energy;
        self
    }

    /// Overrides the block's output-size transform for this binding —
    /// e.g. a coarse-grid depth solver that emits a quarter-size
    /// disparity map.
    #[must_use]
    pub fn with_output(mut self, output: DataTransform) -> Self {
        self.output = Some(output);
        self
    }

    /// The backend this binding executes on.
    pub fn backend(&self) -> Backend {
        self.backend
    }

    /// Sustained throughput of this binding.
    pub fn throughput(&self) -> Fps {
        self.throughput
    }

    /// Per-frame processing energy of this binding.
    pub fn energy_per_frame(&self) -> Joules {
        self.energy_per_frame
    }

    /// The output-size override, if any.
    pub fn output(&self) -> Option<DataTransform> {
        self.output
    }
}

/// A block together with its candidate bindings.
#[derive(Debug, Clone, PartialEq)]
pub struct BlockSpace {
    spec: BlockSpec,
    bindings: Vec<Binding>,
}

impl BlockSpace {
    /// Creates a block space.
    ///
    /// # Panics
    ///
    /// Panics if `bindings` is empty — a block with no way to execute it
    /// is not explorable.
    pub fn new(spec: BlockSpec, bindings: Vec<Binding>) -> Self {
        assert!(
            !bindings.is_empty(),
            "block {:?} needs at least one candidate binding",
            spec.name()
        );
        Self { spec, bindings }
    }

    /// The underlying block description.
    pub fn spec(&self) -> &BlockSpec {
        &self.spec
    }

    /// The candidate bindings, in declaration order.
    pub fn bindings(&self) -> &[Binding] {
        &self.bindings
    }

    /// Materializes the stage for binding `choice`.
    ///
    /// # Panics
    ///
    /// Panics if `choice` is out of range.
    pub fn stage(&self, choice: usize) -> Stage {
        let binding = &self.bindings[choice];
        let spec = match binding.output {
            Some(transform) => BlockSpec::new(self.spec.name(), self.spec.kind(), transform),
            None => self.spec.clone(),
        };
        Stage::new(spec, binding.backend, binding.throughput)
            .with_energy_per_frame(binding.energy_per_frame)
    }
}

/// One point in a configuration space: a binding choice per block plus an
/// offload cut.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Configuration {
    bindings: Vec<usize>,
    cut: usize,
}

impl Configuration {
    /// Creates a configuration from explicit binding indices and a cut.
    pub fn new(bindings: Vec<usize>, cut: usize) -> Self {
        Self { bindings, cut }
    }

    /// Binding index per block, in pipeline order.
    pub fn bindings(&self) -> &[usize] {
        &self.bindings
    }

    /// Number of blocks executed in camera before offload.
    pub fn cut(&self) -> usize {
        self.cut
    }

    /// `true` when every binding choice past the cut is the default
    /// (index 0). Bindings past the cut never execute, so the canonical
    /// representatives enumerate the *distinct* configuration space.
    pub fn is_canonical(&self) -> bool {
        self.bindings.iter().skip(self.cut).all(|&b| b == 0)
    }
}

/// Cost analysis of one configuration over one link: the Fig. 10 row for
/// that configuration, extended with the energy objective.
#[derive(Debug, Clone, PartialEq)]
pub struct ConfigAnalysis {
    /// The analyzed configuration.
    pub config: Configuration,
    /// Human-readable label of the in-camera prefix, e.g. `S+B3(F)`.
    pub label: String,
    /// Pipelined in-camera compute throughput.
    pub compute: Fps,
    /// Uplink throughput for the cut's output data.
    pub communication: Fps,
    /// Data uploaded per frame at the cut.
    pub upload: Bytes,
    /// In-camera energy per frame through the cut (including capture).
    pub energy: Joules,
}

impl ConfigAnalysis {
    /// Sustained end-to-end frame rate: the binding constraint of
    /// compute and communication.
    pub fn total(&self) -> Fps {
        self.compute.min(self.communication)
    }

    /// Whether both computation and communication meet a target rate.
    pub fn meets(&self, target: Fps) -> bool {
        self.total() >= target
    }

    /// Which of the two rate costs binds.
    pub fn constraint(&self) -> Constraint {
        if self.compute <= self.communication {
            Constraint::Computation
        } else {
            Constraint::Communication
        }
    }

    /// The backend of each in-camera block (up to the cut), resolved
    /// against the space that produced this analysis.
    pub fn backends(&self, space: &PipelineSpace) -> Vec<Backend> {
        self.config
            .bindings
            .iter()
            .zip(space.blocks())
            .take(self.config.cut)
            .map(|(&b, block)| block.bindings()[b].backend())
            .collect()
    }

    /// `true` if `self` is at least as good as `other` on all three
    /// objectives (total FPS up, energy down, upload down) and strictly
    /// better on at least one.
    pub fn dominates(&self, other: &Self) -> bool {
        let fps = (self.total().fps(), other.total().fps());
        let energy = (self.energy.joules(), other.energy.joules());
        let upload = (self.upload.bytes(), other.upload.bytes());
        let no_worse = fps.0 >= fps.1 && energy.0 <= energy.1 && upload.0 <= upload.1;
        let better = fps.0 > fps.1 || energy.0 < energy.1 || upload.0 < upload.1;
        no_worse && better
    }
}

/// A source plus an ordered sequence of block spaces: the full
/// configuration space a camera system can be built from.
#[derive(Debug, Clone, PartialEq)]
pub struct PipelineSpace {
    source: Source,
    blocks: Vec<BlockSpace>,
}

impl PipelineSpace {
    /// Creates a space with only a source.
    pub fn new(source: Source) -> Self {
        Self {
            source,
            blocks: Vec::new(),
        }
    }

    /// Appends a block space, consuming and returning the space
    /// (builder style).
    #[must_use]
    pub fn with_block(mut self, block: BlockSpace) -> Self {
        self.blocks.push(block);
        self
    }

    /// Appends a block space in place.
    pub fn push(&mut self, block: BlockSpace) {
        self.blocks.push(block);
    }

    /// The space's source.
    pub fn source(&self) -> &Source {
        &self.source
    }

    /// The block spaces, in pipeline order.
    pub fn blocks(&self) -> &[BlockSpace] {
        &self.blocks
    }

    /// Number of blocks.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// `true` if the space has no blocks beyond the source.
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// Size of the full configuration space: the product of per-block
    /// binding counts times the number of cut positions (`len + 1`).
    pub fn cardinality(&self) -> u128 {
        let product: u128 = self
            .blocks
            .iter()
            .map(|b| b.bindings().len() as u128)
            .product();
        product * (self.blocks.len() as u128 + 1)
    }

    /// Size of the *distinct* configuration space: for each cut, only
    /// bindings of blocks before the cut are observable, so the count is
    /// the sum over cuts of the prefix binding products.
    pub fn distinct_cardinality(&self) -> u128 {
        let mut total = 1u128; // cut 0: the raw-sensor configuration
        let mut prefix = 1u128;
        for block in &self.blocks {
            prefix *= block.bindings().len() as u128;
            total += prefix;
        }
        total
    }

    /// Lazily enumerates every configuration in the full space, cut-major
    /// (all binding vectors at cut 0, then cut 1, …); within a cut the
    /// binding vector increments odometer-style with the *last* block
    /// fastest. Compose with [`Iterator::filter`] for predicate pruning.
    pub fn configurations(&self) -> Configurations<'_> {
        Configurations {
            space: self,
            next: Some(Configuration::new(vec![0; self.blocks.len()], 0)),
        }
    }

    /// Enumerates only the canonical representative of each distinct
    /// configuration (see [`Configuration::is_canonical`]), in the same
    /// cut-major order.
    pub fn distinct_configurations(&self) -> impl Iterator<Item = Configuration> + '_ {
        self.configurations().filter(Configuration::is_canonical)
    }

    /// Materializes the concrete [`Pipeline`] of a configuration (all
    /// blocks bound, including those past the cut).
    ///
    /// # Panics
    ///
    /// Panics if the configuration's shape does not match the space.
    pub fn realize(&self, config: &Configuration) -> Pipeline {
        assert_eq!(
            config.bindings.len(),
            self.blocks.len(),
            "configuration has {} binding choices for a {}-block space",
            config.bindings.len(),
            self.blocks.len()
        );
        assert!(
            config.cut <= self.blocks.len(),
            "cut {} out of range for a {}-block space",
            config.cut,
            self.blocks.len()
        );
        let mut pipeline = Pipeline::new(self.source.clone());
        for (block, &choice) in self.blocks.iter().zip(&config.bindings) {
            pipeline.push(block.stage(choice));
        }
        pipeline
    }

    /// Analyzes one configuration over a link.
    ///
    /// # Panics
    ///
    /// Panics if the configuration's shape does not match the space.
    pub fn evaluate(&self, config: &Configuration, link: &Link) -> ConfigAnalysis {
        let pipeline = self.realize(config);
        let cut = analyze_cut(&pipeline, link, config.cut);
        ConfigAnalysis {
            config: config.clone(),
            label: cut.label,
            compute: cut.compute,
            communication: cut.communication,
            upload: cut.upload_size,
            energy: pipeline.energy_per_frame_through(config.cut),
        }
    }

    /// Evaluates every *distinct* configuration over a link, in
    /// enumeration order.
    pub fn explore<'a>(&'a self, link: &'a Link) -> impl Iterator<Item = ConfigAnalysis> + 'a {
        self.distinct_configurations()
            .map(move |c| self.evaluate(&c, link))
    }

    /// Evaluates the distinct configurations that satisfy `keep` — the
    /// pruned search the per-app paper sets are views of (e.g. "the
    /// stitching backend must match the depth backend").
    pub fn explore_where<'a, F>(
        &'a self,
        link: &'a Link,
        mut keep: F,
    ) -> impl Iterator<Item = ConfigAnalysis> + 'a
    where
        F: FnMut(&Configuration) -> bool + 'a,
    {
        self.distinct_configurations()
            .filter(move |c| keep(c))
            .map(move |c| self.evaluate(&c, link))
    }

    /// The configuration with the highest end-to-end frame rate over
    /// `link`. Ties resolve to the earliest configuration in enumeration
    /// order — the earliest cut, then the lowest binding indices — i.e.
    /// the least in-camera work. Returns `None` only for a space that
    /// somehow enumerates nothing (never: cut 0 always exists).
    pub fn best(&self, link: &Link) -> Option<ConfigAnalysis> {
        self.best_where(link, |_| true)
    }

    /// Like [`PipelineSpace::best`], restricted to configurations
    /// satisfying `keep`.
    pub fn best_where<F>(&self, link: &Link, keep: F) -> Option<ConfigAnalysis>
    where
        F: FnMut(&Configuration) -> bool,
    {
        let mut best: Option<ConfigAnalysis> = None;
        for analysis in self.explore_where(link, keep) {
            let better = match &best {
                Some(b) => analysis.total().fps() > b.total().fps(),
                None => true,
            };
            if better {
                best = Some(analysis);
            }
        }
        best
    }

    /// The Pareto frontier of the distinct space over `link`: every
    /// configuration not dominated on (total FPS, in-camera energy,
    /// upload bytes) by another distinct configuration.
    pub fn pareto_frontier(&self, link: &Link) -> Vec<ConfigAnalysis> {
        pareto_frontier(self.explore(link).collect())
    }

    /// Online cut re-selection: re-evaluates every cut of a *committed*
    /// configuration over `link` and returns the analysis with the
    /// highest end-to-end frame rate. The binding choice per block is
    /// held at `committed` (the hardware is already built; only the
    /// offload point can move at runtime), and each candidate is
    /// canonicalized — bindings past the cut reset to 0 — so the result
    /// matches the distinct enumeration exactly. Ties resolve to the
    /// earliest cut: the least in-camera work.
    ///
    /// This is the single re-search entry point shared by
    /// `vr::degrade`'s adaptive-cut policy and the fleet simulator's
    /// per-camera re-selection; callers typically pass
    /// [`Link::degraded`] with the *observed* goodput.
    ///
    /// # Panics
    ///
    /// Panics if `committed` does not have one binding index per block,
    /// or any index is out of range for its block.
    pub fn best_cut_held(&self, link: &Link, committed: &[usize]) -> ConfigAnalysis {
        assert_eq!(
            committed.len(),
            self.blocks.len(),
            "committed has {} binding choices for a {}-block space",
            committed.len(),
            self.blocks.len()
        );
        let mut best: Option<ConfigAnalysis> = None;
        for cut in 0..=self.blocks.len() {
            let mut bindings = committed.to_vec();
            bindings[cut..].fill(0);
            let analysis = self.evaluate(&Configuration::new(bindings, cut), link);
            let better = match &best {
                Some(b) => analysis.total().fps() > b.total().fps(),
                None => true,
            };
            if better {
                best = Some(analysis);
            }
        }
        best.expect("cut 0 is always evaluated") // incam-lint: allow(fallible-unwrap) — the loop body runs for cut 0, so best is Some
    }
}

/// Lazy cut-major enumeration of a [`PipelineSpace`] (see
/// [`PipelineSpace::configurations`]).
#[derive(Debug, Clone)]
pub struct Configurations<'a> {
    space: &'a PipelineSpace,
    next: Option<Configuration>,
}

impl Iterator for Configurations<'_> {
    type Item = Configuration;

    fn next(&mut self) -> Option<Configuration> {
        let current = self.next.take()?;
        // advance the odometer: last block fastest, then the cut
        let mut succ = current.clone();
        let mut advanced = false;
        for i in (0..succ.bindings.len()).rev() {
            if succ.bindings[i] + 1 < self.space.blocks[i].bindings().len() {
                succ.bindings[i] += 1;
                succ.bindings[i + 1..].fill(0);
                advanced = true;
                break;
            }
        }
        if !advanced {
            succ.bindings.fill(0);
            succ.cut += 1;
            advanced = succ.cut <= self.space.blocks.len();
        }
        self.next = advanced.then_some(succ);
        Some(current)
    }
}

/// Filters `analyses` down to the Pareto frontier over the three paper
/// objectives: total FPS (maximize), in-camera energy per frame
/// (minimize), and uploaded bytes per frame (minimize). Input order is
/// preserved; of mutually equal configurations the earliest survives.
pub fn pareto_frontier(analyses: Vec<ConfigAnalysis>) -> Vec<ConfigAnalysis> {
    let mut frontier: Vec<ConfigAnalysis> = Vec::new();
    for candidate in analyses {
        if frontier.iter().any(|kept| {
            kept.dominates(&candidate)
                || (kept.total() == candidate.total()
                    && kept.energy == candidate.energy
                    && kept.upload == candidate.upload)
        }) {
            continue;
        }
        frontier.retain(|kept| !candidate.dominates(kept));
        frontier.push(candidate);
    }
    frontier
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::units::BytesPerSec;

    /// Sensor at 100 FPS / 1000 B; B1 identity on CPU or a 2x-coarser
    /// ASIC; B2 reduces 4x on CPU or GPU.
    fn sample_space() -> PipelineSpace {
        PipelineSpace::new(Source::new("s", Bytes::new(1000.0), Fps::new(100.0)))
            .with_block(BlockSpace::new(
                BlockSpec::core("b1", DataTransform::Identity),
                vec![
                    Binding::new(Backend::Cpu, Fps::new(50.0))
                        .with_energy_per_frame(Joules::from_micro(4.0)),
                    Binding::new(Backend::Asic, Fps::new(400.0))
                        .with_energy_per_frame(Joules::from_micro(1.0))
                        .with_output(DataTransform::Scale(0.5)),
                ],
            ))
            .with_block(BlockSpace::new(
                BlockSpec::core("b2", DataTransform::Scale(0.25)),
                vec![
                    Binding::new(Backend::Cpu, Fps::new(20.0))
                        .with_energy_per_frame(Joules::from_micro(8.0)),
                    Binding::new(Backend::Gpu, Fps::new(120.0))
                        .with_energy_per_frame(Joules::from_micro(16.0)),
                ],
            ))
    }

    fn link() -> Link {
        // raw sensor frame uploads at 10 FPS
        Link::new("l", BytesPerSec::new(10_000.0), 1.0)
    }

    #[test]
    fn cardinalities() {
        let space = sample_space();
        assert_eq!(space.cardinality(), 2 * 2 * 3);
        // cut 0: 1, cut 1: 2, cut 2: 4
        assert_eq!(space.distinct_cardinality(), 7);
        assert_eq!(space.configurations().count(), 12);
        assert_eq!(space.distinct_configurations().count(), 7);
        let empty = PipelineSpace::new(Source::new("s", Bytes::new(1.0), Fps::new(1.0)));
        assert_eq!(empty.cardinality(), 1);
        assert_eq!(empty.distinct_cardinality(), 1);
        assert_eq!(empty.configurations().count(), 1);
    }

    #[test]
    fn enumeration_is_cut_major_and_odometer_ordered() {
        let space = sample_space();
        let configs: Vec<Configuration> = space.configurations().collect();
        assert_eq!(configs[0], Configuration::new(vec![0, 0], 0));
        assert_eq!(configs[1], Configuration::new(vec![0, 1], 0));
        assert_eq!(configs[2], Configuration::new(vec![1, 0], 0));
        assert_eq!(configs[3], Configuration::new(vec![1, 1], 0));
        assert_eq!(configs[4], Configuration::new(vec![0, 0], 1));
        assert_eq!(configs[11], Configuration::new(vec![1, 1], 2));
        // cuts never decrease
        for pair in configs.windows(2) {
            assert!(pair[0].cut() <= pair[1].cut());
        }
    }

    #[test]
    fn realize_applies_bindings_and_overrides() {
        let space = sample_space();
        let p = space.realize(&Configuration::new(vec![1, 0], 2));
        assert_eq!(p.stages()[0].backend(), Backend::Asic);
        // the ASIC binding's output override halves the data
        assert_eq!(p.data_after(1), Bytes::new(500.0));
        assert_eq!(p.data_after(2), Bytes::new(125.0));
        let q = space.realize(&Configuration::new(vec![0, 0], 2));
        assert_eq!(q.data_after(1), Bytes::new(1000.0));
    }

    #[test]
    fn evaluate_matches_hand_computation() {
        let space = sample_space();
        let a = space.evaluate(&Configuration::new(vec![0, 1], 2), &link());
        // compute: min(100 sensor, 50 b1-cpu, 120 b2-gpu)
        assert_eq!(a.compute, Fps::new(50.0));
        // upload: 1000 * 1.0 * 0.25 = 250 B -> 40 FPS
        assert!((a.communication.fps() - 40.0).abs() < 1e-9);
        assert_eq!(a.total(), Fps::new(40.0));
        // energy: 4 uJ (b1 cpu) + 16 uJ (b2 gpu)
        assert!((a.energy.micros() - 20.0).abs() < 1e-12);
        assert_eq!(a.constraint(), Constraint::Communication);
        assert_eq!(a.backends(&space), vec![Backend::Cpu, Backend::Gpu]);
    }

    #[test]
    fn best_resolves_ties_to_earliest() {
        // two bindings with identical costs: cut 1 ties with itself
        // across binding choices, and the identity block makes cut 0 and
        // cut 1 upload the same bytes
        let space = PipelineSpace::new(Source::new("s", Bytes::new(1000.0), Fps::new(100.0)))
            .with_block(BlockSpace::new(
                BlockSpec::core("b", DataTransform::Identity),
                vec![
                    Binding::new(Backend::Cpu, Fps::new(200.0)),
                    Binding::new(Backend::Gpu, Fps::new(200.0)),
                ],
            ));
        let best = space.best(&link()).unwrap();
        // cut 0 and cut 1 both total 10 FPS; the earliest (cut 0) wins
        assert_eq!(best.config.cut(), 0);
        assert_eq!(best.config.bindings(), &[0]);
    }

    #[test]
    fn explore_where_prunes() {
        let space = sample_space();
        let all: Vec<_> = space.explore(&link()).collect();
        assert_eq!(all.len(), 7);
        let gpu_only: Vec<_> = space
            .explore_where(&link(), |c| c.cut() < 2 || c.bindings()[1] == 1)
            .collect();
        assert_eq!(gpu_only.len(), 5);
    }

    #[test]
    fn pareto_frontier_is_nondominated_and_complete() {
        let space = sample_space();
        let frontier = space.pareto_frontier(&link());
        assert!(!frontier.is_empty());
        for (i, a) in frontier.iter().enumerate() {
            for (j, b) in frontier.iter().enumerate() {
                if i != j {
                    assert!(!a.dominates(b), "{} dominates {}", a.label, b.label);
                }
            }
        }
        // every non-frontier configuration is dominated by (or equal to)
        // some frontier member
        for analysis in space.explore(&link()) {
            let on_frontier = frontier.iter().any(|f| f.config == analysis.config);
            if !on_frontier {
                assert!(
                    frontier.iter().any(|f| f.dominates(&analysis)
                        || (f.total() == analysis.total()
                            && f.energy == analysis.energy
                            && f.upload == analysis.upload)),
                    "{} unaccounted for",
                    analysis.label
                );
            }
        }
    }

    #[test]
    fn dominance_requires_strict_improvement() {
        let space = sample_space();
        let a = space.evaluate(&Configuration::new(vec![0, 0], 0), &link());
        assert!(!a.dominates(&a.clone()));
    }

    #[test]
    fn best_cut_held_matches_filtered_best() {
        let space = sample_space();
        let link = link();
        // hold both blocks at binding 1 (ASIC b1, GPU b2): best_cut_held
        // must agree with the equivalent best_where over the distinct
        // space (bindings in camera pinned to the committed indices)
        let held = space.best_cut_held(&link, &[1, 1]);
        let filtered = space
            .best_where(&link, |c| {
                c.bindings().iter().take(c.cut()).all(|&b| b == 1)
            })
            .unwrap();
        assert_eq!(held.config, filtered.config);
        assert_eq!(held.label, filtered.label);
        assert_eq!(held.compute, filtered.compute);
    }

    #[test]
    fn best_cut_held_canonicalizes_and_breaks_ties_early() {
        // identical bindings at every cut: all cuts tie on an identity
        // block, so the earliest cut must win and the result must be
        // canonical (bindings past the cut reset to 0)
        let space = PipelineSpace::new(Source::new("s", Bytes::new(1000.0), Fps::new(100.0)))
            .with_block(BlockSpace::new(
                BlockSpec::core("b", DataTransform::Identity),
                vec![
                    Binding::new(Backend::Cpu, Fps::new(200.0)),
                    Binding::new(Backend::Gpu, Fps::new(200.0)),
                ],
            ));
        let held = space.best_cut_held(&link(), &[1]);
        assert_eq!(held.config.cut(), 0);
        assert_eq!(held.config.bindings(), &[0], "canonical past the cut");
        assert!(held.config.is_canonical());
    }

    #[test]
    fn best_cut_held_moves_cut_with_link_quality() {
        let space = sample_space();
        // on the nominal link the reducing b2 makes a deep cut pay; on a
        // heavily degraded link the comparison shifts, but the chosen
        // analysis is always the max-total one among the held cuts
        for goodput in [1.0, 0.25, 0.01] {
            let degraded = link().degraded(goodput);
            let held = space.best_cut_held(&degraded, &[0, 0]);
            for cut in 0..=2usize {
                let mut bindings = vec![0, 0];
                bindings[cut..].fill(0);
                let candidate = space.evaluate(&Configuration::new(bindings, cut), &degraded);
                assert!(held.total().fps() >= candidate.total().fps());
            }
        }
    }

    #[test]
    #[should_panic(expected = "committed has")]
    fn best_cut_held_shape_mismatch_panics() {
        let space = sample_space();
        let _ = space.best_cut_held(&link(), &[0]);
    }

    #[test]
    #[should_panic(expected = "binding choices")]
    fn shape_mismatch_panics() {
        let space = sample_space();
        let _ = space.realize(&Configuration::new(vec![0], 1));
    }

    #[test]
    #[should_panic(expected = "at least one candidate binding")]
    fn empty_bindings_panic() {
        let _ = BlockSpace::new(BlockSpec::core("b", DataTransform::Identity), vec![]);
    }
}
