//! Pipeline composition: a sensor source followed by an ordered sequence of
//! processing stages.
//!
//! A [`Pipeline`] is the executable form of Fig. 1: a [`Source`] (the image
//! sensor) followed by [`Stage`]s, each binding a block description to a
//! backend with a computation cost (throughput and/or per-frame energy). The pipeline
//! exposes the two cost views the paper uses:
//!
//! * **Throughput view** (VR case study): every stage runs concurrently on
//!   its own hardware, so sustained frame rate is the *minimum* stage
//!   throughput ([`Pipeline::compute_fps_through`]).
//! * **Energy view** (face-authentication case study): per-frame energies
//!   are *additive* ([`Pipeline::energy_per_frame_through`]).

use crate::block::{Backend, BlockSpec};
use crate::units::{Bytes, Fps, Joules, Seconds};

/// The image-sensor source feeding a pipeline.
#[derive(Debug, Clone, PartialEq)]
pub struct Source {
    name: String,
    frame_size: Bytes,
    max_fps: Fps,
    capture_energy: Joules,
}

impl Source {
    /// Creates a source producing `frame_size` bytes per frame, capped at
    /// `max_fps` (sensor readout limit).
    ///
    /// # Examples
    ///
    /// ```
    /// use incam_core::pipeline::Source;
    /// use incam_core::units::{Bytes, Fps};
    ///
    /// let rig = Source::new("16x4K rig", Bytes::from_bits(1.06e9), Fps::new(100.0));
    /// assert_eq!(rig.name(), "16x4K rig");
    /// ```
    pub fn new(name: impl Into<String>, frame_size: Bytes, max_fps: Fps) -> Self {
        Self {
            name: name.into(),
            frame_size,
            max_fps,
            capture_energy: Joules::ZERO,
        }
    }

    /// Sets the per-frame capture energy (sensor + readout).
    pub fn with_capture_energy(mut self, energy: Joules) -> Self {
        self.capture_energy = energy;
        self
    }

    /// The source's display name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Bytes produced per frame.
    pub fn frame_size(&self) -> Bytes {
        self.frame_size
    }

    /// Maximum capture rate.
    pub fn max_fps(&self) -> Fps {
        self.max_fps
    }

    /// Per-frame capture energy.
    pub fn capture_energy(&self) -> Joules {
        self.capture_energy
    }
}

/// A block bound to a backend with concrete costs.
#[derive(Debug, Clone, PartialEq)]
pub struct Stage {
    spec: BlockSpec,
    backend: Backend,
    throughput: Fps,
    energy_per_frame: Joules,
}

impl Stage {
    /// Binds `spec` to `backend` with the given sustained throughput.
    pub fn new(spec: BlockSpec, backend: Backend, throughput: Fps) -> Self {
        Self {
            spec,
            backend,
            throughput,
            energy_per_frame: Joules::ZERO,
        }
    }

    /// Sets the per-frame processing energy of this stage.
    pub fn with_energy_per_frame(mut self, energy: Joules) -> Self {
        self.energy_per_frame = energy;
        self
    }

    /// The underlying block description.
    pub fn spec(&self) -> &BlockSpec {
        &self.spec
    }

    /// The backend executing the block.
    pub fn backend(&self) -> Backend {
        self.backend
    }

    /// Sustained stage throughput.
    pub fn throughput(&self) -> Fps {
        self.throughput
    }

    /// Per-frame processing time (`1 / throughput`).
    pub fn frame_time(&self) -> Seconds {
        self.throughput.period()
    }

    /// Per-frame processing energy.
    pub fn energy_per_frame(&self) -> Joules {
        self.energy_per_frame
    }
}

/// An in-camera processing pipeline: a source plus ordered stages.
#[derive(Debug, Clone, PartialEq)]
pub struct Pipeline {
    source: Source,
    stages: Vec<Stage>,
}

impl Pipeline {
    /// Creates a pipeline with only a source (offloading raw sensor data).
    pub fn new(source: Source) -> Self {
        Self {
            source,
            stages: Vec::new(),
        }
    }

    /// Appends a stage, consuming and returning the pipeline (builder style).
    ///
    /// # Examples
    ///
    /// ```
    /// use incam_core::block::{Backend, BlockSpec, DataTransform};
    /// use incam_core::pipeline::{Pipeline, Source, Stage};
    /// use incam_core::units::{Bytes, Fps};
    ///
    /// let p = Pipeline::new(Source::new("sensor", Bytes::from_mib(8.0), Fps::new(100.0)))
    ///     .then(Stage::new(
    ///         BlockSpec::core("pre-processing", DataTransform::Identity),
    ///         Backend::Cpu,
    ///         Fps::new(174.0),
    ///     ));
    /// assert_eq!(p.len(), 1);
    /// ```
    #[must_use]
    pub fn then(mut self, stage: Stage) -> Self {
        self.stages.push(stage);
        self
    }

    /// Appends a stage in place.
    pub fn push(&mut self, stage: Stage) {
        self.stages.push(stage);
    }

    /// The pipeline's source.
    pub fn source(&self) -> &Source {
        &self.source
    }

    /// The pipeline's stages, in order.
    pub fn stages(&self) -> &[Stage] {
        &self.stages
    }

    /// Number of stages (excluding the source).
    pub fn len(&self) -> usize {
        self.stages.len()
    }

    /// `true` if the pipeline has no stages beyond the source.
    pub fn is_empty(&self) -> bool {
        self.stages.is_empty()
    }

    /// Data size emitted after the first `k` stages (`k = 0` is the raw
    /// sensor output). Values of `k` beyond the stage count saturate at the
    /// final output.
    ///
    /// # Examples
    ///
    /// ```
    /// # use incam_core::block::{Backend, BlockSpec, DataTransform};
    /// # use incam_core::pipeline::{Pipeline, Source, Stage};
    /// # use incam_core::units::{Bytes, Fps};
    /// let p = Pipeline::new(Source::new("s", Bytes::new(100.0), Fps::new(30.0)))
    ///     .then(Stage::new(BlockSpec::core("x4", DataTransform::Scale(4.0)),
    ///                      Backend::Cpu, Fps::new(10.0)));
    /// assert_eq!(p.data_after(0), Bytes::new(100.0));
    /// assert_eq!(p.data_after(1), Bytes::new(400.0));
    /// ```
    pub fn data_after(&self, k: usize) -> Bytes {
        self.stages
            .iter()
            .take(k)
            .fold(self.source.frame_size, |data, stage| {
                stage.spec().output_size(data)
            })
    }

    /// Final output data size after all stages.
    pub fn output_size(&self) -> Bytes {
        self.data_after(self.stages.len())
    }

    /// Pipelined compute throughput through the first `k` stages: the
    /// minimum of the sensor capture rate and every included stage's
    /// throughput. This models each block on its own hardware with frames
    /// streaming through (the paper: "the slowest step will dominate
    /// overall throughput").
    pub fn compute_fps_through(&self, k: usize) -> Fps {
        self.stages
            .iter()
            .take(k)
            .map(Stage::throughput)
            .fold(self.source.max_fps, Fps::min)
    }

    /// Pipelined compute throughput of the whole pipeline.
    pub fn compute_fps(&self) -> Fps {
        self.compute_fps_through(self.stages.len())
    }

    /// Serial (non-pipelined) latency of one frame through the first `k`
    /// stages — relevant for a single low-power processor executing stages
    /// back-to-back, as in the WISPCam case study.
    pub fn serial_latency_through(&self, k: usize) -> Seconds {
        self.stages
            .iter()
            .take(k)
            .map(Stage::frame_time)
            .fold(Seconds::ZERO, |acc, t| acc + t)
    }

    /// Total per-frame in-camera energy through the first `k` stages,
    /// including the sensor's capture energy.
    pub fn energy_per_frame_through(&self, k: usize) -> Joules {
        self.stages
            .iter()
            .take(k)
            .map(Stage::energy_per_frame)
            .fold(self.source.capture_energy, |acc, e| acc + e)
    }

    /// Total per-frame in-camera energy of the whole pipeline.
    pub fn energy_per_frame(&self) -> Joules {
        self.energy_per_frame_through(self.stages.len())
    }

    /// The index of the stage with the largest per-frame compute time — the
    /// pipeline's compute bottleneck (e.g. depth estimation at 70 % in the
    /// paper's Fig. 9). Returns `None` for an empty pipeline.
    pub fn bottleneck(&self) -> Option<usize> {
        (0..self.stages.len()).max_by(|&a, &b| {
            self.stages[a]
                .frame_time()
                .secs()
                .total_cmp(&self.stages[b].frame_time().secs())
        })
    }

    /// Fraction of total serial compute time spent in each stage
    /// (the paper's Fig. 9 "computation time" breakdown).
    pub fn compute_shares(&self) -> Vec<f64> {
        let total = self.serial_latency_through(self.stages.len()).secs();
        if total <= 0.0 {
            return vec![0.0; self.stages.len()];
        }
        self.stages
            .iter()
            .map(|s| s.frame_time().secs() / total)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::DataTransform;

    fn sample_pipeline() -> Pipeline {
        Pipeline::new(
            Source::new("sensor", Bytes::new(1000.0), Fps::new(100.0))
                .with_capture_energy(Joules::from_micro(1.0)),
        )
        .then(Stage::new(
            BlockSpec::core("b1", DataTransform::Identity),
            Backend::Cpu,
            Fps::new(174.0),
        ))
        .then(
            Stage::new(
                BlockSpec::core("b2", DataTransform::Scale(4.0)),
                Backend::Cpu,
                Fps::new(50.0),
            )
            .with_energy_per_frame(Joules::from_micro(2.0)),
        )
        .then(Stage::new(
            BlockSpec::core("b3", DataTransform::Scale(0.75)),
            Backend::Fpga,
            Fps::new(31.6),
        ))
    }

    #[test]
    fn data_propagates_through_transforms() {
        let p = sample_pipeline();
        assert_eq!(p.data_after(0), Bytes::new(1000.0));
        assert_eq!(p.data_after(1), Bytes::new(1000.0));
        assert_eq!(p.data_after(2), Bytes::new(4000.0));
        assert_eq!(p.data_after(3), Bytes::new(3000.0));
        assert_eq!(p.output_size(), Bytes::new(3000.0));
        // saturates beyond the end
        assert_eq!(p.data_after(99), Bytes::new(3000.0));
    }

    #[test]
    fn pipelined_throughput_is_min_stage() {
        let p = sample_pipeline();
        assert_eq!(p.compute_fps_through(0), Fps::new(100.0)); // sensor cap
        assert_eq!(p.compute_fps_through(1), Fps::new(100.0));
        assert_eq!(p.compute_fps_through(2), Fps::new(50.0));
        assert_eq!(p.compute_fps(), Fps::new(31.6));
    }

    #[test]
    fn serial_latency_is_additive() {
        let p = sample_pipeline();
        let expected = 1.0 / 174.0 + 1.0 / 50.0 + 1.0 / 31.6;
        assert!((p.serial_latency_through(3).secs() - expected).abs() < 1e-12);
    }

    #[test]
    fn energy_accumulates_with_capture() {
        let p = sample_pipeline();
        assert!((p.energy_per_frame_through(0).micros() - 1.0).abs() < 1e-12);
        assert!((p.energy_per_frame().micros() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn bottleneck_is_slowest_stage() {
        let p = sample_pipeline();
        assert_eq!(p.bottleneck(), Some(2)); // b3 at 31.6 FPS
        let empty = Pipeline::new(Source::new("s", Bytes::new(1.0), Fps::new(1.0)));
        assert_eq!(empty.bottleneck(), None);
    }

    #[test]
    fn compute_shares_sum_to_one() {
        let p = sample_pipeline();
        let shares = p.compute_shares();
        assert_eq!(shares.len(), 3);
        let total: f64 = shares.iter().sum();
        assert!((total - 1.0).abs() < 1e-12);
        // slowest stage has the largest share
        assert!(shares[2] > shares[1] && shares[1] > shares[0]);
    }
}
