//! Fleet-level abstractions shared by camera adapters and the simulator.
//!
//! The paper evaluates one camera at a time; at fleet scale thousands of
//! cameras contend for shared uplink spectrum and a cloud ingest tier,
//! and the computation-communication tradeoff becomes a *systems*
//! problem. This module holds the two types that cross crate
//! boundaries:
//!
//! * a [`CameraProfile`] describes one camera *class* — its
//!   configuration space ([`PipelineSpace`]), the binding per block the
//!   hardware has committed to, the initial offload cut, the capture
//!   cadence, and the nominal per-camera uplink. `incam-vr` and
//!   `incam-wispcam` each export an adapter constructing their profile,
//!   and `incam-fleet` instantiates thousands of cameras from one;
//! * a [`FleetReport`] is the simulator's output: pure counters
//!   (throughput, energy, drop-rate, adaptation activity) with an
//!   order-sensitive digest, so fleet runs can be pinned byte-exactly by
//!   golden tests and diffed across thread counts.
//!
//! Keeping both in `incam-core` lets the per-application crates describe
//! *what* a camera is without depending on the simulator that drives it.

use crate::explore::PipelineSpace;
use crate::link::Link;
use crate::units::{Fps, Joules};
use core::fmt::Write as _;

/// One camera class, instantiable thousands of times by the fleet
/// simulator.
#[derive(Debug, Clone, PartialEq)]
pub struct CameraProfile {
    /// Display name of the class (e.g. `wispcam`, `vr-rig`).
    pub name: String,
    /// The configuration space the camera explores online.
    pub space: PipelineSpace,
    /// Committed binding index per block — the hardware that shipped.
    /// Online re-search holds these fixed and moves only the cut (see
    /// [`PipelineSpace::best_cut_held`]).
    pub committed: Vec<usize>,
    /// Offload cut the camera boots with.
    pub initial_cut: usize,
    /// Capture cadence of each camera instance.
    pub capture: Fps,
    /// Nominal per-camera uplink: the rate the camera *expects*, against
    /// which observed goodput is normalized, and whose per-bit energy
    /// prices each transmission attempt.
    pub uplink: Link,
}

impl CameraProfile {
    /// Checks internal consistency.
    ///
    /// # Panics
    ///
    /// Panics if the committed bindings do not match the space's shape,
    /// any binding index is out of range, the initial cut is out of
    /// range, or the capture rate is not positive and finite.
    pub fn validate(&self) {
        assert_eq!(
            self.committed.len(),
            self.space.len(),
            "{}: {} committed bindings for a {}-block space",
            self.name,
            self.committed.len(),
            self.space.len()
        );
        for (i, (&choice, block)) in self.committed.iter().zip(self.space.blocks()).enumerate() {
            assert!(
                choice < block.bindings().len(),
                "{}: committed binding {choice} out of range for block {i}",
                self.name
            );
        }
        assert!(
            self.initial_cut <= self.space.len(),
            "{}: initial cut {} out of range",
            self.name,
            self.initial_cut
        );
        assert!(
            self.capture.fps() > 0.0 && self.capture.fps().is_finite(),
            "{}: capture rate must be positive and finite",
            self.name
        );
    }
}

/// Counters of one fleet simulation run.
///
/// Frame conservation holds by construction and is pinned by property
/// tests: every captured frame is either skipped at the source (camera
/// busy), delivered through the ingest tier, dropped on the link or at
/// admission, or still in flight at the horizon — see
/// [`FleetReport::conserves`].
#[derive(Debug, Clone, PartialEq)]
pub struct FleetReport {
    /// Scenario label.
    pub label: String,
    /// Number of camera instances simulated.
    pub cameras: u64,
    /// Tick of the last processed event (or the configured horizon).
    pub horizon_ticks: u64,
    /// Tick resolution: simulation ticks per second.
    pub ticks_per_sec: u64,
    /// Capture events fired across the fleet.
    pub frames_captured: u64,
    /// Captures skipped because the camera's frame buffer was still
    /// occupied by an unresolved frame.
    pub frames_skipped: u64,
    /// Frames that finished in-camera processing and requested uplink.
    pub frames_admitted: u64,
    /// Frames delivered by the ingest tier (batch completion).
    pub frames_delivered: u64,
    /// Frames dropped after exhausting link retry attempts.
    pub frames_dropped_link: u64,
    /// Frames rejected by ingest admission control.
    pub frames_dropped_ingest: u64,
    /// Frames without a final disposition at the horizon.
    pub frames_in_flight: u64,
    /// Lost transmissions that were retried.
    pub link_retries: u64,
    /// Online cut re-searches executed.
    pub re_searches: u64,
    /// Re-searches that moved the camera's offload cut.
    pub cut_changes: u64,
    /// Batches the ingest tier completed.
    pub ingest_batches: u64,
    /// Total in-camera compute energy (capture + blocks through the cut).
    pub energy_compute: Joules,
    /// Total radio transmit energy across all attempts.
    pub energy_radio: Joules,
    /// Cameras per final offload cut (index = cut).
    pub cut_histogram: Vec<u64>,
}

impl FleetReport {
    /// Fleet-aggregate delivered throughput over the simulated horizon.
    pub fn throughput(&self) -> Fps {
        if self.horizon_ticks == 0 {
            return Fps::ZERO;
        }
        let secs = self.horizon_ticks as f64 / self.ticks_per_sec as f64;
        Fps::new(self.frames_delivered as f64 / secs)
    }

    /// Fraction of admitted frames that were dropped (link + ingest).
    pub fn drop_rate(&self) -> f64 {
        if self.frames_admitted == 0 {
            return 0.0;
        }
        (self.frames_dropped_link + self.frames_dropped_ingest) as f64 / self.frames_admitted as f64
    }

    /// Total fleet energy: compute plus radio.
    pub fn energy_total(&self) -> Joules {
        self.energy_compute + self.energy_radio
    }

    /// Mean energy per *delivered* frame — the fleet-level
    /// energy-efficiency objective.
    pub fn energy_per_delivered(&self) -> Joules {
        if self.frames_delivered == 0 {
            return Joules::ZERO;
        }
        Joules::new(self.energy_total().joules() / self.frames_delivered as f64)
    }

    /// `true` when the frame-conservation identity holds: captured =
    /// skipped + delivered + dropped(link) + dropped(ingest) + in-flight.
    pub fn conserves(&self) -> bool {
        self.frames_captured
            == self.frames_skipped
                + self.frames_delivered
                + self.frames_dropped_link
                + self.frames_dropped_ingest
                + self.frames_in_flight
    }

    /// Order-sensitive FNV-1a digest over every counter (energy hashed
    /// by exact bit pattern). Two reports digest equal iff every counter
    /// and the cut histogram match exactly — the object golden tests and
    /// same-seed property tests pin.
    pub fn digest(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut eat = |v: u64| {
            for byte in v.to_le_bytes() {
                h ^= u64::from(byte);
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
        };
        for v in [
            self.cameras,
            self.horizon_ticks,
            self.ticks_per_sec,
            self.frames_captured,
            self.frames_skipped,
            self.frames_admitted,
            self.frames_delivered,
            self.frames_dropped_link,
            self.frames_dropped_ingest,
            self.frames_in_flight,
            self.link_retries,
            self.re_searches,
            self.cut_changes,
            self.ingest_batches,
            self.energy_compute.joules().to_bits(),
            self.energy_radio.joules().to_bits(),
            self.cut_histogram.len() as u64,
        ] {
            eat(v);
        }
        for &count in &self.cut_histogram {
            eat(count);
        }
        h
    }

    /// Renders the report as an aligned text block.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "fleet scenario      {}", self.label);
        let _ = writeln!(
            out,
            "cameras / horizon   {} cameras over {:.2} s",
            self.cameras,
            self.horizon_ticks as f64 / self.ticks_per_sec as f64
        );
        let _ = writeln!(
            out,
            "frames              captured {}  skipped {}  admitted {}",
            self.frames_captured, self.frames_skipped, self.frames_admitted
        );
        let _ = writeln!(
            out,
            "disposition         delivered {}  dropped(link) {}  dropped(ingest) {}  in-flight {}",
            self.frames_delivered,
            self.frames_dropped_link,
            self.frames_dropped_ingest,
            self.frames_in_flight
        );
        let _ = writeln!(
            out,
            "adaptation          retries {}  re-searches {}  cut-changes {}  batches {}",
            self.link_retries, self.re_searches, self.cut_changes, self.ingest_batches
        );
        let _ = writeln!(
            out,
            "throughput          {:.3} FPS delivered fleet-wide ({:.1} % of admitted dropped)",
            self.throughput().fps(),
            self.drop_rate() * 100.0
        );
        let _ = writeln!(
            out,
            "energy              compute {}  radio {}  per delivered frame {}",
            self.energy_compute.human(),
            self.energy_radio.human(),
            self.energy_per_delivered().human()
        );
        let cuts: Vec<String> = self
            .cut_histogram
            .iter()
            .enumerate()
            .map(|(cut, n)| format!("cut{cut}:{n}"))
            .collect();
        let _ = writeln!(out, "final cuts          {}", cuts.join("  "));
        let _ = writeln!(out, "digest              {:016x}", self.digest());
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::{Backend, BlockSpec, DataTransform};
    use crate::explore::{Binding, BlockSpace};
    use crate::pipeline::Source;
    use crate::units::{Bytes, BytesPerSec};

    fn profile() -> CameraProfile {
        let space = PipelineSpace::new(Source::new("s", Bytes::new(1000.0), Fps::new(10.0)))
            .with_block(BlockSpace::new(
                BlockSpec::core("b", DataTransform::Scale(0.25)),
                vec![
                    Binding::new(Backend::Asic, Fps::new(100.0)),
                    Binding::new(Backend::Mcu, Fps::new(5.0)),
                ],
            ));
        CameraProfile {
            name: "test".to_string(),
            space,
            committed: vec![0],
            initial_cut: 1,
            capture: Fps::new(10.0),
            uplink: Link::new("l", BytesPerSec::new(1000.0), 1.0),
        }
    }

    fn report() -> FleetReport {
        FleetReport {
            label: "unit".to_string(),
            cameras: 10,
            horizon_ticks: 2000,
            ticks_per_sec: 1000,
            frames_captured: 100,
            frames_skipped: 5,
            frames_admitted: 95,
            frames_delivered: 80,
            frames_dropped_link: 7,
            frames_dropped_ingest: 3,
            frames_in_flight: 5,
            link_retries: 12,
            re_searches: 20,
            cut_changes: 9,
            ingest_batches: 10,
            energy_compute: Joules::from_micro(500.0),
            energy_radio: Joules::from_micro(100.0),
            cut_histogram: vec![1, 9],
        }
    }

    #[test]
    fn profile_validates() {
        profile().validate();
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn profile_rejects_bad_committed_index() {
        let mut p = profile();
        p.committed = vec![2];
        p.validate();
    }

    #[test]
    #[should_panic(expected = "initial cut")]
    fn profile_rejects_bad_cut() {
        let mut p = profile();
        p.initial_cut = 2;
        p.validate();
    }

    #[test]
    fn report_derived_metrics() {
        let r = report();
        assert!(r.conserves());
        // 80 frames over 2 seconds
        assert!((r.throughput().fps() - 40.0).abs() < 1e-12);
        assert!((r.drop_rate() - 10.0 / 95.0).abs() < 1e-12);
        assert!((r.energy_total().micros() - 600.0).abs() < 1e-9);
        assert!((r.energy_per_delivered().micros() - 7.5).abs() < 1e-9);
    }

    #[test]
    fn conservation_detects_leaks() {
        let mut r = report();
        r.frames_delivered += 1;
        assert!(!r.conserves());
    }

    #[test]
    fn digest_is_sensitive_to_every_counter() {
        let base = report().digest();
        let mut r = report();
        r.cut_changes += 1;
        assert_ne!(base, r.digest());
        let mut r = report();
        r.energy_radio = Joules::from_micro(100.1);
        assert_ne!(base, r.digest());
        let mut r = report();
        r.cut_histogram = vec![0, 10];
        assert_ne!(base, r.digest());
        // label is presentation, not state
        let mut r = report();
        r.label = "renamed".to_string();
        assert_eq!(base, r.digest());
    }

    #[test]
    fn render_mentions_the_headline_counters() {
        let s = report().render();
        assert!(s.contains("delivered 80"));
        assert!(s.contains("cut0:1  cut1:9"));
        assert!(s.contains("digest"));
    }

    #[test]
    fn empty_report_has_safe_derived_metrics() {
        let r = FleetReport {
            label: String::new(),
            cameras: 0,
            horizon_ticks: 0,
            ticks_per_sec: 1000,
            frames_captured: 0,
            frames_skipped: 0,
            frames_admitted: 0,
            frames_delivered: 0,
            frames_dropped_link: 0,
            frames_dropped_ingest: 0,
            frames_in_flight: 0,
            link_retries: 0,
            re_searches: 0,
            cut_changes: 0,
            ingest_batches: 0,
            energy_compute: Joules::ZERO,
            energy_radio: Joules::ZERO,
            cut_histogram: Vec::new(),
        };
        assert_eq!(r.throughput(), Fps::ZERO);
        assert_eq!(r.drop_rate(), 0.0);
        assert_eq!(r.energy_per_delivered(), Joules::ZERO);
        assert!(r.conserves());
    }
}
