//! Degradation-aware pipeline execution under injected faults.
//!
//! The cost framework elsewhere in this crate assumes ideal conditions:
//! [`crate::link::Link::effective_rate`] is a fixed fraction of the raw
//! bandwidth and every block always completes. Real camera uplinks lose
//! packets in bursts and real in-camera blocks stall or fail transiently;
//! this module runs a composed [`Pipeline`] against a *fault oracle* with
//! a configurable [`RetryPolicy`] and reports what actually survived — a
//! [`DegradationReport`] of frames attempted / completed / dropped,
//! retries spent, and the effective frame rate and energy next to the
//! ideal figures.
//!
//! # Determinism contract
//!
//! The executor is a pure function of its inputs. Faults are supplied by
//! a [`FaultOracle`], which is queried by *frame and attempt index* (never
//! by wall-clock or call order), so a deterministic oracle — such as the
//! trace-backed ones in the `incam-faults` crate — yields byte-identical
//! reports at any `INCAM_THREADS` setting. Retry-backoff jitter is
//! derived from a [SplitMix64-style hash](https://prng.di.unimi.it/) of
//! `(frame, attempt)`, not from ambient randomness.
//!
//! # Examples
//!
//! ```
//! use incam_core::block::{Backend, BlockSpec, DataTransform};
//! use incam_core::link::Link;
//! use incam_core::pipeline::{Pipeline, Source, Stage};
//! use incam_core::runtime::{IdealOracle, RetryPolicy, Runtime};
//! use incam_core::units::{Bytes, BytesPerSec, Fps};
//!
//! let pipeline = Pipeline::new(Source::new("s", Bytes::new(1000.0), Fps::new(100.0)))
//!     .then(Stage::new(BlockSpec::core("B1", DataTransform::Scale(0.5)),
//!                      Backend::Cpu, Fps::new(60.0)));
//! let link = Link::new("uplink", BytesPerSec::new(50_000.0), 1.0);
//! let runtime = Runtime::new(&pipeline, &link, 1, RetryPolicy::default());
//! let report = runtime.run(100, &IdealOracle);
//! assert_eq!(report.frames_completed, 100);
//! assert_eq!(report.frames_dropped(), 0);
//! // under no faults the effective rate equals the ideal rate
//! assert!((report.effective_fps.fps() - report.ideal_fps.fps()).abs() < 1e-9);
//! ```

use crate::link::Link;
use crate::offload::analyze_cut;
use crate::pipeline::Pipeline;
use crate::report::{sig3, Table};
use crate::units::{Fps, Joules, Seconds};

/// Link condition for one transmission attempt.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkCondition {
    /// Whether the attempt delivers the payload.
    pub delivered: bool,
    /// Fraction of the link's ideal effective rate available to this
    /// attempt, in `[0, 1]`. Zero models a full outage window.
    pub goodput: f64,
}

impl LinkCondition {
    /// A nominal attempt: delivered at full rate.
    pub const NOMINAL: LinkCondition = LinkCondition {
        delivered: true,
        goodput: 1.0,
    };
}

/// Compute condition for one execution of one pipeline stage.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ComputeCondition {
    /// The stage runs at its calibrated throughput.
    Nominal,
    /// The stage runs slowed by the given factor (`> 1`, e.g. `2.0` means
    /// twice the frame time — thermal throttling, contention).
    Slowdown(f64),
    /// The stage fails transiently and must be re-executed.
    Failed,
}

/// Deterministic source of fault conditions, queried by frame, stage and
/// attempt index.
///
/// Implementations must be pure functions of their construction inputs
/// and the query indices: the executor relies on this for its
/// thread-count-independent determinism guarantee.
pub trait FaultOracle {
    /// Link condition for transmission attempt `attempt` (0-based) of
    /// frame `frame`.
    fn link(&self, frame: u64, attempt: u32) -> LinkCondition;

    /// Compute condition for execution attempt `attempt` of stage `stage`
    /// on frame `frame`.
    fn compute(&self, frame: u64, stage: usize, attempt: u32) -> ComputeCondition;
}

/// The no-fault oracle: every attempt is nominal. Running the executor
/// against it reproduces the ideal cost model exactly.
#[derive(Debug, Clone, Copy, Default)]
pub struct IdealOracle;

impl FaultOracle for IdealOracle {
    fn link(&self, _frame: u64, _attempt: u32) -> LinkCondition {
        LinkCondition::NOMINAL
    }

    fn compute(&self, _frame: u64, _stage: usize, _attempt: u32) -> ComputeCondition {
        ComputeCondition::Nominal
    }
}

/// Retry semantics for failed stage executions and lost transmissions.
///
/// Backoff before retry `n` (1-based) is `base_backoff × 2^(n-1)`, capped
/// at `max_backoff`, then scaled by a deterministic jitter factor in
/// `[1 − jitter, 1 + jitter]` derived from the `(frame, attempt)` pair.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Maximum executions of any one stage / transmissions of any one
    /// payload (first try included). At least 1.
    pub max_attempts: u32,
    /// Base backoff before the first retry.
    pub base_backoff: Seconds,
    /// Cap on the exponentially grown backoff.
    pub max_backoff: Seconds,
    /// Relative jitter amplitude in `[0, 1)` applied to each backoff.
    pub jitter: f64,
    /// Wall-clock charged to a transmission attempt that cannot complete
    /// (outage windows where goodput is zero) before it is declared lost.
    pub timeout: Seconds,
}

impl Default for RetryPolicy {
    /// Three total attempts, 10 ms base backoff (capped at 200 ms, ±25 %
    /// jitter), 500 ms attempt timeout.
    fn default() -> Self {
        Self {
            max_attempts: 3,
            base_backoff: Seconds::from_millis(10.0),
            max_backoff: Seconds::from_millis(200.0),
            jitter: 0.25,
            timeout: Seconds::from_millis(500.0),
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries: one attempt, no backoff.
    pub fn no_retry() -> Self {
        Self {
            max_attempts: 1,
            base_backoff: Seconds::ZERO,
            max_backoff: Seconds::ZERO,
            jitter: 0.0,
            timeout: Seconds::from_millis(500.0),
        }
    }

    /// Validates the policy's invariants.
    ///
    /// # Panics
    ///
    /// Panics if `max_attempts` is zero, `jitter` is outside `[0, 1)`, or
    /// any duration is negative or non-finite.
    pub fn validate(&self) {
        assert!(self.max_attempts >= 1, "need at least one attempt");
        assert!(
            (0.0..1.0).contains(&self.jitter),
            "jitter must be in [0, 1), got {}",
            self.jitter
        );
        for (name, s) in [
            ("base_backoff", self.base_backoff),
            ("max_backoff", self.max_backoff),
            ("timeout", self.timeout),
        ] {
            assert!(
                s.secs().is_finite() && s.secs() >= 0.0,
                "{name} must be finite and non-negative"
            );
        }
    }

    /// Backoff delay before retry `retry` (1-based) of frame `frame`.
    /// Deterministic: the jitter factor is a pure function of the
    /// `(frame, retry)` pair.
    pub fn backoff(&self, frame: u64, retry: u32) -> Seconds {
        if retry == 0 {
            return Seconds::ZERO;
        }
        let raw = self.base_backoff * 2f64.powi((retry - 1).min(32) as i32);
        let capped = raw.min(self.max_backoff);
        // uniform draw in [0, 1) from a splitmix64-style finalizer
        let draw = unit_hash(frame ^ u64::from(retry).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        capped * (1.0 + self.jitter * (2.0 * draw - 1.0))
    }
}

/// SplitMix64 finalizer mapping a 64-bit key to a uniform draw in
/// `[0, 1)`. Keeps the executor free of any RNG *state*: jitter depends
/// only on the key, never on query order.
fn unit_hash(key: u64) -> f64 {
    let mut z = key.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    // 53 high bits -> [0, 1)
    (z >> 11) as f64 / (1u64 << 53) as f64
}

/// Why a frame was dropped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum DropCause {
    Compute,
    Link,
}

/// Outcome of running a pipeline against a fault oracle.
///
/// All counters are exact integers and all derived figures are pure
/// functions of them plus the model parameters, so two reports from the
/// same seed render byte-identically.
#[derive(Debug, Clone, PartialEq)]
pub struct DegradationReport {
    /// Label of the executed configuration (pipeline cut + link).
    pub label: String,
    /// Frames submitted to the runtime.
    pub frames_attempted: u64,
    /// Frames whose compute and upload both completed.
    pub frames_completed: u64,
    /// Frames abandoned because a stage exhausted its retry budget.
    pub frames_dropped_compute: u64,
    /// Frames abandoned because the uplink exhausted its retry budget.
    pub frames_dropped_link: u64,
    /// Stage re-executions beyond each first attempt.
    pub compute_retries: u64,
    /// Transmission re-attempts beyond each first attempt.
    pub link_retries: u64,
    /// Wall-clock spent waiting in retry backoff.
    pub backoff_time: Seconds,
    /// Total simulated wall-clock.
    pub elapsed: Seconds,
    /// Completed frames per elapsed second.
    pub effective_fps: Fps,
    /// The same pipeline cut's throughput under ideal conditions.
    pub ideal_fps: Fps,
    /// Total energy drawn (compute for every execution, radio for every
    /// attempt — retries burn energy whether or not the frame survives).
    pub energy_total: Joules,
    /// Per-frame energy of the same cut under ideal conditions.
    pub energy_ideal_per_frame: Joules,
}

impl DegradationReport {
    /// Total dropped frames, either cause.
    pub fn frames_dropped(&self) -> u64 {
        self.frames_dropped_compute + self.frames_dropped_link
    }

    /// Fraction of attempted frames that completed.
    pub fn completion_rate(&self) -> f64 {
        if self.frames_attempted == 0 {
            return 1.0;
        }
        self.frames_completed as f64 / self.frames_attempted as f64
    }

    /// Mean energy per *completed* frame — the price of retries shows up
    /// here as the gap to [`DegradationReport::energy_ideal_per_frame`].
    pub fn energy_per_completed_frame(&self) -> Joules {
        if self.frames_completed == 0 {
            return Joules::ZERO;
        }
        self.energy_total / self.frames_completed as f64
    }

    /// Effective rate as a fraction of the ideal rate.
    pub fn throughput_ratio(&self) -> f64 {
        if self.ideal_fps.fps() <= 0.0 {
            return 0.0;
        }
        self.effective_fps.fps() / self.ideal_fps.fps()
    }

    /// Renders the report as an aligned two-column table.
    pub fn render(&self) -> String {
        let mut t = Table::new(&["metric", "value"]);
        t.row(&["configuration", &self.label]);
        t.row(&["frames attempted", &self.frames_attempted.to_string()]);
        t.row(&["frames completed", &self.frames_completed.to_string()]);
        t.row(&[
            "frames dropped (compute)",
            &self.frames_dropped_compute.to_string(),
        ]);
        t.row(&[
            "frames dropped (link)",
            &self.frames_dropped_link.to_string(),
        ]);
        t.row(&["compute retries", &self.compute_retries.to_string()]);
        t.row(&["link retries", &self.link_retries.to_string()]);
        t.row(&["effective FPS", &sig3(self.effective_fps.fps())]);
        t.row(&["ideal FPS", &sig3(self.ideal_fps.fps())]);
        t.row(&[
            "throughput ratio",
            &format!("{:.3}", self.throughput_ratio()),
        ]);
        // analytical pipelines with no energy model would render 0 pJ
        if self.energy_total.joules() > 0.0 || self.energy_ideal_per_frame.joules() > 0.0 {
            t.row(&[
                "energy / completed frame",
                &self.energy_per_completed_frame().human(),
            ]);
            t.row(&["ideal energy / frame", &self.energy_ideal_per_frame.human()]);
        }
        t.render()
    }
}

/// The degradation-aware executor: a pipeline cut on a link, run frame by
/// frame against a [`FaultOracle`] under a [`RetryPolicy`].
///
/// Timing model: stages are pipelined, so under ideal conditions each
/// frame advances the clock by the bottleneck time
/// `max(stage times, upload time)`. Faults stretch individual terms —
/// a stage retry re-executes the stage, a lost transmission occupies the
/// link for its attempted duration (capped at the policy timeout) plus
/// backoff before the next try.
#[derive(Debug, Clone)]
pub struct Runtime<'a> {
    pipeline: &'a Pipeline,
    link: &'a Link,
    cut: usize,
    policy: RetryPolicy,
}

impl<'a> Runtime<'a> {
    /// Creates a runtime executing the first `cut` stages in-camera and
    /// uploading the cut's output over `link`.
    ///
    /// # Panics
    ///
    /// Panics if `cut` exceeds the stage count or the policy is invalid.
    pub fn new(pipeline: &'a Pipeline, link: &'a Link, cut: usize, policy: RetryPolicy) -> Self {
        assert!(
            cut <= pipeline.len(),
            "cut {cut} out of range for a {}-stage pipeline",
            pipeline.len()
        );
        policy.validate();
        Self {
            pipeline,
            link,
            cut,
            policy,
        }
    }

    /// The retry policy in force.
    pub fn policy(&self) -> &RetryPolicy {
        &self.policy
    }

    /// Runs `frames` frames against `oracle` and aggregates the outcome.
    pub fn run(&self, frames: u64, oracle: &dyn FaultOracle) -> DegradationReport {
        let ideal = analyze_cut(self.pipeline, self.link, self.cut);
        let upload_size = ideal.upload_size;
        let ideal_upload = self.link.upload_time(upload_size);
        let effective_rate = self.link.effective_rate();
        let energy_compute_ideal = self.pipeline.energy_per_frame_through(self.cut);
        let energy_upload_ideal = self.link.upload_energy(upload_size);

        let mut completed = 0u64;
        let mut compute_retries = 0u64;
        let mut link_retries = 0u64;
        let mut dropped: Vec<(u64, DropCause)> = Vec::new();
        let mut backoff_time = Seconds::ZERO;
        let mut elapsed = Seconds::ZERO;
        let mut energy_total = Joules::ZERO;

        // sensor cap: even an empty cut cannot outrun the source
        let capture_time = self.pipeline.source().max_fps().period();

        for frame in 0..frames {
            let mut frame_time = capture_time;
            let mut frame_backoff = Seconds::ZERO;
            let mut drop_cause: Option<DropCause> = None;
            energy_total += self.pipeline.source().capture_energy();

            // ---- compute phase: every in-camera stage, with retries ----
            for (stage_idx, stage) in self.pipeline.stages().iter().take(self.cut).enumerate() {
                let nominal = stage.frame_time();
                let mut stage_time = Seconds::ZERO;
                let mut ok = false;
                for attempt in 0..self.policy.max_attempts {
                    if attempt > 0 {
                        compute_retries += 1;
                        let delay = self.policy.backoff(frame, attempt);
                        stage_time += delay;
                        frame_backoff += delay;
                    }
                    // every execution costs the stage's energy
                    energy_total += stage.energy_per_frame();
                    match oracle.compute(frame, stage_idx, attempt) {
                        ComputeCondition::Nominal => {
                            stage_time += nominal;
                            ok = true;
                        }
                        ComputeCondition::Slowdown(factor) => {
                            stage_time += nominal * factor.max(1.0);
                            ok = true;
                        }
                        ComputeCondition::Failed => {
                            stage_time += nominal;
                            continue;
                        }
                    }
                    break;
                }
                frame_time = frame_time.max(stage_time);
                if !ok {
                    drop_cause = Some(DropCause::Compute);
                    break;
                }
            }

            // ---- communication phase: upload with retries ----
            if drop_cause.is_none() {
                let mut upload_time = Seconds::ZERO;
                let mut delivered = false;
                for attempt in 0..self.policy.max_attempts {
                    if attempt > 0 {
                        link_retries += 1;
                        let delay = self.policy.backoff(frame, attempt);
                        upload_time += delay;
                        frame_backoff += delay;
                    }
                    let cond = oracle.link(frame, attempt);
                    let attempt_time = if cond.goodput > 0.0 {
                        (upload_size / (effective_rate * cond.goodput.min(1.0)))
                            .min(self.policy.timeout)
                    } else {
                        self.policy.timeout
                    };
                    upload_time += attempt_time;
                    // the radio burns energy for the whole attempt either way
                    energy_total += energy_upload_ideal;
                    if cond.delivered && cond.goodput > 0.0 {
                        delivered = true;
                        break;
                    }
                }
                frame_time = frame_time.max(upload_time.max(ideal_upload));
                if !delivered {
                    drop_cause = Some(DropCause::Link);
                }
            }

            match drop_cause {
                None => completed += 1,
                Some(cause) => dropped.push((frame, cause)),
            }
            backoff_time += frame_backoff;
            elapsed += frame_time;
        }

        let frames_dropped_compute = dropped
            .iter()
            .filter(|(_, c)| *c == DropCause::Compute)
            .count() as u64;
        let frames_dropped_link = dropped.len() as u64 - frames_dropped_compute;
        let effective_fps = if elapsed.secs() > 0.0 {
            Fps::new(completed as f64 / elapsed.secs())
        } else {
            Fps::ZERO
        };
        DegradationReport {
            label: format!("{} over {}", ideal.label, self.link.name()),
            frames_attempted: frames,
            frames_completed: completed,
            frames_dropped_compute,
            frames_dropped_link,
            compute_retries,
            link_retries,
            backoff_time,
            elapsed,
            effective_fps,
            ideal_fps: ideal.total(),
            energy_total,
            energy_ideal_per_frame: energy_compute_ideal + energy_upload_ideal,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::{Backend, BlockSpec, DataTransform};
    use crate::pipeline::{Source, Stage};
    use crate::units::{Bytes, BytesPerSec};

    fn toy() -> (Pipeline, Link) {
        let p = Pipeline::new(
            Source::new("s", Bytes::new(1000.0), Fps::new(100.0))
                .with_capture_energy(Joules::from_micro(1.0)),
        )
        .then(
            Stage::new(
                BlockSpec::core("B1", DataTransform::Scale(0.5)),
                Backend::Cpu,
                Fps::new(50.0),
            )
            .with_energy_per_frame(Joules::from_micro(2.0)),
        );
        let link = Link::new("L", BytesPerSec::new(25_000.0), 1.0);
        (p, link)
    }

    /// Oracle that loses the first `n` attempts of every frame.
    struct LoseFirst(u32);

    impl FaultOracle for LoseFirst {
        fn link(&self, _frame: u64, attempt: u32) -> LinkCondition {
            LinkCondition {
                delivered: attempt >= self.0,
                goodput: 1.0,
            }
        }

        fn compute(&self, _f: u64, _s: usize, _a: u32) -> ComputeCondition {
            ComputeCondition::Nominal
        }
    }

    /// Oracle that always fails stage 0.
    struct BrokenStage;

    impl FaultOracle for BrokenStage {
        fn link(&self, _f: u64, _a: u32) -> LinkCondition {
            LinkCondition::NOMINAL
        }

        fn compute(&self, _f: u64, stage: usize, _a: u32) -> ComputeCondition {
            if stage == 0 {
                ComputeCondition::Failed
            } else {
                ComputeCondition::Nominal
            }
        }
    }

    #[test]
    fn ideal_oracle_matches_cut_analysis() {
        let (p, link) = toy();
        let report = Runtime::new(&p, &link, 1, RetryPolicy::default()).run(50, &IdealOracle);
        assert_eq!(report.frames_completed, 50);
        assert_eq!(report.compute_retries + report.link_retries, 0);
        assert!((report.effective_fps.fps() - report.ideal_fps.fps()).abs() < 1e-9);
        assert!(
            (report.energy_per_completed_frame().joules() - report.energy_ideal_per_frame.joules())
                .abs()
                < 1e-15
        );
    }

    #[test]
    fn one_loss_per_frame_retries_and_completes() {
        let (p, link) = toy();
        let report = Runtime::new(&p, &link, 1, RetryPolicy::default()).run(20, &LoseFirst(1));
        assert_eq!(report.frames_completed, 20);
        assert_eq!(report.link_retries, 20);
        assert!(report.effective_fps.fps() < report.ideal_fps.fps());
        // retried uploads burn extra radio time but not extra compute energy
        assert!(report.backoff_time.secs() > 0.0);
    }

    #[test]
    fn persistent_loss_drops_every_frame() {
        let (p, link) = toy();
        let policy = RetryPolicy::default();
        let report = Runtime::new(&p, &link, 1, policy).run(10, &LoseFirst(u32::MAX));
        assert_eq!(report.frames_completed, 0);
        assert_eq!(report.frames_dropped_link, 10);
        assert_eq!(report.link_retries, 10 * u64::from(policy.max_attempts - 1));
        assert_eq!(report.effective_fps, Fps::ZERO);
    }

    #[test]
    fn broken_stage_drops_on_compute() {
        let (p, link) = toy();
        let report = Runtime::new(&p, &link, 1, RetryPolicy::default()).run(10, &BrokenStage);
        assert_eq!(report.frames_dropped_compute, 10);
        assert_eq!(report.frames_dropped_link, 0);
        // the NN of attempts still burned stage energy
        assert!(report.energy_total.joules() > 0.0);
    }

    #[test]
    fn backoff_grows_then_caps() {
        let policy = RetryPolicy {
            max_attempts: 10,
            base_backoff: Seconds::from_millis(10.0),
            max_backoff: Seconds::from_millis(50.0),
            jitter: 0.0,
            timeout: Seconds::new(1.0),
        };
        let b1 = policy.backoff(0, 1);
        let b2 = policy.backoff(0, 2);
        let b3 = policy.backoff(0, 3);
        let b9 = policy.backoff(0, 9);
        assert!((b1.millis() - 10.0).abs() < 1e-9);
        assert!((b2.millis() - 20.0).abs() < 1e-9);
        assert!((b3.millis() - 40.0).abs() < 1e-9);
        assert!((b9.millis() - 50.0).abs() < 1e-9, "cap at max_backoff");
    }

    #[test]
    fn backoff_jitter_is_deterministic_and_bounded() {
        let policy = RetryPolicy::default();
        for frame in 0..50u64 {
            for retry in 1..4u32 {
                let a = policy.backoff(frame, retry);
                let b = policy.backoff(frame, retry);
                assert_eq!(a, b, "jitter must be a pure function of (frame, retry)");
                let nominal = policy
                    .base_backoff
                    .secs()
                    .mul_add(f64::from(1 << (retry - 1)), 0.0)
                    .min(policy.max_backoff.secs());
                assert!(a.secs() >= nominal * (1.0 - policy.jitter) - 1e-15);
                assert!(a.secs() <= nominal * (1.0 + policy.jitter) + 1e-15);
            }
        }
    }

    #[test]
    fn report_renders_all_counters() {
        let (p, link) = toy();
        let report = Runtime::new(&p, &link, 1, RetryPolicy::default()).run(5, &LoseFirst(1));
        let s = report.render();
        for needle in ["frames attempted", "link retries", "effective FPS"] {
            assert!(s.contains(needle), "missing {needle} in:\n{s}");
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn cut_out_of_range_rejected() {
        let (p, link) = toy();
        let _ = Runtime::new(&p, &link, 5, RetryPolicy::default());
    }

    #[test]
    #[should_panic(expected = "at least one attempt")]
    fn zero_attempts_rejected() {
        let (p, link) = toy();
        let policy = RetryPolicy {
            max_attempts: 0,
            ..RetryPolicy::default()
        };
        let _ = Runtime::new(&p, &link, 1, policy);
    }
}
