//! Strongly-typed physical quantities used throughout the cost framework.
//!
//! The paper reasons about camera systems in terms of a small set of
//! physical quantities: data sizes, data rates, frame rates, times,
//! energies and powers. Mixing these up (e.g. treating a per-frame energy
//! as a power) is the classic failure mode of back-of-the-envelope
//! accelerator analysis, so each quantity gets a newtype with only the
//! physically meaningful arithmetic defined.
//!
//! All quantities are backed by `f64` in SI base units (bytes, seconds,
//! joules, watts, hertz) and are cheap `Copy` values.
//!
//! # Examples
//!
//! ```
//! use incam_core::units::{Bytes, Seconds, Joules};
//!
//! let frame = Bytes::from_mib(8.0);
//! let readout = Seconds::from_millis(10.0);
//! let rate = frame / readout; // BytesPerSec
//! assert!(rate.per_sec() > 800.0e6 * 0.99);
//!
//! let e = Joules::from_micro(120.0);
//! let p = e / Seconds::new(1.0);
//! assert!((p.watts() - 120.0e-6).abs() < 1e-12);
//! ```

use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// Implements the shared boilerplate for an `f64`-backed quantity newtype.
macro_rules! quantity {
    ($(#[$meta:meta])* $name:ident, $unit:literal, $accessor:ident) => {
        $(#[$meta])*
        #[derive(Debug, Default, Clone, Copy, PartialEq, PartialOrd)]
        #[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
        pub struct $name(f64);

        impl $name {
            /// The zero quantity.
            pub const ZERO: $name = $name(0.0);

            /// Creates a new quantity from a raw value in base units.
            #[inline]
            pub const fn new(value: f64) -> Self {
                Self(value)
            }

            /// Returns the raw value in base units.
            #[inline]
            pub const fn $accessor(self) -> f64 {
                self.0
            }

            /// Returns the raw value in base units (alias of the named accessor).
            #[inline]
            pub const fn value(self) -> f64 {
                self.0
            }

            /// Returns `true` if the value is finite (not NaN/inf).
            #[inline]
            pub fn is_finite(self) -> bool {
                self.0.is_finite()
            }

            /// Returns the smaller of two quantities.
            #[inline]
            pub fn min(self, other: Self) -> Self {
                Self(self.0.min(other.0))
            }

            /// Returns the larger of two quantities.
            #[inline]
            pub fn max(self, other: Self) -> Self {
                Self(self.0.max(other.0))
            }

            /// Dimensionless ratio of two like quantities.
            ///
            /// # Examples
            ///
            /// ```
            /// # use incam_core::units::*;
            #[doc = concat!("let a = ", stringify!($name), "::new(4.0);")]
            #[doc = concat!("let b = ", stringify!($name), "::new(2.0);")]
            /// assert_eq!(a.ratio(b), 2.0);
            /// ```
            #[inline]
            pub fn ratio(self, other: Self) -> f64 {
                self.0 / other.0
            }
        }

        impl Add for $name {
            type Output = Self;
            #[inline]
            fn add(self, rhs: Self) -> Self {
                Self(self.0 + rhs.0)
            }
        }

        impl AddAssign for $name {
            #[inline]
            fn add_assign(&mut self, rhs: Self) {
                self.0 += rhs.0;
            }
        }

        impl Sub for $name {
            type Output = Self;
            #[inline]
            fn sub(self, rhs: Self) -> Self {
                Self(self.0 - rhs.0)
            }
        }

        impl SubAssign for $name {
            #[inline]
            fn sub_assign(&mut self, rhs: Self) {
                self.0 -= rhs.0;
            }
        }

        impl Neg for $name {
            type Output = Self;
            #[inline]
            fn neg(self) -> Self {
                Self(-self.0)
            }
        }

        impl Mul<f64> for $name {
            type Output = Self;
            #[inline]
            fn mul(self, rhs: f64) -> Self {
                Self(self.0 * rhs)
            }
        }

        impl Mul<$name> for f64 {
            type Output = $name;
            #[inline]
            fn mul(self, rhs: $name) -> $name {
                $name(self * rhs.0)
            }
        }

        impl Div<f64> for $name {
            type Output = Self;
            #[inline]
            fn div(self, rhs: f64) -> Self {
                Self(self.0 / rhs)
            }
        }

        impl Div<$name> for $name {
            type Output = f64;
            #[inline]
            fn div(self, rhs: $name) -> f64 {
                self.0 / rhs.0
            }
        }

        impl Sum for $name {
            fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
                Self(iter.map(|q| q.0).sum())
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{} {}", self.0, $unit)
            }
        }
    };
}

quantity!(
    /// A quantity of data, in bytes.
    Bytes, "B", bytes
);
quantity!(
    /// A data rate, in bytes per second.
    BytesPerSec, "B/s", per_sec
);
quantity!(
    /// A frame rate / throughput, in frames per second.
    Fps, "FPS", fps
);
quantity!(
    /// A duration, in seconds.
    Seconds, "s", secs
);
quantity!(
    /// An energy, in joules.
    Joules, "J", joules
);
quantity!(
    /// A power, in watts.
    Watts, "W", watts
);
quantity!(
    /// A clock frequency, in hertz.
    Hertz, "Hz", hertz
);

impl Bytes {
    /// Creates a size from kibibytes (1024 bytes).
    pub fn from_kib(kib: f64) -> Self {
        Self(kib * 1024.0)
    }

    /// Creates a size from mebibytes.
    pub fn from_mib(mib: f64) -> Self {
        Self(mib * 1024.0 * 1024.0)
    }

    /// Creates a size from gibibytes.
    pub fn from_gib(gib: f64) -> Self {
        Self(gib * 1024.0 * 1024.0 * 1024.0)
    }

    /// Creates a size from a bit count (8 bits per byte).
    pub fn from_bits(bits: f64) -> Self {
        Self(bits / 8.0)
    }

    /// The size in bits.
    pub fn bits(self) -> f64 {
        self.0 * 8.0
    }

    /// The size in mebibytes.
    pub fn mib(self) -> f64 {
        self.0 / (1024.0 * 1024.0)
    }

    /// The size in gibibytes.
    pub fn gib(self) -> f64 {
        self.0 / (1024.0 * 1024.0 * 1024.0)
    }

    /// Human-readable rendering with a binary-prefix unit.
    ///
    /// # Examples
    ///
    /// ```
    /// use incam_core::units::Bytes;
    /// assert_eq!(Bytes::from_mib(24.0).human(), "24.00 MiB");
    /// ```
    pub fn human(self) -> String {
        let b = self.0;
        if b >= 1024.0 * 1024.0 * 1024.0 {
            format!("{:.2} GiB", self.gib())
        } else if b >= 1024.0 * 1024.0 {
            format!("{:.2} MiB", self.mib())
        } else if b >= 1024.0 {
            format!("{:.2} KiB", b / 1024.0)
        } else {
            format!("{:.0} B", b)
        }
    }
}

impl BytesPerSec {
    /// Creates a rate from bits per second.
    pub fn from_bits_per_sec(bps: f64) -> Self {
        Self(bps / 8.0)
    }

    /// Creates a rate from gigabits per second (decimal giga).
    pub fn from_gbps(gbps: f64) -> Self {
        Self::from_bits_per_sec(gbps * 1e9)
    }

    /// The rate in bits per second.
    pub fn bits_per_sec(self) -> f64 {
        self.0 * 8.0
    }

    /// The rate in gigabits per second.
    pub fn gbps(self) -> f64 {
        self.bits_per_sec() / 1e9
    }
}

impl Fps {
    /// The per-frame period. Returns [`Seconds`] of `inf` for zero FPS.
    pub fn period(self) -> Seconds {
        Seconds(1.0 / self.0)
    }

    /// Creates a rate from a per-frame period.
    pub fn from_period(period: Seconds) -> Self {
        Self(1.0 / period.0)
    }
}

impl Seconds {
    /// Creates a duration from milliseconds.
    pub fn from_millis(ms: f64) -> Self {
        Self(ms * 1e-3)
    }

    /// Creates a duration from microseconds.
    pub fn from_micros(us: f64) -> Self {
        Self(us * 1e-6)
    }

    /// The duration in milliseconds.
    pub fn millis(self) -> f64 {
        self.0 * 1e3
    }

    /// The duration in microseconds.
    pub fn micros(self) -> f64 {
        self.0 * 1e6
    }
}

impl Joules {
    /// Creates an energy from millijoules.
    pub fn from_milli(mj: f64) -> Self {
        Self(mj * 1e-3)
    }

    /// Creates an energy from microjoules.
    pub fn from_micro(uj: f64) -> Self {
        Self(uj * 1e-6)
    }

    /// Creates an energy from nanojoules.
    pub fn from_nano(nj: f64) -> Self {
        Self(nj * 1e-9)
    }

    /// Creates an energy from picojoules.
    pub fn from_pico(pj: f64) -> Self {
        Self(pj * 1e-12)
    }

    /// The energy in millijoules.
    pub fn millis(self) -> f64 {
        self.0 * 1e3
    }

    /// The energy in microjoules.
    pub fn micros(self) -> f64 {
        self.0 * 1e6
    }

    /// The energy in nanojoules.
    pub fn nanos(self) -> f64 {
        self.0 * 1e9
    }

    /// Human-readable rendering with an SI prefix.
    pub fn human(self) -> String {
        let j = self.0.abs();
        if j >= 1.0 {
            format!("{:.3} J", self.0)
        } else if j >= 1e-3 {
            format!("{:.3} mJ", self.0 * 1e3)
        } else if j >= 1e-6 {
            format!("{:.3} uJ", self.0 * 1e6)
        } else if j >= 1e-9 {
            format!("{:.3} nJ", self.0 * 1e9)
        } else {
            format!("{:.3} pJ", self.0 * 1e12)
        }
    }
}

impl Watts {
    /// Creates a power from milliwatts.
    pub fn from_milli(mw: f64) -> Self {
        Self(mw * 1e-3)
    }

    /// Creates a power from microwatts.
    pub fn from_micro(uw: f64) -> Self {
        Self(uw * 1e-6)
    }

    /// The power in milliwatts.
    pub fn milliwatts(self) -> f64 {
        self.0 * 1e3
    }

    /// The power in microwatts.
    pub fn microwatts(self) -> f64 {
        self.0 * 1e6
    }

    /// Human-readable rendering with an SI prefix.
    pub fn human(self) -> String {
        let w = self.0.abs();
        if w >= 1.0 {
            format!("{:.3} W", self.0)
        } else if w >= 1e-3 {
            format!("{:.3} mW", self.0 * 1e3)
        } else if w >= 1e-6 {
            format!("{:.3} uW", self.0 * 1e6)
        } else {
            format!("{:.3} nW", self.0 * 1e9)
        }
    }
}

impl Hertz {
    /// Creates a frequency from megahertz.
    pub fn from_mhz(mhz: f64) -> Self {
        Self(mhz * 1e6)
    }

    /// The frequency in megahertz.
    pub fn mhz(self) -> f64 {
        self.0 / 1e6
    }

    /// The period of one cycle.
    pub fn cycle(self) -> Seconds {
        Seconds(1.0 / self.0)
    }
}

// ---- Cross-quantity arithmetic -------------------------------------------

impl Div<Seconds> for Bytes {
    type Output = BytesPerSec;
    #[inline]
    fn div(self, rhs: Seconds) -> BytesPerSec {
        BytesPerSec(self.0 / rhs.0)
    }
}

impl Div<BytesPerSec> for Bytes {
    type Output = Seconds;
    #[inline]
    fn div(self, rhs: BytesPerSec) -> Seconds {
        Seconds(self.0 / rhs.0)
    }
}

impl Mul<Seconds> for BytesPerSec {
    type Output = Bytes;
    #[inline]
    fn mul(self, rhs: Seconds) -> Bytes {
        Bytes(self.0 * rhs.0)
    }
}

impl Div<Seconds> for Joules {
    type Output = Watts;
    #[inline]
    fn div(self, rhs: Seconds) -> Watts {
        Watts(self.0 / rhs.0)
    }
}

impl Mul<Seconds> for Watts {
    type Output = Joules;
    #[inline]
    fn mul(self, rhs: Seconds) -> Joules {
        Joules(self.0 * rhs.0)
    }
}

impl Mul<Watts> for Seconds {
    type Output = Joules;
    #[inline]
    fn mul(self, rhs: Watts) -> Joules {
        Joules(self.0 * rhs.0)
    }
}

impl Div<Watts> for Joules {
    type Output = Seconds;
    #[inline]
    fn div(self, rhs: Watts) -> Seconds {
        Seconds(self.0 / rhs.0)
    }
}

impl Mul<Seconds> for Fps {
    type Output = f64;
    /// Number of frames elapsing in a duration.
    #[inline]
    fn mul(self, rhs: Seconds) -> f64 {
        self.0 * rhs.0
    }
}

impl Div<Bytes> for BytesPerSec {
    type Output = Fps;
    /// Frames per second achievable when each frame carries `rhs` bytes.
    #[inline]
    fn div(self, rhs: Bytes) -> Fps {
        Fps(self.0 / rhs.0)
    }
}

impl Mul<Bytes> for Fps {
    type Output = BytesPerSec;
    /// Sustained data rate of a frame stream.
    #[inline]
    fn mul(self, rhs: Bytes) -> BytesPerSec {
        BytesPerSec(self.0 * rhs.0)
    }
}

impl Div<Fps> for BytesPerSec {
    type Output = Bytes;
    #[inline]
    fn div(self, rhs: Fps) -> Bytes {
        Bytes(self.0 / rhs.0)
    }
}

impl Mul<Fps> for Joules {
    type Output = Watts;
    /// Average power of an energy cost paid once per frame.
    #[inline]
    fn mul(self, rhs: Fps) -> Watts {
        Watts(self.0 * rhs.0)
    }
}

impl Mul<Joules> for Fps {
    type Output = Watts;
    #[inline]
    fn mul(self, rhs: Joules) -> Watts {
        Watts(self.0 * rhs.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytes_conversions_round_trip() {
        let b = Bytes::from_mib(12.0);
        assert!((b.mib() - 12.0).abs() < 1e-12);
        assert!((b.bytes() - 12.0 * 1024.0 * 1024.0).abs() < 1e-6);
        assert!((Bytes::from_bits(80.0).bytes() - 10.0).abs() < 1e-12);
        assert!((Bytes::from_gib(2.0).gib() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn rate_and_fps_algebra() {
        // 25 GbE link, 1 Gb frames => 25 FPS
        let link = BytesPerSec::from_gbps(25.0);
        let frame = Bytes::from_bits(1e9);
        let fps = link / frame;
        assert!((fps.fps() - 25.0).abs() < 1e-9);
        // inverse: stream rate
        let rate = fps * frame;
        assert!((rate.gbps() - 25.0).abs() < 1e-9);
    }

    #[test]
    fn energy_power_time_algebra() {
        let e = Joules::from_milli(2.0);
        let t = Seconds::from_millis(4.0);
        let p = e / t;
        assert!((p.watts() - 0.5).abs() < 1e-12);
        let back = p * t;
        assert!((back.joules() - e.joules()).abs() < 1e-15);
        // per-frame energy at 30 FPS => average power
        let avg = Joules::from_micro(10.0) * Fps::new(30.0);
        assert!((avg.microwatts() - 300.0).abs() < 1e-9);
    }

    #[test]
    fn ordering_min_max() {
        let a = Fps::new(30.0);
        let b = Fps::new(15.8);
        assert!(b < a);
        assert_eq!(a.min(b), b);
        assert_eq!(a.max(b), a);
    }

    #[test]
    fn sum_over_iterator() {
        let total: Joules = (1..=4).map(|i| Joules::new(i as f64)).sum();
        assert!((total.joules() - 10.0).abs() < 1e-12);
    }

    #[test]
    fn human_formatting() {
        assert_eq!(Bytes::new(512.0).human(), "512 B");
        assert_eq!(Bytes::from_kib(2.0).human(), "2.00 KiB");
        assert_eq!(Watts::from_micro(320.0).human(), "320.000 uW");
        assert_eq!(Joules::from_nano(5.0).human(), "5.000 nJ");
    }

    #[test]
    fn hertz_cycles() {
        let clk = Hertz::from_mhz(30.0);
        assert!((clk.cycle().secs() - 1.0 / 30.0e6).abs() < 1e-18);
        assert!((clk.mhz() - 30.0).abs() < 1e-12);
    }

    #[test]
    fn display_includes_unit() {
        assert_eq!(format!("{}", Fps::new(30.0)), "30 FPS");
        assert_eq!(format!("{}", Seconds::new(1.5)), "1.5 s");
    }
}
