//! Communication-link models for offloading data out of the camera.
//!
//! The paper treats cloud computation as free but the *communication* to
//! reach it as a first-class cost (`Cc` in Fig. 1). For the VR case study
//! the cost is bandwidth (frames/sec the uplink can carry); for the
//! energy-harvesting case study it is the per-bit radio energy. [`Link`]
//! models both.

use crate::units::{Bytes, BytesPerSec, Fps, Joules, Seconds};
use core::fmt;

/// Errors from link rate/time queries with degenerate payloads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkError {
    /// The frame/payload size was NaN or infinite.
    NonFiniteSize,
    /// The frame size was zero or negative (zero frames upload in zero
    /// time but carry no rate; negative sizes are meaningless).
    NonPositiveSize,
}

impl fmt::Display for LinkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinkError::NonFiniteSize => f.write_str("frame size must be finite"),
            LinkError::NonPositiveSize => f.write_str("frame size must be positive"),
        }
    }
}

/// A network or radio uplink with a raw signalling rate, a protocol
/// efficiency, and an optional per-bit transmit energy.
///
/// `efficiency` captures framing/protocol/contention overhead: the
/// effective goodput is `raw × efficiency`. The paper's Fig. 10 numbers
/// imply ~67 % effective efficiency on the loaded 25 GbE link, while the
/// hypothetical 400 Gb link is quoted near line rate; both are expressed
/// here as explicit parameters (see `EXPERIMENTS.md`).
///
/// # Examples
///
/// ```
/// use incam_core::link::Link;
/// use incam_core::units::{Bytes, BytesPerSec};
///
/// let link = Link::new("25GbE", BytesPerSec::from_gbps(25.0), 0.671);
/// let frame = Bytes::from_bits(1.0617e9); // 16 x 4K Bayer frames
/// let fps = link.upload_fps(frame);
/// assert!((fps.fps() - 15.8).abs() < 0.1);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Link {
    name: String,
    raw: BytesPerSec,
    efficiency: f64,
    energy_per_bit: Joules,
}

impl Link {
    /// Creates a link with the given raw rate and protocol efficiency.
    ///
    /// # Panics
    ///
    /// Panics if `efficiency` is not in `(0, 1]` (NaN included) or `raw`
    /// is not positive and finite.
    pub fn new(name: impl Into<String>, raw: BytesPerSec, efficiency: f64) -> Self {
        assert!(
            efficiency > 0.0 && efficiency <= 1.0,
            "link efficiency must be in (0, 1], got {efficiency}"
        );
        assert!(
            raw.per_sec() > 0.0 && raw.per_sec().is_finite(),
            "link rate must be positive and finite"
        );
        Self {
            name: name.into(),
            raw,
            efficiency,
            energy_per_bit: Joules::ZERO,
        }
    }

    /// Sets the transmit energy per bit (used by energy-constrained
    /// platforms such as WISPCam's backscatter radio).
    pub fn with_energy_per_bit(mut self, energy: Joules) -> Self {
        self.energy_per_bit = energy;
        self
    }

    /// The paper's evaluation uplink: 25 Gigabit Ethernet. Efficiency is
    /// calibrated so a raw 16-camera 4K Bayer stream uploads at the
    /// paper's 15.8 FPS.
    pub fn ethernet_25g() -> Self {
        Self::new("25GbE", BytesPerSec::from_gbps(25.0), 0.671)
    }

    /// The paper's hypothetical ultra-high-throughput uplink: 400 Gb
    /// Ethernet at near line rate (the paper quotes 395 FPS for the raw
    /// 16-camera stream).
    pub fn ethernet_400g() -> Self {
        Self::new("400GbE", BytesPerSec::from_gbps(400.0), 0.99)
    }

    /// The link's display name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Raw signalling rate.
    pub fn raw_rate(&self) -> BytesPerSec {
        self.raw
    }

    /// Protocol efficiency in `(0, 1]`.
    pub fn efficiency(&self) -> f64 {
        self.efficiency
    }

    /// Effective goodput (`raw × efficiency`).
    pub fn effective_rate(&self) -> BytesPerSec {
        self.raw * self.efficiency
    }

    /// A copy of this link degraded to `goodput` of its nominal
    /// efficiency — congestion or a lossy channel reducing useful
    /// throughput without changing the raw signalling rate.
    ///
    /// # Panics
    ///
    /// Panics if `goodput` is not in `(0, 1]`.
    pub fn degraded(&self, goodput: f64) -> Self {
        assert!(
            goodput > 0.0 && goodput <= 1.0,
            "goodput factor must be in (0, 1], got {goodput}"
        );
        Self {
            name: self.name.clone(),
            raw: self.raw,
            efficiency: self.efficiency * goodput,
            energy_per_bit: self.energy_per_bit,
        }
    }

    /// Frame rate at which frames of `frame_size` can be uploaded, or an
    /// error for zero/negative/non-finite sizes (the naive division would
    /// return `inf`/`NaN` FPS that poisons downstream `min` comparisons).
    pub fn try_upload_fps(&self, frame_size: Bytes) -> Result<Fps, LinkError> {
        if !frame_size.bytes().is_finite() {
            return Err(LinkError::NonFiniteSize);
        }
        if frame_size.bytes() <= 0.0 {
            return Err(LinkError::NonPositiveSize);
        }
        Ok(self.effective_rate() / frame_size)
    }

    /// Frame rate at which frames of `frame_size` can be uploaded.
    ///
    /// Saturates to [`Fps::ZERO`] for degenerate sizes (zero, negative or
    /// non-finite) instead of producing `inf`/`NaN`; use
    /// [`Link::try_upload_fps`] to distinguish the error cases.
    pub fn upload_fps(&self, frame_size: Bytes) -> Fps {
        self.try_upload_fps(frame_size).unwrap_or(Fps::ZERO)
    }

    /// Time to upload a single payload, or an error for negative or
    /// non-finite payloads. A zero payload legitimately takes zero time.
    pub fn try_upload_time(&self, payload: Bytes) -> Result<Seconds, LinkError> {
        if !payload.bytes().is_finite() {
            return Err(LinkError::NonFiniteSize);
        }
        if payload.bytes() < 0.0 {
            return Err(LinkError::NonPositiveSize);
        }
        Ok(payload / self.effective_rate())
    }

    /// Time to upload a single payload.
    ///
    /// Saturates to [`Seconds::ZERO`] for negative or non-finite payloads
    /// instead of producing a negative/`NaN` duration; use
    /// [`Link::try_upload_time`] to distinguish the error cases.
    pub fn upload_time(&self, payload: Bytes) -> Seconds {
        self.try_upload_time(payload).unwrap_or(Seconds::ZERO)
    }

    /// Energy spent by the camera to transmit a payload.
    pub fn upload_energy(&self, payload: Bytes) -> Joules {
        self.energy_per_bit * payload.bits()
    }

    /// Per-bit transmit energy.
    pub fn energy_per_bit(&self) -> Joules {
        self.energy_per_bit
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn effective_rate_scales_with_efficiency() {
        let link = Link::new("test", BytesPerSec::from_gbps(10.0), 0.5);
        assert!((link.effective_rate().gbps() - 5.0).abs() < 1e-9);
    }

    #[test]
    fn paper_25gbe_calibration() {
        // 16 cameras x 3840x2160 x 8-bit Bayer = 1.0617 Gb per rig frame.
        let frame = Bytes::from_bits(16.0 * 3840.0 * 2160.0 * 8.0);
        let fps = Link::ethernet_25g().upload_fps(frame);
        assert!((fps.fps() - 15.8).abs() < 0.15, "got {}", fps.fps());
    }

    #[test]
    fn paper_400gbe_sensitivity() {
        let frame = Bytes::from_bits(16.0 * 3840.0 * 2160.0 * 8.0);
        let fps = Link::ethernet_400g().upload_fps(frame);
        // paper quotes ~395 FPS for the hypothetical 400Gb link
        assert!(fps.fps() > 350.0 && fps.fps() < 420.0, "got {}", fps.fps());
    }

    #[test]
    fn upload_energy_uses_per_bit_cost() {
        let link = Link::new("radio", BytesPerSec::from_bits_per_sec(1e6), 1.0)
            .with_energy_per_bit(Joules::from_pico(500.0));
        let e = link.upload_energy(Bytes::new(1000.0)); // 8000 bits
        assert!((e.nanos() - 8000.0 * 0.5).abs() < 1e-9);
    }

    #[test]
    fn upload_time_inverse_of_fps() {
        let link = Link::ethernet_25g();
        let frame = Bytes::from_mib(10.0);
        let t = link.upload_time(frame);
        let fps = link.upload_fps(frame);
        assert!((t.secs() * fps.fps() - 1.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "efficiency")]
    fn rejects_bad_efficiency() {
        let _ = Link::new("bad", BytesPerSec::from_gbps(1.0), 1.5);
    }

    #[test]
    #[should_panic(expected = "efficiency")]
    fn rejects_nan_efficiency() {
        let _ = Link::new("bad", BytesPerSec::from_gbps(1.0), f64::NAN);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn rejects_infinite_rate() {
        let _ = Link::new("bad", BytesPerSec::new(f64::INFINITY), 0.9);
    }

    #[test]
    fn upload_fps_saturates_on_degenerate_sizes() {
        let link = Link::ethernet_25g();
        assert_eq!(link.upload_fps(Bytes::new(0.0)), Fps::ZERO);
        assert_eq!(link.upload_fps(Bytes::new(-5.0)), Fps::ZERO);
        assert_eq!(link.upload_fps(Bytes::new(f64::NAN)), Fps::ZERO);
        assert_eq!(link.upload_fps(Bytes::new(f64::INFINITY)), Fps::ZERO);
        assert_eq!(
            link.try_upload_fps(Bytes::new(0.0)),
            Err(LinkError::NonPositiveSize)
        );
        assert_eq!(
            link.try_upload_fps(Bytes::new(f64::NAN)),
            Err(LinkError::NonFiniteSize)
        );
        assert!(link.try_upload_fps(Bytes::new(1.0)).unwrap().fps() > 0.0);
    }

    #[test]
    fn upload_time_saturates_on_degenerate_payloads() {
        let link = Link::ethernet_25g();
        // zero payload is fine: zero time
        assert_eq!(link.upload_time(Bytes::new(0.0)), Seconds::ZERO);
        assert_eq!(link.try_upload_time(Bytes::new(0.0)), Ok(Seconds::ZERO));
        assert_eq!(link.upload_time(Bytes::new(-1.0)), Seconds::ZERO);
        assert_eq!(
            link.try_upload_time(Bytes::new(-1.0)),
            Err(LinkError::NonPositiveSize)
        );
        assert_eq!(
            link.try_upload_time(Bytes::new(f64::INFINITY)),
            Err(LinkError::NonFiniteSize)
        );
        let fps = link.upload_fps(Bytes::new(f64::NAN)).fps();
        assert!(fps.is_finite(), "no NaN leaks: got {fps}");
    }

    #[test]
    fn degraded_scales_effective_rate() {
        let link = Link::ethernet_25g();
        let half = link.degraded(0.5);
        assert!(
            (half.effective_rate().per_sec() - link.effective_rate().per_sec() * 0.5).abs() < 1e-6
        );
        assert_eq!(half.raw_rate(), link.raw_rate());
        assert_eq!(half.name(), link.name());
    }

    #[test]
    #[should_panic(expected = "goodput")]
    fn degraded_rejects_zero_factor() {
        let _ = Link::ethernet_25g().degraded(0.0);
    }
}
