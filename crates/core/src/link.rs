//! Communication-link models for offloading data out of the camera.
//!
//! The paper treats cloud computation as free but the *communication* to
//! reach it as a first-class cost (`Cc` in Fig. 1). For the VR case study
//! the cost is bandwidth (frames/sec the uplink can carry); for the
//! energy-harvesting case study it is the per-bit radio energy. [`Link`]
//! models both.

use crate::units::{Bytes, BytesPerSec, Fps, Joules, Seconds};

/// A network or radio uplink with a raw signalling rate, a protocol
/// efficiency, and an optional per-bit transmit energy.
///
/// `efficiency` captures framing/protocol/contention overhead: the
/// effective goodput is `raw × efficiency`. The paper's Fig. 10 numbers
/// imply ~67 % effective efficiency on the loaded 25 GbE link, while the
/// hypothetical 400 Gb link is quoted near line rate; both are expressed
/// here as explicit parameters (see `EXPERIMENTS.md`).
///
/// # Examples
///
/// ```
/// use incam_core::link::Link;
/// use incam_core::units::{Bytes, BytesPerSec};
///
/// let link = Link::new("25GbE", BytesPerSec::from_gbps(25.0), 0.671);
/// let frame = Bytes::from_bits(1.0617e9); // 16 x 4K Bayer frames
/// let fps = link.upload_fps(frame);
/// assert!((fps.fps() - 15.8).abs() < 0.1);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Link {
    name: String,
    raw: BytesPerSec,
    efficiency: f64,
    energy_per_bit: Joules,
}

impl Link {
    /// Creates a link with the given raw rate and protocol efficiency.
    ///
    /// # Panics
    ///
    /// Panics if `efficiency` is not in `(0, 1]` or `raw` is not positive.
    pub fn new(name: impl Into<String>, raw: BytesPerSec, efficiency: f64) -> Self {
        assert!(
            efficiency > 0.0 && efficiency <= 1.0,
            "link efficiency must be in (0, 1], got {efficiency}"
        );
        assert!(raw.per_sec() > 0.0, "link rate must be positive");
        Self {
            name: name.into(),
            raw,
            efficiency,
            energy_per_bit: Joules::ZERO,
        }
    }

    /// Sets the transmit energy per bit (used by energy-constrained
    /// platforms such as WISPCam's backscatter radio).
    pub fn with_energy_per_bit(mut self, energy: Joules) -> Self {
        self.energy_per_bit = energy;
        self
    }

    /// The paper's evaluation uplink: 25 Gigabit Ethernet. Efficiency is
    /// calibrated so a raw 16-camera 4K Bayer stream uploads at the
    /// paper's 15.8 FPS.
    pub fn ethernet_25g() -> Self {
        Self::new("25GbE", BytesPerSec::from_gbps(25.0), 0.671)
    }

    /// The paper's hypothetical ultra-high-throughput uplink: 400 Gb
    /// Ethernet at near line rate (the paper quotes 395 FPS for the raw
    /// 16-camera stream).
    pub fn ethernet_400g() -> Self {
        Self::new("400GbE", BytesPerSec::from_gbps(400.0), 0.99)
    }

    /// The link's display name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Raw signalling rate.
    pub fn raw_rate(&self) -> BytesPerSec {
        self.raw
    }

    /// Protocol efficiency in `(0, 1]`.
    pub fn efficiency(&self) -> f64 {
        self.efficiency
    }

    /// Effective goodput (`raw × efficiency`).
    pub fn effective_rate(&self) -> BytesPerSec {
        self.raw * self.efficiency
    }

    /// Frame rate at which frames of `frame_size` can be uploaded.
    pub fn upload_fps(&self, frame_size: Bytes) -> Fps {
        self.effective_rate() / frame_size
    }

    /// Time to upload a single payload.
    pub fn upload_time(&self, payload: Bytes) -> Seconds {
        payload / self.effective_rate()
    }

    /// Energy spent by the camera to transmit a payload.
    pub fn upload_energy(&self, payload: Bytes) -> Joules {
        self.energy_per_bit * payload.bits()
    }

    /// Per-bit transmit energy.
    pub fn energy_per_bit(&self) -> Joules {
        self.energy_per_bit
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn effective_rate_scales_with_efficiency() {
        let link = Link::new("test", BytesPerSec::from_gbps(10.0), 0.5);
        assert!((link.effective_rate().gbps() - 5.0).abs() < 1e-9);
    }

    #[test]
    fn paper_25gbe_calibration() {
        // 16 cameras x 3840x2160 x 8-bit Bayer = 1.0617 Gb per rig frame.
        let frame = Bytes::from_bits(16.0 * 3840.0 * 2160.0 * 8.0);
        let fps = Link::ethernet_25g().upload_fps(frame);
        assert!((fps.fps() - 15.8).abs() < 0.15, "got {}", fps.fps());
    }

    #[test]
    fn paper_400gbe_sensitivity() {
        let frame = Bytes::from_bits(16.0 * 3840.0 * 2160.0 * 8.0);
        let fps = Link::ethernet_400g().upload_fps(frame);
        // paper quotes ~395 FPS for the hypothetical 400Gb link
        assert!(fps.fps() > 350.0 && fps.fps() < 420.0, "got {}", fps.fps());
    }

    #[test]
    fn upload_energy_uses_per_bit_cost() {
        let link = Link::new("radio", BytesPerSec::from_bits_per_sec(1e6), 1.0)
            .with_energy_per_bit(Joules::from_pico(500.0));
        let e = link.upload_energy(Bytes::new(1000.0)); // 8000 bits
        assert!((e.nanos() - 8000.0 * 0.5).abs() < 1e-9);
    }

    #[test]
    fn upload_time_inverse_of_fps() {
        let link = Link::ethernet_25g();
        let frame = Bytes::from_mib(10.0);
        let t = link.upload_time(frame);
        let fps = link.upload_fps(frame);
        assert!((t.secs() * fps.fps() - 1.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "efficiency")]
    fn rejects_bad_efficiency() {
        let _ = Link::new("bad", BytesPerSec::from_gbps(1.0), 1.5);
    }
}
