//! Minimal fixed-width table rendering for the reproduction harness.
//!
//! The `repro` binary prints each of the paper's tables and figure series
//! as aligned text tables; this module provides the shared formatter so
//! every experiment renders consistently.

use core::fmt::Write as _;

/// A simple column-aligned text table.
///
/// # Examples
///
/// ```
/// use incam_core::report::Table;
///
/// let mut t = Table::new(&["config", "FPS"]);
/// t.row(&["S", "15.8"]);
/// t.row(&["S+B1+B2+B3F+B4", "31.6"]);
/// let s = t.render();
/// assert!(s.contains("config"));
/// assert!(s.lines().count() >= 4); // header, rule, two rows
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        Self {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row. Short rows are padded with empty cells; long rows are
    /// truncated to the header width.
    pub fn row(&mut self, cells: &[&str]) {
        let mut row: Vec<String> = cells
            .iter()
            .take(self.headers.len())
            .map(|s| s.to_string())
            .collect();
        row.resize(self.headers.len(), String::new());
        self.rows.push(row);
    }

    /// Appends a row of already-owned cells.
    pub fn row_owned(&mut self, cells: Vec<String>) {
        let mut row = cells;
        row.truncate(self.headers.len());
        row.resize(self.headers.len(), String::new());
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` if the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table as column-aligned text.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let write_row = |out: &mut String, cells: &[String]| {
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                let _ = write!(out, "{:<width$}", cell, width = widths[i]);
            }
            out.push('\n');
        };
        write_row(&mut out, &self.headers);
        let rule_len = widths.iter().sum::<usize>() + 2 * (widths.len().saturating_sub(1));
        out.push_str(&"-".repeat(rule_len));
        out.push('\n');
        for row in &self.rows {
            write_row(&mut out, row);
        }
        out
    }
}

/// Formats a float with a sensible number of significant digits for table
/// cells (3 significant digits, avoiding scientific notation for the ranges
/// used in the paper's figures).
///
/// # Examples
///
/// ```
/// use incam_core::report::sig3;
/// assert_eq!(sig3(15.789), "15.8");
/// assert_eq!(sig3(0.0912), "0.0912");
/// assert_eq!(sig3(395.4), "395");
/// ```
pub fn sig3(value: f64) -> String {
    if value == 0.0 {
        return "0".to_string();
    }
    let magnitude = value.abs().log10().floor() as i32;
    let decimals = (2 - magnitude).max(0) as usize;
    format!("{value:.decimals$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(&["a", "long-header"]);
        t.row(&["xxxxxx", "1"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 3);
        // both rows have the same width for column 0
        assert!(lines[0].starts_with("a     "));
        assert!(lines[2].starts_with("xxxxxx"));
    }

    #[test]
    fn pads_and_truncates_rows() {
        let mut t = Table::new(&["a", "b"]);
        t.row(&["1"]);
        t.row(&["1", "2", "3"]);
        assert_eq!(t.len(), 2);
        let s = t.render();
        assert!(!s.contains('3'));
    }

    #[test]
    fn sig3_ranges() {
        assert_eq!(sig3(0.0), "0");
        assert_eq!(sig3(3.95), "3.95");
        assert_eq!(sig3(31.62), "31.6");
        assert_eq!(sig3(252.8), "253");
        assert_eq!(sig3(0.09), "0.0900");
    }
}
