//! Processing-block descriptors for in-camera pipelines.
//!
//! Following the paper's Fig. 1, a camera application decomposes into an
//! ordered pipeline of *blocks*. Each block is either **core** (essential to
//! the application, e.g. face authentication) or **optional** (improves
//! efficiency by filtering or pre-processing data, e.g. motion detection).
//! A block consumes the data produced by its predecessor and emits output
//! data whose size is described by a [`DataTransform`].

use crate::units::Bytes;
use core::fmt;

/// Whether a block is essential to the application or an efficiency aid.
///
/// # Examples
///
/// ```
/// use incam_core::block::BlockKind;
/// assert!(BlockKind::Optional.is_optional());
/// assert!(!BlockKind::Core.is_optional());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum BlockKind {
    /// Essential to the application's function.
    Core,
    /// May be omitted without changing results, but can improve efficiency
    /// by filtering or pre-processing data.
    Optional,
}

impl BlockKind {
    /// Returns `true` for [`BlockKind::Optional`].
    pub fn is_optional(self) -> bool {
        matches!(self, BlockKind::Optional)
    }
}

impl fmt::Display for BlockKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BlockKind::Core => f.write_str("core"),
            BlockKind::Optional => f.write_str("optional"),
        }
    }
}

/// The implementation class chosen for a block (Fig. 1's `ASIC`, `FPGA`,
/// `CPU`, `Cloud` annotations).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Backend {
    /// Fixed-function custom silicon integrated with the sensor.
    Asic,
    /// Reconfigurable fabric (e.g. a Zynq SoC's programmable logic).
    Fpga,
    /// Discrete or integrated GPU.
    Gpu,
    /// General-purpose CPU (e.g. the Zynq's ARM Cortex-A9).
    Cpu,
    /// Ultra-low-power microcontroller.
    Mcu,
    /// Executed after offload; its computation is treated as free
    /// (the paper assumes cloud compute costs nothing relative to the
    /// camera, only the communication to reach it is paid).
    Cloud,
}

impl Backend {
    /// One-letter tag used in configuration labels (Fig. 10's `B3(F)`
    /// style). Every variant has a letter so labels never silently drop
    /// a binding; `~` marks cloud execution, matching the offloaded-
    /// remainder suffix used in VR configuration labels.
    ///
    /// # Examples
    ///
    /// ```
    /// use incam_core::block::Backend;
    /// assert_eq!(Backend::Fpga.letter(), 'F');
    /// assert_eq!(Backend::Asic.letter(), 'A');
    /// ```
    pub fn letter(self) -> char {
        match self {
            Backend::Asic => 'A',
            Backend::Fpga => 'F',
            Backend::Gpu => 'G',
            Backend::Cpu => 'C',
            Backend::Mcu => 'M',
            Backend::Cloud => '~',
        }
    }
}

impl fmt::Display for Backend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Backend::Asic => "ASIC",
            Backend::Fpga => "FPGA",
            Backend::Gpu => "GPU",
            Backend::Cpu => "CPU",
            Backend::Mcu => "MCU",
            Backend::Cloud => "cloud",
        };
        f.write_str(s)
    }
}

/// How a block changes the size of the data flowing through it.
///
/// The paper's central observation is that blocks may *expand* data (the VR
/// pipeline's image alignment quadruples it) or *reduce* it (stitching
/// halves the raw sensor volume), and that an early reduction step is the
/// most critical optimization for in-camera systems.
///
/// # Examples
///
/// ```
/// use incam_core::block::DataTransform;
/// use incam_core::units::Bytes;
///
/// let expand = DataTransform::Scale(4.0);
/// assert_eq!(expand.apply(Bytes::new(100.0)), Bytes::new(400.0));
///
/// let classify = DataTransform::Fixed(Bytes::new(1.0));
/// assert_eq!(classify.apply(Bytes::from_mib(8.0)), Bytes::new(1.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum DataTransform {
    /// Output size is `factor ×` input size.
    Scale(f64),
    /// Output size is a constant regardless of input (e.g. a detection
    /// verdict, a cropped face window).
    Fixed(Bytes),
    /// Output size equals input size.
    Identity,
}

impl DataTransform {
    /// Applies the transform to an input size.
    pub fn apply(self, input: Bytes) -> Bytes {
        match self {
            DataTransform::Scale(factor) => input * factor,
            DataTransform::Fixed(bytes) => bytes,
            DataTransform::Identity => input,
        }
    }
}

/// Static description of a pipeline block: its name, role and data
/// transform. Computation cost is supplied separately per backend when the
/// block is placed into a [`crate::pipeline::Pipeline`].
#[derive(Debug, Clone, PartialEq)]
pub struct BlockSpec {
    name: String,
    kind: BlockKind,
    transform: DataTransform,
}

impl BlockSpec {
    /// Creates a new block description.
    ///
    /// # Examples
    ///
    /// ```
    /// use incam_core::block::{BlockSpec, BlockKind, DataTransform};
    ///
    /// let align = BlockSpec::new("image alignment", BlockKind::Core,
    ///                            DataTransform::Scale(4.0));
    /// assert_eq!(align.name(), "image alignment");
    /// ```
    pub fn new(name: impl Into<String>, kind: BlockKind, transform: DataTransform) -> Self {
        Self {
            name: name.into(),
            kind,
            transform,
        }
    }

    /// A core block with the given data transform.
    pub fn core(name: impl Into<String>, transform: DataTransform) -> Self {
        Self::new(name, BlockKind::Core, transform)
    }

    /// An optional block with the given data transform.
    pub fn optional(name: impl Into<String>, transform: DataTransform) -> Self {
        Self::new(name, BlockKind::Optional, transform)
    }

    /// The block's human-readable name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The block's role in the pipeline.
    pub fn kind(&self) -> BlockKind {
        self.kind
    }

    /// The block's data-size transform.
    pub fn transform(&self) -> DataTransform {
        self.transform
    }

    /// Output size for a given input size.
    pub fn output_size(&self, input: Bytes) -> Bytes {
        self.transform.apply(input)
    }
}

impl fmt::Display for BlockSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({})", self.name, self.kind)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transforms_compose_as_expected() {
        let input = Bytes::new(1000.0);
        assert_eq!(DataTransform::Identity.apply(input), input);
        assert_eq!(DataTransform::Scale(0.5).apply(input), Bytes::new(500.0));
        assert_eq!(
            DataTransform::Fixed(Bytes::new(64.0)).apply(input),
            Bytes::new(64.0)
        );
    }

    #[test]
    fn block_spec_accessors() {
        let b = BlockSpec::optional("motion detection", DataTransform::Scale(0.1));
        assert_eq!(b.name(), "motion detection");
        assert!(b.kind().is_optional());
        assert_eq!(b.output_size(Bytes::new(10.0)), Bytes::new(1.0));
        assert_eq!(format!("{b}"), "motion detection (optional)");
    }

    #[test]
    fn backend_display() {
        assert_eq!(Backend::Fpga.to_string(), "FPGA");
        assert_eq!(Backend::Cloud.to_string(), "cloud");
    }

    #[test]
    fn backend_letters_are_distinct() {
        let all = [
            Backend::Asic,
            Backend::Fpga,
            Backend::Gpu,
            Backend::Cpu,
            Backend::Mcu,
            Backend::Cloud,
        ];
        for (i, a) in all.iter().enumerate() {
            for b in &all[i + 1..] {
                assert_ne!(a.letter(), b.letter(), "{a} and {b} share a letter");
            }
        }
        assert_eq!(Backend::Mcu.letter(), 'M');
    }
}
