//! Offload-cut analysis: where should the pipeline hand data to the cloud?
//!
//! For each *cut point* `k` (offload after the first `k` blocks), the
//! system's sustained frame rate is limited by two costs:
//!
//! * **computation** — the pipelined throughput of the in-camera blocks,
//! * **communication** — the rate at which the cut's output data fits
//!   through the uplink.
//!
//! The paper's Fig. 10 plots exactly these two bars (plus their minimum,
//! the *total*) for nine pipeline configurations; only the configuration
//! that computes everything in-camera with FPGA-accelerated depth
//! estimation passes a 30 FPS requirement on both axes.

use crate::link::Link;
use crate::pipeline::Pipeline;
use crate::units::{Bytes, Fps};
use core::fmt;

/// Cost breakdown for one offload cut.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct CutAnalysis {
    /// Number of in-camera blocks executed before offload (0 = raw sensor).
    pub cut: usize,
    /// Human-readable configuration label, e.g. `S+B1+B2`.
    pub label: String,
    /// Pipelined in-camera compute throughput.
    pub compute: Fps,
    /// Uplink throughput for this cut's output data.
    pub communication: Fps,
    /// Data uploaded per frame at this cut.
    pub upload_size: Bytes,
}

impl CutAnalysis {
    /// Sustained end-to-end frame rate: the binding constraint of the two.
    pub fn total(&self) -> Fps {
        self.compute.min(self.communication)
    }

    /// Whether both computation and communication meet a target rate.
    ///
    /// # Examples
    ///
    /// ```
    /// use incam_core::offload::CutAnalysis;
    /// use incam_core::units::{Bytes, Fps};
    ///
    /// let cut = CutAnalysis {
    ///     cut: 4,
    ///     label: "S+B1+B2+B3F+B4".into(),
    ///     compute: Fps::new(31.6),
    ///     communication: Fps::new(31.6),
    ///     upload_size: Bytes::from_mib(12.0),
    /// };
    /// assert!(cut.meets(Fps::new(30.0)));
    /// assert!(!cut.meets(Fps::new(60.0)));
    /// ```
    pub fn meets(&self, target: Fps) -> bool {
        self.total() >= target
    }

    /// Which of the two costs binds at this cut.
    pub fn binding(&self) -> Constraint {
        if self.compute <= self.communication {
            Constraint::Computation
        } else {
            Constraint::Communication
        }
    }
}

/// Which cost limits a configuration's frame rate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Constraint {
    /// In-camera compute is the bottleneck.
    Computation,
    /// The uplink is the bottleneck.
    Communication,
}

impl fmt::Display for Constraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Constraint::Computation => f.write_str("compute-bound"),
            Constraint::Communication => f.write_str("comm-bound"),
        }
    }
}

/// Analyzes every offload cut of `pipeline` over `link`.
///
/// Returns one [`CutAnalysis`] per cut, from raw-sensor offload (`cut = 0`)
/// to full in-camera processing (`cut = pipeline.len()`).
///
/// # Examples
///
/// ```
/// use incam_core::block::{Backend, BlockSpec, DataTransform};
/// use incam_core::link::Link;
/// use incam_core::offload::analyze_cuts;
/// use incam_core::pipeline::{Pipeline, Source, Stage};
/// use incam_core::units::{Bytes, BytesPerSec, Fps};
///
/// let p = Pipeline::new(Source::new("sensor", Bytes::from_mib(8.0), Fps::new(100.0)))
///     .then(Stage::new(BlockSpec::core("reduce", DataTransform::Scale(0.25)),
///                      Backend::Asic, Fps::new(60.0)));
/// let link = Link::new("uplink", BytesPerSec::from_gbps(1.0), 1.0);
/// let cuts = analyze_cuts(&p, &link);
/// assert_eq!(cuts.len(), 2);
/// // reducing data 4x quadruples the communication rate
/// assert!((cuts[1].communication.fps() / cuts[0].communication.fps() - 4.0).abs() < 1e-9);
/// ```
pub fn analyze_cuts(pipeline: &Pipeline, link: &Link) -> Vec<CutAnalysis> {
    (0..=pipeline.len())
        .map(|k| analyze_cut(pipeline, link, k))
        .collect()
}

/// Analyzes a single offload cut `k` of `pipeline` over `link`.
///
/// # Panics
///
/// Panics if `k` exceeds the number of stages.
pub fn analyze_cut(pipeline: &Pipeline, link: &Link, k: usize) -> CutAnalysis {
    assert!(
        k <= pipeline.len(),
        "cut {k} out of range for a {}-stage pipeline",
        pipeline.len()
    );
    let upload = pipeline.data_after(k);
    let label = cut_label(pipeline, k);
    CutAnalysis {
        cut: k,
        label,
        compute: pipeline.compute_fps_through(k),
        communication: link.upload_fps(upload),
        upload_size: upload,
    }
}

/// Returns the cut that maximizes the end-to-end frame rate, together with
/// its analysis. Ties resolve to the earliest cut (least in-camera work):
/// a strictly-greater total is required to displace the incumbent.
pub fn best_cut(pipeline: &Pipeline, link: &Link) -> CutAnalysis {
    analyze_cuts(pipeline, link)
        .into_iter()
        .reduce(|best, candidate| {
            if candidate.total().fps() > best.total().fps() {
                candidate
            } else {
                best
            }
        })
        .expect("a pipeline always has at least the raw-sensor cut") // incam-lint: allow(fallible-unwrap) — every pipeline exposes at least the raw-sensor cut
}

/// Human-readable label for the in-camera prefix of cut `k`, e.g.
/// `S+B1(C)+B2(C)+B3(F)`. Every backend tags its stage with
/// [`crate::block::Backend::letter`].
pub fn cut_label(pipeline: &Pipeline, k: usize) -> String {
    let mut label = String::from("S");
    for stage in pipeline.stages().iter().take(k) {
        label.push('+');
        label.push_str(stage.spec().name());
        label.push('(');
        label.push(stage.backend().letter());
        label.push(')');
    }
    label
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::{Backend, BlockSpec, DataTransform};
    use crate::pipeline::{Source, Stage};
    use crate::units::BytesPerSec;

    fn vr_like() -> (Pipeline, Link) {
        let p = Pipeline::new(Source::new("S", Bytes::new(1000.0), Fps::new(100.0)))
            .then(Stage::new(
                BlockSpec::core("B1", DataTransform::Identity),
                Backend::Cpu,
                Fps::new(174.0),
            ))
            .then(Stage::new(
                BlockSpec::core("B2", DataTransform::Scale(4.0)),
                Backend::Cpu,
                Fps::new(174.0),
            ))
            .then(Stage::new(
                BlockSpec::core("B3", DataTransform::Scale(0.75)),
                Backend::Fpga,
                Fps::new(31.6),
            ))
            .then(Stage::new(
                BlockSpec::core("B4", DataTransform::Scale(1.0 / 6.0)),
                Backend::Fpga,
                Fps::new(140.0),
            ));
        // effective 15_800 B/s so raw sensor uploads at 15.8 FPS
        let link = Link::new("L", BytesPerSec::new(15_800.0), 1.0);
        (p, link)
    }

    #[test]
    fn cut_count_and_labels() {
        let (p, link) = vr_like();
        let cuts = analyze_cuts(&p, &link);
        assert_eq!(cuts.len(), 5);
        assert_eq!(cuts[0].label, "S");
        assert_eq!(cuts[3].label, "S+B1(C)+B2(C)+B3(F)");
    }

    #[test]
    fn raw_offload_is_comm_bound() {
        let (p, link) = vr_like();
        let cuts = analyze_cuts(&p, &link);
        assert!((cuts[0].communication.fps() - 15.8).abs() < 1e-9);
        assert_eq!(cuts[0].binding(), Constraint::Communication);
        assert!((cuts[0].total().fps() - 15.8).abs() < 1e-9);
    }

    #[test]
    fn expansion_block_hurts_communication() {
        let (p, link) = vr_like();
        let cuts = analyze_cuts(&p, &link);
        // B2 expands data 4x, so comm FPS drops 4x
        assert!((cuts[2].communication.fps() - 15.8 / 4.0).abs() < 1e-9);
    }

    #[test]
    fn full_pipeline_wins() {
        let (p, link) = vr_like();
        let best = best_cut(&p, &link);
        assert_eq!(best.cut, 4);
        assert!((best.total().fps() - 31.6).abs() < 1e-6);
        assert!(best.meets(Fps::new(30.0)));
    }

    #[test]
    fn compute_bound_detection() {
        let (p, link) = vr_like();
        let cut3 = analyze_cut(&p, &link, 3);
        // B3 FPGA at 31.6 > comm 5.27 => comm-bound
        assert_eq!(cut3.binding(), Constraint::Communication);
        let cut4 = analyze_cut(&p, &link, 4);
        // data after B4: 1000 * 4 * 0.75 / 6 = 500 B => comm = 31.6 FPS
        assert!((cut4.communication.fps() - 31.6).abs() < 0.01);
    }

    #[test]
    fn best_cut_ties_resolve_to_earliest() {
        // An identity block leaves the upload size unchanged, so cuts 0
        // and 1 have identical communication FPS; with compute far above
        // the link both cuts' totals tie *exactly* and the doc promises
        // the earliest (least in-camera work) wins.
        let p =
            Pipeline::new(Source::new("S", Bytes::new(1000.0), Fps::new(100.0))).then(Stage::new(
                BlockSpec::core("B1", DataTransform::Identity),
                Backend::Cpu,
                Fps::new(174.0),
            ));
        let link = Link::new("L", BytesPerSec::new(10_000.0), 1.0);
        let cuts = analyze_cuts(&p, &link);
        assert_eq!(cuts[0].total(), cuts[1].total(), "cuts must tie exactly");
        assert_eq!(best_cut(&p, &link).cut, 0);
    }

    #[test]
    fn cut_label_tags_every_backend() {
        let p = Pipeline::new(Source::new("S", Bytes::new(1000.0), Fps::new(100.0)))
            .then(Stage::new(
                BlockSpec::optional("MD", DataTransform::Scale(0.1)),
                Backend::Asic,
                Fps::new(1000.0),
            ))
            .then(Stage::new(
                BlockSpec::core("NN", DataTransform::Fixed(Bytes::new(1.0))),
                Backend::Mcu,
                Fps::new(2.0),
            ));
        assert_eq!(cut_label(&p, 2), "S+MD(A)+NN(M)");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn cut_out_of_range_panics() {
        let (p, link) = vr_like();
        let _ = analyze_cut(&p, &link, 9);
    }
}
