//! Property-based tests of the cost framework's algebra.

use incam_core::block::{Backend, BlockSpec, DataTransform};
use incam_core::energy::EnergyBreakdown;
use incam_core::link::Link;
use incam_core::pipeline::{Pipeline, Source, Stage};
use incam_core::units::{Bytes, BytesPerSec, Fps, Joules, Seconds, Watts};
use incam_rng::prelude::*;

proptest! {
    /// Quantity arithmetic is consistent: (a + b) - b == a within float
    /// tolerance, and scalar multiplication distributes.
    #[test]
    fn quantity_ring_axioms(a in 0.0f64..1e12, b in 0.0f64..1e12, k in 0.0f64..1e3) {
        let (qa, qb) = (Joules::new(a), Joules::new(b));
        let round_trip = (qa + qb) - qb;
        prop_assert!((round_trip.joules() - a).abs() <= a.max(b) * 1e-12);
        let dist = (qa + qb) * k;
        let expanded = qa * k + qb * k;
        prop_assert!((dist.joules() - expanded.joules()).abs() <= (a + b) * k * 1e-12 + 1e-12);
    }

    /// Energy/power/time triangle: E = P·t = (E/t)·t.
    #[test]
    fn energy_power_time_consistency(e in 1e-12f64..1.0, t in 1e-6f64..1e3) {
        let energy = Joules::new(e);
        let time = Seconds::new(t);
        let p = energy / time;
        let back = p * time;
        prop_assert!((back.joules() - e).abs() < e * 1e-9);
    }

    /// Frame-rate/data-rate duality: rate = fps × size and
    /// fps = rate / size are inverses.
    #[test]
    fn rate_duality(fps in 0.001f64..1e4, bytes in 1.0f64..1e10) {
        let rate = Fps::new(fps) * Bytes::new(bytes);
        let back = rate / Bytes::new(bytes);
        prop_assert!((back.fps() - fps).abs() < fps * 1e-9);
    }

    /// Data transforms compose: applying Scale(a) then Scale(b) equals
    /// Scale(a*b).
    #[test]
    fn scale_transforms_compose(a in 0.01f64..100.0, b in 0.01f64..100.0, x in 1.0f64..1e9) {
        let two_steps = DataTransform::Scale(b)
            .apply(DataTransform::Scale(a).apply(Bytes::new(x)));
        let one_step = DataTransform::Scale(a * b).apply(Bytes::new(x));
        prop_assert!((two_steps.bytes() - one_step.bytes()).abs() < one_step.bytes() * 1e-9);
    }

    /// A pipeline's energy through k stages is nondecreasing in k.
    #[test]
    fn pipeline_energy_monotone(
        energies in prop::collection::vec(0.0f64..1e-3, 0..6),
        capture in 0.0f64..1e-3,
    ) {
        let mut p = Pipeline::new(
            Source::new("s", Bytes::new(100.0), Fps::new(30.0))
                .with_capture_energy(Joules::new(capture)),
        );
        for e in &energies {
            p.push(
                Stage::new(
                    BlockSpec::core("b", DataTransform::Identity),
                    Backend::Asic,
                    Fps::new(100.0),
                )
                .with_energy_per_frame(Joules::new(*e)),
            );
        }
        for k in 1..=p.len() {
            prop_assert!(
                p.energy_per_frame_through(k).joules()
                    >= p.energy_per_frame_through(k - 1).joules()
            );
        }
    }

    /// A link's upload FPS scales linearly with its raw rate at fixed
    /// efficiency, and never exceeds the zero-overhead bound.
    #[test]
    fn link_efficiency_bounds(gbps in 0.01f64..500.0, eff in 0.01f64..1.0, payload in 1.0f64..1e10) {
        let link = Link::new("l", BytesPerSec::from_gbps(gbps), eff);
        let ideal = Link::new("ideal", BytesPerSec::from_gbps(gbps), 1.0);
        let fps = link.upload_fps(Bytes::new(payload));
        let bound = ideal.upload_fps(Bytes::new(payload));
        prop_assert!(fps.fps() <= bound.fps() * (1.0 + 1e-12));
        prop_assert!((fps.fps() / bound.fps() - eff).abs() < 1e-9);
    }

    /// Energy breakdowns are order-independent and max_rate inverts
    /// average_power.
    #[test]
    fn breakdown_permutation_invariant(items in prop::collection::vec(1e-9f64..1e-3, 1..8)) {
        let mut forward = EnergyBreakdown::new("f");
        let mut reverse = EnergyBreakdown::new("r");
        for &e in &items {
            forward.add("x", Joules::new(e));
        }
        for &e in items.iter().rev() {
            reverse.add("x", Joules::new(e));
        }
        prop_assert!((forward.total().joules() - reverse.total().joules()).abs() < 1e-15);

        let budget = Watts::from_micro(123.0);
        let rate = forward.max_rate(budget);
        let power = forward.average_power(rate);
        prop_assert!((power.watts() - budget.watts()).abs() < budget.watts() * 1e-9);
    }
}

// --- RetryPolicy::backoff ---------------------------------------------

fn policy(base_ms: f64, max_ms: f64, jitter: f64) -> incam_core::runtime::RetryPolicy {
    let p = incam_core::runtime::RetryPolicy {
        max_attempts: 3,
        base_backoff: Seconds::from_millis(base_ms),
        max_backoff: Seconds::from_millis(max_ms),
        jitter,
        timeout: Seconds::from_millis(500.0),
    };
    p.validate();
    p
}

proptest! {
    /// Jittered backoff stays inside the advertised envelope:
    /// `capped × [1 − jitter, 1 + jitter]`, never negative, and retry 0
    /// costs nothing.
    #[test]
    fn backoff_jitter_within_bound(
        base_ms in 0.1f64..100.0,
        cap_mult in 1.0f64..32.0,
        jitter in 0.0f64..0.99,
        frame in 0u64..u64::MAX,
        retry in 0u32..64,
    ) {
        let p = policy(base_ms, base_ms * cap_mult, jitter);
        let d = p.backoff(frame, retry);
        prop_assert!(d.secs() >= 0.0);
        if retry == 0 {
            prop_assert_eq!(d, Seconds::ZERO);
        } else {
            let capped = (p.base_backoff * 2f64.powi((retry - 1).min(32) as i32))
                .min(p.max_backoff);
            prop_assert!(d.secs() >= capped.secs() * (1.0 - jitter) - 1e-15);
            prop_assert!(d.secs() <= capped.secs() * (1.0 + jitter) + 1e-15);
        }
    }

    /// With jitter disabled the schedule is exactly the exponential
    /// ramp: non-decreasing in the retry index and clamped at the cap.
    #[test]
    fn backoff_ramp_monotone_to_cap(
        base_ms in 0.1f64..50.0,
        cap_mult in 1.0f64..64.0,
        frame in 0u64..u64::MAX,
    ) {
        let p = policy(base_ms, base_ms * cap_mult, 0.0);
        let mut last = Seconds::ZERO;
        for retry in 0..48u32 {
            let d = p.backoff(frame, retry);
            prop_assert!(d.secs() + 1e-15 >= last.secs(), "backoff shrank at retry {retry}");
            prop_assert!(d.secs() <= p.max_backoff.secs() * (1.0 + 1e-12));
            last = d;
        }
        // the ramp actually reaches the cap well before 2^48
        prop_assert!((last.secs() - p.max_backoff.secs()).abs() < p.max_backoff.secs() * 1e-9);
    }

    /// Backoff is a pure function of `(frame, retry)`: re-querying in
    /// any order reproduces the same delays, and a different frame key
    /// decorrelates the jitter without leaving the envelope.
    #[test]
    fn backoff_pure_function_of_frame_and_retry(
        base_ms in 0.1f64..100.0,
        jitter in 0.0f64..0.99,
        frames in prop::collection::vec(0u64..u64::MAX, 1..20),
        retry in 1u32..16,
    ) {
        let p = policy(base_ms, base_ms * 8.0, jitter);
        let forward: Vec<Seconds> = frames.iter().map(|&f| p.backoff(f, retry)).collect();
        let reverse: Vec<Seconds> =
            frames.iter().rev().map(|&f| p.backoff(f, retry)).collect();
        for (a, b) in forward.iter().zip(reverse.iter().rev()) {
            prop_assert_eq!(a, b);
        }
        for &f in &frames {
            prop_assert_eq!(p.backoff(f, retry), p.backoff(f, retry));
        }
    }
}
