//! The equivalence oracle for the layered search engine.
//!
//! Every pruning layer in `incam_core::explore` claims to be
//! behavior-preserving: `SearchPlan` (per-block dominance pre-pruning +
//! prefix-bound subtree pruning + memoized frontier) and
//! `IncrementalSearch` (link-only re-ranking of a committed frontier)
//! must return results *bit-identical* to the exhaustive enumeration.
//! These properties generate random spaces — deliberately discretized
//! so ties and dominated bindings are common, the regimes where pruning
//! bugs hide — and compare against the unpruned reference paths.

use incam_core::block::{Backend, BlockSpec, DataTransform};
use incam_core::explore::{
    pareto_frontier, Binding, BlockSpace, ConfigAnalysis, Configuration, IncrementalSearch,
    PipelineSpace, SearchPlan,
};
use incam_core::link::Link;
use incam_core::pipeline::Source;
use incam_core::units::{Bytes, BytesPerSec, Fps, Joules};
use incam_rng::prelude::*;

/// One generated binding: discretized throughput (10–50 FPS in steps of
/// 10), energy (0–4 µJ in steps of 1), and an output override drawn
/// from a small palette. Discretization makes exact ties and dominated
/// siblings common.
type BindingGen = (u32, u32, u32);

/// One generated block: a spec-transform selector plus 1–4 bindings.
type BlockGen = (u32, Vec<BindingGen>);

fn make_binding(index: usize, (t, e, o): BindingGen, degenerate: bool) -> Binding {
    let backend = if index.is_multiple_of(2) {
        Backend::Asic
    } else {
        Backend::Cpu
    };
    let mut binding = Binding::new(backend, Fps::new(10.0 * f64::from(t)))
        .with_energy_per_frame(Joules::new(f64::from(e) * 1e-6));
    binding = match o {
        0..=3 => binding, // no override: the block's own transform
        4 => binding.with_output(DataTransform::Scale(0.5)),
        5 => binding.with_output(DataTransform::Scale(0.25)),
        6 => binding.with_output(DataTransform::Fixed(Bytes::new(64.0))),
        7 if degenerate => binding.with_output(DataTransform::Scale(0.0)),
        _ => binding.with_output(DataTransform::Identity),
    };
    binding
}

fn make_space(blocks: &[BlockGen], degenerate: bool) -> PipelineSpace {
    let mut space = PipelineSpace::new(
        Source::new("s", Bytes::new(1000.0), Fps::new(100.0))
            .with_capture_energy(Joules::new(2e-6)),
    );
    for (b, (spec_sel, bindings)) in blocks.iter().enumerate() {
        let transform = match spec_sel {
            0 | 1 => DataTransform::Identity,
            2 => DataTransform::Scale(0.5),
            3 => DataTransform::Scale(0.25),
            4 => DataTransform::Scale(2.0),
            5 if degenerate => DataTransform::Fixed(Bytes::ZERO),
            _ => DataTransform::Fixed(Bytes::new(128.0)),
        };
        space.push(BlockSpace::new(
            BlockSpec::core(format!("b{b}"), transform),
            bindings
                .iter()
                .enumerate()
                .map(|(i, &g)| make_binding(i, g, degenerate))
                .collect(),
        ));
    }
    space
}

fn make_link(rate: u32) -> Link {
    Link::new("l", BytesPerSec::new(10.0 * f64::from(rate)), 1.0)
}

/// The pre-engine `best_cut_held` loop, kept verbatim as the oracle for
/// the held-cut chain: canonicalize each cut, evaluate from scratch,
/// keep the first strict maximum.
fn legacy_best_cut_held(space: &PipelineSpace, link: &Link, committed: &[usize]) -> ConfigAnalysis {
    let mut best: Option<ConfigAnalysis> = None;
    for cut in 0..=space.len() {
        let mut bindings = committed.to_vec();
        bindings[cut..].fill(0);
        let analysis = space.evaluate(&Configuration::new(bindings, cut), link);
        let better = match &best {
            Some(b) => analysis.total().fps() > b.total().fps(),
            None => true,
        };
        if better {
            best = Some(analysis);
        }
    }
    best.unwrap()
}

fn block_strategy() -> impl Strategy<Value = BlockGen> {
    (
        0u32..6,
        prop::collection::vec((1u32..6, 0u32..5, 0u32..8), 1..5),
    )
}

proptest! {
    /// Pruned winner == exhaustive winner, bit-for-bit, on random
    /// regular spaces under random links — including the memoized
    /// second call.
    #[test]
    fn plan_best_equals_exhaustive(
        blocks in prop::collection::vec(block_strategy(), 1..5),
        rates in prop::collection::vec(1u32..2000, 1..5),
    ) {
        let space = make_space(&blocks, false);
        let plan = SearchPlan::new(&space);
        for &rate in &rates {
            let link = make_link(rate);
            let exhaustive = space.best(&link);
            prop_assert_eq!(&plan.best(&link), &exhaustive);
            // memoized path answers identically
            prop_assert_eq!(&plan.best(&link), &exhaustive);
        }
        // the pruned descent never evaluates more than the exhaustive count
        let stats = plan.stats();
        prop_assert!(stats.evaluated <= stats.exhaustive);
    }

    /// Pruned Pareto frontier == exhaustive Pareto frontier on random
    /// regular spaces (same members, same order).
    #[test]
    fn plan_pareto_equals_exhaustive(
        blocks in prop::collection::vec(block_strategy(), 1..5),
        rate in 1u32..2000,
    ) {
        let space = make_space(&blocks, false);
        let plan = SearchPlan::new(&space);
        let link = make_link(rate);
        prop_assert_eq!(plan.pareto_frontier(&link), space.pareto_frontier(&link));
    }

    /// Degenerate spaces (zero scales / zero fixed outputs, which
    /// saturate uploads to zero FPS) disable the monotone pruning rules
    /// but must still produce the exact exhaustive winner and frontier.
    #[test]
    fn degenerate_spaces_still_exact(
        blocks in prop::collection::vec(block_strategy(), 1..4),
        rate in 1u32..2000,
    ) {
        let space = make_space(&blocks, true);
        let plan = SearchPlan::new(&space);
        let link = make_link(rate);
        prop_assert_eq!(&plan.best(&link), &space.best(&link));
        prop_assert_eq!(plan.pareto_frontier(&link), space.pareto_frontier(&link));
    }

    /// `IncrementalSearch` under a random sequence of link changes
    /// always equals a from-scratch search on the same space: the
    /// committed whole-space frontier reproduces `best`, and the
    /// held-cut chain reproduces the legacy cut loop, byte-equal.
    #[test]
    fn incremental_equals_from_scratch_under_link_changes(
        blocks in prop::collection::vec(block_strategy(), 1..5),
        committed_raw in prop::collection::vec(0u32..64, 4..5),
        rates in prop::collection::vec(1u32..2000, 1..6),
        degenerate in any::<bool>(),
    ) {
        let space = make_space(&blocks, degenerate);
        let whole = IncrementalSearch::over_space(&space);
        let committed: Vec<usize> = space
            .blocks()
            .iter()
            .zip(committed_raw.iter().cycle())
            .map(|(block, &r)| r as usize % block.bindings().len())
            .collect();
        let held = IncrementalSearch::over_held_cuts(&space, &committed);
        for &rate in &rates {
            let link = make_link(rate);
            prop_assert_eq!(whole.best_analysis(&space, &link), space.best(&link));
            let chain_best = held.best_analysis(&space, &link).unwrap();
            prop_assert_eq!(&chain_best, &legacy_best_cut_held(&space, &link, &committed));
            // and the public wrapper is the same thin path
            prop_assert_eq!(&space.best_cut_held(&link, &committed), &chain_best);
        }
    }

    /// The sort-then-sweep Pareto path agrees exactly (members and
    /// order) with a reference quadratic scan on inputs large enough to
    /// cross `PARETO_SWEEP_THRESHOLD`.
    #[test]
    fn pareto_sweep_matches_quadratic_reference(
        rows in prop::collection::vec((0u32..8, 0u32..8, 0u32..8), 70..160),
    ) {
        let analyses: Vec<ConfigAnalysis> = rows
            .iter()
            .enumerate()
            .map(|(i, &(f, e, u))| ConfigAnalysis {
                config: Configuration::new(vec![i], 1),
                label: format!("r{i}"),
                compute: Fps::new(f64::from(f)),
                communication: Fps::new(f64::MAX),
                upload: Bytes::new(f64::from(u)),
                energy: Joules::new(f64::from(e) * 1e-6),
            })
            .collect();
        // reference: the pre-engine quadratic scan, verbatim
        let mut reference: Vec<ConfigAnalysis> = Vec::new();
        for candidate in analyses.clone() {
            if reference.iter().any(|kept| {
                kept.dominates(&candidate)
                    || (kept.total() == candidate.total()
                        && kept.energy == candidate.energy
                        && kept.upload == candidate.upload)
            }) {
                continue;
            }
            reference.retain(|kept| !candidate.dominates(kept));
            reference.push(candidate);
        }
        prop_assert_eq!(pareto_frontier(analyses), reference);
    }
}

#[test]
fn cardinalities_saturate_instead_of_overflowing() {
    let mut space = PipelineSpace::new(Source::new("s", Bytes::new(1000.0), Fps::new(100.0)));
    for b in 0..50 {
        space.push(BlockSpace::new(
            BlockSpec::core(format!("b{b}"), DataTransform::Identity),
            (0..16)
                .map(|_| Binding::new(Backend::Asic, Fps::new(30.0)))
                .collect(),
        ));
    }
    // 16^50 = 2^200 overflows u128; both counts must pin to the max.
    assert_eq!(space.cardinality(), u128::MAX);
    assert_eq!(space.distinct_cardinality(), u128::MAX);
}

#[test]
fn dominated_siblings_are_pre_pruned_and_index_zero_survives() {
    let space = PipelineSpace::new(Source::new("s", Bytes::new(1000.0), Fps::new(100.0)))
        .with_block(BlockSpace::new(
            BlockSpec::core("b", DataTransform::Identity),
            vec![
                // 0: fast and cheap — dominates 1 and 2
                Binding::new(Backend::Asic, Fps::new(100.0))
                    .with_energy_per_frame(Joules::new(1e-6)),
                // 1: slower, hungrier, same output — pruned
                Binding::new(Backend::Cpu, Fps::new(10.0)).with_energy_per_frame(Joules::new(5e-6)),
                // 2: exact duplicate of 0 — weakly dominated, pruned
                Binding::new(Backend::Asic, Fps::new(100.0))
                    .with_energy_per_frame(Joules::new(1e-6)),
                // 3: hungrier but emits less — incomparable, survives
                Binding::new(Backend::Asic, Fps::new(100.0))
                    .with_energy_per_frame(Joules::new(2e-6))
                    .with_output(DataTransform::Scale(0.5)),
            ],
        ));
    let plan = SearchPlan::new(&space);
    assert!(plan.is_regular());
    assert_eq!(plan.live_bindings(0), &[0, 3]);
    assert_eq!(plan.stats().bindings_pruned, 2);
}

#[test]
fn frontier_is_memoized_and_digest_tagged() {
    let space = PipelineSpace::new(Source::new("s", Bytes::new(1000.0), Fps::new(100.0)))
        .with_block(BlockSpace::new(
            BlockSpec::core("b", DataTransform::Scale(0.5)),
            vec![
                Binding::new(Backend::Asic, Fps::new(50.0)),
                Binding::new(Backend::Cpu, Fps::new(20.0)),
            ],
        ));
    let plan = SearchPlan::new(&space);
    let first = plan.frontier() as *const _;
    let second = plan.frontier() as *const _;
    assert_eq!(
        first, second,
        "second call must reuse the memoized frontier"
    );
    assert_eq!(plan.frontier().space_digest(), plan.digest());
    assert_eq!(
        plan.digest(),
        incam_core::explore::space_digest(&space),
        "plan digest is the space digest"
    );
}

#[test]
fn subtree_pruning_fires_on_deep_uniform_spaces() {
    // Four blocks, each with one clearly-best binding plus distinct
    // non-dominated alternatives (faster-but-hungrier), so pre-pruning
    // keeps several bindings per block and the prefix bounds must do
    // real work.
    let mut space = PipelineSpace::new(Source::new("s", Bytes::new(1_000_000.0), Fps::new(30.0)));
    for b in 0..4 {
        space.push(BlockSpace::new(
            BlockSpec::core(format!("b{b}"), DataTransform::Scale(0.5)),
            vec![
                Binding::new(Backend::Asic, Fps::new(30.0))
                    .with_energy_per_frame(Joules::new(1e-6)),
                Binding::new(Backend::Fpga, Fps::new(60.0))
                    .with_energy_per_frame(Joules::new(4e-6)),
                Binding::new(Backend::Gpu, Fps::new(120.0))
                    .with_energy_per_frame(Joules::new(9e-6)),
            ],
        ));
    }
    let plan = SearchPlan::new(&space);
    let stats = plan.stats();
    assert_eq!(stats.exhaustive, 1 + 3 + 9 + 27 + 81);
    assert!(stats.evaluated < stats.exhaustive, "{stats:?}");
    assert!(stats.subtrees_pruned > 0, "{stats:?}");
    assert!(stats.reduction() > 1.0);
    // and the pruned plan still matches the oracle
    let link = make_link(40);
    assert_eq!(plan.best(&link), space.best(&link));
    assert_eq!(plan.pareto_frontier(&link), space.pareto_frontier(&link));
}

#[test]
fn incremental_search_rejects_foreign_spaces() {
    let a = make_space(&[(0, vec![(3, 1, 0)])], false);
    let b = make_space(&[(2, vec![(3, 1, 0)])], false);
    let held = IncrementalSearch::over_held_cuts(&a, &[0]);
    let result = std::panic::catch_unwind(|| held.best_analysis(&b, &make_link(10)));
    assert!(result.is_err(), "digest mismatch must panic");
}
