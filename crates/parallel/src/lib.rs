//! # incam-parallel — deterministic data-parallel kernel substrate
//!
//! A zero-dependency scoped worker pool (`std::thread::scope`) exposing
//! order-preserving data-parallel primitives for the workspace's hot
//! kernels. Every primitive carries the same **determinism contract**:
//!
//! > The result is byte-identical regardless of the number of worker
//! > threads, including the sequential fallback at one thread.
//!
//! The contract holds by construction, not by luck:
//!
//! * [`par_chunks`] / [`par_map_rows`] / [`par_map`] only ever compute
//!   per-element (or per-row) values that are pure functions of the
//!   element's index — threads write disjoint output regions, so no
//!   ordering is observable;
//! * [`par_reduce`] splits the index space into **fixed-size chunks whose
//!   boundaries do not depend on the thread count**, computes one partial
//!   per chunk, and folds the partials in chunk order on the calling
//!   thread — the floating-point combination tree is frozen;
//! * [`par_bands_mut2`] hands threads disjoint bands of two parallel
//!   payload arrays; its callers (e.g. the bilateral-grid splat) keep the
//!   per-slot accumulation order fixed independent of the banding.
//!
//! ## Thread-count selection
//!
//! The pool size comes from, in priority order:
//!
//! 1. [`set_thread_override`] (scoped programmatic override, used by the
//!    bench harness and the determinism tests);
//! 2. the `INCAM_THREADS` environment variable (parsed once per process);
//! 3. [`std::thread::available_parallelism`].
//!
//! `INCAM_THREADS=1` (or a single-core host) selects the sequential
//! fallback: no threads are spawned at all. Nested parallel regions
//! (a parallel kernel calling another parallel kernel from inside a
//! worker) automatically run sequentially instead of oversubscribing.
//!
//! # Examples
//!
//! ```
//! // A 5x4 "image" where each row is filled in parallel.
//! let data = incam_parallel::par_map_rows(5, 4, |row, out| {
//!     for (x, slot) in out.iter_mut().enumerate() {
//!         *slot = (row * 4 + x) as u32;
//!     }
//! });
//! assert_eq!(data[..6], [0, 1, 2, 3, 4, 5]);
//!
//! // An order-preserving reduction: fixed chunk boundaries, fixed fold
//! // order, identical result at any thread count.
//! let total = incam_parallel::par_reduce(1000, 64, |r| r.sum::<usize>(), |a, b| a + b);
//! assert_eq!(total, Some(499_500));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::cell::Cell;
use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Programmatic thread-count override (0 = none).
static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// Set inside pool workers so nested parallel regions degrade to the
    /// sequential fallback instead of oversubscribing the machine.
    static IN_WORKER: Cell<bool> = const { Cell::new(false) };
}

fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

fn env_threads() -> usize {
    static ENV: OnceLock<usize> = OnceLock::new();
    *ENV.get_or_init(|| {
        match std::env::var("INCAM_THREADS") {
            Ok(v) => match v.trim().parse::<usize>() {
                Ok(n) if n >= 1 => n,
                // Malformed or zero: fall back to the hardware default
                // rather than crashing a long pipeline run on a typo.
                _ => default_threads(),
            },
            Err(_) => default_threads(),
        }
    })
}

/// The worker-pool size parallel regions will use: the programmatic
/// override if set, else `INCAM_THREADS`, else
/// [`std::thread::available_parallelism`].
pub fn num_threads() -> usize {
    let o = THREAD_OVERRIDE.load(Ordering::Relaxed);
    if o != 0 {
        o
    } else {
        env_threads()
    }
}

/// Overrides the pool size for the whole process (`None` restores the
/// `INCAM_THREADS`/hardware default).
///
/// Intended for the bench harness (thread-scaling sweeps) and the
/// determinism tests; pipelines should prefer the environment knob.
/// Because every primitive is thread-count-deterministic, flipping the
/// override concurrently with a running kernel cannot change any result.
///
/// # Panics
///
/// Panics on `Some(0)`.
pub fn set_thread_override(threads: Option<usize>) {
    if let Some(n) = threads {
        assert!(n >= 1, "thread override must be at least 1");
    }
    THREAD_OVERRIDE.store(threads.unwrap_or(0), Ordering::Relaxed);
}

/// True while executing inside a pool worker (or inside the calling
/// thread's own band). Nested parallel regions check this to fall back
/// to sequential execution.
pub fn in_parallel_region() -> bool {
    IN_WORKER.with(|f| f.get())
}

/// Threads a region spanning `units` independent work units should use.
fn effective_threads(units: usize) -> usize {
    if units <= 1 || in_parallel_region() {
        1
    } else {
        num_threads().min(units).max(1)
    }
}

/// Near-equal contiguous partition of `0..n` into `parts` ranges (the
/// first `n % parts` ranges hold one extra element). `parts` must be
/// in `1..=n`.
fn bands(n: usize, parts: usize) -> Vec<Range<usize>> {
    debug_assert!(parts >= 1 && parts <= n);
    let base = n / parts;
    let extra = n % parts;
    let mut out = Vec::with_capacity(parts);
    let mut start = 0;
    for i in 0..parts {
        let len = base + usize::from(i < extra);
        out.push(start..start + len);
        start += len;
    }
    out
}

/// Runs `f` with the worker flag set, restoring it afterwards (the
/// calling thread doubles as a worker for its own band).
fn as_worker<R>(f: impl FnOnce() -> R) -> R {
    IN_WORKER.with(|flag| {
        let prev = flag.replace(true);
        let out = f();
        flag.set(prev);
        out
    })
}

/// Applies `f(chunk_index, chunk)` to every `chunk_len`-sized chunk of
/// `data`, distributing contiguous runs of chunks across the pool.
///
/// Chunks are disjoint and each is computed by exactly one worker, so the
/// output is byte-identical at any thread count provided `f` writes a
/// pure function of the chunk index (the normal case: one image row per
/// chunk).
///
/// # Panics
///
/// Panics if `chunk_len` is zero or does not divide `data.len()`.
pub fn par_chunks<T, F>(data: &mut [T], chunk_len: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    assert!(chunk_len > 0, "chunk_len must be nonzero");
    assert_eq!(
        data.len() % chunk_len,
        0,
        "data length {} is not a multiple of chunk_len {}",
        data.len(),
        chunk_len
    );
    let chunks = data.len() / chunk_len;
    let threads = effective_threads(chunks);
    if threads <= 1 {
        for (i, chunk) in data.chunks_mut(chunk_len).enumerate() {
            f(i, chunk);
        }
        return;
    }
    let plan = bands(chunks, threads);
    std::thread::scope(|scope| {
        let f = &f;
        let mut rest = data;
        let mut tail_band: Option<(usize, &mut [T])> = None;
        for (b, band) in plan.iter().enumerate() {
            let len = (band.end - band.start) * chunk_len;
            let (mine, next) = rest.split_at_mut(len);
            rest = next;
            let start = band.start;
            if b + 1 == plan.len() {
                // The calling thread works the last band itself.
                tail_band = Some((start, mine));
            } else {
                scope.spawn(move || {
                    as_worker(|| {
                        for (i, chunk) in mine.chunks_mut(chunk_len).enumerate() {
                            f(start + i, chunk);
                        }
                    })
                });
            }
        }
        if let Some((start, mine)) = tail_band {
            as_worker(|| {
                for (i, chunk) in mine.chunks_mut(chunk_len).enumerate() {
                    f(start + i, chunk);
                }
            });
        }
    });
}

/// Allocates a `rows × row_len` buffer and fills each row in parallel
/// with `f(row_index, row)`. Rows are initialised to `T::default()`
/// before `f` runs.
///
/// The workhorse for image kernels: each output row is a pure function
/// of its index, so the result is byte-identical at any thread count.
pub fn par_map_rows<T, F>(rows: usize, row_len: usize, f: F) -> Vec<T>
where
    T: Send + Copy + Default,
    F: Fn(usize, &mut [T]) + Sync,
{
    let mut out = vec![T::default(); rows * row_len];
    if row_len > 0 {
        par_chunks(&mut out, row_len, f);
    }
    out
}

/// Computes `f(i)` for every `i in 0..n`, returning the results in index
/// order. Workers own contiguous index bands; band results are stitched
/// back in band order, so output order (and content) never depends on
/// the thread count.
pub fn par_map<R, F>(n: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let threads = effective_threads(n);
    if threads <= 1 {
        return (0..n).map(f).collect();
    }
    let plan = bands(n, threads);
    std::thread::scope(|scope| {
        let f = &f;
        let mut handles = Vec::with_capacity(plan.len() - 1);
        for band in &plan[..plan.len() - 1] {
            let band = band.clone();
            handles.push(scope.spawn(move || as_worker(|| band.map(f).collect::<Vec<R>>())));
        }
        let last = plan[plan.len() - 1].clone();
        let tail = as_worker(|| last.map(f).collect::<Vec<R>>());
        let mut out = Vec::with_capacity(n);
        for handle in handles {
            out.extend(handle.join().expect("parallel worker panicked")); // incam-lint: allow(fallible-unwrap) — a worker panic must propagate, not be silently dropped
        }
        out.extend(tail);
        out
    })
}

/// Order-preserving parallel reduction over `0..n`.
///
/// The index space is cut into fixed `chunk`-sized pieces (the last may
/// be short), `map` produces one partial per piece, and the partials are
/// folded **in piece order** on the calling thread. Because the piece
/// boundaries depend only on `(n, chunk)` — never on the thread count —
/// the floating-point combination tree is identical under any pool size,
/// and the result is byte-identical. Returns `None` when `n == 0`.
///
/// # Panics
///
/// Panics if `chunk` is zero.
pub fn par_reduce<R, M, F>(n: usize, chunk: usize, map: M, fold: F) -> Option<R>
where
    R: Send,
    M: Fn(Range<usize>) -> R + Sync,
    F: Fn(R, R) -> R,
{
    assert!(chunk > 0, "chunk must be nonzero");
    if n == 0 {
        return None;
    }
    let pieces = n.div_ceil(chunk);
    let partials = par_map(pieces, |p| {
        let start = p * chunk;
        map(start..(start + chunk).min(n))
    });
    partials.into_iter().reduce(fold)
}

/// Partitions one payload array along a unit axis and runs
/// `f(unit_range, band)` once per band.
///
/// The single-array sibling of [`par_bands_mut2`], for kernels that keep
/// **rolling state across consecutive units** (a ring of filtered rows, a
/// sliding window of blurred slabs) and therefore cannot use the
/// one-callback-per-chunk shape of [`par_chunks`]. `data` must hold
/// `units * per_unit` elements; band boundaries fall on unit boundaries.
///
/// **Determinism contract for callers:** the band partition depends on
/// the thread count, so every output slot's value must be a pure
/// function of the inputs and its own unit index — workers may share
/// rolling state *within* a band only as a cache of recomputable values
/// (e.g. a halo of filtered rows that a band boundary forces the next
/// worker to recompute identically).
///
/// # Panics
///
/// Panics if `units` is zero or does not divide `data.len()`.
pub fn par_bands_mut<T, F>(data: &mut [T], units: usize, f: F)
where
    T: Send,
    F: Fn(Range<usize>, &mut [T]) + Sync,
{
    assert!(units > 0, "units must be nonzero");
    assert_eq!(
        data.len() % units,
        0,
        "data length must be a multiple of units"
    );
    let per_unit = data.len() / units;
    let threads = effective_threads(units);
    if threads <= 1 {
        f(0..units, data);
        return;
    }
    let plan = bands(units, threads);
    std::thread::scope(|scope| {
        let f = &f;
        let mut rest = data;
        let mut tail_band: Option<(Range<usize>, &mut [T])> = None;
        for (i, band) in plan.iter().enumerate() {
            let take = band.end - band.start;
            let (mine, next) = rest.split_at_mut(take * per_unit);
            rest = next;
            let band = band.clone();
            if i + 1 == plan.len() {
                tail_band = Some((band, mine));
            } else {
                scope.spawn(move || as_worker(|| f(band, mine)));
            }
        }
        if let Some((band, mine)) = tail_band {
            as_worker(|| f(band, mine));
        }
    });
}

/// Partitions two parallel payload arrays along a shared unit axis and
/// runs `f(unit_range, a_band, b_band)` once per band.
///
/// `a` must hold `units * a_per_unit` elements and `b` must hold
/// `units * b_per_unit`; band boundaries fall on unit boundaries so both
/// slices shard consistently. Used for kernels that update two parallel
/// accumulator arrays (bilateral-grid values/weights, disparity/
/// confidence maps).
///
/// **Determinism contract for callers:** the band partition *does*
/// depend on the thread count, so `f` must produce band contents that
/// are invariant under re-banding — each output slot's value must be a
/// pure function of the inputs and its own unit index (e.g. a scatter
/// that accumulates every slot's contributions in a fixed global order).
///
/// # Panics
///
/// Panics if the slice lengths disagree with `units`.
pub fn par_bands_mut2<A, B, F>(a: &mut [A], b: &mut [B], units: usize, f: F)
where
    A: Send,
    B: Send,
    F: Fn(Range<usize>, &mut [A], &mut [B]) + Sync,
{
    assert!(units > 0, "units must be nonzero");
    assert_eq!(a.len() % units, 0, "a length must be a multiple of units");
    assert_eq!(b.len() % units, 0, "b length must be a multiple of units");
    let a_per_unit = a.len() / units;
    let b_per_unit = b.len() / units;
    let threads = effective_threads(units);
    if threads <= 1 {
        f(0..units, a, b);
        return;
    }
    let plan = bands(units, threads);
    std::thread::scope(|scope| {
        let f = &f;
        let (mut rest_a, mut rest_b) = (a, b);
        let mut tail_band: Option<(Range<usize>, &mut [A], &mut [B])> = None;
        for (i, band) in plan.iter().enumerate() {
            let take = band.end - band.start;
            let (mine_a, next_a) = rest_a.split_at_mut(take * a_per_unit);
            let (mine_b, next_b) = rest_b.split_at_mut(take * b_per_unit);
            rest_a = next_a;
            rest_b = next_b;
            let band = band.clone();
            if i + 1 == plan.len() {
                tail_band = Some((band, mine_a, mine_b));
            } else {
                scope.spawn(move || as_worker(|| f(band, mine_a, mine_b)));
            }
        }
        if let Some((band, mine_a, mine_b)) = tail_band {
            as_worker(|| f(band, mine_a, mine_b));
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// Serialises tests that flip the global override.
    static OVERRIDE_LOCK: Mutex<()> = Mutex::new(());

    fn with_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
        let _guard = OVERRIDE_LOCK.lock().unwrap();
        set_thread_override(Some(n));
        let out = f();
        set_thread_override(None);
        out
    }

    #[test]
    fn bands_cover_exactly() {
        for n in 1..40 {
            for parts in 1..=n {
                let plan = bands(n, parts);
                assert_eq!(plan.len(), parts);
                assert_eq!(plan[0].start, 0);
                assert_eq!(plan[parts - 1].end, n);
                for w in plan.windows(2) {
                    assert_eq!(w[0].end, w[1].start);
                    // near-equal: sizes differ by at most one
                    let (a, b) = (w[0].end - w[0].start, w[1].end - w[1].start);
                    assert!(a >= b && a - b <= 1);
                }
            }
        }
    }

    #[test]
    fn par_chunks_matches_sequential_at_any_thread_count() {
        let rows = 13; // deliberately not divisible by pool sizes
        let width = 7;
        let fill = |i: usize, chunk: &mut [u64]| {
            for (x, slot) in chunk.iter_mut().enumerate() {
                *slot = (i * 1_000 + x) as u64;
            }
        };
        let reference = {
            let mut v = vec![0u64; rows * width];
            for (i, chunk) in v.chunks_mut(width).enumerate() {
                fill(i, chunk);
            }
            v
        };
        for threads in [1, 2, 3, 8] {
            let got = with_threads(threads, || {
                let mut v = vec![0u64; rows * width];
                par_chunks(&mut v, width, fill);
                v
            });
            assert_eq!(got, reference, "threads={threads}");
        }
    }

    #[test]
    fn par_map_preserves_order() {
        for threads in [1, 2, 5] {
            let got = with_threads(threads, || par_map(11, |i| i * i));
            assert_eq!(got, (0..11).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn par_reduce_is_thread_count_invariant_on_floats() {
        // A sum whose value depends on the combination tree: only a
        // frozen tree gives bit-equal results across pool sizes.
        let term = |i: usize| 1.0f64 / (i as f64 + 1.0);
        let reduce = || par_reduce(10_001, 64, |r| r.map(term).sum::<f64>(), |a, b| a + b).unwrap();
        let reference = with_threads(1, reduce);
        for threads in [2, 3, 8] {
            let got = with_threads(threads, reduce);
            assert_eq!(got.to_bits(), reference.to_bits(), "threads={threads}");
        }
    }

    #[test]
    fn par_reduce_empty_is_none() {
        assert_eq!(par_reduce(0, 8, |r| r.len(), |a, b| a + b), None);
    }

    #[test]
    fn par_bands_mut_rolling_state_is_band_invariant() {
        // A worker that carries rolling state (here: recomputable row
        // sums) must produce the same bytes under any banding.
        let units = 11;
        let width = 4;
        let run = |threads: usize| {
            with_threads(threads, || {
                let mut data = vec![0u64; units * width];
                par_bands_mut(&mut data, units, |range, band| {
                    for (i, row) in band.chunks_mut(width).enumerate() {
                        let u = range.start + i;
                        for (x, slot) in row.iter_mut().enumerate() {
                            *slot = (u * 100 + x) as u64;
                        }
                    }
                });
                data
            })
        };
        let reference = run(1);
        for threads in [2, 3, 8] {
            assert_eq!(run(threads), reference, "threads={threads}");
        }
    }

    #[test]
    #[should_panic(expected = "multiple of units")]
    fn par_bands_mut_ragged_rejected() {
        let mut v = vec![0u8; 10];
        par_bands_mut(&mut v, 3, |_, _| {});
    }

    #[test]
    fn par_bands_mut2_shards_consistently() {
        let units = 9;
        let run = |threads: usize| {
            with_threads(threads, || {
                let mut a = vec![0u32; units * 3];
                let mut b = vec![0u16; units * 2];
                par_bands_mut2(&mut a, &mut b, units, |range, ab, bb| {
                    for (i, u) in range.clone().enumerate() {
                        for (j, slot) in ab[i * 3..(i + 1) * 3].iter_mut().enumerate() {
                            *slot = (u * 10 + j) as u32;
                        }
                        for (j, slot) in bb[i * 2..(i + 1) * 2].iter_mut().enumerate() {
                            *slot = (u * 10 + j) as u16;
                        }
                    }
                });
                (a, b)
            })
        };
        let reference = run(1);
        for threads in [2, 4, 7] {
            assert_eq!(run(threads), reference, "threads={threads}");
        }
    }

    #[test]
    fn nested_regions_fall_back_to_sequential() {
        with_threads(4, || {
            let out = par_map(4, |i| {
                assert!(in_parallel_region());
                // The nested call must not deadlock or explode the thread
                // count; it runs inline.
                par_map(3, move |j| i * 10 + j)
            });
            assert_eq!(out[2], vec![20, 21, 22]);
        });
        assert!(!in_parallel_region());
    }

    #[test]
    fn override_api_round_trips() {
        let _guard = OVERRIDE_LOCK.lock().unwrap();
        set_thread_override(Some(3));
        assert_eq!(num_threads(), 3);
        set_thread_override(None);
        assert!(num_threads() >= 1);
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_override_rejected() {
        set_thread_override(Some(0));
    }

    #[test]
    #[should_panic(expected = "multiple of chunk_len")]
    fn ragged_chunks_rejected() {
        let mut v = vec![0u8; 10];
        par_chunks(&mut v, 3, |_, _| {});
    }
}
