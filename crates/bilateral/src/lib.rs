//! # incam-bilateral — bilateral grids and bilateral-space stereo
//!
//! The algorithmic core of the paper's VR case study (§IV): the bilateral
//! filter (Fig. 6 — [`signal`], [`filter`]), the bilateral grid data
//! structure ([`grid`]), and the bilateral-space stereo algorithm (BSSA)
//! that computes edge-aware depth maps from rectified stereo pairs
//! ([`stereo`]). The Fig. 7 grid-size/quality study lives in [`sweep`].
//!
//! # Examples
//!
//! ```
//! use incam_bilateral::stereo::{bssa_depth, BssaConfig};
//! use incam_imaging::scenes::stereo_scene;
//! use incam_rng::SeedableRng;
//!
//! let mut rng = incam_rng::rngs::StdRng::seed_from_u64(1);
//! let scene = stereo_scene(96, 64, 6, 3, &mut rng);
//! let depth = bssa_depth(&scene.left, &scene.right, &BssaConfig::default());
//! println!("grid {:?}, memory {}", depth.grid_dims, depth.grid_memory.human());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod filter;
pub mod grid;
pub mod signal;
pub mod stereo;
pub mod sweep;

pub use grid::{BilateralGrid, GridParams};
pub use stereo::{bssa_depth, BssaConfig, DepthResult};
pub use sweep::{grid_quality_sweep, GridQualityPoint, GridSweepConfig, Resolution};
