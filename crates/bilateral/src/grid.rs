//! The bilateral grid: a 3-D (x, y, intensity) resampling of an image in
//! which simple local filters are equivalent to costly global edge-aware
//! filters in pixel space — the data structure at the heart of
//! bilateral-space stereo (paper §IV-A).
//!
//! Values are *splatted* into grid vertices with trilinear weights,
//! processed in the grid (blurring, solver iterations), and *sliced* back
//! out at pixel locations. Pixels that are spatial neighbours but differ
//! strongly in intensity land in different grid cells along the third
//! axis, so grid-space smoothing never mixes across an image edge.

use incam_core::units::Bytes;
use incam_imaging::image::GrayImage;

/// Grid resolution parameters.
///
/// `sigma_spatial` is the pixel extent of one grid cell (the paper's
/// "pixels per grid vertex", swept 4–64 in Fig. 7); `sigma_range` is the
/// intensity extent of one cell for images in `[0, 1]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GridParams {
    /// Pixels per grid cell in x and y.
    pub sigma_spatial: f32,
    /// Intensity units per grid cell.
    pub sigma_range: f32,
}

impl GridParams {
    /// Validates and creates parameters.
    ///
    /// # Panics
    ///
    /// Panics if `sigma_spatial < 1` or `sigma_range` is not in `(0, 1]`.
    pub fn new(sigma_spatial: f32, sigma_range: f32) -> Self {
        assert!(sigma_spatial >= 1.0, "sigma_spatial must be >= 1 pixel");
        assert!(
            sigma_range > 0.0 && sigma_range <= 1.0,
            "sigma_range must be in (0, 1]"
        );
        Self {
            sigma_spatial,
            sigma_range,
        }
    }
}

/// A homogeneous bilateral grid: per-vertex accumulated `value·weight` and
/// `weight`.
#[derive(Debug, Clone, PartialEq)]
pub struct BilateralGrid {
    gw: usize,
    gh: usize,
    gz: usize,
    values: Vec<f32>,
    weights: Vec<f32>,
    params: GridParams,
}

impl BilateralGrid {
    /// Creates an empty grid sized for a `width × height` image in
    /// `[0, 1]` under `params`.
    pub fn new(width: usize, height: usize, params: GridParams) -> Self {
        let gw = ((width - 1) as f32 / params.sigma_spatial).floor() as usize + 2;
        let gh = ((height - 1) as f32 / params.sigma_spatial).floor() as usize + 2;
        let gz = (1.0 / params.sigma_range).floor() as usize + 2;
        let n = gw * gh * gz;
        Self {
            gw,
            gh,
            gz,
            values: vec![0.0; n],
            weights: vec![0.0; n],
            params,
        }
    }

    /// Grid dimensions `(x, y, intensity)`.
    pub fn dims(&self) -> (usize, usize, usize) {
        (self.gw, self.gh, self.gz)
    }

    /// Number of grid vertices.
    pub fn vertex_count(&self) -> usize {
        self.gw * self.gh * self.gz
    }

    /// Memory footprint with `bytes_per_vertex` of per-vertex state.
    ///
    /// The plain homogeneous grid stores 8 bytes/vertex (value + weight);
    /// a full BSSA solver additionally stores per-vertex cost-volume
    /// slices, which is the accounting the paper's Fig. 7 x-axis uses.
    pub fn memory(&self, bytes_per_vertex: usize) -> Bytes {
        Bytes::new((self.vertex_count() * bytes_per_vertex) as f64)
    }

    /// The grid parameters.
    pub fn params(&self) -> GridParams {
        self.params
    }

    #[inline]
    fn idx(&self, x: usize, y: usize, z: usize) -> usize {
        (z * self.gh + y) * self.gw + x
    }

    /// Grid-space coordinates of a pixel.
    #[inline]
    fn coords(&self, x: usize, y: usize, intensity: f32) -> (f32, f32, f32) {
        (
            x as f32 / self.params.sigma_spatial,
            y as f32 / self.params.sigma_spatial,
            intensity.clamp(0.0, 1.0) / self.params.sigma_range,
        )
    }

    /// Splats `values` (weighted by `confidence`, or 1) into the grid,
    /// guided by `guide`'s intensities, with trilinear weights.
    ///
    /// Parallel strategy: workers own disjoint bands of intensity slabs
    /// (the grid's contiguous z-major layout) and every worker scans the
    /// full pixel stream in the same row-major order, accumulating only
    /// the taps whose clamped slab falls in its band. Each vertex is
    /// therefore updated by exactly one worker *in the sequential pixel
    /// order*, so the result is byte-identical to the single-threaded
    /// scatter at any thread count (and at any banding).
    ///
    /// Fast path: the spatial tap cells and weights depend only on the
    /// pixel column/row, so they are precomputed per coordinate
    /// (`spatial_taps`); the inner loop only derives the intensity taps
    /// per pixel and tests band membership once per slab rather than per
    /// tap. Tap order (`dz, dy, dx`), the `(wx·wy)·wz` association, and
    /// the zero-weight skips match [`BilateralGrid::splat_reference`]
    /// exactly, so the accumulators are bit-equal to it.
    ///
    /// # Panics
    ///
    /// Panics if dimensions disagree.
    pub fn splat(&mut self, guide: &GrayImage, values: &GrayImage, confidence: Option<&GrayImage>) {
        assert_eq!(guide.dims(), values.dims(), "guide/values must match");
        if let Some(c) = confidence {
            assert_eq!(guide.dims(), c.dims(), "guide/confidence must match");
        }
        let (gw, gh, gz) = (self.gw, self.gh, self.gz);
        let params = self.params;
        let xt = spatial_taps(guide.width(), params.sigma_spatial, gw);
        let yt = spatial_taps(guide.height(), params.sigma_spatial, gh);
        incam_parallel::par_bands_mut2(
            &mut self.values,
            &mut self.weights,
            gz,
            |band, band_values, band_weights| {
                let base = band.start * gh * gw;
                for (y, &(cy0, cy1, wy0, wy1)) in yt.iter().enumerate() {
                    let grow = guide.row(y);
                    let vrow = values.row(y);
                    let crow = confidence.map(|c| c.row(y));
                    for x in 0..guide.width() {
                        let v = vrow[x];
                        let conf = crow.map_or(1.0, |r| r[x]);
                        if conf <= 0.0 {
                            continue;
                        }
                        let fz = grow[x].clamp(0.0, 1.0) / params.sigma_range;
                        let z0 = fz.floor() as usize;
                        let tz = fz - z0 as f32;
                        let (cx0, cx1, wx0, wx1) = xt[x];
                        for dz in 0..2usize {
                            let wz = if dz == 0 { 1.0 - tz } else { tz };
                            let cz = (z0 + dz).min(gz - 1);
                            if !band.contains(&cz) {
                                continue;
                            }
                            for (cy, wy) in [(cy0, wy0), (cy1, wy1)] {
                                let rb = (cz * gh + cy) * gw - base;
                                for (cx, wx) in [(cx0, wx0), (cx1, wx1)] {
                                    let w = wx * wy * wz;
                                    if w <= 0.0 {
                                        continue;
                                    }
                                    let tap_w = w * conf;
                                    if tap_w <= 0.0 {
                                        continue;
                                    }
                                    band_values[rb + cx] += tap_w * v;
                                    band_weights[rb + cx] += tap_w;
                                }
                            }
                        }
                    }
                }
            },
        );
    }

    /// The original per-tap scatter (recomputing coordinates and weights
    /// for every pixel) — correctness oracle for [`BilateralGrid::splat`]
    /// and the "before" side of the kernel microbenchmarks.
    ///
    /// # Panics
    ///
    /// Panics if dimensions disagree.
    pub fn splat_reference(
        &mut self,
        guide: &GrayImage,
        values: &GrayImage,
        confidence: Option<&GrayImage>,
    ) {
        assert_eq!(guide.dims(), values.dims(), "guide/values must match");
        if let Some(c) = confidence {
            assert_eq!(guide.dims(), c.dims(), "guide/confidence must match");
        }
        let (gw, gh, gz) = (self.gw, self.gh, self.gz);
        let slab = gh * gw;
        let params = self.params;
        incam_parallel::par_bands_mut2(
            &mut self.values,
            &mut self.weights,
            gz,
            |band, band_values, band_weights| {
                let base = band.start * slab;
                for y in 0..guide.height() {
                    for x in 0..guide.width() {
                        let v = values.get(x, y);
                        let w = confidence.map_or(1.0, |c| c.get(x, y));
                        if w <= 0.0 {
                            continue;
                        }
                        splat_taps(params, (gw, gh, gz), (x, y, guide.get(x, y)), |i, tap_w| {
                            let tap_w = tap_w * w;
                            if tap_w <= 0.0 {
                                return;
                            }
                            if (base..base + band_values.len()).contains(&i) {
                                band_values[i - base] += tap_w * v;
                                band_weights[i - base] += tap_w;
                            }
                        });
                    }
                }
            },
        );
    }

    /// Applies `iterations` of a separable `[1, 2, 1]/4` blur along each
    /// grid axis, to values and weights alike (homogeneous blur). Borders
    /// replicate, which preserves total mass.
    ///
    /// The three axis passes of one iteration are fused into a single
    /// sweep over the grid (`blur_xyz_into`): workers stream their band
    /// of intensity slabs keeping a rolling ring of the three xy-blurred
    /// slabs the z-pass needs, so each iteration materializes the grid
    /// once per array instead of three times. Every element-wise
    /// `(a + 2b + c)/4` expression is identical to the per-axis
    /// formulation (kept as [`BilateralGrid::blur_reference`]), so the
    /// result is byte-identical to it at any thread count.
    pub fn blur(&mut self, iterations: usize) {
        if iterations == 0 {
            return;
        }
        let dims = (self.gw, self.gh, self.gz);
        let mut scratch = vec![0.0f32; self.values.len()];
        for _ in 0..iterations {
            blur_xyz_into(dims, &self.values, &mut scratch);
            core::mem::swap(&mut self.values, &mut scratch);
            blur_xyz_into(dims, &self.weights, &mut scratch);
            core::mem::swap(&mut self.weights, &mut scratch);
        }
    }

    /// The original unfused blur: three full-grid axis passes per
    /// iteration, ping-ponging one scratch buffer — correctness oracle
    /// for the fused [`BilateralGrid::blur`] and the "before" side of the
    /// kernel microbenchmarks.
    pub fn blur_reference(&mut self, iterations: usize) {
        if iterations == 0 {
            return;
        }
        let dims = (self.gw, self.gh, self.gz);
        let mut scratch = vec![0.0f32; self.values.len()];
        for _ in 0..iterations {
            for axis in 0..3 {
                blur_axis_into(dims, &self.values, &mut scratch, axis);
                core::mem::swap(&mut self.values, &mut scratch);
                blur_axis_into(dims, &self.weights, &mut scratch, axis);
                core::mem::swap(&mut self.weights, &mut scratch);
            }
        }
    }

    /// Reads the filtered value at every pixel of `guide` (trilinear
    /// interpolation of `value/weight`). Vertices with no support yield 0.
    /// Pixels are independent gathers, evaluated row-parallel.
    ///
    /// Fast path: spatial tap cells/weights are precomputed per pixel
    /// coordinate (`spatial_taps`); only the intensity taps are derived
    /// per pixel. Tap order and the `(wx·wy)·wz` association match the
    /// per-pixel formulation (kept as
    /// [`BilateralGrid::slice_reference`]), so outputs are bit-equal.
    pub fn slice(&self, guide: &GrayImage) -> GrayImage {
        let (w, h) = guide.dims();
        let xt = spatial_taps(w, self.params.sigma_spatial, self.gw);
        let yt = spatial_taps(h, self.params.sigma_spatial, self.gh);
        let sigma_range = self.params.sigma_range;
        let data = incam_parallel::par_map_rows(h, w, |y, dst| {
            let (cy0, cy1, wy0, wy1) = yt[y];
            for ((out, &g), &(cx0, cx1, wx0, wx1)) in dst.iter_mut().zip(guide.row(y)).zip(&xt) {
                let fz = g.clamp(0.0, 1.0) / sigma_range;
                let z0 = fz.floor() as usize;
                let tz = fz - z0 as f32;
                let mut num = 0.0f32;
                let mut den = 0.0f32;
                for dz in 0..2usize {
                    let wz = if dz == 0 { 1.0 - tz } else { tz };
                    let zb = (z0 + dz).min(self.gz - 1) * self.gh;
                    for (cy, wy) in [(cy0, wy0), (cy1, wy1)] {
                        let rb = (zb + cy) * self.gw;
                        for (cx, wx) in [(cx0, wx0), (cx1, wx1)] {
                            let tw = wx * wy * wz;
                            num += tw * self.values[rb + cx];
                            den += tw * self.weights[rb + cx];
                        }
                    }
                }
                *out = if den > 1e-8 { num / den } else { 0.0 };
            }
        });
        GrayImage::from_vec(w, h, data)
    }

    /// The original per-pixel gather (recomputing all eight tap
    /// coordinates and weights per pixel) — correctness oracle for
    /// [`BilateralGrid::slice`] and the "before" side of the kernel
    /// microbenchmarks.
    pub fn slice_reference(&self, guide: &GrayImage) -> GrayImage {
        GrayImage::from_fn_par(guide.width(), guide.height(), |x, y| {
            self.slice_one(x, y, guide.get(x, y))
        })
    }

    fn slice_one(&self, x: usize, y: usize, intensity: f32) -> f32 {
        let (fx, fy, fz) = self.coords(x, y, intensity);
        let (x0, y0, z0) = (
            fx.floor() as usize,
            fy.floor() as usize,
            fz.floor() as usize,
        );
        let (tx, ty, tz) = (fx - x0 as f32, fy - y0 as f32, fz - z0 as f32);
        let mut num = 0.0f32;
        let mut den = 0.0f32;
        for dz in 0..2usize {
            let wz = if dz == 0 { 1.0 - tz } else { tz };
            for dy in 0..2usize {
                let wy = if dy == 0 { 1.0 - ty } else { ty };
                for dx in 0..2usize {
                    let wx = if dx == 0 { 1.0 - tx } else { tx };
                    let w = wx * wy * wz;
                    let i = self.idx(
                        (x0 + dx).min(self.gw - 1),
                        (y0 + dy).min(self.gh - 1),
                        (z0 + dz).min(self.gz - 1),
                    );
                    num += w * self.values[i];
                    den += w * self.weights[i];
                }
            }
        }
        if den > 1e-8 {
            num / den
        } else {
            0.0
        }
    }

    /// Total splatted weight (for conservation checks).
    pub fn total_weight(&self) -> f64 {
        self.weights.iter().map(|&w| w as f64).sum()
    }

    /// Raw per-vertex accumulators `(values, weights)` — used by the
    /// bilateral-space solver.
    pub fn raw(&self) -> (&[f32], &[f32]) {
        (&self.values, &self.weights)
    }

    /// Mutable raw accumulators.
    pub fn raw_mut(&mut self) -> (&mut [f32], &mut [f32]) {
        (&mut self.values, &mut self.weights)
    }
}

/// Enumerates the (up to 8) trilinear taps of one pixel, invoking
/// `emit(flat_index, tap_weight)` in the same fixed `dz, dy, dx` order as
/// the original sequential scatter. Zero-weight taps are skipped, exactly
/// as before.
#[inline]
fn splat_taps(
    params: GridParams,
    (gw, gh, gz): (usize, usize, usize),
    (x, y, intensity): (usize, usize, f32),
    mut emit: impl FnMut(usize, f32),
) {
    let fx = x as f32 / params.sigma_spatial;
    let fy = y as f32 / params.sigma_spatial;
    let fz = intensity.clamp(0.0, 1.0) / params.sigma_range;
    let (x0, y0, z0) = (
        fx.floor() as usize,
        fy.floor() as usize,
        fz.floor() as usize,
    );
    let (tx, ty, tz) = (fx - x0 as f32, fy - y0 as f32, fz - z0 as f32);
    for dz in 0..2usize {
        let wz = if dz == 0 { 1.0 - tz } else { tz };
        for dy in 0..2usize {
            let wy = if dy == 0 { 1.0 - ty } else { ty };
            for dx in 0..2usize {
                let wx = if dx == 0 { 1.0 - tx } else { tx };
                let w = wx * wy * wz;
                if w <= 0.0 {
                    continue;
                }
                let cx = (x0 + dx).min(gw - 1);
                let cy = (y0 + dy).min(gh - 1);
                let cz = (z0 + dz).min(gz - 1);
                emit((cz * gh + cy) * gw + cx, w);
            }
        }
    }
}

/// Precomputed trilinear tap data along one spatial axis: for each pixel
/// coordinate, the two (clamped) grid cells it splats into / slices from
/// and their linear weights `(c0, c1, w0, w1)`. Exactly the per-pixel
/// computation of [`splat_taps`]/[`BilateralGrid::coords`], hoisted out of
/// the inner loops — the cells and weights depend only on the coordinate.
fn spatial_taps(n: usize, sigma: f32, gmax: usize) -> Vec<(usize, usize, f32, f32)> {
    (0..n)
        .map(|p| {
            let f = p as f32 / sigma;
            let p0 = f.floor() as usize;
            let t = f - p0 as f32;
            (p0.min(gmax - 1), (p0 + 1).min(gmax - 1), 1.0 - t, t)
        })
        .collect()
}

/// One `[1, 2, 1]/4` replicate-border blur of a contiguous row: clamped
/// first/last element around an interior fast path over 3-wide windows.
/// Element-wise identical to the clamped-index formulation in
/// [`blur_axis_into`].
fn blur_row_121(src: &[f32], dst: &mut [f32]) {
    let n = src.len();
    if n == 1 {
        dst[0] = (src[0] + 2.0 * src[0] + src[0]) / 4.0;
        return;
    }
    dst[0] = (src[0] + 2.0 * src[0] + src[1]) / 4.0;
    for (out, win) in dst[1..n - 1].iter_mut().zip(src.windows(3)) {
        *out = (win[0] + 2.0 * win[1] + win[2]) / 4.0;
    }
    dst[n - 1] = (src[n - 2] + 2.0 * src[n - 1] + src[n - 1]) / 4.0;
}

/// Blurs one `nx × ny` grid slab along x then y (`src` → `out`, using
/// `xtmp` as the x-pass intermediate). Each element-wise expression is
/// identical to the corresponding [`blur_axis_into`] axis pass.
fn blur_slab_xy(src: &[f32], xtmp: &mut [f32], out: &mut [f32], nx: usize, ny: usize) {
    for (trow, srow) in xtmp.chunks_mut(nx).zip(src.chunks(nx)) {
        blur_row_121(srow, trow);
    }
    for (y, orow) in out.chunks_mut(nx).enumerate() {
        let ym = y.saturating_sub(1);
        let yp = (y + 1).min(ny - 1);
        let a = &xtmp[ym * nx..ym * nx + nx];
        let b = &xtmp[y * nx..y * nx + nx];
        let c = &xtmp[yp * nx..yp * nx + nx];
        for (((o, &av), &bv), &cv) in orow.iter_mut().zip(a).zip(b).zip(c) {
            *o = (av + 2.0 * bv + cv) / 4.0;
        }
    }
}

/// One fused x→y→z `[1, 2, 1]/4` blur iteration over the whole grid,
/// `src` → `dst`. Workers own disjoint bands of intensity slabs and keep a
/// rolling ring of the three xy-blurred slabs the z-pass of the current
/// output slab needs (band boundaries recompute at most one halo slab), so
/// the grid is materialized once instead of once per axis.
///
/// Because every element-wise `(a + 2b + c)/4` expression — x pass, y
/// pass, z pass — is identical to the corresponding [`blur_axis_into`]
/// pass, the result is byte-identical to running the three axis passes
/// over the full grid, at any thread count and banding.
fn blur_xyz_into((nx, ny, nz): (usize, usize, usize), src: &[f32], dst: &mut [f32]) {
    debug_assert_eq!(src.len(), nx * ny * nz);
    debug_assert_eq!(dst.len(), src.len());
    let slab = nx * ny;
    incam_parallel::par_bands_mut(dst, nz, |zs, band| {
        // Ring slot `z % 3` holds the xy-blurred slab `z`; the z-pass for
        // output slab z reads slabs [z-1, z+1] clamped — at most three
        // consecutive slabs, so slots never collide.
        let mut ring = vec![0.0f32; 3 * slab];
        let mut xtmp = vec![0.0f32; slab];
        let lo = zs.start.saturating_sub(1);
        let mut top = (zs.start + 1).min(nz - 1);
        for j in lo..=top {
            blur_slab_xy(
                &src[j * slab..(j + 1) * slab],
                &mut xtmp,
                &mut ring[(j % 3) * slab..(j % 3 + 1) * slab],
                nx,
                ny,
            );
        }
        for (i, oslab) in band.chunks_mut(slab).enumerate() {
            let z = zs.start + i;
            let need = (z + 1).min(nz - 1);
            while top < need {
                top += 1;
                blur_slab_xy(
                    &src[top * slab..(top + 1) * slab],
                    &mut xtmp,
                    &mut ring[(top % 3) * slab..(top % 3 + 1) * slab],
                    nx,
                    ny,
                );
            }
            let zm = z.saturating_sub(1) % 3;
            let zc = z % 3;
            let zp = (z + 1).min(nz - 1) % 3;
            let a = &ring[zm * slab..zm * slab + slab];
            let b = &ring[zc * slab..zc * slab + slab];
            let c = &ring[zp * slab..zp * slab + slab];
            for (((o, &av), &bv), &cv) in oslab.iter_mut().zip(a).zip(b).zip(c) {
                *o = (av + 2.0 * bv + cv) / 4.0;
            }
        }
    });
}

/// One `[1, 2, 1]/4` blur pass along `axis` (0=x, 1=y, 2=intensity) with
/// replicated borders, `src` → `dst`. Output rows are independent, so they
/// run on the [`incam_parallel`] pool; each output element is a pure
/// function of `src`, making the pass byte-identical at any thread count.
fn blur_axis_into((nx, ny, nz): (usize, usize, usize), src: &[f32], dst: &mut [f32], axis: usize) {
    debug_assert_eq!(src.len(), nx * ny * nz);
    debug_assert_eq!(dst.len(), src.len());
    let get = |x: isize, y: isize, z: isize| -> f32 {
        let cx = x.clamp(0, nx as isize - 1) as usize;
        let cy = y.clamp(0, ny as isize - 1) as usize;
        let cz = z.clamp(0, nz as isize - 1) as usize;
        src[(cz * ny + cy) * nx + cx]
    };
    let (dx, dy, dz) = match axis {
        0 => (1, 0, 0),
        1 => (0, 1, 0),
        _ => (0, 0, 1),
    };
    incam_parallel::par_chunks(dst, nx, |row, out_row| {
        let z = (row / ny) as isize;
        let y = (row % ny) as isize;
        for (x, out) in out_row.iter_mut().enumerate() {
            let x = x as isize;
            *out = (get(x - dx, y - dy, z - dz) + 2.0 * get(x, y, z) + get(x + dx, y + dy, z + dz))
                / 4.0;
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use incam_imaging::image::Image;

    fn params() -> GridParams {
        GridParams::new(4.0, 0.1)
    }

    #[test]
    fn splat_weight_partitions_unity() {
        let guide = Image::from_fn(16, 12, |x, y| ((x * 7 + y * 3) % 10) as f32 / 10.0);
        let mut grid = BilateralGrid::new(16, 12, params());
        grid.splat(&guide, &guide, None);
        // each pixel contributes exactly weight 1 across its 8 vertices
        assert!((grid.total_weight() - (16.0 * 12.0)).abs() < 1e-3);
    }

    #[test]
    fn blur_preserves_total_mass() {
        let guide = Image::from_fn(16, 16, |x, _| (x % 5) as f32 / 5.0);
        let mut grid = BilateralGrid::new(16, 16, params());
        grid.splat(&guide, &guide, None);
        let before = grid.total_weight();
        grid.blur(3);
        assert!((grid.total_weight() - before).abs() < before * 1e-5);
    }

    #[test]
    fn constant_image_round_trips() {
        let guide = GrayImage::new(24, 24, 0.5);
        let values = GrayImage::new(24, 24, 0.7);
        let mut grid = BilateralGrid::new(24, 24, params());
        grid.splat(&guide, &values, None);
        grid.blur(2);
        let out = grid.slice(&guide);
        for &p in out.pixels() {
            assert!((p - 0.7).abs() < 1e-4, "got {p}");
        }
    }

    #[test]
    fn grid_smoothing_respects_intensity_edges() {
        // two flat regions with very different intensities; values follow
        // the regions. After grid blur, slicing must not leak across.
        let guide = Image::from_fn(32, 8, |x, _| if x < 16 { 0.1 } else { 0.9 });
        let values = Image::from_fn(32, 8, |x, _| if x < 16 { 0.0 } else { 1.0 });
        let mut grid = BilateralGrid::new(32, 8, GridParams::new(4.0, 0.2));
        grid.splat(&guide, &values, None);
        grid.blur(2);
        let out = grid.slice(&guide);
        // sample well inside each region and right at the edge
        assert!(out.get(4, 4) < 0.1, "left leaked: {}", out.get(4, 4));
        assert!(out.get(28, 4) > 0.9, "right leaked: {}", out.get(28, 4));
        assert!(out.get(14, 4) < 0.25, "edge-left {}", out.get(14, 4));
        assert!(out.get(17, 4) > 0.75, "edge-right {}", out.get(17, 4));
    }

    #[test]
    fn confidence_weights_bias_the_result() {
        let guide = GrayImage::new(16, 16, 0.5);
        let values = Image::from_fn(16, 16, |x, _| if x < 8 { 0.0 } else { 1.0 });
        // only trust the right half
        let conf = Image::from_fn(16, 16, |x, _| if x < 8 { 0.0 } else { 1.0 });
        let mut grid = BilateralGrid::new(16, 16, params());
        grid.splat(&guide, &values, Some(&conf));
        grid.blur(4);
        let out = grid.slice(&guide);
        // everything collapses toward the trusted value 1.0
        assert!(out.mean() > 0.9, "mean {}", out.mean());
    }

    #[test]
    fn coarser_grid_has_fewer_vertices() {
        let fine = BilateralGrid::new(128, 128, GridParams::new(4.0, 0.05));
        let coarse = BilateralGrid::new(128, 128, GridParams::new(16.0, 0.2));
        assert!(fine.vertex_count() > 20 * coarse.vertex_count());
        assert!(fine.memory(8) > coarse.memory(8));
    }

    #[test]
    #[should_panic(expected = "sigma_spatial")]
    fn sub_pixel_cells_rejected() {
        let _ = GridParams::new(0.5, 0.1);
    }

    #[test]
    fn fast_paths_match_references_bitwise() {
        let guide = Image::from_fn(33, 17, |x, y| ((x * 13 + y * 29) % 17) as f32 / 17.0);
        let values = Image::from_fn(33, 17, |x, y| ((x * 5 + y * 11) % 23) as f32 / 23.0);
        let conf = Image::from_fn(33, 17, |x, y| ((x + y) % 4) as f32 / 3.0);
        let p = GridParams::new(3.0, 0.15);
        let mut fast = BilateralGrid::new(33, 17, p);
        let mut refr = BilateralGrid::new(33, 17, p);
        fast.splat(&guide, &values, Some(&conf));
        refr.splat_reference(&guide, &values, Some(&conf));
        assert_eq!(fast, refr, "splat fast path diverged");
        fast.blur(3);
        refr.blur_reference(3);
        assert_eq!(fast, refr, "fused blur diverged");
        let sa = fast.slice(&guide);
        let sb = refr.slice_reference(&guide);
        assert_eq!(sa.pixels(), sb.pixels(), "slice fast path diverged");
    }
}
