//! 1-D signals and filters — the paper's Fig. 6 demonstration that the
//! bilateral filter smooths noise while preserving edges, where a moving
//! average smears them.

use incam_rng::Rng;

/// Generates a noisy step signal: `lo` before `edge`, `hi` after, plus
/// uniform noise of amplitude `noise`.
///
/// # Panics
///
/// Panics if `edge >= len` or `len == 0`.
///
/// # Examples
///
/// ```
/// use incam_bilateral::signal::step_signal;
/// use incam_rng::SeedableRng;
///
/// let mut rng = incam_rng::rngs::StdRng::seed_from_u64(1);
/// let s = step_signal(100, 50, 20.0, 80.0, 4.0, &mut rng);
/// assert_eq!(s.len(), 100);
/// assert!(s[10] < 40.0 && s[90] > 60.0);
/// ```
pub fn step_signal(
    len: usize,
    edge: usize,
    lo: f32,
    hi: f32,
    noise: f32,
    rng: &mut impl Rng,
) -> Vec<f32> {
    assert!(len > 0, "signal must be non-empty");
    assert!(edge < len, "edge must lie inside the signal");
    (0..len)
        .map(|i| {
            let base = if i < edge { lo } else { hi };
            base + rng.gen_range(-noise..=noise)
        })
        .collect()
}

/// 1-D moving average of (odd) window `width` — Fig. 6b's smoother.
/// Borders replicate.
///
/// # Panics
///
/// Panics if `width` is even or zero.
pub fn moving_average(signal: &[f32], width: usize) -> Vec<f32> {
    assert!(width % 2 == 1 && width > 0, "width must be odd");
    let r = (width / 2) as isize;
    let n = signal.len() as isize;
    (0..n)
        .map(|i| {
            let mut acc = 0.0f32;
            for d in -r..=r {
                let j = (i + d).clamp(0, n - 1) as usize;
                acc += signal[j];
            }
            acc / width as f32
        })
        .collect()
}

/// 1-D bilateral filter: Gaussian in position (`sigma_s`) *and* in value
/// (`sigma_r`), so samples across a large intensity jump contribute little
/// — Fig. 6d's edge-preserving smoother.
///
/// # Panics
///
/// Panics if either sigma is non-positive.
pub fn bilateral_filter_1d(signal: &[f32], sigma_s: f32, sigma_r: f32) -> Vec<f32> {
    assert!(sigma_s > 0.0 && sigma_r > 0.0, "sigmas must be positive");
    let radius = (3.0 * sigma_s).ceil() as isize;
    let n = signal.len() as isize;
    (0..n)
        .map(|i| {
            let center = signal[i as usize];
            let mut num = 0.0f32;
            let mut den = 0.0f32;
            for d in -radius..=radius {
                let j = i + d;
                if j < 0 || j >= n {
                    continue;
                }
                let v = signal[j as usize];
                let w_s = (-0.5 * (d as f32 / sigma_s).powi(2)).exp();
                let w_r = (-0.5 * ((v - center) / sigma_r).powi(2)).exp();
                let w = w_s * w_r;
                num += w * v;
                den += w;
            }
            num / den
        })
        .collect()
}

/// Edge sharpness at `edge`: the difference between the mean of the few
/// samples just after and just before the edge. A preserved step keeps
/// this near `hi - lo`; a smeared one shrinks it.
pub fn edge_sharpness(signal: &[f32], edge: usize, span: usize) -> f32 {
    assert!(span > 0 && edge >= span && edge + span <= signal.len());
    let before: f32 = signal[edge - span..edge].iter().sum::<f32>() / span as f32;
    let after: f32 = signal[edge..edge + span].iter().sum::<f32>() / span as f32;
    after - before
}

/// Residual noise: standard deviation within a flat region.
pub fn region_noise(signal: &[f32], start: usize, end: usize) -> f32 {
    assert!(start < end && end <= signal.len());
    let region = &signal[start..end];
    let mean = region.iter().sum::<f32>() / region.len() as f32;
    (region.iter().map(|v| (v - mean).powi(2)).sum::<f32>() / region.len() as f32).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use incam_rng::rngs::StdRng;
    use incam_rng::SeedableRng;

    fn noisy_step(rng: &mut StdRng) -> Vec<f32> {
        step_signal(100, 50, 20.0, 80.0, 5.0, rng)
    }

    #[test]
    fn both_filters_reduce_noise() {
        let mut rng = StdRng::seed_from_u64(6);
        let s = noisy_step(&mut rng);
        let raw = region_noise(&s, 5, 40);
        let avg = region_noise(&moving_average(&s, 9), 5, 40);
        let bil = region_noise(&bilateral_filter_1d(&s, 3.0, 20.0), 5, 40);
        assert!(avg < raw * 0.6, "avg {avg} vs raw {raw}");
        assert!(bil < raw * 0.6, "bil {bil} vs raw {raw}");
    }

    #[test]
    fn bilateral_preserves_edge_moving_average_smears_it() {
        let mut rng = StdRng::seed_from_u64(7);
        let s = noisy_step(&mut rng);
        let full = 60.0; // hi - lo
        let sharp_avg = edge_sharpness(&moving_average(&s, 9), 50, 3);
        let sharp_bil = edge_sharpness(&bilateral_filter_1d(&s, 3.0, 20.0), 50, 3);
        // the moving average loses a large part of the step within +/-3
        assert!(sharp_avg < full * 0.75, "avg sharpness {sharp_avg}");
        // the bilateral filter keeps nearly all of it
        assert!(sharp_bil > full * 0.9, "bil sharpness {sharp_bil}");
        assert!(sharp_bil > sharp_avg + 5.0);
    }

    #[test]
    fn bilateral_with_huge_range_sigma_acts_like_gaussian() {
        let mut rng = StdRng::seed_from_u64(8);
        let s = noisy_step(&mut rng);
        // sigma_r >> signal range: range weight ~ 1 everywhere
        let bil = bilateral_filter_1d(&s, 3.0, 1e6);
        let sharp = edge_sharpness(&bil, 50, 3);
        assert!(sharp < 50.0, "should smear like a gaussian, got {sharp}");
    }

    #[test]
    fn constant_signal_is_fixed_point() {
        let s = vec![5.0f32; 32];
        for out in [moving_average(&s, 5), bilateral_filter_1d(&s, 2.0, 10.0)] {
            for v in out {
                assert!((v - 5.0).abs() < 1e-5);
            }
        }
    }

    #[test]
    #[should_panic(expected = "odd")]
    fn even_window_rejected() {
        let _ = moving_average(&[1.0, 2.0], 2);
    }
}
