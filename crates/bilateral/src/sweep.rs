//! The Fig. 7 study: depth-map quality (MS-SSIM) versus bilateral-grid
//! size, across input resolutions.
//!
//! The paper scales the grid from 4 to 64 pixels-per-vertex *in each of
//! the three grid dimensions* on 5/7/8 MP inputs and finds that grid
//! size, not input resolution, controls output quality. Two substitutions
//! (documented in `EXPERIMENTS.md`):
//!
//! * quality is measured against the *reference configuration's* output
//!   (a finer-than-sweep grid), matching the paper's "impact of scaling
//!   the grid" methodology — scaled grids are compared to the unscaled
//!   algorithm, not to unobtainable ground truth;
//! * the measurement runs on a proportionally decimated working image
//!   (default ⅛ scale). A `p`-pixels-per-vertex grid over the full-res
//!   image and a `p/8`-per-vertex grid over the ⅛-scale image have the
//!   same vertex geometry, so the quality comparison is preserved while
//!   the sweep stays laptop-sized. Grid *memory* is reported at the
//!   nominal full resolution.

use crate::grid::GridParams;
use crate::stereo::{bssa_depth, normalize_disparity, BssaConfig, MatchParams, SolverParams};
use incam_core::units::Bytes;
use incam_imaging::image::GrayImage;
use incam_imaging::noise::add_gaussian_noise;
use incam_imaging::quality::{ms_ssim, MsSsimConfig};
use incam_imaging::scenes::stereo_scene_sloped;
use incam_rng::Rng;

/// A nominal sensor resolution the sweep reports against.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Resolution {
    /// Label, e.g. `"8 MP"`.
    pub label: &'static str,
    /// Full-resolution width.
    pub width: usize,
    /// Full-resolution height.
    pub height: usize,
}

impl Resolution {
    /// The paper's three input resolutions.
    pub const PAPER_SET: [Resolution; 3] = [
        Resolution {
            label: "5 MP",
            width: 2560,
            height: 1920,
        },
        Resolution {
            label: "7 MP",
            width: 3072,
            height: 2304,
        },
        Resolution {
            label: "8 MP",
            width: 3840,
            height: 2160,
        },
    ];

    /// Megapixels.
    pub fn megapixels(&self) -> f64 {
        (self.width * self.height) as f64 / 1e6
    }
}

/// One point of the Fig. 7 curve.
#[derive(Debug, Clone, PartialEq)]
pub struct GridQualityPoint {
    /// Input-resolution label.
    pub resolution: &'static str,
    /// Pixels per grid vertex per dimension (at nominal resolution).
    pub pixels_per_vertex: f64,
    /// Grid memory at the nominal resolution, under full-solver
    /// accounting.
    pub grid_memory: Bytes,
    /// Depth-map MS-SSIM against the reference configuration's output.
    pub quality: f64,
}

/// Sweep configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GridSweepConfig {
    /// Decimation factor between nominal and working resolution.
    pub scale_divisor: f64,
    /// Maximum disparity in the synthetic scene (at working resolution).
    pub max_disparity: usize,
    /// Number of foreground layers in the scene.
    pub layers: usize,
    /// Ground-plane slope fraction (sloped surfaces are what coarse grids
    /// flatten).
    pub slope: f32,
    /// Per-view sensor noise.
    pub view_noise: f32,
    /// Pixels-per-vertex of the reference (finest) configuration.
    pub reference_ppv: f64,
    /// Disparity hypotheses counted in the memory accounting (the full
    /// BSSA solver stores a cost slice per hypothesis per vertex).
    pub nominal_disparities: usize,
}

impl Default for GridSweepConfig {
    fn default() -> Self {
        Self {
            scale_divisor: 8.0,
            max_disparity: 8,
            layers: 6,
            slope: 0.6,
            view_noise: 0.02,
            reference_ppv: 2.0,
            nominal_disparities: 128,
        }
    }
}

fn run_bssa(left: &GrayImage, right: &GrayImage, ppv: f64, config: &GridSweepConfig) -> GrayImage {
    let sigma_s = ((ppv / config.scale_divisor) as f32).max(1.0);
    let sigma_r = ((ppv / 256.0) as f32).clamp(0.004, 1.0);
    let cfg = BssaConfig {
        matching: MatchParams {
            max_disparity: config.max_disparity,
            block_radius: 1,
        },
        grid: GridParams::new(sigma_s, sigma_r),
        solver: SolverParams {
            lambda: 2.0,
            iterations: 10,
            blur_per_iteration: 1,
        },
    };
    normalize_disparity(
        &bssa_depth(left, right, &cfg).disparity,
        config.max_disparity,
    )
}

/// Runs the grid-size/quality sweep for one nominal resolution.
///
/// # Panics
///
/// Panics if `pixels_per_vertex` is empty or the configuration produces a
/// working image smaller than 64×64.
pub fn grid_quality_sweep(
    resolution: Resolution,
    pixels_per_vertex: &[f64],
    config: &GridSweepConfig,
    rng: &mut impl Rng,
) -> Vec<GridQualityPoint> {
    assert!(!pixels_per_vertex.is_empty(), "need at least one grid size");
    let working_w = (resolution.width as f64 / config.scale_divisor).round() as usize;
    let working_h = (resolution.height as f64 / config.scale_divisor).round() as usize;
    assert!(
        working_w >= 64 && working_h >= 64,
        "working image {working_w}x{working_h} too small; lower scale_divisor"
    );
    let scene = stereo_scene_sloped(
        working_w,
        working_h,
        config.max_disparity,
        config.layers,
        config.slope,
        rng,
    );
    let left = add_gaussian_noise(&scene.left, config.view_noise, rng);
    let right = add_gaussian_noise(&scene.right, config.view_noise, rng);
    let reference = run_bssa(&left, &right, config.reference_ppv, config);

    pixels_per_vertex
        .iter()
        .map(|&ppv| {
            let out = run_bssa(&left, &right, ppv, config);
            let quality = ms_ssim(&out, &reference, &MsSsimConfig::default());

            // nominal-resolution grid memory (all three axes scale)
            let gw = (resolution.width as f64 / ppv).ceil() + 1.0;
            let gh = (resolution.height as f64 / ppv).ceil() + 1.0;
            let gz = (256.0 / ppv).ceil() + 1.0;
            let per_vertex = 4.0 * (config.nominal_disparities as f64 + 1.0) + 8.0;
            let grid_memory = Bytes::new(gw * gh * gz * per_vertex);

            GridQualityPoint {
                resolution: resolution.label,
                pixels_per_vertex: ppv,
                grid_memory,
                quality,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use incam_rng::rngs::StdRng;
    use incam_rng::SeedableRng;

    fn quick_config() -> GridSweepConfig {
        GridSweepConfig {
            scale_divisor: 16.0,
            ..Default::default()
        }
    }

    #[test]
    fn quality_decreases_as_grid_coarsens() {
        let mut rng = StdRng::seed_from_u64(91);
        let points = grid_quality_sweep(
            Resolution::PAPER_SET[2],
            &[4.0, 16.0, 64.0],
            &quick_config(),
            &mut rng,
        );
        assert_eq!(points.len(), 3);
        assert!(
            points[0].quality > points[1].quality,
            "4 ppv {} vs 16 ppv {}",
            points[0].quality,
            points[1].quality
        );
        assert!(
            points[1].quality > points[2].quality - 0.02,
            "16 ppv {} vs 64 ppv {}",
            points[1].quality,
            points[2].quality
        );
        // the fine end stays near the reference
        assert!(
            points[0].quality > 0.9,
            "fine-grid quality {}",
            points[0].quality
        );
        // memory shrinks as cells grow (all three axes)
        assert!(points[0].grid_memory.bytes() > 50.0 * points[1].grid_memory.bytes());
    }

    #[test]
    fn resolutions_share_the_quality_trend() {
        // the paper's finding: input resolution matters less than grid size
        let cfg = quick_config();
        let ppv = [16.0];
        let mut rng = StdRng::seed_from_u64(92);
        let q5 = grid_quality_sweep(Resolution::PAPER_SET[0], &ppv, &cfg, &mut rng)[0].quality;
        let mut rng = StdRng::seed_from_u64(92);
        let q8 = grid_quality_sweep(Resolution::PAPER_SET[2], &ppv, &cfg, &mut rng)[0].quality;
        assert!((q5 - q8).abs() < 0.25, "5MP {q5} vs 8MP {q8}");
    }

    #[test]
    fn memory_accounting_matches_formula() {
        let mut rng = StdRng::seed_from_u64(93);
        let res = Resolution {
            label: "test",
            width: 2048,
            height: 1024,
        };
        let cfg = GridSweepConfig {
            nominal_disparities: 10,
            ..quick_config()
        };
        let p = &grid_quality_sweep(res, &[128.0], &cfg, &mut rng)[0];
        // gw = 17, gh = 9, gz = 3, per-vertex = 4*11 + 8 = 52
        let expected = 17.0 * 9.0 * 3.0 * 52.0;
        assert!(
            (p.grid_memory.bytes() - expected).abs() < 1e-6,
            "got {}",
            p.grid_memory.bytes()
        );
    }

    #[test]
    fn megapixel_labels() {
        assert!((Resolution::PAPER_SET[2].megapixels() - 8.29).abs() < 0.1);
    }
}
