//! 2-D bilateral filtering: a brute-force reference and the fast
//! grid-based approximation, cross-checked against each other in tests.

use crate::grid::{BilateralGrid, GridParams};
use incam_imaging::image::GrayImage;

/// Brute-force 2-D bilateral filter (Gaussian spatial × Gaussian range).
///
/// Quadratic in the kernel radius — use [`bilateral_via_grid`] for
/// anything beyond small images; this is the correctness oracle.
///
/// # Panics
///
/// Panics if either sigma is non-positive.
pub fn bilateral_filter(img: &GrayImage, sigma_s: f32, sigma_r: f32) -> GrayImage {
    assert!(sigma_s > 0.0 && sigma_r > 0.0, "sigmas must be positive");
    let radius = (2.5 * sigma_s).ceil() as isize;
    GrayImage::from_fn(img.width(), img.height(), |x, y| {
        let center = img.get(x, y);
        let mut num = 0.0f32;
        let mut den = 0.0f32;
        for dy in -radius..=radius {
            for dx in -radius..=radius {
                let v = img.get_clamped(x as isize + dx, y as isize + dy);
                let w_s = (-0.5 * ((dx * dx + dy * dy) as f32) / (sigma_s * sigma_s)).exp();
                let w_r = (-0.5 * ((v - center) / sigma_r).powi(2)).exp();
                let w = w_s * w_r;
                num += w * v;
                den += w;
            }
        }
        num / den
    })
}

/// Grid-accelerated approximate bilateral filter: splat the image into a
/// bilateral grid, blur, slice. Linear in pixels plus grid size — the
/// performance model that makes BSSA's disparity refinement tractable.
pub fn bilateral_via_grid(
    img: &GrayImage,
    params: GridParams,
    blur_iterations: usize,
) -> GrayImage {
    let mut grid = BilateralGrid::new(img.width(), img.height(), params);
    grid.splat(img, img, None);
    grid.blur(blur_iterations);
    grid.slice(img)
}

#[cfg(test)]
mod tests {
    use super::*;
    use incam_imaging::image::Image;
    use incam_imaging::noise::add_gaussian_noise;
    use incam_rng::rngs::StdRng;
    use incam_rng::SeedableRng;

    fn noisy_edge_image(rng: &mut StdRng) -> GrayImage {
        let clean = Image::from_fn(32, 32, |x, _| if x < 16 { 0.2 } else { 0.8 });
        add_gaussian_noise(&clean, 0.05, rng)
    }

    #[test]
    fn brute_force_denoises_and_keeps_edge() {
        let mut rng = StdRng::seed_from_u64(12);
        let img = noisy_edge_image(&mut rng);
        let out = bilateral_filter(&img, 2.0, 0.2);
        // flat-region noise shrinks
        let noise_in = img.crop(2, 2, 10, 28).variance();
        let noise_out = out.crop(2, 2, 10, 28).variance();
        assert!(noise_out < noise_in * 0.5);
        // edge magnitude survives
        let step = out.get(20, 16) - out.get(11, 16);
        assert!(step > 0.45, "step {step}");
    }

    #[test]
    fn grid_filter_approximates_brute_force() {
        let mut rng = StdRng::seed_from_u64(13);
        let img = noisy_edge_image(&mut rng);
        let exact = bilateral_filter(&img, 2.0, 0.15);
        let approx = bilateral_via_grid(&img, GridParams::new(2.0, 0.15), 1);
        let mut err = 0.0f32;
        for (a, b) in exact.pixels().iter().zip(approx.pixels()) {
            err += (a - b).abs();
        }
        let mae = err / exact.len() as f32;
        assert!(mae < 0.05, "mean abs difference {mae}");
    }

    #[test]
    fn grid_filter_much_coarser_still_edge_aware() {
        let clean = Image::from_fn(64, 64, |x, _| if x < 32 { 0.1 } else { 0.9 });
        let out = bilateral_via_grid(&clean, GridParams::new(16.0, 0.25), 2);
        assert!(out.get(8, 32) < 0.2);
        assert!(out.get(56, 32) > 0.8);
    }
}
