//! Block-matching disparity initialization.
//!
//! Global stereo pipelines start from a noisy local estimate: for each
//! pixel, slide a window along the epipolar line and take the disparity
//! minimizing the sum of absolute differences. BSSA then *refines* this
//! rough map in bilateral space. The per-pixel confidence (cost-ratio
//! test) lets the refinement trust textured regions and smooth over
//! ambiguous ones.

use incam_imaging::image::GrayImage;

/// Result of block matching.
#[derive(Debug, Clone)]
pub struct InitialDisparity {
    /// Per-pixel disparity estimate (in pixels, `0..=max_disparity`).
    pub disparity: GrayImage,
    /// Per-pixel confidence in `[0, 1]` (ratio test of the two best
    /// costs).
    pub confidence: GrayImage,
}

/// Block-matching parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MatchParams {
    /// Largest disparity searched.
    pub max_disparity: usize,
    /// Half-width of the SAD window.
    pub block_radius: usize,
}

impl Default for MatchParams {
    fn default() -> Self {
        Self {
            max_disparity: 8,
            block_radius: 3,
        }
    }
}

/// Computes a rough disparity map from a rectified stereo pair.
///
/// Matching convention follows [`incam_imaging::scenes::stereo_scene`]:
/// `right(x) = left(x + d)`, so for each right-image pixel the window is
/// compared against left-image windows shifted by each candidate `d`.
///
/// # Panics
///
/// Panics if image dimensions differ or `max_disparity == 0`.
///
/// # Examples
///
/// ```
/// use incam_bilateral::stereo::{block_match, MatchParams};
/// use incam_imaging::scenes::stereo_scene;
/// use incam_rng::SeedableRng;
///
/// let mut rng = incam_rng::rngs::StdRng::seed_from_u64(3);
/// let scene = stereo_scene(64, 48, 6, 3, &mut rng);
/// let init = block_match(&scene.left, &scene.right, &MatchParams {
///     max_disparity: 6, block_radius: 2,
/// });
/// assert_eq!(init.disparity.dims(), (64, 48));
/// ```
pub fn block_match(left: &GrayImage, right: &GrayImage, params: &MatchParams) -> InitialDisparity {
    assert_eq!(left.dims(), right.dims(), "stereo pair must match");
    assert!(params.max_disparity > 0, "max_disparity must be nonzero");
    let (w, h) = left.dims();
    let r = params.block_radius as isize;

    let mut disparity = GrayImage::zeros(w, h);
    let mut confidence = GrayImage::zeros(w, h);
    // Rows are independent; each worker owns a disjoint band of output
    // rows of both maps and runs the identical per-pixel search, so the
    // result is byte-equal to the sequential scan at any thread count.
    incam_parallel::par_bands_mut2(
        disparity.pixels_mut(),
        confidence.pixels_mut(),
        h,
        |rows, disp_band, conf_band| {
            for y in rows.clone() {
                let row = (y - rows.start) * w;
                for x in 0..w {
                    let mut best_d = 0usize;
                    let mut best_cost = f32::INFINITY;
                    let mut second = f32::INFINITY;
                    for d in 0..=params.max_disparity {
                        let mut cost = 0.0f32;
                        for dy in -r..=r {
                            for dx in -r..=r {
                                let rv = right.get_clamped(x as isize + dx, y as isize + dy);
                                let lv =
                                    left.get_clamped(x as isize + dx + d as isize, y as isize + dy);
                                cost += (rv - lv).abs();
                            }
                        }
                        if cost < best_cost {
                            second = best_cost;
                            best_cost = cost;
                            best_d = d;
                        } else if cost < second {
                            second = cost;
                        }
                    }
                    disp_band[row + x] = best_d as f32;
                    // ratio test: distinct minima are trustworthy
                    conf_band[row + x] = if second.is_finite() && second > 1e-6 {
                        (1.0 - best_cost / second).clamp(0.0, 1.0)
                    } else {
                        0.0
                    };
                }
            }
        },
    );
    InitialDisparity {
        disparity,
        confidence,
    }
}

/// Mean absolute disparity error against ground truth, optionally ignoring
/// a border of `margin` pixels (occlusion/border effects).
pub fn disparity_mae(estimate: &GrayImage, truth: &GrayImage, margin: usize) -> f64 {
    assert_eq!(estimate.dims(), truth.dims(), "dimensions must match");
    let (w, h) = estimate.dims();
    assert!(2 * margin < w && 2 * margin < h, "margin too large");
    let mut err = 0.0f64;
    let mut n = 0usize;
    for y in margin..h - margin {
        for x in margin..w - margin {
            err += (estimate.get(x, y) - truth.get(x, y)).abs() as f64;
            n += 1;
        }
    }
    err / n as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use incam_imaging::scenes::stereo_scene;
    use incam_rng::rngs::StdRng;
    use incam_rng::SeedableRng;

    #[test]
    fn recovers_synthetic_disparity_roughly() {
        let mut rng = StdRng::seed_from_u64(41);
        let scene = stereo_scene(96, 72, 6, 3, &mut rng);
        let init = block_match(
            &scene.left,
            &scene.right,
            &MatchParams {
                max_disparity: 6,
                block_radius: 3,
            },
        );
        let mae = disparity_mae(&init.disparity, &scene.disparity, 8);
        assert!(mae < 1.5, "MAE {mae}");
    }

    #[test]
    fn confidence_higher_on_textured_regions() {
        let mut rng = StdRng::seed_from_u64(42);
        let scene = stereo_scene(96, 72, 5, 2, &mut rng);
        let init = block_match(&scene.left, &scene.right, &MatchParams::default());
        // mean confidence should be decidedly positive on textured scenes
        assert!(init.confidence.mean() > 0.2);
    }

    #[test]
    fn zero_disparity_for_identical_pair() {
        let mut rng = StdRng::seed_from_u64(43);
        let scene = stereo_scene(64, 48, 4, 2, &mut rng);
        let init = block_match(&scene.left, &scene.left, &MatchParams::default());
        // matching an image against itself: disparity collapses to zero
        let mae = disparity_mae(&init.disparity, &GrayImage::zeros(64, 48), 4);
        assert!(mae < 0.2, "MAE {mae}");
    }

    #[test]
    #[should_panic(expected = "must match")]
    fn mismatched_pair_rejected() {
        let _ = block_match(
            &GrayImage::zeros(10, 10),
            &GrayImage::zeros(12, 10),
            &MatchParams::default(),
        );
    }
}
