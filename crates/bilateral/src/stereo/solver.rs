//! Bilateral-space refinement: the iterative solver that smooths the
//! rough disparity estimate *in the grid*, where local filtering is
//! equivalent to global edge-aware regularization in pixel space.
//!
//! The refinement solves a weighted-least-squares problem
//! `min_v Σ w·(v − b)² + λ·‖∇v‖²` over grid vertices, where `b` is the
//! splatted block-matching estimate and `w` its splatted confidence. We
//! iterate the damped Jacobi form
//! `v ← (w·b + λ·blur(v)) / (w + λ)`,
//! which is exactly the "millions of blurs applied to the bilateral grid"
//! the paper maps onto streaming FPGA compute units (§IV-B).

use crate::grid::{BilateralGrid, GridParams};
use incam_imaging::image::GrayImage;

/// Solver configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SolverParams {
    /// Smoothness weight λ (larger = smoother surfaces).
    pub lambda: f32,
    /// Jacobi/blur iterations.
    pub iterations: usize,
    /// Blur passes per iteration.
    pub blur_per_iteration: usize,
}

impl Default for SolverParams {
    fn default() -> Self {
        Self {
            lambda: 1.0,
            iterations: 8,
            blur_per_iteration: 1,
        }
    }
}

/// Work accounting for one solve — feeds the FPGA throughput model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SolveStats {
    /// Grid vertices processed.
    pub vertices: usize,
    /// Total vertex-blur operations executed (vertices × axes × passes ×
    /// iterations).
    pub blur_ops: u64,
}

/// Refines a disparity estimate in bilateral space.
///
/// `guide` supplies the intensity axis (the reference image), `estimate`
/// and `confidence` the data term. Returns the refined pixel-space
/// disparity and the work stats.
///
/// # Panics
///
/// Panics if dimensions disagree or `iterations == 0`.
pub fn refine_in_bilateral_space(
    guide: &GrayImage,
    estimate: &GrayImage,
    confidence: Option<&GrayImage>,
    grid_params: GridParams,
    solver: &SolverParams,
) -> (GrayImage, SolveStats) {
    assert!(solver.iterations > 0, "need at least one iteration");
    assert_eq!(guide.dims(), estimate.dims(), "guide/estimate must match");

    // data term: splat b (disparity) and w (confidence)
    let mut data = BilateralGrid::new(guide.width(), guide.height(), grid_params);
    data.splat(guide, estimate, confidence);
    let n = data.vertex_count();
    let (b_times_w, w) = {
        let (values, weights) = data.raw();
        (values.to_vec(), weights.to_vec())
    };

    // iterate: v <- (w*b + lambda * blur(v)) / (w + lambda)
    // `state` reuses a grid purely for its blur kernel; its weights carry
    // a constant 1 so slicing normalizes correctly afterwards.
    let mut state = BilateralGrid::new(guide.width(), guide.height(), grid_params);
    {
        let (values, weights) = state.raw_mut();
        for i in 0..n {
            // initialize with the normalized data estimate where observed
            values[i] = if w[i] > 1e-8 {
                b_times_w[i] / w[i]
            } else {
                0.0
            };
            weights[i] = 1.0;
        }
    }
    let lambda = solver.lambda.max(0.0);
    for _ in 0..solver.iterations {
        state.blur(solver.blur_per_iteration);
        let (values, weights) = state.raw_mut();
        for i in 0..n {
            values[i] = (b_times_w[i] + lambda * values[i]) / (w[i] + lambda);
            weights[i] = 1.0;
        }
    }

    let refined = state.slice(guide);
    let stats = SolveStats {
        vertices: n,
        blur_ops: (n as u64) * 3 * solver.blur_per_iteration as u64 * solver.iterations as u64,
    };
    (refined, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use incam_imaging::image::Image;
    use incam_imaging::noise::add_gaussian_noise;
    use incam_rng::rngs::StdRng;
    use incam_rng::SeedableRng;

    #[test]
    fn denoises_flat_disparity() {
        let mut rng = StdRng::seed_from_u64(71);
        let guide = GrayImage::new(48, 48, 0.5);
        let truth = GrayImage::new(48, 48, 3.0);
        let noisy = {
            // add noise directly (disparities are not in [0,1])
            let mut img = truth.clone();
            for p in img.pixels_mut() {
                *p += 0.8 * incam_imaging::noise::gaussian_sample(&mut rng);
            }
            img
        };
        let (refined, _) = refine_in_bilateral_space(
            &guide,
            &noisy,
            None,
            GridParams::new(8.0, 0.2),
            &SolverParams::default(),
        );
        let err_before: f32 =
            noisy.pixels().iter().map(|&p| (p - 3.0).abs()).sum::<f32>() / noisy.len() as f32;
        let err_after: f32 = refined
            .pixels()
            .iter()
            .map(|&p| (p - 3.0).abs())
            .sum::<f32>()
            / refined.len() as f32;
        assert!(
            err_after < err_before * 0.5,
            "before {err_before} after {err_after}"
        );
    }

    #[test]
    fn preserves_disparity_discontinuity_at_intensity_edge() {
        // intensity edge coincides with a depth edge (the BSSA assumption)
        let guide = Image::from_fn(48, 16, |x, _| if x < 24 { 0.15 } else { 0.85 });
        let truth = Image::from_fn(48, 16, |x, _| if x < 24 { 1.0 } else { 6.0 });
        let mut rng = StdRng::seed_from_u64(72);
        let noisy = {
            let mut img = truth.clone();
            for p in img.pixels_mut() {
                *p += 0.7 * incam_imaging::noise::gaussian_sample(&mut rng);
            }
            img
        };
        let (refined, _) = refine_in_bilateral_space(
            &guide,
            &noisy,
            None,
            GridParams::new(6.0, 0.25),
            &SolverParams::default(),
        );
        assert!(refined.get(6, 8) < 2.0, "left {}", refined.get(6, 8));
        assert!(refined.get(42, 8) > 5.0, "right {}", refined.get(42, 8));
        // sharp transition: adjacent to the edge the values stay separated
        assert!(refined.get(27, 8) - refined.get(20, 8) > 3.0);
    }

    #[test]
    fn confidence_zero_regions_are_inpainted() {
        let guide = GrayImage::new(40, 40, 0.5);
        // estimate is garbage in the middle but confidence marks it
        let mut estimate = GrayImage::new(40, 40, 2.0);
        let mut conf = GrayImage::new(40, 40, 1.0);
        for y in 15..25 {
            for x in 15..25 {
                estimate.set(x, y, 50.0);
                conf.set(x, y, 0.0);
            }
        }
        let (refined, _) = refine_in_bilateral_space(
            &guide,
            &estimate,
            Some(&conf),
            GridParams::new(8.0, 0.2),
            &SolverParams {
                lambda: 2.0,
                iterations: 12,
                blur_per_iteration: 1,
            },
        );
        // the garbage region is filled from its trusted surroundings
        assert!(
            (refined.get(20, 20) - 2.0).abs() < 0.5,
            "center {}",
            refined.get(20, 20)
        );
    }

    #[test]
    fn stats_count_work() {
        let guide = GrayImage::new(32, 32, 0.5);
        let est = GrayImage::new(32, 32, 1.0);
        let (_, stats) = refine_in_bilateral_space(
            &guide,
            &est,
            None,
            GridParams::new(4.0, 0.1),
            &SolverParams {
                lambda: 1.0,
                iterations: 5,
                blur_per_iteration: 2,
            },
        );
        assert_eq!(stats.blur_ops, stats.vertices as u64 * 3 * 2 * 5);
    }

    #[test]
    fn noise_shrinks_with_more_iterations() {
        let mut rng = StdRng::seed_from_u64(73);
        let guide = GrayImage::new(40, 40, 0.5);
        let truth = GrayImage::new(40, 40, 4.0);
        let noisy = add_gaussian_noise(
            &truth.map(|p| p / 8.0), // scale into [0,1] for the noise helper
            0.1,
            &mut rng,
        )
        .map(|p| p * 8.0);
        let run = |iters: usize| {
            let (out, _) = refine_in_bilateral_space(
                &guide,
                &noisy,
                None,
                GridParams::new(4.0, 0.2),
                &SolverParams {
                    lambda: 1.0,
                    iterations: iters,
                    blur_per_iteration: 1,
                },
            );
            out.pixels().iter().map(|&p| (p - 4.0).abs()).sum::<f32>() / out.len() as f32
        };
        assert!(run(10) < run(1) + 1e-6);
    }
}
