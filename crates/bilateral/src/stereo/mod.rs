//! Bilateral-space stereo (BSSA): the paper's depth-estimation block B3.
//!
//! The full flow (Barron et al., the paper's ref. 4, as deployed in the VR pipeline):
//! block-matching produces a rough per-pixel disparity with confidence
//! ([`block_match`]); the estimate is resampled into a bilateral grid and
//! refined there with an iterative smoothing solver
//! ([`refine_in_bilateral_space`]); slicing returns the edge-aware,
//! denoised depth map.

mod matchcost;
mod solver;

pub use matchcost::{block_match, disparity_mae, InitialDisparity, MatchParams};
pub use solver::{refine_in_bilateral_space, SolveStats, SolverParams};

use crate::grid::{BilateralGrid, GridParams};
use incam_core::units::Bytes;
use incam_imaging::image::GrayImage;

/// Full-pipeline configuration for depth from a stereo pair.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BssaConfig {
    /// Block-matching parameters.
    pub matching: MatchParams,
    /// Bilateral-grid resolution (the Fig. 7 knob).
    pub grid: GridParams,
    /// Refinement solver parameters.
    pub solver: SolverParams,
}

impl Default for BssaConfig {
    fn default() -> Self {
        Self {
            matching: MatchParams::default(),
            grid: GridParams::new(8.0, 0.1),
            solver: SolverParams::default(),
        }
    }
}

/// Output of a BSSA depth computation.
#[derive(Debug, Clone)]
pub struct DepthResult {
    /// The refined disparity map.
    pub disparity: GrayImage,
    /// The raw block-matching disparity (before refinement).
    pub initial: GrayImage,
    /// Grid dimensions used.
    pub grid_dims: (usize, usize, usize),
    /// Grid memory under full-solver accounting (per-vertex cost-volume
    /// slices — the Fig. 7 x-axis; see `EXPERIMENTS.md`).
    pub grid_memory: Bytes,
    /// Solver work statistics.
    pub solve_stats: SolveStats,
}

/// Computes a depth map from a rectified stereo pair with BSSA.
///
/// # Panics
///
/// Panics if the pair's dimensions differ.
///
/// # Examples
///
/// ```
/// use incam_bilateral::stereo::{bssa_depth, BssaConfig};
/// use incam_imaging::scenes::stereo_scene;
/// use incam_rng::SeedableRng;
///
/// let mut rng = incam_rng::rngs::StdRng::seed_from_u64(4);
/// let scene = stereo_scene(64, 48, 6, 3, &mut rng);
/// let result = bssa_depth(&scene.left, &scene.right, &BssaConfig::default());
/// assert_eq!(result.disparity.dims(), (64, 48));
/// ```
pub fn bssa_depth(left: &GrayImage, right: &GrayImage, config: &BssaConfig) -> DepthResult {
    let init = block_match(left, right, &config.matching);
    let (refined, solve_stats) = refine_in_bilateral_space(
        right,
        &init.disparity,
        Some(&init.confidence),
        config.grid,
        &config.solver,
    );
    let grid = BilateralGrid::new(left.width(), left.height(), config.grid);
    // full-solver accounting: a float per disparity hypothesis plus the
    // homogeneous (value, weight) pair per vertex
    let per_vertex = 4 * (config.matching.max_disparity + 1) + 8;
    DepthResult {
        disparity: refined,
        initial: init.disparity,
        grid_dims: grid.dims(),
        grid_memory: grid.memory(per_vertex),
        solve_stats,
    }
}

/// Normalizes a disparity map to `[0, 1]` by `max_disparity` (for quality
/// metrics that expect unit-range images).
pub fn normalize_disparity(disparity: &GrayImage, max_disparity: usize) -> GrayImage {
    assert!(max_disparity > 0, "max_disparity must be nonzero");
    disparity.map(|d| (d / max_disparity as f32).clamp(0.0, 1.0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use incam_imaging::quality::{ms_ssim, MsSsimConfig};
    use incam_imaging::scenes::stereo_scene;
    use incam_rng::rngs::StdRng;
    use incam_rng::SeedableRng;

    #[test]
    fn refinement_improves_over_block_matching() {
        // independent per-view sensor noise makes the local block-matching
        // estimate noisy — the regime bilateral-space refinement targets
        let mut rng = StdRng::seed_from_u64(81);
        let scene = stereo_scene(128, 96, 6, 4, &mut rng);
        let left = incam_imaging::noise::add_gaussian_noise(&scene.left, 0.08, &mut rng);
        let right = incam_imaging::noise::add_gaussian_noise(&scene.right, 0.08, &mut rng);
        let cfg = BssaConfig {
            matching: MatchParams {
                max_disparity: 6,
                block_radius: 1,
            },
            grid: GridParams::new(4.0, 0.2),
            solver: SolverParams {
                lambda: 2.0,
                iterations: 10,
                blur_per_iteration: 1,
            },
        };
        let result = bssa_depth(&left, &right, &cfg);
        // MS-SSIM is the paper's depth-quality metric; refinement trades
        // pixel-exactness for structural fidelity, so that is what must
        // improve
        let truth = normalize_disparity(&scene.disparity, 6);
        let q_init = ms_ssim(
            &normalize_disparity(&result.initial, 6),
            &truth,
            &MsSsimConfig::default(),
        );
        let q_refined = ms_ssim(
            &normalize_disparity(&result.disparity, 6),
            &truth,
            &MsSsimConfig::default(),
        );
        assert!(
            q_refined > q_init + 0.05,
            "refined {q_refined} vs initial {q_init}"
        );
    }

    #[test]
    fn finer_grid_gives_higher_quality_depth() {
        let mut rng = StdRng::seed_from_u64(82);
        let scene = stereo_scene(128, 96, 6, 4, &mut rng);
        let quality_at = |sigma: f32| {
            let cfg = BssaConfig {
                matching: MatchParams {
                    max_disparity: 6,
                    block_radius: 2,
                },
                grid: GridParams::new(sigma, 0.12),
                solver: SolverParams::default(),
            };
            let result = bssa_depth(&scene.left, &scene.right, &cfg);
            let est = normalize_disparity(&result.disparity, 6);
            let truth = normalize_disparity(&scene.disparity, 6);
            ms_ssim(&est, &truth, &MsSsimConfig::default())
        };
        let fine = quality_at(4.0);
        let coarse = quality_at(32.0);
        assert!(fine > coarse, "fine {fine} vs coarse {coarse}");
    }

    #[test]
    fn grid_memory_shrinks_with_coarser_grid() {
        let mut rng = StdRng::seed_from_u64(83);
        let scene = stereo_scene(64, 64, 5, 3, &mut rng);
        let mem_at = |sigma: f32| {
            let cfg = BssaConfig {
                grid: GridParams::new(sigma, 0.1),
                ..Default::default()
            };
            bssa_depth(&scene.left, &scene.right, &cfg).grid_memory
        };
        assert!(mem_at(4.0).bytes() > 10.0 * mem_at(16.0).bytes());
    }

    #[test]
    fn normalize_clamps_to_unit_range() {
        let d = GrayImage::new(4, 4, 12.0);
        let n = normalize_disparity(&d, 8);
        assert_eq!(n.get(0, 0), 1.0);
    }
}
