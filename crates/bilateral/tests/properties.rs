//! Property-based tests of the bilateral-grid pipeline.

use incam_bilateral::grid::{BilateralGrid, GridParams};
use incam_bilateral::signal::{bilateral_filter_1d, moving_average};
use incam_bilateral::stereo::{block_match, MatchParams};
use incam_imaging::image::{GrayImage, Image};
use incam_rng::prelude::*;

fn arbitrary_guide() -> impl Strategy<Value = GrayImage> {
    (8usize..36, 8usize..36, 0u64..5000).prop_map(|(w, h, seed)| {
        Image::from_fn(w, h, move |x, y| {
            (((x * 13 + y * 7 + seed as usize * 3) % 53) as f32) / 53.0
        })
    })
}

proptest! {
    /// 1-D filters are shift-equivariant on interior samples and preserve
    /// constants exactly.
    #[test]
    fn one_d_filters_preserve_constants(value in -50.0f32..50.0, len in 8usize..64) {
        let signal = vec![value; len];
        for out in [
            moving_average(&signal, 5),
            bilateral_filter_1d(&signal, 2.0, 10.0),
        ] {
            for v in out {
                prop_assert!((v - value).abs() < 1e-3);
            }
        }
    }

    /// The bilateral filter's output is a convex combination of inputs:
    /// it never exceeds the input range.
    #[test]
    fn bilateral_range_bounded(
        samples in prop::collection::vec(-100.0f32..100.0, 8..64),
    ) {
        let out = bilateral_filter_1d(&samples, 2.5, 15.0);
        let lo = samples.iter().cloned().fold(f32::INFINITY, f32::min);
        let hi = samples.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        for v in out {
            prop_assert!(v >= lo - 1e-4 && v <= hi + 1e-4);
        }
    }

    /// Grid round trip: splat → slice (no blur) reproduces smooth values
    /// closely, and output is bounded by the splatted value range.
    #[test]
    fn grid_slice_bounded(guide in arbitrary_guide(), sigma in 2.0f32..10.0) {
        let (w, h) = guide.dims();
        let values = Image::from_fn(w, h, |x, _| x as f32 / w as f32 * 4.0);
        let mut grid = BilateralGrid::new(w, h, GridParams::new(sigma, 0.2));
        grid.splat(&guide, &values, None);
        let out = grid.slice(&guide);
        let (lo, hi) = values.min_max();
        for &p in out.pixels() {
            prop_assert!(p >= lo - 1e-3 && p <= hi + 1e-3);
        }
    }

    /// Blur is idempotent on constants and total mass is conserved for
    /// any iteration count.
    #[test]
    fn grid_blur_conservation(guide in arbitrary_guide(), iters in 1usize..4) {
        let (w, h) = guide.dims();
        let mut grid = BilateralGrid::new(w, h, GridParams::new(4.0, 0.15));
        grid.splat(&guide, &guide, None);
        let before = grid.total_weight();
        grid.blur(iters);
        prop_assert!((grid.total_weight() - before).abs() < before * 1e-4);
    }

    /// Block matching output respects the disparity search range and
    /// confidence stays in [0, 1].
    #[test]
    fn block_match_ranges(guide in arbitrary_guide(), max_d in 1usize..6) {
        let (w, h) = guide.dims();
        prop_assume!(w > 4 * max_d);
        let right = Image::from_fn(w, h, |x, y| {
            guide.get_clamped(x as isize + max_d as isize / 2, y as isize)
        });
        let init = block_match(&guide, &right, &MatchParams {
            max_disparity: max_d,
            block_radius: 1,
        });
        let (dlo, dhi) = init.disparity.min_max();
        prop_assert!(dlo >= 0.0 && dhi <= max_d as f32);
        let (clo, chi) = init.confidence.min_max();
        prop_assert!(clo >= 0.0 && chi <= 1.0);
    }

    /// Vertex counts shrink monotonically as cells grow, in every axis.
    #[test]
    fn grid_size_monotone(w in 16usize..128, h in 16usize..128, s in 2.0f32..16.0) {
        let fine = BilateralGrid::new(w, h, GridParams::new(s, 0.1));
        let coarse_spatial = BilateralGrid::new(w, h, GridParams::new(s * 2.0, 0.1));
        let coarse_range = BilateralGrid::new(w, h, GridParams::new(s, 0.2));
        prop_assert!(coarse_spatial.vertex_count() <= fine.vertex_count());
        prop_assert!(coarse_range.vertex_count() <= fine.vertex_count());
    }

    /// The tap-table splat, fused xyz blur, and tap-table slice are each
    /// bit-exact against the original per-tap formulations, across random
    /// image sizes (including 1×N / N×1), grid resolutions, confidence
    /// maps, and both pool dispatch paths.
    #[test]
    fn grid_fast_paths_bitwise_equal_reference(
        w in 1usize..40,
        h in 1usize..40,
        sigma_s in 1.0f32..9.0,
        sigma_r in 0.05f32..0.9,
        iterations in 0usize..4,
        with_conf in any::<bool>(),
        seed in 0u64..5000,
    ) {
        let guide = Image::from_fn(w, h, move |x, y| {
            (((x * 13 + y * 7 + seed as usize * 3) % 53) as f32) / 53.0
        });
        let values = Image::from_fn(w, h, move |x, y| {
            (((x * 5 + y * 11 + seed as usize) % 23) as f32) / 23.0
        });
        let conf = Image::from_fn(w, h, |x, y| ((x + y) % 4) as f32 / 3.0);
        let conf = with_conf.then_some(&conf);
        let p = GridParams::new(sigma_s, sigma_r);
        for threads in [1usize, 4] {
            incam_parallel::set_thread_override(Some(threads));
            let mut fast = BilateralGrid::new(w, h, p);
            let mut reference = BilateralGrid::new(w, h, p);
            fast.splat(&guide, &values, conf);
            reference.splat_reference(&guide, &values, conf);
            let splat_ok = fast == reference;
            fast.blur(iterations);
            reference.blur_reference(iterations);
            let blur_ok = fast == reference;
            let sliced = fast.slice(&guide);
            let sliced_reference = reference.slice_reference(&guide);
            incam_parallel::set_thread_override(None);
            prop_assert!(splat_ok, "splat diverged, threads={}", threads);
            prop_assert!(blur_ok, "blur diverged, threads={}", threads);
            for (a, b) in sliced.pixels().iter().zip(sliced_reference.pixels()) {
                prop_assert_eq!(a.to_bits(), b.to_bits(), "threads={}", threads);
            }
        }
    }
}
