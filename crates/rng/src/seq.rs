//! Sequence helpers: the `rand`-style `SliceRandom` surface the
//! codebase uses (just `shuffle`).

use crate::{Rng, RngCore};

/// In-place random reordering of slices.
pub trait SliceRandom {
    /// Shuffles the slice uniformly (Fisher–Yates, iterating from the
    /// end, matching the classical algorithm exactly so streams are
    /// easy to reason about).
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
}

impl<T> SliceRandom for [T] {
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            self.swap(i, rng.gen_range(0..=i));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SeedableRng, StdRng};

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(21);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements staying sorted is ~impossible");
    }

    #[test]
    fn shuffle_is_deterministic() {
        let shuffled = |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut v: Vec<usize> = (0..20).collect();
            v.shuffle(&mut rng);
            v
        };
        assert_eq!(shuffled(5), shuffled(5));
        assert_ne!(shuffled(5), shuffled(6));
    }

    #[test]
    fn shuffle_visits_all_positions() {
        // Element 0 should land in many different slots across seeds.
        let mut landed = [false; 10];
        for seed in 0..200 {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut v: Vec<usize> = (0..10).collect();
            v.shuffle(&mut rng);
            landed[v.iter().position(|&x| x == 0).unwrap()] = true;
        }
        assert!(landed.iter().all(|&l| l));
    }
}
