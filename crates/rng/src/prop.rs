//! Minimal property-based testing: seeded case generation, shrinking by
//! halving, and failure-seed reporting.
//!
//! This replaces the `proptest` dependency for the narrow surface the
//! workspace uses. Write properties with the [`crate::proptest!`] macro:
//!
//! ```
//! use incam_rng::prelude::*;
//!
//! proptest! {
//!     fn addition_commutes(a in 0.0f64..1e6, b in 0.0f64..1e6) {
//!         prop_assert!((a + b - (b + a)).abs() < 1e-9);
//!     }
//! }
//! addition_commutes(); // in a test file, write #[test] above the fn
//! ```
//!
//! Strategies are ranges (`0.0f64..1e12`, `-2i32..=2`), tuples of
//! strategies, [`collection::vec`], [`any`]`::<bool>()`, and
//! [`Strategy::prop_map`]. Each case is generated from a deterministic
//! per-case seed; on failure the harness shrinks the input (halving
//! numerics toward the range's lower bound, truncating collections) and
//! reports the seed environment needed to replay exactly that case:
//!
//! ```text
//! INCAM_PROPTEST_SEED=<n> INCAM_PROPTEST_CASES=1 cargo test <name>
//! ```
//!
//! `INCAM_PROPTEST_CASES` (default 64) scales how many cases every
//! property runs.

use crate::{Rng, SeedableRng, StdRng};
use core::fmt::Debug;
use core::ops::{Range, RangeInclusive};
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Default number of cases per property (override with
/// `INCAM_PROPTEST_CASES`).
pub const DEFAULT_CASES: u32 = 64;

/// Default base seed (override with `INCAM_PROPTEST_SEED`).
pub const DEFAULT_SEED: u64 = 0x1ca2_2017_0c05_7bad;

/// Cap on failing-candidate evaluations during shrinking.
const MAX_SHRINK_EVALS: u32 = 512;

/// A generator of test inputs plus a way to propose smaller variants of
/// a failing input.
pub trait Strategy {
    /// The generated input type.
    type Value: Clone + Debug;

    /// Draws one input from the seeded generator.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Proposes strictly "smaller" candidates for a failing input, most
    /// aggressive first. The default proposes nothing (no shrinking).
    fn shrink(&self, _value: &Self::Value) -> Vec<Self::Value> {
        Vec::new()
    }

    /// Maps generated values through `f` (shrinking does not cross the
    /// map, since `f` is not invertible).
    fn prop_map<T, F>(self, f: F) -> Mapped<Self, F>
    where
        Self: Sized,
        T: Clone + Debug,
        F: Fn(Self::Value) -> T,
    {
        Mapped { inner: self, f }
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }

            fn shrink(&self, value: &$t) -> Vec<$t> {
                shrink_toward(self.start, *value, |low, v| low + (v - low) / 2)
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }

            fn shrink(&self, value: &$t) -> Vec<$t> {
                shrink_toward(*self.start(), *value, |low, v| low + (v - low) / 2)
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }

            fn shrink(&self, value: &$t) -> Vec<$t> {
                shrink_toward(self.start, *value, |low, v| low + (v - low) / 2.0)
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }

            fn shrink(&self, value: &$t) -> Vec<$t> {
                shrink_toward(*self.start(), *value, |low, v| low + (v - low) / 2.0)
            }
        }
    )*};
}

float_range_strategy!(f32, f64);

/// Shared numeric shrink — "shrinking by halving": the lower bound
/// itself, then a ladder of successive half-points walking toward the
/// failing value (`low`, `low + d/2`, `low + 3d/4`, …). The runner takes
/// the first candidate that still fails and re-shrinks from there, so a
/// threshold counterexample converges binary-search style onto the
/// boundary instead of stalling at the first passing midpoint.
fn shrink_toward<T: PartialEq + Copy>(low: T, value: T, half: impl Fn(T, T) -> T) -> Vec<T> {
    let mut out = Vec::new();
    if value == low {
        return out;
    }
    out.push(low);
    let mut anchor = low;
    for _ in 0..24 {
        let mid = half(anchor, value);
        if mid == anchor || mid == value {
            break;
        }
        out.push(mid);
        anchor = mid;
    }
    out
}

macro_rules! tuple_strategy {
    ($(($S:ident, $idx:tt)),+) => {
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);

            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }

            fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
                let mut out = Vec::new();
                $(
                    for candidate in self.$idx.shrink(&value.$idx) {
                        let mut next = value.clone();
                        next.$idx = candidate;
                        out.push(next);
                    }
                )+
                out
            }
        }
    };
}

tuple_strategy!((A, 0));
tuple_strategy!((A, 0), (B, 1));
tuple_strategy!((A, 0), (B, 1), (C, 2));
tuple_strategy!((A, 0), (B, 1), (C, 2), (D, 3));
tuple_strategy!((A, 0), (B, 1), (C, 2), (D, 3), (E, 4));
tuple_strategy!((A, 0), (B, 1), (C, 2), (D, 3), (E, 4), (F, 5));
tuple_strategy!((A, 0), (B, 1), (C, 2), (D, 3), (E, 4), (F, 5), (G, 6));
tuple_strategy!(
    (A, 0),
    (B, 1),
    (C, 2),
    (D, 3),
    (E, 4),
    (F, 5),
    (G, 6),
    (H, 7)
);

/// See [`Strategy::prop_map`].
pub struct Mapped<S, F> {
    inner: S,
    f: F,
}

impl<S, T, F> Strategy for Mapped<S, F>
where
    S: Strategy,
    T: Clone + Debug,
    F: Fn(S::Value) -> T,
{
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        (self.f)(self.inner.generate(rng))
    }
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use super::*;

    /// A strategy yielding `Vec`s whose length is drawn from `len` and
    /// whose elements come from `element`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "collection::vec: empty length range");
        VecStrategy { element, len }
    }

    /// See [`fn@vec`].
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            let len = rng.gen_range(self.len.clone());
            (0..len).map(|_| self.element.generate(rng)).collect()
        }

        fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
            let mut out = Vec::new();
            let min = self.len.start;
            if value.len() > min {
                // Halve the length, then peel one element — the
                // coarse-to-fine order shrinks long counterexamples fast.
                let half = (value.len() / 2).max(min);
                if half < value.len() {
                    out.push(value[..half].to_vec());
                }
                out.push(value[..value.len() - 1].to_vec());
            }
            for (i, element) in value.iter().enumerate() {
                for candidate in self.element.shrink(element) {
                    let mut next = value.clone();
                    next[i] = candidate;
                    out.push(next);
                }
            }
            out
        }
    }
}

/// Types with a default whole-domain strategy, for `any::<T>()`.
pub trait Arbitrary: Sized {
    /// The strategy [`any`] returns.
    type Strategy: Strategy<Value = Self>;

    /// The whole-domain strategy for this type.
    fn arbitrary() -> Self::Strategy;
}

/// The whole-domain strategy for `T` (`any::<bool>()` et al.).
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Fair coin strategy; shrinks `true` to `false`.
pub struct BoolStrategy;

impl Strategy for BoolStrategy {
    type Value = bool;

    fn generate(&self, rng: &mut StdRng) -> bool {
        rng.gen_bool(0.5)
    }

    fn shrink(&self, value: &bool) -> Vec<bool> {
        if *value {
            vec![false]
        } else {
            Vec::new()
        }
    }
}

impl Arbitrary for bool {
    type Strategy = BoolStrategy;

    fn arbitrary() -> BoolStrategy {
        BoolStrategy
    }
}

/// Marker payload thrown by [`crate::prop_assume!`]; the runner treats
/// it as "discard this case", not a failure.
pub struct Rejected;

/// Aborts the current case as rejected. Used via [`crate::prop_assume!`].
pub fn reject() -> ! {
    std::panic::panic_any(Rejected)
}

enum CaseOutcome {
    Pass,
    Reject,
    Fail(String),
}

fn run_case<V, F: Fn(V)>(value: V, test: &F) -> CaseOutcome {
    match catch_unwind(AssertUnwindSafe(|| test(value))) {
        Ok(()) => CaseOutcome::Pass,
        Err(payload) => {
            if payload.is::<Rejected>() {
                CaseOutcome::Reject
            } else if let Some(s) = payload.downcast_ref::<&str>() {
                CaseOutcome::Fail((*s).to_string())
            } else if let Some(s) = payload.downcast_ref::<String>() {
                CaseOutcome::Fail(s.clone())
            } else {
                CaseOutcome::Fail("<non-string panic payload>".to_string())
            }
        }
    }
}

fn env_u64(name: &str, default: u64) -> u64 {
    match std::env::var(name) {
        Ok(v) => v
            .parse()
            .unwrap_or_else(|e| panic!("{name}={v:?} is not a u64: {e}")),
        Err(_) => default,
    }
}

/// Drives one property: generation, rejection handling, shrinking, and
/// the failure report. Called by the [`crate::proptest!`] expansion —
/// not meant to be invoked by hand.
pub fn run_property<S: Strategy>(name: &str, strategy: &S, test: impl Fn(S::Value)) {
    let cases = env_u64("INCAM_PROPTEST_CASES", u64::from(DEFAULT_CASES)) as u32;
    let base_seed = env_u64("INCAM_PROPTEST_SEED", DEFAULT_SEED);

    let mut accepted = 0u32;
    let mut attempt = 0u32;
    let max_attempts = cases.saturating_mul(8).max(8);
    while accepted < cases {
        if attempt >= max_attempts {
            assert!(
                accepted > 0,
                "property '{name}': prop_assume! rejected all {attempt} generated cases"
            );
            break;
        }
        // seed_from_u64 SplitMix-scrambles, so consecutive per-case
        // seeds yield decorrelated streams.
        let case_seed = base_seed.wrapping_add(u64::from(attempt));
        let mut rng = StdRng::seed_from_u64(case_seed);
        let value = strategy.generate(&mut rng);
        match run_case(value.clone(), &test) {
            CaseOutcome::Pass => accepted += 1,
            CaseOutcome::Reject => {}
            CaseOutcome::Fail(message) => {
                let (minimal, message) = shrink_failure(strategy, value, message, &test);
                panic!(
                    "property '{name}' failed at case {attempt} (base seed {base_seed}):\n\
                     \x20 minimal failing input: {minimal:?}\n\
                     \x20 failure: {message}\n\
                     \x20 replay exactly this case with:\n\
                     \x20   INCAM_PROPTEST_SEED={case_seed} INCAM_PROPTEST_CASES=1 \
                     cargo test {name}"
                );
            }
        }
        attempt += 1;
    }
}

/// Greedy shrink: repeatedly take the first proposed candidate that
/// still fails, until no candidate fails or the evaluation budget is
/// spent. Returns the smallest failing input and its failure message.
fn shrink_failure<S: Strategy>(
    strategy: &S,
    original: S::Value,
    original_message: String,
    test: &impl Fn(S::Value),
) -> (S::Value, String) {
    let mut current = original;
    let mut message = original_message;
    let mut evals = 0u32;
    'outer: while evals < MAX_SHRINK_EVALS {
        for candidate in strategy.shrink(&current) {
            if evals >= MAX_SHRINK_EVALS {
                break 'outer;
            }
            evals += 1;
            if let CaseOutcome::Fail(m) = run_case(candidate.clone(), test) {
                current = candidate;
                message = m;
                continue 'outer;
            }
        }
        break;
    }
    (current, message)
}

/// Declares property tests. Mirrors `proptest::proptest!`:
///
/// ```
/// use incam_rng::prelude::*;
///
/// proptest! {
///     /// Doubling then halving is the identity on small integers.
///     fn double_halves(x in 0u32..10_000) {
///         prop_assert_eq!((x * 2) / 2, x);
///     }
/// }
/// double_halves(); // in a test file, write #[test] above the fn
/// ```
#[macro_export]
macro_rules! proptest {
    ($($(#[$attr:meta])* fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block)+) => {
        $(
            $(#[$attr])*
            fn $name() {
                let strategy = ($($strategy,)+);
                $crate::prop::run_property(
                    stringify!($name),
                    &strategy,
                    |($($arg,)+)| $body,
                );
            }
        )+
    };
}

/// Asserts inside a property; on failure the harness shrinks and
/// reports the case seed.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Equality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Discards the current case unless `cond` holds (counted separately
/// from failures; a property rejecting every case fails loudly).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            $crate::prop::reject();
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_respect_bounds(x in 5u32..100, y in -4i64..=4, z in 0.25f64..0.75) {
            prop_assert!((5..100).contains(&x));
            prop_assert!((-4..=4).contains(&y));
            prop_assert!((0.25..0.75).contains(&z));
        }

        #[test]
        fn vec_lengths_respect_bounds(v in prop::collection::vec(0u8..10, 2..9)) {
            prop_assert!((2..9).contains(&v.len()));
            prop_assert!(v.iter().all(|&b| b < 10));
        }

        #[test]
        fn prop_map_applies(n in (1usize..20).prop_map(|n| n * 3)) {
            prop_assert_eq!(n % 3, 0);
        }

        #[test]
        fn assume_discards(a in 0u32..10, b in 0u32..10) {
            prop_assume!(a != b);
            prop_assert!(a != b);
        }

        #[test]
        fn any_bool_generates(flag in any::<bool>()) {
            prop_assert!(usize::from(flag) <= 1);
        }
    }

    #[test]
    fn cases_are_deterministic() {
        use crate::prop::Strategy;
        let strategy = (0.0f64..1e9, 0usize..100);
        let gen_at = |seed: u64| {
            let mut rng = StdRng::seed_from_u64(seed);
            strategy.generate(&mut rng)
        };
        assert_eq!(gen_at(77), gen_at(77));
        assert_ne!(gen_at(77), gen_at(78));
    }

    #[test]
    fn failing_property_shrinks_to_boundary() {
        // Property "x < 700" over 0..1000 fails; halving from any
        // failing draw should land on a small counterexample.
        let strategy = (0u32..1000,);
        let failing = std::panic::catch_unwind(|| {
            crate::prop::run_property("shrink_demo", &strategy, |(x,)| {
                assert!(x < 700, "x={x}");
            });
        });
        let message = match failing {
            Err(payload) => payload
                .downcast_ref::<String>()
                .expect("string panic payload")
                .clone(),
            Ok(()) => panic!("property unexpectedly passed"),
        };
        assert!(message.contains("minimal failing input"), "{message}");
        assert!(message.contains("INCAM_PROPTEST_SEED="), "{message}");
        // The halving ladder converges exactly onto the boundary.
        let shrunk: u32 = message
            .split("minimal failing input: (")
            .nth(1)
            .and_then(|rest| rest.split(',').next())
            .and_then(|n| n.trim().parse().ok())
            .expect("parse shrunk value");
        assert_eq!(shrunk, 700, "shrunk to {shrunk}");
    }

    #[test]
    fn tuple_shrink_is_componentwise() {
        use crate::prop::Strategy;
        let strategy = (10u32..100, 5i32..50);
        let candidates = strategy.shrink(&(60, 40));
        assert!(candidates.contains(&(10, 40)));
        assert!(candidates.contains(&(35, 40)));
        assert!(candidates.contains(&(60, 5)));
        assert!(candidates.contains(&(60, 22)));
    }
}
