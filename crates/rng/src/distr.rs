//! Uniform sampling: the `Standard`-style distribution behind
//! [`crate::Rng::gen`] and the range machinery behind
//! [`crate::Rng::gen_range`].

use crate::RngCore;
use core::ops::{Range, RangeInclusive};

/// Types with a canonical "standard" distribution: uniform over `[0, 1)`
/// for floats, uniform over the whole domain for integers and `bool`.
pub trait StandardSample: Sized {
    /// Draws one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high bits → uniform on [0, 1) with full double precision.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // The sign bit of a fresh draw.
        rng.next_u64() >> 63 == 1
    }
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Types that can be drawn uniformly from a half-open or inclusive range.
pub trait SampleUniform: Sized {
    /// Uniform draw from `[low, high)`. Callers guarantee `low < high`.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;

    /// Uniform draw from `[low, high]`. Callers guarantee `low <= high`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

/// Unbiased draw from `[0, span)` by rejection of the short final zone
/// (Lemire-style widening multiply; the rejection loop terminates with
/// probability 1 and in practice almost immediately).
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    loop {
        let x = rng.next_u64();
        let wide = x as u128 * span as u128;
        let low = wide as u64;
        if low >= span.wrapping_neg() % span {
            return (wide >> 64) as u64;
        }
    }
}

macro_rules! uniform_int {
    ($($t:ty => $unsigned:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                let span = (high as $unsigned).wrapping_sub(low as $unsigned) as u64;
                low.wrapping_add(uniform_u64(rng, span) as $t)
            }

            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                let span = (high as $unsigned).wrapping_sub(low as $unsigned) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                low.wrapping_add(uniform_u64(rng, span + 1) as $t)
            }
        }
    )*};
}

uniform_int!(
    u8 => u8, u16 => u16, u32 => u32, u64 => u64, usize => usize,
    i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize
);

macro_rules! uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                let unit = <$t as StandardSample>::sample_standard(rng);
                // low + unit*(high-low) can round up to `high` when the
                // span is huge; clamp to keep the half-open contract.
                let v = low + unit * (high - low);
                if v >= high { <$t>::max(low, high - (high - low) * <$t>::EPSILON) } else { v }
            }

            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                let unit = <$t as StandardSample>::sample_standard(rng);
                (low + unit * (high - low)).min(high)
            }
        }
    )*};
}

uniform_float!(f32, f64);

/// Range expressions accepted by [`crate::Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform + PartialOrd + Copy + core::fmt::Debug> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(
            self.start < self.end,
            "gen_range: empty range {:?}..{:?}",
            self.start,
            self.end
        );
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform + PartialOrd + Copy + core::fmt::Debug> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (low, high) = (*self.start(), *self.end());
        assert!(low <= high, "gen_range: empty range {low:?}..={high:?}");
        T::sample_inclusive(rng, low, high)
    }
}

#[cfg(test)]
mod tests {
    use crate::{Rng, SeedableRng, StdRng};

    #[test]
    fn int_ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..2000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(-2i32..=2);
            assert!((-2..=2).contains(&w));
            let b = rng.gen_range(0..5u8);
            assert!(b < 5);
        }
    }

    #[test]
    fn int_range_covers_every_value() {
        let mut rng = StdRng::seed_from_u64(12);
        let mut seen = [false; 5];
        for _ in 0..500 {
            seen[rng.gen_range(0usize..5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
        let mut seen = [false; 5];
        for _ in 0..500 {
            seen[(rng.gen_range(-2i32..=2) + 2) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn float_ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(13);
        for _ in 0..2000 {
            let v: f32 = rng.gen_range(-1.5..1.5);
            assert!((-1.5..1.5).contains(&v));
            let w: f64 = rng.gen_range(0.0..1e12);
            assert!((0.0..1e12).contains(&w));
            let u: f32 = rng.gen_range(-0.25..=0.25);
            assert!((-0.25..=0.25).contains(&u));
        }
    }

    #[test]
    fn float_uniform_mean() {
        let mut rng = StdRng::seed_from_u64(14);
        let n = 20_000;
        let sum: f64 = (0..n).map(|_| rng.gen_range(0.0f64..1.0)).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gen_standard_types() {
        let mut rng = StdRng::seed_from_u64(15);
        let f: f32 = rng.gen();
        let d: f64 = rng.gen();
        assert!((0.0..1.0).contains(&f));
        assert!((0.0..1.0).contains(&d));
        let _: u64 = rng.gen();
        let _: bool = rng.gen();
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(16);
        let _ = rng.gen_range(5..5usize);
    }
}
