//! Hermetic deterministic substrate for the incam workspace.
//!
//! Three things live here, and the whole workspace builds offline because
//! of them:
//!
//! 1. **A deterministic PRNG** ([`Xoshiro256PlusPlus`], seeded through
//!    [`SplitMix64`]) exposing the narrow `rand`-style surface the
//!    codebase actually uses: [`SeedableRng::seed_from_u64`],
//!    [`Rng::gen`], [`Rng::gen_range`], [`Rng::gen_bool`], and
//!    [`seq::SliceRandom::shuffle`]. [`StdRng`] is an alias for the
//!    xoshiro generator so call sites read exactly like `rand` ones.
//! 2. **A property-test harness** ([`prop`], the [`proptest!`] macro):
//!    case generation from a seeded RNG, shrinking by halving, and
//!    failure-seed reporting.
//! 3. **A bench harness** ([`mod@bench`]): warmup, N timed iterations,
//!    median/MAD statistics, and `BENCH_*.json` output for trajectory
//!    tracking.
//!
//! The crate has **zero dependencies** — not even on the rest of the
//! workspace — so every other crate can depend on it, in any build mode,
//! with no network access.
//!
//! # Determinism contract
//!
//! The generator's output stream for a given `seed_from_u64` seed is
//! fixed forever: golden tests pin figures derived from it, so changing
//! the stream is a breaking change that must update
//! `crates/bench/tests/golden.rs` in the same PR.
//!
//! ```
//! use incam_rng::{Rng, SeedableRng, StdRng};
//!
//! let mut rng = StdRng::seed_from_u64(2017);
//! let x: f64 = rng.gen_range(0.0..1.0);
//! let again: f64 = StdRng::seed_from_u64(2017).gen_range(0.0..1.0);
//! assert_eq!(x, again);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bench;
mod distr;
pub mod prop;
pub mod seq;
mod xoshiro;

pub use distr::{SampleRange, SampleUniform, StandardSample};
pub use xoshiro::{SplitMix64, Xoshiro256PlusPlus};

/// The workspace's standard deterministic generator.
///
/// Named `StdRng` so migrated call sites (`use incam_rng::StdRng`) read
/// like their former `rand` selves. Unlike rand's, this one is portable
/// and its stream is pinned by golden tests.
pub type StdRng = Xoshiro256PlusPlus;

/// Mirror of rand's `rngs` module so imports migrate mechanically.
pub mod rngs {
    pub use crate::StdRng;
}

/// A source of uniformly distributed 64-bit words.
///
/// Object-safe on purpose: pipeline code passes `&mut dyn RngCore`
/// across closure boundaries.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits (the upper half of a 64-bit
    /// draw, which are the strongest bits of xoshiro256++).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
}

/// High-level sampling methods, blanket-implemented for every
/// [`RngCore`] (including unsized ones like `dyn RngCore`).
pub trait Rng: RngCore {
    /// Samples a value from the "standard" distribution of `T`:
    /// uniform over `[0, 1)` for floats, uniform over the full domain
    /// for integers and `bool`.
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Samples uniformly from `range` (`a..b` or `a..=b`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p={p} not in [0, 1]");
        // Compare against a 64-bit integer threshold rather than a
        // float draw so p == 1.0 is always true and p == 0.0 never is.
        if p >= 1.0 {
            return true;
        }
        let threshold = (p * (1u128 << 64) as f64) as u64;
        self.next_u64() < threshold
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministic construction from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Everything a test or bench file needs, in one glob import.
///
/// Mirrors `proptest::prelude::*` closely enough that migrating a test
/// file is a one-line import change.
pub mod prelude {
    pub use crate::prop::{self, any, Strategy};
    pub use crate::seq::SliceRandom;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assume, proptest, Rng, RngCore, SeedableRng, StdRng,
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4, "{same} collisions in 64 draws");
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert!(rng.gen_bool(1.0));
            assert!(!rng.gen_bool(0.0));
        }
    }

    #[test]
    fn gen_bool_frequency() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2200..2800).contains(&hits), "hits {hits}");
    }

    #[test]
    fn dyn_rng_core_is_usable() {
        let mut rng = StdRng::seed_from_u64(9);
        let dyn_rng: &mut dyn RngCore = &mut rng;
        let x: f32 = dyn_rng.gen_range(0.0..1.0);
        assert!((0.0..1.0).contains(&x));
        assert!(Rng::gen_bool(&mut &mut *dyn_rng, 1.0));
    }

    #[test]
    fn stream_is_pinned() {
        // The first three words of seed 0 — if this test fails, every
        // golden figure downstream moved too. See the crate docs.
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(rng.next_u64(), 0x53175d61490b23df);
        assert_eq!(rng.next_u64(), 0x61da6f3dc380d507);
        assert_eq!(rng.next_u64(), 0x5c0fdf91ec9a7bfc);
    }
}
