//! The generators: SplitMix64 (seeding) and xoshiro256++ (the stream).
//!
//! Both are the reference algorithms of Blackman & Vigna
//! (<https://prng.di.unimi.it/>): xoshiro256++ passes BigCrush, has a
//! 2^256 − 1 period, and runs in a handful of ALU ops — there is no
//! hardware entropy, global state, or platform dependence anywhere, which
//! is what makes the workspace's numbers bit-reproducible.

use crate::{RngCore, SeedableRng};

/// SplitMix64 — a tiny 64-bit generator used only to expand a `u64` seed
/// into xoshiro's 256-bit state (the construction its authors recommend;
/// it guarantees the all-zero state cannot be produced).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator with the given state.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }
}

impl RngCore for SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

impl SeedableRng for SplitMix64 {
    fn seed_from_u64(seed: u64) -> Self {
        Self::new(seed)
    }
}

/// xoshiro256++ 1.0 — the workspace's standard generator (see
/// [`crate::StdRng`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xoshiro256PlusPlus {
    s: [u64; 4],
}

impl Xoshiro256PlusPlus {
    /// Creates a generator directly from 256 bits of state.
    ///
    /// # Panics
    ///
    /// Panics if the state is all zeros (the one fixed point of the
    /// transition function). Prefer [`SeedableRng::seed_from_u64`].
    pub fn from_state(state: [u64; 4]) -> Self {
        assert!(
            state.iter().any(|&w| w != 0),
            "xoshiro256++ state must not be all zero"
        );
        Self { s: state }
    }

    /// The 2^128-step jump, for carving one seed into independent
    /// non-overlapping streams (e.g. one per worker).
    pub fn jump(&mut self) {
        const JUMP: [u64; 4] = [
            0x180e_c6d3_3cfd_0aba,
            0xd5a6_1266_f0c9_392c,
            0xa958_2618_e03f_c9aa,
            0x39ab_dc45_29b1_661c,
        ];
        let mut acc = [0u64; 4];
        for word in JUMP {
            for bit in 0..64 {
                if word & (1u64 << bit) != 0 {
                    for (a, s) in acc.iter_mut().zip(self.s) {
                        *a ^= s;
                    }
                }
                self.next_u64();
            }
        }
        self.s = acc;
    }
}

impl RngCore for Xoshiro256PlusPlus {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

impl SeedableRng for Xoshiro256PlusPlus {
    fn seed_from_u64(seed: u64) -> Self {
        let mut mix = SplitMix64::new(seed);
        Self {
            s: [
                mix.next_u64(),
                mix.next_u64(),
                mix.next_u64(),
                mix.next_u64(),
            ],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference vector from the canonical C implementation of
    /// xoshiro256++ with state {1, 2, 3, 4} (prng.di.unimi.it).
    #[test]
    fn matches_reference_implementation() {
        let mut rng = Xoshiro256PlusPlus::from_state([1, 2, 3, 4]);
        let expected: [u64; 8] = [
            41943041,
            58720359,
            3588806011781223,
            3591011842654386,
            9228616714210784205,
            9973669472204895162,
            14011001112246962877,
            12406186145184390807,
        ];
        for e in expected {
            assert_eq!(rng.next_u64(), e);
        }
    }

    #[test]
    fn jump_leaves_disjoint_streams() {
        let mut a = Xoshiro256PlusPlus::seed_from_u64(5);
        let mut b = a.clone();
        b.jump();
        let overlap = (0..256).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(overlap < 4);
    }

    #[test]
    #[should_panic(expected = "all zero")]
    fn zero_state_rejected() {
        let _ = Xoshiro256PlusPlus::from_state([0; 4]);
    }
}
