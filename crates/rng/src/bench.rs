//! Minimal statistics-reporting bench harness (the `criterion` surface
//! the workspace uses, with `harness = false` bench targets).
//!
//! Each benchmark is calibrated (iteration count doubled until a probe
//! exceeds the calibration budget), warmed up by that probe, then timed
//! for N samples; the harness reports the **median** and **MAD** (median
//! absolute deviation) of per-iteration time — both robust to the odd
//! scheduler hiccup — and appends every result to `BENCH_<target>.json`
//! for cross-commit trajectory tracking.
//!
//! ```ignore
//! use incam_rng::bench::{criterion_group, criterion_main, Criterion};
//!
//! fn bench_sum(c: &mut Criterion) {
//!     let mut group = c.benchmark_group("sums");
//!     group.bench_function("naive", |b| {
//!         b.iter(|| (0..1000u64).sum::<u64>())
//!     });
//!     group.finish();
//! }
//!
//! criterion_group!(benches, bench_sum);
//! criterion_main!(benches);
//! ```
//!
//! Knobs: a positional CLI argument filters benchmarks by substring
//! (`cargo bench -p incam-bench --bench case_study_1 -- scan`);
//! `INCAM_BENCH_DIR` redirects the JSON output directory (default:
//! current directory); `INCAM_BENCH_SAMPLES` overrides every group's
//! sample count.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use crate::{criterion_group, criterion_main};

/// Default samples per benchmark (groups may override via
/// [`BenchmarkGroup::sample_size`]).
const DEFAULT_SAMPLE_SIZE: usize = 30;

/// Calibration probe budget: double iterations until one probe run
/// takes at least this long.
const CALIBRATION_BUDGET: Duration = Duration::from_millis(25);

/// Target wall time per sample.
const SAMPLE_TARGET: Duration = Duration::from_millis(10);

/// One measured benchmark.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Group name (e.g. `fig4c_vj_scan`).
    pub group: String,
    /// Benchmark name within the group (e.g. `scale_factor/1.25`).
    pub name: String,
    /// Median per-iteration time, nanoseconds.
    pub median_ns: f64,
    /// Median absolute deviation of per-iteration time, nanoseconds.
    pub mad_ns: f64,
    /// Number of timed samples.
    pub samples: usize,
    /// Iterations folded into each sample.
    pub iters_per_sample: u64,
}

/// The harness root: collects results from every group and writes the
/// JSON summary.
pub struct Criterion {
    target: String,
    filter: Option<String>,
    results: Vec<BenchResult>,
}

impl Criterion {
    /// Creates a harness for the named bench target, reading the filter
    /// from the command line (`cargo bench ... -- <substring>`).
    pub fn new(target: &str) -> Self {
        let filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with('-'))
            .filter(|a| !a.is_empty());
        Self {
            target: target.to_string(),
            filter,
            results: Vec::new(),
        }
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            sample_size: None,
        }
    }

    /// Prints the closing line and writes `BENCH_<target>.json`.
    pub fn final_summary(&mut self) {
        let dir = std::env::var("INCAM_BENCH_DIR").unwrap_or_else(|_| ".".to_string());
        let path = std::path::Path::new(&dir).join(format!("BENCH_{}.json", self.target));
        match std::fs::write(&path, self.to_json()) {
            Ok(()) => println!(
                "\n{} benchmark(s) -> {}",
                self.results.len(),
                path.display()
            ),
            Err(e) => eprintln!("warning: cannot write {}: {e}", path.display()),
        }
    }

    /// Renders all results as a JSON document (hand-rolled: the hermetic
    /// build has no serde).
    fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str("  \"harness\": \"incam-rng/bench\",\n");
        out.push_str(&format!("  \"target\": \"{}\",\n", self.target));
        out.push_str("  \"results\": [\n");
        for (i, r) in self.results.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"group\": \"{}\", \"name\": \"{}\", \"median_ns\": {:.1}, \
                 \"mad_ns\": {:.1}, \"samples\": {}, \"iters_per_sample\": {}}}{}\n",
                r.group,
                r.name,
                r.median_ns,
                r.mad_ns,
                r.samples,
                r.iters_per_sample,
                if i + 1 < self.results.len() { "," } else { "" }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }
}

/// A named set of benchmarks sharing a sample-size override.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample count for subsequent benchmarks in this
    /// group (use for expensive end-to-end benches).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = Some(n);
        self
    }

    /// Measures a benchmark identified by a plain name.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into().0;
        self.run(&id, &mut routine);
        self
    }

    /// Measures a parameterized benchmark; the closure receives the
    /// input by reference, criterion-style.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut routine: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into().0;
        self.run(&id, &mut |b: &mut Bencher| routine(b, input));
        self
    }

    /// Closes the group (all work already happened eagerly; this exists
    /// for criterion source compatibility).
    pub fn finish(self) {}

    fn run(&mut self, id: &str, routine: &mut dyn FnMut(&mut Bencher)) {
        let full = format!("{}/{}", self.name, id);
        if let Some(filter) = &self.criterion.filter {
            if !full.contains(filter.as_str()) {
                return;
            }
        }
        let samples = std::env::var("INCAM_BENCH_SAMPLES")
            .ok()
            .and_then(|v| v.parse().ok())
            .or(self.sample_size)
            .unwrap_or(DEFAULT_SAMPLE_SIZE);

        // Calibrate (doubling probes double as warmup: caches, branch
        // predictors, and lazily initialized state all get exercised).
        let mut bencher = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        loop {
            routine(&mut bencher);
            if bencher.elapsed >= CALIBRATION_BUDGET || bencher.iters >= 1 << 20 {
                break;
            }
            bencher.iters *= 2;
        }
        let per_iter_ns = bencher.elapsed.as_nanos() as f64 / bencher.iters as f64;
        let iters_per_sample =
            ((SAMPLE_TARGET.as_nanos() as f64 / per_iter_ns.max(1.0)) as u64).clamp(1, 1 << 24);

        let mut per_iter: Vec<f64> = Vec::with_capacity(samples);
        bencher.iters = iters_per_sample;
        for _ in 0..samples {
            routine(&mut bencher);
            per_iter.push(bencher.elapsed.as_nanos() as f64 / iters_per_sample as f64);
        }

        let med = median(&mut per_iter);
        let mut deviations: Vec<f64> = per_iter.iter().map(|&t| (t - med).abs()).collect();
        let mad = median(&mut deviations);

        println!(
            "{:<60} median {:>12}  mad {:>12}  ({} samples x {} iters)",
            full,
            human_ns(med),
            human_ns(mad),
            samples,
            iters_per_sample
        );
        self.criterion.results.push(BenchResult {
            group: self.name.clone(),
            name: id.to_string(),
            median_ns: med,
            mad_ns: mad,
            samples,
            iters_per_sample,
        });
    }
}

/// A benchmark identifier, optionally parameterized (`name/param`).
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// An identifier for one point of a parameter sweep.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        Self(format!("{}/{}", name.into(), parameter))
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        Self(name.to_string())
    }
}

/// Passed to the benchmark routine; [`Bencher::iter`] times the hot
/// closure for the harness-chosen iteration count.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `f` over the planned number of iterations. The closure's
    /// return value is passed through [`std::hint::black_box`] so the
    /// optimizer cannot delete the work.
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        let start = Instant::now();
        for _ in 0..self.iters {
            let _ = std::hint::black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn median(values: &mut [f64]) -> f64 {
    assert!(!values.is_empty());
    values.sort_by(|a, b| a.total_cmp(b));
    let mid = values.len() / 2;
    if values.len() % 2 == 1 {
        values[mid]
    } else {
        (values[mid - 1] + values[mid]) / 2.0
    }
}

fn human_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} us", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// Bundles benchmark functions into one registration function, exactly
/// like criterion's macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name(c: &mut $crate::bench::Criterion) {
            $( $target(c); )+
        }
    };
}

/// Generates `main` for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            let mut c = $crate::bench::Criterion::new(env!("CARGO_CRATE_NAME"));
            $( $group(&mut c); )+
            c.final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_and_mad() {
        let mut v = vec![3.0, 1.0, 2.0];
        assert_eq!(median(&mut v), 2.0);
        let mut v = vec![4.0, 1.0, 2.0, 3.0];
        assert_eq!(median(&mut v), 2.5);
    }

    #[test]
    fn bench_group_measures_and_records() {
        let mut c = Criterion {
            target: "selftest".to_string(),
            filter: None,
            results: Vec::new(),
        };
        {
            let mut group = c.benchmark_group("g");
            group.sample_size(3);
            group.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
            group.bench_with_input(BenchmarkId::new("sum_to", 50u64), &50u64, |b, &n| {
                b.iter(|| (0..n).sum::<u64>())
            });
            group.finish();
        }
        assert_eq!(c.results.len(), 2);
        assert_eq!(c.results[0].name, "sum");
        assert_eq!(c.results[1].name, "sum_to/50");
        assert!(c.results.iter().all(|r| r.median_ns > 0.0));
        let json = c.to_json();
        assert!(json.contains("\"group\": \"g\""));
        assert!(json.contains("sum_to/50"));
    }

    #[test]
    fn filter_skips_non_matching() {
        let mut c = Criterion {
            target: "selftest".to_string(),
            filter: Some("nomatch".to_string()),
            results: Vec::new(),
        };
        let mut group = c.benchmark_group("g");
        group.sample_size(2);
        group.bench_function("sum", |b| b.iter(|| 1u64 + 1));
        group.finish();
        assert!(c.results.is_empty());
    }

    #[test]
    fn human_units() {
        assert_eq!(human_ns(12.3), "12.3 ns");
        assert_eq!(human_ns(12_300.0), "12.300 us");
        assert_eq!(human_ns(12_300_000.0), "12.300 ms");
        assert_eq!(human_ns(2_500_000_000.0), "2.500 s");
    }
}
