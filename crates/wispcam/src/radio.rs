//! The backscatter uplink.
//!
//! WISPCam transmits by modulating its antenna's reflection of the
//! reader's carrier — backscatter costs picojoules per bit but offers only
//! tens to hundreds of kilobits per second. The radio model is a
//! [`incam_core::link::Link`] configured for that regime, plus helpers for
//! the payloads this pipeline sends (whole frames vs. a one-byte
//! authentication verdict — the bandwidth reduction that in-camera
//! processing buys).

use incam_core::link::Link;
use incam_core::units::{Bytes, BytesPerSec, Joules, Seconds};

/// A backscatter radio.
///
/// # Examples
///
/// ```
/// use incam_wispcam::radio::BackscatterRadio;
/// use incam_core::units::Bytes;
///
/// let radio = BackscatterRadio::wispcam_default();
/// let frame = Bytes::new(160.0 * 120.0);
/// let verdict = Bytes::new(1.0);
/// // shipping the raw frame costs orders of magnitude more than the verdict
/// let ratio = radio.transmit_energy(frame).joules()
///           / radio.transmit_energy(verdict).joules();
/// assert!(ratio > 10_000.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct BackscatterRadio {
    link: Link,
}

impl BackscatterRadio {
    /// Creates a radio with the given bit rate and per-bit energy.
    pub fn new(bits_per_sec: f64, energy_per_bit: Joules) -> Self {
        let link = Link::new(
            "backscatter",
            BytesPerSec::from_bits_per_sec(bits_per_sec),
            1.0,
        )
        .with_energy_per_bit(energy_per_bit);
        Self { link }
    }

    /// WISPCam-class defaults: 256 kb/s uplink at 60 pJ/bit.
    pub fn wispcam_default() -> Self {
        Self::new(256e3, Joules::from_pico(60.0))
    }

    /// The underlying link model.
    pub fn link(&self) -> &Link {
        &self.link
    }

    /// Energy to transmit a payload.
    pub fn transmit_energy(&self, payload: Bytes) -> Joules {
        self.link.upload_energy(payload)
    }

    /// Time to transmit a payload.
    pub fn transmit_time(&self, payload: Bytes) -> Seconds {
        self.link.upload_time(payload)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn energy_linear_in_payload() {
        let r = BackscatterRadio::wispcam_default();
        let e1 = r.transmit_energy(Bytes::new(100.0));
        let e2 = r.transmit_energy(Bytes::new(200.0));
        assert!((e2.joules() / e1.joules() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn frame_upload_takes_longer_than_frame_period() {
        // a QQVGA frame at 256 kb/s takes ~0.6 s: raw streaming at 1 FPS
        // leaves little slack, motivating in-camera filtering
        let r = BackscatterRadio::wispcam_default();
        let t = r.transmit_time(Bytes::new(19_200.0));
        assert!(t.secs() > 0.4 && t.secs() < 1.0, "took {}", t.secs());
    }

    #[test]
    fn per_bit_energy_applied() {
        let r = BackscatterRadio::new(1e6, Joules::from_pico(100.0));
        let e = r.transmit_energy(Bytes::new(1.0)); // 8 bits
        assert!((e.nanos() - 0.8).abs() < 1e-9);
    }
}
