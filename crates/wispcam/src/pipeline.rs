//! The end-to-end face-authentication pipeline (paper Fig. 2):
//! motion detection → face detection → NN face authentication, with every
//! block optional except the NN core, on either the multi-accelerator SoC
//! or a general-purpose MCU.
//!
//! The pipeline's energy story is the case study's headline: without the
//! optional filter blocks the NN must scan a dense window grid on every
//! frame; with them, idle frames cost almost nothing and the NN runs only
//! on detector-approved windows. Progressive filtering, not a better NN,
//! is what makes sub-mW continuous authentication possible.

use crate::mcu::McuModel;
use crate::radio::BackscatterRadio;
use crate::sensor::ImageSensor;
use incam_core::energy::EnergyBreakdown;
use incam_core::units::{Bytes, Fps, Joules, Watts};
use incam_imaging::image::GrayImage;
use incam_imaging::motion::MotionDetector;
use incam_imaging::resample::resize_bilinear;
use incam_imaging::scenes::LabeledFrame;
use incam_nn::eval::Confusion;
use incam_snnap::sim::SnnapAccelerator;
use incam_viola::hw::ViolaHwModel;
use incam_viola::scan::{scan, Detection, ScanParams};
use incam_viola::train::TrainedCascade;

/// Which hardware executes the pipeline's compute blocks.
#[derive(Debug, Clone)]
pub enum Substrate {
    /// The paper's multi-accelerator SoC (motion ASIC, VJ accelerator,
    /// SNNAP-style NN).
    Accelerators,
    /// A general-purpose MCU running everything in software — the paper's
    /// comparison baseline.
    Mcu(McuModel),
}

/// What the camera transmits per frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransmitPolicy {
    /// Ship the raw frame (the original WISPCam behaviour: all processing
    /// offloaded).
    RawFrame,
    /// Ship a one-byte authentication verdict (full in-camera processing).
    VerdictOnly,
}

/// Pipeline configuration: which optional blocks run and on what.
#[derive(Debug, Clone)]
pub struct FaPipelineConfig {
    /// Enable the motion-detection optional block.
    pub motion_detection: bool,
    /// Enable the Viola-Jones face-detection optional block.
    pub face_detection: bool,
    /// Compute substrate.
    pub substrate: Substrate,
    /// Uplink payload policy.
    pub transmit: TransmitPolicy,
    /// NN decision threshold.
    pub auth_threshold: f32,
    /// NN input window side (the authenticator's `20×20`).
    pub nn_input_side: usize,
    /// Window stride of the dense NN grid used when face detection is
    /// disabled.
    pub grid_stride: usize,
    /// Window sides of the dense NN grid.
    pub grid_sides: Vec<usize>,
    /// Cap on NN evaluations per frame when face detection is enabled.
    pub max_detections_scored: usize,
    /// Motion-ASIC energy per pixel-op, picojoules.
    pub motion_pj_per_op: f64,
}

impl FaPipelineConfig {
    /// The paper's full pipeline on accelerators: MD + FD + NN, verdict
    /// uplink.
    pub fn full_accelerated() -> Self {
        Self {
            motion_detection: true,
            face_detection: true,
            substrate: Substrate::Accelerators,
            transmit: TransmitPolicy::VerdictOnly,
            auth_threshold: 0.45,
            nn_input_side: 20,
            grid_stride: 4,
            grid_sides: vec![20, 24, 32, 44],
            max_detections_scored: 4,
            motion_pj_per_op: 0.05,
        }
    }

    /// Disables the named optional blocks relative to
    /// [`FaPipelineConfig::full_accelerated`].
    #[must_use]
    pub fn with_blocks(mut self, motion: bool, face_detection: bool) -> Self {
        self.motion_detection = motion;
        self.face_detection = face_detection;
        self
    }

    /// Switches the compute substrate.
    #[must_use]
    pub fn on_substrate(mut self, substrate: Substrate) -> Self {
        self.substrate = substrate;
        self
    }

    /// Short label like `MD+FD+NN` for reports.
    pub fn label(&self) -> String {
        let mut parts = Vec::new();
        if self.motion_detection {
            parts.push("MD");
        }
        if self.face_detection {
            parts.push("FD");
        }
        parts.push("NN");
        let hw = match self.substrate {
            Substrate::Accelerators => "accel",
            Substrate::Mcu(_) => "MCU",
        };
        format!("{} ({hw})", parts.join("+"))
    }
}

/// One frame's energy draw, itemized by pipeline block.
///
/// The ordering of [`BlockEnergies::as_array`] is the execution order —
/// sensor first, radio last — which is what lets a degraded platform
/// simulation checkpoint a frame *between* blocks and resume after a
/// power loss (see `runtime`).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct BlockEnergies {
    /// Image-sensor capture.
    pub sensor: Joules,
    /// Motion-detection optional block (zero when disabled).
    pub motion: Joules,
    /// Viola-Jones face-detection optional block (zero when disabled or
    /// gated off by motion).
    pub detect: Joules,
    /// NN authentication inferences.
    pub nn: Joules,
    /// Backscatter radio transmission.
    pub radio: Joules,
}

impl BlockEnergies {
    /// Human-readable block names, matching [`BlockEnergies::as_array`].
    pub const NAMES: [&'static str; 5] = ["sensor", "motion", "detect", "nn", "radio"];

    /// The blocks in execution order.
    pub fn as_array(&self) -> [Joules; 5] {
        [self.sensor, self.motion, self.detect, self.nn, self.radio]
    }

    /// Total energy across all blocks.
    pub fn total(&self) -> Joules {
        self.sensor + self.motion + self.detect + self.nn + self.radio
    }
}

/// Per-frame outcome.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FrameOutcome {
    /// Motion detector fired (or was disabled).
    pub motion: bool,
    /// The face-detection block ran.
    pub scanned: bool,
    /// NN inferences executed on this frame.
    pub windows_scored: usize,
    /// Authentication verdict.
    pub authenticated: bool,
    /// Total energy drawn for this frame.
    pub energy: Joules,
    /// The same energy itemized by block, in execution order.
    pub blocks: BlockEnergies,
}

/// Aggregate results of running a pipeline over a frame stream.
#[derive(Debug, Clone)]
pub struct RunSummary {
    /// Configuration label.
    pub label: String,
    /// Frames processed.
    pub frames: usize,
    /// Frames where motion gated further processing *off*.
    pub frames_gated_by_motion: usize,
    /// Frames the detector scanned.
    pub frames_scanned: usize,
    /// Total NN inferences.
    pub windows_scored: usize,
    /// Frame-level authentication confusion vs. ground truth.
    pub confusion: Confusion,
    /// Enrolled walk-through events (runs of consecutive frames with the
    /// enrolled face visible).
    pub enrolled_events: usize,
    /// Events authenticated on at least one frame — the security-level
    /// detection the paper's "0 % true miss rate" refers to.
    pub enrolled_events_detected: usize,
    /// Itemized energy across the run.
    pub energy: EnergyBreakdown,
    /// Total energy drawn.
    pub total_energy: Joules,
}

impl RunSummary {
    /// Mean energy per frame.
    pub fn energy_per_frame(&self) -> Joules {
        self.total_energy / self.frames as f64
    }

    /// Fraction of enrolled walk-throughs that were never authenticated.
    pub fn event_miss_rate(&self) -> f64 {
        if self.enrolled_events == 0 {
            return 0.0;
        }
        1.0 - self.enrolled_events_detected as f64 / self.enrolled_events as f64
    }

    /// Average power at the given capture rate.
    pub fn average_power(&self, rate: Fps) -> Watts {
        self.energy_per_frame() * rate
    }
}

/// The assembled pipeline: blocks plus platform cost models.
#[derive(Debug, Clone)]
pub struct FaPipeline {
    config: FaPipelineConfig,
    sensor: ImageSensor,
    radio: BackscatterRadio,
    detector: Option<TrainedCascade>,
    scan_params: ScanParams,
    viola_hw: ViolaHwModel,
    authenticator: SnnapAccelerator,
    motion: MotionDetector,
}

impl FaPipeline {
    /// Assembles a pipeline.
    ///
    /// `detector` may be `None` only when `config.face_detection` is
    /// false.
    ///
    /// # Panics
    ///
    /// Panics if face detection is enabled without a detector, or the
    /// authenticator's input width is not `nn_input_side²`.
    pub fn new(
        config: FaPipelineConfig,
        sensor: ImageSensor,
        radio: BackscatterRadio,
        detector: Option<TrainedCascade>,
        scan_params: ScanParams,
        authenticator: SnnapAccelerator,
    ) -> Self {
        assert!(
            !config.face_detection || detector.is_some(),
            "face detection enabled but no cascade supplied"
        );
        assert_eq!(
            authenticator.topology().inputs(),
            config.nn_input_side * config.nn_input_side,
            "authenticator input width must match nn_input_side²"
        );
        Self {
            config,
            sensor,
            radio,
            detector,
            scan_params,
            viola_hw: ViolaHwModel::default(),
            authenticator,
            motion: MotionDetector::new(0.08, 0.01),
        }
    }

    /// The pipeline's configuration.
    pub fn config(&self) -> &FaPipelineConfig {
        &self.config
    }

    /// Scores one window with the authenticator, returning the NN output.
    fn score_window(&self, frame: &GrayImage, det: &Detection) -> f32 {
        let (w, h) = frame.dims();
        let side = det.side.min(w).min(h);
        let x = det.x.min(w.saturating_sub(side));
        let y = det.y.min(h.saturating_sub(side));
        let crop = frame.crop(x, y, side, side);
        let window = resize_bilinear(&crop, self.config.nn_input_side, self.config.nn_input_side);
        self.authenticator.infer(&window.to_vec_f32()).0
    }

    /// Scores a detection with small alignment jitter (the detector's box
    /// wobbles by a couple of pixels/one scale step around the face) and
    /// returns the best score plus the number of inferences spent.
    fn score_detection_jittered(&self, frame: &GrayImage, det: &Detection) -> (f32, usize) {
        // a small cross of alignment offsets at the detection's own scale;
        // searching a larger transform space and max-pooling would let any
        // face find *some* geometry that matches the enrollee
        let jitter = (det.side as isize / 8).max(1);
        let offsets = [(0, 0), (-jitter, 0), (jitter, 0), (0, -jitter), (0, jitter)];
        let mut best = 0.0f32;
        for (dx, dy) in offsets {
            let x = (det.x as isize + dx).max(0) as usize;
            let y = (det.y as isize + dy).max(0) as usize;
            let score = self.score_window(
                frame,
                &Detection {
                    x,
                    y,
                    side: det.side,
                },
            );
            if score > best {
                best = score;
            }
        }
        (best, offsets.len())
    }

    /// Candidate windows when no detector filters them: a dense grid.
    fn grid_windows(&self, frame: &GrayImage) -> Vec<Detection> {
        let (w, h) = frame.dims();
        let mut windows = Vec::new();
        for &side in &self.config.grid_sides {
            if side > w || side > h {
                continue;
            }
            let stride = self.config.grid_stride.max(1);
            let mut y = 0;
            while y + side <= h {
                let mut x = 0;
                while x + side <= w {
                    windows.push(Detection { x, y, side });
                    x += stride;
                }
                y += stride;
            }
        }
        windows
    }

    /// Runs the pipeline over a frame stream and aggregates results.
    pub fn run(&mut self, frames: &[LabeledFrame]) -> RunSummary {
        self.run_trace(frames).0
    }

    /// Like [`FaPipeline::run`], additionally returning the per-frame
    /// outcomes (each frame's energy draw and verdict) — the trace the
    /// harvested-energy platform simulation consumes.
    pub fn run_trace(&mut self, frames: &[LabeledFrame]) -> (RunSummary, Vec<FrameOutcome>) {
        assert!(!frames.is_empty(), "need at least one frame");
        let mut energy = EnergyBreakdown::new(self.config.label());
        let mut e_sensor = Joules::ZERO;
        let mut e_motion = Joules::ZERO;
        let mut e_detect = Joules::ZERO;
        let mut e_nn = Joules::ZERO;
        let mut e_radio = Joules::ZERO;
        let mut gated = 0usize;
        let mut scanned_frames = 0usize;
        let mut windows_scored = 0usize;
        let mut confusion = Confusion::default();
        let mut enrolled_events = 0usize;
        let mut enrolled_events_detected = 0usize;
        let mut in_event = false;
        let mut event_hit = false;
        let mut outcomes = Vec::with_capacity(frames.len());
        self.motion.reset();

        for frame in frames {
            let img = &frame.image;
            let before = BlockEnergies {
                sensor: e_sensor,
                motion: e_motion,
                detect: e_detect,
                nn: e_nn,
                radio: e_radio,
            };
            let windows_before = windows_scored;
            let scanned_before = scanned_frames;
            e_sensor += self.sensor.capture_energy();

            // ---- optional block: motion detection -----------------------
            let motion = if self.config.motion_detection {
                let fired = self.motion.observe(img);
                let ops = MotionDetector::ops_per_frame(img.width(), img.height());
                e_motion += match &self.config.substrate {
                    Substrate::Accelerators => {
                        Joules::from_pico(self.config.motion_pj_per_op * ops as f64)
                    }
                    Substrate::Mcu(mcu) => mcu.run_diff(img.len() as u64).0,
                };
                fired
            } else {
                true
            };

            let mut authenticated = false;
            if motion {
                // ---- optional block: face detection ---------------------
                let candidates: Vec<Detection> = if self.config.face_detection {
                    let cascade = &self
                        .detector
                        .as_ref()
                        .expect("validated at construction") // incam-lint: allow(fallible-unwrap) — validated by the builder before the pipeline is handed out
                        .cascade;
                    let result = scan(cascade, img, &self.scan_params);
                    scanned_frames += 1;
                    e_detect += match &self.config.substrate {
                        Substrate::Accelerators => {
                            self.viola_hw.scan_cost(&result.stats, img.len()).energy
                        }
                        Substrate::Mcu(mcu) => mcu.run_haar(result.stats.features).0,
                    };
                    result
                        .detections
                        .into_iter()
                        .take(self.config.max_detections_scored)
                        .collect()
                } else {
                    self.grid_windows(img)
                };

                // ---- core block: NN face authentication -----------------
                for det in &candidates {
                    // detector-filtered candidates get jittered scoring (a
                    // handful of inferences); the dense no-detector grid is
                    // already exhaustive and scores each window once
                    let (score, inferences) = if self.config.face_detection {
                        self.score_detection_jittered(img, det)
                    } else {
                        (self.score_window(img, det), 1)
                    };
                    windows_scored += inferences;
                    let per_inference = match &self.config.substrate {
                        Substrate::Accelerators => self.authenticator.energy_per_inference(),
                        Substrate::Mcu(mcu) => {
                            mcu.run_macs(self.authenticator.schedule().total_macs()).0
                        }
                    };
                    e_nn += per_inference * inferences as f64;
                    if score >= self.config.auth_threshold {
                        authenticated = true;
                    }
                }
            } else {
                gated += 1;
            }

            // ---- communication --------------------------------------
            e_radio += match self.config.transmit {
                TransmitPolicy::RawFrame => self
                    .radio
                    .transmit_energy(Bytes::new(self.sensor.frame_bytes() as f64)),
                TransmitPolicy::VerdictOnly => self.radio.transmit_energy(Bytes::new(1.0)),
            };

            let truth_positive = frame.truth.identity == Some(0) && frame.truth.face_box.is_some();
            confusion.record(authenticated, truth_positive);
            let blocks = BlockEnergies {
                sensor: e_sensor - before.sensor,
                motion: e_motion - before.motion,
                detect: e_detect - before.detect,
                nn: e_nn - before.nn,
                radio: e_radio - before.radio,
            };
            // summed the same way as before the per-block itemization so
            // fault-free traces stay bit-identical
            let energy = (e_sensor + e_motion + e_detect + e_nn + e_radio) - before.total();
            outcomes.push(FrameOutcome {
                motion,
                scanned: scanned_frames > scanned_before,
                windows_scored: windows_scored - windows_before,
                authenticated,
                energy,
                blocks,
            });

            // event accounting: a run of positive frames is one walk-through
            if truth_positive {
                if !in_event {
                    in_event = true;
                    event_hit = false;
                    enrolled_events += 1;
                }
                event_hit |= authenticated;
            } else if in_event {
                in_event = false;
                if event_hit {
                    enrolled_events_detected += 1;
                }
            }
        }
        if in_event && event_hit {
            enrolled_events_detected += 1;
        }

        energy.add("sensor", e_sensor);
        if self.config.motion_detection {
            energy.add("motion detection", e_motion);
        }
        if self.config.face_detection {
            energy.add("face detection", e_detect);
        }
        energy.add("NN authentication", e_nn);
        energy.add("radio", e_radio);
        let total_energy = energy.total();

        let summary = RunSummary {
            label: self.config.label(),
            frames: frames.len(),
            frames_gated_by_motion: gated,
            frames_scanned: scanned_frames,
            windows_scored,
            confusion,
            enrolled_events,
            enrolled_events_detected,
            energy,
            total_energy,
        };
        (summary, outcomes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use incam_imaging::faces::{render_face, render_non_face, Identity, Nuisance};
    use incam_imaging::scenes::{SecurityScene, SecuritySceneConfig};
    use incam_nn::mlp::Mlp;
    use incam_nn::topology::Topology;
    use incam_nn::train::{train, TrainConfig, TrainingSet};
    use incam_rng::rngs::StdRng;
    use incam_rng::SeedableRng;
    use incam_snnap::config::SnnapConfig;
    use incam_viola::train::{train_cascade, CascadeTrainConfig};

    /// Trains a quick authenticator for `enrolled` vs a small cast.
    fn quick_authenticator(
        enrolled: &Identity,
        impostors: &[Identity],
        rng: &mut StdRng,
    ) -> SnnapAccelerator {
        let mut inputs = Vec::new();
        let mut targets = Vec::new();
        for _ in 0..60 {
            let nz = Nuisance::sample(rng, 0.35);
            let f = render_face(enrolled, &nz, 24, rng);
            inputs.push(resize_bilinear(&f, 20, 20).to_vec_f32());
            targets.push(vec![1.0]);
        }
        for id in impostors {
            for _ in 0..20 {
                let nz = Nuisance::sample(rng, 0.35);
                let f = render_face(id, &nz, 24, rng);
                inputs.push(resize_bilinear(&f, 20, 20).to_vec_f32());
                targets.push(vec![0.0]);
            }
        }
        let data = TrainingSet::new(inputs, targets);
        let mut net = Mlp::random(Topology::paper_default(), rng);
        train(
            &mut net,
            &data,
            &TrainConfig {
                learning_rate: 0.05,
                momentum: 0.9,
                max_epochs: 40,
                target_mse: 0.02,
            },
            rng,
        );
        SnnapAccelerator::new(&net, SnnapConfig::paper_default())
    }

    fn quick_detector(rng: &mut StdRng) -> TrainedCascade {
        let pos: Vec<_> = (0..60)
            .map(|_| {
                let id = Identity::sample(rng);
                render_face(&id, &Nuisance::sample(rng, 0.25), 16, rng)
            })
            .collect();
        let neg: Vec<_> = (0..120).map(|_| render_non_face(16, rng)).collect();
        train_cascade(&pos, &neg, &CascadeTrainConfig::fast())
    }

    fn build_pipeline(
        config: FaPipelineConfig,
        scene: &SecurityScene<StdRng>,
        rng: &mut StdRng,
    ) -> FaPipeline {
        let auth = quick_authenticator(scene.enrolled(), &scene.cast()[1..], rng);
        let detector = config.face_detection.then(|| quick_detector(rng));
        FaPipeline::new(
            config,
            ImageSensor::wispcam_default(),
            BackscatterRadio::wispcam_default(),
            detector,
            ScanParams::default(),
            auth,
        )
    }

    fn test_scene(seed: u64) -> SecurityScene<StdRng> {
        SecurityScene::new(
            SecuritySceneConfig {
                event_rate: 0.08,
                ..Default::default()
            },
            StdRng::seed_from_u64(seed),
        )
    }

    #[test]
    fn filtering_blocks_cut_energy() {
        let mut rng = StdRng::seed_from_u64(51);
        let mut scene = test_scene(52);
        let frames = scene.frames(60);

        let mut full = build_pipeline(FaPipelineConfig::full_accelerated(), &scene, &mut rng);
        let mut nn_only = build_pipeline(
            FaPipelineConfig::full_accelerated().with_blocks(false, false),
            &scene,
            &mut rng,
        );
        let s_full = full.run(&frames);
        let s_nn = nn_only.run(&frames);
        assert!(
            s_full.total_energy < s_nn.total_energy,
            "full {} vs nn-only {}",
            s_full.total_energy.human(),
            s_nn.total_energy.human()
        );
        // the dense grid must be much more NN work
        assert!(s_nn.windows_scored > 20 * s_full.windows_scored.max(1));
    }

    #[test]
    fn motion_gates_idle_frames() {
        let mut rng = StdRng::seed_from_u64(53);
        let mut scene = SecurityScene::new(
            SecuritySceneConfig {
                event_rate: 0.0,
                sensor_noise: 0.0,
                ..Default::default()
            },
            StdRng::seed_from_u64(54),
        );
        let frames = scene.frames(20);
        let mut p = build_pipeline(FaPipelineConfig::full_accelerated(), &scene, &mut rng);
        let s = p.run(&frames);
        // static scene: everything after the first frame is gated
        assert!(s.frames_gated_by_motion >= 19);
        assert_eq!(s.frames_scanned, 0);
    }

    #[test]
    fn accelerators_beat_mcu_substrate() {
        let mut rng = StdRng::seed_from_u64(55);
        let mut scene = test_scene(56);
        let frames = scene.frames(40);
        let mut accel = build_pipeline(FaPipelineConfig::full_accelerated(), &scene, &mut rng);
        let mut mcu = build_pipeline(
            FaPipelineConfig::full_accelerated()
                .on_substrate(Substrate::Mcu(McuModel::cortex_m_class())),
            &scene,
            &mut rng,
        );
        let s_accel = accel.run(&frames);
        let s_mcu = mcu.run(&frames);
        // sensor and radio are identical; the comparison is the compute
        // blocks (motion detection + face detection + NN)
        let compute = |s: &RunSummary| -> f64 {
            s.energy
                .items()
                .iter()
                .filter(|i| i.name != "sensor" && i.name != "radio")
                .map(|i| i.energy.joules())
                .sum()
        };
        assert!(
            compute(&s_mcu) > 5.0 * compute(&s_accel),
            "accel compute {} mcu compute {}",
            compute(&s_accel),
            compute(&s_mcu)
        );
    }

    #[test]
    fn full_pipeline_is_sub_milliwatt_at_one_fps() {
        let mut rng = StdRng::seed_from_u64(57);
        let mut scene = test_scene(58);
        let frames = scene.frames(60);
        let mut p = build_pipeline(FaPipelineConfig::full_accelerated(), &scene, &mut rng);
        let s = p.run(&frames);
        let power = s.average_power(Fps::new(1.0));
        assert!(power.milliwatts() < 1.0, "power {}", power.human());
    }

    #[test]
    fn raw_frame_transmission_dominates_verdict() {
        let mut rng = StdRng::seed_from_u64(59);
        let mut scene = test_scene(60);
        let frames = scene.frames(20);
        let mut verdict = build_pipeline(FaPipelineConfig::full_accelerated(), &scene, &mut rng);
        let mut raw_cfg = FaPipelineConfig::full_accelerated();
        raw_cfg.transmit = TransmitPolicy::RawFrame;
        let mut raw = build_pipeline(raw_cfg, &scene, &mut rng);
        let s_v = verdict.run(&frames);
        let s_r = raw.run(&frames);
        let radio_v = s_v
            .energy
            .items()
            .iter()
            .find(|i| i.name == "radio")
            .unwrap()
            .energy;
        let radio_r = s_r
            .energy
            .items()
            .iter()
            .find(|i| i.name == "radio")
            .unwrap()
            .energy;
        assert!(radio_r.joules() > 1000.0 * radio_v.joules());
    }

    #[test]
    #[should_panic(expected = "no cascade")]
    fn face_detection_requires_cascade() {
        let mut rng = StdRng::seed_from_u64(61);
        let id = Identity::sample(&mut rng);
        let auth = quick_authenticator(&id, &[], &mut rng);
        let _ = FaPipeline::new(
            FaPipelineConfig::full_accelerated(),
            ImageSensor::wispcam_default(),
            BackscatterRadio::wispcam_default(),
            None,
            ScanParams::default(),
            auth,
        );
    }
}
