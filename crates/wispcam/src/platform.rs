//! The duty-cycled harvested-energy platform simulation.
//!
//! WISPCam charges its capacitor from the RF field, captures a frame when
//! enough energy is banked, and browns out if a frame's processing draws
//! more than is stored. [`WispCamPlatform::simulate`] runs that loop
//! against a per-frame energy cost and reports the achieved frame rate —
//! the feasibility check behind the paper's claim that the accelerated
//! pipeline runs continuously on harvested power.

use crate::capacitor::Capacitor;
use crate::harvester::RfHarvester;
use incam_core::units::{Fps, Joules, Seconds, Watts};

/// The harvesting platform: RF front-end plus storage.
#[derive(Debug, Clone, PartialEq)]
pub struct WispCamPlatform {
    harvester: RfHarvester,
    capacitor: Capacitor,
}

/// Outcome of a platform simulation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimulationReport {
    /// Frame periods simulated.
    pub periods: usize,
    /// Frames successfully captured and processed.
    pub frames_processed: usize,
    /// Frame periods skipped because the capacitor lacked energy.
    pub brownouts: usize,
    /// Achieved average frame rate.
    pub achieved_fps: Fps,
    /// Total energy harvested.
    pub harvested: Joules,
    /// Total energy consumed by frames.
    pub consumed: Joules,
}

impl WispCamPlatform {
    /// Creates a platform.
    pub fn new(harvester: RfHarvester, capacitor: Capacitor) -> Self {
        Self {
            harvester,
            capacitor,
        }
    }

    /// The WISPCam-class defaults.
    pub fn wispcam_default() -> Self {
        Self::new(RfHarvester::wispcam_default(), Capacitor::wispcam_default())
    }

    /// The harvester.
    pub fn harvester(&self) -> &RfHarvester {
        &self.harvester
    }

    /// Mutable harvester access (e.g. to change distance).
    pub fn harvester_mut(&mut self) -> &mut RfHarvester {
        &mut self.harvester
    }

    /// The storage capacitor.
    pub fn capacitor(&self) -> &Capacitor {
        &self.capacitor
    }

    /// Mutable capacitor access (used by the degraded runtime, which
    /// drives the charge/draw loop itself at block granularity).
    pub fn capacitor_mut(&mut self) -> &mut Capacitor {
        &mut self.capacitor
    }

    /// The steady-state frame rate a per-frame cost can sustain on the
    /// current harvest power (ignoring capacitor granularity).
    ///
    /// # Examples
    ///
    /// ```
    /// use incam_core::units::Joules;
    /// use incam_wispcam::platform::WispCamPlatform;
    ///
    /// let p = WispCamPlatform::wispcam_default();
    /// let fps = p.sustainable_fps(Joules::from_micro(40.0));
    /// assert!(fps.fps() > 1.0); // 1 FPS face authentication is feasible
    /// ```
    pub fn sustainable_fps(&self, energy_per_frame: Joules) -> Fps {
        Fps::new(self.harvester.output_power().watts() / energy_per_frame.joules())
    }

    /// Simulates `periods` frame periods at `target_fps`, drawing
    /// `energy_per_frame` per captured frame. A period browns out (no
    /// frame) when the stored energy is insufficient; harvesting continues
    /// regardless.
    ///
    /// # Panics
    ///
    /// Panics if `target_fps` or `energy_per_frame` is non-positive.
    pub fn simulate(
        &mut self,
        periods: usize,
        target_fps: Fps,
        energy_per_frame: Joules,
    ) -> SimulationReport {
        assert!(target_fps.fps() > 0.0, "frame rate must be positive");
        assert!(
            energy_per_frame.joules() > 0.0,
            "frame energy must be positive"
        );
        let period = Seconds::new(1.0 / target_fps.fps());
        let mut processed = 0usize;
        let mut brownouts = 0usize;
        let mut harvested = Joules::ZERO;
        let mut consumed = Joules::ZERO;
        for _ in 0..periods {
            let e = self.harvester.harvest(period);
            harvested += self.capacitor.charge(e);
            if self.capacitor.try_draw(energy_per_frame) {
                processed += 1;
                consumed += energy_per_frame;
            } else {
                brownouts += 1;
            }
        }
        let elapsed = period * periods as f64;
        SimulationReport {
            periods,
            frames_processed: processed,
            brownouts,
            achieved_fps: Fps::new(processed as f64 / elapsed.secs()),
            harvested,
            consumed,
        }
    }

    /// Simulates a trace of *per-frame* energies (e.g. from
    /// [`FaPipeline::run_trace`](crate::pipeline::FaPipeline::run_trace)): event frames
    /// cost more than gated idle frames, so the capacitor sees bursty
    /// draw rather than the average.
    ///
    /// # Panics
    ///
    /// Panics if the trace is empty or `target_fps` is non-positive.
    pub fn simulate_trace(
        &mut self,
        frame_energies: &[Joules],
        target_fps: Fps,
    ) -> SimulationReport {
        assert!(!frame_energies.is_empty(), "trace must be non-empty");
        assert!(target_fps.fps() > 0.0, "frame rate must be positive");
        let period = Seconds::new(1.0 / target_fps.fps());
        let mut processed = 0usize;
        let mut brownouts = 0usize;
        let mut harvested = Joules::ZERO;
        let mut consumed = Joules::ZERO;
        for &energy in frame_energies {
            let e = self.harvester.harvest(period);
            harvested += self.capacitor.charge(e);
            if energy.joules() <= 0.0 || self.capacitor.try_draw(energy) {
                processed += 1;
                consumed += energy.max(Joules::ZERO);
            } else {
                brownouts += 1;
            }
        }
        let elapsed = period * frame_energies.len() as f64;
        SimulationReport {
            periods: frame_energies.len(),
            frames_processed: processed,
            brownouts,
            achieved_fps: Fps::new(processed as f64 / elapsed.secs()),
            harvested,
            consumed,
        }
    }

    /// Harvest power needed to sustain a configuration at a frame rate.
    pub fn required_power(energy_per_frame: Joules, rate: Fps) -> Watts {
        energy_per_frame * rate
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cheap_pipeline_sustains_target_rate() {
        let mut p = WispCamPlatform::wispcam_default();
        // 40 uJ/frame on ~400 uW harvest: easily 1 FPS
        let report = p.simulate(200, Fps::new(1.0), Joules::from_micro(40.0));
        assert_eq!(report.brownouts, 0);
        assert!((report.achieved_fps.fps() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn expensive_pipeline_browns_out() {
        let mut p = WispCamPlatform::wispcam_default();
        // 4 mJ/frame on ~400 uW harvest: ~0.1 FPS max
        let report = p.simulate(300, Fps::new(1.0), Joules::from_milli(4.0));
        assert!(report.brownouts > 200, "brownouts {}", report.brownouts);
        assert!(report.achieved_fps.fps() < 0.2);
        // duty cycling still processes some frames
        assert!(report.frames_processed > 5);
    }

    #[test]
    fn distance_reduces_achievable_rate() {
        let mut near = WispCamPlatform::wispcam_default();
        let mut far = WispCamPlatform::wispcam_default();
        far.harvester_mut().set_distance(3.0);
        let e = Joules::from_micro(300.0);
        let r_near = near.simulate(200, Fps::new(1.0), e);
        let r_far = far.simulate(200, Fps::new(1.0), e);
        assert!(r_near.frames_processed > r_far.frames_processed);
    }

    #[test]
    fn sustainable_fps_matches_simulation() {
        let mut p = WispCamPlatform::wispcam_default();
        let e = Joules::from_micro(100.0);
        let sustainable = p.sustainable_fps(e);
        // simulate well above the sustainable rate: achieved ~= sustainable
        let report = p.simulate(2000, Fps::new(sustainable.fps() * 3.0), e);
        let ratio = report.achieved_fps.fps() / sustainable.fps();
        assert!((0.8..1.2).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn energy_conservation() {
        let mut p = WispCamPlatform::wispcam_default();
        let report = p.simulate(100, Fps::new(1.0), Joules::from_micro(200.0));
        // consumed cannot exceed harvested plus initial store (zero)
        assert!(report.consumed.joules() <= report.harvested.joules() + 1e-12);
    }
}
