//! The storage capacitor that buffers harvested energy.
//!
//! WISPCam captures a frame only once its internal capacitor has charged;
//! processing and transmission then draw the stored energy back down. The
//! model tracks stored energy between a minimum operating voltage (below
//! which the regulator browns out) and the rated maximum.

use incam_core::units::Joules;

/// An energy-storage capacitor with usable-window accounting.
///
/// # Examples
///
/// ```
/// use incam_wispcam::capacitor::Capacitor;
/// use incam_core::units::Joules;
///
/// let mut cap = Capacitor::new(1e-3, 4.5, 1.8); // 1 mF, 4.5 V max, 1.8 V min
/// cap.charge(Joules::from_milli(2.0));
/// assert!(cap.stored().millis() > 0.0);
/// assert!(cap.try_draw(Joules::from_milli(1.0)));
/// assert!(!cap.try_draw(Joules::new(1.0))); // more than stored
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Capacitor {
    capacitance: f64,
    v_max: f64,
    v_min: f64,
    /// Usable stored energy above the brown-out threshold.
    stored: Joules,
}

impl Capacitor {
    /// Creates an empty capacitor.
    ///
    /// # Panics
    ///
    /// Panics if `capacitance` is non-positive or `v_max <= v_min` or
    /// `v_min < 0`.
    pub fn new(capacitance: f64, v_max: f64, v_min: f64) -> Self {
        assert!(capacitance > 0.0, "capacitance must be positive");
        assert!(v_max > v_min && v_min >= 0.0, "need v_max > v_min >= 0");
        Self {
            capacitance,
            v_max,
            v_min,
            stored: Joules::ZERO,
        }
    }

    /// The WISPCam-class storage: 6 mF charged between 1.8 V and 4.5 V
    /// (~52 mJ usable).
    pub fn wispcam_default() -> Self {
        Self::new(6e-3, 4.5, 1.8)
    }

    /// Maximum usable energy (`C·(v_max² − v_min²)/2`).
    pub fn capacity(&self) -> Joules {
        Joules::new(self.capacitance * (self.v_max * self.v_max - self.v_min * self.v_min) / 2.0)
    }

    /// Currently stored usable energy.
    pub fn stored(&self) -> Joules {
        self.stored
    }

    /// Fraction of capacity currently stored.
    pub fn fill(&self) -> f64 {
        self.stored / self.capacity()
    }

    /// Current terminal voltage implied by the stored energy.
    pub fn voltage(&self) -> f64 {
        (self.v_min * self.v_min + 2.0 * self.stored.joules() / self.capacitance).sqrt()
    }

    /// Adds harvested energy, saturating at capacity. Returns the energy
    /// actually absorbed.
    pub fn charge(&mut self, energy: Joules) -> Joules {
        let space = self.capacity() - self.stored;
        let absorbed = energy.min(space);
        self.stored += absorbed;
        absorbed
    }

    /// Draws energy if available; returns `false` (drawing nothing) when
    /// the request exceeds the stored energy — a brown-out.
    pub fn try_draw(&mut self, energy: Joules) -> bool {
        if energy > self.stored {
            return false;
        }
        self.stored -= energy;
        true
    }

    /// Empties the capacitor to the brown-out threshold.
    pub fn drain(&mut self) {
        self.stored = Joules::ZERO;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity_formula() {
        let cap = Capacitor::new(1e-3, 3.0, 1.0);
        // 0.5e-3 * (9 - 1) / ... = 4 mJ
        assert!((cap.capacity().millis() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn charge_saturates() {
        let mut cap = Capacitor::new(1e-3, 3.0, 1.0);
        let absorbed = cap.charge(Joules::new(1.0));
        assert!((absorbed.millis() - 4.0).abs() < 1e-9);
        assert!((cap.fill() - 1.0).abs() < 1e-12);
        assert_eq!(cap.charge(Joules::new(1.0)), Joules::ZERO);
    }

    #[test]
    fn draw_and_brownout() {
        let mut cap = Capacitor::new(1e-3, 3.0, 1.0);
        cap.charge(Joules::from_milli(2.0));
        assert!(cap.try_draw(Joules::from_milli(1.5)));
        assert!(!cap.try_draw(Joules::from_milli(1.0)));
        assert!((cap.stored().millis() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn voltage_tracks_energy() {
        let mut cap = Capacitor::new(1e-3, 3.0, 1.0);
        assert!((cap.voltage() - 1.0).abs() < 1e-9);
        cap.charge(cap.capacity());
        assert!((cap.voltage() - 3.0).abs() < 1e-9);
    }

    #[test]
    fn wispcam_default_tens_of_millijoules() {
        let cap = Capacitor::wispcam_default();
        assert!(cap.capacity().millis() > 20.0 && cap.capacity().millis() < 100.0);
    }

    #[test]
    #[should_panic(expected = "v_max")]
    fn inverted_voltages_rejected() {
        let _ = Capacitor::new(1e-3, 1.0, 3.0);
    }
}
