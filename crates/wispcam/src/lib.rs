//! # incam-wispcam — the battery-free face-authentication camera
//!
//! The paper's first case study (§III): a WISPCam-class camera running
//! continuous face authentication entirely on harvested RF energy. This
//! crate provides the platform substrate — RF harvester ([`harvester`]),
//! storage capacitor ([`capacitor`]), image sensor ([`sensor`]),
//! backscatter radio ([`radio`]) and a general-purpose-MCU baseline
//! ([`mcu`]) — plus the end-to-end pipeline driver ([`pipeline`]) that
//! composes motion detection, Viola-Jones face detection and the
//! SNNAP-style NN authenticator, and the workload assembly helpers
//! ([`workload`]).
//!
//! # Examples
//!
//! ```no_run
//! use incam_core::units::Fps;
//! use incam_wispcam::pipeline::FaPipelineConfig;
//! use incam_wispcam::platform::WispCamPlatform;
//! use incam_wispcam::workload::{TrainEffort, Workload};
//!
//! let workload = Workload::generate(7, 200, TrainEffort::Quick);
//! let mut pipeline = workload.pipeline(FaPipelineConfig::full_accelerated());
//! let summary = pipeline.run(&workload.frames);
//! println!("{}", summary.energy);
//!
//! // does it run on harvested power at 1 FPS?
//! let platform = WispCamPlatform::wispcam_default();
//! let fps = platform.sustainable_fps(summary.energy_per_frame());
//! assert!(fps >= Fps::new(1.0));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod capacitor;
pub mod fleet;
pub mod harvester;
pub mod mcu;
pub mod pipeline;
pub mod platform;
pub mod radio;
pub mod runtime;
pub mod sensor;
pub mod space;
pub mod workload;

pub use capacitor::Capacitor;
pub use fleet::fleet_profile;
pub use harvester::RfHarvester;
pub use mcu::McuModel;
pub use pipeline::{
    BlockEnergies, FaPipeline, FaPipelineConfig, FrameOutcome, RunSummary, Substrate,
    TransmitPolicy,
};
pub use platform::{SimulationReport, WispCamPlatform};
pub use radio::BackscatterRadio;
pub use runtime::{simulate_degraded, DegradedReport, DegradedSimConfig, RecoveryPolicy};
pub use sensor::ImageSensor;
pub use space::{fa_binding_space, submw_sweep, FaBlockCosts, FaSpacePoint};
pub use workload::{TrainEffort, Workload};
