//! The face-authentication pipeline as a configuration space.
//!
//! [`crate::pipeline::FaPipeline`] executes one concrete configuration;
//! this module exposes the *choices* behind it as an
//! [`incam_core::explore::PipelineSpace`]: each compute block — motion
//! detection, face detection, NN authentication — declares two candidate
//! bindings (the paper's per-block ASIC vs. the general-purpose-MCU
//! baseline), and the offload cut decides whether the camera ships the
//! raw frame (cuts before the NN) or the one-byte verdict (full
//! in-camera processing). Enumerating the space reproduces the case
//! study's sub-mW sweep: only ASIC bindings with the verdict uplink fit
//! the harvested-power budget.
//!
//! Binding costs are *measured, not asserted*: [`FaBlockCosts::from_traces`]
//! averages the per-block energies of two [`crate::pipeline::FrameOutcome`]
//! traces recorded over the same workload — one per substrate — so the
//! space inherits exactly the gating behaviour (motion-idle frames,
//! detector-filtered NN work) the live pipeline exhibited. MCU binding
//! throughput follows from the same means: the MCU's energy and time are
//! both linear in instruction count, so dividing its active power by a
//! mean block energy recovers the mean block time exactly.

use crate::mcu::McuModel;
use crate::pipeline::FrameOutcome;
use crate::radio::BackscatterRadio;
use crate::sensor::ImageSensor;
use incam_core::block::{Backend, BlockSpec, DataTransform};
use incam_core::explore::{
    Binding, BlockSpace, ConfigAnalysis, Configuration, PipelineSpace, SearchPlan,
};
use incam_core::pipeline::Source;
use incam_core::units::{Bytes, Fps, Joules, Watts};

/// The compute blocks of the FA pipeline, in execution order (the
/// sensor and radio are the space's source and link, not blocks).
pub const COMPUTE_BLOCKS: [&str; 3] = ["MD", "FD", "NN"];

/// Streaming throughput credited to the on-sensor ASIC bindings: the
/// accelerators consume the CSI2 stream at sensor line rate, so they
/// never bind at the duty-cycled capture rates this case study runs at.
pub const ASIC_STREAM_FPS: f64 = 30.0;

/// Mean per-frame energy of each compute block under both substrates,
/// measured over one workload.
#[derive(Debug, Clone, PartialEq)]
pub struct FaBlockCosts {
    /// Mean sensor capture energy per frame.
    pub capture: Joules,
    /// Mean per-frame energy of `[MD, FD, NN]` on the accelerator SoC.
    pub accel: [Joules; 3],
    /// Mean per-frame energy of `[MD, FD, NN]` on the MCU.
    pub mcu: [Joules; 3],
}

impl FaBlockCosts {
    /// Representative measured means at the paper's design point:
    /// nanojoule-class ASIC blocks with the MCU orders of magnitude
    /// above (QQVGA frame differencing, a scanned cascade, a few
    /// jittered NN inferences per event frame). Use when a canonical
    /// cost model is needed without replaying a workload — e.g. the
    /// fleet-profile adapter in [`crate::fleet`].
    pub fn design_point() -> Self {
        Self {
            capture: Joules::from_micro(2.02),
            accel: [
                Joules::from_nano(1.0),
                Joules::from_nano(40.0),
                Joules::from_nano(60.0),
            ],
            mcu: [
                Joules::from_micro(1.5),
                Joules::from_micro(30.0),
                Joules::from_micro(5.0),
            ],
        }
    }

    /// Measures mean block costs from two traces of the *same* frame
    /// stream, one recorded under [`crate::pipeline::Substrate::Accelerators`]
    /// and one under [`crate::pipeline::Substrate::Mcu`]. Running the
    /// identical workload on both keeps the gating decisions — and hence
    /// the amortized per-frame work — comparable across substrates.
    ///
    /// # Panics
    ///
    /// Panics if either trace is empty or their lengths differ.
    pub fn from_traces(accel: &[FrameOutcome], mcu: &[FrameOutcome]) -> Self {
        assert!(!accel.is_empty(), "need at least one accelerator frame");
        assert_eq!(
            accel.len(),
            mcu.len(),
            "traces must cover the same frame stream"
        );
        let mean = |outcomes: &[FrameOutcome], pick: fn(&FrameOutcome) -> Joules| -> Joules {
            let total: f64 = outcomes.iter().map(|o| pick(o).joules()).sum();
            Joules::new(total / outcomes.len() as f64)
        };
        Self {
            capture: mean(accel, |o| o.blocks.sensor),
            accel: [
                mean(accel, |o| o.blocks.motion),
                mean(accel, |o| o.blocks.detect),
                mean(accel, |o| o.blocks.nn),
            ],
            mcu: [
                mean(mcu, |o| o.blocks.motion),
                mean(mcu, |o| o.blocks.detect),
                mean(mcu, |o| o.blocks.nn),
            ],
        }
    }
}

/// Builds the FA configuration space from measured block costs.
///
/// Three blocks with two bindings each (per-block ASIC, index 0; MCU,
/// index 1) and four cut positions: cuts 0–2 ship the raw frame over the
/// backscatter link, cut 3 ships the one-byte verdict. MD and FD are the
/// paper's optional filter blocks; the NN is the core block whose
/// verdict ends the data stream.
pub fn fa_binding_space(
    costs: &FaBlockCosts,
    sensor: &ImageSensor,
    mcu: &McuModel,
    capture_rate: Fps,
) -> PipelineSpace {
    // mean block time = mean energy / active power, exact for the MCU's
    // linear instruction costing; a block that drew nothing is free
    let mcu_fps = |energy: Joules| -> Fps {
        if energy.joules() > 0.0 {
            Fps::new(mcu.active_power().watts() / energy.joules())
        } else {
            Fps::new(ASIC_STREAM_FPS)
        }
    };
    let block = |i: usize, spec: BlockSpec| -> BlockSpace {
        BlockSpace::new(
            spec,
            vec![
                Binding::new(Backend::Asic, Fps::new(ASIC_STREAM_FPS))
                    .with_energy_per_frame(costs.accel[i]),
                Binding::new(Backend::Mcu, mcu_fps(costs.mcu[i]))
                    .with_energy_per_frame(costs.mcu[i]),
            ],
        )
    };
    PipelineSpace::new(
        Source::new("S", Bytes::new(sensor.frame_bytes() as f64), capture_rate)
            .with_capture_energy(costs.capture),
    )
    .with_block(block(
        0,
        BlockSpec::optional(COMPUTE_BLOCKS[0], DataTransform::Identity),
    ))
    .with_block(block(
        1,
        BlockSpec::optional(COMPUTE_BLOCKS[1], DataTransform::Identity),
    ))
    .with_block(block(
        2,
        BlockSpec::core(COMPUTE_BLOCKS[2], DataTransform::Fixed(Bytes::new(1.0))),
    ))
}

/// `true` when every in-camera block uses the same binding — the two
/// pure designs the paper compares (all-ASIC SoC vs. everything in MCU
/// software). Mixed configurations are the space's own contribution.
pub fn uniform_substrate(config: &Configuration) -> bool {
    let in_camera = &config.bindings()[..config.cut()];
    in_camera.windows(2).all(|w| w[0] == w[1])
}

/// One point of the sub-mW sweep: a configuration's cost analysis plus
/// its average power at the capture rate.
#[derive(Debug, Clone, PartialEq)]
pub struct FaSpacePoint {
    /// The configuration-space analysis over the backscatter link.
    pub analysis: ConfigAnalysis,
    /// Radio energy for this configuration's upload payload.
    pub radio_energy: Joules,
    /// Average power at the sweep's capture rate: (in-camera energy +
    /// radio energy) × rate.
    pub average_power: Watts,
}

impl FaSpacePoint {
    /// Whether this configuration fits the paper's harvested-power
    /// budget (< 1 mW average).
    pub fn sub_milliwatt(&self) -> bool {
        self.average_power.milliwatts() < 1.0
    }
}

/// Evaluates every distinct configuration of `space` over the
/// backscatter uplink at `capture_rate` — the case study's sub-mW sweep,
/// in enumeration order.
///
/// The sweep routes through [`SearchPlan::explore`], the engine's
/// exhaustive passthrough: this is a view layer that prints every
/// configuration, dominated or not, so pruning must not apply (and the
/// pinned `fa-space` table stays byte-identical).
pub fn submw_sweep(
    space: &PipelineSpace,
    radio: &BackscatterRadio,
    capture_rate: Fps,
) -> Vec<FaSpacePoint> {
    SearchPlan::new(space)
        .explore(radio.link())
        .map(|analysis| {
            let radio_energy = radio.transmit_energy(analysis.upload);
            let average_power = (analysis.energy + radio_energy) * capture_rate;
            FaSpacePoint {
                analysis,
                radio_energy,
                average_power,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::BlockEnergies;

    /// The canonical design-point means (shared with the fleet adapter).
    fn sample_costs() -> FaBlockCosts {
        FaBlockCosts::design_point()
    }

    fn sample_space() -> PipelineSpace {
        fa_binding_space(
            &sample_costs(),
            &ImageSensor::wispcam_default(),
            &McuModel::cortex_m_class(),
            Fps::new(1.0),
        )
    }

    #[test]
    fn space_shape_matches_pipeline() {
        let space = sample_space();
        // 2^3 binding products x 4 cuts
        assert_eq!(space.cardinality(), 32);
        // cuts 0..3 contribute 1 + 2 + 4 + 8 distinct configurations
        assert_eq!(space.distinct_cardinality(), 15);
        for (name, block) in COMPUTE_BLOCKS.iter().zip(space.blocks()) {
            assert_eq!(block.spec().name(), *name);
            assert_eq!(block.bindings()[0].backend(), Backend::Asic);
            assert_eq!(block.bindings()[1].backend(), Backend::Mcu);
        }
    }

    #[test]
    fn cut_decides_payload() {
        let space = sample_space();
        let radio = BackscatterRadio::wispcam_default();
        let frame = ImageSensor::wispcam_default().frame_bytes() as f64;
        for point in submw_sweep(&space, &radio, Fps::new(1.0)) {
            let expected = if point.analysis.config.cut() == 3 {
                1.0
            } else {
                frame
            };
            assert_eq!(point.analysis.upload.bytes(), expected);
        }
    }

    #[test]
    fn only_verdict_configs_fit_the_harvested_budget() {
        let space = sample_space();
        let radio = BackscatterRadio::wispcam_default();
        let sweep = submw_sweep(&space, &radio, Fps::new(1.0));
        assert_eq!(sweep.len(), 15);
        for point in &sweep {
            if point.analysis.config.cut() < 3 {
                // raw-frame backscatter alone costs ~9 uJ/frame; with
                // capture it stays sub-mW at 1 FPS, so the *frame rate*
                // is what raw offload forfeits: 19.2 kB at 256 kb/s
                // cannot sustain even 2 FPS
                assert!(point.analysis.communication.fps() < 2.0);
            }
        }
        // the paper's design point: full in-camera processing on ASICs
        let full_asic = sweep
            .iter()
            .find(|p| p.analysis.config == Configuration::new(vec![0, 0, 0], 3))
            .expect("full-ASIC configuration enumerated");
        assert!(
            full_asic.sub_milliwatt(),
            "{}",
            full_asic.average_power.human()
        );
        // the MCU baseline draws more at every block
        let full_mcu = sweep
            .iter()
            .find(|p| p.analysis.config == Configuration::new(vec![1, 1, 1], 3))
            .expect("full-MCU configuration enumerated");
        assert!(full_mcu.average_power.watts() > full_asic.average_power.watts());
    }

    #[test]
    fn mcu_throughput_recovers_mean_time() {
        let mcu = McuModel::cortex_m_class();
        // 1e6 instructions: energy and time known in closed form
        let (energy, time) = mcu.run(1_000_000);
        let fps = mcu.active_power().watts() / energy.joules();
        assert!((1.0 / fps - time.secs()).abs() < 1e-12);
    }

    #[test]
    fn uniform_substrate_filters_mixed_designs() {
        assert!(uniform_substrate(&Configuration::new(vec![0, 0, 0], 3)));
        assert!(uniform_substrate(&Configuration::new(vec![1, 1, 1], 3)));
        assert!(!uniform_substrate(&Configuration::new(vec![0, 1, 0], 3)));
        // bindings past the cut are cloud-side and don't count
        assert!(uniform_substrate(&Configuration::new(vec![0, 1, 1], 1)));
        let space = sample_space();
        let uniform = space
            .distinct_configurations()
            .filter(uniform_substrate)
            .count();
        // cut 0: 1; cuts 1-3: two pure designs each
        assert_eq!(uniform, 7);
    }

    #[test]
    fn from_traces_averages_each_block() {
        let outcome = |motion: f64, detect: f64, nn: f64| FrameOutcome {
            motion: true,
            scanned: true,
            windows_scored: 1,
            authenticated: false,
            energy: Joules::from_micro(motion + detect + nn),
            blocks: BlockEnergies {
                sensor: Joules::from_micro(2.0),
                motion: Joules::from_micro(motion),
                detect: Joules::from_micro(detect),
                nn: Joules::from_micro(nn),
                radio: Joules::ZERO,
            },
        };
        let accel = [outcome(1.0, 2.0, 3.0), outcome(3.0, 4.0, 5.0)];
        let mcu = [outcome(10.0, 20.0, 30.0), outcome(30.0, 40.0, 50.0)];
        let costs = FaBlockCosts::from_traces(&accel, &mcu);
        assert!((costs.capture.micros() - 2.0).abs() < 1e-9);
        assert!((costs.accel[0].micros() - 2.0).abs() < 1e-9);
        assert!((costs.accel[2].micros() - 4.0).abs() < 1e-9);
        assert!((costs.mcu[1].micros() - 30.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "same frame stream")]
    fn mismatched_traces_rejected() {
        let o = FrameOutcome {
            motion: true,
            scanned: false,
            windows_scored: 0,
            authenticated: false,
            energy: Joules::ZERO,
            blocks: BlockEnergies::default(),
        };
        let _ = FaBlockCosts::from_traces(&[o], &[o, o]);
    }
}
