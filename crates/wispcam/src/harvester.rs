//! RF energy harvesting.
//!
//! The WISPCam powers itself entirely from the RF field of an RFID reader;
//! harvested power falls off roughly with the square of distance and is in
//! the hundreds-of-microwatts range at close quarters. The model is a
//! reference power at a reference distance plus free-space path-loss
//! scaling — enough to explore how far from the reader each pipeline
//! configuration can run.

use incam_core::units::{Joules, Seconds, Watts};

/// An RF harvesting front-end.
///
/// # Examples
///
/// ```
/// use incam_wispcam::harvester::RfHarvester;
/// use incam_core::units::Seconds;
///
/// let h = RfHarvester::wispcam_default();
/// let e = h.harvest(Seconds::new(1.0));
/// assert!(e.micros() > 100.0); // hundreds of microjoules per second
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct RfHarvester {
    reference_power: Watts,
    reference_distance_m: f64,
    distance_m: f64,
    efficiency: f64,
}

impl RfHarvester {
    /// Creates a harvester with `reference_power` available at
    /// `reference_distance_m` from the reader.
    ///
    /// # Panics
    ///
    /// Panics if any parameter is non-positive or efficiency exceeds 1.
    pub fn new(reference_power: Watts, reference_distance_m: f64, efficiency: f64) -> Self {
        assert!(reference_power.watts() > 0.0, "power must be positive");
        assert!(reference_distance_m > 0.0, "distance must be positive");
        assert!(
            efficiency > 0.0 && efficiency <= 1.0,
            "efficiency must be in (0, 1]"
        );
        Self {
            reference_power,
            reference_distance_m,
            distance_m: reference_distance_m,
            efficiency,
        }
    }

    /// WISPCam-class defaults: ~500 µW of rectified power at 1 m from the
    /// reader, 80 % conversion efficiency into the storage capacitor.
    pub fn wispcam_default() -> Self {
        Self::new(Watts::from_micro(500.0), 1.0, 0.8)
    }

    /// Moves the camera to a new distance from the reader.
    ///
    /// # Panics
    ///
    /// Panics if `distance_m` is non-positive.
    pub fn set_distance(&mut self, distance_m: f64) {
        assert!(distance_m > 0.0, "distance must be positive");
        self.distance_m = distance_m;
    }

    /// Current distance from the reader in meters.
    pub fn distance(&self) -> f64 {
        self.distance_m
    }

    /// Power delivered into the store at the current distance
    /// (inverse-square path loss times conversion efficiency).
    pub fn output_power(&self) -> Watts {
        let ratio = self.reference_distance_m / self.distance_m;
        self.reference_power * (ratio * ratio) * self.efficiency
    }

    /// Energy delivered over a duration.
    pub fn harvest(&self, duration: Seconds) -> Joules {
        self.output_power() * duration
    }

    /// Energy delivered over a duration while the RF carrier is degraded
    /// to `power_factor` of nominal (1 = full carrier, 0 = complete
    /// brownout). Drives the fault-injected platform simulations, which
    /// feed each harvest period's factor from a
    /// `BrownoutTrace`.
    ///
    /// # Panics
    ///
    /// Panics if `power_factor` is not in `[0, 1]`.
    pub fn harvest_during(&self, duration: Seconds, power_factor: f64) -> Joules {
        assert!(
            (0.0..=1.0).contains(&power_factor),
            "power_factor must be in [0, 1], got {power_factor}"
        );
        self.output_power() * duration * power_factor
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inverse_square_falloff() {
        let mut h = RfHarvester::wispcam_default();
        let p1 = h.output_power();
        h.set_distance(2.0);
        let p2 = h.output_power();
        assert!((p1.watts() / p2.watts() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn harvest_integrates_power() {
        let h = RfHarvester::new(Watts::from_micro(100.0), 1.0, 1.0);
        let e = h.harvest(Seconds::new(10.0));
        assert!((e.millis() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn efficiency_scales_output() {
        let lossy = RfHarvester::new(Watts::from_micro(100.0), 1.0, 0.5);
        assert!((lossy.output_power().microwatts() - 50.0).abs() < 1e-9);
    }

    #[test]
    fn harvest_during_scales_with_power_factor() {
        let h = RfHarvester::wispcam_default();
        let full = h.harvest(Seconds::new(1.0));
        assert_eq!(h.harvest_during(Seconds::new(1.0), 1.0), full);
        assert_eq!(h.harvest_during(Seconds::new(1.0), 0.0), Joules::ZERO);
        let half = h.harvest_during(Seconds::new(1.0), 0.5);
        assert!((half.joules() - full.joules() * 0.5).abs() < 1e-15);
    }

    #[test]
    #[should_panic(expected = "power_factor")]
    fn harvest_during_rejects_bad_factor() {
        let h = RfHarvester::wispcam_default();
        let _ = h.harvest_during(Seconds::new(1.0), 1.5);
    }

    #[test]
    #[should_panic(expected = "distance")]
    fn zero_distance_rejected() {
        let mut h = RfHarvester::wispcam_default();
        h.set_distance(0.0);
    }
}
