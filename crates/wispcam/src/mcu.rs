//! The general-purpose microprocessor baseline.
//!
//! The paper's ASIC evaluation reports "performance and energy efficiency
//! improvements over a general purpose microprocessor"; this module is
//! that comparator: a Cortex-M0-class MCU executing the same pipeline in
//! software, costed per instruction. Software MACs, Haar evaluations and
//! pixel differences are expanded into instruction counts with
//! conventional expansion factors.

use incam_core::units::{Hertz, Joules, Seconds, Watts};

/// An energy/latency model of a low-power general-purpose MCU.
///
/// # Examples
///
/// ```
/// use incam_wispcam::mcu::McuModel;
///
/// let mcu = McuModel::cortex_m_class();
/// let (energy, time) = mcu.run(1_000_000);
/// assert!(energy.micros() > 1.0);       // far above the ASIC's cost
/// assert!(time.millis() > 10.0);        // and far slower
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct McuModel {
    /// Average energy per executed instruction, picojoules.
    pub pj_per_instruction: f64,
    /// Core clock.
    pub clock: Hertz,
    /// Idle/sleep power while waiting, microwatts.
    pub sleep_uw: f64,
    /// Instructions per software multiply-accumulate (load weight, load
    /// input, multiply, add, pointer/loop overhead).
    pub instructions_per_mac: f64,
    /// Instructions per Haar-feature evaluation (integral-image reads,
    /// adds, compare, normalization).
    pub instructions_per_haar: f64,
    /// Instructions per pixel of frame differencing.
    pub instructions_per_diff: f64,
}

impl McuModel {
    /// A Cortex-M0+-class profile: ~20 pJ/instruction at 48 MHz.
    pub fn cortex_m_class() -> Self {
        Self {
            pj_per_instruction: 20.0,
            clock: Hertz::from_mhz(48.0),
            sleep_uw: 5.0,
            instructions_per_mac: 8.0,
            instructions_per_haar: 40.0,
            instructions_per_diff: 4.0,
        }
    }

    /// Energy and latency of executing `instructions`.
    pub fn run(&self, instructions: u64) -> (Joules, Seconds) {
        let energy = Joules::from_pico(self.pj_per_instruction * instructions as f64);
        let time = Seconds::new(instructions as f64 / self.clock.hertz());
        (energy, time)
    }

    /// Active power while executing.
    pub fn active_power(&self) -> Watts {
        Joules::from_pico(self.pj_per_instruction) * incam_core::units::Fps::new(self.clock.hertz())
    }

    /// Cost of `macs` software multiply-accumulates.
    pub fn run_macs(&self, macs: u64) -> (Joules, Seconds) {
        self.run((macs as f64 * self.instructions_per_mac) as u64)
    }

    /// Cost of `features` software Haar evaluations.
    pub fn run_haar(&self, features: u64) -> (Joules, Seconds) {
        self.run((features as f64 * self.instructions_per_haar) as u64)
    }

    /// Cost of frame differencing over `pixels`.
    pub fn run_diff(&self, pixels: u64) -> (Joules, Seconds) {
        self.run((pixels as f64 * self.instructions_per_diff) as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn energy_and_time_linear() {
        let mcu = McuModel::cortex_m_class();
        let (e1, t1) = mcu.run(1000);
        let (e2, t2) = mcu.run(2000);
        assert!((e2.joules() / e1.joules() - 2.0).abs() < 1e-9);
        assert!((t2.secs() / t1.secs() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn mac_expansion_factor() {
        let mcu = McuModel::cortex_m_class();
        let (e_mac, _) = mcu.run_macs(100);
        let (e_raw, _) = mcu.run(800);
        assert!((e_mac.joules() - e_raw.joules()).abs() < 1e-15);
    }

    #[test]
    fn active_power_order_of_magnitude() {
        // ~20 pJ x 48 MHz ~ 1 mW: a GP MCU alone busts the sub-mW budget
        let mcu = McuModel::cortex_m_class();
        let p = mcu.active_power();
        assert!(
            p.milliwatts() > 0.5 && p.milliwatts() < 5.0,
            "{}",
            p.human()
        );
    }
}
