//! The WISPCam camera class for fleet-scale simulation.
//!
//! One WISPCam is the paper's single-camera story; a *deployment* is
//! hundreds to thousands of them sharing one reader's carrier. This
//! module packages the face-authentication configuration space, the
//! all-ASIC committed design, and the backscatter uplink into an
//! [`incam_core::fleet::CameraProfile`] that `incam-fleet` instantiates
//! per camera.
//!
//! The profile boots at **cut 0** — the original WISPCam design that
//! backscatters every raw frame — so the fleet's online re-search has
//! exactly the decision the paper studies to make: as contention erodes
//! each camera's goodput, moving the cut in-camera (ultimately to the
//! one-byte verdict at cut 3) is what keeps the deployment alive.

use crate::mcu::McuModel;
use crate::radio::BackscatterRadio;
use crate::sensor::ImageSensor;
use crate::space::{fa_binding_space, FaBlockCosts};
use incam_core::fleet::CameraProfile;
use incam_core::units::Fps;

/// Capture cadence of a fleet WISPCam: the paper's 1 FPS duty-cycled
/// surveillance rate.
pub const FLEET_CAPTURE_FPS: f64 = 1.0;

/// Builds the WISPCam camera class at the paper's design point:
/// QQVGA sensor, Cortex-M-class MCU, all-ASIC committed bindings,
/// 256 kb/s backscatter uplink, booting at cut 0 (raw offload).
pub fn fleet_profile() -> CameraProfile {
    let capture = Fps::new(FLEET_CAPTURE_FPS);
    let profile = CameraProfile {
        name: "wispcam".to_string(),
        space: fa_binding_space(
            &FaBlockCosts::design_point(),
            &ImageSensor::wispcam_default(),
            &McuModel::cortex_m_class(),
            capture,
        ),
        committed: vec![0, 0, 0],
        initial_cut: 0,
        capture,
        uplink: BackscatterRadio::wispcam_default().link().clone(),
    };
    profile.validate();
    profile
}

#[cfg(test)]
mod tests {
    use super::*;
    use incam_core::block::Backend;

    #[test]
    fn profile_is_valid_and_all_asic() {
        let p = fleet_profile();
        assert_eq!(p.space.len(), 3);
        assert_eq!(p.committed, vec![0, 0, 0]);
        for (block, &choice) in p.space.blocks().iter().zip(&p.committed) {
            assert_eq!(block.bindings()[choice].backend(), Backend::Asic);
        }
        assert_eq!(p.initial_cut, 0);
        assert_eq!(p.uplink.name(), "backscatter");
    }

    #[test]
    fn re_search_moves_the_cut_in_camera_as_goodput_drops() {
        let p = fleet_profile();
        // at full goodput the verdict cut already wins on this link; the
        // invariant that matters for the fleet is monotonicity: degrading
        // the link never moves the cut *out* of camera
        let mut last = p.space.best_cut_held(&p.uplink, &p.committed).config.cut();
        for goodput in [0.5, 0.1, 0.01] {
            let cut = p
                .space
                .best_cut_held(&p.uplink.degraded(goodput), &p.committed)
                .config
                .cut();
            assert!(cut >= last, "cut moved out of camera: {cut} < {last}");
            last = cut;
        }
        assert_eq!(last, 3, "a starved link must end at the verdict cut");
    }

    #[test]
    fn profile_is_deterministic() {
        assert_eq!(fleet_profile(), fleet_profile());
    }
}
