//! The image sensor's capture-energy model.
//!
//! Capture energy is dominated by pixel-array exposure/readout and the
//! ADC; both scale with pixel count. The accelerators in this case study
//! sit on-chip with the sensor and consume the stream over the CSI2
//! interface, so no extra per-frame I/O energy is charged between sensor
//! and accelerator.

use incam_core::units::Joules;

/// A low-power CMOS image sensor.
///
/// # Examples
///
/// ```
/// use incam_wispcam::sensor::ImageSensor;
///
/// let s = ImageSensor::wispcam_default();
/// assert_eq!(s.dims(), (160, 120));
/// // tens of microjoules per QQVGA frame
/// assert!(s.capture_energy().micros() > 1.0);
/// assert!(s.capture_energy().micros() < 100.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ImageSensor {
    width: usize,
    height: usize,
    /// Capture+readout energy per pixel, in picojoules.
    pj_per_pixel: f64,
    /// Fixed per-frame overhead (exposure control, PLL), in microjoules.
    uj_per_frame: f64,
}

impl ImageSensor {
    /// Creates a sensor model.
    ///
    /// # Panics
    ///
    /// Panics if dimensions are zero or energies are negative.
    pub fn new(width: usize, height: usize, pj_per_pixel: f64, uj_per_frame: f64) -> Self {
        assert!(width > 0 && height > 0, "dimensions must be nonzero");
        assert!(
            pj_per_pixel >= 0.0 && uj_per_frame >= 0.0,
            "energies must be non-negative"
        );
        Self {
            width,
            height,
            pj_per_pixel,
            uj_per_frame,
        }
    }

    /// The WISPCam-class sensor: QQVGA (160×120) grayscale, ~1 pJ/pixel
    /// plus 2 µJ frame overhead.
    pub fn wispcam_default() -> Self {
        Self::new(160, 120, 1.0, 2.0)
    }

    /// Sensor resolution `(width, height)`.
    pub fn dims(&self) -> (usize, usize) {
        (self.width, self.height)
    }

    /// Pixels per frame.
    pub fn pixels(&self) -> usize {
        self.width * self.height
    }

    /// Frame payload in bytes (8-bit grayscale).
    pub fn frame_bytes(&self) -> usize {
        self.pixels()
    }

    /// Energy to capture and read out one frame.
    pub fn capture_energy(&self) -> Joules {
        Joules::from_pico(self.pj_per_pixel * self.pixels() as f64)
            + Joules::from_micro(self.uj_per_frame)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn energy_scales_with_resolution() {
        let small = ImageSensor::new(80, 60, 1.0, 1.0);
        let big = ImageSensor::new(160, 120, 1.0, 1.0);
        assert!(big.capture_energy() > small.capture_energy());
        assert_eq!(big.pixels(), 4 * small.pixels());
    }

    #[test]
    fn capture_energy_components() {
        let s = ImageSensor::new(100, 100, 2.0, 3.0);
        // 10000 px * 2 pJ = 20 nJ, + 3 uJ
        assert!((s.capture_energy().micros() - 3.02).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_width_rejected() {
        let _ = ImageSensor::new(0, 100, 1.0, 1.0);
    }
}
