//! Ready-made workload assembly: scene, trained detector and trained
//! authenticator in one call, shared by examples, integration tests and
//! the reproduction harness.

use crate::pipeline::{FaPipeline, FaPipelineConfig};
use crate::radio::BackscatterRadio;
use crate::sensor::ImageSensor;
use incam_imaging::draw::{blit, fill_rect};
use incam_imaging::faces::{render_face, render_non_face, Identity, Nuisance};
use incam_imaging::image::GrayImage;
use incam_imaging::resample::resize_bilinear;
use incam_imaging::scenes::{LabeledFrame, SecurityScene, SecuritySceneConfig};
use incam_nn::mlp::Mlp;
use incam_nn::topology::Topology;
use incam_nn::train::{train, TrainConfig, TrainingSet};
use incam_rng::rngs::StdRng;
use incam_rng::{Rng, SeedableRng};
use incam_snnap::config::SnnapConfig;
use incam_snnap::sim::SnnapAccelerator;
use incam_viola::scan::ScanParams;
use incam_viola::train::{train_cascade, CascadeTrainConfig, TrainedCascade};

/// Training-effort presets for workload assembly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrainEffort {
    /// Small sample counts / few epochs — unit tests and doc examples.
    Quick,
    /// The counts used for the paper-style evaluation numbers.
    Full,
}

/// Everything needed to run the face-authentication case study.
#[derive(Debug, Clone)]
pub struct Workload {
    /// The labeled frame stream.
    pub frames: Vec<LabeledFrame>,
    /// The enrolled identity.
    pub enrolled: Identity,
    /// The float reference authenticator network.
    pub reference_net: Mlp,
    /// The trained face-detection cascade.
    pub detector: TrainedCascade,
    /// Scan parameters used by the detection block.
    pub scan_params: ScanParams,
}

impl Workload {
    /// Generates a scene, trains the detector and authenticator, and
    /// renders `n_frames` of labeled video.
    ///
    /// # Examples
    ///
    /// ```no_run
    /// use incam_wispcam::workload::{TrainEffort, Workload};
    ///
    /// let w = Workload::generate(7, 120, TrainEffort::Quick);
    /// assert_eq!(w.frames.len(), 120);
    /// ```
    pub fn generate(seed: u64, n_frames: usize, effort: TrainEffort) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let scene_cfg = SecuritySceneConfig {
            event_rate: 0.06,
            ..Default::default()
        };
        let mut scene = SecurityScene::new(scene_cfg, StdRng::seed_from_u64(seed ^ 0x5eed));
        let frames = scene.frames(n_frames);
        let enrolled = scene.enrolled().clone();
        let impostors: Vec<Identity> = scene.cast()[1..].to_vec();

        let (pos_n, imp_n, epochs) = match effort {
            TrainEffort::Quick => (60, 20, 40),
            TrainEffort::Full => (200, 40, 150),
        };
        let reference_net =
            train_authenticator(&enrolled, &impostors, pos_n, imp_n, epochs, 20, &mut rng);

        let detector = train_detector(&mut rng, effort);
        Self {
            frames,
            enrolled,
            reference_net,
            detector,
            scan_params: ScanParams::default(),
        }
    }

    /// Assembles an [`FaPipeline`] for this workload under `config`.
    pub fn pipeline(&self, config: FaPipelineConfig) -> FaPipeline {
        let accelerator = SnnapAccelerator::new(&self.reference_net, SnnapConfig::paper_default());
        let detector = config.face_detection.then(|| self.detector.clone());
        FaPipeline::new(
            config,
            ImageSensor::wispcam_default(),
            BackscatterRadio::wispcam_default(),
            detector,
            self.scan_params,
            accelerator,
        )
    }

    /// Assembles a pipeline with a custom accelerator configuration
    /// (geometry / precision studies on the live pipeline).
    pub fn pipeline_with_accelerator(
        &self,
        config: FaPipelineConfig,
        snnap: SnnapConfig,
    ) -> FaPipeline {
        let accelerator = SnnapAccelerator::new(&self.reference_net, snnap);
        let detector = config.face_detection.then(|| self.detector.clone());
        FaPipeline::new(
            config,
            ImageSensor::wispcam_default(),
            BackscatterRadio::wispcam_default(),
            detector,
            self.scan_params,
            accelerator,
        )
    }
}

/// Trains a float authenticator for `enrolled` against `impostors`.
///
/// Renders `pos_n` enrolled captures and `imp_n` per impostor at 24×24,
/// downsampled to `input_side`, and trains a `input_side²-8-1` network.
pub fn train_authenticator(
    enrolled: &Identity,
    impostors: &[Identity],
    pos_n: usize,
    imp_n: usize,
    epochs: usize,
    input_side: usize,
    rng: &mut impl Rng,
) -> Mlp {
    let mut inputs = Vec::new();
    let mut targets = Vec::new();
    {
        let mut push = |id: &Identity, label: f32, mut rng: &mut dyn incam_rng::RngCore| {
            // deployment realism: half the samples are tight renders with
            // alignment jitter, half are detector-style crops of the face
            // embedded in scene context — the two window geometries the
            // authenticator actually sees
            let nz = Nuisance::sample(&mut rng, 0.35);
            let face = render_face(id, &nz, 24, &mut rng);
            let window = if incam_rng::Rng::gen_bool(&mut rng, 0.5) {
                scene_like_crop(&face, &mut rng)
            } else {
                face
            };
            inputs.push(resize_bilinear(&window, input_side, input_side).to_vec_f32());
            targets.push(vec![label]);
        };
        for _ in 0..pos_n {
            push(enrolled, 1.0, rng);
        }
        for id in impostors {
            for _ in 0..imp_n {
                push(id, 0.0, rng);
            }
        }
    }
    let data = TrainingSet::new(inputs, targets);
    let mut net = Mlp::random(Topology::new(vec![input_side * input_side, 8, 1]), rng);
    train(
        &mut net,
        &data,
        &TrainConfig {
            learning_rate: 0.05,
            momentum: 0.9,
            max_epochs: epochs,
            target_mse: 0.015,
        },
        rng,
    );
    net
}

/// Embeds a rendered face into scene-like context (background plus a body
/// under the head) and crops it with detector-style geometry jitter: a
/// window 1.0–1.4× the face side, offset by up to ±3 px.
fn scene_like_crop(face: &GrayImage, rng: &mut dyn incam_rng::RngCore) -> GrayImage {
    use incam_rng::Rng as _;
    let fs = face.width();
    let ctx = fs * 2;
    let mut patch = GrayImage::new(ctx, ctx, rng.gen_range(0.25..0.55));
    // body below the head, as in the walk-through scene
    fill_rect(
        &mut patch,
        (ctx / 2 - fs / 2) as isize,
        (ctx / 2 + fs / 2) as isize,
        fs,
        ctx / 2,
        0.45,
    );
    blit(
        &mut patch,
        face,
        (ctx / 2 - fs / 2) as isize,
        (ctx / 2 - fs / 2) as isize,
    );
    let side = ((fs as f32) * rng.gen_range(1.0..1.25)) as usize;
    let max_off = ctx - side;
    let cx = (ctx / 2).saturating_sub(side / 2);
    let jitter = |c: usize, rng: &mut dyn incam_rng::RngCore| -> usize {
        let j = rng.gen_range(-2i32..=2);
        (c as i32 + j).clamp(0, max_off as i32) as usize
    };
    let x = jitter(cx, rng);
    let y = jitter(cx, rng);
    patch.crop(x, y, side, side)
}

/// Trains a generic (identity-agnostic) face-detection cascade.
pub fn train_detector(rng: &mut StdRng, effort: TrainEffort) -> TrainedCascade {
    let (n_pos, n_neg, cfg) = match effort {
        TrainEffort::Quick => (60, 120, CascadeTrainConfig::fast()),
        TrainEffort::Full => (
            200,
            400,
            CascadeTrainConfig {
                base_window: 16,
                position_stride: 3,
                size_stride: 3,
                stage_sizes: vec![2, 5, 10, 20],
                min_detection_rate: 0.99,
                min_negatives: 8,
            },
        ),
    };
    let side = cfg.base_window;
    let pos: Vec<_> = (0..n_pos)
        .map(|_| {
            let id = Identity::sample(rng);
            render_face(&id, &Nuisance::sample(rng, 0.25), side, rng)
        })
        .collect();
    let neg: Vec<_> = (0..n_neg).map(|_| render_non_face(side, rng)).collect();
    train_cascade(&pos, &neg, &cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::FaPipelineConfig;

    #[test]
    fn workload_assembles_and_runs() {
        let w = Workload::generate(99, 30, TrainEffort::Quick);
        assert_eq!(w.frames.len(), 30);
        let mut p = w.pipeline(FaPipelineConfig::full_accelerated());
        let summary = p.run(&w.frames);
        assert_eq!(summary.frames, 30);
        assert!(summary.total_energy.joules() > 0.0);
    }

    #[test]
    fn authenticator_separates_enrolled_from_impostor() {
        let mut rng = StdRng::seed_from_u64(101);
        let enrolled = Identity::sample(&mut rng);
        let impostors: Vec<Identity> = (0..4).map(|_| Identity::sample(&mut rng)).collect();
        let net = train_authenticator(&enrolled, &impostors, 120, 30, 120, 20, &mut rng);
        let sigmoid = incam_nn::sigmoid::Sigmoid::Exact;
        let score = |id: &Identity, rng: &mut StdRng| -> f32 {
            let mut total = 0.0;
            for _ in 0..10 {
                let nz = Nuisance::sample(rng, 0.35);
                let f = render_face(id, &nz, 24, rng);
                let x = resize_bilinear(&f, 20, 20).to_vec_f32();
                total += net.forward(&x, &sigmoid)[0];
            }
            total / 10.0
        };
        let s_pos = score(&enrolled, &mut rng);
        let s_neg = score(&impostors[0], &mut rng);
        assert!(s_pos > s_neg + 0.15, "enrolled {s_pos} vs impostor {s_neg}");
    }
}
