//! Degradation-aware platform simulation: frame processing across RF
//! brownouts, with checkpoint/resume at block granularity.
//!
//! The ideal-world loop in [`platform`](crate::platform) charges a
//! capacitor from a steady carrier and draws whole frames. Real
//! deployments lose the carrier — a person blocks the beam, the reader
//! duty-cycles — and a frame interrupted mid-pipeline loses power with
//! work half done. What happens next is a policy choice:
//!
//! * [`RecoveryPolicy::RestartFrame`] — volatile state only: every
//!   joule spent on the interrupted frame is wasted and the frame
//!   restarts from the sensor once power returns;
//! * [`RecoveryPolicy::Checkpoint`] — completed blocks are persisted
//!   (WISPCam's FRAM makes this nearly free, modelled as a small
//!   per-save energy cost), so the frame resumes at the block where it
//!   stalled.
//!
//! The block granularity comes from
//! [`BlockEnergies::as_array`](crate::pipeline::BlockEnergies::as_array):
//! sensor → motion → detect → NN → radio, the pipeline's execution
//! order.

use crate::pipeline::FrameOutcome;
use crate::platform::WispCamPlatform;
use incam_core::units::{Fps, Joules, Seconds};
use incam_faults::BrownoutTrace;

/// What the camera does with a frame interrupted by power loss.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecoveryPolicy {
    /// Progress is volatile: the frame restarts from the first block and
    /// the energy already spent on it is wasted.
    RestartFrame,
    /// Every block's output is written through to non-volatile storage
    /// as it completes (each write costs
    /// [`DegradedSimConfig::checkpoint_cost`]), so an interrupted frame
    /// resumes at the stalled block with no work lost.
    Checkpoint,
}

impl RecoveryPolicy {
    /// Short label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            RecoveryPolicy::RestartFrame => "restart",
            RecoveryPolicy::Checkpoint => "checkpoint",
        }
    }
}

/// Configuration of a degraded simulation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DegradedSimConfig {
    /// Capture attempts per second (one frame attempt per period).
    pub target_fps: Fps,
    /// Recovery policy across power loss.
    pub policy: RecoveryPolicy,
    /// Energy to persist one block's output (FRAM write). Only drawn
    /// under [`RecoveryPolicy::Checkpoint`], once per completed block —
    /// write-through checkpointing's standing overhead.
    pub checkpoint_cost: Joules,
    /// Hard cap on simulated periods (the run ends early once every
    /// frame in the trace has been processed).
    pub max_periods: usize,
}

impl DegradedSimConfig {
    /// `target_fps` frame attempts per second, 10 nJ checkpoint writes
    /// (an FRAM write-through of one block's compact output), and a
    /// period budget of four times the frame count (passed to
    /// [`simulate_degraded`] via `max_periods`).
    ///
    /// # Panics
    ///
    /// Panics if `target_fps` is not positive and finite.
    pub fn at_fps(target_fps: f64, policy: RecoveryPolicy, frames: usize) -> Self {
        assert!(
            target_fps.is_finite() && target_fps > 0.0,
            "target_fps must be positive and finite, got {target_fps}"
        );
        Self {
            target_fps: Fps::new(target_fps),
            policy,
            checkpoint_cost: Joules::from_nano(10.0),
            max_periods: frames.saturating_mul(4).max(1),
        }
    }

    /// The WISPCam baseline cadence: one frame attempt per second (see
    /// [`DegradedSimConfig::at_fps`]).
    pub fn at_one_fps(policy: RecoveryPolicy, frames: usize) -> Self {
        Self::at_fps(1.0, policy, frames)
    }
}

/// Outcome of a degraded platform simulation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DegradedReport {
    /// Periods actually simulated.
    pub periods: usize,
    /// Frames in the input trace.
    pub frames_total: usize,
    /// Frames fully processed (all blocks ran to completion).
    pub frames_completed: usize,
    /// Periods with the RF carrier degraded below full power.
    pub outage_periods: usize,
    /// Periods where the active frame stalled mid-pipeline for lack of
    /// stored energy.
    pub stalled_periods: usize,
    /// Frame restarts forced by stalls under
    /// [`RecoveryPolicy::RestartFrame`].
    pub restarts: usize,
    /// Checkpoint saves performed under [`RecoveryPolicy::Checkpoint`].
    pub checkpoint_saves: usize,
    /// Energy thrown away re-executing blocks after restarts.
    pub wasted: Joules,
    /// Total energy harvested.
    pub harvested: Joules,
    /// Total energy drawn from the capacitor (useful + wasted +
    /// checkpoint writes).
    pub consumed: Joules,
    /// Achieved frame rate over the simulated wall-clock.
    pub achieved_fps: Fps,
}

impl DegradedReport {
    /// Fraction of input frames completed.
    pub fn completion_rate(&self) -> f64 {
        if self.frames_total == 0 {
            return 1.0;
        }
        self.frames_completed as f64 / self.frames_total as f64
    }

    /// Fraction of consumed energy that produced completed work.
    pub fn energy_efficiency(&self) -> f64 {
        if self.consumed.joules() <= 0.0 {
            return 1.0;
        }
        1.0 - self.wasted.joules() / self.consumed.joules()
    }
}

/// Replays a per-frame energy trace against a browning-out carrier.
///
/// Each period the platform harvests at the trace's power factor, then
/// works on the current frame block by block, drawing each block's
/// energy from the capacitor. A block the store cannot fund stalls the
/// frame for the rest of the period; the recovery policy decides how
/// much progress survives to the next one. The run ends when every
/// frame has completed or `config.max_periods` elapses.
///
/// Fully deterministic: the only randomness is inside `brownouts`,
/// which was sampled from a seed up front.
///
/// # Panics
///
/// Panics if `frames` or `brownouts` is empty, or `target_fps` is not
/// positive.
pub fn simulate_degraded(
    platform: &mut WispCamPlatform,
    frames: &[FrameOutcome],
    brownouts: &BrownoutTrace,
    config: &DegradedSimConfig,
) -> DegradedReport {
    assert!(!frames.is_empty(), "need at least one frame");
    assert!(!brownouts.is_empty(), "need a non-empty brownout trace");
    assert!(config.target_fps.fps() > 0.0, "frame rate must be positive");
    let period = Seconds::new(1.0 / config.target_fps.fps());

    let mut completed = 0usize;
    let mut outage_periods = 0usize;
    let mut stalled_periods = 0usize;
    let mut restarts = 0usize;
    let mut checkpoint_saves = 0usize;
    let mut wasted = Joules::ZERO;
    let mut harvested = Joules::ZERO;
    let mut consumed = Joules::ZERO;

    let mut frame_idx = 0usize;
    // blocks of the active frame already paid for (survives periods only
    // under Checkpoint)
    let mut done_blocks = 0usize;
    let mut spent_on_frame = Joules::ZERO;
    let mut periods = 0usize;

    while frame_idx < frames.len() && periods < config.max_periods {
        let factor = brownouts.power_factor(periods as u64);
        if factor < 1.0 {
            outage_periods += 1;
        }
        let e = platform.harvester().harvest_during(period, factor);
        harvested += platform.capacitor_mut().charge(e);

        let blocks = frames[frame_idx].blocks.as_array();
        let mut stalled = false;
        while done_blocks < blocks.len() {
            let cost = blocks[done_blocks].max(Joules::ZERO);
            // under Checkpoint the block's output is persisted as part of
            // the block itself — the write is funded or the block stalls
            let save = match config.policy {
                RecoveryPolicy::Checkpoint if cost.joules() > 0.0 => config.checkpoint_cost,
                _ => Joules::ZERO,
            };
            if cost.joules() > 0.0 && !platform.capacitor_mut().try_draw(cost + save) {
                stalled = true;
                break;
            }
            consumed += cost + save;
            spent_on_frame += cost;
            checkpoint_saves += usize::from(save.joules() > 0.0);
            done_blocks += 1;
        }

        if stalled {
            stalled_periods += 1;
            if config.policy == RecoveryPolicy::RestartFrame {
                wasted += spent_on_frame;
                restarts += usize::from(done_blocks > 0);
                done_blocks = 0;
                spent_on_frame = Joules::ZERO;
            }
        } else {
            completed += 1;
            frame_idx += 1;
            done_blocks = 0;
            spent_on_frame = Joules::ZERO;
        }
        periods += 1;
    }

    let elapsed = period * periods as f64;
    DegradedReport {
        periods,
        frames_total: frames.len(),
        frames_completed: completed,
        outage_periods,
        stalled_periods,
        restarts,
        checkpoint_saves,
        wasted,
        harvested,
        consumed,
        achieved_fps: if elapsed.secs() > 0.0 {
            Fps::new(completed as f64 / elapsed.secs())
        } else {
            Fps::ZERO
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::BlockEnergies;
    use incam_faults::BrownoutModel;

    /// A synthetic frame whose five blocks each cost `per_block`.
    fn frame(per_block: Joules) -> FrameOutcome {
        let blocks = BlockEnergies {
            sensor: per_block,
            motion: per_block,
            detect: per_block,
            nn: per_block,
            radio: per_block,
        };
        FrameOutcome {
            motion: true,
            scanned: true,
            windows_scored: 1,
            authenticated: false,
            energy: blocks.total(),
            blocks,
        }
    }

    #[test]
    fn steady_power_completes_everything() {
        let mut p = WispCamPlatform::wispcam_default();
        // 5 x 20 uJ = 100 uJ/frame on ~400 uW: trivially sustainable
        let frames = vec![frame(Joules::from_micro(20.0)); 50];
        let trace = BrownoutTrace::steady(256);
        let cfg = DegradedSimConfig::at_one_fps(RecoveryPolicy::RestartFrame, frames.len());
        let r = simulate_degraded(&mut p, &frames, &trace, &cfg);
        assert_eq!(r.frames_completed, 50);
        assert_eq!(r.restarts, 0);
        assert_eq!(r.stalled_periods, 0);
        assert_eq!(r.wasted, Joules::ZERO);
        assert_eq!(r.periods, 50);
    }

    #[test]
    fn checkpoint_beats_restart_under_brownouts() {
        // frames expensive enough that an outage interrupts them
        let frames = vec![frame(Joules::from_micro(400.0)); 40];
        let trace = BrownoutModel::new(0.25, 3.0).trace(2017, 4096);
        let run = |policy| {
            let mut p = WispCamPlatform::wispcam_default();
            let cfg = DegradedSimConfig::at_one_fps(policy, frames.len());
            simulate_degraded(&mut p, &frames, &trace, &cfg)
        };
        let restart = run(RecoveryPolicy::RestartFrame);
        let checkpoint = run(RecoveryPolicy::Checkpoint);
        assert!(restart.stalled_periods > 0, "scenario too easy to stall");
        assert!(
            checkpoint.frames_completed >= restart.frames_completed,
            "checkpoint {} vs restart {}",
            checkpoint.frames_completed,
            restart.frames_completed
        );
        assert!(
            checkpoint.wasted <= restart.wasted,
            "checkpoint wasted {} vs restart wasted {}",
            checkpoint.wasted.human(),
            restart.wasted.human()
        );
        assert!(checkpoint.checkpoint_saves > 0);
        assert_eq!(restart.checkpoint_saves, 0);
    }

    #[test]
    fn restart_wastes_partial_frame_energy() {
        let frames = vec![frame(Joules::from_micro(500.0)); 20];
        let trace = BrownoutModel::new(0.3, 4.0).trace(7, 4096);
        let mut p = WispCamPlatform::wispcam_default();
        let cfg = DegradedSimConfig::at_one_fps(RecoveryPolicy::RestartFrame, frames.len());
        let r = simulate_degraded(&mut p, &frames, &trace, &cfg);
        if r.restarts > 0 {
            assert!(r.wasted.joules() > 0.0);
            assert!(r.energy_efficiency() < 1.0);
        }
        // conservation: can't draw more than harvested (store starts empty)
        assert!(r.consumed.joules() <= r.harvested.joules() + 1e-12);
    }

    #[test]
    fn deterministic_for_fixed_trace() {
        let frames = vec![frame(Joules::from_micro(300.0)); 30];
        let trace = BrownoutModel::new(0.2, 3.0).trace(99, 2048);
        let run = || {
            let mut p = WispCamPlatform::wispcam_default();
            let cfg = DegradedSimConfig::at_one_fps(RecoveryPolicy::Checkpoint, frames.len());
            simulate_degraded(&mut p, &frames, &trace, &cfg)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn period_budget_caps_the_run() {
        let frames = vec![frame(Joules::from_milli(50.0)); 10]; // infeasible
        let trace = BrownoutTrace::steady(64);
        let mut p = WispCamPlatform::wispcam_default();
        let cfg = DegradedSimConfig {
            max_periods: 25,
            ..DegradedSimConfig::at_one_fps(RecoveryPolicy::Checkpoint, frames.len())
        };
        let r = simulate_degraded(&mut p, &frames, &trace, &cfg);
        assert_eq!(r.periods, 25);
        assert!(r.frames_completed < 10);
    }
}
