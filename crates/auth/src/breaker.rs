//! Deterministic circuit breaker for the verify pipeline.
//!
//! The breaker watches fault outcomes per request and sheds load when
//! the pipeline is clearly down: after `trip_after` *consecutive*
//! faults it opens, rejecting every request (the service converts that
//! to a fail-closed `Fallback::BreakerOpen` — shedding is cheaper than
//! burning radio energy on uploads that will brown out anyway). After
//! `cooldown_ticks` ticks it goes half-open and admits a bounded number
//! of probe requests; if all probes succeed it closes, a single probe
//! fault re-opens it and restarts the cooldown.
//!
//! Time is the service's request tick (a sequence number), not a wall
//! clock, so breaker behaviour is a pure function of the outcome
//! sequence — the same fault trace always produces the same trips.

/// Breaker tuning. All thresholds are in requests/ticks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BreakerConfig {
    /// Consecutive faults that trip the breaker open.
    pub trip_after: u32,
    /// Ticks the breaker stays open before going half-open.
    pub cooldown_ticks: u64,
    /// Probe successes required in half-open before closing.
    pub half_open_probes: u32,
}

impl BreakerConfig {
    /// Service defaults: trip after 4 consecutive faults, 16-tick
    /// cooldown, 2 successful probes to close.
    pub fn service_default() -> Self {
        Self {
            trip_after: 4,
            cooldown_ticks: 16,
            half_open_probes: 2,
        }
    }

    /// Panics if any threshold is zero (a breaker that trips on zero
    /// faults or probes with zero requests is meaningless).
    pub fn validate(&self) {
        assert!(self.trip_after > 0, "trip_after must be positive");
        assert!(self.cooldown_ticks > 0, "cooldown_ticks must be positive");
        assert!(
            self.half_open_probes > 0,
            "half_open_probes must be positive"
        );
    }
}

/// Breaker state, exposed for reports and assertions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Normal operation; counting consecutive faults.
    Closed,
    /// Shedding all load since `since_tick`.
    Open {
        /// Tick at which the breaker (re-)opened.
        since_tick: u64,
    },
    /// Admitting probes; `successes` of the required quota so far.
    HalfOpen {
        /// Probe successes accumulated this half-open episode.
        successes: u32,
    },
}

/// What the breaker says about an arriving request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerDecision {
    /// Serve it normally.
    Admit,
    /// Serve it as a half-open probe (outcome decides close/re-open).
    Probe,
    /// Shed it without serving.
    Shed,
}

/// The breaker itself. Drive it with [`CircuitBreaker::admit`] per
/// request and [`CircuitBreaker::record`] per served outcome.
#[derive(Debug, Clone)]
pub struct CircuitBreaker {
    config: BreakerConfig,
    state: BreakerState,
    consecutive_faults: u32,
    trips: u64,
}

impl CircuitBreaker {
    /// A closed breaker with the given (validated) config.
    pub fn new(config: BreakerConfig) -> Self {
        config.validate();
        Self {
            config,
            state: BreakerState::Closed,
            consecutive_faults: 0,
            trips: 0,
        }
    }

    /// Current state.
    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// Times the breaker has transitioned to open (including re-opens
    /// from half-open).
    pub fn trips(&self) -> u64 {
        self.trips
    }

    /// Whether requests are currently shed outright.
    pub fn is_open(&self) -> bool {
        matches!(self.state, BreakerState::Open { .. })
    }

    /// Decides the fate of a request arriving at `tick`. Open → Shed
    /// (or transition to half-open once the cooldown has elapsed);
    /// half-open → Probe; closed → Admit.
    pub fn admit(&mut self, tick: u64) -> BreakerDecision {
        match self.state {
            BreakerState::Closed => BreakerDecision::Admit,
            BreakerState::Open { since_tick } => {
                if tick.saturating_sub(since_tick) >= self.config.cooldown_ticks {
                    self.state = BreakerState::HalfOpen { successes: 0 };
                    BreakerDecision::Probe
                } else {
                    BreakerDecision::Shed
                }
            }
            BreakerState::HalfOpen { .. } => BreakerDecision::Probe,
        }
    }

    /// Records the outcome of a request served at `tick` (`faulted` =
    /// any injected fault, timeout, or error on its path — verdict
    /// Accept/Reject both count as success).
    pub fn record(&mut self, tick: u64, faulted: bool) {
        match self.state {
            BreakerState::Closed => {
                if faulted {
                    self.consecutive_faults += 1;
                    if self.consecutive_faults >= self.config.trip_after {
                        self.trip(tick);
                    }
                } else {
                    self.consecutive_faults = 0;
                }
            }
            BreakerState::HalfOpen { successes } => {
                if faulted {
                    self.trip(tick);
                } else {
                    let successes = successes + 1;
                    if successes >= self.config.half_open_probes {
                        self.state = BreakerState::Closed;
                        self.consecutive_faults = 0;
                    } else {
                        self.state = BreakerState::HalfOpen { successes };
                    }
                }
            }
            // outcomes racing a trip are ignored; the breaker already
            // decided to shed
            BreakerState::Open { .. } => {}
        }
    }

    fn trip(&mut self, tick: u64) {
        self.state = BreakerState::Open { since_tick: tick };
        self.consecutive_faults = 0;
        self.trips += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn breaker() -> CircuitBreaker {
        CircuitBreaker::new(BreakerConfig {
            trip_after: 3,
            cooldown_ticks: 5,
            half_open_probes: 2,
        })
    }

    #[test]
    fn trips_only_on_consecutive_faults() {
        let mut b = breaker();
        for tick in 0..10 {
            // alternate fault/success: never 3 in a row
            assert_eq!(b.admit(tick), BreakerDecision::Admit);
            b.record(tick, tick % 2 == 0);
        }
        assert_eq!(b.trips(), 0);
        for tick in 10..13 {
            b.admit(tick);
            b.record(tick, true);
        }
        assert!(b.is_open());
        assert_eq!(b.trips(), 1);
    }

    #[test]
    fn sheds_through_cooldown_then_probes() {
        let mut b = breaker();
        for tick in 0..3 {
            b.admit(tick);
            b.record(tick, true);
        }
        assert_eq!(b.state(), BreakerState::Open { since_tick: 2 });
        for tick in 3..7 {
            assert_eq!(b.admit(tick), BreakerDecision::Shed);
        }
        // cooldown of 5 elapsed at tick 7
        assert_eq!(b.admit(7), BreakerDecision::Probe);
        b.record(7, false);
        assert_eq!(b.admit(8), BreakerDecision::Probe);
        b.record(8, false);
        assert_eq!(b.state(), BreakerState::Closed);
        assert_eq!(b.admit(9), BreakerDecision::Admit);
    }

    #[test]
    fn probe_fault_reopens_and_recounts_cooldown() {
        let mut b = breaker();
        for tick in 0..3 {
            b.admit(tick);
            b.record(tick, true);
        }
        assert_eq!(b.admit(7), BreakerDecision::Probe);
        b.record(7, true);
        assert_eq!(b.state(), BreakerState::Open { since_tick: 7 });
        assert_eq!(b.trips(), 2);
        assert_eq!(b.admit(11), BreakerDecision::Shed);
        assert_eq!(b.admit(12), BreakerDecision::Probe);
    }

    #[test]
    fn success_resets_consecutive_count() {
        let mut b = breaker();
        b.admit(0);
        b.record(0, true);
        b.admit(1);
        b.record(1, true);
        b.admit(2);
        b.record(2, false);
        b.admit(3);
        b.record(3, true);
        b.admit(4);
        b.record(4, true);
        assert_eq!(b.trips(), 0);
        b.admit(5);
        b.record(5, true);
        assert_eq!(b.trips(), 1);
    }
}
