//! Enrollment galleries: per-user template sets with enroll / update /
//! revoke, and max-cosine matching.
//!
//! The gallery is the service's identity store. Each user holds a
//! bounded set of template embeddings (multiple enrollment captures
//! absorb pose/lighting variation); a probe matches a user at the
//! *maximum* cosine over that user's templates. Storage is a sorted
//! `Vec` keyed by user id — deterministic iteration order, which the
//! repo's unordered-iteration lint would deny a `HashMap` for anyway.

use crate::embed::Embedding;

/// Upper bound on templates retained per user; further
/// [`Gallery::update`] calls evict the oldest (FIFO) so enrollment
/// drift tracks the most recent captures.
pub const MAX_TEMPLATES_PER_USER: usize = 8;

/// Errors from gallery mutations and lookups.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GalleryError {
    /// The user id is not enrolled.
    UnknownUser,
    /// Enroll called for an id that already exists (use `update`).
    AlreadyEnrolled,
    /// Template dimensionality disagrees with the gallery's.
    DimensionMismatch,
}

impl core::fmt::Display for GalleryError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            GalleryError::UnknownUser => write!(f, "unknown user"),
            GalleryError::AlreadyEnrolled => write!(f, "user already enrolled"),
            GalleryError::DimensionMismatch => write!(f, "template dimension mismatch"),
        }
    }
}

#[derive(Debug, Clone)]
struct Entry {
    user: u32,
    templates: Vec<Embedding>,
}

/// Per-user template store. Users are dense `u32` ids (the fleet
/// adapter assigns them); entries stay sorted by id.
#[derive(Debug, Clone, Default)]
pub struct Gallery {
    entries: Vec<Entry>,
    dim: Option<usize>,
}

impl Gallery {
    /// An empty gallery.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of enrolled users.
    pub fn users(&self) -> usize {
        self.entries.len()
    }

    /// Total templates across all users.
    pub fn templates(&self) -> usize {
        self.entries.iter().map(|e| e.templates.len()).sum()
    }

    /// Whether `user` is enrolled.
    pub fn contains(&self, user: u32) -> bool {
        self.index_of(user).is_ok()
    }

    fn index_of(&self, user: u32) -> Result<usize, usize> {
        self.entries.binary_search_by_key(&user, |e| e.user)
    }

    fn check_dim(&mut self, template: &Embedding) -> Result<(), GalleryError> {
        match self.dim {
            Some(d) if d != template.dim() => Err(GalleryError::DimensionMismatch),
            Some(_) => Ok(()),
            None => {
                self.dim = Some(template.dim());
                Ok(())
            }
        }
    }

    /// Enrolls a new user with an initial template.
    ///
    /// # Errors
    ///
    /// [`GalleryError::AlreadyEnrolled`] if the id exists,
    /// [`GalleryError::DimensionMismatch`] on a foreign feature space.
    pub fn enroll(&mut self, user: u32, template: Embedding) -> Result<(), GalleryError> {
        self.check_dim(&template)?;
        match self.index_of(user) {
            Ok(_) => Err(GalleryError::AlreadyEnrolled),
            Err(pos) => {
                self.entries.insert(
                    pos,
                    Entry {
                        user,
                        templates: vec![template],
                    },
                );
                Ok(())
            }
        }
    }

    /// Adds a template to an enrolled user, evicting the oldest beyond
    /// [`MAX_TEMPLATES_PER_USER`].
    ///
    /// # Errors
    ///
    /// [`GalleryError::UnknownUser`] or
    /// [`GalleryError::DimensionMismatch`].
    pub fn update(&mut self, user: u32, template: Embedding) -> Result<(), GalleryError> {
        self.check_dim(&template)?;
        let idx = self.index_of(user).map_err(|_| GalleryError::UnknownUser)?;
        let templates = &mut self.entries[idx].templates;
        templates.push(template);
        if templates.len() > MAX_TEMPLATES_PER_USER {
            templates.remove(0);
        }
        Ok(())
    }

    /// Removes a user and all their templates.
    ///
    /// # Errors
    ///
    /// [`GalleryError::UnknownUser`].
    pub fn revoke(&mut self, user: u32) -> Result<(), GalleryError> {
        let idx = self.index_of(user).map_err(|_| GalleryError::UnknownUser)?;
        self.entries.remove(idx);
        Ok(())
    }

    /// Max cosine similarity of `probe` against `user`'s templates.
    ///
    /// # Errors
    ///
    /// [`GalleryError::UnknownUser`] or
    /// [`GalleryError::DimensionMismatch`].
    pub fn match_score(&self, user: u32, probe: &Embedding) -> Result<f32, GalleryError> {
        if self.dim.is_some_and(|d| d != probe.dim()) {
            return Err(GalleryError::DimensionMismatch);
        }
        let idx = self.index_of(user).map_err(|_| GalleryError::UnknownUser)?;
        let best = self.entries[idx]
            .templates
            .iter()
            .map(|t| t.cosine(probe))
            .fold(f32::NEG_INFINITY, f32::max);
        Ok(best)
    }

    /// Enrolled user ids, ascending.
    pub fn user_ids(&self) -> impl Iterator<Item = u32> + '_ {
        self.entries.iter().map(|e| e.user)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit(axis: usize) -> Embedding {
        let mut v = vec![0.0f32; 4];
        v[axis] = 1.0;
        Embedding::from_raw(v).unwrap()
    }

    #[test]
    fn enroll_update_revoke_roundtrip() {
        let mut g = Gallery::new();
        g.enroll(3, unit(0)).unwrap();
        g.enroll(1, unit(1)).unwrap();
        assert_eq!(g.enroll(3, unit(2)), Err(GalleryError::AlreadyEnrolled));
        assert_eq!(g.users(), 2);
        assert_eq!(g.user_ids().collect::<Vec<_>>(), vec![1, 3]);
        g.update(3, unit(2)).unwrap();
        assert_eq!(g.templates(), 3);
        g.revoke(3).unwrap();
        assert_eq!(g.revoke(3), Err(GalleryError::UnknownUser));
        assert!(!g.contains(3) && g.contains(1));
    }

    #[test]
    fn match_takes_max_over_templates() {
        let mut g = Gallery::new();
        g.enroll(7, unit(0)).unwrap();
        g.update(7, unit(1)).unwrap();
        // probe along axis 1 matches the second template perfectly
        assert!((g.match_score(7, &unit(1)).unwrap() - 1.0).abs() < 1e-6);
        // probe along axis 2 is orthogonal to both
        assert!(g.match_score(7, &unit(2)).unwrap().abs() < 1e-6);
        assert_eq!(g.match_score(9, &unit(0)), Err(GalleryError::UnknownUser));
    }

    #[test]
    fn template_cap_evicts_oldest() {
        let mut g = Gallery::new();
        g.enroll(1, unit(0)).unwrap();
        for _ in 0..MAX_TEMPLATES_PER_USER + 3 {
            g.update(1, unit(1)).unwrap();
        }
        assert_eq!(g.templates(), MAX_TEMPLATES_PER_USER);
        // the original axis-0 template was evicted
        assert!(g.match_score(1, &unit(0)).unwrap() < 0.5);
    }

    #[test]
    fn dimension_mismatch_refused() {
        let mut g = Gallery::new();
        g.enroll(1, unit(0)).unwrap();
        let wide = Embedding::from_raw(vec![1.0; 8]).unwrap();
        assert_eq!(
            g.update(1, wide.clone()),
            Err(GalleryError::DimensionMismatch)
        );
        assert_eq!(
            g.enroll(2, wide.clone()),
            Err(GalleryError::DimensionMismatch)
        );
        assert_eq!(
            g.match_score(1, &wide),
            Err(GalleryError::DimensionMismatch)
        );
    }
}
