//! The verify service: request/response loop with admission control,
//! retries, deadlines, circuit breaking — and fail-closed semantics.
//!
//! A [`VerifyRequest`] travels admission → align → embed → match →
//! verdict. Admission is a bounded-queue ingest tier (the
//! [`incam_fleet::ingest`] state machine) with batch service so the
//! embed stage genuinely runs through [`forward_batch`]; the breaker
//! sheds load after consecutive faults; every stage and the upload at
//! the offload cut run under [`RetryPolicy`] backoff against a
//! [`FaultOracle`]; elapsed *modeled* time is checked against the
//! request's deadline after every stage.
//!
//! **Fail-closed:** the only path to [`Verdict::Accept`] runs the
//! complete pipeline inside the deadline with every final attempt
//! nominal and a genuine cosine match above threshold. Every fault
//! exhaustion, lost upload, deadline miss, shed, overflow, or internal
//! error becomes a [`Verdict::Fallback`] — the door stays locked and
//! the caller is told to use its secondary factor.
//!
//! [`forward_batch`]: incam_nn::Mlp::forward_batch

use crate::align::{align_face, EyeLandmarks};
use crate::breaker::{BreakerConfig, BreakerDecision, CircuitBreaker};
use crate::embed::EmbeddingHead;
use crate::gallery::Gallery;
use incam_core::link::Link;
use incam_core::report::{sig3, Table};
use incam_core::runtime::{ComputeCondition, FaultOracle, RetryPolicy};
use incam_core::units::{Bytes, Joules, Seconds};
use incam_fleet::ingest::{Admission, Ingest, IngestConfig};
use incam_imaging::image::GrayImage;

/// Pipeline stages between capture and verdict.
pub const NUM_STAGES: usize = 3;

/// Stage names, indexed by stage id.
pub const STAGE_NAMES: [&str; NUM_STAGES] = ["align", "embed", "match"];

/// Calibrated cost of one stage on the camera-side binding.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StageCost {
    /// Nominal execution time of the stage for one probe.
    pub time: Seconds,
    /// Energy drawn by one execution attempt.
    pub energy: Joules,
}

/// An executable offload plan: which stages run on-camera, what crosses
/// the link, and what everything costs.
#[derive(Debug, Clone)]
pub struct VerifyPlan {
    /// Human label for reports (e.g. `"cut=1 A|cloud"`).
    pub label: String,
    /// Stages `< cut` run on-camera; stages `>= cut` run in the cloud.
    /// `cut == NUM_STAGES` keeps the whole pipeline local.
    pub cut: usize,
    /// Per-stage on-camera costs, indexed by stage.
    pub local: [StageCost; NUM_STAGES],
    /// Nominal per-stage time on the cloud tier (energy is off the
    /// camera's budget).
    pub cloud_time: Seconds,
    /// Payload crossing the link at the cut (raw window, embedding, or
    /// verdict).
    pub payload: Bytes,
    /// The uplink the payload crosses.
    pub link: Link,
}

impl VerifyPlan {
    /// Checks the plan's invariants.
    ///
    /// # Panics
    ///
    /// Panics if `cut` exceeds [`NUM_STAGES`] or the payload is
    /// negative.
    pub fn validate(&self) {
        assert!(self.cut <= NUM_STAGES, "cut {} out of range", self.cut);
        assert!(self.payload.bytes() >= 0.0, "payload must be non-negative");
    }
}

/// One probe capture: the rendered face patch plus its eye landmarks
/// (the synthetic workload's landmark-detector output).
#[derive(Debug, Clone)]
pub struct Probe {
    /// The captured face patch.
    pub image: GrayImage,
    /// Detected eye centers on that patch.
    pub landmarks: EyeLandmarks,
}

/// A verification request as issued by a camera.
#[derive(Debug, Clone)]
pub struct VerifyRequest {
    /// Claimed identity to verify against.
    pub user: u32,
    /// Issuing camera (fleet adapter's id; reports aggregate on it).
    pub camera: u64,
    /// Globally unique frame id keying the fault traces.
    pub frame: u64,
    /// End-to-end latency budget for this request.
    pub deadline: Seconds,
    /// The probe capture.
    pub probe: Probe,
}

/// Why a request fell back to the secondary authentication factor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FallbackReason {
    /// The breaker was open; the request was shed unserved.
    BreakerOpen,
    /// The admission queue was at capacity.
    QueueFull,
    /// The claimed user has no enrollment.
    UnknownUser,
    /// Landmark geometry was degenerate; no aligned window exists.
    AlignFailed,
    /// The embedding collapsed (or mismatched the gallery's space).
    EmbedFailed,
    /// A stage exhausted its retry budget on injected faults.
    ComputeExhausted {
        /// The stage that gave up.
        stage: usize,
    },
    /// Every transmission attempt at the cut was lost.
    LinkLost,
    /// Modeled time crossed the deadline.
    DeadlineMissed {
        /// The stage (or upload == cut stage) after which the budget
        /// ran out.
        stage: usize,
    },
}

/// Number of distinct fallback reasons (counter array width).
pub const FALLBACK_KINDS: usize = 8;

impl FallbackReason {
    /// Dense counter index of the reason.
    pub fn index(&self) -> usize {
        match self {
            FallbackReason::BreakerOpen => 0,
            FallbackReason::QueueFull => 1,
            FallbackReason::UnknownUser => 2,
            FallbackReason::AlignFailed => 3,
            FallbackReason::EmbedFailed => 4,
            FallbackReason::ComputeExhausted { .. } => 5,
            FallbackReason::LinkLost => 6,
            FallbackReason::DeadlineMissed { .. } => 7,
        }
    }

    /// Stable label for reports, by counter index.
    pub fn label(index: usize) -> &'static str {
        [
            "breaker-open",
            "queue-full",
            "unknown-user",
            "align-failed",
            "embed-failed",
            "compute-exhausted",
            "link-lost",
            "deadline-missed",
        ][index]
    }

    /// Whether this fallback reflects an infrastructure fault (counts
    /// toward tripping the breaker) rather than a client/data problem.
    pub fn is_infra_fault(&self) -> bool {
        matches!(
            self,
            FallbackReason::ComputeExhausted { .. }
                | FallbackReason::LinkLost
                | FallbackReason::DeadlineMissed { .. }
        )
    }
}

/// The service's answer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Verdict {
    /// Identity confirmed with the given cosine score.
    Accept {
        /// Max cosine over the user's templates.
        score: f32,
    },
    /// Probe does not match the claimed identity.
    Reject {
        /// Max cosine over the user's templates.
        score: f32,
    },
    /// Could not verify safely — caller must fall back to its
    /// secondary factor. Never grants access.
    Fallback(FallbackReason),
}

impl Verdict {
    /// Whether access was granted.
    pub fn is_accept(&self) -> bool {
        matches!(self, Verdict::Accept { .. })
    }
}

/// Per-request outcome with its accounted latency and camera energy.
#[derive(Debug, Clone)]
pub struct Served {
    /// The verdict returned to the caller.
    pub verdict: Verdict,
    /// Modeled end-to-end latency (queue wait + pipeline + upload).
    pub latency: Seconds,
    /// Camera-side energy spent on this request (all attempts).
    pub energy: Joules,
}

/// Service tuning knobs.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Cosine threshold separating Accept from Reject.
    pub threshold: f32,
    /// Modeled duration of one arrival tick (inter-request spacing).
    pub tick_period: Seconds,
    /// Retry semantics for stages and uploads.
    pub retry: RetryPolicy,
    /// Admission-control tier.
    pub ingest: IngestConfig,
    /// Circuit-breaker thresholds.
    pub breaker: BreakerConfig,
}

impl ServiceConfig {
    /// Experiment defaults: threshold 0.92, 5 ms ticks, default retry
    /// policy, a 32-deep/4-wide ingest tier, default breaker.
    pub fn experiment_default() -> Self {
        Self {
            threshold: 0.92,
            tick_period: Seconds::from_millis(5.0),
            retry: RetryPolicy::default(),
            ingest: IngestConfig {
                capacity: 32,
                batch: 4,
                flush_ticks: 8,
                service_ticks: 2,
            },
            breaker: BreakerConfig::service_default(),
        }
    }

    /// Checks all nested configs.
    ///
    /// # Panics
    ///
    /// Panics if any nested config or the threshold/tick period is
    /// invalid.
    pub fn validate(&self) {
        assert!(
            self.threshold.is_finite() && (-1.0..=1.0).contains(&self.threshold),
            "threshold must be a cosine in [-1, 1]"
        );
        assert!(
            self.tick_period.secs() > 0.0,
            "tick period must be positive"
        );
        self.retry.validate();
        self.ingest.validate();
        self.breaker.validate();
    }
}

/// Aggregate counters for one service run. All integers are exact;
/// the digest pins them byte-for-byte in golden tests.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceReport {
    /// Requests offered to the service.
    pub requests: u64,
    /// Verdicts granting access.
    pub accepts: u64,
    /// Verdicts denying access on score.
    pub rejects: u64,
    /// Fallbacks by [`FallbackReason::index`].
    pub fallbacks: [u64; FALLBACK_KINDS],
    /// Breaker transitions to open.
    pub breaker_trips: u64,
    /// Extra compute attempts beyond the first, all stages.
    pub compute_retries: u64,
    /// Extra transmission attempts beyond the first.
    pub link_retries: u64,
    /// Served requests (accept or reject) that met their deadline.
    pub deadline_hits: u64,
    /// Total camera-side energy across all requests.
    pub energy: Joules,
}

impl ServiceReport {
    /// Total fallbacks across all reasons.
    pub fn total_fallbacks(&self) -> u64 {
        self.fallbacks.iter().sum()
    }

    /// Accepts + rejects + fallbacks must equal requests.
    pub fn conserves(&self) -> bool {
        self.accepts + self.rejects + self.total_fallbacks() == self.requests
    }

    /// Camera energy per accepted verify (the paper's
    /// energy-per-useful-result metric). Infinite when nothing was
    /// accepted.
    pub fn energy_per_accept(&self) -> Joules {
        if self.accepts == 0 {
            Joules::new(f64::INFINITY)
        } else {
            self.energy / self.accepts as f64
        }
    }

    /// FNV-1a digest over every exact counter (energy excluded: floats
    /// are compared via rendered tables instead).
    pub fn digest(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut mix = |v: u64| {
            for b in v.to_le_bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
        };
        mix(self.requests);
        mix(self.accepts);
        mix(self.rejects);
        for f in self.fallbacks {
            mix(f);
        }
        mix(self.breaker_trips);
        mix(self.compute_retries);
        mix(self.link_retries);
        mix(self.deadline_hits);
        h
    }

    /// Renders the counters as a two-column table.
    pub fn render(&self) -> String {
        let mut t = Table::new(&["counter", "value"]);
        t.row_owned(vec!["requests".into(), self.requests.to_string()]);
        t.row_owned(vec!["accepts".into(), self.accepts.to_string()]);
        t.row_owned(vec!["rejects".into(), self.rejects.to_string()]);
        for (i, f) in self.fallbacks.iter().enumerate() {
            t.row_owned(vec![
                format!("fallback:{}", FallbackReason::label(i)),
                f.to_string(),
            ]);
        }
        t.row_owned(vec!["breaker-trips".into(), self.breaker_trips.to_string()]);
        t.row_owned(vec![
            "compute-retries".into(),
            self.compute_retries.to_string(),
        ]);
        t.row_owned(vec!["link-retries".into(), self.link_retries.to_string()]);
        t.row_owned(vec!["deadline-hits".into(), self.deadline_hits.to_string()]);
        t.row_owned(vec!["energy".into(), self.energy.human()]);
        t.row_owned(vec![
            "energy/accept".into(),
            if self.accepts == 0 {
                "inf".into()
            } else {
                self.energy_per_accept().human()
            },
        ]);
        t.row_owned(vec!["digest".into(), format!("{:016x}", self.digest())]);
        t.render()
    }
}

/// Outcome of a full [`VerifyService::serve`] run: one [`Served`] per
/// request, in request order, plus the aggregate report.
#[derive(Debug, Clone)]
pub struct ServiceRun {
    /// Per-request outcomes, parallel to the request slice.
    pub served: Vec<Served>,
    /// Aggregate counters.
    pub report: ServiceReport,
}

/// Result of the modeled (time/energy/fault) pipeline for one request.
enum ModelOutcome {
    /// Survived with this latency.
    Survived(Seconds),
    /// Fell back; latency when the pipeline gave up.
    Fell(FallbackReason, Seconds),
}

/// The verify service: gallery + embedding head + breaker + admission
/// queue + offload plan.
pub struct VerifyService {
    head: EmbeddingHead,
    gallery: Gallery,
    plan: VerifyPlan,
    config: ServiceConfig,
    breaker: CircuitBreaker,
}

impl VerifyService {
    /// Assembles a service. All configs are validated up front.
    pub fn new(
        head: EmbeddingHead,
        gallery: Gallery,
        plan: VerifyPlan,
        config: ServiceConfig,
    ) -> Self {
        plan.validate();
        config.validate();
        let breaker = CircuitBreaker::new(config.breaker);
        Self {
            head,
            gallery,
            plan,
            config,
            breaker,
        }
    }

    /// The enrollment gallery (for enroll/update/revoke between runs).
    pub fn gallery_mut(&mut self) -> &mut Gallery {
        &mut self.gallery
    }

    /// The embedding head (shared with enrollment).
    pub fn head(&self) -> &EmbeddingHead {
        &self.head
    }

    /// The active offload plan.
    pub fn plan(&self) -> &VerifyPlan {
        &self.plan
    }

    /// Serves a request trace in arrival order (request `i` arrives at
    /// tick `i`) against `oracle`, returning per-request outcomes and
    /// aggregate counters. Deterministic: a pure function of the
    /// requests, the oracle, and the service state.
    pub fn serve(&mut self, requests: &[VerifyRequest], oracle: &impl FaultOracle) -> ServiceRun {
        let mut ingest = Ingest::new(self.config.ingest);
        let mut served: Vec<Option<Served>> = vec![None; requests.len()];
        let mut report = ServiceReport {
            requests: requests.len() as u64,
            accepts: 0,
            rejects: 0,
            fallbacks: [0; FALLBACK_KINDS],
            breaker_trips: 0,
            compute_retries: 0,
            link_retries: 0,
            deadline_hits: 0,
            energy: Joules::ZERO,
        };
        // at most one partial batch exists, so one flush timer suffices
        let mut flush_timer: Option<(u64, u64)> = None; // (epoch, due tick)
        let mut completions: Vec<(u64, u64)> = Vec::new(); // (due tick, frames)

        for (idx, request) in requests.iter().enumerate() {
            let tick = idx as u64;
            self.run_timers(
                tick,
                &mut ingest,
                &mut flush_timer,
                &mut completions,
                requests,
                oracle,
                &mut served,
                &mut report,
            );

            match self.breaker.admit(tick) {
                BreakerDecision::Shed => {
                    self.finish(
                        idx,
                        Served {
                            verdict: Verdict::Fallback(FallbackReason::BreakerOpen),
                            latency: Seconds::ZERO,
                            energy: Joules::ZERO,
                        },
                        &mut served,
                        &mut report,
                    );
                    continue;
                }
                BreakerDecision::Probe => {
                    // probes bypass the batch queue: the breaker needs a
                    // prompt health signal
                    let outcome = self.serve_one(request, tick, tick, oracle, &mut report);
                    let faulted = matches!(
                        outcome.verdict,
                        Verdict::Fallback(r) if r.is_infra_fault()
                    );
                    self.breaker.record(tick, faulted);
                    self.finish(idx, outcome, &mut served, &mut report);
                    continue;
                }
                BreakerDecision::Admit => {}
            }

            if !self.gallery.contains(request.user) {
                self.finish(
                    idx,
                    Served {
                        verdict: Verdict::Fallback(FallbackReason::UnknownUser),
                        latency: Seconds::ZERO,
                        energy: Joules::ZERO,
                    },
                    &mut served,
                    &mut report,
                );
                continue;
            }

            match ingest.offer(tick) {
                Admission::Dropped => {
                    self.finish(
                        idx,
                        Served {
                            verdict: Verdict::Fallback(FallbackReason::QueueFull),
                            latency: Seconds::ZERO,
                            energy: Joules::ZERO,
                        },
                        &mut served,
                        &mut report,
                    );
                }
                Admission::Queued { start_flush } => {
                    if let Some(epoch) = start_flush {
                        flush_timer = Some((epoch, tick + self.config.ingest.flush_ticks));
                    }
                }
                Admission::BatchReady { cameras } => {
                    self.serve_batch(&cameras, tick, requests, oracle, &mut served, &mut report);
                    completions.push((
                        tick + self.config.ingest.service_ticks,
                        cameras.len() as u64,
                    ));
                }
            }
        }

        // drain: fire the trailing flush timer at its due tick
        if let Some((epoch, due)) = flush_timer.take() {
            if let Some(cameras) = ingest.flush(epoch) {
                self.serve_batch(&cameras, due, requests, oracle, &mut served, &mut report);
                ingest.complete(cameras.len() as u64);
            }
        }

        report.breaker_trips = self.breaker.trips();
        let served: Vec<Served> = served
            .into_iter()
            .map(|s| {
                // every request was finished exactly once above; a hole
                // would be an accounting bug, so fail closed loudly
                s.unwrap_or(Served {
                    verdict: Verdict::Fallback(FallbackReason::QueueFull),
                    latency: Seconds::ZERO,
                    energy: Joules::ZERO,
                })
            })
            .collect();
        debug_assert!(report.conserves(), "verdict counters must conserve");
        ServiceRun { served, report }
    }

    /// Fires due flush timers and completions at `tick`.
    #[allow(clippy::too_many_arguments)]
    fn run_timers(
        &mut self,
        tick: u64,
        ingest: &mut Ingest,
        flush_timer: &mut Option<(u64, u64)>,
        completions: &mut Vec<(u64, u64)>,
        requests: &[VerifyRequest],
        oracle: &impl FaultOracle,
        served: &mut [Option<Served>],
        report: &mut ServiceReport,
    ) {
        let mut i = 0;
        while i < completions.len() {
            if completions[i].0 <= tick {
                ingest.complete(completions[i].1);
                completions.remove(i);
            } else {
                i += 1;
            }
        }
        if let Some((epoch, due)) = *flush_timer {
            if due <= tick {
                *flush_timer = None;
                if let Some(cameras) = ingest.flush(epoch) {
                    completions
                        .push((due + self.config.ingest.service_ticks, cameras.len() as u64));
                    self.serve_batch(&cameras, due, requests, oracle, served, report);
                }
            }
        }
    }

    /// Serves one cut batch at `serve_tick`: modeled pipeline per
    /// member, then one batched embed over the functional survivors.
    fn serve_batch(
        &mut self,
        members: &[u64],
        serve_tick: u64,
        requests: &[VerifyRequest],
        oracle: &impl FaultOracle,
        served: &mut [Option<Served>],
        report: &mut ServiceReport,
    ) {
        // phase 1: modeled time/energy/faults per member
        let mut outcomes: Vec<(usize, Served)> = Vec::with_capacity(members.len());
        let mut functional: Vec<(usize, GrayImage)> = Vec::new();
        for &member in members {
            let idx = member as usize;
            let request = &requests[idx];
            let wait = self.config.tick_period * serve_tick.saturating_sub(member) as f64;
            let mut energy = Joules::ZERO;
            let model = self.run_model(request, wait, oracle, &mut energy, report);
            let (latency, verdict) = match model {
                ModelOutcome::Fell(reason, latency) => (latency, Some(Verdict::Fallback(reason))),
                ModelOutcome::Survived(latency) => {
                    match align_face(
                        &request.probe.image,
                        &request.probe.landmarks,
                        self.head.side(),
                    ) {
                        Err(_) => (
                            latency,
                            Some(Verdict::Fallback(FallbackReason::AlignFailed)),
                        ),
                        Ok(window) => {
                            functional.push((outcomes.len(), window));
                            (latency, None)
                        }
                    }
                }
            };
            let faulted = matches!(verdict, Some(Verdict::Fallback(r)) if r.is_infra_fault());
            self.breaker.record(serve_tick, faulted);
            outcomes.push((
                idx,
                Served {
                    // placeholder verdict; survivors are scored below
                    verdict: verdict.unwrap_or(Verdict::Fallback(FallbackReason::EmbedFailed)),
                    latency,
                    energy,
                },
            ));
        }

        // phase 2: one forward_batch over every aligned survivor
        if !functional.is_empty() {
            let windows: Vec<GrayImage> = functional.iter().map(|(_, w)| w.clone()).collect();
            match self.head.embed_batch(&windows) {
                Ok(embeddings) => {
                    for ((slot, _), embedding) in functional.iter().zip(embeddings) {
                        let idx = outcomes[*slot].0;
                        let user = requests[idx].user;
                        let verdict = match self.gallery.match_score(user, &embedding) {
                            Ok(score) if score >= self.config.threshold => {
                                Verdict::Accept { score }
                            }
                            Ok(score) => Verdict::Reject { score },
                            Err(_) => Verdict::Fallback(FallbackReason::EmbedFailed),
                        };
                        outcomes[*slot].1.verdict = verdict;
                    }
                }
                Err(_) => {
                    // one degenerate window failed the batch call; score
                    // the rest individually so it poisons only itself
                    for (slot, window) in &functional {
                        let idx = outcomes[*slot].0;
                        let user = requests[idx].user;
                        let verdict = match self.head.embed(window) {
                            Err(_) => Verdict::Fallback(FallbackReason::EmbedFailed),
                            Ok(embedding) => match self.gallery.match_score(user, &embedding) {
                                Ok(score) if score >= self.config.threshold => {
                                    Verdict::Accept { score }
                                }
                                Ok(score) => Verdict::Reject { score },
                                Err(_) => Verdict::Fallback(FallbackReason::EmbedFailed),
                            },
                        };
                        outcomes[*slot].1.verdict = verdict;
                    }
                }
            }
        }

        for (idx, outcome) in outcomes {
            self.finish(idx, outcome, served, report);
        }
    }

    /// Serves a single request immediately (breaker probe path).
    fn serve_one(
        &mut self,
        request: &VerifyRequest,
        arrival_tick: u64,
        serve_tick: u64,
        oracle: &impl FaultOracle,
        report: &mut ServiceReport,
    ) -> Served {
        let wait = self.config.tick_period * serve_tick.saturating_sub(arrival_tick) as f64;
        let mut energy = Joules::ZERO;
        match self.run_model(request, wait, oracle, &mut energy, report) {
            ModelOutcome::Fell(reason, latency) => Served {
                verdict: Verdict::Fallback(reason),
                latency,
                energy,
            },
            ModelOutcome::Survived(latency) => {
                let verdict = if !self.gallery.contains(request.user) {
                    Verdict::Fallback(FallbackReason::UnknownUser)
                } else {
                    self.score(request)
                };
                Served {
                    verdict,
                    latency,
                    energy,
                }
            }
        }
    }

    /// Functional align → embed → match for one request.
    fn score(&self, request: &VerifyRequest) -> Verdict {
        let window = match align_face(
            &request.probe.image,
            &request.probe.landmarks,
            self.head.side(),
        ) {
            Ok(w) => w,
            Err(_) => return Verdict::Fallback(FallbackReason::AlignFailed),
        };
        let embedding = match self.head.embed(&window) {
            Ok(e) => e,
            Err(_) => return Verdict::Fallback(FallbackReason::EmbedFailed),
        };
        match self.gallery.match_score(request.user, &embedding) {
            Ok(score) if score >= self.config.threshold => Verdict::Accept { score },
            Ok(score) => Verdict::Reject { score },
            Err(_) => Verdict::Fallback(FallbackReason::EmbedFailed),
        }
    }

    /// Runs the modeled pipeline: stages with retries, the upload at
    /// the cut, deadline checks after every step.
    fn run_model(
        &self,
        request: &VerifyRequest,
        queue_wait: Seconds,
        oracle: &impl FaultOracle,
        energy: &mut Joules,
        report: &mut ServiceReport,
    ) -> ModelOutcome {
        let policy = &self.config.retry;
        let mut elapsed = queue_wait;
        if elapsed > request.deadline {
            return ModelOutcome::Fell(FallbackReason::DeadlineMissed { stage: 0 }, elapsed);
        }
        for stage in 0..NUM_STAGES {
            if stage == self.plan.cut {
                if let Some(reason) = self.transmit(request, &mut elapsed, energy, oracle, report) {
                    return ModelOutcome::Fell(reason, elapsed);
                }
                if elapsed > request.deadline {
                    return ModelOutcome::Fell(FallbackReason::DeadlineMissed { stage }, elapsed);
                }
            }
            let local = stage < self.plan.cut;
            let mut ok = false;
            for attempt in 0..policy.max_attempts {
                elapsed += policy.backoff(request.frame, attempt);
                if attempt > 0 {
                    report.compute_retries += 1;
                }
                let nominal = if local {
                    self.plan.local[stage].time
                } else {
                    self.plan.cloud_time
                };
                let condition = oracle.compute(request.frame, stage, attempt);
                let cost = match condition {
                    ComputeCondition::Nominal => nominal,
                    ComputeCondition::Slowdown(f) => nominal * f,
                    ComputeCondition::Failed => nominal,
                };
                elapsed += cost;
                if local {
                    *energy += self.plan.local[stage].energy;
                }
                if !matches!(condition, ComputeCondition::Failed) {
                    ok = true;
                    break;
                }
            }
            if !ok {
                return ModelOutcome::Fell(FallbackReason::ComputeExhausted { stage }, elapsed);
            }
            if elapsed > request.deadline {
                return ModelOutcome::Fell(FallbackReason::DeadlineMissed { stage }, elapsed);
            }
        }
        if self.plan.cut == NUM_STAGES {
            if let Some(reason) = self.transmit(request, &mut elapsed, energy, oracle, report) {
                return ModelOutcome::Fell(reason, elapsed);
            }
            if elapsed > request.deadline {
                return ModelOutcome::Fell(
                    FallbackReason::DeadlineMissed { stage: NUM_STAGES },
                    elapsed,
                );
            }
        }
        ModelOutcome::Survived(elapsed)
    }

    /// Transmits the cut payload with retries. Returns the fallback
    /// reason if every attempt is lost.
    fn transmit(
        &self,
        request: &VerifyRequest,
        elapsed: &mut Seconds,
        energy: &mut Joules,
        oracle: &impl FaultOracle,
        report: &mut ServiceReport,
    ) -> Option<FallbackReason> {
        let policy = &self.config.retry;
        for attempt in 0..policy.max_attempts {
            *elapsed += policy.backoff(request.frame, attempt);
            if attempt > 0 {
                report.link_retries += 1;
            }
            let condition = oracle.link(request.frame, attempt);
            // the radio burns the bits whether or not they arrive
            *energy += self.plan.link.upload_energy(self.plan.payload);
            if condition.goodput <= 0.0 {
                *elapsed += policy.timeout;
                continue;
            }
            let time = self
                .plan
                .link
                .degraded(condition.goodput)
                .upload_time(self.plan.payload);
            *elapsed += time;
            if condition.delivered {
                return None;
            }
        }
        Some(FallbackReason::LinkLost)
    }

    /// Records one finished request into the run.
    fn finish(
        &self,
        idx: usize,
        outcome: Served,
        served: &mut [Option<Served>],
        report: &mut ServiceReport,
    ) {
        match outcome.verdict {
            Verdict::Accept { .. } => {
                report.accepts += 1;
                report.deadline_hits += 1;
            }
            Verdict::Reject { .. } => {
                report.rejects += 1;
                report.deadline_hits += 1;
            }
            Verdict::Fallback(reason) => {
                report.fallbacks[reason.index()] += 1;
            }
        }
        report.energy += outcome.energy;
        served[idx] = Some(outcome);
    }
}

/// Renders a precision/recall line for a scored verify run (used by
/// the bench experiment; kept here so the formatting is shared with
/// examples).
pub fn accuracy_line(precision: f64, recall: f64, f1: f64) -> String {
    format!(
        "precision {}  recall {}  f1 {}",
        sig3(precision),
        sig3(recall),
        sig3(f1)
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::align::EyeLandmarks;
    use incam_core::runtime::{IdealOracle, LinkCondition};
    use incam_core::units::BytesPerSec;
    use incam_imaging::faces::{render_face, Identity, Nuisance};
    use incam_rng::rngs::StdRng;
    use incam_rng::SeedableRng;

    const SIDE: usize = 20;

    fn test_link() -> Link {
        Link::new("test-uplink", BytesPerSec::new(100_000.0), 0.9)
            .with_energy_per_bit(Joules::from_nano(1.0))
    }

    fn test_plan(cut: usize) -> VerifyPlan {
        VerifyPlan {
            label: format!("cut={cut}"),
            cut,
            local: [StageCost {
                time: Seconds::from_millis(1.0),
                energy: Joules::from_micro(10.0),
            }; NUM_STAGES],
            cloud_time: Seconds::from_micros(100.0),
            payload: Bytes::new(400.0),
            link: test_link(),
        }
    }

    fn probe_for(id: &Identity, nuisance: &Nuisance, rng: &mut StdRng) -> Probe {
        let image = render_face(id, nuisance, 48, rng);
        let landmarks = EyeLandmarks::from_render_geometry(id, nuisance, 48);
        Probe { image, landmarks }
    }

    fn service_with_users(users: u32, seed: u64) -> (VerifyService, Vec<Identity>) {
        let head = EmbeddingHead::new(SIDE, seed);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut gallery = Gallery::new();
        let mut identities = Vec::new();
        for user in 0..users {
            let id = Identity::sample(&mut rng);
            let probe = probe_for(&id, &Nuisance::none(), &mut rng);
            let window = align_face(&probe.image, &probe.landmarks, SIDE).expect("clean align");
            let template = head.embed(&window).expect("clean embed");
            gallery.enroll(user, template).expect("fresh user");
            identities.push(id);
        }
        let mut config = ServiceConfig::experiment_default();
        config.threshold = 0.9;
        let service = VerifyService::new(head, gallery, test_plan(1), config);
        (service, identities)
    }

    fn genuine_requests(
        identities: &[Identity],
        n: usize,
        seed: u64,
        deadline: Seconds,
    ) -> Vec<VerifyRequest> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|i| {
                let user = (i % identities.len()) as u32;
                VerifyRequest {
                    user,
                    camera: user as u64,
                    frame: i as u64,
                    deadline,
                    probe: probe_for(&identities[user as usize], &Nuisance::none(), &mut rng),
                }
            })
            .collect()
    }

    #[test]
    fn ideal_run_accepts_genuine_probes() {
        let (mut service, identities) = service_with_users(3, 42);
        let requests = genuine_requests(&identities, 12, 7, Seconds::from_millis(500.0));
        let run = service.serve(&requests, &IdealOracle);
        assert!(run.report.conserves());
        assert_eq!(run.report.accepts, 12, "report: {}", run.report.render());
        assert_eq!(run.report.breaker_trips, 0);
        assert!(run.report.energy.joules() > 0.0);
    }

    #[test]
    fn impostors_are_rejected_not_fallbacked() {
        let (mut service, identities) = service_with_users(2, 42);
        let mut rng = StdRng::seed_from_u64(99);
        let stranger = Identity::sample(&mut rng);
        let requests: Vec<VerifyRequest> = (0..6)
            .map(|i| VerifyRequest {
                user: (i % identities.len()) as u32,
                camera: 0,
                frame: i as u64,
                deadline: Seconds::from_millis(500.0),
                probe: probe_for(&stranger, &Nuisance::none(), &mut rng),
            })
            .collect();
        let run = service.serve(&requests, &IdealOracle);
        assert_eq!(run.report.accepts, 0, "report: {}", run.report.render());
        assert_eq!(run.report.rejects as usize, requests.len());
    }

    #[test]
    fn unknown_user_falls_back() {
        let (mut service, identities) = service_with_users(2, 42);
        let mut requests = genuine_requests(&identities, 2, 7, Seconds::from_millis(500.0));
        requests[1].user = 77;
        let run = service.serve(&requests, &IdealOracle);
        assert_eq!(run.report.fallbacks[FallbackReason::UnknownUser.index()], 1);
        assert!(matches!(
            run.served[1].verdict,
            Verdict::Fallback(FallbackReason::UnknownUser)
        ));
    }

    #[test]
    fn dead_link_never_accepts_and_trips_breaker() {
        struct DeadLink;
        impl FaultOracle for DeadLink {
            fn link(&self, _f: u64, _a: u32) -> LinkCondition {
                LinkCondition {
                    delivered: false,
                    goodput: 0.0,
                }
            }
            fn compute(&self, _f: u64, _s: usize, _a: u32) -> ComputeCondition {
                ComputeCondition::Nominal
            }
        }
        let (mut service, identities) = service_with_users(2, 42);
        let requests = genuine_requests(&identities, 40, 7, Seconds::from_millis(5_000.0));
        let run = service.serve(&requests, &DeadLink);
        assert_eq!(run.report.accepts, 0, "fail-closed violated");
        assert!(run.report.breaker_trips > 0, "{}", run.report.render());
        assert!(
            run.report.fallbacks[FallbackReason::BreakerOpen.index()] > 0,
            "breaker never shed: {}",
            run.report.render()
        );
    }

    #[test]
    fn tight_deadline_forces_deadline_fallbacks() {
        let (mut service, identities) = service_with_users(2, 42);
        let requests = genuine_requests(&identities, 8, 7, Seconds::from_micros(1.0));
        let run = service.serve(&requests, &IdealOracle);
        assert_eq!(run.report.accepts, 0);
        assert!(run.report.fallbacks[FallbackReason::DeadlineMissed { stage: 0 }.index()] > 0);
    }

    #[test]
    fn serve_is_deterministic() {
        let build = || service_with_users(3, 42);
        let (mut a, ids) = build();
        let (mut b, _) = build();
        let requests = genuine_requests(&ids, 20, 7, Seconds::from_millis(200.0));
        let ra = a.serve(&requests, &IdealOracle);
        let rb = b.serve(&requests, &IdealOracle);
        assert_eq!(ra.report, rb.report);
        assert_eq!(ra.report.digest(), rb.report.digest());
    }

    #[test]
    fn all_cuts_accept_under_ideal_conditions() {
        for cut in 0..=NUM_STAGES {
            let (mut service, identities) = service_with_users(2, 42);
            service.plan = test_plan(cut);
            let requests = genuine_requests(&identities, 8, 7, Seconds::from_millis(500.0));
            let run = service.serve(&requests, &IdealOracle);
            assert_eq!(run.report.accepts, 8, "cut {cut}: {}", run.report.render());
        }
    }
}
