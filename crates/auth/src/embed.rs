//! Embedding head: aligned face window → L2-normalized feature vector.
//!
//! The head is a small random-projection MLP on [`incam_nn::Mlp`] —
//! random (seeded) hidden layers act as a locality-sensitive projection
//! of the pixel window, which is enough for the synthetic renderer's
//! identity manifold and keeps the head fully deterministic without a
//! training loop in the serving path. Batches go through
//! [`Mlp::forward_batch`], whose outputs are byte-identical at any
//! `INCAM_THREADS` setting, so verify transcripts stay reproducible
//! under threading.
//!
//! Embeddings are unit-normalized at construction; matching is a plain
//! dot product (cosine similarity). A window whose activation collapses
//! to the zero vector cannot be normalized and returns [`EmbedError`] —
//! the service maps that to a fail-closed fallback rather than
//! matching against garbage.

use crate::align::{align_face, EyeLandmarks};
use incam_imaging::faces::{render_face, Identity, Nuisance};
use incam_imaging::image::GrayImage;
use incam_nn::{Mlp, Sigmoid, Topology};
use incam_rng::rngs::StdRng;
use incam_rng::SeedableRng;

/// Why an embedding could not be produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EmbedError {
    /// Input window size does not match the head's expected side.
    BadWindow {
        /// Pixels the head expects.
        expected: usize,
        /// Pixels actually supplied.
        got: usize,
    },
    /// The head produced a zero or non-finite vector — nothing to
    /// normalize, nothing safe to match.
    DegenerateVector,
}

impl core::fmt::Display for EmbedError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            EmbedError::BadWindow { expected, got } => {
                write!(f, "bad embed window: expected {expected} px, got {got}")
            }
            EmbedError::DegenerateVector => write!(f, "degenerate embedding vector"),
        }
    }
}

/// A unit-norm feature vector for one aligned face window.
#[derive(Debug, Clone, PartialEq)]
pub struct Embedding(Vec<f32>);

impl Embedding {
    /// Normalizes `raw` onto the unit sphere.
    ///
    /// # Errors
    ///
    /// [`EmbedError::DegenerateVector`] when the norm is zero, tiny, or
    /// non-finite.
    pub fn from_raw(raw: Vec<f32>) -> Result<Self, EmbedError> {
        let norm_sq: f32 = raw.iter().map(|v| v * v).sum();
        if !norm_sq.is_finite() || norm_sq < 1e-12 {
            return Err(EmbedError::DegenerateVector);
        }
        let inv = norm_sq.sqrt().recip();
        Ok(Self(raw.into_iter().map(|v| v * inv).collect()))
    }

    /// The normalized components.
    pub fn components(&self) -> &[f32] {
        &self.0
    }

    /// Cosine similarity with another embedding (both unit norm, so
    /// this is the dot product), in [-1, 1].
    pub fn cosine(&self, other: &Embedding) -> f32 {
        debug_assert_eq!(self.0.len(), other.0.len());
        self.0.iter().zip(&other.0).map(|(a, b)| a * b).sum()
    }

    /// Dimensionality of the feature space.
    pub fn dim(&self) -> usize {
        self.0.len()
    }
}

/// Feature dimensionality of the default head.
pub const EMBED_DIM: usize = 32;

/// Hidden width of the default head.
pub const HIDDEN_DIM: usize = 64;

/// Identities sampled into the mean-face template at head construction.
const MEAN_FACE_SAMPLES: usize = 16;

/// Deterministic embedding head: `side² → 64 → 32` MLP with seeded
/// random weights, evaluated with the exact sigmoid.
#[derive(Debug, Clone)]
pub struct EmbeddingHead {
    mlp: Mlp,
    side: usize,
    sigmoid: Sigmoid,
    baseline: Vec<f32>,
    mean_face: Vec<f32>,
}

impl EmbeddingHead {
    /// Builds the head for `side × side` aligned windows from `seed`.
    /// The same `(side, seed)` always yields the same weights.
    pub fn new(side: usize, seed: u64) -> Self {
        assert!(side > 0, "embed window side must be nonzero");
        let topology = Topology::new(vec![side * side, HIDDEN_DIM, EMBED_DIM]);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xE3BE_DD1C_FACE_0001);
        let mlp = Mlp::random(topology, &mut rng);
        let sigmoid = Sigmoid::Exact;
        // the head's response to a flat (all-zero centered) window: a
        // bias-driven common-mode vector shared by every embedding;
        // subtracting it keeps impostor cosines honest
        let baseline = mlp.forward(&vec![0.0; side * side], &sigmoid);
        let mean_face = mean_face(side, &mut rng);
        Self {
            mlp,
            side,
            sigmoid,
            baseline,
            mean_face,
        }
    }

    /// Side length of the aligned windows this head consumes.
    pub fn side(&self) -> usize {
        self.side
    }

    /// The underlying network (for cost-model sizing).
    pub fn mlp(&self) -> &Mlp {
        &self.mlp
    }

    /// Embeds one aligned window.
    ///
    /// # Errors
    ///
    /// [`EmbedError::BadWindow`] on a size mismatch,
    /// [`EmbedError::DegenerateVector`] if normalization fails.
    pub fn embed(&self, window: &GrayImage) -> Result<Embedding, EmbedError> {
        let expected = self.side * self.side;
        if window.len() != expected {
            return Err(EmbedError::BadWindow {
                expected,
                got: window.len(),
            });
        }
        let input = self.preprocess(window);
        Embedding::from_raw(self.debias(self.mlp.forward(&input, &self.sigmoid)))
    }

    /// Embeds a batch of aligned windows through
    /// [`Mlp::forward_batch`] (deterministically parallel). Any window
    /// failing size or normalization checks fails the whole batch —
    /// callers embed per-request batches, so one bad probe must not be
    /// silently dropped.
    ///
    /// # Errors
    ///
    /// First [`EmbedError`] encountered across the batch.
    pub fn embed_batch(&self, windows: &[GrayImage]) -> Result<Vec<Embedding>, EmbedError> {
        let expected = self.side * self.side;
        let mut inputs = Vec::with_capacity(windows.len());
        for window in windows {
            if window.len() != expected {
                return Err(EmbedError::BadWindow {
                    expected,
                    got: window.len(),
                });
            }
            inputs.push(self.preprocess(window));
        }
        self.mlp
            .forward_batch(&inputs, &self.sigmoid)
            .into_iter()
            .map(|raw| Embedding::from_raw(self.debias(raw)))
            .collect()
    }

    /// Subtracts the head's flat-window baseline from a raw forward
    /// pass. Raw sigmoids live in (0, 1) and every output carries the
    /// same bias-driven offset; left in place it would pin all
    /// embeddings near one point of the sphere and inflate impostor
    /// cosines.
    fn debias(&self, raw: Vec<f32>) -> Vec<f32> {
        raw.into_iter()
            .zip(&self.baseline)
            .map(|(v, b)| v - b)
            .collect()
    }

    /// Turns a window into an MLP input: subtracts the mean face (all
    /// rendered faces share the same gross structure — eyes, mouth,
    /// oval — and a projection of that shared structure would dominate
    /// every embedding and crush identity separation), then removes the
    /// residual DC term so the renderer's gain/offset nuisance cancels.
    fn preprocess(&self, window: &GrayImage) -> Vec<f32> {
        let deltas: Vec<f32> = window
            .pixels()
            .iter()
            .zip(&self.mean_face)
            .map(|(p, m)| p - m)
            .collect();
        let mean = deltas.iter().sum::<f32>() / deltas.len() as f32;
        deltas.into_iter().map(|v| v - mean).collect()
    }
}

/// The population mean face: `MEAN_FACE_SAMPLES` clean identities
/// rendered, aligned, and averaged pixelwise. Deterministic given the
/// rng state, so the same `(side, seed)` head always subtracts the
/// same template.
fn mean_face(side: usize, rng: &mut StdRng) -> Vec<f32> {
    let mut acc = vec![0.0f32; side * side];
    let mut count = 0u32;
    for _ in 0..MEAN_FACE_SAMPLES {
        let id = Identity::sample(rng);
        let image = render_face(&id, &Nuisance::none(), 48, rng);
        let landmarks = EyeLandmarks::from_render_geometry(&id, &Nuisance::none(), 48);
        let Ok(window) = align_face(&image, &landmarks, side) else {
            continue;
        };
        for (a, p) in acc.iter_mut().zip(window.pixels()) {
            *a += p;
        }
        count += 1;
    }
    if count > 0 {
        let inv = 1.0 / count as f32;
        for a in &mut acc {
            *a *= inv;
        }
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::align::{align_face, EyeLandmarks};
    use incam_imaging::faces::{render_face, Identity, Nuisance};
    use incam_rng::Rng;

    const SIDE: usize = 20;

    fn aligned_window(id: &Identity, nuisance: &Nuisance, rng: &mut impl Rng) -> GrayImage {
        let img = render_face(id, nuisance, 48, rng);
        let lm = EyeLandmarks::from_render_geometry(id, nuisance, 48);
        align_face(&img, &lm, SIDE).unwrap()
    }

    #[test]
    fn embeddings_are_unit_norm_and_deterministic() {
        let head = EmbeddingHead::new(SIDE, 7);
        let mut rng = StdRng::seed_from_u64(5);
        let id = Identity::sample(&mut rng);
        let win = aligned_window(&id, &Nuisance::none(), &mut rng);
        let a = head.embed(&win).unwrap();
        let b = head.embed(&win).unwrap();
        assert_eq!(a, b);
        let norm: f32 = a.components().iter().map(|v| v * v).sum();
        assert!((norm - 1.0).abs() < 1e-5);
        assert_eq!(a.dim(), EMBED_DIM);
    }

    #[test]
    fn batch_matches_single() {
        let head = EmbeddingHead::new(SIDE, 7);
        let mut rng = StdRng::seed_from_u64(9);
        let wins: Vec<GrayImage> = (0..5)
            .map(|_| {
                let id = Identity::sample(&mut rng);
                aligned_window(&id, &Nuisance::none(), &mut rng)
            })
            .collect();
        let batch = head.embed_batch(&wins).unwrap();
        for (w, e) in wins.iter().zip(&batch) {
            assert_eq!(head.embed(w).unwrap(), *e);
        }
    }

    #[test]
    fn same_identity_scores_above_impostors() {
        // The separation the matcher depends on: genuine pairs under
        // moderate nuisance must score above cross-identity pairs on
        // average, with a usable margin.
        let head = EmbeddingHead::new(SIDE, 7);
        let mut rng = StdRng::seed_from_u64(2017);
        let mut genuine = Vec::new();
        let mut impostor = Vec::new();
        for _ in 0..12 {
            let id = Identity::sample(&mut rng);
            let other = Identity::sample(&mut rng);
            let base = head
                .embed(&aligned_window(&id, &Nuisance::none(), &mut rng))
                .unwrap();
            let n = Nuisance::sample(&mut rng, 0.5);
            let probe = head.embed(&aligned_window(&id, &n, &mut rng)).unwrap();
            let fake = head
                .embed(&aligned_window(&other, &Nuisance::none(), &mut rng))
                .unwrap();
            genuine.push(base.cosine(&probe));
            impostor.push(base.cosine(&fake));
        }
        let mean = |v: &[f32]| v.iter().sum::<f32>() / v.len() as f32;
        let (g, i) = (mean(&genuine), mean(&impostor));
        assert!(
            g > i + 0.1,
            "no identity separation: genuine {g:.3} vs impostor {i:.3}"
        );
    }

    #[test]
    fn bad_window_and_degenerate_vectors_refused() {
        let head = EmbeddingHead::new(SIDE, 7);
        let wrong = GrayImage::zeros(SIDE + 1, SIDE);
        assert!(matches!(
            head.embed(&wrong),
            Err(EmbedError::BadWindow { .. })
        ));
        assert_eq!(
            Embedding::from_raw(vec![0.0; EMBED_DIM]),
            Err(EmbedError::DegenerateVector)
        );
        assert_eq!(
            Embedding::from_raw(vec![f32::NAN; EMBED_DIM]),
            Err(EmbedError::DegenerateVector)
        );
    }
}
